(* Tests for the KV-store subsystem: key-distribution sampler
   determinism and skew (chi-square-style), single-threaded Kv
   semantics, structural invariants after every profile, the Figure-6
   anomaly demonstration (weak mode provably loses updates, strong and
   lock modes are exact), shard scaling, strong-vs-weak barrier
   overhead, and the serializability-oracle differential check on
   recorded store traffic. *)

open Stm_runtime
open Stm_store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Keydist                                                             *)
(* ------------------------------------------------------------------ *)

let draws ~keys ~dist ~seed n =
  let s = Keydist.create ~keys ~dist (Det_rng.create seed) in
  List.init n (fun _ -> Keydist.next s)

let keydist_deterministic () =
  List.iter
    (fun dist ->
      let a = draws ~keys:257 ~dist ~seed:42 500 in
      let b = draws ~keys:257 ~dist ~seed:42 500 in
      Alcotest.(check (list int))
        (Keydist.dist_to_string dist ^ " same seed, same sequence")
        a b;
      let c = draws ~keys:257 ~dist ~seed:43 500 in
      check_bool
        (Keydist.dist_to_string dist ^ " different seed, different sequence")
        true (a <> c);
      List.iter
        (fun k -> check_bool "in range" true (0 <= k && k < 257))
        a)
    [ Keydist.Uniform; Keydist.Zipfian 0.99 ]

(* Pearson chi-square against the uniform null: 64 cells, 6400 draws,
   expected 100 per cell. df = 63; the 99.9th percentile of chi2(63) is
   ~106, so a bound of 120 is a sanity check, not a flakiness trap —
   and the sampler is deterministic, so the statistic is a constant. *)
let uniform_chi_square () =
  let keys = 64 and n = 6400 in
  let counts = Array.make keys 0 in
  List.iter
    (fun k -> counts.(k) <- counts.(k) + 1)
    (draws ~keys ~dist:Keydist.Uniform ~seed:7 n);
  let expected = float_of_int n /. float_of_int keys in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  check_bool (Printf.sprintf "chi2 %.1f < 120" chi2) true (chi2 < 120.)

(* The same statistic on Zipfian draws must blow far past the uniform
   acceptance region: the skew is real, not cosmetic. *)
let zipfian_not_uniform () =
  let keys = 64 and n = 6400 in
  let s = Keydist.create ~keys ~dist:(Keydist.Zipfian 0.99) (Det_rng.create 7) in
  let counts = Array.make keys 0 in
  for _ = 1 to n do
    let r = Keydist.next_rank s in
    counts.(r) <- counts.(r) + 1
  done;
  let expected = float_of_int n /. float_of_int keys in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  check_bool (Printf.sprintf "chi2 %.0f > 1000" chi2) true (chi2 > 1000.)

let zipfian_skew_shape () =
  let keys = 1024 and n = 20_000 in
  let s =
    Keydist.create ~keys ~dist:(Keydist.Zipfian 0.99) (Det_rng.create 11)
  in
  let counts = Array.make keys 0 in
  for _ = 1 to n do
    let r = Keydist.next_rank s in
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0's share under theta=0.99, n=1024 is 1/zeta ~ 0.13 *)
  let share0 = float_of_int counts.(0) /. float_of_int n in
  check_bool
    (Printf.sprintf "rank-0 share %.3f in [0.08, 0.20]" share0)
    true
    (share0 > 0.08 && share0 < 0.20);
  (* mass decays across rank quartiles *)
  let mass lo hi =
    let m = ref 0 in
    for r = lo to hi - 1 do
      m := !m + counts.(r)
    done;
    !m
  in
  let q1 = mass 0 256 and q4 = mass 768 1024 in
  check_bool "first quartile carries >10x the last" true (q1 > 10 * q4)

let scramble_spreads () =
  (* the 16 hottest ranks must not clump: they land on >= 12 distinct
     keys, spread across most of a 4-shard partition *)
  let keys = 1024 in
  let hot = List.init 16 (fun r -> Keydist.scramble ~keys r) in
  let distinct = List.sort_uniq compare hot in
  check_bool "hot ranks map to distinct keys" true (List.length distinct >= 12);
  List.iter (fun k -> check_bool "in range" true (0 <= k && k < keys)) hot

(* ------------------------------------------------------------------ *)
(* Kv semantics (single simulated thread)                              *)
(* ------------------------------------------------------------------ *)

let with_store ~mode f =
  let cfg = Kv.config mode in
  let result, _stats =
    Stm_core.Stm.run ~cfg (fun () ->
        let t =
          Kv.create ~buckets:8 ~value_size:2 ~mode ~shards:4
            ~cost:cfg.Stm_core.Config.cost ()
        in
        f t)
  in
  (match result.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  check_bool "completed" true (result.Sched.status = Sched.Completed)

let kv_semantics mode () =
  with_store ~mode (fun t ->
      Kv.preload t ~keys:50 ~value:(fun k -> k * 10);
      check_int "entry_count" 50 (Kv.entry_count t);
      Alcotest.(check (option int)) "get 7" (Some 70) (Kv.get t 7);
      Alcotest.(check (option int)) "get absent" None (Kv.get t 50);
      check_bool "put existing updates" false (Kv.put t 7 700);
      Alcotest.(check (option int)) "get after put" (Some 700) (Kv.get t 7);
      check_bool "put absent inserts" true (Kv.put t 50 500);
      Alcotest.(check (option int)) "get inserted" (Some 500) (Kv.get t 50);
      Alcotest.(check (option int)) "add" (Some 501) (Kv.add t 50 1);
      Alcotest.(check (option int))
        "rmw" (Some 1002)
        (Kv.rmw t 50 ~f:(fun v -> v * 2));
      Alcotest.(check (option int)) "rmw absent" None (Kv.rmw t 99 ~f:succ);
      check_bool "insert fresh" true (Kv.insert t 60 6);
      check_bool "insert existing updates" false (Kv.insert t 60 66);
      check_bool "delete" true (Kv.delete t 60);
      check_bool "delete absent" false (Kv.delete t 60);
      let vs = Kv.multi_get t [| 0; 7; 99 |] in
      Alcotest.(check (array (option int)))
        "multi_get"
        [| Some 0; Some 700; None |]
        vs;
      check_int "scan finds the present run" 10 (Kv.scan t 0 ~len:10);
      check_int "entry_count after churn" 51 (Kv.entry_count t);
      Alcotest.(check (list string)) "invariants" [] (Kv.check_invariants t);
      (* oid maps round-trip *)
      let sum = Kv.fold t ~init:0 ~f:(fun acc _ _ -> acc + 1) in
      check_int "fold visits every entry" 51 sum)

(* ------------------------------------------------------------------ *)
(* Engine: determinism, invariants across profiles                     *)
(* ------------------------------------------------------------------ *)

let small p =
  {
    p with
    Engine.clients = 4;
    keys = 128;
    buckets = 16;
    ops_per_client = 48;
    batch = 4;
    scan_len = 4;
  }

(* Everything in the report is a pure function of (params, seed) except
   the host GC accounting inside the metrics block. *)
let deterministic_facets r =
  ( r.Engine.r_makespan,
    r.Engine.r_total_ops,
    r.Engine.r_stats,
    Array.to_list r.Engine.r_shard_aborts,
    Array.to_list r.Engine.r_shard_commits,
    r.Engine.r_deviation,
    List.map
      (fun (op, c) ->
        ( Profile.op_name op,
          c.Engine.cs_ops,
          c.Engine.cs_misses,
          Stm_obs.Json.to_string (Stm_obs.Hist.to_json c.Engine.cs_hist) ))
      r.Engine.r_classes )

let engine_deterministic () =
  let p = small { Engine.default with Engine.seed = 5 } in
  let a = Engine.run p and b = Engine.run p in
  check_bool "completed" true a.Engine.r_completed;
  check_bool "identical reports" true
    (deterministic_facets a = deterministic_facets b)

let invariants_all_profiles () =
  List.iter
    (fun profile ->
      List.iter
        (fun mode ->
          let p =
            small { Engine.default with Engine.profile; mode; seed = 3 }
          in
          let r = Engine.run p in
          check_bool
            (profile.Profile.pname ^ "/" ^ Kv.mode_to_string mode
           ^ " completed")
            true r.Engine.r_completed;
          Alcotest.(check (list string))
            (profile.Profile.pname ^ "/" ^ Kv.mode_to_string mode
           ^ " invariants")
            [] r.Engine.r_invariants;
          check_int
            (profile.Profile.pname ^ " runs every op")
            (p.Engine.clients * p.Engine.ops_per_client)
            r.Engine.r_total_ops)
        [ Kv.Strong; Kv.Weak; Kv.Lock; Kv.Mvcc ])
    Profile.all

(* ------------------------------------------------------------------ *)
(* Figure-6 anomaly demonstration on store traffic                     *)
(* ------------------------------------------------------------------ *)

let anomaly_params mode =
  { Engine.default with Engine.profile = Profile.anomaly; mode }

let weak_loses_updates () =
  let r = Engine.run (anomaly_params Kv.Weak) in
  check_bool "completed" true r.Engine.r_completed;
  match r.Engine.r_deviation with
  | None -> Alcotest.fail "anomaly profile must report a deviation"
  | Some d ->
      check_bool
        (Printf.sprintf "weak atomicity drifted (deviation %d)" d)
        true (d <> 0)

let strong_exact () =
  List.iter
    (fun mode ->
      let r = Engine.run (anomaly_params mode) in
      check_bool "completed" true r.Engine.r_completed;
      Alcotest.(check (option int))
        (Kv.mode_to_string mode ^ " deviation")
        (Some 0) r.Engine.r_deviation;
      check_bool "increments happened" true (r.Engine.r_increments > 0))
    [ Kv.Strong; Kv.Lock; Kv.Mvcc ]

(* ------------------------------------------------------------------ *)
(* Scaling and barrier overhead                                        *)
(* ------------------------------------------------------------------ *)

let shard_scaling () =
  let run shards =
    Engine.run { Engine.default with Engine.shards }
  in
  let r1 = run 1 and r8 = run 8 in
  check_bool "both completed" true
    (r1.Engine.r_completed && r8.Engine.r_completed);
  check_bool
    (Printf.sprintf "throughput scales with shards (%.0f -> %.0f ops/Mcycle)"
       r1.Engine.r_throughput r8.Engine.r_throughput)
    true
    (r8.Engine.r_throughput > r1.Engine.r_throughput)

let barrier_overhead () =
  let run mode = Engine.run { Engine.default with Engine.mode } in
  let rs = run Kv.Strong and rw = run Kv.Weak in
  let ls = Engine.nontxn_mean_latency rs
  and lw = Engine.nontxn_mean_latency rw in
  check_bool
    (Printf.sprintf "strong non-txn ops pay barriers (%.1f > %.1f cycles)" ls
       lw)
    true (ls > lw)

(* ------------------------------------------------------------------ *)
(* Differential check against the serializability oracle               *)
(* ------------------------------------------------------------------ *)

let record_params mode =
  { (anomaly_params mode) with Engine.record = true }

let oracle_certifies_strong () =
  List.iter
    (fun mode ->
      let r = Engine.run (record_params mode) in
      check_bool "completed" true r.Engine.r_completed;
      match r.Engine.r_verdict with
      | Some Stm_check.History.Serializable -> ()
      | Some v ->
          Alcotest.failf "%s-mode store traffic rejected: %a"
            (Kv.mode_to_string mode) Stm_check.History.pp_verdict v
      | None -> Alcotest.fail "record run must produce a verdict")
    [ Kv.Strong; Kv.Lock; Kv.Mvcc ]

let oracle_rejects_weak () =
  let r = Engine.run (record_params Kv.Weak) in
  check_bool "completed" true r.Engine.r_completed;
  match r.Engine.r_verdict with
  | Some (Stm_check.History.Anomalous _) -> ()
  | Some v ->
      Alcotest.failf "weak-mode mixed traffic came back %a"
        Stm_check.History.pp_verdict v
  | None -> Alcotest.fail "record run must produce a verdict"

let record_rejects_structural () =
  Alcotest.check_raises "churn cannot be recorded"
    (Invalid_argument
       "store: profile churn inserts/deletes keys and cannot be \
        oracle-recorded")
    (fun () ->
      ignore
        (Engine.run
           {
             Engine.default with
             Engine.profile = Profile.churn;
             record = true;
           }))

let suite =
  [
    ( "store",
      [
        case "keydist: deterministic per seed" keydist_deterministic;
        case "keydist: uniform passes chi-square" uniform_chi_square;
        case "keydist: zipfian fails uniform chi-square" zipfian_not_uniform;
        case "keydist: zipfian skew shape" zipfian_skew_shape;
        case "keydist: scramble spreads hot ranks" scramble_spreads;
        case "kv: semantics (strong)" (kv_semantics Kv.Strong);
        case "kv: semantics (weak)" (kv_semantics Kv.Weak);
        case "kv: semantics (lock)" (kv_semantics Kv.Lock);
        case "kv: semantics (mvcc)" (kv_semantics Kv.Mvcc);
        case "engine: deterministic per seed" engine_deterministic;
        case "engine: invariants across all profiles and modes"
          invariants_all_profiles;
        case "fig6: weak mode loses updates" weak_loses_updates;
        case "fig6: strong, lock and mvcc modes are exact" strong_exact;
        case "perf: throughput scales with shard count" shard_scaling;
        case "perf: strong pays barriers on non-txn ops" barrier_overhead;
        case "oracle: certifies strong, lock and mvcc traffic"
          oracle_certifies_strong;
        case "oracle: rejects weak mixed traffic" oracle_rejects_weak;
        case "oracle: structural profiles are not recordable"
          record_rejects_structural;
      ] );
  ]
