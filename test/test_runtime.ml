(* Tests for the simulated-machine substrate: deterministic RNG,
   scheduler, virtual clocks, simulated mutex, heap. *)

open Stm_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Det_rng                                                             *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Det_rng.create 42 and b = Det_rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Det_rng.next a) (Det_rng.next b)
  done

let rng_seed_sensitivity () =
  let a = Det_rng.create 1 and b = Det_rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Det_rng.next a = Det_rng.next b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 5)

let rng_bounds () =
  let r = Det_rng.create 7 in
  for _ = 1 to 1000 do
    let v = Det_rng.int r 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let rng_copy_independent () =
  let a = Det_rng.create 9 in
  ignore (Det_rng.next a);
  let b = Det_rng.copy a in
  check_int "copy continues identically" (Det_rng.next a) (Det_rng.next b)

let rng_split () =
  let a = Det_rng.create 11 in
  let b = Det_rng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Det_rng.next a = Det_rng.next b then incr matches
  done;
  check_bool "split stream is distinct" true (!matches < 5)

let rng_float_bounds () =
  let r = Det_rng.create 3 in
  for _ = 1 to 200 do
    let f = Det_rng.float r 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let rng_bool_balanced () =
  let r = Det_rng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Det_rng.bool r then incr trues
  done;
  check_bool "bool roughly balanced" true (!trues > 400 && !trues < 600)

(* ------------------------------------------------------------------ *)
(* Sched                                                               *)
(* ------------------------------------------------------------------ *)

let sched_basic_run () =
  let hit = ref false in
  let r = Sched.run (fun () -> hit := true) in
  check_bool "ran" true !hit;
  check_bool "completed" true (r.Sched.status = Sched.Completed)

let sched_spawn_join () =
  let order = ref [] in
  let r =
    Sched.run (fun () ->
        let t =
          Sched.spawn (fun () ->
              Sched.yield ();
              order := "child" :: !order)
        in
        Sched.join t;
        order := "parent" :: !order)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  Alcotest.(check (list string)) "join ordering" [ "parent"; "child" ] !order

let sched_clock_ticks () =
  let r =
    Sched.run (fun () ->
        Sched.tick 10;
        Sched.tick 32;
        check_int "time accumulates" 42 (Sched.time ()))
  in
  check_int "makespan" 42 r.Sched.makespan

let sched_join_advances_clock () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> Sched.tick 1000) in
        Sched.join t;
        check_bool "joiner clock >= finisher" true (Sched.time () >= 1000))
  in
  check_int "makespan is max clock" 1000 r.Sched.makespan

let sched_min_clock_parallelism () =
  (* two independent threads of equal work: makespan = one thread's work *)
  let r =
    Sched.run ~policy:Sched.Min_clock (fun () ->
        let work () =
          for _ = 1 to 100 do
            Sched.tick 10;
            Sched.yield ()
          done
        in
        let a = Sched.spawn work and b = Sched.spawn work in
        Sched.join a;
        Sched.join b)
  in
  check_int "parallel makespan" 1000 r.Sched.makespan

let sched_exn_recorded () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> failwith "boom") in
        Sched.join t)
  in
  check_bool "completed despite exn" true (r.Sched.status = Sched.Completed);
  check_int "one exn" 1 (List.length r.Sched.exns)

let sched_fuel () =
  let r =
    Sched.run ~max_steps:100 (fun () ->
        while true do
          Sched.yield ()
        done)
  in
  check_bool "fuel exhausted" true (r.Sched.status = Sched.Fuel_exhausted)

let sched_deadlock_detected () =
  let r = Sched.run (fun () -> Sched.suspend ()) in
  (match r.Sched.status with
  | Sched.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected deadlock of main");
  ()

let sched_wake () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> Sched.suspend ()) in
        (* jump our clock ahead so the child (clock 0) runs and suspends
           at the next yield *)
        Sched.tick 500;
        Sched.yield ();
        Sched.wake t;
        Sched.join t)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  check_bool "woken clock advanced" true (r.Sched.makespan >= 500)

let sched_no_nesting () =
  ignore
    (Sched.run (fun () ->
         match Sched.run (fun () -> ()) with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "nested run should fail"))

let sched_not_running () =
  (match Sched.yield () with
  | exception Sched.Not_in_simulation -> ()
  | () -> Alcotest.fail "yield outside run should raise");
  check_bool "running flag" false (Sched.running ())

let sched_determinism policy () =
  let trace () =
    let log = ref [] in
    let r =
      Sched.run ~policy (fun () ->
          let mk id () =
            for i = 1 to 5 do
              log := (id, i) :: !log;
              Sched.tick ((id * 7) + i);
              Sched.yield ()
            done
          in
          let ts = List.init 3 (fun i -> Sched.spawn (mk i)) in
          List.iter Sched.join ts)
    in
    (!log, r.Sched.makespan)
  in
  let a = trace () and b = trace () in
  check_bool "two runs identical" true (a = b)

let sched_rebase () =
  let r =
    Sched.run (fun () ->
        Sched.tick 1_000_000;
        Sched.rebase ();
        Sched.tick 5)
  in
  check_int "makespan excludes pre-rebase work" 5 r.Sched.makespan

let sched_controlled_policy () =
  (* force the scheduler to always prefer the highest tid *)
  let choose _cur runnables = List.fold_left max 0 runnables in
  let order = ref [] in
  let r =
    Sched.run ~policy:(Sched.Controlled choose) (fun () ->
        let mk id () = order := id :: !order in
        let a = Sched.spawn (mk 1) in
        let b = Sched.spawn (mk 2) in
        Sched.join a;
        Sched.join b)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  Alcotest.(check (list int)) "highest tid ran first" [ 1; 2 ] !order

let sched_thread_count () =
  ignore
    (Sched.run (fun () ->
         let t = Sched.spawn (fun () -> ()) in
         Sched.join t;
         check_int "two threads" 2 (Sched.thread_count ())))

(* ------------------------------------------------------------------ *)
(* Sim_mutex                                                           *)
(* ------------------------------------------------------------------ *)

let mutex_excludes () =
  let violations = ref 0 in
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         let inside = ref false in
         let worker () =
           for _ = 1 to 20 do
             Sim_mutex.lock m;
             if !inside then incr violations;
             inside := true;
             Sched.yield ();
             Sched.tick 3;
             Sched.yield ();
             inside := false;
             Sim_mutex.unlock m
           done
         in
         let ts = List.init 4 (fun _ -> Sched.spawn worker) in
         List.iter Sched.join ts));
  check_int "mutual exclusion" 0 !violations

let mutex_reentrant () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         Sim_mutex.lock m;
         Sim_mutex.lock m;
         check_bool "held" true (Sim_mutex.held m);
         Sim_mutex.unlock m;
         check_bool "still held after one unlock" true (Sim_mutex.held m);
         Sim_mutex.unlock m;
         check_bool "released" false (Sim_mutex.held m)))

let mutex_wrong_owner () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         Sim_mutex.lock m;
         let t =
           Sched.spawn (fun () ->
               match Sim_mutex.unlock m with
               | exception Invalid_argument _ -> ()
               | () -> Alcotest.fail "non-owner unlock should fail")
         in
         Sched.yield ();
         Sched.join t;
         Sim_mutex.unlock m))

let mutex_contention_serializes () =
  (* two threads each hold the lock for 100 cycles: makespan ~200 *)
  let r =
    Sched.run (fun () ->
        let m = Sim_mutex.create Cost.free in
        let worker () =
          Sim_mutex.lock m;
          Sched.tick 100;
          Sched.yield ();
          Sim_mutex.unlock m
        in
        let a = Sched.spawn worker and b = Sched.spawn worker in
        Sched.join a;
        Sched.join b)
  in
  check_bool "serialized" true (r.Sched.makespan >= 200)

let mutex_with_lock_exn_safe () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         (try Sim_mutex.with_lock m (fun () -> failwith "inner")
          with Failure _ -> ());
         check_bool "released after exception" false (Sim_mutex.held m)))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_alloc_defaults () =
  Heap.reset ();
  let o = Heap.alloc ~cls:"C" 3 in
  check_int "oid deterministic" 1 o.Heap.oid;
  check_int "nfields" 3 (Heap.nfields o);
  check_bool "default null" true (Heap.get o 0 = Heap.Vnull);
  check_int "public txrec" Heap.shared_txrec0 (Atomic.get o.Heap.txrec)

let heap_reset_resets_ids () =
  Heap.reset ();
  let a = Heap.alloc ~cls:"C" 1 in
  Heap.reset ();
  let b = Heap.alloc ~cls:"C" 1 in
  check_int "ids restart" a.Heap.oid b.Heap.oid

let heap_get_set () =
  Heap.reset ();
  let o = Heap.alloc ~cls:"C" 2 in
  Heap.set o 1 (Heap.Vint 42);
  check_bool "roundtrip" true (Heap.get o 1 = Heap.Vint 42)

let heap_value_equal () =
  Heap.reset ();
  let a = Heap.alloc ~cls:"C" 1 and b = Heap.alloc ~cls:"C" 1 in
  check_bool "same ref" true (Heap.value_equal (Heap.Vref a) (Heap.Vref a));
  check_bool "diff refs" false (Heap.value_equal (Heap.Vref a) (Heap.Vref b));
  check_bool "ints" true (Heap.value_equal (Heap.Vint 3) (Heap.Vint 3));
  check_bool "int/null" false (Heap.value_equal (Heap.Vint 3) Heap.Vnull)

let heap_array () =
  Heap.reset ();
  let a = Heap.alloc_array 4 (Heap.Vint 0) in
  check_bool "array kind" true (a.Heap.kind = `Arr);
  check_int "length" 4 (Heap.nfields a)

let heap_statics () =
  Heap.reset ();
  let s = Heap.alloc_statics ~cls:"Main" 2 in
  check_bool "statics kind" true (s.Heap.kind = `Statics)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "runtime:rng",
      [
        case "deterministic" rng_deterministic;
        case "seed sensitivity" rng_seed_sensitivity;
        case "int bounds" rng_bounds;
        case "copy" rng_copy_independent;
        case "split" rng_split;
        case "float bounds" rng_float_bounds;
        case "bool balanced" rng_bool_balanced;
      ] );
    ( "runtime:sched",
      [
        case "basic run" sched_basic_run;
        case "spawn/join" sched_spawn_join;
        case "clock ticks" sched_clock_ticks;
        case "join advances clock" sched_join_advances_clock;
        case "min-clock parallelism" sched_min_clock_parallelism;
        case "exceptions recorded" sched_exn_recorded;
        case "fuel" sched_fuel;
        case "deadlock detection" sched_deadlock_detected;
        case "wake" sched_wake;
        case "no nesting" sched_no_nesting;
        case "not running" sched_not_running;
        case "determinism (min-clock)" (sched_determinism Sched.Min_clock);
        case "determinism (round-robin)" (sched_determinism Sched.Round_robin);
        case "determinism (random 1)" (sched_determinism (Sched.Random 1));
        case "rebase" sched_rebase;
        case "controlled policy" sched_controlled_policy;
        case "thread count" sched_thread_count;
      ] );
    ( "runtime:mutex",
      [
        case "mutual exclusion" mutex_excludes;
        case "reentrant" mutex_reentrant;
        case "wrong owner" mutex_wrong_owner;
        case "contention serializes" mutex_contention_serializes;
        case "with_lock exn safe" mutex_with_lock_exn_safe;
      ] );
    ( "runtime:heap",
      [
        case "alloc defaults" heap_alloc_defaults;
        case "reset ids" heap_reset_resets_ids;
        case "get/set" heap_get_set;
        case "value equality" heap_value_equal;
        case "arrays" heap_array;
        case "statics" heap_statics;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Heap-based Min_clock picker (PR 4): the binary heap must reproduce  *)
(* the old linear min-scan's pick sequence bit-for-bit                 *)
(* ------------------------------------------------------------------ *)

(* Reference model: workers indexed 1..n, each a list of tick amounts.
   A worker is picked len+1 times (start, then once per yield); pick k
   executes tick k. The model is the old linear scan: min (clock, tid)
   over the unfinished workers. Main (tid 0) spawns then joins; its own
   picks never reorder the workers (it only suspends and bumps its own
   clock), so the workers' resume sequence is exactly the model's. *)
let model_min_clock_order workss =
  let clocks = Array.of_list (List.map (fun _ -> 0) workss) in
  let rest = Array.of_list workss in
  let alive = Array.map (fun _ -> true) clocks in
  let n = Array.length clocks in
  let order = ref [] in
  let any_alive () = Array.exists (fun a -> a) alive in
  while any_alive () do
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if
        alive.(i)
        && (!best = -1
           || clocks.(i) < clocks.(!best)
           || (clocks.(i) = clocks.(!best) && i < !best))
      then best := i
    done;
    let i = !best in
    order := (i + 1) :: !order;
    (match rest.(i) with
    | c :: tl ->
        clocks.(i) <- clocks.(i) + c;
        rest.(i) <- tl
    | [] -> alive.(i) <- false)
  done;
  List.rev !order

let run_min_clock_order workss =
  let order = ref [] in
  let r =
    Sched.run ~policy:Sched.Min_clock (fun () ->
        let ts =
          List.map
            (fun works ->
              Sched.spawn (fun () ->
                  order := Sched.self () :: !order;
                  List.iter
                    (fun c ->
                      Sched.tick c;
                      Sched.yield ();
                      order := Sched.self () :: !order)
                    works))
            workss
        in
        List.iter Sched.join ts)
  in
  Alcotest.(check bool) "completed" true (r.Sched.status = Sched.Completed);
  List.rev !order

let sched_heap_qcheck =
  let open QCheck in
  [
    (* heap pick order = linear-scan model, with tick 0 forcing clock
       ties so the (clock, tid) tie-break is exercised *)
    Test.make ~name:"sched: heap picks = linear min-scan model" ~count:300
      (list_of_size (Gen.int_range 1 7)
         (list_of_size (Gen.int_range 0 9) (int_range 0 3)))
      (fun workss -> run_min_clock_order workss = model_min_clock_order workss);
    (* replay a recorded schedule trace through the Controlled policy:
       the same decisions must reproduce the run exactly *)
    Test.make ~name:"sched: recorded trace replays identically" ~count:100
      (pair (int_range 0 9999)
         (list_of_size (Gen.int_range 1 5)
            (list_of_size (Gen.int_range 1 8) (int_range 0 5))))
      (fun (seed, workss) ->
        let record policy =
          let order = ref [] in
          let note () = order := Sched.self () :: !order in
          let body works () =
            note ();
            List.iter
              (fun c ->
                Sched.tick c;
                Sched.yield ();
                note ())
              works
          in
          let r =
            Sched.run ~policy (fun () ->
                note ();
                (* main spawns then runs its own segment; no joins, so
                   every scheduling decision hits an instrumented resume
                   point and the recording is the full pick sequence *)
                (match workss with
                | main_works :: rest ->
                    List.iter (fun w -> ignore (Sched.spawn (body w))) rest;
                    List.iter
                      (fun c ->
                        Sched.tick c;
                        Sched.yield ();
                        note ())
                      main_works
                | [] -> ()))
          in
          (List.rev !order, r.Sched.makespan, r.Sched.status)
        in
        let trace, makespan, status = record (Sched.Random seed) in
        (* every pick resumes an instrumented point, so the recording is
           the complete decision sequence, first pick included *)
        let script = ref trace in
        let controlled =
          Sched.Controlled
            (fun _current ready ->
              match !script with
              | tid :: tl ->
                  script := tl;
                  if List.mem tid ready then tid else List.hd ready
              | [] -> List.hd ready)
        in
        let trace', makespan', status' = record controlled in
        status = Sched.Completed && status' = Sched.Completed
        && trace = trace' && makespan = makespan' && !script = []);
  ]

(* Wake/suspend through the heap: wakes re-enqueue at the waker's clock,
   so the resume order interleaves by (clock, tid), not by wake order. *)
let sched_heap_wake_order () =
  let order = ref [] in
  let note () = order := Sched.self () :: !order in
  let r =
    Sched.run ~policy:Sched.Min_clock (fun () ->
        let ws =
          List.init 3 (fun _ ->
              Sched.spawn (fun () ->
                  note ();
                  Sched.suspend ();
                  note ()))
        in
        (* workers all start and suspend at clock 0 while main is parked
           at 5; then wake w3 at clock 5 and w1 at clock 6 *)
        Sched.tick 5;
        Sched.yield ();
        Sched.wake (List.nth ws 2);
        Sched.tick 1;
        Sched.wake (List.nth ws 0);
        Sched.yield ();
        Sched.wake (List.nth ws 1);
        List.iter Sched.join ws)
  in
  Alcotest.(check bool) "completed" true (r.Sched.status = Sched.Completed);
  Alcotest.(check (list int)) "resume order follows (clock, tid)"
    [ 1; 2; 3; 3; 1; 2 ]
    (List.rev !order)

let sched_runnable_count () =
  Sched.run (fun () ->
      check_int "alone" 0 (Sched.runnable_count ());
      let ts = List.init 3 (fun _ -> Sched.spawn (fun () -> Sched.tick 1)) in
      check_int "three spawned" 3 (Sched.runnable_count ());
      ignore (Sched.spawn (fun () -> ()) : Sched.tid);
      check_int "four" 4 (Sched.runnable_count ());
      List.iter Sched.join ts;
      check_int "all spawned threads done" 0 (Sched.runnable_count ()))
  |> fun r ->
  Alcotest.(check bool) "completed" true (r.Sched.status = Sched.Completed)

let suite =
  suite
  @ [
      ( "runtime:sched-heap",
        List.map QCheck_alcotest.to_alcotest sched_heap_qcheck
        @ [
            case "wake order follows (clock, tid)" sched_heap_wake_order;
            case "O(1) runnable count" sched_runnable_count;
          ] );
    ]
