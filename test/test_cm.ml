(* The contention-management subsystem: policy decision procedures (pure
   unit tests against Stm_cm.Cm), fairness accounting, the retry-budget /
   starvation contract of Stm.atomic, and the livelock stress scenarios'
   designed outcomes (timestamp starvation-free, suicide not). *)

open Stm_core
open Stm_runtime
module Cm = Stm_cm.Cm
module Policy = Stm_cm.Policy
module Fairness = Stm_cm.Fairness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Policy naming                                                       *)
(* ------------------------------------------------------------------ *)

let policy_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check (option (of_pp Policy.pp)))
        (Policy.to_string p) (Some p)
        (Policy.of_string (Policy.to_string p)))
    Policy.all

let policy_aliases () =
  let some p = Some p in
  Alcotest.(check (option (of_pp Policy.pp)))
    "wound_wait" (some Policy.Wound_wait)
    (Policy.of_string "wound_wait");
  Alcotest.(check (option (of_pp Policy.pp)))
    "greedy" (some Policy.Timestamp)
    (Policy.of_string "greedy");
  Alcotest.(check (option (of_pp Policy.pp)))
    "bogus" None (Policy.of_string "bogus")

(* ------------------------------------------------------------------ *)
(* Decision procedures (no scheduler, no heap)                         *)
(* ------------------------------------------------------------------ *)

let retries = 4

let manager ?(seed = 0) policy = Cm.create ~seed ~max_retries:retries ~cost:Cost.default policy

(* Two contenders on one manager: txid 1 (thread 1, born at 0) and
   txid 2 (thread 2, born at [birth2]). *)
let two_txns ?(birth2 = 10) m =
  Cm.on_begin m ~tid:1 ~txid:1 ~now:0;
  Cm.on_begin m ~tid:2 ~txid:2 ~now:birth2

let conflict ?(attempt = 0) ?(work = 1) ~txid ~tid ~owner () =
  { Cm.txid; tid; attempt; writer = true; work; owner; now = 50 }

let is_wait = function Cm.Wait _ -> true | _ -> false
let is_abort_self = function Cm.Abort_self -> true | _ -> false

let wound_victim = function
  | Cm.Wound { victim; _ } -> Some victim
  | _ -> None

let suicide_waits_then_aborts () =
  let m = manager Policy.Suicide in
  two_txns m;
  check_bool "waits below budget" true
    (is_wait (Cm.on_conflict m (conflict ~txid:1 ~tid:1 ~owner:(Some 2) ())));
  check_bool "never wounds, aborts itself at budget" true
    (is_abort_self
       (Cm.on_conflict m
          (conflict ~attempt:retries ~txid:1 ~tid:1 ~owner:(Some 2) ())))

let wound_wait_by_txid () =
  let m = manager Policy.Wound_wait in
  two_txns m;
  Alcotest.(check (option int))
    "older txid wounds" (Some 2)
    (wound_victim (Cm.on_conflict m (conflict ~txid:1 ~tid:1 ~owner:(Some 2) ())));
  check_bool "younger txid waits" true
    (is_wait (Cm.on_conflict m (conflict ~txid:2 ~tid:2 ~owner:(Some 1) ())));
  check_bool "budget still bounds the younger side" true
    (is_abort_self
       (Cm.on_conflict m
          (conflict ~attempt:retries ~txid:2 ~tid:2 ~owner:(Some 1) ())))

let timestamp_oldest_never_loses () =
  let m = manager Policy.Timestamp in
  two_txns m;
  Alcotest.(check (option int))
    "oldest wounds even past the budget" (Some 2)
    (wound_victim
       (Cm.on_conflict m
          (conflict ~attempt:(retries + 3) ~txid:1 ~tid:1 ~owner:(Some 2) ())));
  check_bool "younger waits without burning budget" true
    (is_wait
       (Cm.on_conflict m
          (conflict ~attempt:(retries + 3) ~txid:2 ~tid:2 ~owner:(Some 1) ())));
  check_bool "anonymous owner falls back to bounded retries" true
    (is_abort_self
       (Cm.on_conflict m
          (conflict ~attempt:retries ~txid:2 ~tid:2 ~owner:None ())))

let timestamp_age_survives_restart () =
  let m = manager Policy.Timestamp in
  two_txns m;
  (* txn 1 aborts and restarts as txid 3: it keeps its birth, so it still
     outranks txn 2 even though 3 > 2 *)
  Cm.on_abort m ~txid:1 ~restart:true ~wounded:false ~work:5;
  Cm.on_begin m ~tid:1 ~txid:3 ~now:90;
  Alcotest.(check (option int))
    "restarted incarnation keeps its age" (Some 2)
    (wound_victim (Cm.on_conflict m (conflict ~txid:3 ~tid:1 ~owner:(Some 2) ())))

let timestamp_age_dropped_on_giveup () =
  let m = manager Policy.Timestamp in
  two_txns m;
  (* txn 1 is torn down for good; its thread's next block is younger than
     txn 2 and must wait, not wound *)
  Cm.on_abort m ~txid:1 ~restart:false ~wounded:false ~work:5;
  Cm.on_begin m ~tid:1 ~txid:3 ~now:90;
  check_bool "fresh block after give-up is younger" true
    (is_wait (Cm.on_conflict m (conflict ~txid:3 ~tid:1 ~owner:(Some 2) ())))

let karma_banks_lost_work () =
  let m = manager Policy.Karma in
  two_txns m;
  (* equal priority: txn 2 (larger first-txid) loses the tie-break and
     waits. [work] counts toward priority, so keep both sides at zero. *)
  check_bool "no karma yet: waits" true
    (is_wait
       (Cm.on_conflict m (conflict ~work:0 ~txid:2 ~tid:2 ~owner:(Some 1) ())));
  (* two aborted incarnations bank karma for the block *)
  Cm.on_abort m ~txid:2 ~restart:true ~wounded:false ~work:10;
  Cm.on_begin m ~tid:2 ~txid:4 ~now:60;
  Cm.on_abort m ~txid:4 ~restart:true ~wounded:false ~work:10;
  Cm.on_begin m ~tid:2 ~txid:5 ~now:70;
  Alcotest.(check (option int))
    "banked karma now outranks the owner" (Some 1)
    (wound_victim
       (Cm.on_conflict m (conflict ~work:0 ~txid:5 ~tid:2 ~owner:(Some 1) ())))

let exp_backoff_seeded () =
  let delays seed =
    let m = manager ~seed Policy.Exp_backoff in
    Cm.on_begin m ~tid:1 ~txid:1 ~now:0;
    List.init retries (fun attempt ->
        match Cm.on_conflict m (conflict ~attempt ~txid:1 ~tid:1 ~owner:None ()) with
        | Cm.Wait d -> d
        | _ -> Alcotest.fail "expected Wait")
  in
  Alcotest.(check (list int)) "same seed, same delays" (delays 7) (delays 7);
  check_bool "delays are positive" true (List.for_all (fun d -> d > 0) (delays 7));
  check_bool "different seeds diverge" true (delays 7 <> delays 8)

let backoff_schedule () =
  let cost = { Cost.default with Cost.backoff_base = 10; backoff_cap = 100 } in
  check_int "attempt 0" 10 (Cm.backoff_delay cost ~attempt:0);
  check_int "attempt 2" 40 (Cm.backoff_delay cost ~attempt:2);
  check_int "capped" 100 (Cm.backoff_delay cost ~attempt:20);
  check_bool "jitter separates threads" true
    (Cm.jittered_delay cost ~tid:1 ~attempt:3
    <> Cm.jittered_delay cost ~tid:2 ~attempt:3)

(* ------------------------------------------------------------------ *)
(* Fairness accounting                                                 *)
(* ------------------------------------------------------------------ *)

let jain_index () =
  let f = Fairness.create () in
  Alcotest.(check (float 1e-9)) "empty is fair" 1.0 (Fairness.jain f);
  Fairness.on_commit f ~tid:1;
  Fairness.on_commit f ~tid:2;
  Fairness.on_commit f ~tid:3;
  Alcotest.(check (float 1e-9)) "uniform is fair" 1.0 (Fairness.jain f);
  let g = Fairness.create () in
  Fairness.on_commit g ~tid:1;
  Fairness.on_abort g ~tid:2 ~wasted:5;
  Fairness.on_abort g ~tid:3 ~wasted:5;
  Alcotest.(check (float 1e-9))
    "one of three threads gets everything" (1. /. 3.) (Fairness.jain g)

let abort_streaks () =
  let f = Fairness.create () in
  Fairness.on_abort f ~tid:1 ~wasted:10;
  Fairness.on_abort f ~tid:1 ~wasted:10;
  Fairness.on_commit f ~tid:1;
  Fairness.on_abort f ~tid:1 ~wasted:10;
  check_int "streak resets on commit" 2 (Fairness.max_consec_aborts_of f ~tid:1);
  check_int "totals keep counting" 3 (Fairness.aborts f ~tid:1);
  check_int "wasted accumulates" 30 (Fairness.wasted_cycles f ~tid:1)

let starved_rules () =
  let f = Fairness.create () in
  (* tid 1: long streak but eventually commits - starved by threshold *)
  for _ = 1 to 5 do
    Fairness.on_abort f ~tid:1 ~wasted:1
  done;
  Fairness.on_commit f ~tid:1;
  (* tid 2: a single abort and no commit ever - starved by zero progress *)
  Fairness.on_abort f ~tid:2 ~wasted:1;
  (* tid 3: healthy *)
  Fairness.on_commit f ~tid:3;
  Alcotest.(check (list int))
    "threshold and zero-commit rules" [ 1; 2 ]
    (Fairness.starved f ~threshold:5);
  Alcotest.(check (list int))
    "higher threshold keeps only the zero-commit thread" [ 2 ]
    (Fairness.starved f ~threshold:6)

let fairness_window () =
  let f = Fairness.create () in
  Fairness.on_commit f ~tid:1;
  Fairness.on_abort f ~tid:1 ~wasted:7;
  let early = Fairness.copy f in
  Fairness.on_commit f ~tid:1;
  Fairness.on_commit f ~tid:2;
  let w = Fairness.sub f early in
  check_int "window commits" 1 (Fairness.commits w ~tid:1);
  check_int "window aborts" 0 (Fairness.aborts w ~tid:1);
  check_int "new thread appears in window" 1 (Fairness.commits w ~tid:2)

(* ------------------------------------------------------------------ *)
(* Retry budget / Stm.Starved, under every policy                      *)
(* ------------------------------------------------------------------ *)

(* A record held by an anonymous (non-transactional) owner can never be
   wounded, so every policy - including timestamp - must fall back to the
   bounded retry budget and give the runner a clean [Starved] instead of
   spinning forever. *)
let starved_after_budget policy () =
  let cfg =
    {
      Config.eager_weak with
      Config.cm = policy;
      cost = Cost.free;
      max_txn_retries = 3;
      max_txn_restarts = 2;
    }
  in
  let outcome = ref None in
  let result, _ =
    Stm.run ~cfg (fun () ->
        let obj = Stm.alloc_public ~cls:"T" 1 in
        Stm.write obj 0 (Stm.vint 0);
        let word = Barriers.acquire_anon (Stm.config ()) (Stm.stats ()) obj in
        (try Stm.atomic (fun () -> Stm.write obj 0 (Stm.vint 1))
         with Stm.Starved { attempts } -> outcome := Some attempts);
        Barriers.release_anon (Stm.config ()) obj word)
  in
  check_bool "run completed" true (result.Sched.status = Sched.Completed);
  Alcotest.(check (list (pair int Alcotest.reject)))
    "no escaped exceptions" []
    (List.map (fun (t, e) -> (t, e)) result.Sched.exns);
  Alcotest.(check (option int))
    "Starved after max_txn_restarts attempts" (Some 2) !outcome

let starved_cases =
  List.map
    (fun p ->
      Alcotest.test_case
        ("Starved under " ^ Policy.to_string p)
        `Quick (starved_after_budget p))
    Policy.all

(* ------------------------------------------------------------------ *)
(* Stress scenarios: the designed contrast                             *)
(* ------------------------------------------------------------------ *)

module Stress = Stm_harness.Stress

let timestamp_starvation_free scenario () =
  let r = Stress.run ~seed:0 ~cm:Policy.Timestamp scenario in
  check_bool "completed within fuel" true r.Stress.completed;
  Alcotest.(check (list int)) "no starved thread" [] r.Stress.starved

let suicide_starves_on_ring () =
  let r = Stress.run ~seed:0 ~cm:Policy.Suicide Stress.Inversion_chain in
  check_bool "still makes eventual progress" true r.Stress.completed;
  check_bool "but some thread starves" true (r.Stress.starved <> []);
  check_bool "with a pathological abort streak" true
    (Fairness.max_consec_aborts (Stm_obs.Metrics.fairness r.Stress.metrics)
    >= Stress.starvation_threshold)

let every_policy_completes scenario () =
  List.iter
    (fun p ->
      let r = Stress.run ~seed:0 ~cm:p scenario in
      check_bool (Policy.to_string p ^ " completes") true r.Stress.completed)
    Policy.all

let stress_deterministic () =
  let r1 = Stress.run ~seed:0 ~cm:Policy.Timestamp Stress.Long_vs_short in
  let r2 = Stress.run ~seed:0 ~cm:Policy.Timestamp Stress.Long_vs_short in
  check_int "same makespan" r1.Stress.makespan r2.Stress.makespan;
  check_int "same aborts" r1.Stress.stats.Stats.aborts r2.Stress.stats.Stats.aborts;
  let r3 = Stress.run ~seed:1 ~cm:Policy.Timestamp Stress.Long_vs_short in
  check_bool "different seed, different schedule" true
    (r3.Stress.makespan <> r1.Stress.makespan
    || r3.Stress.stats.Stats.aborts <> r1.Stress.stats.Stats.aborts)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "cm:policy",
      [
        case "to_string/of_string roundtrip" policy_roundtrip;
        case "aliases" policy_aliases;
        case "backoff schedule" backoff_schedule;
      ] );
    ( "cm:decisions",
      [
        case "suicide waits then aborts itself" suicide_waits_then_aborts;
        case "wound-wait wounds by txid order" wound_wait_by_txid;
        case "timestamp: oldest never loses" timestamp_oldest_never_loses;
        case "timestamp: age survives restart" timestamp_age_survives_restart;
        case "timestamp: age dropped on give-up" timestamp_age_dropped_on_giveup;
        case "karma banks lost work" karma_banks_lost_work;
        case "exp-backoff is seeded and reproducible" exp_backoff_seeded;
      ] );
    ( "cm:fairness",
      [
        case "jain index" jain_index;
        case "consecutive-abort streaks" abort_streaks;
        case "starvation rules" starved_rules;
        case "snapshot windows" fairness_window;
      ] );
    ("cm:starved", starved_cases);
    ( "cm:stress",
      [
        case "timestamp starvation-free: long-vs-short"
          (timestamp_starvation_free Stress.Long_vs_short);
        case "timestamp starvation-free: livelock-pair"
          (timestamp_starvation_free Stress.Livelock_pair);
        case "timestamp starvation-free: inversion-chain"
          (timestamp_starvation_free Stress.Inversion_chain);
        case "suicide starves on the ring" suicide_starves_on_ring;
        case "every policy completes the livelock pair"
          (every_policy_completes Stress.Livelock_pair);
        case "stress runs are deterministic per seed" stress_deterministic;
      ] );
  ]
