(* Tests for the observability layer: JSON emitter, ring buffer,
   histograms, sink level filtering, the event recorder, the per-site
   barrier profiler (whose column sums must equal the run's global
   Stats), metrics snapshot/diff, and the exporters. *)

open Stm_runtime
open Stm_core
open Stm_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let case name f = Alcotest.test_case name `Quick f

let in_sim f =
  let result = Sched.run f in
  (match result.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  Alcotest.(check bool) "completed" true (result.Sched.status = Sched.Completed)

let with_stm ?(cfg = Config.eager_weak) f =
  Heap.reset ();
  Stm.install cfg;
  Fun.protect ~finally:Stm.uninstall (fun () -> in_sim f)

let vi = Stm.vint

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let json_basics () =
  check_string "null" "null" (Json.to_string Json.Null);
  check_string "int" "42" (Json.to_string (Json.Int 42));
  check_string "neg" "-7" (Json.to_string (Json.Int (-7)));
  check_string "bool" "true" (Json.to_string (Json.Bool true));
  check_string "list" "[1,2,3]"
    (Json.to_string (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]));
  check_string "obj" {|{"a":1,"b":[true,null]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null ]);
          ]))

let json_escaping () =
  check_string "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.Str {|a"b\c|}));
  check_string "newline tab" {|"a\nb\tc"|}
    (Json.to_string (Json.Str "a\nb\tc"));
  check_string "control char" "\"\\u0001\"" (Json.to_string (Json.Str "\001"))

let json_of_assoc () =
  check_string "counters" {|{"x":1,"y":2}|}
    (Json.to_string (Json.of_assoc [ ("x", 1); ("y", 2) ]))

let json_unicode_escapes () =
  (* BMP code points decode to UTF-8 *)
  (match Json.of_string {|"caf\u00e9"|} with
  | Ok (Json.Str s) -> check_string "latin-1 supplement" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "BMP escape did not parse");
  (match Json.of_string {|"\u2713"|} with
  | Ok (Json.Str s) -> check_string "3-byte BMP" "\xe2\x9c\x93" s
  | _ -> Alcotest.fail "U+2713 did not parse");
  (* a surrogate pair is one supplementary-plane code point: U+1F600 *)
  (match Json.of_string {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) -> check_string "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair did not parse");
  (* decoded non-BMP text round-trips: the emitter passes raw UTF-8 *)
  (match Json.of_string {|"\ud83d\ude00"|} with
  | Ok j -> (
      match Json.of_string (Json.to_string j) with
      | Ok j' -> check_string "round trip" (Json.to_string j) (Json.to_string j')
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* lone surrogates are rejected, not silently mangled *)
  check_bool "lone high surrogate rejected" true
    (Result.is_error (Json.of_string {|"\ud83d"|}));
  check_bool "lone low surrogate rejected" true
    (Result.is_error (Json.of_string {|"\ude00x"|}));
  check_bool "high surrogate before non-escape rejected" true
    (Result.is_error (Json.of_string {|"\ud83dZ"|}))

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let ring_basics () =
  let r = Ring.create ~capacity:4 in
  check_int "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  check_int "two" 2 (Ring.length r);
  check_bool "order" true (Ring.to_list r = [ 1; 2 ]);
  check_int "no drops" 0 (Ring.dropped r)

let ring_wraps () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  check_int "full" 3 (Ring.length r);
  check_int "dropped oldest" 2 (Ring.dropped r);
  check_bool "keeps newest, oldest first" true (Ring.to_list r = [ 3; 4; 5 ]);
  Ring.clear r;
  check_int "cleared" 0 (Ring.length r);
  check_int "drop count cleared" 0 (Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Hist                                                                *)
(* ------------------------------------------------------------------ *)

let hist_basics () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 1; 2; 3; 100; 1000 ];
  check_int "count" 5 (Hist.count h);
  check_int "sum" 1106 (Hist.sum h);
  check_int "min" 1 (Hist.min_value h);
  check_int "max" 1000 (Hist.max_value h);
  check_bool "p50 bounds the median sample" true (Hist.quantile h 0.5 >= 3);
  check_bool "p100 covers max" true (Hist.quantile h 1.0 >= 1000)

let hist_quantile_empty () =
  let h = Hist.create () in
  check_int "empty p50" 0 (Hist.quantile h 0.5);
  check_int "empty p100" 0 (Hist.quantile h 1.0);
  check_int "empty p0" 0 (Hist.quantile h 0.0)

let hist_quantile_single_sample () =
  (* 5 lands in the (4, 8] bucket; without the min/max clamp every
     quantile would read the bucket bound 8. *)
  let h = Hist.create () in
  Hist.add h 5;
  List.iter
    (fun q ->
      check_int (Printf.sprintf "single-sample q=%.2f" q) 5 (Hist.quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let hist_quantile_saturated_top_bucket () =
  (* Samples past the top bucket's nominal power-of-two bound all land in
     the last bucket; [q = 1.0] must still read the true maximum, not the
     capped bucket bound. *)
  let h = Hist.create () in
  let huge = max_int / 2 in
  List.iter (Hist.add h) [ 1; huge ];
  check_int "p100 is the true max" huge (Hist.quantile h 1.0);
  check_int "p25 is the low sample" 1 (Hist.quantile h 0.25);
  check_bool "p50 within observed range" true
    (Hist.quantile h 0.5 >= 1 && Hist.quantile h 0.5 <= huge)

let hist_sub () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 10; 20 ];
  let early = Hist.copy h in
  List.iter (Hist.add h) [ 30; 40; 50 ];
  let d = Hist.sub h early in
  check_int "window count" 3 (Hist.count d);
  check_int "window sum" 120 (Hist.sum d);
  check_int "original intact" 5 (Hist.count h)

(* ------------------------------------------------------------------ *)
(* Trace level filtering (satellite: no Lazy.force when filtered)      *)
(* ------------------------------------------------------------------ *)

let level_filter_no_force () =
  let seen = ref 0 in
  Trace.set_sink ~level:Trace.Info (Some (fun _ -> incr seen));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () ->
      let forced = ref false in
      Trace.emit ~level:Trace.Debug
        (lazy
          (forced := true;
           Trace.Backoff { tid = 0; attempt = 1; delay = 2 }));
      check_bool "debug payload not forced by info sink" false !forced;
      check_int "debug event not delivered" 0 !seen;
      Trace.emit (lazy (Trace.Txn_begin { txid = 1; tid = 0 }));
      check_int "info event delivered" 1 !seen;
      check_bool "enabled_at info" true (Trace.enabled_at Trace.Info);
      check_bool "not enabled_at debug" false (Trace.enabled_at Trace.Debug))

(* ------------------------------------------------------------------ *)
(* Stats serialization                                                 *)
(* ------------------------------------------------------------------ *)

let stats_to_assoc () =
  let s = Stats.create () in
  s.Stats.commits <- 3;
  s.Stats.conflicts <- 7;
  let a = Stats.to_assoc s in
  check_int "18 counters" 18 (List.length a);
  check_int "commits" 3 (List.assoc "commits" a);
  check_int "conflicts" 7 (List.assoc "conflicts" a);
  let j = Json.to_string (Json.of_assoc a) in
  check_bool "json has commits" true (contains j {|"commits":3|})

(* ------------------------------------------------------------------ *)
(* Recorder on a live 2-thread run                                     *)
(* ------------------------------------------------------------------ *)

(* Two threads, transactional increments on a shared counter plus a
   non-transactional read each round: produces begins, commits (and
   usually conflicts/aborts), barrier events, and a final value we can
   assert. *)
let run_two_thread_workload () =
  with_stm ~cfg:Config.eager_strong (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let worker () =
        for _ = 1 to 20 do
          Stm.atomic (fun () ->
              let v = Stm.to_int (Stm.read o 0) in
              Stm.write o 0 (vi (v + 1)));
          ignore (Stm.read o 0)
        done
      in
      let t1 = Sched.spawn worker in
      let t2 = Sched.spawn worker in
      Sched.join t1;
      Sched.join t2;
      check_int "counter" 40 (Stm.to_int (Stm.read o 0)))

let recorder_balanced_events () =
  let r = Recorder.create () in
  Recorder.install r;
  Fun.protect ~finally:Recorder.uninstall run_two_thread_workload;
  let entries = Recorder.entries r in
  check_int "nothing dropped" 0 (Recorder.dropped r);
  check_bool "captured events" true (List.length entries > 0);
  let count p =
    List.length (List.filter (fun (e : Recorder.entry) -> p e.Recorder.ev) entries)
  in
  let begins = count (function Trace.Txn_begin _ -> true | _ -> false) in
  let commits = count (function Trace.Txn_commit _ -> true | _ -> false) in
  let aborts = count (function Trace.Txn_abort _ -> true | _ -> false) in
  check_bool "some txns ran" true (begins >= 40);
  check_int "begins balance commits+aborts" begins (commits + aborts);
  check_int "all increments committed" 40 commits

let recorder_monotone_timestamps () =
  let r = Recorder.create () in
  Recorder.install r;
  Fun.protect ~finally:Recorder.uninstall run_two_thread_workload;
  let entries = Recorder.entries r in
  (* scheduler step is globally monotone across the stream *)
  let steps_ok =
    let rec go last = function
      | [] -> true
      | (e : Recorder.entry) :: rest ->
          e.Recorder.step >= last && go e.Recorder.step rest
    in
    go 0 entries
  in
  check_bool "steps monotone" true steps_ok;
  (* each thread's cost clock is monotone along its own events *)
  let per_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Recorder.entry) ->
      let last =
        Option.value ~default:0 (Hashtbl.find_opt per_tid e.Recorder.tid)
      in
      check_bool "per-thread ts monotone" true (e.Recorder.ts >= last);
      Hashtbl.replace per_tid e.Recorder.tid e.Recorder.ts)
    entries

let recorder_ring_bounded () =
  let r = Recorder.create ~capacity:16 () in
  Recorder.install r;
  Fun.protect ~finally:Recorder.uninstall run_two_thread_workload;
  check_int "bounded" 16 (Recorder.length r);
  check_bool "counted drops" true (Recorder.dropped r > 0)

(* ------------------------------------------------------------------ *)
(* Profiler sums == Stats                                              *)
(* ------------------------------------------------------------------ *)

let profiler_matches_stats () =
  (* install the STM by hand (not with_stm) so Stm.stats () can be read
     before uninstalling *)
  let p2 = Profiler.create () in
  Heap.reset ();
  Stm.install Config.eager_strong;
  Profiler.install p2;
  let stats = Stm.stats () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_sink None;
      Stm.uninstall ())
    (fun () ->
      in_sim (fun () ->
          let o = Stm.alloc_public ~cls:"C" 1 in
          Stm.write o 0 (vi 0);
          let worker () =
            for _ = 1 to 20 do
              Stm.atomic (fun () ->
                  let v = Stm.to_int (Stm.read o 0) in
                  Stm.write o 0 (vi (v + 1)));
              ignore (Stm.read o 0)
            done
          in
          let t1 = Sched.spawn worker in
          let t2 = Sched.spawn worker in
          Sched.join t1;
          Sched.join t2));
  (match Profiler.check_against_stats p2 stats with
  | [] -> ()
  | ms ->
      Alcotest.failf "profile/stats mismatch: %s"
        (String.concat ", "
           (List.map
              (fun (c, a, b) -> Printf.sprintf "%s profiled=%d stats=%d" c a b)
              ms)));
  let tot = Profiler.total p2 in
  check_bool "saw txn reads" true (tot.Profiler.txn_reads > 0);
  check_bool "saw non-txn reads" true (tot.Profiler.reads > 0);
  (* per-thread rollup covers the same activity *)
  let thread_sum =
    List.fold_left
      (fun acc (_, (c : Profiler.counters)) -> acc + c.Profiler.txn_reads)
      0 (Profiler.threads p2)
  in
  check_int "thread rollup sums to total" tot.Profiler.txn_reads thread_sum

(* Jt end-to-end: compiled sites resolve to file:line and the profile
   still reconciles with the interpreter's stats. *)
let profiler_jt_sites () =
  let src =
    "class C { int n; void inc() { atomic { n = n + 1; } } }\n\
     class W extends Thread {\n\
    \  C c;\n\
    \  void run() { for (int i = 0; i < 10; i++) { c.inc(); } }\n\
     }\n\
     class Main {\n\
    \  static void main() {\n\
    \    C c = new C();\n\
    \    W a = new W(); a.c = c;\n\
    \    W b = new W(); b.c = c;\n\
    \    int ta = spawn(a); int tb = spawn(b);\n\
    \    join(ta); join(tb);\n\
    \    print(c.n);\n\
    \  }\n\
     }\n"
  in
  let prog = Stm_jtlang.Jt.compile ~name:"two.jt" src in
  let p = Profiler.create () in
  Profiler.install p;
  let out =
    Fun.protect
      ~finally:(fun () -> Trace.set_sink None)
      (fun () -> Stm_ir.Interp.run ~cfg:Config.eager_strong prog)
  in
  check_bool "program printed 20" true (out.Stm_ir.Interp.prints = [ "20" ]);
  (match Profiler.check_against_stats p out.Stm_ir.Interp.stats with
  | [] -> ()
  | ms ->
      Alcotest.failf "profile/stats mismatch on jt run (%d cols)"
        (List.length ms));
  (* every active compiled site resolves to a two.jt:<line> label *)
  let resolved =
    List.filter
      (fun (site, _) ->
        match Stm_ir.Ir.site_loc prog site with
        | Some (f, l) -> f = "two.jt" && l > 0
        | None -> false)
      (Profiler.sites p)
  in
  check_bool "compiled sites carry file:line" true (List.length resolved > 0);
  (* the atomic increment's txn accesses land on line 1 (method inc) *)
  check_bool "inc() site on line 1" true
    (List.exists
       (fun (site, (c : Profiler.counters)) ->
         c.Profiler.txn_writes > 0
         && Stm_ir.Ir.site_loc prog site = Some ("two.jt", 1))
       (Profiler.sites p))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_counts_and_histograms () =
  let m = Metrics.create () in
  Metrics.install m;
  Fun.protect ~finally:(fun () -> Trace.set_sink None) run_two_thread_workload;
  check_int "commits" 40 (Metrics.commits m);
  check_int "begins = commits + aborts" (Metrics.begins m)
    (Metrics.commits m + Metrics.aborts m);
  check_int "latency samples = commits" (Metrics.commits m)
    (Hist.count (Metrics.commit_latency m));
  check_bool "commit latency positive" true
    (Hist.sum (Metrics.commit_latency m) > 0);
  let causes =
    List.fold_left
      (fun acc c -> acc + Metrics.abort_cause_count m c)
      0 Metrics.all_causes
  in
  check_int "causes partition aborts" (Metrics.aborts m) causes;
  (* JSON export parses back the same counters *)
  let j = Json.to_string (Metrics.to_json m) in
  check_bool "json mentions abort_causes" true (contains j {|"abort_causes"|});
  check_bool "json mentions commit_latency" true
    (contains j {|"commit_latency"|})

let metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.install m;
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () ->
      run_two_thread_workload ();
      let snap = Metrics.snapshot m in
      run_two_thread_workload ();
      let d = Metrics.diff (Metrics.snapshot m) snap in
      check_int "window commits" 40 (Metrics.commits d);
      check_int "window latency samples" 40
        (Hist.count (Metrics.commit_latency d));
      check_int "snapshot unchanged" 40 (Metrics.commits snap);
      check_int "running total" 80 (Metrics.commits m))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let export_chrome_shape () =
  let r = Recorder.create () in
  Recorder.install r;
  Fun.protect ~finally:Recorder.uninstall run_two_thread_workload;
  let entries = Recorder.entries r in
  let doc = Export.to_chrome entries in
  (match doc with
  | Json.Obj fields ->
      check_bool "has traceEvents" true (List.mem_assoc "traceEvents" fields);
      (match List.assoc "traceEvents" fields with
      | Json.List evs ->
          let phases =
            List.filter_map
              (function
                | Json.Obj f -> (
                    match List.assoc_opt "ph" f with
                    | Some (Json.Str p) -> Some p
                    | _ -> None)
                | _ -> None)
              evs
          in
          check_bool "metadata events" true (List.mem "M" phases);
          check_bool "duration slices" true (List.mem "X" phases);
          check_bool "instants" true (List.mem "i" phases);
          (* every X slice has a positive duration *)
          List.iter
            (function
              | Json.Obj f when List.assoc_opt "ph" f = Some (Json.Str "X") -> (
                  match List.assoc_opt "dur" f with
                  | Some (Json.Int d) ->
                      check_bool "slice dur positive" true (d >= 1)
                  | _ -> Alcotest.fail "X slice without dur")
              | _ -> ())
            evs
      | _ -> Alcotest.fail "traceEvents not a list")
  | _ -> Alcotest.fail "chrome doc not an object");
  (* serialized form is one self-contained JSON value *)
  let s = Json.to_string doc in
  check_bool "serializes" true (String.length s > 2)

let export_jsonl_shape () =
  let r = Recorder.create () in
  Recorder.install r;
  Fun.protect ~finally:Recorder.uninstall run_two_thread_workload;
  let buf = Buffer.create 1024 in
  Export.to_jsonl buf (Recorder.entries r);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per entry" (Recorder.length r) (List.length lines);
  List.iter
    (fun l ->
      check_bool "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let suite =
  [
    ( "obs:json",
      [
        case "basics" json_basics;
        case "escaping" json_escaping;
        case "of_assoc" json_of_assoc;
        case "unicode escapes incl. surrogate pairs" json_unicode_escapes;
      ] );
    ( "obs:ring",
      [ case "basics" ring_basics; case "wrap + dropped" ring_wraps ] );
    ( "obs:hist",
      [
        case "basics" hist_basics;
        case "quantile: empty" hist_quantile_empty;
        case "quantile: single sample" hist_quantile_single_sample;
        case "quantile: saturated top bucket" hist_quantile_saturated_top_bucket;
        case "snapshot sub" hist_sub;
      ] );
    ( "obs:trace-levels",
      [ case "info sink never forces debug payloads" level_filter_no_force ] );
    ( "obs:stats",
      [ case "to_assoc covers every counter" stats_to_assoc ] );
    ( "obs:recorder",
      [
        case "begin/commit/abort balance" recorder_balanced_events;
        case "timestamps monotone" recorder_monotone_timestamps;
        case "ring bounded with drop count" recorder_ring_bounded;
      ] );
    ( "obs:profiler",
      [
        case "sums equal global stats" profiler_matches_stats;
        case "jt sites resolve to file:line" profiler_jt_sites;
      ] );
    ( "obs:metrics",
      [
        case "counts + histograms" metrics_counts_and_histograms;
        case "snapshot/diff windows" metrics_snapshot_diff;
      ] );
    ( "obs:export",
      [
        case "chrome trace shape" export_chrome_shape;
        case "jsonl one object per line" export_jsonl_shape;
      ] );
  ]
