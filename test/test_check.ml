(* Unit tests for the stm_check fuzzing stack: the serializability
   oracle on hand-built histories, the shrinker, the generator, the
   repro (de)serialization, replay determinism, and the quiescence
   publish/privatize regression. *)

open Stm_check

(* ------------------------------------------------------------------ *)
(* Hand-built histories for the graph oracle                           *)
(* ------------------------------------------------------------------ *)

let node ?(txn = true) ~id ~tid ~stamp ~reads ~writes () =
  { History.id; tid; txn; stamp; tag = None; reads; writes }

let cell i = History.Cell i

let vi n = History.Vi n

let check_anomaly = Alcotest.(check bool)

let test_graph_serializable () =
  (* T0 writes c0; T1 reads that write and overwrites it: a clean
     wr-chain, final state is the last version. *)
  let h =
    {
      History.init = [ (cell 0, vi 0) ];
      nodes =
        [
          node ~id:0 ~tid:0 ~stamp:0
            ~reads:[ (cell 0, vi 0) ]
            ~writes:[ (cell 0, vi 10) ]
            ();
          node ~id:1 ~tid:1 ~stamp:1
            ~reads:[ (cell 0, vi 10) ]
            ~writes:[ (cell 0, vi 20) ]
            ();
        ];
      final = [ (cell 0, vi 20) ];
    }
  in
  check_anomaly "wr chain accepted" true (History.check_graph h = None)

(* Write skew: each transaction reads the initial value of the cell the
   other one writes. Both rw edges point opposite ways - the canonical
   serializable/SI separator, shared by the graph and SI tests below. *)
let write_skew_history =
  {
    History.init = [ (cell 0, vi 0); (cell 1, vi 0) ];
    nodes =
      [
        node ~id:0 ~tid:0 ~stamp:0
          ~reads:[ (cell 0, vi 0) ]
          ~writes:[ (cell 1, vi 10) ]
          ();
        node ~id:1 ~tid:1 ~stamp:1
          ~reads:[ (cell 1, vi 0) ]
          ~writes:[ (cell 0, vi 20) ]
          ();
      ];
    final = [ (cell 0, vi 20); (cell 1, vi 10) ];
  }

let test_graph_rw_cycle () =
  let h = write_skew_history in
  match History.check_graph h with
  | Some (History.Cycle edges) ->
      Alcotest.(check bool) "cycle has >= 2 edges" true (List.length edges >= 2)
  | other ->
      Alcotest.failf "expected rw cycle, got %a"
        Fmt.(option History.pp_anomaly)
        other

let test_graph_wr_cycle () =
  (* Each transaction reads the other's write: wr edges both ways. *)
  let h =
    {
      History.init = [ (cell 0, vi 0); (cell 1, vi 0) ];
      nodes =
        [
          node ~id:0 ~tid:0 ~stamp:0
            ~reads:[ (cell 1, vi 21) ]
            ~writes:[ (cell 0, vi 10) ]
            ();
          node ~id:1 ~tid:1 ~stamp:1
            ~reads:[ (cell 0, vi 10) ]
            ~writes:[ (cell 1, vi 21) ]
            ();
        ];
      final = [ (cell 0, vi 10); (cell 1, vi 21) ];
    }
  in
  check_anomaly "wr cycle rejected" true
    (match History.check_graph h with Some (History.Cycle _) -> true | _ -> false)

let test_graph_lost_update () =
  (* Both transactions read the initial value and write: ww orders them
     but the later one's read points back - the classic lost update. *)
  let h =
    {
      History.init = [ (cell 0, vi 0) ];
      nodes =
        [
          node ~id:0 ~tid:0 ~stamp:0
            ~reads:[ (cell 0, vi 0) ]
            ~writes:[ (cell 0, vi 10) ]
            ();
          node ~id:1 ~tid:1 ~stamp:1
            ~reads:[ (cell 0, vi 0) ]
            ~writes:[ (cell 0, vi 20) ]
            ();
        ];
      final = [ (cell 0, vi 20) ];
    }
  in
  check_anomaly "lost update rejected" true
    (match History.check_graph h with Some (History.Cycle _) -> true | _ -> false)

let test_graph_dirty_read () =
  let h =
    {
      History.init = [ (cell 0, vi 0) ];
      nodes =
        [ node ~id:0 ~tid:0 ~stamp:0 ~reads:[ (cell 0, vi 999) ] ~writes:[] () ];
      final = [ (cell 0, vi 0) ];
    }
  in
  check_anomaly "dirty read detected" true
    (match History.check_graph h with
    | Some (History.Dirty_read { seen = History.Vi 999; _ }) -> true
    | _ -> false)

let test_graph_final_mismatch () =
  (* The only committed write never reached the heap (a lost
     non-transactional overwrite would look like this). *)
  let h =
    {
      History.init = [ (cell 0, vi 0) ];
      nodes = [ node ~id:0 ~tid:0 ~stamp:0 ~reads:[] ~writes:[ (cell 0, vi 10) ] () ];
      final = [ (cell 0, vi 0) ];
    }
  in
  check_anomaly "final mismatch detected" true
    (match History.check_graph h with
    | Some (History.Final_mismatch _) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Snapshot-isolation certifier on hand-built histories                *)
(* ------------------------------------------------------------------ *)

(* The differential replay inside [certify] only runs once the graph
   check passes; the hand-built anomalous histories never reach it, so
   an empty program is enough. *)
let dummy_prog = { Prog.ncells = 2; nslots = 0; threads = [] }

let lost_update_history =
  (* Both transactions read version 0 of c0; the second installs version
     2 - the first committer's update is silently overwritten. *)
  {
    History.init = [ (cell 0, vi 0) ];
    nodes =
      [
        node ~id:0 ~tid:0 ~stamp:0
          ~reads:[ (cell 0, vi 0) ]
          ~writes:[ (cell 0, vi 10) ]
          ();
        node ~id:1 ~tid:1 ~stamp:1
          ~reads:[ (cell 0, vi 0) ]
          ~writes:[ (cell 0, vi 20) ]
          ();
      ];
    final = [ (cell 0, vi 20) ];
  }

let long_fork_history =
  (* Two independent writers; each reader sees exactly one of the two
     writes - the forked observers agree on no single prefix, but every
     individual snapshot is causally consistent. *)
  {
    History.init = [ (cell 0, vi 0); (cell 1, vi 0) ];
    nodes =
      [
        node ~id:0 ~tid:0 ~stamp:0 ~reads:[] ~writes:[ (cell 0, vi 10) ] ();
        node ~id:1 ~tid:1 ~stamp:1
          ~reads:[ (cell 0, vi 10); (cell 1, vi 0) ]
          ~writes:[] ();
        node ~id:2 ~tid:2 ~stamp:2 ~reads:[] ~writes:[ (cell 1, vi 20) ] ();
        node ~id:3 ~tid:3 ~stamp:3
          ~reads:[ (cell 1, vi 20); (cell 0, vi 0) ]
          ~writes:[] ();
      ];
    final = [ (cell 0, vi 10); (cell 1, vi 20) ];
  }

let dirty_read_history =
  {
    History.init = [ (cell 0, vi 0) ];
    nodes =
      [ node ~id:0 ~tid:0 ~stamp:0 ~reads:[ (cell 0, vi 999) ] ~writes:[] () ];
    final = [ (cell 0, vi 0) ];
  }

let test_si_admits_write_skew () =
  check_anomaly "write skew passes SI" true
    (History.check_si_graph write_skew_history = None);
  check_anomaly "write skew fails serializability" true
    (History.check_graph write_skew_history <> None)

let test_si_admits_long_fork () =
  check_anomaly "long fork passes SI" true
    (History.check_si_graph long_fork_history = None);
  check_anomaly "long fork fails serializability" true
    (match History.check_graph long_fork_history with
    | Some (History.Cycle _) -> true
    | _ -> false)

let test_si_rejects_lost_update () =
  check_anomaly "lost update rejected under SI" true
    (match History.check_si_graph lost_update_history with
    | Some (History.Lost_update { read_idx = 0; write_idx = 2; _ }) -> true
    | _ -> false)

let test_si_rejects_dirty_read () =
  check_anomaly "dirty read rejected under SI" true
    (match History.check_si_graph dirty_read_history with
    | Some (History.Dirty_read _) -> true
    | _ -> false)

let test_si_rejects_fractured_read () =
  (* One transaction observes two committed versions of c0: no snapshot
     contains both. *)
  let h =
    {
      History.init = [ (cell 0, vi 0) ];
      nodes =
        [
          node ~id:0 ~tid:0 ~stamp:0 ~reads:[] ~writes:[ (cell 0, vi 10) ] ();
          node ~id:1 ~tid:1 ~stamp:1
            ~reads:[ (cell 0, vi 0); (cell 0, vi 10) ]
            ~writes:[] ();
        ];
      final = [ (cell 0, vi 10) ];
    }
  in
  check_anomaly "fractured read rejected under SI" true
    (match History.check_si_graph h with
    | Some (History.Fractured_read _) -> true
    | _ -> false)

let test_certify_levels () =
  (match History.certify dummy_prog write_skew_history with
  | History.Cert_snapshot_only (History.Cycle _) -> ()
  | c ->
      Alcotest.failf "write skew certified %s"
        (History.certification_to_string c));
  (match History.certify dummy_prog lost_update_history with
  | History.Cert_anomalous (History.Lost_update _) -> ()
  | c ->
      Alcotest.failf "lost update certified %s"
        (History.certification_to_string c));
  match History.certify dummy_prog dirty_read_history with
  | History.Cert_anomalous (History.Dirty_read _) -> ()
  | c ->
      Alcotest.failf "dirty read certified %s"
        (History.certification_to_string c)

(* One witness per anomaly constructor: adding a constructor without
   extending this list (and [all_anomaly_kinds]) fails the test, so the
   classifier can never silently lag the type. *)
let anomaly_witnesses =
  [
    History.Cycle [];
    History.Dirty_read { node = 0; rloc = cell 0; seen = vi 1 };
    History.Final_mismatch { floc = cell 0; expected = None; actual = None };
    History.Divergence { dloc = cell 0; replayed = None; actual = None };
    History.Control_divergence { thread = 0; step = 0; detail = "" };
    History.Private_clobbered { thread = 0; step = 0; expected = 1; seen = vi 0 };
    History.Exec_failure "boom";
    History.Lost_update { node = 0; uloc = cell 0; read_idx = 0; write_idx = 2 };
    History.Fractured_read { node = 0; floc = cell 0; first = vi 0; second = vi 1 };
  ]

let test_anomaly_kinds_exhaustive () =
  let kinds = List.map History.anomaly_kind anomaly_witnesses in
  Alcotest.(check (list string))
    "every kind witnessed, no duplicates, order stable"
    History.all_anomaly_kinds kinds;
  Alcotest.(check int)
    "kinds distinct"
    (List.length kinds)
    (List.length (List.sort_uniq compare kinds))

let test_si_forbids_partition () =
  let forbidden =
    List.filter History.si_forbids anomaly_witnesses
    |> List.map History.anomaly_kind
  in
  Alcotest.(check (list string))
    "SI forbids exactly the single-snapshot violations"
    [
      "dirty-read";
      "final-mismatch";
      "private-clobbered";
      "exec-failure";
      "lost-update";
      "fractured-read";
    ]
    forbidden

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let count_ops (p : Prog.t) =
  List.fold_left
    (fun acc steps ->
      List.fold_left
        (fun acc -> function Prog.Atomic ops -> acc + List.length ops | _ -> acc + 1)
        acc steps)
    0 p.Prog.threads

let has_box_write (p : Prog.t) =
  List.exists
    (List.exists (function
      | Prog.Atomic ops ->
          List.exists (function Prog.Box_write _ -> true | _ -> false) ops
      | Prog.Plain (Prog.Box_write _) -> true
      | _ -> false))
    p.Prog.threads

let shrink_start =
  {
    Prog.ncells = 2;
    nslots = 2;
    threads =
      [
        [
          Prog.Atomic [ Prog.Read 0; Prog.Box_write 1; Prog.Write (1, Prog.Tok_acc) ];
          Prog.Plain (Prog.Read 1);
        ];
        [ Prog.Atomic [ Prog.Write (0, Prog.Tok) ] ];
      ];
  }

let test_shrink_minimum () =
  let small = Shrink.minimize ~keep:has_box_write shrink_start in
  Alcotest.(check int) "one op left" 1 (count_ops small);
  Alcotest.(check bool) "box write survives" true (has_box_write small);
  (* With the demotion pass on, the singleton atomic collapses to a
     plain access and the slot index lowers to 0. *)
  Alcotest.(check string) "minimal program"
    (Prog.to_string
       { shrink_start with Prog.threads = [ [ Prog.Plain (Prog.Box_write 0) ] ] })
    (Prog.to_string small)

let test_shrink_no_demotion () =
  let small = Shrink.minimize ~demote_atomic:false ~keep:has_box_write shrink_start in
  Alcotest.(check string) "atomic singleton preserved"
    (Prog.to_string
       { shrink_start with Prog.threads = [ [ Prog.Atomic [ Prog.Box_write 0 ] ] ] })
    (Prog.to_string small)

let test_shrink_fixpoint () =
  let small = Shrink.minimize ~keep:has_box_write shrink_start in
  (* Fixpoint: no single candidate of the minimum still satisfies keep. *)
  Alcotest.(check bool) "no further shrink" true
    (Seq.for_all (fun q -> not (has_box_write q)) (Shrink.candidates small));
  (* Idempotence follows. *)
  Alcotest.(check string) "idempotent"
    (Prog.to_string small)
    (Prog.to_string (Shrink.minimize ~keep:has_box_write small))

let test_shrink_demotion_gate () =
  let p = { Prog.ncells = 1; nslots = 0; threads = [ [ Prog.Atomic [ Prog.Read 0 ] ] ] } in
  let plains cands =
    List.length
      (List.filter
         (fun (q : Prog.t) ->
           List.exists
             (List.exists (function Prog.Plain _ -> true | _ -> false))
             q.Prog.threads)
         (List.of_seq cands))
  in
  Alcotest.(check int) "demotion offered" 1 (plains (Shrink.candidates p));
  Alcotest.(check int) "demotion gated off" 0
    (plains (Shrink.candidates ~demote_atomic:false p))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let profiles = [ Gen.Txn_only; Gen.Mixed; Gen.Handoff ]

let check_op g (op : Prog.op) =
  match op with
  | Prog.Read c | Prog.Write (c, _) -> c >= 0 && c < g.Gen.ncells
  | Prog.Box_read s | Prog.Box_write s -> s >= 0 && s < g.Gen.nslots

let check_step g profile (step : Prog.step) =
  match step with
  | Prog.Atomic ops ->
      List.length ops >= 1
      && List.length ops <= g.Gen.max_ops
      && List.for_all (check_op g) ops
      && (profile <> Gen.Txn_only && profile <> Gen.Mixed
         || List.for_all
              (function Prog.Box_read _ | Prog.Box_write _ -> false | _ -> true)
              ops)
  | Prog.Plain op -> profile = Gen.Mixed && check_op g op
  | Prog.Publish s | Prog.Privatize s ->
      profile = Gen.Handoff && s >= 0 && s < g.Gen.nslots

let test_gen_well_formed () =
  List.iter
    (fun profile ->
      let g = Gen.default profile in
      for seed = 1 to 20 do
        let p = Gen.generate g ~seed in
        let nt = Prog.nthreads p in
        if nt < g.Gen.min_threads || nt > g.Gen.max_threads then
          Alcotest.failf "%s seed %d: %d threads" (Gen.profile_to_string profile)
            seed nt;
        List.iter
          (fun steps ->
            if List.length steps < 1 || List.length steps > g.Gen.max_steps then
              Alcotest.failf "%s seed %d: bad step count"
                (Gen.profile_to_string profile) seed;
            List.iter
              (fun step ->
                if not (check_step g profile step) then
                  Alcotest.failf "%s seed %d: step out of profile: %s"
                    (Gen.profile_to_string profile) seed (Prog.to_string p))
              steps)
          p.Prog.threads
      done)
    profiles

let test_gen_deterministic () =
  List.iter
    (fun profile ->
      let g = Gen.default profile in
      for seed = 1 to 10 do
        let a = Gen.generate g ~seed and b = Gen.generate g ~seed in
        Alcotest.(check string)
          (Printf.sprintf "%s seed %d" (Gen.profile_to_string profile) seed)
          (Prog.to_string a) (Prog.to_string b)
      done)
    profiles

(* ------------------------------------------------------------------ *)
(* JSON round trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_prog_json_roundtrip () =
  List.iter
    (fun profile ->
      let g = Gen.default profile in
      for seed = 1 to 10 do
        let p = Gen.generate g ~seed in
        match Prog.of_json (Prog.to_json p) with
        | Some p' ->
            Alcotest.(check string)
              (Printf.sprintf "%s seed %d" (Gen.profile_to_string profile) seed)
              (Prog.to_string p) (Prog.to_string p')
        | None -> Alcotest.failf "of_json failed: %s" (Prog.to_string p)
      done)
    profiles

let test_combo_json_roundtrip () =
  List.iter
    (fun combo ->
      match Combo.of_json (Combo.to_json combo) with
      | Some combo' -> Alcotest.(check string) "combo" (Combo.name combo) (Combo.name combo')
      | None -> Alcotest.failf "combo of_json failed: %s" (Combo.name combo))
    (Combo.all @ Combo.timestamp_grid)

let sample_repro driver =
  {
    Repro.combo =
      { Combo.versioning = Stm_core.Config.Eager;
        isolation = Stm_core.Config.Serializable;
        validation = Stm_core.Config.Incremental;
        atomicity = Combo.Weak;
        cm = Stm_cm.Policy.Suicide };
    profile = "mixed";
    prog_seed = Some 7;
    driver;
    max_steps = 10_000;
    prog =
      {
        Prog.ncells = 2;
        nslots = 0;
        threads =
          [
            [ Prog.Plain (Prog.Write (0, Prog.Tok)) ];
            [ Prog.Atomic [ Prog.Read 0; Prog.Write (1, Prog.Tok_acc) ] ];
          ];
      };
    verdict = History.verdict_to_json History.Serializable;
  }

let test_repro_json_roundtrip () =
  List.iter
    (fun driver ->
      let r = sample_repro driver in
      match Repro.of_string (Repro.to_string r) with
      | Ok r' -> Alcotest.(check string) "repro" (Repro.to_string r) (Repro.to_string r')
      | Error msg -> Alcotest.failf "repro parse failed: %s" msg)
    [ Repro.Random_sched 42; Repro.Explore { preemption_bound = 2; max_runs = 500 } ]

let test_repro_rejects_garbage () =
  (match Repro.of_string "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed syntactically invalid repro");
  match Repro.of_string "{\"format\": \"something-else\", \"version\": 1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong format tag"

(* ------------------------------------------------------------------ *)
(* Replay determinism                                                  *)
(* ------------------------------------------------------------------ *)

let priv_race_prog =
  (* One thread privatizes the slot-0 box; the other transactionally
     writes the box, a cell, and reads it back. Under weak atomicity
     this is the paper's figure-1 race. *)
  {
    Prog.ncells = 1;
    nslots = 1;
    threads =
      [
        [ Prog.Privatize 0 ];
        [ Prog.Atomic [ Prog.Box_write 0; Prog.Write (0, Prog.Tok); Prog.Read 0 ] ];
      ];
  }

let combo versioning atomicity =
  {
    Combo.versioning;
    isolation = Stm_core.Config.Serializable;
    validation = Stm_core.Config.Incremental;
    atomicity;
    cm = Stm_cm.Policy.Suicide;
  }

let test_replay_deterministic () =
  List.iter
    (fun (cmb, driver) ->
      let run () =
        Repro.run_driver ~combo:cmb ~driver ~max_steps:Exec.default_fuel
          priv_race_prog
      in
      let a = run () and b = run () in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic" (Combo.name cmb))
        true
        (History.verdict_equal a b))
    [
      (combo Stm_core.Config.Eager Combo.Weak, Repro.Random_sched 42);
      (combo Stm_core.Config.Lazy Combo.Weak, Repro.Random_sched 43);
      (combo Stm_core.Config.Eager Combo.Quiesce, Repro.Random_sched 44);
      ( combo Stm_core.Config.Eager Combo.Weak,
        Repro.Explore { preemption_bound = 2; max_runs = 200 } );
    ]

let test_repro_replay_matches () =
  (* Record a repro from a live driver run, then replay it. *)
  let cmb = combo Stm_core.Config.Eager Combo.Weak in
  let driver = Repro.Explore { preemption_bound = 2; max_runs = 500 } in
  let verdict =
    Repro.run_driver ~combo:cmb ~driver ~max_steps:Exec.default_fuel priv_race_prog
  in
  Alcotest.(check bool) "race found" true (History.is_anomalous verdict);
  let r =
    {
      Repro.combo = cmb;
      profile = "handoff";
      prog_seed = None;
      driver;
      max_steps = Exec.default_fuel;
      prog = priv_race_prog;
      verdict = History.verdict_to_json verdict;
    }
  in
  Alcotest.(check bool) "replay matches" true (Repro.matches r (Repro.replay r))

(* ------------------------------------------------------------------ *)
(* Cross-backend differential sweep (smoke slice)                      *)
(* ------------------------------------------------------------------ *)

(* A small slice of the nightly grid: the same seeded txn-only programs
   on eager, lazy, mvcc and mvcc-snapshot, certified at each combo's own
   isolation level. Any anomalous member is a cross-backend divergence
   and fails the build with a replayable repro. *)
let test_differential_smoke () =
  let budget =
    {
      Fuzz.default_budget with
      Fuzz.programs = 6;
      seeds = 2;
      base_seed = 1;
      max_steps = Exec.default_fuel;
    }
  in
  let r = Fuzz.run_differential budget in
  Alcotest.(check int)
    "grid size" 4
    (List.length r.Fuzz.diff_combos);
  Alcotest.(check int)
    "executions = programs x seeds x combos"
    (6 * 2 * 4) r.Fuzz.diff_executions;
  if not (Fuzz.differential_passed r) then
    Alcotest.failf "cross-backend divergence: %s"
      (Stm_obs.Json.to_string (Fuzz.differential_to_json r))

(* ------------------------------------------------------------------ *)
(* Quiescence / DEA privatization regression                           *)
(* ------------------------------------------------------------------ *)

(* The same program explored under the full atomicity spectrum: weak
   configurations must exhibit the privatization race; strong barriers,
   dynamic escape analysis and commit-time quiescence must not. *)

let explore_verdict cmb =
  let cfg = Combo.to_config cmb in
  let v, _ = Exec.explore ~preemption_bound:2 ~max_runs:1500 ~cfg priv_race_prog in
  v

let test_priv_race_weak () =
  List.iter
    (fun versioning ->
      match explore_verdict (combo versioning Combo.Weak) with
      | Some v when History.is_anomalous v -> ()
      | _ ->
          Alcotest.failf "%s-weak: privatization race not found"
            (Combo.versioning_to_string versioning))
    [ Stm_core.Config.Eager; Stm_core.Config.Lazy ]

let test_priv_race_safe_configs () =
  List.iter
    (fun (versioning, atomicity) ->
      match explore_verdict (combo versioning atomicity) with
      | None -> ()
      | Some v ->
          Alcotest.failf "%s-%s: unexpected %s"
            (Combo.versioning_to_string versioning)
            (Combo.atomicity_to_string atomicity)
            (Stm_obs.Json.to_string (History.verdict_to_json v)))
    [
      (Stm_core.Config.Eager, Combo.Strong);
      (Stm_core.Config.Lazy, Combo.Strong);
      (Stm_core.Config.Eager, Combo.Strong_dea);
      (Stm_core.Config.Eager, Combo.Quiesce);
      (Stm_core.Config.Lazy, Combo.Quiesce);
    ]

let test_publish_safe_configs () =
  (* Publication handoff: T0 publishes a freshly initialized box while
     T1 transactionally reads through the slot. Safe under the same
     configurations as privatization. *)
  let pub_prog =
    {
      Prog.ncells = 1;
      nslots = 1;
      threads =
        [
          [ Prog.Publish 0 ];
          [ Prog.Atomic [ Prog.Box_read 0; Prog.Write (0, Prog.Tok_acc) ] ];
        ];
    }
  in
  List.iter
    (fun (versioning, atomicity) ->
      let cfg = Combo.to_config (combo versioning atomicity) in
      let v, _ = Exec.explore ~preemption_bound:2 ~max_runs:1500 ~cfg pub_prog in
      match v with
      | None -> ()
      | Some v ->
          Alcotest.failf "publish %s-%s: unexpected %s"
            (Combo.versioning_to_string versioning)
            (Combo.atomicity_to_string atomicity)
            (Stm_obs.Json.to_string (History.verdict_to_json v)))
    [
      (Stm_core.Config.Eager, Combo.Strong);
      (Stm_core.Config.Eager, Combo.Strong_dea);
      (Stm_core.Config.Eager, Combo.Quiesce);
      (Stm_core.Config.Lazy, Combo.Quiesce);
    ]

let suite =
  [
    ( "check-oracle",
      [
        Alcotest.test_case "wr chain serializable" `Quick test_graph_serializable;
        Alcotest.test_case "rw cycle (write skew)" `Quick test_graph_rw_cycle;
        Alcotest.test_case "wr cycle" `Quick test_graph_wr_cycle;
        Alcotest.test_case "lost update" `Quick test_graph_lost_update;
        Alcotest.test_case "dirty read" `Quick test_graph_dirty_read;
        Alcotest.test_case "final mismatch" `Quick test_graph_final_mismatch;
      ] );
    ( "check-si",
      [
        Alcotest.test_case "admits write skew" `Quick test_si_admits_write_skew;
        Alcotest.test_case "admits long fork" `Quick test_si_admits_long_fork;
        Alcotest.test_case "rejects lost update" `Quick test_si_rejects_lost_update;
        Alcotest.test_case "rejects dirty read" `Quick test_si_rejects_dirty_read;
        Alcotest.test_case "rejects fractured read" `Quick
          test_si_rejects_fractured_read;
        Alcotest.test_case "certify classifies levels" `Quick test_certify_levels;
        Alcotest.test_case "anomaly kinds exhaustive" `Quick
          test_anomaly_kinds_exhaustive;
        Alcotest.test_case "si_forbids partition" `Quick test_si_forbids_partition;
      ] );
    ( "check-differential",
      [
        Alcotest.test_case "cross-backend smoke slice" `Quick
          test_differential_smoke;
      ] );
    ( "check-shrink",
      [
        Alcotest.test_case "reaches minimum" `Quick test_shrink_minimum;
        Alcotest.test_case "no demotion variant" `Quick test_shrink_no_demotion;
        Alcotest.test_case "fixpoint" `Quick test_shrink_fixpoint;
        Alcotest.test_case "demotion gate" `Quick test_shrink_demotion_gate;
      ] );
    ( "check-gen",
      [
        Alcotest.test_case "well-formed" `Quick test_gen_well_formed;
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
      ] );
    ( "check-json",
      [
        Alcotest.test_case "prog round trip" `Quick test_prog_json_roundtrip;
        Alcotest.test_case "combo round trip" `Quick test_combo_json_roundtrip;
        Alcotest.test_case "repro round trip" `Quick test_repro_json_roundtrip;
        Alcotest.test_case "repro rejects garbage" `Quick test_repro_rejects_garbage;
      ] );
    ( "check-replay",
      [
        Alcotest.test_case "drivers deterministic" `Quick test_replay_deterministic;
        Alcotest.test_case "recorded repro replays" `Quick test_repro_replay_matches;
      ] );
    ( "check-privatization",
      [
        Alcotest.test_case "weak exhibits race" `Quick test_priv_race_weak;
        Alcotest.test_case "strong/dea/quiesce clean" `Quick test_priv_race_safe_configs;
        Alcotest.test_case "publish clean" `Quick test_publish_safe_configs;
      ] );
  ]
