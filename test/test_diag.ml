(* Tests for the conflict-diagnosis layer: abort-cause exhaustiveness
   (the Metrics.all_causes guard), sink default-level routing
   (Recorder at Debug vs Metrics at Info), recorder ring wraparound,
   JSONL round-tripping of the abort-attribution fields, the heatmap /
   causality / flight-recorder pillars on synthetic streams, and an
   end-to-end diagnosis of the livelock-pair stress scenario. *)

open Stm_runtime
open Stm_core
open Stm_obs
open Stm_diag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let case name f = Alcotest.test_case name `Quick f

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let in_sim f =
  let result = Sched.run f in
  (match result.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  Alcotest.(check bool) "completed" true (result.Sched.status = Sched.Completed)

(* Synthetic event builders. Event [tid]s match the envelope [tid]
   because the JSONL format carries the emitting thread only in the
   envelope. *)

let entry ?(ts = 0) ?(step = 0) ?(tid = 0) ev = { Recorder.ts; step; tid; ev }

let conflict ?(tid = 1) ?(oid = 7) ?(writer = false) ?(site = -1) () =
  Trace.Conflict { tid; oid; cls = "T"; writer; site }

let abort ?(txid = 1) ?(tid = 1) ?(wounded = false)
    ?(cause = Trace.Cause_conflict) ?(latency = 10) ?(by = -1) ?(by_tid = -1)
    ?(oid = -1) () =
  Trace.Txn_abort { txid; tid; wounded; cause; latency; by; by_tid; oid }

let commit ?(txid = 1) ?(tid = 1) () =
  Trace.Txn_commit { txid; tid; reads = 1; writes = 1; latency = 5 }

let decision ?(tid = 1) ?(txid = 1) ?(policy = "suicide")
    ?(decision = "abort-self") ?(owner = -1) ?(delay = 0) () =
  Trace.Cm_decision { tid; txid; policy; decision; owner; delay }

(* ------------------------------------------------------------------ *)
(* Abort-cause exhaustiveness (satellite 1)                            *)
(* ------------------------------------------------------------------ *)

(* The match below is the compile-time guard: adding a constructor to
   [Trace.abort_cause] breaks it (non-exhaustive match is an error in
   the dev profile), and the assertions then force [Metrics.all_causes]
   to grow with it. *)
let serialization_index (c : Trace.abort_cause) =
  match c with
  | Trace.Cause_conflict -> 0
  | Trace.Cause_validation -> 1
  | Trace.Cause_stale_lock -> 2
  | Trace.Cause_wounded -> 3
  | Trace.Cause_retry -> 4
  | Trace.Cause_exn -> 5
  | Trace.Cause_snapshot -> 6

let all_causes_exhaustive () =
  check_int "all_causes covers every constructor" 7
    (List.length Metrics.all_causes);
  List.iteri
    (fun i c -> check_int "serialization order" i (serialization_index c))
    Metrics.all_causes;
  let strs = List.map Trace.string_of_cause Metrics.all_causes in
  check_int "cause strings are distinct" 7
    (List.length (List.sort_uniq compare strs))

let every_cause_counted () =
  List.iter
    (fun c ->
      let m = Metrics.create () in
      Metrics.handle m (abort ~cause:c ());
      check_int (Trace.string_of_cause c) 1 (Metrics.abort_cause_count m c);
      List.iter
        (fun c' ->
          if c' <> c then
            check_int
              (Trace.string_of_cause c' ^ " stays zero")
              0
              (Metrics.abort_cause_count m c'))
        Metrics.all_causes)
    Metrics.all_causes

(* ------------------------------------------------------------------ *)
(* Sink default levels (satellite 2)                                   *)
(* ------------------------------------------------------------------ *)

(* Recorder.install defaults to Debug (record everything) while
   Metrics.install defaults to Info; a Conflict (Info) event reaches
   both, a Cm_decision (Debug) event reaches only the recorder. *)
let recorder_installs_at_debug () =
  in_sim (fun () ->
      let r = Recorder.create () in
      Recorder.install r;
      Trace.emit (lazy (conflict ()));
      Trace.emit ~level:Trace.Debug (lazy (decision ()));
      Recorder.uninstall ();
      check_int "recorder saw Info and Debug" 2 (Recorder.length r);
      Recorder.clear r;
      Recorder.install ~level:Trace.Info r;
      Trace.emit (lazy (conflict ()));
      Trace.emit ~level:Trace.Debug (lazy (decision ()));
      Recorder.uninstall ();
      check_int "Info-level recorder filters Debug" 1 (Recorder.length r))

let metrics_installs_at_info () =
  in_sim (fun () ->
      let m = Metrics.create () in
      Metrics.install m;
      Trace.emit (lazy (abort ()));
      (* an Info sink must never force a Debug payload *)
      Trace.emit ~level:Trace.Debug
        (lazy (Alcotest.fail "Debug payload forced through an Info sink"));
      Trace.set_sink None;
      check_int "Info event counted" 1 (Metrics.aborts m))

let level_sanity () =
  check_bool "Conflict is Info" true
    (Trace.event_level (conflict ()) = Trace.Info);
  check_bool "Cm_decision is Debug" true
    (Trace.event_level (decision ()) = Trace.Debug)

(* ------------------------------------------------------------------ *)
(* Recorder ring wraparound (satellite 3)                              *)
(* ------------------------------------------------------------------ *)

let recorder_wraparound () =
  in_sim (fun () ->
      let r = Recorder.create ~capacity:4 () in
      for i = 1 to 4 do
        Recorder.record r (abort ~txid:i ())
      done;
      check_int "exactly capacity: nothing dropped" 0 (Recorder.dropped r);
      check_int "length at capacity" 4 (Recorder.length r);
      Recorder.record r (abort ~txid:5 ());
      check_int "capacity+1: one drop" 1 (Recorder.dropped r);
      check_int "length stays bounded" 4 (Recorder.length r);
      (match Recorder.entries r with
      | { Recorder.ev = Trace.Txn_abort { txid; _ }; _ } :: _ ->
          check_int "oldest entry evicted" 2 txid
      | _ -> Alcotest.fail "expected aborts in the window");
      (* interleaved: drops keep accumulating while recent stay intact *)
      for i = 6 to 8 do
        Recorder.record r (abort ~txid:i ())
      done;
      check_int "drops accumulate" 4 (Recorder.dropped r);
      match List.rev (Recorder.entries r) with
      | { Recorder.ev = Trace.Txn_abort { txid; _ }; _ } :: _ ->
          check_int "newest entry kept" 8 txid
      | _ -> Alcotest.fail "expected aborts in the window")

(* ------------------------------------------------------------------ *)
(* JSONL round trip of the attribution fields (satellite 3)            *)
(* ------------------------------------------------------------------ *)

let sample_entries =
  [
    entry ~ts:3 ~step:1 ~tid:1 (Trace.Txn_begin { txid = 1; tid = 1 });
    entry ~ts:9 ~step:2 ~tid:1 (conflict ~tid:1 ~oid:7 ~writer:true ~site:4 ());
    entry ~ts:12 ~step:3 ~tid:1
      (abort ~txid:1 ~tid:1 ~cause:Trace.Cause_stale_lock ~by:9 ~by_tid:2
         ~oid:7 ());
    entry ~ts:14 ~step:4 ~tid:2 (abort ~txid:2 ~tid:2 ~cause:Trace.Cause_retry ());
    entry ~ts:16 ~step:5 ~tid:1 (decision ~tid:1 ~txid:3 ~owner:9 ());
    entry ~ts:20 ~step:6 ~tid:2 (commit ~txid:3 ~tid:2 ());
  ]

let jsonl_roundtrip () =
  let buf = Buffer.create 256 in
  Export.to_jsonl buf sample_entries;
  let r = Ingest.of_string (Buffer.contents buf) in
  check_int "all lines parsed" (List.length sample_entries) r.Ingest.parsed;
  check_int "none skipped" 0 r.Ingest.skipped;
  check_bool "entries identical after round trip" true
    (r.Ingest.entries = sample_entries);
  (match List.nth r.Ingest.entries 2 with
  | { Recorder.ev = Trace.Txn_abort { by; by_tid; oid; cause; _ }; _ } ->
      check_int "by survives" 9 by;
      check_int "by_tid survives" 2 by_tid;
      check_int "oid survives" 7 oid;
      check_bool "cause survives" true (cause = Trace.Cause_stale_lock)
  | _ -> Alcotest.fail "expected the attributed abort");
  match List.nth r.Ingest.entries 3 with
  | { Recorder.ev = Trace.Txn_abort { by; by_tid; oid; _ }; _ } ->
      check_int "unattributed by" (-1) by;
      check_int "unattributed by_tid" (-1) by_tid;
      check_int "unattributed oid" (-1) oid
  | _ -> Alcotest.fail "expected the unattributed abort"

let jsonl_resolved_sites_roundtrip () =
  (* sites exported as resolved source labels re-intern on ingest and
     re-export to the identical line *)
  let resolve = function 4 -> Some "counter.jt:12" | _ -> None in
  let buf = Buffer.create 256 in
  Export.to_jsonl ~resolve buf sample_entries;
  let r = Ingest.of_string (Buffer.contents buf) in
  check_int "parsed" (List.length sample_entries) r.Ingest.parsed;
  let buf2 = Buffer.create 256 in
  Export.to_jsonl ~resolve:r.Ingest.resolve buf2 r.Ingest.entries;
  check_string "export . ingest is a fixpoint" (Buffer.contents buf)
    (Buffer.contents buf2)

let jsonl_skips_garbage () =
  let buf = Buffer.create 256 in
  Export.to_jsonl buf sample_entries;
  Buffer.add_string buf "not json at all\n";
  Buffer.add_string buf {|{"ev":"from_the_future","ts":1,"step":9,"tid":0}|};
  Buffer.add_char buf '\n';
  let r = Ingest.of_string (Buffer.contents buf) in
  check_int "good lines parsed" (List.length sample_entries) r.Ingest.parsed;
  check_int "bad lines counted" 2 r.Ingest.skipped

let chrome_carries_attribution () =
  let doc =
    Json.to_string (Export.to_chrome sample_entries)
  in
  check_bool "chrome abort args carry by" true (contains doc {|"by":9|});
  check_bool "chrome abort args carry by_tid" true
    (contains doc {|"by_tid":2|});
  check_bool "chrome abort args carry cause" true
    (contains doc {|"cause":"stale-lock"|})

(* ------------------------------------------------------------------ *)
(* Heatmap                                                             *)
(* ------------------------------------------------------------------ *)

let heatmap_accounting () =
  let h = Heatmap.create () in
  Heatmap.handle h (conflict ~oid:7 ~writer:false ~site:3 ());
  Heatmap.handle h (conflict ~oid:7 ~writer:true ~site:3 ());
  Heatmap.handle h (conflict ~oid:9 ());
  Heatmap.handle h (abort ~oid:7 ~by:2 ~by_tid:2 ~latency:25 ());
  Heatmap.handle h (abort ());
  (* oid -1: not charged *)
  check_int "distinct granules" 2 (Heatmap.distinct_granules h);
  check_int "conflict episodes" 3 (Heatmap.total_conflicts h);
  match Heatmap.cells h with
  | [ c7; c9 ] ->
      check_int "hottest first" 7 c7.Heatmap.oid;
      check_int "read conflicts" 1 c7.Heatmap.read_conflicts;
      check_int "write conflicts" 1 c7.Heatmap.write_conflicts;
      check_int "attributed aborts" 1 c7.Heatmap.aborts;
      check_int "wasted cycles" 25 c7.Heatmap.wasted;
      check_bool "site episode counts" true (c7.Heatmap.sites = [ (3, 2) ]);
      check_int "heat = conflicts + aborts" 3 (Heatmap.heat c7);
      check_int "cooler granule" 9 c9.Heatmap.oid
  | cells -> Alcotest.failf "expected 2 cells, got %d" (List.length cells)

let heatmap_grows () =
  let h = Heatmap.create () in
  for round = 1 to 2 do
    ignore round;
    for oid = 1 to 300 do
      Heatmap.handle h (conflict ~oid ())
    done
  done;
  check_int "all granules tracked across growth" 300
    (Heatmap.distinct_granules h);
  check_int "episodes" 600 (Heatmap.total_conflicts h);
  check_int "top-k bounded" 5 (List.length (Heatmap.top h ~k:5))

(* ------------------------------------------------------------------ *)
(* Causality                                                           *)
(* ------------------------------------------------------------------ *)

let causality_graph () =
  let c = Causality.create () in
  (* txn 1 (t1) dies first (unknown aggressor, granule 5); txn 2 (t2)
     is killed by txn 1; txns 3 and 4 are both killed by txn 2 *)
  Causality.handle c (abort ~txid:1 ~tid:1 ~oid:5 ~latency:10 ());
  Causality.handle c (abort ~txid:2 ~tid:2 ~by:1 ~by_tid:1 ~oid:5 ~latency:20 ());
  Causality.handle c (decision ~tid:3 ~txid:3 ~owner:2 ());
  Causality.handle c (abort ~txid:3 ~tid:3 ~by:2 ~by_tid:2 ~oid:5 ~latency:30 ());
  Causality.handle c (abort ~txid:4 ~tid:4 ~by:2 ~by_tid:2 ~oid:6 ~latency:5 ());
  Causality.handle c (commit ~txid:9 ~tid:1 ());
  check_int "attributed aborts" 4 (Causality.total_attributed c);
  (* edges *)
  let e32 =
    List.find
      (fun e -> e.Causality.victim_tid = 3 && e.Causality.aggr_tid = 2)
      (Causality.edges c)
  in
  check_int "edge count" 1 e32.Causality.count;
  check_int "edge wasted" 30 e32.Causality.wasted;
  check_bool "edge granule" true (e32.Causality.oids = [ (5, 1) ]);
  check_bool "edge cm decision" true
    (e32.Causality.decisions = [ ("abort-self", 1) ]);
  (* kill chains: 3 <- 2 <- 1 and 4 <- 2 <- 1, longest first *)
  let chains = Causality.chains c in
  check_int "two maximal chains" 2 (List.length chains);
  List.iter
    (fun ch ->
      check_int "chain spans three kills" 3 (List.length ch);
      match ch with
      | v :: a :: root :: [] ->
          check_bool "victim leads" true
            (v.Causality.a_txid = 3 || v.Causality.a_txid = 4);
          check_int "middle aggressor" 2 a.Causality.a_txid;
          check_int "root aggressor" 1 root.Causality.a_txid
      | _ -> Alcotest.fail "unexpected chain shape")
    chains;
  (* per-thread attribution *)
  check_int "t2 wasted" 20 (Causality.wasted_of c ~tid:2);
  check_int "total wasted" 65 (Causality.total_wasted c);
  (match Causality.most_starved c with
  | Some (tid, s) ->
      check_int "most starved is the biggest loser" 3 tid;
      check_int "its aborts" 1 s.Causality.aborts
  | None -> Alcotest.fail "expected a starved thread");
  match Causality.top_aggressor c with
  | Some (tid, s) ->
      check_int "top aggressor" 2 tid;
      check_int "inflicted" 2 s.Causality.caused;
      check_int "cost others" 35 s.Causality.caused_wasted
  | None -> Alcotest.fail "expected an aggressor"

let causality_chain_respects_time () =
  let c = Causality.create () in
  (* txn 2 claims txn 1 as its killer, but txn 1's abort arrives later:
     no backwards-in-time chain may be built *)
  Causality.handle c (abort ~txid:2 ~tid:2 ~by:1 ~by_tid:1 ~oid:5 ());
  Causality.handle c (abort ~txid:1 ~tid:1 ~by:2 ~by_tid:2 ~oid:5 ());
  check_bool "no chain pretends the killer died first" true
    (List.for_all (fun ch -> List.length ch <= 2) (Causality.chains c))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let flight_streak_trigger () =
  let f = Flight.create ~capacity:16 ~streak_threshold:2 () in
  Flight.record f (entry ~step:1 (abort ~txid:1 ~tid:1 ()));
  check_int "below threshold" 0 (Flight.incident_count f);
  Flight.record f (entry ~step:2 (abort ~txid:2 ~tid:1 ()));
  check_int "streak trips" 1 (Flight.incident_count f);
  Flight.record f (entry ~step:3 (abort ~txid:3 ~tid:1 ()));
  check_int "fires once per streak" 1 (Flight.incident_count f);
  Flight.record f (entry ~step:4 (commit ~txid:4 ~tid:1 ()));
  Flight.record f (entry ~step:5 (abort ~txid:5 ~tid:1 ()));
  Flight.record f (entry ~step:6 (abort ~txid:6 ~tid:1 ()));
  check_int "commit re-arms" 2 (Flight.incident_count f);
  match Flight.incidents f with
  | i :: _ ->
      check_int "trigger step" 2 i.Flight.at_step;
      check_int "trigger thread" 1 i.Flight.tid;
      check_int "streak" 2 i.Flight.streak;
      check_int "window holds the entries" 2 (List.length i.Flight.window)
  | [] -> Alcotest.fail "expected incidents"

let flight_max_incidents () =
  let f = Flight.create ~streak_threshold:1 ~max_incidents:1 () in
  Flight.record f (entry (abort ~tid:1 ()));
  Flight.force f ~reason:"external";
  check_int "later incidents dropped, earliest kept" 1
    (Flight.incident_count f)

let flight_postmortem () =
  let f = Flight.create ~capacity:16 ~streak_threshold:1 () in
  Flight.record f
    (entry ~step:10 ~tid:2 (conflict ~tid:2 ~oid:7 ~writer:false ~site:4 ()));
  Flight.record f
    (entry ~step:11 ~tid:2
       (decision ~tid:2 ~txid:5 ~policy:"karma" ~decision:"abort-self"
          ~owner:3 ()));
  Flight.record f
    (entry ~step:12 ~tid:3 (Trace.Txn_serialized { txid = 3; tid = 3 }));
  Flight.record f
    (entry ~step:13 ~tid:2
       (abort ~txid:5 ~tid:2 ~by:3 ~by_tid:3 ~oid:7 ~latency:42 ()));
  check_int "one incident" 1 (Flight.incident_count f);
  let i = List.hd (Flight.incidents f) in
  let why =
    Flight.explain ~resolve:(function 4 -> Some "acct.jt:9" | _ -> None) i
  in
  check_bool "names the final abort" true
    (contains why "final abort: txn 5 on thread 2, cause conflict, 42 cycles");
  check_bool "names the conflict edge" true
    (contains why
       "conflict edge: txn 5 (thread 2) lost to txn 3 (thread 3) over \
        granule @7");
  check_bool "names the barrier site" true
    (contains why "barrier site: acct.jt:9");
  check_bool "names the cm decision" true
    (contains why "cm decision: karma chose abort-self vs txn 3");
  check_bool "names the serialization order" true
    (contains why "aggressor txn 3 serialized at step 12")

(* ------------------------------------------------------------------ *)
(* End-to-end: diagnose the livelock-pair stress scenario              *)
(* ------------------------------------------------------------------ *)

let livelock_pair_diagnosis () =
  let d = Diag.create () in
  let r =
    Stm_harness.Stress.run ~seed:0 ~consumer:(Diag.consumer d)
      ~cm:Stm_cm.Policy.Suicide Stm_harness.Stress.Livelock_pair
  in
  check_bool "scenario completed" true r.Stm_harness.Stress.completed;
  (* the diag metrics pillar (fed the Debug stream) agrees with the
     report's own Info-level metrics *)
  check_int "commits agree" (Metrics.commits r.Stm_harness.Stress.metrics)
    (Metrics.commits (Diag.metrics d));
  check_int "aborts agree" (Metrics.aborts r.Stm_harness.Stress.metrics)
    (Metrics.aborts (Diag.metrics d));
  (* contended granule identified *)
  check_bool "heatmap found contention" true
    (Heatmap.total_conflicts (Diag.heatmap d) > 0);
  let hot = List.hd (Heatmap.cells (Diag.heatmap d)) in
  check_bool "hot granule attributed aborts" true (hot.Heatmap.aborts > 0);
  (* aggressors identified, wasted work cross-checks against Fairness *)
  check_bool "causality has edges" true (Causality.edges (Diag.causality d) <> []);
  check_bool "aggressor named" true
    (Causality.top_aggressor (Diag.causality d) <> None);
  check_bool "wasted-work pipelines agree" true (Diag.wasted_consistent d);
  (* the pair livelocks long enough to freeze at least one post-mortem *)
  check_bool "incident frozen" true (Diag.incidents d <> []);
  let report = Fmt.str "%a" (fun ppf -> Diag.report ppf) d in
  check_bool "report names the hot granule" true
    (contains report (Printf.sprintf "@%d" hot.Heatmap.oid));
  check_bool "report names the most-starved thread" true
    (contains report "most-starved thread: t");
  check_bool "report names the aggressor" true
    (contains report "top aggressor: t");
  check_bool "report renders a post-mortem" true
    (contains report "conflict edge: txn");
  (* the full post-mortem cites edge, site, decision and ordering *)
  let why = Flight.explain (List.hd (Diag.incidents d)) in
  check_bool "post-mortem explains end-to-end" true
    (contains why "final abort" && contains why "conflict edge"
    && contains why "barrier site" && contains why "cm decision"
    && contains why "serialization order")

let stress_report_unperturbed () =
  (* attaching the diagnosis consumer must not change the scenario's
     outcome: same schedule, same counters, byte-identical report *)
  let show r = Fmt.str "%a" Stm_harness.Stress.pp_report r in
  let bare =
    Stm_harness.Stress.run ~seed:0 ~cm:Stm_cm.Policy.Suicide
      Stm_harness.Stress.Livelock_pair
  in
  let d = Diag.create () in
  let diag =
    Stm_harness.Stress.run ~seed:0 ~consumer:(Diag.consumer d)
      ~cm:Stm_cm.Policy.Suicide Stm_harness.Stress.Livelock_pair
  in
  check_string "stress report byte-identical under diagnosis" (show bare)
    (show diag)

(* ------------------------------------------------------------------ *)
(* Offline = live                                                      *)
(* ------------------------------------------------------------------ *)

let offline_matches_live () =
  (* record the stream, replay it through Ingest: same report *)
  let live = Diag.create () in
  let rec_ = Recorder.create () in
  ignore
    (Stm_harness.Stress.run ~seed:0
       ~consumer:(fun ev ->
         Recorder.record rec_ ev;
         Diag.consumer live ev)
       ~cm:Stm_cm.Policy.Suicide Stm_harness.Stress.Livelock_pair);
  let buf = Buffer.create 4096 in
  Export.to_jsonl buf (Recorder.entries rec_);
  let ingested = Ingest.of_string (Buffer.contents buf) in
  check_int "nothing skipped" 0 ingested.Ingest.skipped;
  let offline = Diag.create ~resolve:ingested.Ingest.resolve () in
  Diag.feed_all offline ingested.Ingest.entries;
  let show d = Fmt.str "%a" (fun ppf -> Diag.report ppf) d in
  check_string "offline replay reproduces the live report" (show live)
    (show offline)

let sample_trace_analyzes () =
  (* the checked-in sample trace (CI's stm_diag smoke input) must keep
     replaying to a full diagnosis as the trace format evolves *)
  let path = "data/livelock_pair_suicide.jsonl" in
  if not (Sys.file_exists path) then
    Alcotest.skip ()
  else begin
    let r = Ingest.of_file path in
    check_int "no unparsable lines" 0 r.Ingest.skipped;
    check_bool "non-trivial trace" true (r.Ingest.parsed > 100);
    let d = Diag.create ~resolve:r.Ingest.resolve () in
    Diag.feed_all d r.Ingest.entries;
    check_bool "heatmap populated" true
      (Heatmap.distinct_granules (Diag.heatmap d) > 0);
    check_bool "causality populated" true
      (Causality.total_attributed (Diag.causality d) > 0);
    check_bool "post-mortem frozen" true (Diag.incidents d <> []);
    check_bool "cross-check holds" true (Diag.wasted_consistent d)
  end

let suite =
  [
    ( "diag",
      [
        case "all_causes is exhaustive" all_causes_exhaustive;
        case "every cause is counted" every_cause_counted;
        case "recorder default level is Debug" recorder_installs_at_debug;
        case "metrics default level is Info" metrics_installs_at_info;
        case "event levels" level_sanity;
        case "recorder ring wraparound" recorder_wraparound;
        case "jsonl round trip keeps attribution" jsonl_roundtrip;
        case "jsonl round trip re-interns sites" jsonl_resolved_sites_roundtrip;
        case "jsonl ingest skips garbage" jsonl_skips_garbage;
        case "chrome export carries attribution" chrome_carries_attribution;
        case "heatmap accounting" heatmap_accounting;
        case "heatmap table growth" heatmap_grows;
        case "causality graph and kill chains" causality_graph;
        case "kill chains respect abort order" causality_chain_respects_time;
        case "flight streak trigger" flight_streak_trigger;
        case "flight incident cap" flight_max_incidents;
        case "flight post-mortem" flight_postmortem;
        case "livelock-pair end-to-end diagnosis" livelock_pair_diagnosis;
        case "stress report unperturbed by diagnosis" stress_report_unperturbed;
        case "offline replay matches live" offline_matches_live;
        case "checked-in sample trace analyzes" sample_trace_analyzes;
      ] );
  ]
