(* The Figure 6 matrix as a test suite: every anomaly/mode cell checked
   against the paper's table by systematic exploration, plus explorer unit
   tests and the granularity / quiescence ablations. *)

open Stm_litmus

let check_bool = Alcotest.(check bool)

(* One alcotest case per Figure 6 cell. *)
let cell_case ?preemption_bound program mode =
  let name =
    Printf.sprintf "%s [%s]" program.Programs.name (Modes.name mode)
  in
  Alcotest.test_case name `Quick (fun () ->
      let cell = Matrix.run_cell ?preemption_bound program mode in
      if cell.Matrix.expected <> cell.Matrix.observed then
        Alcotest.failf "%s: paper says %b, explorer found %b (runs=%d%s)" name
          cell.Matrix.expected cell.Matrix.observed cell.Matrix.runs
          (if cell.Matrix.truncated then ", truncated" else ""))

let fig6_cases =
  List.concat_map
    (fun program -> List.map (cell_case program) Modes.all_fig6)
    Programs.fig6_rows

let extras_cases =
  List.concat_map
    (fun program -> List.map (cell_case program) Modes.all_fig6)
    Programs.extras

let privatization_cases =
  List.map (cell_case Programs.privatization)
    (Modes.all_fig6
    @ [
        Modes.Weak_quiesce Stm_core.Config.Eager;
        Modes.Weak_quiesce Stm_core.Config.Lazy;
      ])

(* The four multi-version columns over every classic litmus program:
   weak mvcc is blind to plain stores (nr/gir/ilu/glu), strong closes
   them; the racing-commit shapes (mi-ww, privatization) reappear
   exactly at snapshot isolation, where commit-time read validation is
   off. *)
(* Bound 3, not the usual 2: the snapshot-isolation privatization race
   needs three preemptions (park the racing committer mid-transaction,
   run the privatizer through its first plain read, then let the commit
   land between the two reads). *)
let mvcc_cases =
  List.concat_map
    (fun program ->
      List.map (cell_case ~preemption_bound:3 program) Modes.all_mvcc)
    (Programs.fig6_rows @ [ Programs.privatization ] @ Programs.extras)

(* The four timestamp-validation columns over the Figure 6 rows plus the
   extras: global-commit-clock validation is a performance scheme, so
   every cell must match the corresponding base column verbatim. *)
let timestamp_cases =
  List.concat_map
    (fun program -> List.map (cell_case program) Modes.all_timestamp)
    (Programs.fig6_rows @ Programs.extras)

(* The SI litmus programs under all nine columns: write skew must appear
   in the two snapshot-isolation columns and nowhere else; long fork and
   the read-only snapshot are all-"no" rows. *)
let si_cases =
  List.concat_map
    (fun program ->
      List.map (cell_case program) (Modes.all_fig6 @ Modes.all_mvcc))
    Programs.si_rows

(* Granularity ablation: with field-granular versioning (granule = 1) the
   Section 2.4 anomalies disappear even under weak atomicity. *)
let granule_ablation program mode () =
  let cell = Matrix.run_cell ~granule_override:1 program mode in
  check_bool
    (program.Programs.name ^ " disappears at granule=1")
    false cell.Matrix.observed

(* Quiescence ablation: quiescence fixes privatization but NOT the
   speculation anomalies (Section 3.4 discussion). *)
let quiesce_does_not_fix_sdr () =
  let cell =
    Matrix.run_cell Programs.speculative_dirty_read
      (Modes.Weak_quiesce Stm_core.Config.Eager)
  in
  check_bool "SDR still observable under quiescence" true cell.Matrix.observed

let quiesce_does_not_fix_slu () =
  let cell =
    Matrix.run_cell Programs.speculative_lost_update
      (Modes.Weak_quiesce Stm_core.Config.Eager)
  in
  check_bool "SLU still observable under quiescence" true cell.Matrix.observed

(* ------------------------------------------------------------------ *)
(* Explorer unit tests                                                 *)
(* ------------------------------------------------------------------ *)

(* A two-thread store buffer-free race: both outcomes must be found. *)
let explorer_finds_both_orders () =
  let make () =
    let result = ref 0 in
    let main () =
      let x = ref 0 in
      let a =
        Stm_runtime.Sched.spawn (fun () ->
            Stm_runtime.Sched.yield ();
            x := 1)
      in
      let b =
        Stm_runtime.Sched.spawn (fun () ->
            Stm_runtime.Sched.yield ();
            x := 2)
      in
      Stm_runtime.Sched.join a;
      Stm_runtime.Sched.join b;
      result := !x
    in
    let observe () = string_of_int !result in
    { Explorer.main; observe }
  in
  let e =
    Explorer.explore ~preemption_bound:2 ~cfg:Stm_core.Config.eager_weak ~make
      ()
  in
  check_bool "found x=1" true (Explorer.observed e (fun s -> s = "1"));
  check_bool "found x=2" true (Explorer.observed e (fun s -> s = "2"));
  check_bool "multiple runs" true (e.Explorer.runs > 1)

let explorer_stop_when () =
  let make () =
    let n = ref 0 in
    {
      Explorer.main =
        (fun () ->
          let t = Stm_runtime.Sched.spawn (fun () -> Stm_runtime.Sched.yield ()) in
          Stm_runtime.Sched.join t;
          incr n);
      observe = (fun () -> "done");
    }
  in
  let e =
    Explorer.explore ~stop_when:(fun s -> s = "done")
      ~cfg:Stm_core.Config.eager_weak ~make ()
  in
  check_bool "stopped after first hit" true (e.Explorer.runs = 1)

let explorer_bound_zero_single_default () =
  (* preemption bound 0: only the default schedule runs *)
  let make () =
    let log = ref [] in
    {
      Explorer.main =
        (fun () ->
          let mk id () =
            Stm_runtime.Sched.yield ();
            log := id :: !log
          in
          let a = Stm_runtime.Sched.spawn (mk 1) in
          let b = Stm_runtime.Sched.spawn (mk 2) in
          Stm_runtime.Sched.join a;
          Stm_runtime.Sched.join b);
      observe = (fun () -> String.concat "" (List.map string_of_int !log));
    }
  in
  let e =
    Explorer.explore ~preemption_bound:0 ~cfg:Stm_core.Config.eager_weak ~make
      ()
  in
  check_bool "one schedule" true (e.Explorer.runs = 1);
  check_bool "one outcome" true (List.length e.Explorer.outcomes = 1)

(* Contention management must not change which anomalies are expressible:
   the Figure 6 matrix is a golden image that every policy must
   reproduce. Policies only reorder who wins a conflict, never whether an
   isolation violation can happen. *)
let fig6_golden_under policy () =
  let cells = Matrix.fig6 ~cm:policy () in
  List.iter
    (fun cell ->
      if cell.Matrix.expected <> cell.Matrix.observed then
        Alcotest.failf "%s [%s] under %s: paper says %b, explorer found %b"
          cell.Matrix.program.Programs.name
          (Modes.name cell.Matrix.mode)
          (Stm_cm.Policy.to_string policy)
          cell.Matrix.expected cell.Matrix.observed)
    cells

let cm_golden_cases =
  List.filter_map
    (fun policy ->
      if policy = Stm_cm.Policy.Suicide then None
        (* the default; already covered cell-by-cell above *)
      else
        Some
          (Alcotest.test_case
             ("fig6 golden under " ^ Stm_cm.Policy.to_string policy)
             `Quick (fig6_golden_under policy)))
    Stm_cm.Policy.all

let explorer_counts_outcomes () =
  let make () =
    { Explorer.main = (fun () -> ()); observe = (fun () -> "only") }
  in
  let e = Explorer.explore ~cfg:Stm_core.Config.eager_weak ~make () in
  Alcotest.(check (list (pair string int)))
    "outcome table"
    [ ("only", e.Explorer.runs) ]
    e.Explorer.outcomes

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ("litmus:fig6", fig6_cases);
    ("litmus:privatization", privatization_cases);
    ("litmus:extras", extras_cases);
    ("litmus:mvcc", mvcc_cases);
    ("litmus:timestamp", timestamp_cases);
    ("litmus:si", si_cases);
    ("litmus:cm-golden", cm_golden_cases);
    ( "litmus:ablations",
      [
        Alcotest.test_case "GLU gone at granule=1" `Quick
          (granule_ablation Programs.granular_lost_update
             (Modes.Weak Stm_core.Config.Eager));
        Alcotest.test_case "GIR gone at granule=1" `Quick
          (granule_ablation Programs.granular_inconsistent_read
             (Modes.Weak Stm_core.Config.Lazy));
        case "quiescence does not fix SDR" quiesce_does_not_fix_sdr;
        case "quiescence does not fix SLU" quiesce_does_not_fix_slu;
      ] );
    ( "litmus:explorer",
      [
        case "finds both orders" explorer_finds_both_orders;
        case "stop_when" explorer_stop_when;
        case "bound 0 = default schedule" explorer_bound_zero_single_default;
        case "outcome counting" explorer_counts_outcomes;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* PCT: an independent method must agree with the DFS on Figure 6      *)
(* ------------------------------------------------------------------ *)

let pct_cell program mode expected () =
  let cfg = Modes.config ~granule:program.Programs.needs_granule mode in
  let e =
    Explorer.explore_pct ~runs:800 ~depth:3
      ~stop_when:program.Programs.is_anomalous ~cfg
      ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
      ()
  in
  let observed = Explorer.observed e program.Programs.is_anomalous in
  check_bool
    (Printf.sprintf "PCT %s [%s]" program.Programs.name (Modes.name mode))
    expected observed

let pct_cases =
  (* a representative subset: one "yes" and one "no" per anomaly family *)
  [
    Alcotest.test_case "pct: nr yes under weak-eager" `Quick
      (pct_cell Programs.non_repeatable_read (Modes.Weak Stm_core.Config.Eager) true);
    Alcotest.test_case "pct: nr no under strong-eager" `Quick
      (pct_cell Programs.non_repeatable_read (Modes.Strong Stm_core.Config.Eager) false);
    Alcotest.test_case "pct: idr yes under weak-eager" `Quick
      (pct_cell Programs.intermediate_dirty_read (Modes.Weak Stm_core.Config.Eager) true);
    Alcotest.test_case "pct: idr no under weak-lazy" `Quick
      (pct_cell Programs.intermediate_dirty_read (Modes.Weak Stm_core.Config.Lazy) false);
    Alcotest.test_case "pct: slu yes under weak-eager" `Quick
      (pct_cell Programs.speculative_lost_update (Modes.Weak Stm_core.Config.Eager) true);
    Alcotest.test_case "pct: mi-rw yes under weak-lazy" `Quick
      (pct_cell Programs.overlapped_writes (Modes.Weak Stm_core.Config.Lazy) true);
    Alcotest.test_case "pct: mi-rw no under strong-lazy" `Quick
      (pct_cell Programs.overlapped_writes (Modes.Strong Stm_core.Config.Lazy) false);
    Alcotest.test_case "pct: glu yes under weak-eager" `Quick
      (pct_cell Programs.granular_lost_update (Modes.Weak Stm_core.Config.Eager) true);
  ]

(* ------------------------------------------------------------------ *)
(* DPOR certification                                                  *)
(* ------------------------------------------------------------------ *)

let check_int = Alcotest.(check int)

(* Every Figure 6 cell re-derived by both engines at the same bound:
   the verdicts must agree with each other and with the paper, every
   "no" must rest on a complete race-reduced walk, and the reduction
   must pay for itself. The >= 5x run-ratio is asserted over the whole
   grid, not per cell — a cell whose enumerative tree already sits near
   the Mazurkiewicz optimum leaves the DPOR walk nothing to prune. *)
let dpor_certifies_fig6 () =
  let enum_runs = ref 0 and dpor_runs = ref 0 in
  List.iter
    (fun program ->
      List.iter
        (fun mode ->
          let name =
            Printf.sprintf "%s [%s]" program.Programs.name (Modes.name mode)
          in
          let c = Matrix.certify_cell program mode in
          if not (Matrix.cell_certified c) then
            Alcotest.failf "%s: enum=%b dpor=%b complete=%b" name
              c.Matrix.enum.Matrix.observed c.Matrix.dpor.Matrix.observed
              c.Matrix.complete;
          if c.Matrix.dpor.Matrix.observed <> c.Matrix.dpor.Matrix.expected
          then
            Alcotest.failf "%s: paper says %b, certified %b" name
              c.Matrix.dpor.Matrix.expected c.Matrix.dpor.Matrix.observed;
          (* a "no" verdict must be a certificate, not a timeout *)
          if not c.Matrix.dpor.Matrix.observed then
            check_bool (name ^ ": no-cell walk complete") true
              c.Matrix.complete;
          enum_runs := !enum_runs + c.Matrix.enum.Matrix.runs;
          dpor_runs := !dpor_runs + c.Matrix.dpor.Matrix.runs)
        Modes.all_fig6)
    Programs.fig6_rows;
  check_bool
    (Printf.sprintf "aggregate reduction >= 5x (enum=%d dpor=%d)" !enum_runs
       !dpor_runs)
    true
    (!enum_runs >= 5 * !dpor_runs)

(* The engine is deterministic: identical inputs walk an identical
   backtrack tree, run for run. *)
let dpor_deterministic () =
  let program = Programs.speculative_lost_update in
  let mode = Modes.Weak Stm_core.Config.Eager in
  let cfg = Modes.config ~granule:program.Programs.needs_granule mode in
  let once () =
    Explorer.explore_dpor ~preemption_bound:2 ~cfg
      ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
      ()
  in
  let a = once () in
  let b = once () in
  check_int "same runs" a.Explorer.exploration.Explorer.runs
    b.Explorer.exploration.Explorer.runs;
  check_int "same races" a.Explorer.races b.Explorer.races;
  check_bool "same completeness" a.Explorer.complete b.Explorer.complete;
  Alcotest.(check (list (pair string int)))
    "same outcome table" a.Explorer.exploration.Explorer.outcomes
    b.Explorer.exploration.Explorer.outcomes

(* Fuel-exhausted schedules are accounted in [livelocks] only, never
   double-counted as outcomes. The conditional infinite spin makes both
   completing and spinning schedules reachable, so the books must
   balance with both sides non-zero. *)
let spin_make () =
  let xr = ref None in
  let main () =
    let x = Stm_core.Stm.alloc_public ~cls:"X" 1 in
    Stm_runtime.Heap.set x 0 (Stm_runtime.Heap.Vint 0);
    xr := Some x;
    let setter =
      Stm_runtime.Sched.spawn (fun () ->
          Stm_core.Stm.write x 0 (Stm_core.Stm.vint 1))
    in
    let reader =
      Stm_runtime.Sched.spawn (fun () ->
          if Stm_core.Stm.to_int (Stm_core.Stm.read x 0) = 0 then
            while true do
              Stm_runtime.Sched.yield ()
            done)
    in
    Stm_runtime.Sched.join setter;
    Stm_runtime.Sched.join reader
  in
  let observe () =
    "x="
    ^ string_of_int
        (match Stm_runtime.Heap.get (Option.get !xr) 0 with
        | Stm_runtime.Heap.Vint n -> n
        | _ -> min_int)
  in
  { Explorer.main; observe }

let outcome_total (e : Explorer.exploration) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 e.Explorer.outcomes

let explore_accounts_livelocks () =
  let e =
    Explorer.explore ~preemption_bound:2 ~max_runs:2_000 ~max_steps:200
      ~cfg:Stm_core.Config.eager_weak ~make:spin_make ()
  in
  check_bool "some schedules complete" true (e.Explorer.outcomes <> []);
  check_bool "some schedules spin out" true (e.Explorer.livelocks > 0);
  check_int "runs = livelocks + outcome counts" e.Explorer.runs
    (e.Explorer.livelocks + outcome_total e)

let explore_dpor_accounts_livelocks () =
  let d =
    Explorer.explore_dpor ~preemption_bound:2 ~max_runs:2_000 ~max_steps:200
      ~cfg:Stm_core.Config.eager_weak ~make:spin_make ()
  in
  let e = d.Explorer.exploration in
  check_bool "some schedules complete" true (e.Explorer.outcomes <> []);
  check_bool "some schedules spin out" true (e.Explorer.livelocks > 0);
  check_int "runs = livelocks + outcome counts" e.Explorer.runs
    (e.Explorer.livelocks + outcome_total e)

(* Random micro-programs: 2-3 threads of reads/writes (at most one
   wrapped in a transaction) over two shared fields. At preemption
   bound 8 — effectively unbounded for programs this small, every
   Mazurkiewicz class has a representative within the bound — the DPOR
   walk and the enumerative DFS must observe identical outcome {e sets}
   (counts differ by design: DPOR visits each class once). At small
   equal bounds the sets can legitimately differ, because the reduced
   tree's representative of a class may need more preemptions than the
   enumerative one — the BPOR pitfall the certification cross-check
   exists for. Cross-thread state lives in the simulated heap only:
   plain OCaml refs are invisible to the footprint sink, so the
   reduction is only sound for heap-mediated communication. *)
type qop = Q_read of int | Q_write of int * int

let qop_run x logs i = function
  | Q_read f ->
      logs.(i) <- Stm_core.Stm.to_int (Stm_core.Stm.read x f) :: logs.(i)
  | Q_write (f, v) -> Stm_core.Stm.write x f (Stm_core.Stm.vint v)

let qprog_make threads () =
  let logs = Array.make (List.length threads) [] in
  let xr = ref None in
  let main () =
    let x = Stm_core.Stm.alloc_public ~cls:"Q" 2 in
    Stm_runtime.Heap.set x 0 (Stm_runtime.Heap.Vint 0);
    Stm_runtime.Heap.set x 1 (Stm_runtime.Heap.Vint 0);
    xr := Some x;
    let handles =
      List.mapi
        (fun i (tx, ops) ->
          Stm_runtime.Sched.spawn (fun () ->
              let body () = List.iter (qop_run x logs i) ops in
              if tx then Stm_core.Stm.atomic body else body ()))
        threads
    in
    List.iter Stm_runtime.Sched.join handles
  in
  let observe () =
    let x = Option.get !xr in
    let fld f =
      match Stm_runtime.Heap.get x f with
      | Stm_runtime.Heap.Vint n -> n
      | _ -> min_int
    in
    Printf.sprintf "x=%d,%d logs=%s" (fld 0) (fld 1)
      (String.concat ";"
         (Array.to_list
            (Array.map
               (fun l -> String.concat "," (List.rev_map string_of_int l))
               logs)))
  in
  { Explorer.main; observe }

let qprog_gen =
  let open QCheck.Gen in
  let op =
    oneof
      [
        map (fun f -> Q_read f) (int_bound 1);
        map2 (fun f v -> Q_write (f, v + 1)) (int_bound 1) (int_bound 2);
      ]
  in
  let thread = pair bool (list_size (int_range 1 2) op) in
  (* two conflicting transactions explode the enumerative baseline (CM
     retries), so only the first atomic flag survives *)
  let at_most_one_atomic threads =
    let seen = ref false in
    List.map
      (fun (tx, ops) ->
        let tx = tx && not !seen in
        if tx then seen := true;
        (tx, ops))
      threads
  in
  map at_most_one_atomic (list_size (int_range 2 3) thread)

let qprog_print threads =
  String.concat " || "
    (List.map
       (fun (tx, ops) ->
         (if tx then "atomic " else "")
         ^ String.concat ";"
             (List.map
                (function
                  | Q_read f -> Printf.sprintf "r%d" f
                  | Q_write (f, v) -> Printf.sprintf "w%d=%d" f v)
                ops))
       threads)

let dpor_equiv_qcheck =
  let open QCheck in
  let arb = make ~print:qprog_print qprog_gen in
  [
    Test.make ~name:"dpor: outcome set matches enumerative explore" ~count:25
      arb (fun threads ->
        let cfg = Stm_core.Config.eager_weak in
        let e =
          Explorer.explore ~preemption_bound:8 ~cfg ~make:(qprog_make threads)
            ()
        in
        let d =
          Explorer.explore_dpor ~preemption_bound:8 ~cfg
            ~make:(qprog_make threads) ()
        in
        let keys ex = List.map fst ex.Explorer.outcomes in
        (* a truncated baseline decides nothing *)
        e.Explorer.truncated
        || keys e = keys d.Explorer.exploration
           && d.Explorer.complete);
  ]

let dpor_cases =
  [
    case "fig6 certified with >= 5x fewer runs" dpor_certifies_fig6;
    case "deterministic backtrack tree" dpor_deterministic;
    case "explore: runs = livelocks + outcomes" explore_accounts_livelocks;
    case "explore_dpor: runs = livelocks + outcomes"
      explore_dpor_accounts_livelocks;
  ]
  @ List.map QCheck_alcotest.to_alcotest dpor_equiv_qcheck

(* quiescence orders write-backs but does not close the 4a read window *)
let quiesce_does_not_fix_mi_rw () =
  let cell =
    Matrix.run_cell Programs.overlapped_writes
      (Modes.Weak_quiesce Stm_core.Config.Lazy)
  in
  check_bool "MI(4a) still observable under quiescence" true
    cell.Matrix.observed

let suite =
  suite
  @ [
      ("litmus:pct", pct_cases);
      ("litmus:dpor", dpor_cases);
      ( "litmus:quiesce-limits",
        [
          Alcotest.test_case "quiescence does not fix mi-rw" `Quick
            quiesce_does_not_fix_mi_rw;
        ] );
    ]
