(* Tests for the STM core: transaction-record encoding (Figure 7),
   transaction engine (eager and lazy), isolation barriers (Figures 9/10),
   dynamic escape analysis (Figure 11), quiescence, and the public API. *)

open Stm_runtime
open Stm_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_sim f =
  let result = Sched.run f in
  (match result.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  Alcotest.(check bool) "completed" true (result.Sched.status = Sched.Completed)

(* Run [f] inside a fresh simulated machine with the given STM config. *)
let with_stm ?(cfg = Config.eager_weak) f =
  Heap.reset ();
  Stm.install cfg;
  Fun.protect ~finally:Stm.uninstall (fun () -> in_sim f)

let vi = Stm.vint
let geti o f = Stm.to_int (Stm.read o f)

(* ------------------------------------------------------------------ *)
(* Txrec (Figure 7)                                                    *)
(* ------------------------------------------------------------------ *)

let txrec_examples () =
  check_bool "shared decode" true (Txrec.decode (Txrec.shared 5) = Txrec.Shared 5);
  check_bool "exclusive decode" true
    (Txrec.decode (Txrec.exclusive 9) = Txrec.Exclusive 9);
  check_bool "anon decode" true
    (Txrec.decode (Txrec.exclusive_anon 7) = Txrec.Exclusive_anon 7);
  check_bool "private decode" true (Txrec.decode Txrec.private_word = Txrec.Private)

let txrec_bit_tests () =
  (* the read barrier's single-bit test: set except for Exclusive *)
  check_bool "shared readable" true (Txrec.readable_bit (Txrec.shared 3));
  check_bool "anon readable" true (Txrec.readable_bit (Txrec.exclusive_anon 3));
  check_bool "private readable" true (Txrec.readable_bit Txrec.private_word);
  check_bool "exclusive not readable" false
    (Txrec.readable_bit (Txrec.exclusive 4));
  (* BTR acquirable: Shared and Private only *)
  check_bool "shared acquirable" true (Txrec.btr_acquirable (Txrec.shared 3));
  check_bool "private acquirable" true (Txrec.btr_acquirable Txrec.private_word);
  check_bool "exclusive not acquirable" false
    (Txrec.btr_acquirable (Txrec.exclusive 4));
  check_bool "anon not acquirable" false
    (Txrec.btr_acquirable (Txrec.exclusive_anon 4))

let txrec_btr_then_release () =
  (* the write barrier's arithmetic: BTR clears bit 0 turning Shared(v)
     into ExclAnon(v); adding 9 releases to Shared(v+1) *)
  let v = 123 in
  let w = Txrec.shared v in
  let acquired = w - 1 in
  check_bool "btr yields anon same version" true
    (Txrec.decode acquired = Txrec.Exclusive_anon v);
  check_bool "release bumps version" true
    (Txrec.decode (acquired + Txrec.release_delta) = Txrec.Shared (v + 1))

let txrec_qcheck =
  let open QCheck in
  [
    Test.make ~name:"txrec: shared roundtrip" ~count:500
      (int_bound 1_000_000) (fun v ->
        Txrec.decode (Txrec.shared v) = Txrec.Shared v
        && Txrec.version (Txrec.shared v) = v);
    Test.make ~name:"txrec: exclusive roundtrip" ~count:500
      (int_range 1 1_000_000) (fun o ->
        Txrec.decode (Txrec.exclusive o) = Txrec.Exclusive o
        && Txrec.owner (Txrec.exclusive o) = o);
    Test.make ~name:"txrec: anon roundtrip" ~count:500 (int_bound 1_000_000)
      (fun v -> Txrec.decode (Txrec.exclusive_anon v) = Txrec.Exclusive_anon v);
    Test.make ~name:"txrec: btr/add-9 algebra" ~count:500 (int_bound 1_000_000)
      (fun v ->
        let acq = Txrec.shared v - 1 in
        Txrec.decode acq = Txrec.Exclusive_anon v
        && Txrec.decode (acq + Txrec.release_delta) = Txrec.Shared (v + 1));
    Test.make ~name:"txrec: states are distinct" ~count:500
      (pair (int_bound 100000) (int_range 1 100000)) (fun (v, o) ->
        let words =
          [ Txrec.shared v; Txrec.exclusive o; Txrec.exclusive_anon v;
            Txrec.private_word ]
        in
        List.length (List.sort_uniq compare words) = 4);
  ]

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let config_describe () =
  Alcotest.(check string) "weak" "eager+weak" (Config.describe Config.eager_weak);
  Alcotest.(check string)
    "strong dea" "lazy+strong+dea"
    (Config.describe Config.(with_dea lazy_strong))

let config_install_validation () =
  (match Stm.install { Config.eager_weak with dea = true } with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "dea without strong should be rejected");
  (match Stm.install { Config.eager_weak with granule = 0 } with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "granule 0 should be rejected");
  Stm.uninstall ()

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let txn_commit_visibility cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 2 in
      Stm.atomic (fun () ->
          Stm.write o 0 (vi 1);
          Stm.write o 1 (vi 2));
      check_int "field 0" 1 (geti o 0);
      check_int "field 1" 2 (geti o 1))

let txn_abort_rollback cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 10);
      (try
         Stm.atomic (fun () ->
             Stm.write o 0 (vi 99);
             failwith "user abort")
       with Failure _ -> ());
      check_int "rolled back" 10 (geti o 0))

let txn_read_own_write cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.atomic (fun () ->
          Stm.write o 0 (vi 7);
          check_int "reads own write" 7 (geti o 0)))

let txn_version_bump cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      let v0 = Txrec.version (Atomic.get o.Heap.txrec) in
      Stm.atomic (fun () -> Stm.write o 0 (vi 1));
      let v1 = Txrec.version (Atomic.get o.Heap.txrec) in
      check_bool "version bumped by commit" true (v1 > v0);
      check_bool "record released" true
        (Txrec.is_shared (Atomic.get o.Heap.txrec)))

let txn_concurrent_counter cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"Ctr" 1 in
      Stm.write o 0 (vi 0);
      let worker () =
        for _ = 1 to 30 do
          Stm.atomic (fun () -> Stm.write o 0 (vi (geti o 0 + 1)))
        done
      in
      let ts = List.init 4 (fun _ -> Sched.spawn worker) in
      List.iter Sched.join ts;
      check_int "no lost increments" 120 (geti o 0))

let txn_isolation_invariant cfg () =
  (* maintain x + y = 100 under concurrent transfers and transactional
     observers *)
  with_stm ~cfg (fun () ->
      let acct = Stm.alloc_public ~cls:"Acct" 2 in
      Stm.write acct 0 (vi 60);
      Stm.write acct 1 (vi 40);
      let violations = ref 0 in
      let transfer () =
        for i = 1 to 25 do
          Stm.atomic (fun () ->
              let x = geti acct 0 in
              let amount = (i mod 7) - 3 in
              Stm.write acct 0 (vi (x - amount));
              Stm.write acct 1 (vi (geti acct 1 + amount)))
        done
      in
      let observer () =
        for _ = 1 to 25 do
          (* observe through the transaction's return value: effects of
             doomed executions are rolled back, arbitrary OCaml side
             effects inside the closure are not *)
          let sum = Stm.atomic (fun () -> geti acct 0 + geti acct 1) in
          if sum <> 100 then incr violations
        done
      in
      let ts =
        [ Sched.spawn transfer; Sched.spawn transfer; Sched.spawn observer ]
      in
      List.iter Sched.join ts;
      check_int "invariant never violated" 0 !violations;
      check_int "total conserved" 100 (geti acct 0 + geti acct 1))

let txn_nested_flattening cfg () =
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      (try
         Stm.atomic (fun () ->
             Stm.write o 0 (vi 1);
             Stm.atomic (fun () -> Stm.write o 0 (vi 2));
             failwith "abort outer")
       with Failure _ -> ());
      (* flattened: inner effects roll back with the outer abort *)
      check_int "inner write also rolled back" 0 (geti o 0))

let txn_open_nesting () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let log = Stm.alloc_public ~cls:"Log" 1 in
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write log 0 (vi 0);
      Stm.write o 0 (vi 0);
      (try
         Stm.atomic (fun () ->
             Stm.write o 0 (vi 5);
             Stm.atomic_open (fun () -> Stm.write log 0 (vi 1));
             failwith "abort parent")
       with Failure _ -> ());
      check_int "open-nested commit survives parent abort" 1 (geti log 0);
      check_int "parent write rolled back" 0 (geti o 0))

let txn_open_nest_conflict () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      match
        Stm.atomic (fun () ->
            Stm.write o 0 (vi 1);
            (* open-nested txn touching parent-owned data is rejected *)
            Stm.atomic_open (fun () -> Stm.write o 0 (vi 2)))
      with
      | exception Txn.Open_nest_conflict -> ()
      | () -> Alcotest.fail "expected Open_nest_conflict")

let txn_retry_waits_for_change () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let flag = Stm.alloc_public ~cls:"Flag" 1 in
      Stm.write flag 0 (vi 0);
      let consumer =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                if geti flag 0 = 0 then Stm.retry () else ()))
      in
      Sched.yield ();
      Sched.tick 100;
      Stm.atomic (fun () -> Stm.write flag 0 (vi 1));
      Sched.join consumer)

let txn_granular_undo () =
  (* granule = 2: an abort restores the whole granule *)
  let cfg = Config.(with_granule 2 eager_weak) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 2 in
      Stm.write o 0 (vi 1);
      Stm.write o 1 (vi 2);
      (try
         Stm.atomic (fun () ->
             Stm.write o 0 (vi 100);
             (* direct unlogged store models a concurrent writer landing in
                the same granule before the abort *)
             Heap.set o 1 (vi 55);
             failwith "abort")
       with Failure _ -> ());
      check_int "written field restored" 1 (geti o 0);
      check_int "adjacent field clobbered by granular undo" 2 (geti o 1))

let txn_field_granular_undo () =
  (* granule = 1: only the written field is restored *)
  with_stm ~cfg:Config.eager_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 2 in
      Stm.write o 1 (vi 2);
      (try
         Stm.atomic (fun () ->
             Stm.write o 0 (vi 100);
             Heap.set o 1 (vi 55);
             failwith "abort")
       with Failure _ -> ());
      check_int "adjacent field untouched" 55 (geti o 1))

let txn_lazy_buffering () =
  with_stm ~cfg:Config.lazy_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let observed_during = ref (-1) in
      let t =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                Stm.write o 0 (vi 42);
                (* lazy: memory unchanged until commit *)
                observed_during := Stm.to_int (Heap.get o 0)))
      in
      Sched.join t;
      check_int "buffered during txn" 0 !observed_during;
      check_int "visible after commit" 42 (geti o 0))

let txn_lazy_acquire_version_check () =
  (* a lazy transaction whose buffered object changed version must abort
     and retry (the commit-time CAS expects the buffered version) *)
  with_stm ~cfg:Config.lazy_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let w1 =
        Sched.spawn (fun () ->
            Stm.atomic (fun () -> Stm.write o 0 (vi (geti o 0 + 1))))
      in
      let w2 =
        Sched.spawn (fun () ->
            Stm.atomic (fun () -> Stm.write o 0 (vi (geti o 0 + 1))))
      in
      Sched.join w1;
      Sched.join w2;
      check_int "both increments applied" 2 (geti o 0))

let txn_stats_counters () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      Stm.atomic (fun () ->
          ignore (geti o 0);
          Stm.write o 0 (vi 1));
      let s = Stm.stats () in
      check_int "commits" 1 s.Stats.commits;
      check_bool "reads counted" true (s.Stats.txn_reads >= 1);
      check_bool "writes counted" true (s.Stats.txn_writes >= 1))

let txn_doomed_validation_abort () =
  (* periodic validation aborts a doomed transaction stuck in a loop *)
  let cfg = { Config.eager_weak with validate_every = 4 } in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let runs = ref 0 in
      let t =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                incr runs;
                let seen = geti o 0 in
                if seen = 0 then
                  (* wait until another transaction changes o; a doomed
                     loop unless periodic validation aborts us *)
                  for _ = 1 to 30 do
                    ignore (geti o 0)
                  done))
      in
      Sched.yield ();
      Stm.atomic (fun () -> Stm.write o 0 (vi 1));
      Sched.join t;
      check_bool "transaction re-executed after doom" true (!runs >= 2))

(* ------------------------------------------------------------------ *)
(* Barriers (Figures 9/10)                                             *)
(* ------------------------------------------------------------------ *)

let barrier_write_bumps_version () =
  with_stm ~cfg:Config.eager_strong (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      let v0 = Txrec.version (Atomic.get o.Heap.txrec) in
      Stm.write o 0 (vi 5);
      let v1 = Txrec.version (Atomic.get o.Heap.txrec) in
      check_int "one non-txn write = one version bump" (v0 + 1) v1;
      check_bool "released to shared" true
        (Txrec.is_shared (Atomic.get o.Heap.txrec)))

let barrier_read_waits_for_txn () =
  (* a non-txn reader never observes the intermediate state of a
     transaction (the IDR litmus, as a unit test) *)
  with_stm ~cfg:Config.eager_strong (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let odd_seen = ref false in
      let t =
        Sched.spawn (fun () ->
            for _ = 1 to 10 do
              Stm.atomic (fun () ->
                  Stm.write o 0 (vi (geti o 0 + 1));
                  Stm.write o 0 (vi (geti o 0 + 1)))
            done)
      in
      let r =
        Sched.spawn (fun () ->
            for _ = 1 to 30 do
              if geti o 0 mod 2 = 1 then odd_seen := true
            done)
      in
      Sched.join t;
      Sched.join r;
      check_bool "evenness invariant preserved" false !odd_seen)

let barrier_raise_policy () =
  let cfg = { Config.eager_strong with conflict = Config.Raise_error } in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let raised = ref false in
      let t =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                Stm.write o 0 (vi 1);
                (* hold the record across a long window *)
                Sched.tick 5000;
                Sched.yield ()))
      in
      let r =
        Sched.spawn (fun () ->
            (* land inside the writer's window deterministically *)
            Sched.tick 1000;
            Sched.yield ();
            match Stm.read o 0 with
            | exception Conflict.Isolation_violation _ -> raised := true
            | _ -> ())
      in
      Sched.join t;
      Sched.join r;
      check_bool "race detected and raised" true !raised)

let barrier_private_fast_path () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc ~cls:"C" 1 in
      Stm.write o 0 (vi 1);
      ignore (geti o 0);
      let s = Stm.stats () in
      check_bool "private hits" true (s.Stats.barrier_private_hits >= 2);
      check_int "no atomic ops for private data" 0 s.Stats.atomic_ops)

let barrier_acquire_release_pairing () =
  with_stm ~cfg:Config.eager_strong (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      let cfg = Stm.config () in
      let w = Barriers.acquire_anon cfg (Stm.stats ()) o in
      check_bool "anon while held" true
        (Txrec.is_exclusive_anon (Atomic.get o.Heap.txrec));
      Barriers.release_anon cfg o w;
      check_bool "shared after release" true
        (Txrec.is_shared (Atomic.get o.Heap.txrec)))

let barrier_ordering_blocks_writeback () =
  (* ordering-only read barrier (Section 3.3): a reader waits out the
     lazy write-back window *)
  with_stm ~cfg:Config.lazy_strong (fun () ->
      let g = Stm.alloc_public ~cls:"G" 1 in
      let el = Stm.alloc_public ~cls:"El" 1 in
      Stm.write el 0 (vi 0);
      Stm.write g 0 Heap.Vnull;
      let bad = ref false in
      let t =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                Stm.write el 0 (vi 1);
                Stm.write g 0 (Stm.vref el)))
      in
      let r =
        Sched.spawn (fun () ->
            for _ = 1 to 20 do
              let v = Stm.read g 0 in
              if not (Stm.is_null v) then
                if geti (Stm.to_obj v) 0 = 0 then bad := true
            done)
      in
      Sched.join t;
      Sched.join r;
      check_bool "publication order preserved" false !bad)

(* ------------------------------------------------------------------ *)
(* Dynamic escape analysis (Figure 11)                                 *)
(* ------------------------------------------------------------------ *)

let dea_alloc_private () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc ~cls:"C" 1 in
      check_bool "fresh object private" true (Dea.is_private o);
      let p = Stm.alloc_public ~cls:"C" 1 in
      check_bool "alloc_public is public" false (Dea.is_private p))

let dea_publish_closure () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let a = Stm.alloc ~cls:"A" 1 in
      let b = Stm.alloc ~cls:"B" 1 in
      let c = Stm.alloc ~cls:"C" 1 in
      Stm.write a 0 (Stm.vref b);
      Stm.write b 0 (Stm.vref c);
      (* cycle back to a *)
      Stm.write c 0 (Stm.vref a);
      let root = Stm.alloc_public ~cls:"Root" 1 in
      Stm.write root 0 (Stm.vref a);
      check_bool "a published" false (Dea.is_private a);
      check_bool "b published transitively" false (Dea.is_private b);
      check_bool "c published transitively" false (Dea.is_private c))

let dea_publish_on_spawn_pattern () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let thread_obj = Stm.alloc ~cls:"Worker" 1 in
      Stm.publish thread_obj;
      check_bool "explicit publish" false (Dea.is_private thread_obj))

let dea_nobarrier_store_publishes () =
  (* regression: a store whose barrier was statically removed must still
     publish the referenced private object *)
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let pub = Stm.alloc_public ~cls:"Pub" 1 in
      let priv = Stm.alloc ~cls:"P" 1 in
      Stm.write_nobarrier pub 0 (Stm.vref priv);
      check_bool "published through nobarrier store" false (Dea.is_private priv))

let dea_txn_store_publishes () =
  (* Section 4: in an eager system, a transactional store of a reference
     into a public object publishes immediately, before commit *)
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let pub = Stm.alloc_public ~cls:"Pub" 1 in
      let priv = Stm.alloc ~cls:"P" 1 in
      let observed_mid_txn = ref true in
      Stm.atomic (fun () ->
          Stm.write pub 0 (Stm.vref priv);
          observed_mid_txn := Dea.is_private priv);
      check_bool "published before commit" false !observed_mid_txn)

let dea_private_store_no_publish () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      let a = Stm.alloc ~cls:"A" 1 in
      let b = Stm.alloc ~cls:"B" 1 in
      Stm.write a 0 (Stm.vref b);
      check_bool "store into private keeps target private" true
        (Dea.is_private b))

let dea_qcheck =
  let open QCheck in
  (* random graph: publish must leave no private object reachable from
     the root, and must terminate on arbitrary (cyclic) graphs *)
  let gen_edges =
    list_of_size (Gen.int_range 0 60) (pair (int_bound 19) (int_bound 19))
  in
  [
    Test.make ~name:"dea: publish closes reachability (random graphs)"
      ~count:100 gen_edges (fun edges ->
        Heap.reset ();
        let objs = Array.init 20 (fun _ -> Heap.alloc ~txrec:Heap.private_txrec ~cls:"N" 3) in
        List.iteri
          (fun i (src, dst) ->
            Heap.set objs.(src) (i mod 3) (Heap.Vref objs.(dst)))
          edges;
        let stats = Stats.create () in
        ignore
          (Sched.run (fun () -> Dea.publish stats Cost.free objs.(0))
            : Sched.result);
        (* check: no private object reachable from objs.(0) *)
        let visited = Hashtbl.create 32 in
        let ok = ref true in
        let rec visit (o : Heap.obj) =
          if not (Hashtbl.mem visited o.Heap.oid) then begin
            Hashtbl.replace visited o.Heap.oid ();
            if Dea.is_private o then ok := false;
            Array.iter
              (function Heap.Vref p -> visit p | _ -> ())
              o.Heap.fields
          end
        in
        visit objs.(0);
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Quiescence                                                          *)
(* ------------------------------------------------------------------ *)

let quiesce_tickets () =
  let q = Quiesce.create () in
  let t0 = Quiesce.take_ticket q in
  let t1 = Quiesce.take_ticket q in
  check_int "tickets ordered" 0 t0;
  check_int "tickets ordered" 1 t1;
  in_sim (fun () ->
      Quiesce.await_turn q t0;
      Quiesce.retire_ticket q t0;
      Quiesce.await_turn q t1;
      Quiesce.retire_ticket q t1)

let quiesce_epoch_wait () =
  in_sim (fun () ->
      let q = Quiesce.create () in
      let p1 = Quiesce.register q in
      let p2 = Quiesce.register q in
      let committed = ref false in
      let t =
        Sched.spawn (fun () ->
            Quiesce.commit_epoch_wait q p1;
            committed := true;
            Quiesce.deregister q p1)
      in
      (* let the committer run and start waiting *)
      Sched.tick 100;
      Sched.yield ();
      check_bool "committer waits for p2" false !committed;
      Quiesce.mark_consistent q p2;
      Sched.join t;
      check_bool "committer released" true !committed;
      Quiesce.deregister q p2)

let quiesce_concurrent_committers () =
  (* two committers must not deadlock on each other *)
  in_sim (fun () ->
      let q = Quiesce.create () in
      let p1 = Quiesce.register q in
      let p2 = Quiesce.register q in
      let a =
        Sched.spawn (fun () ->
            Quiesce.commit_epoch_wait q p1;
            Quiesce.deregister q p1)
      in
      let b =
        Sched.spawn (fun () ->
            Quiesce.commit_epoch_wait q p2;
            Quiesce.deregister q p2)
      in
      Sched.join a;
      Sched.join b)

let quiesce_counter_correct () =
  let cfg = Config.(with_quiescence eager_weak) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"Ctr" 1 in
      Stm.write o 0 (vi 0);
      let worker () =
        for _ = 1 to 20 do
          Stm.atomic (fun () -> Stm.write o 0 (vi (geti o 0 + 1)))
        done
      in
      let ts = List.init 4 (fun _ -> Sched.spawn worker) in
      List.iter Sched.join ts;
      check_int "quiescence preserves counting" 80 (geti o 0))

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let api_not_installed () =
  Stm.uninstall ();
  match Stm.alloc ~cls:"C" 1 with
  | exception Stm.Not_installed -> ()
  | _ -> Alcotest.fail "expected Not_installed"

let api_retry_outside () =
  with_stm (fun () ->
      match Stm.retry () with
      | exception Stm.Retry_outside_transaction -> ()
      | _ -> Alcotest.fail "expected Retry_outside_transaction")

let api_value_helpers () =
  check_int "to_int" 5 (Stm.to_int (Stm.vint 5));
  check_bool "to_bool" true (Stm.to_bool (Stm.vbool true));
  check_bool "is_null" true (Stm.is_null Heap.Vnull);
  (match Stm.to_int (Stm.vbool true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "to_int on bool should fail");
  match Stm.to_obj Heap.Vnull with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "to_obj on null should fail"

let api_in_txn () =
  with_stm (fun () ->
      check_bool "outside" false (Stm.in_txn ());
      Stm.atomic (fun () -> check_bool "inside" true (Stm.in_txn ()));
      check_bool "after" false (Stm.in_txn ()))

let api_run_returns_stats () =
  let result, stats =
    Stm.run ~cfg:Config.eager_weak (fun () ->
        let o = Stm.alloc ~cls:"C" 1 in
        Stm.atomic (fun () -> Stm.write o 0 (Stm.vint 1)))
  in
  check_bool "completed" true (result.Sched.status = Sched.Completed);
  check_int "one commit" 1 stats.Stats.commits;
  check_bool "uninstalled after run" false (Stm.installed ())

let api_valid_outside_txn () =
  with_stm (fun () -> check_bool "valid outside" true (Stm.valid ()))

let case name f = Alcotest.test_case name `Quick f

let all_cfgs =
  [
    ("eager-weak", Config.eager_weak);
    ("lazy-weak", Config.lazy_weak);
    ("eager-strong", Config.eager_strong);
    ("lazy-strong", Config.lazy_strong);
    ("eager-strong-dea", Config.(with_dea eager_strong));
    ("lazy-strong-dea", Config.(with_dea lazy_strong));
    ("eager-quiesce", Config.(with_quiescence eager_weak));
    ("lazy-quiesce", Config.(with_quiescence lazy_weak));
  ]

let per_cfg name f = List.map (fun (cn, cfg) -> case (name ^ " [" ^ cn ^ "]") (f cfg)) all_cfgs

let suite =
  [
    ( "core:txrec",
      [
        case "example encodings" txrec_examples;
        case "bit tests" txrec_bit_tests;
        case "btr then release" txrec_btr_then_release;
      ]
      @ List.map QCheck_alcotest.to_alcotest txrec_qcheck );
    ( "core:config",
      [ case "describe" config_describe; case "install validation" config_install_validation ] );
    ( "core:txn",
      per_cfg "commit visibility" txn_commit_visibility
      @ per_cfg "abort rollback" txn_abort_rollback
      @ per_cfg "read own write" txn_read_own_write
      @ per_cfg "version bump" txn_version_bump
      @ per_cfg "concurrent counter" txn_concurrent_counter
      @ per_cfg "isolation invariant" txn_isolation_invariant
      @ per_cfg "nested flattening" txn_nested_flattening
      @ [
          case "open nesting" txn_open_nesting;
          case "open nest conflict" txn_open_nest_conflict;
          case "retry waits for change" txn_retry_waits_for_change;
          case "granular undo (granule=2)" txn_granular_undo;
          case "field-granular undo (granule=1)" txn_field_granular_undo;
          case "lazy buffering" txn_lazy_buffering;
          case "lazy acquire version check" txn_lazy_acquire_version_check;
          case "stats counters" txn_stats_counters;
          case "doomed txn validation abort" txn_doomed_validation_abort;
        ] );
    ( "core:barriers",
      [
        case "write bumps version" barrier_write_bumps_version;
        case "read waits for txn" barrier_read_waits_for_txn;
        case "raise policy" barrier_raise_policy;
        case "private fast path" barrier_private_fast_path;
        case "acquire/release pairing" barrier_acquire_release_pairing;
        case "ordering barrier blocks write-back" barrier_ordering_blocks_writeback;
      ] );
    ( "core:dea",
      [
        case "alloc private" dea_alloc_private;
        case "publish closure (with cycle)" dea_publish_closure;
        case "publish on spawn" dea_publish_on_spawn_pattern;
        case "nobarrier store publishes" dea_nobarrier_store_publishes;
        case "txn store publishes" dea_txn_store_publishes;
        case "private store no publish" dea_private_store_no_publish;
      ]
      @ List.map QCheck_alcotest.to_alcotest dea_qcheck );
    ( "core:quiesce",
      [
        case "tickets" quiesce_tickets;
        case "epoch wait" quiesce_epoch_wait;
        case "concurrent committers" quiesce_concurrent_committers;
        case "counter correct" quiesce_counter_correct;
      ] );
    ( "core:api",
      [
        case "not installed" api_not_installed;
        case "retry outside" api_retry_outside;
        case "value helpers" api_value_helpers;
        case "in_txn" api_in_txn;
        case "run returns stats" api_run_returns_stats;
        case "valid outside txn" api_valid_outside_txn;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Wound-wait contention management                                    *)
(* ------------------------------------------------------------------ *)

let wound_wait_counter () =
  let cfg = Config.(with_wound_wait eager_weak) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"Ctr" 1 in
      Stm.write o 0 (vi 0);
      let worker () =
        for _ = 1 to 25 do
          Stm.atomic (fun () -> Stm.write o 0 (vi (geti o 0 + 1)))
        done
      in
      let ts = List.init 6 (fun _ -> Sched.spawn worker) in
      List.iter Sched.join ts;
      check_int "no lost increments under wound-wait" 150 (geti o 0))

let wound_wait_cross_conflict () =
  (* two transactions acquiring two records in opposite order: suicide
     resolves by retry-budget exhaustion, wound-wait by the older killing
     the younger; both must make progress and stay serializable *)
  let run cfg =
    let wounds = ref 0 in
    with_stm ~cfg (fun () ->
        let a = Stm.alloc_public ~cls:"A" 1 in
        let b = Stm.alloc_public ~cls:"B" 1 in
        Stm.write a 0 (vi 0);
        Stm.write b 0 (vi 0);
        let swapper x y () =
          for _ = 1 to 15 do
            Stm.atomic (fun () ->
                let vx = geti x 0 in
                Sched.tick 30;
                Sched.yield ();
                Stm.write y 0 (vi (geti y 0 + 1));
                Stm.write x 0 (vi (vx + 1)))
          done
        in
        let t1 = Sched.spawn (swapper a b) in
        let t2 = Sched.spawn (swapper b a) in
        Sched.join t1;
        Sched.join t2;
        check_int "all increments survive" 60 (geti a 0 + geti b 0);
        wounds := (Stm.stats ()).Stats.wounds);
    !wounds
  in
  let w_suicide = run Config.eager_weak in
  let w_wound = run Config.(with_wound_wait eager_weak) in
  check_int "suicide never wounds" 0 w_suicide;
  check_bool "wound-wait wounds under cross conflicts" true (w_wound >= 0)

let wound_wait_victim_aborts () =
  let cfg = Config.(with_wound_wait { eager_weak with validate_every = 1 }) in
  with_stm ~cfg (fun () ->
      let a = Stm.alloc_public ~cls:"A" 1 in
      let b = Stm.alloc_public ~cls:"B" 1 in
      Stm.write a 0 (vi 0);
      Stm.write b 0 (vi 0);
      (* older txn (started first -> smaller id) contends with younger *)
      let young_done = ref false in
      let old_t =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                Stm.write a 0 (vi 1);
                (* give the younger txn time to grab b *)
                Sched.tick 200;
                Sched.yield ();
                Stm.write b 0 (vi 1)))
      in
      let young_t =
        Sched.spawn (fun () ->
            Sched.tick 50;
            Sched.yield ();
            Stm.atomic (fun () ->
                Stm.write b 0 (vi 2);
                Sched.tick 500;
                Sched.yield ();
                Stm.write a 0 (vi 2));
            young_done := true)
      in
      Sched.join old_t;
      Sched.join young_t;
      check_bool "younger eventually completes too" true !young_done;
      let s = Stm.stats () in
      check_bool "a wound happened" true (s.Stats.wounds >= 1);
      check_bool "victim aborted" true (s.Stats.aborts >= 1))

let suite =
  suite
  @ [
      ( "core:wound-wait",
        [
          case "counter correct" wound_wait_counter;
          case "cross conflicts resolve" wound_wait_cross_conflict;
          case "older wounds younger" wound_wait_victim_aborts;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Trace events                                                        *)
(* ------------------------------------------------------------------ *)

let trace_events_emitted () =
  let events = ref [] in
  Trace.set_sink (Some (fun e -> events := e :: !events));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () ->
      with_stm ~cfg:Config.eager_weak (fun () ->
          let o = Stm.alloc_public ~cls:"C" 1 in
          Stm.write o 0 (vi 0);
          Stm.atomic (fun () -> Stm.write o 0 (vi 1));
          try
            Stm.atomic (fun () ->
                Stm.write o 0 (vi 2);
                failwith "bail")
          with Failure _ -> ()));
  let have p = List.exists p !events in
  check_bool "begin emitted" true
    (have (function Trace.Txn_begin _ -> true | _ -> false));
  check_bool "commit emitted" true
    (have (function Trace.Txn_commit _ -> true | _ -> false));
  check_bool "abort emitted" true
    (have (function Trace.Txn_abort _ -> true | _ -> false))

let trace_off_is_silent () =
  Trace.set_sink None;
  check_bool "disabled" false (Trace.enabled ());
  (* emitting with no sink must not force the payload *)
  let forced = ref false in
  Trace.emit
    (lazy
      (forced := true;
       Trace.Txn_begin { txid = 0; tid = 0 }));
  check_bool "payload not forced" false !forced

let suite =
  suite
  @ [
      ( "core:trace",
        [
          case "events emitted" trace_events_emitted;
          case "off is silent and free" trace_off_is_silent;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Figure 8: the full transaction-record transition cycle              *)
(* ------------------------------------------------------------------ *)

let figure8_transitions () =
  let cfg = Config.(with_dea eager_strong) in
  with_stm ~cfg (fun () ->
      (* Private at birth *)
      let o = Stm.alloc ~cls:"C" 1 in
      check_bool "born private" true
        (Txrec.decode (Atomic.get o.Heap.txrec) = Txrec.Private);
      (* publishObject: Private -> Shared *)
      Stm.publish o;
      (match Txrec.decode (Atomic.get o.Heap.txrec) with
      | Txrec.Shared v0 -> (
          (* non-txn write barrier: Shared -BTR-> ExclAnon -add9-> Shared(v+1) *)
          Stm.write o 0 (vi 1);
          match Txrec.decode (Atomic.get o.Heap.txrec) with
          | Txrec.Shared v1 ->
              check_int "barrier bumped version once" (v0 + 1) v1;
              (* transactional open-for-write: Shared -CAS-> Exclusive;
                 observe the owner id from inside the transaction *)
              let seen_exclusive = ref false in
              Stm.atomic (fun () ->
                  Stm.write o 0 (vi 2);
                  seen_exclusive :=
                    Txrec.is_exclusive (Atomic.get o.Heap.txrec));
              check_bool "exclusive while txn held it" true !seen_exclusive;
              (* Txn end: Exclusive -> Shared(v+1) *)
              (match Txrec.decode (Atomic.get o.Heap.txrec) with
              | Txrec.Shared v2 -> check_int "commit bumped version" (v1 + 1) v2
              | _ -> Alcotest.fail "expected shared after commit")
          | _ -> Alcotest.fail "expected shared after barrier release")
      | _ -> Alcotest.fail "expected shared after publish"))

let nontxn_race_detection () =
  (* footnote 2: with the extra lowest-bit check and the raise policy,
     a plain read can detect a concurrent non-transactional writer *)
  let cfg =
    {
      Config.eager_strong with
      detect_nontxn_races = true;
      conflict = Config.Raise_error;
    }
  in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let detected = ref false in
      let writer =
        Sched.spawn (fun () ->
            (* acquire exclusive-anonymous and hold it over a window *)
            let cfg = Stm.config () in
            let w = Barriers.acquire_anon cfg (Stm.stats ()) o in
            Sched.tick 1000;
            Sched.yield ();
            Heap.set o 0 (vi 1);
            Barriers.release_anon cfg o w)
      in
      let reader =
        Sched.spawn (fun () ->
            Sched.tick 300;
            Sched.yield ();
            match Stm.read o 0 with
            | exception Conflict.Isolation_violation _ -> detected := true
            | _ -> ())
      in
      Sched.join writer;
      Sched.join reader;
      check_bool "race between two non-txn threads detected" true !detected)

let nontxn_race_detection_off_by_default () =
  (* without the flag, the same schedule completes without raising *)
  let cfg = { Config.eager_strong with conflict = Config.Raise_error } in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 0);
      let writer =
        Sched.spawn (fun () ->
            let cfg = Stm.config () in
            let w = Barriers.acquire_anon cfg (Stm.stats ()) o in
            Sched.tick 1000;
            Sched.yield ();
            Heap.set o 0 (vi 1);
            Barriers.release_anon cfg o w)
      in
      let reader =
        Sched.spawn (fun () ->
            Sched.tick 300;
            Sched.yield ();
            ignore (Stm.read o 0))
      in
      Sched.join writer;
      Sched.join reader)

let suite =
  suite
  @ [
      ( "core:figure8",
        [
          case "record transition cycle" figure8_transitions;
          case "footnote-2 race detection" nontxn_race_detection;
          case "footnote-2 off by default" nontxn_race_detection_off_by_default;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Read-set dedup (PR 4): re-reads must not grow the validated set,    *)
(* must not change virtual time, and must keep first-observed versions *)
(* ------------------------------------------------------------------ *)

(* Re-reading the same granule many times: the commit event must report
   the number of distinct granules read, not the number of read
   observations (the old cons-list appended one entry per observation). *)
let reread_commit_reads_distinct () =
  let commits = ref [] in
  Trace.set_sink
    (Some
       (function
       | Trace.Txn_commit { reads; _ } -> commits := reads :: !commits
       | _ -> ()));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () ->
      with_stm ~cfg:Config.eager_weak (fun () ->
          let o = Stm.alloc_public ~cls:"C" 1 in
          let others = List.init 3 (fun _ -> Stm.alloc_public ~cls:"C" 1) in
          Stm.atomic (fun () ->
              for _ = 1 to 50 do
                ignore (Stm.read o 0)
              done;
              List.iter (fun p -> ignore (Stm.read p 0)) others)));
  match !commits with
  | [ reads ] -> check_int "commit reads = distinct granules" 4 reads
  | l -> Alcotest.failf "expected one commit event, got %d" (List.length l)

(* The validation cost charge counts read observations (including
   re-reads), exactly as when the read set kept duplicates: the makespan
   of a re-read-heavy program is pinned so that any change to the charge
   - e.g. "optimizing" it to count distinct entries - is caught. *)
let reread_makespan_golden () =
  Heap.reset ();
  Stm.install Config.eager_weak;
  let r =
    Fun.protect ~finally:Stm.uninstall (fun () ->
        Sched.run (fun () ->
            let o = Stm.alloc_public ~cls:"C" 1 in
            Stm.atomic (fun () ->
                for _ = 1 to 200 do
                  ignore (Stm.read o 0)
                done)))
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  check_int "virtual time unchanged by dedup" 1119 r.Sched.makespan

(* Dedup keeps the FIRST observed version: if the object changes between
   two reads of the same transaction, validation must fail (the retained
   stale entry catches it) and the transaction must retry - last-wins
   would let an inconsistent first read slip through. *)
let reread_keeps_first_version () =
  let causes = ref [] in
  Trace.set_sink
    (Some
       (function
       | Trace.Txn_abort { cause; _ } -> causes := cause :: !causes
       | _ -> ()));
  let attempts = ref 0 in
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () ->
      (* strong atomicity so the non-transactional write fires the
         isolation barrier and bumps the record version *)
      with_stm ~cfg:Config.eager_strong (fun () ->
          let o = Stm.alloc_public ~cls:"C" 1 in
          Stm.write o 0 (vi 1);
          let reader =
            Sched.spawn (fun () ->
                Stm.atomic (fun () ->
                    incr attempts;
                    ignore (Stm.read o 0);
                    (* park past the writer's instant; the re-read then
                       observes the bumped version *)
                    Sched.pause 500;
                    ignore (Stm.read o 0)))
          in
          let writer =
            Sched.spawn (fun () ->
                (* after the reader's first read, before its re-read *)
                Sched.pause 100;
                Stm.write o 0 (vi 2))
          in
          Sched.join reader;
          Sched.join writer;
          check_int "writer value survived" 2 (geti o 0)));
  check_int "first attempt failed validation, second committed" 2 !attempts;
  check_bool "abort cause was validation" true
    (List.mem Trace.Cause_validation !causes)

let suite =
  suite
  @ [
      ( "core:read-set",
        [
          case "commit reads = distinct granules" reread_commit_reads_distinct;
          case "re-read charge pins makespan" reread_makespan_golden;
          case "dedup keeps first version" reread_keeps_first_version;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Global-commit-clock (timestamp) validation                          *)
(* ------------------------------------------------------------------ *)

let ts_cfg v =
  { Config.base with Config.versioning = v; validation = Config.Timestamp }

(* An uncontended transaction never walks its read set: every explicit
   validation hits the O(1) clock-unchanged fast path, and a read-only
   body commits without the commit-time walk. *)
let ts_fast_path_and_ro_commit versioning () =
  with_stm ~cfg:(ts_cfg versioning) (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 7);
      let v =
        Stm.atomic (fun () ->
            check_bool "valid (fast)" true (Stm.valid ());
            check_bool "valid again (fast)" true (Stm.valid ());
            geti o 0)
      in
      check_int "read committed value" 7 v;
      let s = Stm.stats () in
      check_bool "fast validations" true (s.Stats.fast_validations >= 2);
      check_int "read-only fast commit" 1 s.Stats.ro_fast_commits;
      (* a writing transaction must not take the read-only fast path *)
      Stm.atomic (fun () -> Stm.write o 0 (vi 8));
      let s = Stm.stats () in
      check_int "writer not counted read-only" 1 s.Stats.ro_fast_commits)

(* The timestamp counters stay silent under the default incremental
   scheme — the opt-in gate for byte-identical seed behavior. *)
let ts_counters_silent_under_incremental () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.atomic (fun () ->
          ignore (Stm.read o 0);
          check_bool "valid" true (Stm.valid ()));
      let s = Stm.stats () in
      check_int "no fast validations" 0 s.Stats.fast_validations;
      check_int "no extensions" 0 s.Stats.ts_extensions;
      check_int "no ro fast commits" 0 s.Stats.ro_fast_commits)

(* Reading a version stamped after the transaction began triggers a
   timestamp extension; when only disjoint granules committed in between
   the extension succeeds and the read proceeds at the new snapshot. *)
let ts_extension_succeeds versioning () =
  with_stm ~cfg:(ts_cfg versioning) (fun () ->
      let a = Stm.alloc_public ~cls:"C" 1 in
      let b = Stm.alloc_public ~cls:"C" 1 in
      Stm.write b 0 (vi 1);
      let reader =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                ignore (Stm.read a 0);
                (* park past the writer's commit *)
                Sched.pause 2000;
                check_int "extended read sees committed value" 2 (geti b 0)))
      in
      let writer =
        Sched.spawn (fun () ->
            Sched.pause 100;
            Stm.atomic (fun () -> Stm.write b 0 (vi 2)))
      in
      Sched.join reader;
      Sched.join writer;
      let s = Stm.stats () in
      check_bool "extension fired" true (s.Stats.ts_extensions >= 1))

(* When a granule already read HAS changed, the extension walk fails and
   the transaction aborts and retries rather than read an inconsistent
   snapshot. *)
let ts_extension_failure_retries versioning () =
  with_stm ~cfg:(ts_cfg versioning) (fun () ->
      let a = Stm.alloc_public ~cls:"C" 1 in
      let b = Stm.alloc_public ~cls:"C" 1 in
      Stm.write a 0 (vi 0);
      Stm.write b 0 (vi 0);
      let attempts = ref 0 in
      let reads = ref (0, 0) in
      let reader =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                incr attempts;
                let va = geti a 0 in
                Sched.pause 2000;
                let vb = geti b 0 in
                reads := (va, vb)))
      in
      let writer =
        Sched.spawn (fun () ->
            Sched.pause 100;
            Stm.atomic (fun () ->
                Stm.write a 0 (vi 9);
                Stm.write b 0 (vi 9)))
      in
      Sched.join reader;
      Sched.join writer;
      check_bool "reader retried" true (!attempts >= 2);
      check_bool "final snapshot consistent" true (!reads = (9, 9)))

(* Strong non-transactional stores advance the commit clock at release:
   a transaction that read the granule beforehand cannot fast-pass
   validation over the store. The stale read-only transaction still
   commits — it serializes at its begin snapshot, which the store
   post-dates. *)
let ts_strong_barrier_bumps_clock () =
  with_stm
    ~cfg:{ (ts_cfg Config.Eager) with Config.strong = true }
    (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (vi 1);
      let attempts = ref 0 in
      let first_valid = ref true in
      let reader =
        Sched.spawn (fun () ->
            Stm.atomic (fun () ->
                incr attempts;
                ignore (Stm.read o 0);
                Sched.pause 2000;
                if !attempts = 1 then first_valid := Stm.valid ()))
      in
      let writer =
        Sched.spawn (fun () ->
            Sched.pause 100;
            (* non-transactional store through the strong barrier *)
            Stm.write o 0 (vi 2))
      in
      Sched.join reader;
      Sched.join writer;
      check_bool "validation saw the non-txn store" false !first_valid;
      check_int "read-only txn still commits at its snapshot" 1 !attempts)

(* Differential harness for the equivalence property: one reader running
   a generated sequence of (granule, pause) reads against a set of
   committed writer transactions at generated offsets. Records the
   reader's first attempt — did it reach the end, and what did [valid]
   say there — plus the final heap. *)
let ts_run_interleaving ~validation ~versioning ops writers =
  let cfg =
    {
      Config.base with
      Config.versioning;
      validation;
      cost = Cost.free;
      (* no periodic validation: the property observes [valid] at the
         end of the first attempt, not mid-body aborts *)
      validate_every = 1_000_000;
    }
  in
  Heap.reset ();
  Stm.install cfg;
  Fun.protect ~finally:Stm.uninstall (fun () ->
      let attempts = ref 0 in
      let end_valid = ref None in
      let finals = ref [] in
      let r =
        Sched.run (fun () ->
            let objs = Array.init 3 (fun _ -> Stm.alloc_public ~cls:"Q" 1) in
            Array.iter (fun o -> Stm.write o 0 (vi 0)) objs;
            let reader =
              Sched.spawn (fun () ->
                  Stm.atomic (fun () ->
                      incr attempts;
                      List.iter
                        (fun (i, d) ->
                          ignore (Stm.read objs.(i) 0);
                          if d > 0 then Sched.pause d)
                        ops;
                      if !attempts = 1 then end_valid := Some (Stm.valid ())))
            in
            let ws =
              List.mapi
                (fun j (i, off) ->
                  Sched.spawn (fun () ->
                      Sched.pause off;
                      Stm.atomic (fun () -> Stm.write objs.(i) 0 (vi (100 + j)))))
                writers
            in
            Sched.join reader;
            List.iter Sched.join ws;
            finals := Array.to_list (Array.map (fun o -> geti o 0) objs))
      in
      (match r.Sched.exns with
      | [] -> ()
      | (tid, e) :: _ ->
          Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
      (!end_valid, !finals))

(* Timestamp validation must agree with incremental validation on every
   committed-write interleaving:
   - identical final heaps (both schemes converge to the same commits);
   - when the timestamp reader's first attempt reaches the end, [valid]
     answers exactly as incremental's;
   - when it aborts early (a failed extension — the one conservative
     behavior incremental lacks), incremental must be invalid at the end
     (or have aborted at the same contention point). *)
let ts_equivalence_qcheck =
  let open QCheck in
  let op = pair (int_bound 2) (int_bound 300) in
  let writer = pair (int_bound 2) (int_bound 400) in
  let gen =
    triple bool (list_of_size Gen.(1 -- 6) op) (list_of_size Gen.(0 -- 4) writer)
  in
  Test.make ~name:"timestamp == incremental on committed interleavings"
    ~count:60 gen (fun (eager, ops, writers) ->
      let versioning = if eager then Config.Eager else Config.Lazy in
      let v_inc, f_inc =
        ts_run_interleaving ~validation:Config.Incremental ~versioning ops
          writers
      in
      let v_ts, f_ts =
        ts_run_interleaving ~validation:Config.Timestamp ~versioning ops
          writers
      in
      f_inc = f_ts
      &&
      match v_ts with
      | Some b -> v_inc = Some b
      | None -> v_inc = None || v_inc = Some false)

let suite =
  suite
  @ [
      ( "core:timestamp",
        [
          case "eager: fast path + ro commit"
            (ts_fast_path_and_ro_commit Config.Eager);
          case "lazy: fast path + ro commit"
            (ts_fast_path_and_ro_commit Config.Lazy);
          case "incremental keeps counters silent"
            ts_counters_silent_under_incremental;
          case "eager: extension succeeds"
            (ts_extension_succeeds Config.Eager);
          case "lazy: extension succeeds" (ts_extension_succeeds Config.Lazy);
          case "eager: failed extension retries"
            (ts_extension_failure_retries Config.Eager);
          case "lazy: failed extension retries"
            (ts_extension_failure_retries Config.Lazy);
          case "strong barrier bumps the clock" ts_strong_barrier_bumps_clock;
        ]
        @ QCheck_alcotest.(List.map to_alcotest [ ts_equivalence_qcheck ]) );
    ]
