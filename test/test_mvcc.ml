(* The multi-version backend: version-chain mechanics on the heap, the
   commit clock / snapshot registry, read-only abort freedom on the
   read-heavy stress scenario, and the write-skew separation between the
   mvcc isolation levels. *)

open Stm_runtime
open Stm_check
module Config = Stm_core.Config
module Stats = Stm_core.Stats
module Mvcc = Stm_mvcc.Mvcc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Heap version chains                                                 *)
(* ------------------------------------------------------------------ *)

(* Install values 10, 20, 30 at timestamps 1, 2, 3 the way Mvcc.install
   does it: retire the current fields, overwrite in place, restamp. *)
let three_versions () =
  Heap.reset ();
  let o = Heap.alloc ~cls:"V" 1 in
  Heap.set_version_ts o 0;
  List.iter
    (fun ts ->
      Heap.push_version o;
      Heap.set o 0 (Heap.Vint (ts * 10));
      Heap.set_version_ts o ts)
    [ 1; 2; 3 ];
  o

let test_read_at () =
  let o = three_versions () in
  check_int "chain holds all four versions" 4 (Heap.chain_length o);
  List.iter
    (fun (ts, expect) ->
      match Heap.read_at o 0 ~ts with
      | Some v -> check_bool (Printf.sprintf "ts=%d" ts) true (v = expect)
      | None -> Alcotest.failf "ts=%d: unexpected miss" ts)
    [
      (0, Heap.Vnull);  (* pre-first-commit snapshot sees the initial field *)
      (1, Heap.Vint 10);
      (2, Heap.Vint 20);
      (3, Heap.Vint 30);
      (99, Heap.Vint 30);  (* future snapshot reads the current version *)
    ]

let test_prune_oldest () =
  let o = three_versions () in
  (* Nothing reachable only by snapshots < 2 survives: the ts=0 and ts=1
     entries go, ts=2 stays (it is the version a snapshot at 2 reads). *)
  let dropped = Heap.prune_past o ~oldest:2 ~max_versions:8 in
  check_int "dropped the unreachable prefix" 2 dropped;
  check_bool "ts=2 still served" true (Heap.read_at o 0 ~ts:2 = Some (Heap.Vint 20));
  check_bool "ts=1 now a miss" true (Heap.read_at o 0 ~ts:1 = None)

let test_prune_bound () =
  let o = three_versions () in
  (* A live snapshot at 0 wants the whole chain, but the hard bound wins;
     the dropped versions then surface as read_at misses. *)
  let dropped = Heap.prune_past o ~oldest:0 ~max_versions:2 in
  check_int "bounded to two entries" 2 dropped;
  check_int "chain length respects the bound" 2 (Heap.chain_length o);
  check_bool "old snapshot misses" true (Heap.read_at o 0 ~ts:0 = None);
  check_bool "newest past version kept" true
    (Heap.read_at o 0 ~ts:2 = Some (Heap.Vint 20))

(* ------------------------------------------------------------------ *)
(* Commit clock and snapshot registry                                  *)
(* ------------------------------------------------------------------ *)

let test_clock_and_snapshots () =
  let mv = Mvcc.create () in
  check_int "clock starts at zero" 0 (Mvcc.now mv);
  check_int "first ticket" 1 (Mvcc.advance mv);
  check_int "second ticket" 2 (Mvcc.advance mv);
  let s1 = Mvcc.begin_snapshot mv in
  check_int "snapshot at current clock" 2 s1;
  ignore (Mvcc.advance mv);
  let s2 = Mvcc.begin_snapshot mv in
  check_int "oldest live snapshot" 2 (Mvcc.oldest_active mv);
  Mvcc.end_snapshot mv s1;
  check_int "oldest advances on release" 3 (Mvcc.oldest_active mv);
  Mvcc.end_snapshot mv s2;
  check_int "no live snapshot: oldest = clock" (Mvcc.now mv)
    (Mvcc.oldest_active mv)

let test_fcw () =
  Heap.reset ();
  let mv = Mvcc.create () in
  let o = Heap.alloc ~cls:"V" 1 in
  Heap.set_version_ts o 0;
  let snap = Mvcc.begin_snapshot mv in
  check_bool "no newer version: first committer" true (Mvcc.fcw_ok o ~snap);
  let ts = Mvcc.advance mv in
  Mvcc.install mv o ~ts;
  Heap.set o 0 (Heap.Vint 1);
  check_bool "newer version: second committer loses" false (Mvcc.fcw_ok o ~snap);
  check_bool "fresh snapshot wins again" true
    (Mvcc.fcw_ok o ~snap:(Mvcc.begin_snapshot mv))

let test_snapshot_read_stats () =
  Heap.reset ();
  let mv = Mvcc.create ~max_versions:2 () in
  let o = Heap.alloc ~cls:"V" 1 in
  Heap.set_version_ts o 0;
  let snap = Mvcc.begin_snapshot mv in
  List.iter
    (fun n ->
      let ts = Mvcc.advance mv in
      Mvcc.install mv o ~ts;
      Heap.set o 0 (Heap.Vint n))
    [ 1; 2; 3 ];
  (* The snapshot predates every install; with only two chain entries the
     version it needs is gone. *)
  check_bool "pruned snapshot misses" true (Mvcc.read mv o 0 ~snap = None);
  let st = Mvcc.stats mv in
  check_int "installs counted" 3 st.Mvcc.installs;
  check_int "miss counted" 1 st.Mvcc.too_old;
  (* A snapshot between the surviving versions is served from the chain. *)
  check_bool "past version served" true
    (Mvcc.read mv o 0 ~snap:2 = Some (Heap.Vint 2));
  check_int "snapshot read counted" 1 st.Mvcc.snapshot_reads

(* ------------------------------------------------------------------ *)
(* Read-only abort freedom (the read-heavy stress scenario)            *)
(* ------------------------------------------------------------------ *)

(* The acceptance bar from the issue: under mvcc the read-only scanners
   never abort - every scan is served by its snapshot - while the
   single-version backends pay real aborts on the same schedule. *)
let test_read_heavy_mvcc_abort_free () =
  let r =
    Stm_harness.Stress.run ~versioning:Config.Mvcc ~cm:Stm_cm.Policy.Suicide
      Stm_harness.Stress.Read_heavy
  in
  check_bool "completed" true r.Stm_harness.Stress.completed;
  check_int "zero aborts under mvcc" 0 r.Stm_harness.Stress.stats.Stats.aborts

let test_read_heavy_eager_aborts () =
  let r =
    Stm_harness.Stress.run ~versioning:Config.Eager ~cm:Stm_cm.Policy.Timestamp
      Stm_harness.Stress.Read_heavy
  in
  check_bool "completed" true r.Stm_harness.Stress.completed;
  check_bool "single-version backend pays aborts" true
    (r.Stm_harness.Stress.stats.Stats.aborts > 0)

(* ------------------------------------------------------------------ *)
(* Write skew separates the two mvcc isolation levels                  *)
(* ------------------------------------------------------------------ *)

(* Each transaction reads the other side's box and writes its own:
   admitted under snapshot isolation (disjoint write sets pass
   first-committer-wins), prevented under mvcc-serializable by
   commit-time read revalidation. The two slot boxes are distinct heap
   objects - version chains and first-committer-wins are per object, so
   skewing two fields of one object is structurally impossible (the
   whole-object install makes the second committer lose). *)
let write_skew_prog =
  {
    Prog.ncells = 1;
    nslots = 2;
    threads =
      [
        [ Prog.Atomic [ Prog.Box_read 1; Prog.Box_write 0 ] ];
        [ Prog.Atomic [ Prog.Box_read 0; Prog.Box_write 1 ] ];
      ];
  }

let mvcc_cfg isolation = Config.with_isolation isolation Config.mvcc_weak

let test_write_skew_snapshot_only () =
  (* Hunt for a schedule where the skew manifests, then certify the
     history at both levels: SI-clean, serializability broken by an
     rw-cycle. *)
  let witness = ref None in
  let seed = ref 0 in
  while !witness = None && !seed < 64 do
    incr seed;
    (match
       Exec.run ~policy:(Sched.Random !seed) ~cfg:(mvcc_cfg Config.Snapshot)
         write_skew_prog
     with
    | History.Serializable, Some h -> (
        (* clean at the configured (Snapshot) level; now ask the
           two-level classifier whether this particular schedule
           actually skewed *)
        match History.certify write_skew_prog h with
        | History.Cert_snapshot_only (History.Cycle _) -> witness := Some h
        | History.Cert_serializable -> ()
        | c ->
            Alcotest.failf "unexpected certification %s"
              (History.certification_to_string c))
    | v, _ ->
        Alcotest.failf "SI-level verdict not clean: %s"
          (Stm_obs.Json.to_string (History.verdict_to_json v)))
  done;
  check_bool "found a skewed schedule within 64 seeds" true (!witness <> None)

let test_write_skew_prevented_serializable () =
  (* The same program explored exhaustively under mvcc-serializable:
     revalidation must abort one of the two, so no anomaly exists. *)
  let v, e =
    Exec.explore ~preemption_bound:3 ~max_runs:2000
      ~cfg:(mvcc_cfg Config.Serializable) write_skew_prog
  in
  (match v with
  | None -> ()
  | Some v ->
      Alcotest.failf "mvcc-serializable admitted: %s"
        (Stm_obs.Json.to_string (History.verdict_to_json v)));
  check_bool "explored more than one schedule" true
    (e.Stm_litmus.Explorer.runs > 1)

let suite =
  [
    ( "mvcc-heap",
      [
        Alcotest.test_case "read_at walks the chain" `Quick test_read_at;
        Alcotest.test_case "prune vs oldest snapshot" `Quick test_prune_oldest;
        Alcotest.test_case "prune hard bound" `Quick test_prune_bound;
      ] );
    ( "mvcc-clock",
      [
        Alcotest.test_case "clock and snapshot registry" `Quick
          test_clock_and_snapshots;
        Alcotest.test_case "first-committer-wins" `Quick test_fcw;
        Alcotest.test_case "snapshot reads and misses" `Quick
          test_snapshot_read_stats;
      ] );
    ( "mvcc-ro",
      [
        Alcotest.test_case "read-heavy abort-free" `Quick
          test_read_heavy_mvcc_abort_free;
        Alcotest.test_case "read-heavy eager pays aborts" `Quick
          test_read_heavy_eager_aborts;
      ] );
    ( "mvcc-isolation",
      [
        Alcotest.test_case "write skew is snapshot-only" `Quick
          test_write_skew_snapshot_only;
        Alcotest.test_case "serializable prevents write skew" `Quick
          test_write_skew_prevented_serializable;
      ] );
  ]
