let () =
  Alcotest.run "stm-strong"
    (Test_runtime.suite @ Test_core.suite @ Test_litmus.suite @ Test_jtlang.suite @ Test_interp.suite @ Test_analysis.suite @ Test_jit.suite @ Test_workloads.suite @ Test_oracles.suite @ Test_serializability.suite @ Test_check.suite @ Test_mvcc.suite @ Test_more.suite @ Test_obs.suite @ Test_cm.suite @ Test_diag.suite @ Test_store.suite)
