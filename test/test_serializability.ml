(* Serializability property, as a budgeted differential fuzz sweep.

   The old hand-rolled QCheck property (enumerate serial permutations,
   compare final heaps) is superseded by the stm_check stack: generated
   programs run on the real STM under every configuration combo, a
   trace-based oracle checks conflict-graph acyclicity plus a
   sequential differential replay, and failures shrink to a minimal
   replayable counterexample whose repro JSON is printed so it can be
   fed straight to [stm_run --repro].

   The sweep doubles as the oracle's positive control: the hunt
   campaigns on weak configurations MUST find (and minimize) the
   paper's anomalies - lost updates for transactions racing plain
   accesses, the figure-1 privatization race for handoff programs. *)

open Stm_check

let budget =
  { Fuzz.default_budget with Fuzz.programs = 14; seeds = 2; base_seed = 1 }

let describe r =
  let c = r.Fuzz.campaign in
  Printf.sprintf "%s: %d runs, %d anomalies, %d inconclusive%s"
    (Fuzz.campaign_name c) r.Fuzz.runs r.Fuzz.anomalies r.Fuzz.inconclusive
    (match r.Fuzz.repro with
    | None -> ""
    | Some rp ->
        Printf.sprintf "\n  minimized counterexample (feed to stm_run --repro):\n%s"
          (Repro.to_string rp))

let fail_results results =
  let failed = List.filter (fun r -> not r.Fuzz.ok) results in
  Alcotest.failf "%d campaign(s) failed:\n%s" (List.length failed)
    (String.concat "\n" (List.map describe failed))

let run_plan plan () =
  let results = Fuzz.sweep ~plan budget in
  if not (Fuzz.passed results) then fail_results results

(* Split the plan so a failure names the offending slice directly. *)
let clean_slice pred name =
  Alcotest.test_case name `Quick
    (run_plan (List.filter pred Fuzz.clean_campaigns))

let is_atomicity a (c : Fuzz.campaign) = c.Fuzz.combo.Combo.atomicity = a

(* The timestamp-validation sweep: the same clean expectations over
   {!Combo.timestamp_grid}, on a reduced budget (24 combos). A fuller
   pass runs in CI via [stm_bench --fuzz --validation timestamp]. *)
let ts_budget =
  { Fuzz.default_budget with Fuzz.programs = 8; seeds = 1; base_seed = 1 }

let ts_clean_slice pred name =
  Alcotest.test_case name `Quick (fun () ->
      let plan = List.filter pred Fuzz.timestamp_campaigns in
      let results = Fuzz.sweep ~plan ts_budget in
      if not (Fuzz.passed results) then fail_results results)

(* Cross-validation-scheme differential: the same programs and schedule
   seeds on the incremental backend grid plus eager-ts/lazy-ts; a
   timestamp member certifying anomalous where the incremental members
   stay clean is a divergence and fails with a replayable repro. *)
let test_timestamp_differential () =
  let budget =
    { Fuzz.default_budget with Fuzz.programs = 6; seeds = 2; base_seed = 1 }
  in
  let r = Fuzz.run_differential ~combos:Fuzz.timestamp_backend_grid budget in
  Alcotest.(check int)
    "grid size" 6
    (List.length r.Fuzz.diff_combos);
  if not (Fuzz.differential_passed r) then
    Alcotest.failf "validation-scheme divergence: %s"
      (Stm_obs.Json.to_string (Fuzz.differential_to_json r))

(* Regression: the timestamp fast path must not run under quiescence. A
   committer in commit_epoch_wait holds its records Exclusive but bumps
   the commit clock only at release, so a doomed transaction whose O(1)
   revalidation saw an unchanged clock was marked consistent while its
   stale eager in-place state was still live across the privatizer's
   handoff. This is the minimized sweep counterexample (prog_seed 9,
   sched_seed 73720) replayed under every quiesce-grid CM policy. *)
let test_quiesce_handoff_regression () =
  let prog =
    {
      Prog.ncells = 2;
      nslots = 2;
      threads =
        [
          [ Prog.Publish 0 ];
          [ Prog.Privatize 0 ];
          [ Prog.Atomic [ Prog.Box_write 0 ] ];
        ];
    }
  in
  List.iter
    (fun cm ->
      let combo =
        {
          Combo.versioning = Stm_core.Config.Eager;
          isolation = Stm_core.Config.Serializable;
          atomicity = Combo.Quiesce;
          cm;
          validation = Stm_core.Config.Timestamp;
        }
      in
      let v =
        Repro.run_driver ~combo ~driver:(Repro.Random_sched 73720)
          ~max_steps:Fuzz.default_budget.Fuzz.max_steps prog
      in
      match v with
      | History.Serializable -> ()
      | v ->
          Alcotest.failf "%s: %s" (Combo.name combo)
            (Stm_obs.Json.to_string (History.verdict_to_json v)))
    [ Stm_cm.Policy.Suicide; Stm_cm.Policy.Wound_wait; Stm_cm.Policy.Timestamp ]

let test_hunts_find_anomalies () =
  let results = Fuzz.sweep ~plan:Fuzz.hunt_campaigns budget in
  if not (Fuzz.passed results) then fail_results results;
  (* Every hunt must also have produced a minimized repro that replays
     to an anomalous verdict. *)
  List.iter
    (fun r ->
      match r.Fuzz.repro with
      | None -> Alcotest.failf "%s: no repro" (Fuzz.campaign_name r.Fuzz.campaign)
      | Some rp ->
          let v = Repro.replay rp in
          if not (Repro.matches rp v) then
            Alcotest.failf "%s: repro does not replay:\n%s"
              (Fuzz.campaign_name r.Fuzz.campaign)
              (Repro.to_string rp))
    results

let suite =
  [
    ( "serializability",
      [
        clean_slice (is_atomicity Combo.Weak) "fuzz clean: weak / txn-only";
        clean_slice (is_atomicity Combo.Strong) "fuzz clean: strong / all profiles";
        clean_slice (is_atomicity Combo.Strong_dea) "fuzz clean: dea / all profiles";
        clean_slice (is_atomicity Combo.Quiesce) "fuzz clean: quiesce / txn+handoff";
        Alcotest.test_case "hunts find+minimize the paper's anomalies" `Quick
          test_hunts_find_anomalies;
        ts_clean_slice (is_atomicity Combo.Weak) "fuzz clean: weak / timestamp";
        ts_clean_slice (is_atomicity Combo.Strong)
          "fuzz clean: strong / timestamp";
        ts_clean_slice (is_atomicity Combo.Strong_dea)
          "fuzz clean: dea / timestamp";
        ts_clean_slice (is_atomicity Combo.Quiesce)
          "fuzz clean: quiesce / timestamp";
        Alcotest.test_case "regression: quiesce handoff disables fast path"
          `Quick test_quiesce_handoff_regression;
        Alcotest.test_case "differential: timestamp vs incremental" `Quick
          test_timestamp_differential;
      ] );
  ]
