(* Serializability property, as a budgeted differential fuzz sweep.

   The old hand-rolled QCheck property (enumerate serial permutations,
   compare final heaps) is superseded by the stm_check stack: generated
   programs run on the real STM under every configuration combo, a
   trace-based oracle checks conflict-graph acyclicity plus a
   sequential differential replay, and failures shrink to a minimal
   replayable counterexample whose repro JSON is printed so it can be
   fed straight to [stm_run --repro].

   The sweep doubles as the oracle's positive control: the hunt
   campaigns on weak configurations MUST find (and minimize) the
   paper's anomalies - lost updates for transactions racing plain
   accesses, the figure-1 privatization race for handoff programs. *)

open Stm_check

let budget =
  { Fuzz.default_budget with Fuzz.programs = 14; seeds = 2; base_seed = 1 }

let describe r =
  let c = r.Fuzz.campaign in
  Printf.sprintf "%s: %d runs, %d anomalies, %d inconclusive%s"
    (Fuzz.campaign_name c) r.Fuzz.runs r.Fuzz.anomalies r.Fuzz.inconclusive
    (match r.Fuzz.repro with
    | None -> ""
    | Some rp ->
        Printf.sprintf "\n  minimized counterexample (feed to stm_run --repro):\n%s"
          (Repro.to_string rp))

let fail_results results =
  let failed = List.filter (fun r -> not r.Fuzz.ok) results in
  Alcotest.failf "%d campaign(s) failed:\n%s" (List.length failed)
    (String.concat "\n" (List.map describe failed))

let run_plan plan () =
  let results = Fuzz.sweep ~plan budget in
  if not (Fuzz.passed results) then fail_results results

(* Split the plan so a failure names the offending slice directly. *)
let clean_slice pred name =
  Alcotest.test_case name `Quick
    (run_plan (List.filter pred Fuzz.clean_campaigns))

let is_atomicity a (c : Fuzz.campaign) = c.Fuzz.combo.Combo.atomicity = a

let test_hunts_find_anomalies () =
  let results = Fuzz.sweep ~plan:Fuzz.hunt_campaigns budget in
  if not (Fuzz.passed results) then fail_results results;
  (* Every hunt must also have produced a minimized repro that replays
     to an anomalous verdict. *)
  List.iter
    (fun r ->
      match r.Fuzz.repro with
      | None -> Alcotest.failf "%s: no repro" (Fuzz.campaign_name r.Fuzz.campaign)
      | Some rp ->
          let v = Repro.replay rp in
          if not (Repro.matches rp v) then
            Alcotest.failf "%s: repro does not replay:\n%s"
              (Fuzz.campaign_name r.Fuzz.campaign)
              (Repro.to_string rp))
    results

let suite =
  [
    ( "serializability",
      [
        clean_slice (is_atomicity Combo.Weak) "fuzz clean: weak / txn-only";
        clean_slice (is_atomicity Combo.Strong) "fuzz clean: strong / all profiles";
        clean_slice (is_atomicity Combo.Strong_dea) "fuzz clean: dea / all profiles";
        clean_slice (is_atomicity Combo.Quiesce) "fuzz clean: quiesce / txn+handoff";
        Alcotest.test_case "hunts find+minimize the paper's anomalies" `Quick
          test_hunts_find_anomalies;
      ] );
  ]
