open Stm_core

(* Recorder entries -> JSONL and Chrome trace_event JSON. Both formats
   are written from the same [Recorder.entry] stream; the Chrome export
   additionally turns commit/abort events into duration slices spanning
   the transaction on the emitting thread's cost clock. *)

let no_resolve : int -> string option = fun _ -> None

let site_json resolve site =
  match resolve site with Some s -> Json.Str s | None -> Json.Int site

(* Event kind name + payload fields, shared by both formats. *)
let event_fields resolve (ev : Trace.event) =
  match ev with
  | Trace.Txn_begin { txid; tid } ->
      ("txn_begin", [ ("txid", Json.Int txid); ("tid", Json.Int tid) ])
  | Trace.Txn_commit { txid; tid; reads; writes; latency } ->
      ( "txn_commit",
        [
          ("txid", Json.Int txid);
          ("tid", Json.Int tid);
          ("reads", Json.Int reads);
          ("writes", Json.Int writes);
          ("latency", Json.Int latency);
        ] )
  | Trace.Txn_abort { txid; tid; wounded; cause; latency; by; by_tid; oid } ->
      ( "txn_abort",
        [
          ("txid", Json.Int txid);
          ("tid", Json.Int tid);
          ("wounded", Json.Bool wounded);
          ("cause", Json.Str (Trace.string_of_cause cause));
          ("latency", Json.Int latency);
          ("by", Json.Int by);
          ("by_tid", Json.Int by_tid);
          ("oid", Json.Int oid);
        ] )
  | Trace.Txn_wound { victim; by } ->
      ("txn_wound", [ ("victim", Json.Int victim); ("by", Json.Int by) ])
  | Trace.Conflict { tid; oid; cls; writer; site } ->
      ( "conflict",
        [
          ("tid", Json.Int tid);
          ("oid", Json.Int oid);
          ("class", Json.Str cls);
          ("writer", Json.Bool writer);
          ("site", site_json resolve site);
        ] )
  | Trace.Publish { oid; cls } ->
      ("publish", [ ("oid", Json.Int oid); ("class", Json.Str cls) ])
  | Trace.Quiesce_wait { txid } -> ("quiesce_wait", [ ("txid", Json.Int txid) ])
  | Trace.Barrier { tid; site; op; path } ->
      ( "barrier",
        [
          ("tid", Json.Int tid);
          ("site", site_json resolve site);
          ("op", Json.Str (Trace.string_of_op op));
          ("path", Json.Str (Trace.string_of_path path));
        ] )
  | Trace.Backoff { tid; attempt; delay } ->
      ( "backoff",
        [
          ("tid", Json.Int tid);
          ("attempt", Json.Int attempt);
          ("delay", Json.Int delay);
        ] )
  | Trace.Validation { txid; tid; ok } ->
      ( "validation",
        [
          ("txid", Json.Int txid);
          ("tid", Json.Int tid);
          ("ok", Json.Bool ok);
        ] )
  | Trace.Cm_decision { tid; txid; policy; decision; owner; delay } ->
      ( "cm_decision",
        [
          ("tid", Json.Int tid);
          ("txid", Json.Int txid);
          ("policy", Json.Str policy);
          ("decision", Json.Str decision);
          ("owner", Json.Int owner);
          ("delay", Json.Int delay);
        ] )
  | Trace.Access { tid; txid; oid; fld; value; write } ->
      ( "access",
        [
          ("tid", Json.Int tid);
          ("txid", Json.Int txid);
          ("oid", Json.Int oid);
          ("fld", Json.Int fld);
          ("value", Json.Str (Stm_runtime.Heap.show_value value));
          ("write", Json.Bool write);
        ] )
  | Trace.Txn_serialized { txid; tid } ->
      ("txn_serialized", [ ("txid", Json.Int txid); ("tid", Json.Int tid) ])

let entry_json resolve (e : Recorder.entry) =
  let name, fields = event_fields resolve e.Recorder.ev in
  (* the envelope already carries the emitting tid *)
  let fields = List.filter (fun (k, _) -> k <> "tid") fields in
  Json.Obj
    ([
       ("ev", Json.Str name);
       ("ts", Json.Int e.Recorder.ts);
       ("step", Json.Int e.Recorder.step);
       ("tid", Json.Int e.Recorder.tid);
     ]
    @ fields)

let to_jsonl ?(resolve = no_resolve) buf entries =
  List.iter
    (fun e ->
      Json.to_buffer buf (entry_json resolve e);
      Buffer.add_char buf '\n')
    entries

let write_jsonl ?resolve oc entries =
  let buf = Buffer.create 4096 in
  to_jsonl ?resolve buf entries;
  Buffer.output_buffer oc buf

(* Chrome trace_event format (chrome://tracing / Perfetto). Cost-clock
   cycles are mapped 1:1 to microseconds. Commits and aborts become
   "X" (complete) slices covering the transaction's [begin, end] span on
   the emitting thread's track; everything else becomes a thread-scoped
   "i" instant. *)
let chrome_events ?(resolve = no_resolve) entries =
  let tids = Hashtbl.create 16 in
  List.iter
    (fun (e : Recorder.entry) ->
      if not (Hashtbl.mem tids e.Recorder.tid) then
        Hashtbl.replace tids e.Recorder.tid ())
    entries;
  let meta =
    Hashtbl.fold
      (fun tid () acc ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if tid < 0 then "(main)"
                       else Printf.sprintf "thread %d" tid) );
                ] );
          ]
        :: acc)
      tids []
    |> List.sort compare
  in
  let body =
    List.map
      (fun (e : Recorder.entry) ->
        let name, fields = event_fields resolve e.Recorder.ev in
        let args = Json.Obj (("step", Json.Int e.Recorder.step) :: fields) in
        match e.Recorder.ev with
        | Trace.Txn_commit { latency; _ } | Trace.Txn_abort { latency; _ } ->
            let dur = max 1 latency in
            Json.Obj
              [
                ("name", Json.Str name);
                ("cat", Json.Str "txn");
                ("ph", Json.Str "X");
                ("ts", Json.Int (max 0 (e.Recorder.ts - dur)));
                ("dur", Json.Int dur);
                ("pid", Json.Int 1);
                ("tid", Json.Int e.Recorder.tid);
                ("args", args);
              ]
        | _ ->
            let cat =
              match Trace.event_level e.Recorder.ev with
              | Trace.Debug -> "access"
              | Trace.Info -> "stm"
            in
            Json.Obj
              [
                ("name", Json.Str name);
                ("cat", Json.Str cat);
                ("ph", Json.Str "i");
                ("ts", Json.Int e.Recorder.ts);
                ("pid", Json.Int 1);
                ("tid", Json.Int e.Recorder.tid);
                ("s", Json.Str "t");
                ("args", args);
              ])
      entries
  in
  meta @ body

let to_chrome ?resolve entries =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events ?resolve entries));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.Str "stm-cost-cycles");
            ("source", Json.Str "stm_obs");
          ] );
    ]

let write_chrome ?resolve oc entries =
  let buf = Buffer.create 8192 in
  Json.to_buffer buf (to_chrome ?resolve entries);
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf
