(** Event-derived run metrics with snapshot/diff.

    A {!t} consumes {!Stm_core.Trace} events (an [Info]-level sink
    suffices) and accumulates transaction lifecycle counters, per-cause
    abort counts, and commit/abort latency histograms on the simulated
    cost clock. {!snapshot} and {!diff} scope the metrics to any window
    of a run — e.g. per benchmark iteration. *)

open Stm_core

type t

val create : unit -> t

val handle : t -> Trace.event -> unit
(** The sink function; compose with other consumers or use {!install}. *)

val install : ?level:Trace.level -> t -> unit
(** Install as the global trace sink. Default level [Info] — metrics
    need no per-access events, so the [Debug] payloads stay unforced.
    This deliberately differs from {!Recorder.install}'s [Debug]
    default: installing a metrics sink keeps the access fast paths
    cheap, installing a recorder captures everything. A sink that feeds
    both (as [stm_run --diag] does) must be installed at [Debug] and
    filter Info events to the metrics side itself. *)

val snapshot : t -> t
(** Immutable copy of the current totals. *)

val diff : t -> t -> t
(** [diff later earlier]: the activity between two snapshots. *)

val begins : t -> int
val commits : t -> int
val aborts : t -> int
val abort_cause_count : t -> Trace.abort_cause -> int

val fairness : t -> Stm_cm.Fairness.t
(** Per-thread commit/abort accounting derived from the [tid] fields of
    the lifecycle events (Jain index, consecutive-abort streaks, wasted
    cycles). *)

(** Every abort cause, in serialization order. *)
val all_causes : Trace.abort_cause list
val commit_latency : t -> Hist.t
val abort_latency : t -> Hist.t

val to_assoc : t -> (string * int) list

val host_alloc_words : t -> float
(** Host-process (OCaml GC) words allocated over this object's window:
    creation to now for a live object, creation to {!snapshot} for a
    snapshot, between the two snapshots for a {!diff}. A real-resource
    counterpart to the simulated counters — the perf harness reports the
    same quantity per benchmark op. *)

val to_json : ?stats:Stats.t -> t -> Json.t
(** Full metrics object: counters, abort causes, latency histograms, a
    ["fairness"] block (Jain index, worst consecutive-abort streak,
    per-thread counters), and ["host_alloc_words"] ({!host_alloc_words});
    [stats] additionally embeds the run's global {!Stm_core.Stats}. *)

val pp : Format.formatter -> t -> unit
