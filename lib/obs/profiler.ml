open Stm_core

(* Per-site barrier profile, accumulated from [Trace.Barrier] /
   [Trace.Conflict] events. Emissions in the core sit next to the global
   [Stats] increments, so every column's sum over all sites (plus the
   [-1] "unknown" site for accesses made directly through the Stm API)
   equals the corresponding global counter - [check_against_stats]
   verifies exactly that and the tests run it. *)

type counters = {
  mutable reads : int;  (* non-txn read barriers fired (incl. ordering) *)
  mutable writes : int;  (* non-txn write barriers fired *)
  mutable txn_reads : int;
  mutable txn_writes : int;
  mutable private_hits : int;  (* DEA private fast-path hits *)
  mutable elided : int;  (* accesses at compiler-removed barrier sites *)
  mutable conflicts : int;  (* conflict-manager invocations *)
}

let zero () =
  {
    reads = 0;
    writes = 0;
    txn_reads = 0;
    txn_writes = 0;
    private_hits = 0;
    elided = 0;
    conflicts = 0;
  }

let activity c =
  c.reads + c.writes + c.txn_reads + c.txn_writes + c.private_hits + c.elided
  + c.conflicts

type t = {
  sites : (int, counters) Hashtbl.t;
  threads : (int, counters) Hashtbl.t;
  total : counters;
}

let create () =
  { sites = Hashtbl.create 64; threads = Hashtbl.create 16; total = zero () }

let slot tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = zero () in
      Hashtbl.replace tbl key c;
      c

let bump t ~site ~tid f =
  f (slot t.sites site);
  f (slot t.threads tid);
  f t.total

let handle t (ev : Trace.event) =
  match ev with
  | Trace.Barrier { tid; site; op; path } ->
      let f =
        match (path, op) with
        | Trace.Path_private, _ -> fun c -> c.private_hits <- c.private_hits + 1
        | Trace.Path_elided, _ -> fun c -> c.elided <- c.elided + 1
        | Trace.Path_fired, (Trace.Op_read | Trace.Op_read_ordering) ->
            fun c -> c.reads <- c.reads + 1
        | Trace.Path_fired, Trace.Op_write -> fun c -> c.writes <- c.writes + 1
        | Trace.Path_fired, Trace.Op_txn_read ->
            fun c -> c.txn_reads <- c.txn_reads + 1
        | Trace.Path_fired, Trace.Op_txn_write ->
            fun c -> c.txn_writes <- c.txn_writes + 1
      in
      bump t ~site ~tid f
  | Trace.Conflict { tid; site; _ } ->
      bump t ~site ~tid (fun c -> c.conflicts <- c.conflicts + 1)
  | Trace.Txn_begin _ | Trace.Txn_commit _ | Trace.Txn_abort _
  | Trace.Txn_wound _ | Trace.Publish _ | Trace.Quiesce_wait _
  | Trace.Backoff _ | Trace.Validation _ | Trace.Cm_decision _
  | Trace.Access _ | Trace.Txn_serialized _ ->
      ()

let install ?(level = Trace.Debug) t = Trace.set_sink ~level (Some (handle t))

let sites t =
  Hashtbl.fold (fun site c acc -> (site, c) :: acc) t.sites []
  |> List.sort (fun (sa, a) (sb, b) ->
         match compare (activity b) (activity a) with
         | 0 -> compare sa sb
         | n -> n)

let threads t =
  Hashtbl.fold (fun tid c acc -> (tid, c) :: acc) t.threads []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total t = t.total

(* Column sums vs the run's global Stats. Returns mismatching
   (column, profiled, stats) triples; [] means the profile accounts for
   every counted barrier action. *)
let check_against_stats t (stats : Stats.t) =
  let checks =
    [
      ("reads", t.total.reads, stats.Stats.barrier_reads);
      ("writes", t.total.writes, stats.Stats.barrier_writes);
      ("txn_reads", t.total.txn_reads, stats.Stats.txn_reads);
      ("txn_writes", t.total.txn_writes, stats.Stats.txn_writes);
      ("private_hits", t.total.private_hits, stats.Stats.barrier_private_hits);
      ("conflicts", t.total.conflicts, stats.Stats.conflicts);
    ]
  in
  List.filter (fun (_, a, b) -> a <> b) checks

let default_resolve site = if site < 0 then Some "(api)" else None

let site_label resolve site =
  match resolve site with
  | Some s -> s
  | None -> ( match default_resolve site with
    | Some s -> s
    | None -> Printf.sprintf "site %d" site)

let pp ?(resolve = fun _ -> None) ?(limit = max_int) ppf t =
  let rows = sites t in
  Fmt.pf ppf "%-36s %10s %10s %10s %10s %8s %8s %8s@." "site" "reads"
    "writes" "txn-rd" "txn-wr" "private" "elided" "confl";
  List.iteri
    (fun i (site, c) ->
      if i < limit then
        Fmt.pf ppf "%-36s %10d %10d %10d %10d %8d %8d %8d@."
          (site_label resolve site) c.reads c.writes c.txn_reads c.txn_writes
          c.private_hits c.elided c.conflicts)
    rows;
  let tot = t.total in
  Fmt.pf ppf "%-36s %10d %10d %10d %10d %8d %8d %8d@." "TOTAL" tot.reads
    tot.writes tot.txn_reads tot.txn_writes tot.private_hits tot.elided
    tot.conflicts

let counters_json c =
  Json.Obj
    [
      ("reads", Json.Int c.reads);
      ("writes", Json.Int c.writes);
      ("txn_reads", Json.Int c.txn_reads);
      ("txn_writes", Json.Int c.txn_writes);
      ("private_hits", Json.Int c.private_hits);
      ("elided", Json.Int c.elided);
      ("conflicts", Json.Int c.conflicts);
    ]

let to_json ?(resolve = fun _ -> None) t =
  Json.Obj
    [
      ( "sites",
        Json.List
          (List.map
             (fun (site, c) ->
               Json.Obj
                 [
                   ("site", Json.Int site);
                   ("loc", Json.Str (site_label resolve site));
                   ("counters", counters_json c);
                 ])
             (sites t)) );
      ( "threads",
        Json.List
          (List.map
             (fun (tid, c) ->
               Json.Obj [ ("tid", Json.Int tid); ("counters", counters_json c) ])
             (threads t)) );
      ("total", counters_json t.total);
    ]
