(** Trace exporters: JSONL and Chrome [trace_event] JSON.

    Both consume {!Recorder.entry} lists. The Chrome export loads in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: threads
    appear as tracks, committed/aborted transactions as duration slices
    spanning begin..end on the simulated cost clock (1 cycle = 1 µs),
    and the remaining events as thread-scoped instants.

    [resolve] maps access-site ids to source labels such as
    ["counter.jt:12"] (e.g. {!Stm_ir.Ir.site_loc}); unresolved sites are
    emitted as raw integers. *)

val entry_json : (int -> string option) -> Recorder.entry -> Json.t
(** One entry as a flat JSON object ([ev], [ts], [step], [tid], plus
    event-specific fields). *)

val to_jsonl :
  ?resolve:(int -> string option) -> Buffer.t -> Recorder.entry list -> unit

val write_jsonl :
  ?resolve:(int -> string option) -> out_channel -> Recorder.entry list -> unit

val chrome_events :
  ?resolve:(int -> string option) -> Recorder.entry list -> Json.t list
(** The bare [trace_event] objects (thread-name metadata followed by
    slices/instants), for callers that splice extra annotation events
    into the stream — {!Stm_diag} appends contention-heatmap counters
    and abort-causality flow arrows before wrapping the document. *)

val to_chrome : ?resolve:(int -> string option) -> Recorder.entry list -> Json.t
(** The full [{"traceEvents": [...]}] document. *)

val write_chrome :
  ?resolve:(int -> string option) -> out_channel -> Recorder.entry list -> unit
