(** Power-of-two histogram for cycle latencies: fixed 48 buckets, bucket
    [i] holds samples in [(2^(i-2), 2^(i-1)]], allocation-free [add]. *)

type t

val create : unit -> t
val add : t -> int -> unit

val count : t -> int
val sum : t -> int
val mean : t -> float
val min_value : t -> int
val max_value : t -> int

val quantile : t -> float -> int
(** Approximate quantile: inclusive upper bound of the bucket holding the
    q-th sample, clamped into [[min_value t, max_value t]]. An empty
    histogram reads [0]; [q >= 1.0] reads exactly [max_value t] (even
    when the maximum exceeds the top bucket's nominal bound). *)

val copy : t -> t

val sub : t -> t -> t
(** [sub later earlier]: histogram of the samples recorded between the
    two snapshots (bucket-wise difference). *)

val clear : t -> unit

val bucket_le : int -> int
(** Inclusive upper bound of bucket [i]. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
