(* Bounded ring buffer used as the trace sink's backing store: pushes are
   O(1) with no allocation beyond the stored element, and a run that emits
   more events than the capacity keeps the most recent ones (counting what
   it dropped) instead of growing without bound. *)

type 'a t = {
  data : 'a option array;
  cap : int;
  mutable start : int;  (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { data = Array.make capacity None; cap = capacity; start = 0; len = 0; dropped = 0 }

let push t x =
  if t.len < t.cap then begin
    t.data.((t.start + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* overwrite the oldest *)
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped

let iter f t =
  for i = 0 to t.len - 1 do
    match t.data.((t.start + i) mod t.cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.data 0 t.cap None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
