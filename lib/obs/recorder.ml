open Stm_runtime
open Stm_core

(* Structured event record: the raw Trace event stamped with the emitting
   thread, its cost clock, and the global scheduler step. The step is the
   only totally ordered timestamp - cost clocks are per-thread. *)
type entry = { ts : int; step : int; tid : int; ev : Trace.event }

type t = { ring : entry Ring.t }

let create ?(capacity = 1 lsl 16) () = { ring = Ring.create ~capacity }

let record t ev =
  let running = Sched.running () in
  Ring.push t.ring
    {
      ts = (if running then Sched.time () else 0);
      step = Sched.steps ();
      tid = (if running then Sched.self () else -1);
      ev;
    }

let entries t = Ring.to_list t.ring
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let clear t = Ring.clear t.ring

let install ?(level = Trace.Debug) t = Trace.set_sink ~level (Some (record t))
let uninstall () = Trace.set_sink None
