(* Minimal JSON emitter and parser: the exporters need to produce
   machine-readable output, and the fuzzer's repro replay needs to read
   it back, without pulling a JSON dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pp ppf j = Fmt.string ppf (to_string j)

let of_assoc kvs = Obj (List.map (fun (k, v) -> (k, Int v)) kvs)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the grammar the emitter above
   produces (full JSON; \uXXXX escapes decode to UTF-8, with
   surrogate pairs combined into their supplementary-plane code
   point).                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              let u = hex4 () in
              let cp =
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: the paired low surrogate must
                     follow, and the two code units encode one
                     supplementary-plane (non-BMP) code point *)
                  if
                    not
                      (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                  then fail "unpaired high surrogate in \\u escape";
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if not (lo >= 0xDC00 && lo <= 0xDFFF) then
                    fail "unpaired high surrogate in \\u escape";
                  0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail "unpaired low surrogate in \\u escape"
                else u
              in
              Buffer.add_utf_8_uchar buf (Uchar.of_int cp);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error "trailing content after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors for parsed documents                                      *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
