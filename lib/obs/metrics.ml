open Stm_core

(* Event-derived run metrics: lifecycle counters, abort causes, and
   latency histograms. Unlike [Stats] (which the core increments
   directly), this is fed purely from the trace stream, so a snapshot
   can be taken around any window of a run and diffed. *)

type t = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable wounds : int;
  mutable conflicts : int;
  mutable publishes : int;
  mutable quiesce_waits : int;
  mutable backoffs : int;
  mutable validations : int;
  mutable validation_failures : int;
  mutable cm_decisions : int;
  abort_causes : int array;  (* indexed by cause_index *)
  commit_latency : Hist.t;
  abort_latency : Hist.t;
  fairness : Stm_cm.Fairness.t;
  alloc_base : float;  (* Gc.allocated_bytes at creation *)
  mutable alloc_frozen : float option;  (* words, fixed by snapshot *)
}

let cause_index = function
  | Trace.Cause_conflict -> 0
  | Trace.Cause_validation -> 1
  | Trace.Cause_stale_lock -> 2
  | Trace.Cause_wounded -> 3
  | Trace.Cause_retry -> 4
  | Trace.Cause_exn -> 5
  | Trace.Cause_snapshot -> 6

let ncauses = 7

let all_causes =
  [
    Trace.Cause_conflict;
    Trace.Cause_validation;
    Trace.Cause_stale_lock;
    Trace.Cause_wounded;
    Trace.Cause_retry;
    Trace.Cause_exn;
    Trace.Cause_snapshot;
  ]

let create () =
  {
    begins = 0;
    commits = 0;
    aborts = 0;
    wounds = 0;
    conflicts = 0;
    publishes = 0;
    quiesce_waits = 0;
    backoffs = 0;
    validations = 0;
    validation_failures = 0;
    cm_decisions = 0;
    abort_causes = Array.make ncauses 0;
    commit_latency = Hist.create ();
    abort_latency = Hist.create ();
    fairness = Stm_cm.Fairness.create ();
    alloc_base = Gc.allocated_bytes ();
    alloc_frozen = None;
  }

(* Host-process words allocated over this metrics object's window: from
   creation until now (live object) or until the snapshot was taken.
   [Gc.allocated_bytes] reads the young pointer, so allocations still in
   the current minor chunk are included. *)
let alloc_bytes_so_far t =
  match t.alloc_frozen with
  | Some b -> b
  | None -> Gc.allocated_bytes () -. t.alloc_base

let host_alloc_words t =
  alloc_bytes_so_far t /. float_of_int (Sys.word_size / 8)

let handle t (ev : Trace.event) =
  match ev with
  | Trace.Txn_begin _ -> t.begins <- t.begins + 1
  | Trace.Txn_commit { tid; latency; _ } ->
      t.commits <- t.commits + 1;
      Stm_cm.Fairness.on_commit t.fairness ~tid;
      Hist.add t.commit_latency latency
  | Trace.Txn_abort { tid; cause; latency; _ } ->
      t.aborts <- t.aborts + 1;
      Stm_cm.Fairness.on_abort t.fairness ~tid ~wasted:latency;
      let i = cause_index cause in
      t.abort_causes.(i) <- t.abort_causes.(i) + 1;
      Hist.add t.abort_latency latency
  | Trace.Txn_wound _ -> t.wounds <- t.wounds + 1
  | Trace.Conflict _ -> t.conflicts <- t.conflicts + 1
  | Trace.Publish _ -> t.publishes <- t.publishes + 1
  | Trace.Quiesce_wait _ -> t.quiesce_waits <- t.quiesce_waits + 1
  | Trace.Backoff _ -> t.backoffs <- t.backoffs + 1
  | Trace.Validation { ok; _ } ->
      t.validations <- t.validations + 1;
      if not ok then t.validation_failures <- t.validation_failures + 1
  | Trace.Cm_decision _ -> t.cm_decisions <- t.cm_decisions + 1
  | Trace.Barrier _ | Trace.Access _ | Trace.Txn_serialized _ -> ()

let install ?(level = Trace.Info) t = Trace.set_sink ~level (Some (handle t))

let snapshot t =
  {
    t with
    abort_causes = Array.copy t.abort_causes;
    commit_latency = Hist.copy t.commit_latency;
    abort_latency = Hist.copy t.abort_latency;
    fairness = Stm_cm.Fairness.copy t.fairness;
    alloc_frozen = Some (alloc_bytes_so_far t);
  }

let diff later earlier =
  {
    begins = later.begins - earlier.begins;
    commits = later.commits - earlier.commits;
    aborts = later.aborts - earlier.aborts;
    wounds = later.wounds - earlier.wounds;
    conflicts = later.conflicts - earlier.conflicts;
    publishes = later.publishes - earlier.publishes;
    quiesce_waits = later.quiesce_waits - earlier.quiesce_waits;
    backoffs = later.backoffs - earlier.backoffs;
    validations = later.validations - earlier.validations;
    validation_failures = later.validation_failures - earlier.validation_failures;
    cm_decisions = later.cm_decisions - earlier.cm_decisions;
    abort_causes =
      Array.init ncauses (fun i ->
          later.abort_causes.(i) - earlier.abort_causes.(i));
    commit_latency = Hist.sub later.commit_latency earlier.commit_latency;
    abort_latency = Hist.sub later.abort_latency earlier.abort_latency;
    fairness = Stm_cm.Fairness.sub later.fairness earlier.fairness;
    alloc_base = 0.;
    alloc_frozen = Some (alloc_bytes_so_far later -. alloc_bytes_so_far earlier);
  }

let begins t = t.begins
let fairness t = t.fairness
let commits t = t.commits
let aborts t = t.aborts
let abort_cause_count t cause = t.abort_causes.(cause_index cause)
let commit_latency t = t.commit_latency
let abort_latency t = t.abort_latency

let to_assoc t =
  [
    ("begins", t.begins);
    ("commits", t.commits);
    ("aborts", t.aborts);
    ("wounds", t.wounds);
    ("conflicts", t.conflicts);
    ("publishes", t.publishes);
    ("quiesce_waits", t.quiesce_waits);
    ("backoffs", t.backoffs);
    ("validations", t.validations);
    ("validation_failures", t.validation_failures);
    ("cm_decisions", t.cm_decisions);
  ]

let fairness_json t =
  let f = t.fairness in
  let per_thread =
    List.map
      (fun (tid, fields) ->
        (string_of_int tid, Json.of_assoc fields))
      (Stm_cm.Fairness.to_assoc f)
  in
  Json.Obj
    [
      ("jain_index", Json.Float (Stm_cm.Fairness.jain f));
      ("max_consec_aborts", Json.Int (Stm_cm.Fairness.max_consec_aborts f));
      ("per_thread", Json.Obj per_thread);
    ]

let to_json ?stats t =
  let causes =
    Json.Obj
      (List.map
         (fun c ->
           (Trace.string_of_cause c, Json.Int t.abort_causes.(cause_index c)))
         all_causes)
  in
  let base =
    [
      ("counters", Json.of_assoc (to_assoc t));
      ("abort_causes", causes);
      ("commit_latency", Hist.to_json t.commit_latency);
      ("abort_latency", Hist.to_json t.abort_latency);
      ("fairness", fairness_json t);
      ("host_alloc_words", Json.Float (host_alloc_words t));
    ]
  in
  let base =
    match stats with
    | None -> base
    | Some s -> base @ [ ("stats", Json.of_assoc (Stats.to_assoc s)) ]
  in
  Json.Obj base

let pp ppf t =
  Fmt.pf ppf "txns: %d begun, %d committed, %d aborted@." t.begins t.commits
    t.aborts;
  if t.aborts > 0 then
    Fmt.pf ppf "abort causes: %a@."
      Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
      (List.filter_map
         (fun c ->
           let n = t.abort_causes.(cause_index c) in
           if n > 0 then Some (Trace.string_of_cause c, n) else None)
         all_causes);
  Fmt.pf ppf "conflicts=%d wounds=%d backoffs=%d quiesce_waits=%d@."
    t.conflicts t.wounds t.backoffs t.quiesce_waits;
  if t.begins > 0 then
    Fmt.pf ppf "fairness: jain=%.4f max_consec_aborts=%d@."
      (Stm_cm.Fairness.jain t.fairness)
      (Stm_cm.Fairness.max_consec_aborts t.fairness);
  if Hist.count t.commit_latency > 0 then
    Fmt.pf ppf "commit latency (cycles): %a@." Hist.pp t.commit_latency;
  if Hist.count t.abort_latency > 0 then
    Fmt.pf ppf "abort latency (cycles): %a@." Hist.pp t.abort_latency
