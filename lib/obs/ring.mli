(** Bounded ring buffer: O(1) push, keeps the most recent [capacity]
    elements and counts overwritten ones. *)

type 'a t

val create : capacity:int -> 'a t
val push : 'a t -> 'a -> unit

val length : 'a t -> int
val capacity : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten because the buffer was full. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
