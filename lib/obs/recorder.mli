(** Ring-buffered structured event recorder.

    Wraps every {!Stm_core.Trace} event with the emitting thread id, its
    cost clock ({!Stm_runtime.Sched.time}), and the global scheduler step
    — the substrate for the JSONL and Chrome-trace exporters
    ({!Export}). Bounded: a run hotter than the capacity keeps the most
    recent events and counts the dropped prefix. *)

open Stm_core

type entry = {
  ts : int;  (** emitting thread's cost clock (per-thread monotone) *)
  step : int;  (** scheduler decision count (globally monotone) *)
  tid : int;  (** emitting simulated thread *)
  ev : Trace.event;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 events. *)

val record : t -> Trace.event -> unit
(** The sink function; normally installed via {!install}. *)

val install : ?level:Trace.level -> t -> unit
(** Install this recorder as the global trace sink (default [Debug]:
    record everything). Note the deliberate asymmetry with
    {!Metrics.install}, which defaults to [Info]: a recorder exists to
    capture the full stream for offline analysis, while metrics only
    need the per-transaction lifecycle events — so swapping one for the
    other changes which events are delivered. Pass [~level] explicitly
    when composing both into one sink. *)

val uninstall : unit -> unit

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val dropped : t -> int
(** Events lost to ring wrap-around; [0] means [entries] is complete. *)

val clear : t -> unit
