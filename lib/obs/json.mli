(** Minimal JSON values and emitter (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_assoc : (string * int) list -> t
(** Integer-counter association lists (e.g. {!Stm_core.Stats.to_assoc})
    as one JSON object. *)
