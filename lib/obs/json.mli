(** Minimal JSON values and emitter (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_assoc : (string * int) list -> t
(** Integer-counter association lists (e.g. {!Stm_core.Stats.to_assoc})
    as one JSON object. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (the counterexample replay path reads the
    repro files the fuzzer emits). Objects preserve member order;
    duplicate keys are kept as-is (lookups see the first). *)

(** {1 Accessors for parsed documents} *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to the first occurrence of
    [k]; [None] for missing keys and non-objects. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
