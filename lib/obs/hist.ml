(* Power-of-two latency histogram: bucket [i] counts samples [v] with
   [2^(i-1) < v <= 2^i] (bucket 0 counts v <= 0 and v = 1 lands in bucket
   1... see [bucket_of]). Fixed 48 buckets cover the whole int range on a
   64-bit host, so [add] never allocates. *)

let nbuckets = 48

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0; vmin = max_int; vmax = min_int }

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i acc = if acc >= v then i else go (i + 1) (acc * 2) in
    min (nbuckets - 1) (go 1 1)

(* inclusive upper bound of a bucket *)
let bucket_le i = if i = 0 then 0 else 1 lsl (i - 1)

let add t v =
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax

let copy t =
  {
    buckets = Array.copy t.buckets;
    count = t.count;
    sum = t.sum;
    vmin = t.vmin;
    vmax = t.vmax;
  }

(* [sub later earlier]: the histogram of samples recorded after [earlier]
   was snapshotted. min/max cannot be subtracted; keep [later]'s. *)
let sub later earlier =
  let buckets =
    Array.init nbuckets (fun i -> later.buckets.(i) - earlier.buckets.(i))
  in
  {
    buckets;
    count = later.count - earlier.count;
    sum = later.sum - earlier.sum;
    vmin = later.vmin;
    vmax = later.vmax;
  }

let clear t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int

(* Approximate quantile from bucket boundaries: upper bound of the bucket
   containing the q-th sample, clamped into [min_value, max_value] so the
   bucket granularity never produces a value outside the observed range
   (a single sample of 5 lands in the (4, 8] bucket; every quantile of
   that histogram must still read 5, not 8). An empty histogram reads 0,
   and [q >= 1.0] is exactly the maximum — including for samples past the
   top bucket's boundary, where the bucket bound alone would under-report. *)
let quantile t q =
  if t.count = 0 then 0
  else if q >= 1.0 then max_value t
  else begin
    let rank = max 1 (int_of_float (Float.of_int t.count *. q +. 0.5)) in
    let rec go i seen =
      if i >= nbuckets then max_value t
      else
        let seen = seen + t.buckets.(i) in
        if seen >= rank then
          max (min_value t) (min (bucket_le i) (max_value t))
        else go (i + 1) seen
    in
    go 0 0
  end

let to_json t =
  let buckets =
    Array.to_list t.buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n <> 0)
    |> List.map (fun (i, n) -> Json.Obj [ ("le", Json.Int (bucket_le i)); ("count", Json.Int n) ])
  in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("p50", Json.Int (quantile t 0.5));
      ("p90", Json.Int (quantile t 0.9));
      ("p99", Json.Int (quantile t 0.99));
      ("buckets", Json.List buckets);
    ]

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d" t.count
    (mean t) (min_value t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
    (max_value t)
