(** Per-site barrier profiler.

    Consumes {!Stm_core.Trace.Barrier} and {!Stm_core.Trace.Conflict}
    events (which the core emits adjacent to its {!Stm_core.Stats}
    increments) and accumulates, per access site, per thread, and in
    total: barriers fired (split read / write / txn-read / txn-write),
    DEA private-path hits, barrier-elided accesses, and conflicts.
    Site [-1] collects accesses made directly through the {!Stm_core.Stm}
    API with no IR site attached. *)

open Stm_core

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable txn_reads : int;
  mutable txn_writes : int;
  mutable private_hits : int;
  mutable elided : int;
  mutable conflicts : int;
}

type t

val create : unit -> t

val handle : t -> Trace.event -> unit
(** The sink function; compose with other consumers or use {!install}. *)

val install : ?level:Trace.level -> t -> unit
(** Install as the global trace sink (default [Debug] — the profiler
    needs the per-access events). *)

val sites : t -> (int * counters) list
(** Most active site first. *)

val threads : t -> (int * counters) list
(** Per-thread rollup, by thread id. *)

val total : t -> counters

val check_against_stats : t -> Stats.t -> (string * int * int) list
(** Column sums vs the run's global counters; mismatching
    [(column, profiled, global)] triples, [[]] when the profile accounts
    for every counted barrier action. *)

val pp :
  ?resolve:(int -> string option) ->
  ?limit:int ->
  Format.formatter ->
  t ->
  unit
(** Table with a TOTAL row. [resolve] maps site ids to labels
    (e.g. ["file.jt:12"] via {!Stm_ir.Ir.site_loc}). *)

val to_json : ?resolve:(int -> string option) -> t -> Json.t
