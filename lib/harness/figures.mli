(** Regeneration harness for every table and figure in the paper's
    evaluation (Section 7) plus the Figure 6 matrix and Figure 13 counts.

    Absolute cycle counts come from the simulated cost model, so they do
    not match the paper's wall-clock numbers; the shapes — who wins, by
    roughly what factor, where the curves sit — are the reproduction
    target and are checked by [shape_*] in the test suite and recorded in
    EXPERIMENTS.md. *)

(** {1 Figures 15-17: strong-atomicity overhead on JVM98 kernels} *)

type overhead_row = {
  bench : string;
  weak_cycles : int;  (** weak-atomicity baseline makespan *)
  levels : (string * float) list;
      (** optimization level -> overhead factor (strong / weak; 1.0 = no
          overhead). Levels: NoOpts, +BarrierElim, +BarrierAggr, +DEA,
          +NAIT. *)
}

val overhead_levels : string list

val fig15 : ?scale:float -> unit -> overhead_row list
(** Both read and write isolation barriers. [scale] shrinks workload
    iteration counts for quick runs. *)

val fig16 : ?scale:float -> unit -> overhead_row list
(** Read barriers only. *)

val fig17 : ?scale:float -> unit -> overhead_row list
(** Write barriers only. *)

val pp_overhead : Format.formatter -> overhead_row list -> unit

(** {1 Figure 13: static barrier-removal counts} *)

val fig13 : unit -> Stm_analysis.Barrier_stats.row list
(** NAIT vs TL on the seven JVM98 kernels (aggregated) and on Tsp, OO7 and
    JBB. *)

(** {1 Figures 18-20: scalability of the transactional benchmarks} *)

type series = {
  label : string;
  points : (int * int) list;  (** (threads, makespan in cycles) *)
  aborts : (int * int) list;  (** (threads, transaction aborts) *)
}

type scaling = {
  bench : string;
  series : series list;
  outputs_consistent : bool;
      (** all configurations printed the same checksums *)
}

val scaling_labels : string list

val fig18 : ?threads:int list -> ?scale:float -> unit -> scaling  (** Tsp *)

val fig19 : ?threads:int list -> ?scale:float -> unit -> scaling  (** OO7 *)

val fig20 : ?threads:int list -> ?scale:float -> unit -> scaling  (** JBB *)

val pp_scaling : Format.formatter -> scaling -> unit

(** {1 Figure 6} *)

val fig6 :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?cm:Stm_cm.Policy.t ->
  unit ->
  Stm_litmus.Matrix.cell list

val pp_fig6 : Format.formatter -> Stm_litmus.Matrix.cell list -> unit
