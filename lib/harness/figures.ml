open Stm_core
open Stm_workloads

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type variant = {
  v_label : string;
  v_jit : Stm_jit.Opt.level;
  v_dea : bool;
  v_whole_prog : bool;
}

let overhead_variants =
  [
    { v_label = "NoOpts"; v_jit = Stm_jit.Opt.O0; v_dea = false; v_whole_prog = false };
    { v_label = "+BarrierElim"; v_jit = Stm_jit.Opt.O1; v_dea = false; v_whole_prog = false };
    { v_label = "+BarrierAggr"; v_jit = Stm_jit.Opt.O2; v_dea = false; v_whole_prog = false };
    { v_label = "+DEA"; v_jit = Stm_jit.Opt.O2; v_dea = true; v_whole_prog = false };
    { v_label = "+NAIT"; v_jit = Stm_jit.Opt.O2; v_dea = true; v_whole_prog = true };
  ]

let overhead_levels = List.map (fun v -> v.v_label) overhead_variants

(* Compile a fresh program, run the selected JIT + whole-program passes.
   Whole-program barrier removal runs before aggregation so that
   aggregation only spends acquires on barriers that must remain. *)
let prepare (w : Workload.t) variant =
  let prog = Workload.program w in
  if variant.v_whole_prog then begin
    ignore (Stm_jit.Opt.optimize Stm_jit.Opt.O1 prog);
    let pta = Stm_analysis.Pta.analyze prog in
    ignore (Stm_analysis.Nait.apply prog pta : int);
    ignore (Stm_analysis.Thread_local.apply prog pta : int);
    if variant.v_jit = Stm_jit.Opt.O2 then
      ignore (Stm_jit.Aggregate.run prog : int)
  end
  else ignore (Stm_jit.Opt.optimize variant.v_jit prog);
  prog

let run_workload ?(extra = []) prog (w : Workload.t) cfg =
  let params = extra @ w.Workload.params in
  let out = Stm_ir.Interp.run ~cfg ~params prog in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Fmt.failwith "workload %s (cfg %s): thread %d raised %s" w.Workload.name
        (Config.describe cfg) tid (Printexc.to_string e));
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.status with
  | Stm_runtime.Sched.Completed -> ()
  | Stm_runtime.Sched.Deadlock tids ->
      Fmt.failwith "workload %s: deadlock of threads %a" w.Workload.name
        Fmt.(Dump.list int)
        tids
  | Stm_runtime.Sched.Fuel_exhausted ->
      Fmt.failwith "workload %s: out of scheduler fuel" w.Workload.name);
  out

(* ------------------------------------------------------------------ *)
(* Figures 15-17                                                       *)
(* ------------------------------------------------------------------ *)

type overhead_row = {
  bench : string;
  weak_cycles : int;
  levels : (string * float) list;
}

let strong_cfg ~reads ~writes base =
  { base with Config.strong = true; strong_reads = reads; strong_writes = writes }

let overhead_fig ~reads ~writes ?(scale = 1.0) () =
  List.map
    (fun w ->
      let w = Workload.scaled w scale in
      let weak_prog = prepare w (List.hd overhead_variants) in
      let weak = run_workload weak_prog w Config.eager_weak in
      let weak_cycles =
        weak.Stm_ir.Interp.result.Stm_runtime.Sched.makespan
      in
      let levels =
        List.map
          (fun v ->
            let prog = prepare w v in
            let cfg =
              let base = strong_cfg ~reads ~writes Config.eager_strong in
              if v.v_dea then Config.with_dea base else base
            in
            let out = run_workload prog w cfg in
            if out.Stm_ir.Interp.prints <> weak.Stm_ir.Interp.prints then
              Fmt.failwith "workload %s: output diverged under %s"
                w.Workload.name v.v_label;
            let cycles =
              out.Stm_ir.Interp.result.Stm_runtime.Sched.makespan
            in
            (v.v_label, float_of_int cycles /. float_of_int weak_cycles))
          overhead_variants
      in
      { bench = w.Workload.name; weak_cycles; levels })
    Jvm98.all

let fig15 ?scale () = overhead_fig ~reads:true ~writes:true ?scale ()
let fig16 ?scale () = overhead_fig ~reads:true ~writes:false ?scale ()
let fig17 ?scale () = overhead_fig ~reads:false ~writes:true ?scale ()

let pp_overhead ppf rows =
  Fmt.pf ppf "%-10s %12s" "bench" "weak-cycles";
  List.iter (fun l -> Fmt.pf ppf " %12s" l) overhead_levels;
  Fmt.pf ppf "@.";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %12d" r.bench r.weak_cycles;
      List.iter (fun (_, f) -> Fmt.pf ppf " %11.2fx" f) r.levels;
      Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 13                                                           *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  let count (name, progs) =
    (* aggregate counts over a benchmark group, like the JVM98 row of the
       paper's table *)
    let rows =
      List.concat_map
        (fun w -> Stm_analysis.Barrier_stats.count ~name (Workload.program w))
        progs
    in
    List.map
      (fun kind ->
        let sel = List.filter (fun (r : Stm_analysis.Barrier_stats.row) -> r.kind = kind) rows in
        let sum f = List.fold_left (fun a r -> a + f r) 0 sel in
        {
          Stm_analysis.Barrier_stats.program = name;
          kind;
          total = sum (fun r -> r.Stm_analysis.Barrier_stats.total);
          nait_only = sum (fun r -> r.Stm_analysis.Barrier_stats.nait_only);
          tl_only = sum (fun r -> r.Stm_analysis.Barrier_stats.tl_only);
          combined = sum (fun r -> r.Stm_analysis.Barrier_stats.combined);
        })
      [ `Read; `Write ]
  in
  List.concat_map count
    [
      ("jvm98", Jvm98.all);
      ("tsp", [ Tsp.tsp ]);
      ("oo7", [ Oo7.oo7 ]);
      ("jbb", [ Jbb.jbb ]);
    ]

(* ------------------------------------------------------------------ *)
(* Figures 18-20                                                       *)
(* ------------------------------------------------------------------ *)

type series = {
  label : string;
  points : (int * int) list;
  aborts : (int * int) list;  (* threads -> transaction aborts *)
}

type scaling = {
  bench : string;
  series : series list;
  outputs_consistent : bool;
}

type sconf = {
  s_label : string;
  s_locks : bool;
  s_cfg : Config.t;
  s_jit : Stm_jit.Opt.level;
  s_whole_prog : bool;
}

let scaling_confs =
  [
    {
      s_label = "Synch";
      s_locks = true;
      s_cfg = Config.eager_weak;
      s_jit = Stm_jit.Opt.O0;
      s_whole_prog = false;
    };
    {
      s_label = "WeakAtom";
      s_locks = false;
      s_cfg = Config.eager_weak;
      s_jit = Stm_jit.Opt.O0;
      s_whole_prog = false;
    };
    {
      s_label = "StrongNoOpts";
      s_locks = false;
      s_cfg = Config.eager_strong;
      s_jit = Stm_jit.Opt.O0;
      s_whole_prog = false;
    };
    {
      s_label = "+JitOpts";
      s_locks = false;
      s_cfg = Config.eager_strong;
      s_jit = Stm_jit.Opt.O2;
      s_whole_prog = false;
    };
    {
      s_label = "+DEA";
      s_locks = false;
      s_cfg = Config.(with_dea eager_strong);
      s_jit = Stm_jit.Opt.O2;
      s_whole_prog = false;
    };
    {
      s_label = "+WholeProg";
      s_locks = false;
      s_cfg = Config.(with_dea eager_strong);
      s_jit = Stm_jit.Opt.O2;
      s_whole_prog = true;
    };
  ]

let scaling_labels = List.map (fun c -> c.s_label) scaling_confs

let scaling_fig (w : Workload.t) ?(threads = [ 1; 2; 4; 8; 16 ]) ?(scale = 1.0)
    () =
  let w = Workload.scaled w scale in
  (* reference outputs per thread count: checksums are deterministic for
     a given thread count but may legitimately differ across counts
     (work partitioning differs) *)
  let reference_output : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let consistent = ref true in
  let series =
    List.map
      (fun sc ->
        let variant =
          {
            v_label = sc.s_label;
            v_jit = sc.s_jit;
            v_dea = sc.s_cfg.Config.dea;
            v_whole_prog = sc.s_whole_prog;
          }
        in
        let prog = prepare w variant in
        let measured =
          List.map
            (fun nt ->
              let extra =
                [ ("threads", nt); ("use_locks", (if sc.s_locks then 1 else 0)) ]
              in
              let out = run_workload ~extra prog w sc.s_cfg in
              (* deterministic workloads print schedule-independent
                 checksums; compare across all configurations *)
              (match Hashtbl.find_opt reference_output nt with
              | None ->
                  Hashtbl.replace reference_output nt out.Stm_ir.Interp.prints
              | Some r ->
                  if r <> out.Stm_ir.Interp.prints then consistent := false);
              ( nt,
                out.Stm_ir.Interp.result.Stm_runtime.Sched.makespan,
                out.Stm_ir.Interp.stats.Stm_core.Stats.aborts ))
            threads
        in
        {
          label = sc.s_label;
          points = List.map (fun (nt, c, _) -> (nt, c)) measured;
          aborts = List.map (fun (nt, _, a) -> (nt, a)) measured;
        })
      scaling_confs
  in
  { bench = w.Workload.name; series; outputs_consistent = !consistent }

let fig18 ?threads ?scale () = scaling_fig Tsp.tsp ?threads ?scale ()
let fig19 ?threads ?scale () = scaling_fig Oo7.oo7 ?threads ?scale ()
let fig20 ?threads ?scale () = scaling_fig Jbb.jbb ?threads ?scale ()

let pp_scaling ppf s =
  Fmt.pf ppf "%s (cycles; outputs consistent: %b)@." s.bench
    s.outputs_consistent;
  let threads = List.map fst (List.hd s.series).points in
  Fmt.pf ppf "%-14s" "threads";
  List.iter (fun t -> Fmt.pf ppf " %10d" t) threads;
  Fmt.pf ppf "@.";
  List.iter
    (fun ser ->
      Fmt.pf ppf "%-14s" ser.label;
      List.iter (fun (_, c) -> Fmt.pf ppf " %10d" c) ser.points;
      Fmt.pf ppf "@.")
    s.series;
  (* contention detail: transaction aborts per point (zero for the lock
     baseline by construction) *)
  Fmt.pf ppf "aborts:@.";
  List.iter
    (fun ser ->
      if List.exists (fun (_, a) -> a > 0) ser.aborts then begin
        Fmt.pf ppf "%-14s" ser.label;
        List.iter (fun (_, a) -> Fmt.pf ppf " %10d" a) ser.aborts;
        Fmt.pf ppf "@."
      end)
    s.series

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let fig6 ?preemption_bound ?max_runs ?cm () =
  Stm_litmus.Matrix.fig6 ?preemption_bound ?max_runs ?cm ()

let pp_fig6 = Stm_litmus.Matrix.pp_table
