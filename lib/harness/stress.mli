(** Livelock / starvation stress scenarios for contention management.

    Three adversarial schedules whose outcome depends on the configured
    {!Stm_cm.Policy}: a long writer against a crowd of short ones, a
    symmetric livelock pair, and a circular priority-inversion chain.
    Every run is deterministic given [seed] (scheduler interleaving and
    randomized backoff both derive from it).

    The pass criterion the tests and CI enforce: [timestamp] completes
    every scenario within fuel with no starved thread, while [suicide]
    exceeds {!starvation_threshold} consecutive aborts on at least one. *)

type scenario = Long_vs_short | Livelock_pair | Inversion_chain | Read_heavy

val all_scenarios : scenario list
val scenario_name : scenario -> string

val scenario_of_string : string -> scenario option
(** Accepts the {!scenario_name} spellings plus underscore and short
    aliases ([livelock], [inversion]). *)

val describe_scenario : scenario -> string

val starvation_threshold : int
(** Consecutive aborts by one thread that count as starvation. *)

type report = {
  scenario : scenario;
  policy : Stm_cm.Policy.t;
  seed : int;
  status : Stm_runtime.Sched.status;
  completed : bool;
      (** scheduler completed within fuel and no thread raised *)
  makespan : int;
  stats : Stm_core.Stats.t;
  metrics : Stm_obs.Metrics.t;
      (** trace-derived metrics incl. per-thread fairness *)
  starved : int list;  (** threads over {!starvation_threshold} *)
}

val run :
  ?seed:int ->
  ?fuel:int ->
  ?consumer:(Stm_core.Trace.event -> unit) ->
  ?versioning:Stm_core.Config.versioning ->
  ?isolation:Stm_core.Config.isolation ->
  ?validation:Stm_core.Config.validation ->
  cm:Stm_cm.Policy.t ->
  scenario ->
  report
(** Execute one scenario under one policy. [fuel] bounds scheduler steps
    (default 2M); a run that exhausts it reports
    [status = Fuel_exhausted] and [completed = false]. Installs (and
    removes) its own trace sink. [consumer] additionally receives the
    full Debug-level event stream (e.g. {!Stm_diag.Diag.consumer});
    the report's own metrics still count only Info events, so a run
    reports identical counters with or without it. [versioning]
    (default eager) and [isolation] (default serializable) select the
    backend; under mvcc the {!Read_heavy} scanners must commit
    abort-free. [validation] (default incremental) selects the read-set
    validation scheme of the single-version backends. *)

val passed : report -> bool
(** Completed with zero starved threads. *)

val pp_report : Format.formatter -> report -> unit
