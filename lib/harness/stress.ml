open Stm_core
open Stm_runtime

(* Adversarial contention scenarios for the contention-management
   subsystem. Each scenario is engineered so that progress depends on the
   CM policy, not on luck: under [suicide] somebody keeps losing (long
   consecutive-abort streaks), while an age-based policy ([timestamp])
   lets every thread finish. All runs are deterministic given a seed. *)

type scenario = Long_vs_short | Livelock_pair | Inversion_chain | Read_heavy

let all_scenarios = [ Long_vs_short; Livelock_pair; Inversion_chain; Read_heavy ]

let scenario_name = function
  | Long_vs_short -> "long-vs-short"
  | Livelock_pair -> "livelock-pair"
  | Inversion_chain -> "inversion-chain"
  | Read_heavy -> "read-heavy"

let scenario_of_string = function
  | "long-vs-short" | "long_vs_short" | "longvshort" -> Some Long_vs_short
  | "livelock-pair" | "livelock_pair" | "livelock" -> Some Livelock_pair
  | "inversion-chain" | "inversion_chain" | "inversion" -> Some Inversion_chain
  | "read-heavy" | "read_heavy" | "readheavy" -> Some Read_heavy
  | _ -> None

let describe_scenario = function
  | Long_vs_short ->
      "one long writer needs every record while N short writers each \
       hammer one of them; the long transaction starves unless age wins \
       conflicts"
  | Livelock_pair ->
      "two symmetric writers acquire the same two records in opposite \
       orders; abort-and-retry policies can chase each other's tails"
  | Inversion_chain ->
      "a ring of writers, each holding its own record while asking for \
       its neighbor's; circular contention with no global owner order"
  | Read_heavy ->
      "one writer sweeps every record per transaction while a crowd of \
       read-only scanners checks the all-equal invariant; single-version \
       backends abort the scanners, mvcc serves them from snapshots \
       abort-free"

(* A thread has "starved" when it lost this many times in a row. The
   constant is calibrated against the scenario sizes below: under
   [timestamp] no thread ever approaches it, under [suicide] the long
   writer of [Long_vs_short] blows well past it. *)
let starvation_threshold = 50

(* Small backoff window so that losing shows up as aborts (budget
   exhaustion) rather than as ever-longer in-transaction waits; this is
   what makes streak counts comparable across policies. *)
let stress_cost = { Cost.default with Cost.backoff_base = 8; backoff_cap = 64 }

type report = {
  scenario : scenario;
  policy : Stm_cm.Policy.t;
  seed : int;
  status : Sched.status;
  completed : bool;
  makespan : int;
  stats : Stats.t;
  metrics : Stm_obs.Metrics.t;
  starved : int list;
}

let config ?(versioning = Config.Eager) ?(isolation = Config.Serializable)
    ?(validation = Config.Incremental) ~cm ~seed () =
  let base =
    match versioning with
    | Config.Eager -> Config.eager_weak
    | Config.Lazy -> Config.lazy_weak
    | Config.Mvcc -> Config.mvcc_weak
  in
  Config.with_validation validation
    (Config.with_isolation isolation
       {
         base with
         Config.cm;
         cm_seed = seed;
         cost = stress_cost;
         max_txn_retries = 6;
         validate_every = 16;
       })

(* ------------------------------------------------------------------ *)
(* Scenario bodies (run inside Stm.run's main thread)                  *)
(* ------------------------------------------------------------------ *)

let incr_field obj fld =
  Stm.write obj fld (Stm.vint (Stm.to_int (Stm.read obj fld) + 1))

(* fresh fields are Vnull; zero them before any transactional increment *)
let alloc_counters n =
  let recs = Stm.alloc_public ~cls:"Stress" n in
  for i = 0 to n - 1 do
    Stm.write recs i (Stm.vint 0)
  done;
  recs

(* One long writer updates every record (holding each from acquisition
   to commit, with work in between) for a few rounds; each of [n] short
   writers hammers a single dedicated record, holding it non-trivially.
   The records the long transaction still needs are almost always owned,
   so without an age-based policy it keeps exhausting its retry budget. *)
let long_vs_short () =
  let n = 4 in
  let rounds = 3 in
  let short_iters = 80 in
  let hold = 600 in
  let recs = alloc_counters n in
  let long () =
    for _ = 1 to rounds do
      Stm.atomic (fun () ->
          for i = 0 to n - 1 do
            incr_field recs i;
            Sched.pause 60
          done);
      Sched.pause 50
    done
  in
  let short k () =
    for _ = 1 to short_iters do
      Stm.atomic (fun () ->
          incr_field recs k;
          Sched.pause hold);
      Sched.pause 10
    done
  in
  let tl = Sched.spawn ~name:"long" long in
  let ts = List.init n (fun k -> Sched.spawn ~name:"short" (short k)) in
  Sched.join tl;
  List.iter Sched.join ts;
  (* every write committed exactly once *)
  for i = 0 to n - 1 do
    assert (Stm.to_int (Stm.read recs i) = rounds + short_iters)
  done

(* Two symmetric writers take the same two records in opposite orders,
   holding the first while asking for the second - the deadlock-shaped
   schedule that abort-and-retry turns into a livelock. *)
let livelock_pair () =
  let recs = alloc_counters 2 in
  let rounds = 10 in
  let hold = 2000 in
  let worker first second () =
    for _ = 1 to rounds do
      Stm.atomic (fun () ->
          incr_field recs first;
          Sched.pause hold;
          incr_field recs second);
      Sched.pause 10
    done
  in
  let t1 = Sched.spawn ~name:"ab" (worker 0 1) in
  let t2 = Sched.spawn ~name:"ba" (worker 1 0) in
  Sched.join t1;
  Sched.join t2;
  assert (Stm.to_int (Stm.read recs 0) = 2 * rounds);
  assert (Stm.to_int (Stm.read recs 1) = 2 * rounds)

(* n writers in a ring: thread i updates record i, works, then updates
   record i+1 mod n. Ownership requests form a cycle, so every thread is
   both a blocker and a requester - priority must be global, not
   pairwise, for anyone to finish cleanly. *)
let inversion_chain () =
  let n = 5 in
  let rounds = 10 in
  let hold = 1500 in
  let recs = alloc_counters n in
  let worker i () =
    for _ = 1 to rounds do
      Stm.atomic (fun () ->
          incr_field recs i;
          Sched.pause hold;
          incr_field recs ((i + 1) mod n));
      Sched.pause 10
    done
  in
  let ts = List.init n (fun i -> Sched.spawn ~name:"ring" (worker i)) in
  List.iter Sched.join ts;
  for i = 0 to n - 1 do
    assert (Stm.to_int (Stm.read recs i) = 2 * rounds)
  done

(* One writer sweeps every record inside a single transaction; [readers]
   scanners run read-only transactions that copy all records out. The
   writer's sweep is all-or-nothing, so a committed scan must see all
   records equal - the assert runs on the values a COMMITTED transaction
   observed (doomed attempts may see torn state under eager versioning
   and retry). Under mvcc the scanners serve from snapshots and commit
   abort-free; under the single-version backends they conflict with the
   writer's ownership and pay aborts. *)
let read_heavy () =
  let n = 8 in
  let readers = 4 in
  let iters = 30 in
  let rounds = 20 in
  let recs = alloc_counters n in
  let writer () =
    for _ = 1 to rounds do
      Stm.atomic (fun () ->
          for i = 0 to n - 1 do
            incr_field recs i;
            Sched.pause 40
          done);
      Sched.pause 20
    done
  in
  let reader () =
    let vals = Array.make n 0 in
    for _ = 1 to iters do
      Stm.atomic (fun () ->
          for i = 0 to n - 1 do
            vals.(i) <- Stm.to_int (Stm.read recs i)
          done);
      Array.iter (fun v -> assert (v = vals.(0))) vals;
      Sched.pause 15
    done
  in
  let tw = Sched.spawn ~name:"writer" writer in
  let ts = List.init readers (fun _ -> Sched.spawn ~name:"reader" reader) in
  Sched.join tw;
  List.iter Sched.join ts;
  for i = 0 to n - 1 do
    assert (Stm.to_int (Stm.read recs i) = rounds)
  done

let body = function
  | Long_vs_short -> long_vs_short
  | Livelock_pair -> livelock_pair
  | Inversion_chain -> inversion_chain
  | Read_heavy -> read_heavy

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0) ?(fuel = 2_000_000) ?consumer ?versioning ?isolation
    ?validation ~cm scenario =
  let cfg = config ?versioning ?isolation ?validation ~cm ~seed () in
  let metrics = Stm_obs.Metrics.create () in
  (match consumer with
  | None -> Stm_obs.Metrics.install ~level:Trace.Info metrics
  | Some c ->
      (* an extra consumer (the diagnosis pipeline) wants the Debug
         stream; the report's own metrics keep their Info-level diet so
         a run reports identical counters with or without it *)
      Trace.set_sink ~level:Trace.Debug
        (Some
           (fun ev ->
             if Trace.event_level ev = Trace.Info then
               Stm_obs.Metrics.handle metrics ev;
             c ev)));
  let finally () = Trace.set_sink None in
  Fun.protect ~finally (fun () ->
      let result, stats =
        Stm.run ~policy:(Sched.Random seed) ~max_steps:fuel ~cfg
          (body scenario)
      in
      let completed =
        result.Sched.status = Sched.Completed && result.Sched.exns = []
      in
      {
        scenario;
        policy = cm;
        seed;
        status = result.Sched.status;
        completed;
        makespan = result.Sched.makespan;
        stats;
        metrics;
        starved =
          Stm_cm.Fairness.starved
            (Stm_obs.Metrics.fairness metrics)
            ~threshold:starvation_threshold;
      })

let passed r = r.completed && r.starved = []

let pp_report ppf r =
  let f = Stm_obs.Metrics.fairness r.metrics in
  Fmt.pf ppf "@[<v>%s under %s (seed %d): %s@,"
    (scenario_name r.scenario)
    (Stm_cm.Policy.to_string r.policy)
    r.seed
    (match r.status with
    | Sched.Completed -> if r.completed then "completed" else "failed"
    | Sched.Fuel_exhausted -> "FUEL EXHAUSTED"
    | Sched.Deadlock _ -> "DEADLOCK");
  Fmt.pf ppf "  makespan=%d commits=%d aborts=%d wounds=%d backoff=%d@."
    r.makespan r.stats.Stats.commits r.stats.Stats.aborts
    r.stats.Stats.wounds r.stats.Stats.backoff_cycles;
  Fmt.pf ppf "  jain=%.4f max_consec_aborts=%d starved=[%a]@,@]"
    (Stm_cm.Fairness.jain f)
    (Stm_cm.Fairness.max_consec_aborts f)
    Fmt.(list ~sep:comma int)
    r.starved
