(** Regeneration of Figure 6: the weak-atomicity behaviour matrix.

    For every (anomaly row, execution mode) cell, the systematic explorer
    decides whether the anomalous outcome is reachable. "yes" cells are
    decided by exhibiting a witness schedule; "no" cells by exhausting the
    preemption-bounded schedule space without finding one. *)

type cell = {
  program : Programs.t;
  mode : Modes.t;
  expected : bool;  (** the paper's Figure 6 value *)
  observed : bool;
  runs : int;
  truncated : bool;
}

val expected_fig6 : (string * bool list) list
(** [(program name, per-mode expectation)] in {!Modes.all_fig6} column
    order: eager-weak, lazy-weak, locks, strong-eager, strong-lazy. *)

val run_cell :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?granule_override:int ->
  ?cm:Stm_cm.Policy.t ->
  Programs.t ->
  Modes.t ->
  cell
(** [cm] overrides the contention-management policy of the mode's
    configuration; the expectation is unchanged, because contention
    management must not affect which anomalies are expressible. *)

val run_cell_pct :
  ?runs:int ->
  ?depth:int ->
  ?seed:int ->
  ?granule_override:int ->
  ?cm:Stm_cm.Policy.t ->
  Programs.t ->
  Modes.t ->
  cell
(** Decide a cell by probabilistic sampling ({!Explorer.explore_pct})
    instead of the bounded DFS: an independent check of the "yes" cells.
    A sampled "no" is never a certificate — a quiet cell may just have
    been missed, so only an anomaly on an expected-"no" cell is
    conclusive. Defaults: [runs = 2000], [depth = 3], [seed = 1]. *)

val fig6 :
  ?preemption_bound:int -> ?max_runs:int -> ?cm:Stm_cm.Policy.t -> unit ->
  cell list
(** All 45 cells (9 anomaly rows x 5 modes). *)

val extras_rows :
  ?preemption_bound:int -> ?max_runs:int -> ?cm:Stm_cm.Policy.t -> unit ->
  cell list
(** Two rows beyond Figure 6: the Section 2.1 write-then-read variant and
    the Section 4 transaction-vs-transaction dirty-read check (expected
    all-"no": transactional isolation holds even under weak atomicity). *)

val privatization_row :
  ?preemption_bound:int -> ?max_runs:int -> ?cm:Stm_cm.Policy.t -> unit ->
  cell list
(** Figure 1 under the five Figure 6 modes plus the two quiescence modes
    (Section 3.4): quiescence must fix this program even under weak
    atomicity. *)

val expected_mvcc : (string * bool list) list
(** Per-program expectations under the multi-version columns, in
    {!Modes.all_mvcc} order: weak-mvcc, weak-mvcc-si, strong-mvcc,
    strong-mvcc-si. Covers every litmus program including privatization
    and the SI rows. *)

val si_rows :
  ?preemption_bound:int -> ?max_runs:int -> ?cm:Stm_cm.Policy.t -> unit ->
  cell list
(** The snapshot-isolation litmus programs (write skew, long fork,
    read-only snapshot) under all nine columns: write skew must appear
    exactly in the two snapshot-isolation columns. *)

val mvcc_rows :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?cm:Stm_cm.Policy.t ->
  ?programs:Programs.t list ->
  unit ->
  cell list
(** Every litmus program (or [programs]) under the four multi-version
    columns. *)

val timestamp_rows :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?cm:Stm_cm.Policy.t ->
  ?programs:Programs.t list ->
  unit ->
  cell list
(** The Figure 6 rows (or [programs]) under the four timestamp-validation
    columns ({!Modes.all_timestamp}). Expectations are the corresponding
    base columns' — global-commit-clock validation must never change a
    litmus verdict. *)

val all_match : cell list -> bool
val pp_table : Format.formatter -> cell list -> unit

(** {2 DPOR certification}

    Every cell re-derived by two independent engines: the enumerative
    preemption-bounded DFS and the race-reduced DPOR walk, at the same
    bound. Agreement plus a complete DPOR walk upgrades a sampled "no"
    into a certified one; disagreement (a {e verdict flip}) or a DPOR
    walk less complete than the finished baseline fails certification
    (the BPOR cross-check, see {!Explorer.explore_dpor}). *)

type certified = {
  enum : cell;  (** the enumerative baseline's verdict for the cell *)
  dpor : cell;  (** the DPOR engine's verdict, same preemption bound *)
  complete : bool;
      (** the DPOR walk exhausted its race-reduced schedule space *)
  races : int;  (** racing segment pairs found across the DPOR walk *)
}

val certify_cell :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?granule_override:int ->
  ?cm:Stm_cm.Policy.t ->
  Programs.t ->
  Modes.t ->
  certified
(** Run both engines on one cell. Defaults: [preemption_bound = 2],
    [max_runs = 40_000]. *)

val cell_certified : certified -> bool
(** No verdict flip, and the "no" verdict (if that is the verdict) rests
    on a complete DPOR walk whenever the enumerative walk itself
    finished. A "yes" is witness-based and needs no completeness. *)

val all_certified : certified list -> bool

val full_matrix : ?bound:int -> unit -> (Programs.t * Modes.t * int) list
(** Every (program, mode) cell covered by the matrix suites — the
    Figure 6 grid, the extra rows, privatization (with the quiescence
    columns), the SI rows, every program under the multi-version
    columns, and the Figure 6 rows under the timestamp-validation
    columns — each paired with the preemption bound its expected witness
    needs: [bound] (default 2) everywhere except the multi-version
    columns, which get [max bound 3] (the snapshot-isolation
    privatization race takes three preemptions). *)

val pp_certified : Format.formatter -> certified -> unit
(** One line per cell: both engines' verdicts and run counts, DPOR
    completeness and race count, and a trailing [FLIP] marker when
    {!cell_certified} fails. *)
