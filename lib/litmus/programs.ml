open Stm_runtime
open Stm_core

type t = {
  name : string;
  figure : string;
  group : string;
  anomaly : string;
  needs_granule : int;
  is_anomalous : string -> bool;
  build : Modes.harness -> Explorer.instance;
}

(* Initialization happens before any thread is spawned, so it uses raw
   heap stores: races are impossible there and the schedule tree stays
   small. *)
let init_int o fld n = Heap.set o fld (Heap.Vint n)

let geti o fld = Stm.to_int (Stm.read o fld)
let seti o fld n = Stm.write o fld (Stm.vint n)

(* Raw post-mortem field read (the simulation is over when observe runs). *)
let raw o fld = match Heap.get o fld with Heap.Vint n -> n | _ -> min_int

let scan2 s fmt f = try Scanf.sscanf s fmt f with Scanf.Scan_failure _ | Failure _ | End_of_file -> false

(* Spawn the two racing threads and wait for both. *)
let race t1 t2 =
  let a = Sched.spawn ~name:"T1" t1 in
  let b = Sched.spawn ~name:"T2" t2 in
  Sched.join a;
  Sched.join b

let race4 t1 t2 t3 t4 =
  let a = Sched.spawn ~name:"T1" t1 in
  let b = Sched.spawn ~name:"T2" t2 in
  let c = Sched.spawn ~name:"T3" t3 in
  let d = Sched.spawn ~name:"T4" t4 in
  Sched.join a;
  Sched.join b;
  Sched.join c;
  Sched.join d

let non_repeatable_read =
  {
    name = "nr";
    figure = "2a";
    group = "NW-TR";
    anomaly = "r1 <> r2";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "r1=%d r2=%d" (fun a b -> a <> b));
    build =
      (fun h ->
        let x = ref None and r1 = ref 0 and r2 = ref 0 in
        let main () =
          let xo = Stm.alloc_public ~cls:"X" 1 in
          init_int xo 0 0;
          x := Some xo;
          race
            (fun () ->
              h.atomic (fun () ->
                  r1 := geti xo 0;
                  r2 := geti xo 0))
            (fun () -> seti xo 0 10)
        in
        let observe () = Printf.sprintf "r1=%d r2=%d" !r1 !r2 in
        { Explorer.main; observe });
  }

let intermediate_lost_update =
  {
    name = "ilu";
    figure = "2b";
    group = "NW-TW";
    anomaly = "x = 1 (the non-transactional x=10 is lost)";
    needs_granule = 1;
    is_anomalous = (fun s -> s = "x=1");
    build =
      (fun h ->
        let xo = ref None in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          init_int x 0 0;
          xo := Some x;
          race
            (fun () ->
              h.atomic (fun () ->
                  let r = geti x 0 in
                  seti x 0 (r + 1)))
            (fun () -> seti x 0 10)
        in
        let observe () =
          Printf.sprintf "x=%d" (raw (Option.get !xo) 0)
        in
        { Explorer.main; observe });
  }

let intermediate_dirty_read =
  {
    name = "idr";
    figure = "2c";
    group = "NR-TW";
    anomaly = "r is odd (x's evenness invariant observed broken)";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "r=%d" (fun r -> r >= 0 && r mod 2 = 1));
    build =
      (fun h ->
        let r = ref 0 in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          init_int x 0 0;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti x 0 (geti x 0 + 1);
                  seti x 0 (geti x 0 + 1)))
            (fun () -> r := geti x 0)
        in
        let observe () = Printf.sprintf "r=%d" !r in
        { Explorer.main; observe });
  }

let speculative_lost_update =
  {
    name = "slu";
    figure = "3a";
    group = "NW-TW";
    anomaly = "x = 0 (rollback manufactured a write that lost x=2)";
    needs_granule = 1;
    is_anomalous = (fun s -> s = "x=0");
    build =
      (fun h ->
        let xo = ref None in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          xo := Some x;
          race
            (fun () ->
              h.atomic (fun () ->
                  if geti y 0 = 0 then seti x 0 1;
                  h.force_abort ()))
            (fun () ->
              seti x 0 2;
              seti y 0 1)
        in
        let observe () = Printf.sprintf "x=%d" (raw (Option.get !xo) 0) in
        { Explorer.main; observe });
  }

let speculative_dirty_read =
  {
    name = "sdr";
    figure = "3b";
    group = "NR-TW";
    anomaly = "x = 0 (y=1 was triggered by a speculative value)";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "x=%d y=%d" (fun x _ -> x = 0));
    build =
      (fun h ->
        let xo = ref None and yo = ref None in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          xo := Some x;
          yo := Some y;
          race
            (fun () ->
              h.atomic (fun () ->
                  if geti y 0 = 0 then seti x 0 1;
                  h.force_abort ()))
            (fun () -> if geti x 0 = 1 then seti y 0 1)
        in
        let observe () =
          Printf.sprintf "x=%d y=%d" (raw (Option.get !xo) 0)
            (raw (Option.get !yo) 0)
        in
        { Explorer.main; observe });
  }

let overlapped_writes =
  {
    name = "mi-rw";
    figure = "4a";
    group = "NR-TW";
    anomaly = "r = 0 (publication seen before the field initialization)";
    needs_granule = 1;
    is_anomalous = (fun s -> s = "r=0");
    build =
      (fun h ->
        let r = ref (-1) in
        let main () =
          let g = Stm.alloc_public ~cls:"Globals" 1 in
          let el = Stm.alloc_public ~cls:"El" 1 in
          init_int el 0 0;
          Heap.set g 0 Heap.Vnull;
          r := -1;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti el 0 1;
                  Stm.write g 0 (Stm.vref el)))
            (fun () ->
              let v = Stm.read g 0 in
              if not (Stm.is_null v) then r := geti (Stm.to_obj v) 0)
        in
        let observe () = Printf.sprintf "r=%d" !r in
        { Explorer.main; observe });
  }

let buffered_writes =
  {
    name = "mi-ww";
    figure = "4b";
    group = "NW-TW";
    anomaly = "item.val = 2 (committed write-back overwrote the later non-txn store)";
    needs_granule = 1;
    is_anomalous = (fun s -> s = "val=2");
    build =
      (fun h ->
        let item = ref None in
        let main () =
          let g = Stm.alloc_public ~cls:"Globals" 1 in
          let it = Stm.alloc_public ~cls:"Item" 1 in
          init_int it 0 1;
          Heap.set g 0 (Heap.Vref it);
          item := Some it;
          race
            (fun () ->
              let got = ref None in
              h.atomic (fun () ->
                  let v = Stm.read g 0 in
                  if not (Stm.is_null v) then begin
                    got := Some (Stm.to_obj v);
                    Stm.write g 0 Heap.Vnull
                  end);
              match !got with
              | Some o -> seti o 0 0 (* non-transactional: o is private now *)
              | None -> ())
            (fun () ->
              h.atomic (fun () ->
                  let v = Stm.read g 0 in
                  if not (Stm.is_null v) then begin
                    let o = Stm.to_obj v in
                    seti o 0 (geti o 0 + 1)
                  end))
        in
        let observe () = Printf.sprintf "val=%d" (raw (Option.get !item) 0) in
        { Explorer.main; observe });
  }

let granular_lost_update =
  {
    name = "glu";
    figure = "5a";
    group = "NW-TW";
    anomaly = "x.g = 0 (undo/copy of the adjacent field lost x.g=1)";
    needs_granule = 2;
    is_anomalous = (fun s -> s = "g=0");
    build =
      (fun h ->
        let xo = ref None in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 2 in
          init_int x 0 0;
          init_int x 1 0;
          xo := Some x;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti x 0 5;
                  h.force_abort ()))
            (fun () -> seti x 1 1)
        in
        let observe () = Printf.sprintf "g=%d" (raw (Option.get !xo) 1) in
        { Explorer.main; observe });
  }

let granular_inconsistent_read =
  {
    name = "gir";
    figure = "5b";
    group = "NW-TR";
    anomaly = "r = 0 (transaction read its own stale granule copy of x.g)";
    needs_granule = 2;
    is_anomalous = (fun s -> s = "r=0");
    build =
      (fun h ->
        let r = ref (-1) in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 2 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int x 1 0;
          init_int y 0 0;
          r := -1;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti x 0 7;
                  if geti y 0 = 1 then r := geti x 1))
            (fun () ->
              seti x 1 1;
              seti y 0 1)
        in
        let observe () = Printf.sprintf "r=%d" !r in
        { Explorer.main; observe });
  }

let privatization =
  {
    name = "privatization";
    figure = "1";
    group = "demo";
    anomaly = "r1 <> r2 (privatized item seen half-updated)";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "r1=%d r2=%d" (fun a b -> a <> b));
    build =
      (fun h ->
        let r1 = ref 0 and r2 = ref 0 in
        let main () =
          let head = Stm.alloc_public ~cls:"List" 1 in
          let item = Stm.alloc_public ~cls:"Item" 2 in
          init_int item 0 0;
          init_int item 1 0;
          Heap.set head 0 (Heap.Vref item);
          r1 := 0;
          r2 := 0;
          race
            (fun () ->
              (* Thread1: privatize the item, then access it unprotected *)
              let mine = ref None in
              h.atomic (fun () ->
                  let v = Stm.read head 0 in
                  if not (Stm.is_null v) then begin
                    mine := Some (Stm.to_obj v);
                    Stm.write head 0 Heap.Vnull
                  end);
              match !mine with
              | Some it ->
                  r1 := geti it 0;
                  r2 := geti it 1
              | None -> ())
            (fun () ->
              (* Thread2: properly synchronized increments *)
              h.atomic (fun () ->
                  let v = Stm.read head 0 in
                  if not (Stm.is_null v) then begin
                    let it = Stm.to_obj v in
                    seti it 0 (geti it 0 + 1);
                    seti it 1 (geti it 1 + 1)
                  end))
        in
        let observe () = Printf.sprintf "r1=%d r2=%d" !r1 !r2 in
        { Explorer.main; observe });
  }

(* Section 2.1 text: "Thread 1 will not observe the value it wrote (10)
   if Thread 2 writes x between Thread 1's write and read". *)
let write_read_nr =
  {
    name = "nr-wr";
    figure = "2a-text";
    group = "NW-TR";
    anomaly = "r <> 10 (transaction fails to read back its own write)";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "r=%d" (fun r -> r <> 10));
    build =
      (fun h ->
        let r = ref 0 in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          init_int x 0 0;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti x 0 10;
                  r := geti x 0))
            (fun () -> seti x 0 20)
        in
        let observe () = Printf.sprintf "r=%d" !r in
        { Explorer.main; observe });
  }

(* Section 4's discussion: under eager versioning one transaction may read
   another's dirty (speculative) data, but such a doomed transaction must
   abort - dirty values never appear in a COMMITTED transaction's
   observations, under any mode. *)
let txn_dirty_read =
  {
    name = "txn-dirty";
    figure = "s4";
    group = "TXN-TXN";
    anomaly = "committed transaction observed a torn (x, y) pair";
    needs_granule = 1;
    is_anomalous =
      (fun s -> scan2 s "rx=%d ry=%d" (fun rx ry -> rx <> ry));
    build =
      (fun h ->
        let rx = ref 0 and ry = ref 0 in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          race
            (fun () ->
              (* writes x and y together, then aborts once: its dirty
                 values are speculatively visible under eager versioning *)
              h.atomic (fun () ->
                  seti x 0 1;
                  seti y 0 1;
                  h.force_abort ()))
            (fun () ->
              h.atomic (fun () ->
                  rx := geti x 0;
                  ry := geti y 0))
        in
        let observe () = Printf.sprintf "rx=%d ry=%d" !rx !ry in
        { Explorer.main; observe });
  }

(* The two guards read the location the other transaction writes; the
   write sets are disjoint, so first-committer-wins never fires and both
   commit under snapshot isolation. Serializable backends (and mvcc with
   commit-time read validation) must forbid the (1, 1) outcome. *)
let write_skew =
  {
    name = "write-skew";
    figure = "si";
    group = "TXN-TXN";
    anomaly = "x = 1 and y = 1 (both guards saw the other side still 0)";
    needs_granule = 1;
    is_anomalous = (fun s -> s = "x=1 y=1");
    build =
      (fun h ->
        let xo = ref None and yo = ref None in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          xo := Some x;
          yo := Some y;
          race
            (fun () ->
              h.atomic (fun () -> if geti y 0 = 0 then seti x 0 1))
            (fun () ->
              h.atomic (fun () -> if geti x 0 = 0 then seti y 0 1))
        in
        let observe () =
          Printf.sprintf "x=%d y=%d"
            (raw (Option.get !xo) 0)
            (raw (Option.get !yo) 0)
        in
        { Explorer.main; observe });
  }

(* Two independent writers, two read-only observers. Under parallel
   snapshot isolation the observers may see the writes in opposite
   orders (the "long fork"); the SI oracle deliberately admits that
   shape. A single global commit clock totally orders the two writes,
   so no backend in this repo can actually exhibit it - an all-"no"
   row documenting that the mvcc backend is stronger than PSI. *)
let long_fork =
  {
    name = "long-fork";
    figure = "si";
    group = "TXN-TXN";
    anomaly = "observers see x and y committed in opposite orders";
    needs_granule = 1;
    is_anomalous =
      (fun s ->
        scan2 s "ax=%d ay=%d by=%d bx=%d" (fun ax ay by bx ->
            ax = 1 && ay = 0 && by = 1 && bx = 0));
    build =
      (fun h ->
        let ax = ref 0 and ay = ref 0 and bx = ref 0 and by = ref 0 in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          race4
            (fun () -> h.atomic (fun () -> seti x 0 1))
            (fun () -> h.atomic (fun () -> seti y 0 1))
            (fun () ->
              h.atomic (fun () ->
                  ax := geti x 0;
                  ay := geti y 0))
            (fun () ->
              h.atomic (fun () ->
                  by := geti y 0;
                  bx := geti x 0))
        in
        let observe () =
          Printf.sprintf "ax=%d ay=%d by=%d bx=%d" !ax !ay !by !bx
        in
        { Explorer.main; observe });
  }

(* A read-only transaction observing a two-location invariant while a
   writer updates both sides transactionally. Every backend must keep
   the pair consistent; under mvcc the reader additionally commits
   abort-free from its snapshot (asserted by the read-heavy stress
   scenario, not here). *)
let read_only_snapshot =
  {
    name = "ro-snapshot";
    figure = "si";
    group = "TXN-TR";
    anomaly = "read-only transaction observed a torn (x, y) pair";
    needs_granule = 1;
    is_anomalous = (fun s -> scan2 s "rx=%d ry=%d" (fun a b -> a <> b));
    build =
      (fun h ->
        let rx = ref 0 and ry = ref 0 in
        let main () =
          let x = Stm.alloc_public ~cls:"X" 1 in
          let y = Stm.alloc_public ~cls:"Y" 1 in
          init_int x 0 0;
          init_int y 0 0;
          race
            (fun () ->
              h.atomic (fun () ->
                  seti x 0 (geti x 0 + 1);
                  seti y 0 (geti y 0 + 1)))
            (fun () ->
              h.atomic (fun () ->
                  rx := geti x 0;
                  ry := geti y 0))
        in
        let observe () = Printf.sprintf "rx=%d ry=%d" !rx !ry in
        { Explorer.main; observe });
  }

let fig6_rows =
  [
    non_repeatable_read;
    granular_inconsistent_read;
    intermediate_lost_update;
    speculative_lost_update;
    granular_lost_update;
    buffered_writes;
    intermediate_dirty_read;
    speculative_dirty_read;
    overlapped_writes;
  ]

let extras = [ write_read_nr; txn_dirty_read ]
let si_rows = [ write_skew; long_fork; read_only_snapshot ]
let all = fig6_rows @ [ privatization ] @ extras @ si_rows
