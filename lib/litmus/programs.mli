(** The litmus programs of the paper's Figures 1-5.

    Each program is a two-thread race whose anomalous outcome is
    impossible in any sequentially-consistent execution of the program's
    critical sections, yet reachable under particular STM implementations.
    The explorer decides reachability per execution mode, regenerating the
    Figure 6 matrix. *)

type t = {
  name : string;
  figure : string;  (** paper figure, e.g. "3a" *)
  group : string;  (** Figure 6 grouping: "NW-TR", "NW-TW" or "NR-TW" *)
  anomaly : string;  (** human description of the anomalous outcome *)
  needs_granule : int;
      (** versioning granularity required to express the anomaly (2 for
          the Section 2.4 programs, else 1) *)
  is_anomalous : string -> bool;
  build : Modes.harness -> Explorer.instance;
}

val non_repeatable_read : t  (** Figure 2a (NR) *)

val intermediate_lost_update : t  (** Figure 2b (ILU) *)

val intermediate_dirty_read : t  (** Figure 2c (IDR) *)

val speculative_lost_update : t  (** Figure 3a (SLU) *)

val speculative_dirty_read : t  (** Figure 3b (SDR) *)

val overlapped_writes : t  (** Figure 4a (MI, non-txn read vs txn write) *)

val buffered_writes : t  (** Figure 4b (MI, non-txn write vs txn write) *)

val granular_lost_update : t  (** Figure 5a (GLU) *)

val granular_inconsistent_read : t  (** Figure 5b (GIR) *)

val privatization : t
(** Figure 1: the linked-list privatization idiom. Not a Figure 6 row on
    its own (its eager manifestation is SDR, its lazy one MI) but the
    paper's motivating example; also exercised with quiescence. *)

val write_read_nr : t
(** Section 2.1 text: a transaction's write-then-read of the same
    location can fail to read back its own value under eager-weak
    atomicity (a non-transactional write lands in between). *)

val txn_dirty_read : t
(** Section 4's doomed-transaction discussion: a transaction may read
    another transaction's speculative data, but those values must never
    survive into a committed transaction's observations, under any mode
    (an all-"no" row: transactional isolation holds even under weak
    atomicity). *)

val write_skew : t
(** Disjoint write sets guarded by reads of the other side: both
    transactions commit under snapshot isolation (x = y = 1), while
    every serializable backend forbids it. The signature SI litmus. *)

val long_fork : t
(** Two independent writers, two read-only observers seeing them in
    opposite orders. Admitted by the SI oracle (PSI shape) but
    unreachable at runtime: the global commit clock totally orders the
    writers. An all-"no" row. *)

val read_only_snapshot : t
(** A read-only transaction must never observe a torn two-location
    invariant, under any backend or isolation level. *)

val extras : t list
(** The two extra litmus programs above. *)

val si_rows : t list
(** The snapshot-isolation litmus programs: write skew, long fork,
    read-only snapshot. *)

val fig6_rows : t list
(** The nine programs backing the nine Figure 6 anomaly rows, in the
    paper's row order. *)

val all : t list
