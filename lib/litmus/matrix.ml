type cell = {
  program : Programs.t;
  mode : Modes.t;
  expected : bool;
  observed : bool;
  runs : int;
  truncated : bool;
}

(* Figure 6, transcribed. Columns: eager-weak, lazy-weak, locks,
   strong-eager, strong-lazy (the paper's single Strong column covers
   both versionings). *)
let expected_fig6 =
  [
    ("nr", [ true; true; true; false; false ]);
    ("gir", [ false; true; false; false; false ]);
    ("ilu", [ true; true; true; false; false ]);
    ("slu", [ true; false; false; false; false ]);
    ("glu", [ true; true; false; false; false ]);
    ("mi-ww", [ false; true; false; false; false ]);
    ("idr", [ true; false; true; false; false ]);
    ("sdr", [ true; false; false; false; false ]);
    ("mi-rw", [ false; true; false; false; false ]);
  ]

(* Extra litmus rows beyond Figure 6 (same column order). *)
let expected_extras =
  [
    (* 2.1 text: write-then-read; lazy reads its own buffer, so only
       eager-weak and unsynchronized locks exhibit it *)
    ("nr-wr", [ true; false; true; false; false ]);
    (* Section 4: committed transactions never keep dirty reads *)
    ("txn-dirty", [ false; false; false; false; false ]);
    (* The SI litmus programs are all-transactional (or read-only), so
       every serializable single-version mode keeps them clean *)
    ("write-skew", [ false; false; false; false; false ]);
    ("long-fork", [ false; false; false; false; false ]);
    ("ro-snapshot", [ false; false; false; false; false ]);
  ]

(* The multi-version columns, in Modes.all_mvcc order: weak-mvcc,
   weak-mvcc-si, strong-mvcc, strong-mvcc-si.

   Under weak mvcc a non-transactional store is a plain field write: it
   neither installs a version nor bumps the version stamp, so snapshot
   reads and first-committer-wins are both blind to it (nr, gir, ilu,
   glu). Strong barriers route those stores through the versioned
   one-store commit, closing all four. Aborts never write (buffered
   updates are simply dropped), so the speculative rows are clean even
   at weak atomicity, and commit write-back is a single scheduler-atomic
   section, so mi-rw's publication order is safe. mi-ww and
   privatization are the racing-commit shapes: serializable mvcc kills
   the racing transaction by commit-time read validation (it read the
   privatized pointer), while snapshot isolation - write sets are
   disjoint - lets it commit and clobber the privatizer's store.
   write-skew is the signature SI row; long-fork is admitted by the SI
   oracle but unreachable under a single global commit clock. *)
let expected_mvcc =
  [
    ("nr", [ true; true; false; false ]);
    ("gir", [ true; true; false; false ]);
    ("ilu", [ true; true; false; false ]);
    ("slu", [ false; false; false; false ]);
    ("glu", [ true; true; false; false ]);
    ("mi-ww", [ false; true; false; false ]);
    ("idr", [ false; false; false; false ]);
    ("sdr", [ false; false; false; false ]);
    ("mi-rw", [ false; false; false; false ]);
    ("nr-wr", [ false; false; false; false ]);
    ("txn-dirty", [ false; false; false; false ]);
    ("privatization", [ false; true; false; true ]);
    ("write-skew", [ false; true; false; true ]);
    ("long-fork", [ false; false; false; false ]);
    ("ro-snapshot", [ false; false; false; false ]);
  ]

let expectation program mode =
  (* Timestamp validation is a performance scheme, not an isolation
     change: its columns inherit the base modes' expectations. *)
  let mode =
    match mode with
    | Modes.Weak_ts v -> Modes.Weak v
    | Modes.Strong_ts v -> Modes.Strong v
    | m -> m
  in
  let lookup table modes =
    match List.assoc_opt program.Programs.name table with
    | Some row ->
        List.find_index (fun m -> m = mode) modes |> Option.map (List.nth row)
    | None -> None
  in
  match lookup (expected_fig6 @ expected_extras) Modes.all_fig6 with
  | Some e -> e
  | None -> (
      match lookup expected_mvcc Modes.all_mvcc with
      | Some e -> e
      | None -> (
          (* privatization under the classic columns: anomalous under
             both single-version weak modes only *)
          match mode with
          | Modes.Weak Stm_core.Config.Mvcc -> false
          | Modes.Weak _ -> true
          | Modes.Locks | Modes.Strong _ | Modes.Weak_quiesce _
          | Modes.Snapshot_weak | Modes.Snapshot_strong | Modes.Weak_ts _
          | Modes.Strong_ts _ ->
              false))

let run_cell ?(preemption_bound = 2) ?(max_runs = 6000) ?granule_override ?cm
    program mode =
  let granule =
    match granule_override with
    | Some g -> g
    | None -> program.Programs.needs_granule
  in
  let cfg = Modes.config ~granule mode in
  (* contention management must not change which anomalies are
     expressible, so a policy override reuses every expectation *)
  let cfg =
    match cm with None -> cfg | Some p -> Stm_core.Config.with_cm p cfg
  in
  let make () = program.Programs.build (Modes.harness mode cfg) in
  let e =
    Explorer.explore ~preemption_bound ~max_runs
      ~stop_when:program.Programs.is_anomalous ~cfg ~make ()
  in
  {
    program;
    mode;
    expected = expectation program mode;
    observed = Explorer.observed e program.Programs.is_anomalous;
    runs = e.Explorer.runs;
    truncated = e.Explorer.truncated;
  }

let fig6 ?preemption_bound ?max_runs ?cm () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_fig6)
    Programs.fig6_rows

let extras_rows ?preemption_bound ?max_runs ?cm () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_fig6)
    Programs.extras

let si_rows ?preemption_bound ?max_runs ?cm () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        (Modes.all_fig6 @ Modes.all_mvcc))
    Programs.si_rows

let mvcc_rows ?preemption_bound ?max_runs ?cm ?(programs = Programs.all) () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_mvcc)
    programs

let timestamp_rows ?preemption_bound ?max_runs ?cm
    ?(programs = Programs.fig6_rows) () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_timestamp)
    programs

let privatization_row ?preemption_bound ?max_runs ?cm () =
  let modes =
    Modes.all_fig6
    @ [ Modes.Weak_quiesce Stm_core.Config.Eager;
        Modes.Weak_quiesce Stm_core.Config.Lazy ]
  in
  List.map
    (fun mode ->
      run_cell ?preemption_bound ?max_runs ?cm Programs.privatization mode)
    modes

let run_cell_pct ?(runs = 2000) ?(depth = 3) ?(seed = 1) ?granule_override ?cm
    program mode =
  let granule =
    match granule_override with
    | Some g -> g
    | None -> program.Programs.needs_granule
  in
  let cfg = Modes.config ~granule mode in
  let cfg =
    match cm with None -> cfg | Some p -> Stm_core.Config.with_cm p cfg
  in
  let make () = program.Programs.build (Modes.harness mode cfg) in
  let e =
    Explorer.explore_pct ~runs ~depth ~seed
      ~stop_when:program.Programs.is_anomalous ~cfg ~make ()
  in
  {
    program;
    mode;
    expected = expectation program mode;
    observed = Explorer.observed e program.Programs.is_anomalous;
    runs = e.Explorer.runs;
    truncated = e.Explorer.truncated;
  }

let all_match cells = List.for_all (fun c -> c.expected = c.observed) cells

(* ------------------------------------------------------------------ *)
(* DPOR certification                                                  *)
(* ------------------------------------------------------------------ *)

type certified = {
  enum : cell;
  dpor : cell;
  complete : bool;
  races : int;
}

let certify_cell ?(preemption_bound = 2) ?(max_runs = 40_000) ?granule_override
    ?cm program mode =
  let granule =
    match granule_override with
    | Some g -> g
    | None -> program.Programs.needs_granule
  in
  let cfg = Modes.config ~granule mode in
  let cfg =
    match cm with None -> cfg | Some p -> Stm_core.Config.with_cm p cfg
  in
  let make () = program.Programs.build (Modes.harness mode cfg) in
  let mk (e : Explorer.exploration) =
    {
      program;
      mode;
      expected = expectation program mode;
      observed = Explorer.observed e program.Programs.is_anomalous;
      runs = e.Explorer.runs;
      truncated = e.Explorer.truncated;
    }
  in
  let enum_e =
    Explorer.explore ~preemption_bound ~max_runs
      ~stop_when:program.Programs.is_anomalous ~cfg ~make ()
  in
  let d =
    Explorer.explore_dpor ~preemption_bound ~max_runs
      ~stop_when:program.Programs.is_anomalous ~cfg ~make ()
  in
  {
    enum = mk enum_e;
    dpor = mk d.Explorer.exploration;
    complete = d.Explorer.complete;
    races = d.Explorer.races;
  }

(* A cell certifies when the two engines agree on the verdict and the
   certification is as strong as the enumerative baseline's: a "yes" is
   witness-based (completeness immaterial), a "no" must come from a
   complete DPOR walk whenever the baseline's own walk finished (the
   BPOR cross-check: any behavior the bounded reduction could drop would
   surface here as a flip or as an incompleteness the baseline lacks). *)
let cell_certified c =
  c.dpor.observed = c.enum.observed
  && (c.dpor.observed || c.complete || c.enum.truncated)

let all_certified cs = List.for_all cell_certified cs

(* Every cell the matrix suites cover, in suite order, each paired with
   the preemption bound its expected witness needs: [bound] everywhere
   except the multi-version columns, whose snapshot-isolation
   privatization race takes three preemptions (park the racing committer
   mid-transaction, run the privatizer through its first plain read, let
   the commit land between the two reads). The full certification sweep
   of [stm_bench --explore dpor] and the nightly CI job re-derive each
   cell with both engines at its listed bound. *)
let full_matrix ?(bound = 2) () =
  let pairs b programs modes =
    List.concat_map
      (fun program -> List.map (fun mode -> (program, mode, b)) modes)
      programs
  in
  let mvcc_bound = max bound 3 in
  pairs bound Programs.fig6_rows Modes.all_fig6
  @ pairs bound Programs.extras Modes.all_fig6
  @ pairs bound
      [ Programs.privatization ]
      (Modes.all_fig6
      @ [
          Modes.Weak_quiesce Stm_core.Config.Eager;
          Modes.Weak_quiesce Stm_core.Config.Lazy;
        ])
  @ pairs bound Programs.si_rows Modes.all_fig6
  @ pairs mvcc_bound Programs.si_rows Modes.all_mvcc
  @ pairs mvcc_bound Programs.all Modes.all_mvcc
  @ pairs bound Programs.fig6_rows Modes.all_timestamp

let pp_certified ppf c =
  let verdict b = if b then "yes" else "no" in
  Fmt.pf ppf "%-14s %-14s enum=%-3s/%-6d dpor=%-3s/%-6d %s races=%d%s"
    c.enum.program.Programs.name
    (Modes.name c.enum.mode)
    (verdict c.enum.observed) c.enum.runs (verdict c.dpor.observed) c.dpor.runs
    (if c.complete then "complete" else "bounded ")
    c.races
    (if cell_certified c then "" else "  FLIP")

let pp_cell ppf c =
  let mark = if c.observed then "yes" else "no " in
  let ok = if c.expected = c.observed then ' ' else '!' in
  Fmt.pf ppf "%s%c" mark ok

let pp_table ppf cells =
  (* group rows by program, in first-appearance order *)
  let progs =
    List.fold_left
      (fun acc c ->
        if List.exists (fun p -> p.Programs.name = c.program.Programs.name) acc
        then acc
        else acc @ [ c.program ])
      [] cells
  in
  let modes =
    List.fold_left
      (fun acc c -> if List.mem c.mode acc then acc else acc @ [ c.mode ])
      [] cells
  in
  Fmt.pf ppf "%-8s %-6s" "anomaly" "fig";
  List.iter (fun m -> Fmt.pf ppf " %-14s" (Modes.name m)) modes;
  Fmt.pf ppf "@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-8s %-6s" p.Programs.name p.Programs.figure;
      List.iter
        (fun m ->
          match
            List.find_opt
              (fun c ->
                c.program.Programs.name = p.Programs.name && c.mode = m)
              cells
          with
          | Some c -> Fmt.pf ppf " %-14s" (Fmt.str "%a" pp_cell c)
          | None -> Fmt.pf ppf " %-14s" "-")
        modes;
      Fmt.pf ppf "@.")
    progs
