type cell = {
  program : Programs.t;
  mode : Modes.t;
  expected : bool;
  observed : bool;
  runs : int;
  truncated : bool;
}

(* Figure 6, transcribed. Columns: eager-weak, lazy-weak, locks,
   strong-eager, strong-lazy (the paper's single Strong column covers
   both versionings). *)
let expected_fig6 =
  [
    ("nr", [ true; true; true; false; false ]);
    ("gir", [ false; true; false; false; false ]);
    ("ilu", [ true; true; true; false; false ]);
    ("slu", [ true; false; false; false; false ]);
    ("glu", [ true; true; false; false; false ]);
    ("mi-ww", [ false; true; false; false; false ]);
    ("idr", [ true; false; true; false; false ]);
    ("sdr", [ true; false; false; false; false ]);
    ("mi-rw", [ false; true; false; false; false ]);
  ]

(* Extra litmus rows beyond Figure 6 (same column order). *)
let expected_extras =
  [
    (* 2.1 text: write-then-read; lazy reads its own buffer, so only
       eager-weak and unsynchronized locks exhibit it *)
    ("nr-wr", [ true; false; true; false; false ]);
    (* Section 4: committed transactions never keep dirty reads *)
    ("txn-dirty", [ false; false; false; false; false ]);
  ]

let expectation program mode =
  match
    List.assoc_opt program.Programs.name (expected_fig6 @ expected_extras)
  with
  | Some row -> (
      match
        List.find_index (fun m -> m = mode) Modes.all_fig6
        |> Option.map (List.nth row)
      with
      | Some e -> e
      | None -> false)
  | None -> (
      (* privatization: anomalous under both weak modes only *)
      match mode with
      | Modes.Weak _ -> true
      | Modes.Locks | Modes.Strong _ | Modes.Weak_quiesce _ -> false)

let run_cell ?(preemption_bound = 2) ?(max_runs = 6000) ?granule_override ?cm
    program mode =
  let granule =
    match granule_override with
    | Some g -> g
    | None -> program.Programs.needs_granule
  in
  let cfg = Modes.config ~granule mode in
  (* contention management must not change which anomalies are
     expressible, so a policy override reuses every expectation *)
  let cfg =
    match cm with None -> cfg | Some p -> Stm_core.Config.with_cm p cfg
  in
  let make () = program.Programs.build (Modes.harness mode cfg) in
  let e =
    Explorer.explore ~preemption_bound ~max_runs
      ~stop_when:program.Programs.is_anomalous ~cfg ~make ()
  in
  {
    program;
    mode;
    expected = expectation program mode;
    observed = Explorer.observed e program.Programs.is_anomalous;
    runs = e.Explorer.runs;
    truncated = e.Explorer.truncated;
  }

let fig6 ?preemption_bound ?max_runs ?cm () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_fig6)
    Programs.fig6_rows

let extras_rows ?preemption_bound ?max_runs ?cm () =
  List.concat_map
    (fun program ->
      List.map
        (fun mode -> run_cell ?preemption_bound ?max_runs ?cm program mode)
        Modes.all_fig6)
    Programs.extras

let privatization_row ?preemption_bound ?max_runs ?cm () =
  let modes =
    Modes.all_fig6
    @ [ Modes.Weak_quiesce Stm_core.Config.Eager;
        Modes.Weak_quiesce Stm_core.Config.Lazy ]
  in
  List.map
    (fun mode ->
      run_cell ?preemption_bound ?max_runs ?cm Programs.privatization mode)
    modes

let all_match cells = List.for_all (fun c -> c.expected = c.observed) cells

let pp_cell ppf c =
  let mark = if c.observed then "yes" else "no " in
  let ok = if c.expected = c.observed then ' ' else '!' in
  Fmt.pf ppf "%s%c" mark ok

let pp_table ppf cells =
  (* group rows by program, in first-appearance order *)
  let progs =
    List.fold_left
      (fun acc c ->
        if List.exists (fun p -> p.Programs.name = c.program.Programs.name) acc
        then acc
        else acc @ [ c.program ])
      [] cells
  in
  let modes =
    List.fold_left
      (fun acc c -> if List.mem c.mode acc then acc else acc @ [ c.mode ])
      [] cells
  in
  Fmt.pf ppf "%-8s %-6s" "anomaly" "fig";
  List.iter (fun m -> Fmt.pf ppf " %-14s" (Modes.name m)) modes;
  Fmt.pf ppf "@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-8s %-6s" p.Programs.name p.Programs.figure;
      List.iter
        (fun m ->
          match
            List.find_opt
              (fun c ->
                c.program.Programs.name = p.Programs.name && c.mode = m)
              cells
          with
          | Some c -> Fmt.pf ppf " %-14s" (Fmt.str "%a" pp_cell c)
          | None -> Fmt.pf ppf " %-14s" "-")
        modes;
      Fmt.pf ppf "@.")
    progs
