open Stm_runtime

type exploration = {
  outcomes : (string * int) list;
  runs : int;
  truncated : bool;
  livelocks : int;
  deadlocks : int;
}

type instance = { main : unit -> unit; observe : unit -> string }

(* One scheduling decision observed during a run. *)
type decision = {
  chosen : Sched.tid;
  alts : Sched.tid list;  (* runnable alternatives not chosen *)
}

type state = {
  mutable outcome_tbl : (string, int) Hashtbl.t;
  mutable runs : int;
  mutable livelocks : int;
  mutable deadlocks : int;
  max_runs : int;
  mutable truncated : bool;
}

exception Search_done

let record_outcome tbl outcome =
  Hashtbl.replace tbl outcome
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl outcome))

(* Execute one schedule. [prefix] forces the first choices; afterwards the
   default policy applies (stay on the current thread, rotate after the
   fairness window). Returns the decision trace and the outcome string. *)
let execute st ~max_steps ~fairness_window ~cfg ~make prefix =
  if st.runs >= st.max_runs then begin
    st.truncated <- true;
    raise Search_done
  end;
  st.runs <- st.runs + 1;
  let inst = make () in
  let trace = ref [] in
  let ndecisions = ref 0 in
  let consecutive = ref 0 in
  let last_default = ref (-1) in
  let choose current runnables =
    let i = !ndecisions in
    incr ndecisions;
    let default =
      if List.mem current runnables then
        if !last_default = current && !consecutive >= fairness_window then
          (* rotate: next runnable after current, wrapping *)
          match List.filter (fun t -> t > current) runnables with
          | t :: _ -> t
          | [] -> List.hd runnables
        else current
      else List.hd runnables
    in
    let chosen =
      if i < Array.length prefix then prefix.(i) else default
    in
    (* keep fairness bookkeeping against actually-chosen thread *)
    if chosen = !last_default then incr consecutive
    else begin
      last_default := chosen;
      consecutive := 1
    end;
    let alts = List.filter (fun t -> t <> chosen) runnables in
    trace := { chosen; alts } :: !trace;
    chosen
  in
  let result =
    Stm_core.Stm.run ~policy:(Sched.Controlled choose) ~max_steps ~cfg
      inst.main
  in
  let sched_result = fst result in
  let outcome =
    match sched_result.Sched.status with
    | Sched.Completed -> (
        match sched_result.Sched.exns with
        | [] -> inst.observe ()
        | (_, ex) :: _ -> "<exn:" ^ Printexc.to_string ex ^ ">")
    | Sched.Deadlock _ -> "<deadlock>"
    | Sched.Fuel_exhausted -> "<livelock>"
  in
  (* A fuel-exhausted schedule is accounted in [livelocks] only: it has
     no final state, so recording "<livelock>" as an outcome would break
     [runs = livelocks + sum of outcome counts]. Deadlocks do reach a
     final (stuck) state and stay in the outcome table. *)
  (match sched_result.Sched.status with
  | Sched.Deadlock _ ->
      st.deadlocks <- st.deadlocks + 1;
      record_outcome st.outcome_tbl outcome
  | Sched.Fuel_exhausted -> st.livelocks <- st.livelocks + 1
  | Sched.Completed -> record_outcome st.outcome_tbl outcome);
  (Array.of_list (List.rev !trace), outcome)

let explore ?(preemption_bound = 2) ?(max_runs = 40_000) ?(max_steps = 60_000)
    ?(fairness_window = 64) ?stop_when ~cfg ~make () =
  let st =
    {
      outcome_tbl = Hashtbl.create 16;
      runs = 0;
      livelocks = 0;
      deadlocks = 0;
      max_runs;
      truncated = false;
    }
  in
  let execute prefix =
    let trace, outcome = execute st ~max_steps ~fairness_window ~cfg ~make prefix in
    (match stop_when with
    | Some pred when pred outcome -> raise Search_done
    | Some _ | None -> ());
    (trace, outcome)
  in
  (* DFS over the scheduling tree. [prefix] replays forced choices;
     [npre] counts injected (non-default) choices in the prefix. *)
  let rec dfs prefix npre =
    let trace, _outcome = execute prefix in
    if npre < preemption_bound then
      let start = Array.length prefix in
      for i = start to Array.length trace - 1 do
        List.iter
          (fun alt ->
            let prefix' = Array.make (i + 1) 0 in
            Array.blit (Array.map (fun d -> d.chosen) trace) 0 prefix' 0 i;
            prefix'.(i) <- alt;
            dfs prefix' (npre + 1))
          trace.(i).alts
      done
  in
  (try dfs [||] 0 with Search_done -> ());
  let outcomes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.outcome_tbl []
    |> List.sort compare
  in
  {
    outcomes;
    runs = st.runs;
    truncated = st.truncated;
    livelocks = st.livelocks;
    deadlocks = st.deadlocks;
  }

let observed e pred = List.exists (fun (o, _) -> pred o) e.outcomes

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction                                     *)
(* ------------------------------------------------------------------ *)

(* Backtracking at races instead of at every decision (Flanagan &
   Godefroid, POPL 2005), with sleep sets pruning the redundant
   interleavings that race-directed backtracking still generates.

   The unit of reordering is the {e scheduler segment}: everything one
   thread executes between two consecutive scheduling decisions. The
   runtime reports every access to cross-thread-visible state through
   {!Stm_runtime.Footprint}; the engine aggregates them into one
   footprint per segment. Two segments are dependent when they belong
   to the same thread, share a granule at least one of them writes, or
   one enables the other (a thread becomes runnable right after a
   segment: spawn, join completion, lock hand-off, quiescence wake).
   For each executed schedule the engine computes the happens-before
   relation with vector clocks; every pair of conflicting segments not
   already ordered through intermediaries is a race, and the reversal
   is scheduled by inserting the racing thread into the backtrack set
   of the earlier segment's pre-state. *)

type dpor = { exploration : exploration; complete : bool; races : int }

(* A segment footprint: granule id -> strongest access level.
   2 = write, 1 = read, 0 = futile spin-wait re-read
   ({!Stm_runtime.Footprint.Spin_read}). A write is {e dependent} on all
   three (it must be ordered against them for the happens-before pass),
   but only write/write and write/read pairs are {e races} worth
   reversing: flipping a write against a futile spin iteration merely
   changes how often the waiter re-checks before the same exit — the
   spin-assume reduction of await loops. *)
type fp = (int, int) Hashtbl.t

let level = function
  | Footprint.Spin_read -> 0
  | Footprint.Read -> 1
  | Footprint.Write -> 2

let fp_add (f : fp) oid lv =
  match Hashtbl.find_opt f oid with
  | None -> Hashtbl.add f oid lv
  | Some l -> if lv > l then Hashtbl.replace f oid lv

(* Dependency: a shared granule at least one side writes (spin reads
   included — ordering matters even where reversal is pointless). *)
let fp_conflicts (a : fp) (b : fp) =
  let small, big =
    if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a)
  in
  try
    Hashtbl.iter
      (fun oid lv ->
        match Hashtbl.find_opt big oid with
        | Some lv' when lv = 2 || lv' = 2 -> raise Exit
        | Some _ | None -> ())
      small;
    false
  with Exit -> true

(* One node of the schedule tree: the pre-state of segment [i], i.e.
   the state in which scheduling decision [i] is taken. Determinism of
   the simulation means the prefix of choices identifies the state, so
   the node can cache what every visit re-derives identically. *)
type node = {
  n_runnables : Sched.tid list;
  n_default : Sched.tid;  (* what the default policy picks here *)
  mutable n_chosen : Sched.tid;  (* choice of the branch being explored *)
  n_done : (Sched.tid, fp) Hashtbl.t;
      (* explored choices -> first-segment footprint of that choice *)
  mutable n_backtrack : Sched.tid list;  (* pending race reversals *)
  n_sleep : (Sched.tid * fp) list;
      (* threads whose next segment (with that footprint) is already
         covered by a sibling branch of an ancestor *)
  n_preemptions : int;  (* non-default choices among strict ancestors *)
}

(* Per-run record of one decision, before it has a node. *)
type rdec = {
  r_chosen : Sched.tid;
  r_default : Sched.tid;
  r_runnables : Sched.tid list;
  r_sleep : (Sched.tid * fp) list;  (* entry sleep set at this decision *)
}

(* Execute one schedule under the footprint sink. [prefix] replays the
   current branch; free decisions follow the same default policy as
   [execute] (stay, rotate after the fairness window), except that with
   sleep sets on, a default whose next step is asleep is swapped for a
   non-sleeping runnable. Returns the decisions (capped at [horizon]),
   their footprints, the scheduler status and the outcome. *)
let execute_dpor st ~max_steps ~fairness_window ~cfg ~make ~use_sleep
    ~(nodes : node array) ~nnodes ~horizon prefix =
  if st.runs >= st.max_runs then begin
    st.truncated <- true;
    raise Search_done
  end;
  st.runs <- st.runs + 1;
  Sim_mutex.reset_ids ();
  let inst = make () in
  let decs = ref [] in
  let fps = ref [] in
  let ndecisions = ref 0 in
  let consecutive = ref 0 in
  let last_default = ref (-1) in
  let cur_fp = ref (Hashtbl.create 8 : fp) in
  let cur_sleep = ref [] in
  let recording = ref true in
  let choose current runnables =
    let i = !ndecisions in
    incr ndecisions;
    if i >= horizon then begin
      (* beyond the analysis horizon: stop recording (and sleeping) and
         let the plain default policy finish or burn out the run *)
      if !recording then begin
        recording := false;
        (* close the last recorded segment so decisions and footprints
           stay in lockstep *)
        fps := !cur_fp :: !fps;
        cur_sleep := []
      end;
      let default =
        if List.mem current runnables then
          if !last_default = current && !consecutive >= fairness_window then
            match List.filter (fun t -> t > current) runnables with
            | t :: _ -> t
            | [] -> List.hd runnables
          else current
        else List.hd runnables
      in
      if default = !last_default then incr consecutive
      else begin
        last_default := default;
        consecutive := 1
      end;
      default
    end
    else begin
      (* close the previous segment; the pre-first-decision preamble is
         discarded (it is a fixed prefix of every schedule) *)
      let prev_fp = !cur_fp in
      if i > 0 then fps := prev_fp :: !fps;
      cur_fp := Hashtbl.create 8;
      (* wake sleepers whose pending step conflicts with the segment
         that just ran *)
      if use_sleep && i > 0 then
        cur_sleep :=
          List.filter (fun (_, f) -> not (fp_conflicts f prev_fp)) !cur_sleep;
      let entry_sleep = !cur_sleep in
      let default =
        let policy_default =
          if List.mem current runnables then
            if !last_default = current && !consecutive >= fairness_window
            then
              match List.filter (fun t -> t > current) runnables with
              | t :: _ -> t
              | [] -> List.hd runnables
            else current
          else List.hd runnables
        in
        if use_sleep && List.mem_assoc policy_default entry_sleep then
          (* the policy default's next step is covered by an explored
             sibling: divert to a non-sleeping runnable. The divert is
             the effective default — it is not a preemption the search
             chose, so it is not charged against the bound. *)
          match
            List.filter
              (fun t -> not (List.mem_assoc t entry_sleep))
              runnables
          with
          | t :: _ -> t
          | [] -> policy_default
        else policy_default
      in
      let chosen = if i < Array.length prefix then prefix.(i) else default in
      if chosen = !last_default then incr consecutive
      else begin
        last_default := chosen;
        consecutive := 1
      end;
      (* siblings explored earlier from this node go to sleep for the
         branch below [chosen] *)
      if use_sleep then begin
        let fresh =
          if i < nnodes then
            Hashtbl.fold
              (fun t f acc ->
                if t <> chosen && not (List.mem_assoc t entry_sleep) then
                  (t, f) :: acc
                else acc)
              nodes.(i).n_done []
          else []
        in
        cur_sleep :=
          fresh @ List.filter (fun (t, _) -> t <> chosen) entry_sleep
      end;
      decs :=
        {
          r_chosen = chosen;
          r_default = default;
          r_runnables = runnables;
          r_sleep = entry_sleep;
        }
        :: !decs;
      chosen
    end
  in
  Footprint.set_sink
    (Some (fun oid k -> if !recording then fp_add !cur_fp oid (level k)));
  let result =
    Fun.protect
      ~finally:(fun () -> Footprint.set_sink None)
      (fun () ->
        Stm_core.Stm.run ~policy:(Sched.Controlled choose) ~max_steps ~cfg
          inst.main)
  in
  (* close the final segment *)
  if !ndecisions > 0 && !recording then fps := !cur_fp :: !fps;
  let sched_result = fst result in
  let outcome =
    match sched_result.Sched.status with
    | Sched.Completed -> (
        match sched_result.Sched.exns with
        | [] -> inst.observe ()
        | (_, ex) :: _ -> "<exn:" ^ Printexc.to_string ex ^ ">")
    | Sched.Deadlock _ -> "<deadlock>"
    | Sched.Fuel_exhausted -> "<livelock>"
  in
  (match sched_result.Sched.status with
  | Sched.Deadlock _ ->
      st.deadlocks <- st.deadlocks + 1;
      record_outcome st.outcome_tbl outcome
  | Sched.Fuel_exhausted -> st.livelocks <- st.livelocks + 1
  | Sched.Completed -> record_outcome st.outcome_tbl outcome);
  ( Array.of_list (List.rev !decs),
    Array.of_list (List.rev !fps),
    sched_result.Sched.status,
    !ndecisions,
    outcome )

let explore_dpor ?preemption_bound ?(max_runs = 40_000) ?(max_steps = 60_000)
    ?(fairness_window = 64) ?(analysis_horizon = 2_000) ?stop_when ~cfg ~make
    () =
  let st =
    {
      outcome_tbl = Hashtbl.create 16;
      runs = 0;
      livelocks = 0;
      deadlocks = 0;
      max_runs;
      truncated = false;
    }
  in
  (* Sleep sets prune the sibling redundancy that race-directed
     backtracking still generates. Combining any partial-order pruning
     with a preemption bound can in principle drop a behavior whose
     reduced-tree representative is over budget (the BPOR pitfall, cf.
     Coons et al., OOPSLA 2013) — which is why certification always
     cross-checks bounded-DPOR verdicts against the enumerative
     baseline (see Matrix.certify and the CI gate). *)
  let use_sleep = true in
  let races = ref 0 in
  let complete = ref true in
  (* growable stack of schedule-tree nodes along the current branch *)
  let nodes = ref [||] in
  let nnodes = ref 0 in
  let push_node nd =
    if !nnodes = Array.length !nodes then begin
      let bigger = Array.make (max 64 (2 * Array.length !nodes)) nd in
      Array.blit !nodes 0 bigger 0 !nnodes;
      nodes := bigger
    end;
    !nodes.(!nnodes) <- nd;
    incr nnodes
  in
  let bound_ok nd t =
    match preemption_bound with
    | None -> true
    | Some b ->
        nd.n_preemptions + (if t <> nd.n_default then 1 else 0) <= b
  in
  (* Insert the reversal of race (i, j): schedule [tid j] at node [i] if
     it is enabled there, otherwise try every enabled thread. Choices
     already explored, pending, or asleep at [i] are covered. *)
  let insert_backtrack (decs : rdec array) i j =
    let nd = !nodes.(i) in
    let covered t =
      Hashtbl.mem nd.n_done t
      || List.mem t nd.n_backtrack
      || List.mem_assoc t nd.n_sleep
    in
    let add t = if not (covered t) then nd.n_backtrack <- t :: nd.n_backtrack in
    let tj = decs.(j).r_chosen in
    if List.mem tj nd.n_runnables then add tj
    else List.iter add nd.n_runnables
  in
  (* Vector-clock pass over one run's segments. Dependent = same thread
     (program order), enabledness edge, or footprint conflict; each
     conflicting pair not already ordered is an immediate race. Races
     are counted and reversed only for [j >= start]: earlier pairs were
     analyzed when their segments first executed. *)
  let analyze (decs : rdec array) (fps : fp array) ~start =
    let m = Array.length decs in
    if m > 0 then begin
      let nt =
        1
        + Array.fold_left
            (fun acc d ->
              List.fold_left (fun a t -> max a t) (max acc d.r_chosen)
                d.r_runnables)
            0 decs
      in
      (* enabledness edges: a thread runnable at decision [i+1] but not
         at [i] was enabled by segment [i]; the edge targets that
         thread's next segment *)
      let segs_of = Array.make nt [] in
      for j = m - 1 downto 0 do
        segs_of.(decs.(j).r_chosen) <- j :: segs_of.(decs.(j).r_chosen)
      done;
      let cursor = Array.copy segs_of in
      let edges_into = Array.make m [] in
      for i = 0 to m - 2 do
        List.iter
          (fun t ->
            if not (List.mem t decs.(i).r_runnables) then begin
              let rec adv = function
                | s :: rest when s <= i -> adv rest
                | l -> l
              in
              cursor.(t) <- adv cursor.(t);
              match cursor.(t) with
              | s :: _ -> edges_into.(s) <- i :: edges_into.(s)
              | [] -> ()
            end)
          decs.(i + 1).r_runnables
      done;
      (* per-segment local index within its thread (1-based) *)
      let local = Array.make m 0 in
      let tindex = Array.make nt 0 in
      for j = 0 to m - 1 do
        let t = decs.(j).r_chosen in
        tindex.(t) <- tindex.(t) + 1;
        local.(j) <- tindex.(t)
      done;
      (* conflict candidates via a per-granule access index *)
      let by_oid : (int, (int * int) list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let clocks = Array.make m [||] in
      let last_seg = Array.make nt (-1) in
      for j = 0 to m - 1 do
        let t = decs.(j).r_chosen in
        let c = Array.make nt 0 in
        let join src =
          Array.iteri (fun u v -> if v > c.(u) then c.(u) <- v) clocks.(src)
        in
        if last_seg.(t) >= 0 then join last_seg.(t);
        List.iter join edges_into.(j);
        (* conflicting earlier segments, nearest first so that a chain
           through a later conflict orders the earlier ones before they
           are tested (only immediate races get reversed) *)
        (* candidate -> is the pair a reversible race (write/write or
           write/read on some shared granule) rather than merely
           ordering-relevant (write/spin-read)? *)
        let cands = Hashtbl.create 8 in
        Hashtbl.iter
          (fun oid lv ->
            match Hashtbl.find_opt by_oid oid with
            | None -> ()
            | Some l ->
                List.iter
                  (fun (i, lvi) ->
                    if lv = 2 || lvi = 2 then
                      let race = lv + lvi >= 3 in
                      match Hashtbl.find_opt cands i with
                      | Some true -> ()
                      | Some false ->
                          if race then Hashtbl.replace cands i true
                      | None -> Hashtbl.add cands i race)
                  !l)
          fps.(j);
        let sorted =
          Hashtbl.fold (fun i race acc -> (i, race) :: acc) cands []
          |> List.sort (fun (a, _) (b, _) -> compare b a)
        in
        List.iter
          (fun (i, race) ->
            if race && c.(decs.(i).r_chosen) < local.(i) && j >= start
            then begin
              (* unordered reversible pair: an immediate race *)
              incr races;
              insert_backtrack decs i j
            end;
            join i)
          sorted;
        c.(t) <- local.(j);
        clocks.(j) <- c;
        last_seg.(t) <- j;
        Hashtbl.iter
          (fun oid lv ->
            match Hashtbl.find_opt by_oid oid with
            | Some l -> l := (j, lv) :: !l
            | None -> Hashtbl.add by_oid oid (ref [ (j, lv) ]))
          fps.(j)
      done
    end
  in
  let run_branch prefix =
    let decs, fps, status, ndec, outcome =
      execute_dpor st ~max_steps ~fairness_window ~cfg ~make ~use_sleep
        ~nodes:!nodes ~nnodes:!nnodes ~horizon:analysis_horizon prefix
    in
    let m = Array.length decs in
    (* a completed run outrunning the horizon leaves races unanalyzed;
       a fuel-exhausted one is an unfair spin whose suffix adds no new
       final state (documented caveat) *)
    if status = Sched.Completed && ndec > m then complete := false;
    let base = !nnodes in
    (* the flipped node's new branch enters its done set *)
    if base > 0 && m >= base then begin
      let k = base - 1 in
      Hashtbl.replace !nodes.(k).n_done decs.(k).r_chosen fps.(k)
    end;
    for i = base to m - 1 do
      let d = decs.(i) in
      let preempt =
        if i = 0 then 0
        else
          let p = !nodes.(i - 1) in
          p.n_preemptions + (if p.n_chosen <> p.n_default then 1 else 0)
      in
      push_node
        {
          n_runnables = d.r_runnables;
          n_default = d.r_default;
          n_chosen = d.r_chosen;
          n_done =
            (let h = Hashtbl.create 4 in
             Hashtbl.add h d.r_chosen fps.(i);
             h);
          n_backtrack = [];
          n_sleep = d.r_sleep;
          n_preemptions = preempt;
        }
    done;
    analyze decs fps ~start:(max 0 (base - 1));
    match stop_when with
    | Some pred when pred outcome ->
        complete := false;
        raise Search_done
    | Some _ | None -> ()
  in
  (* pick the deepest node with a usable pending reversal; covered or
     over-budget candidates are dropped for good (they can never become
     eligible: a node's sleep, done-by-then and preemption count are
     fixed) *)
  let rec select i =
    if i < 0 then None
    else
      let nd = !nodes.(i) in
      let rec pick = function
        | [] ->
            nd.n_backtrack <- [];
            None
        | t :: rest ->
            if
              Hashtbl.mem nd.n_done t
              || List.mem_assoc t nd.n_sleep
              || not (bound_ok nd t)
            then pick rest
            else begin
              nd.n_backtrack <- rest;
              Some t
            end
      in
      match pick nd.n_backtrack with
      | Some t -> Some (i, t)
      | None -> select (i - 1)
  in
  (try
     run_branch [||];
     let rec loop () =
       match select (!nnodes - 1) with
       | None -> ()
       | Some (i, c) ->
           nnodes := i + 1;
           !nodes.(i).n_chosen <- c;
           let prefix = Array.init (i + 1) (fun j -> !nodes.(j).n_chosen) in
           run_branch prefix;
           loop ()
     in
     loop ()
   with Search_done -> ());
  let outcomes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.outcome_tbl []
    |> List.sort compare
  in
  {
    exploration =
      {
        outcomes;
        runs = st.runs;
        truncated = st.truncated;
        livelocks = st.livelocks;
        deadlocks = st.deadlocks;
      };
    complete = !complete && not st.truncated;
    races = !races;
  }

(* ------------------------------------------------------------------ *)
(* Probabilistic concurrency testing                                   *)
(* ------------------------------------------------------------------ *)

let explore_pct ?(runs = 2000) ?(depth = 3) ?(max_steps = 60_000) ?(seed = 1)
    ?stop_when ~cfg ~make () =
  let rng = Stm_runtime.Det_rng.create seed in
  let outcome_tbl = Hashtbl.create 16 in
  let livelocks = ref 0 in
  let deadlocks = ref 0 in
  let performed = ref 0 in
  let stopped = ref false in
  (let max_threads = 16 in
   (* adaptive horizon: change points are sampled within the length of
      the runs actually observed, so demotions land inside the program *)
   let horizon = ref 256 in
   let run_once () =
     incr performed;
     let inst = make () in
     (* random distinct base priorities per thread; higher runs first *)
     let prio = Array.init max_threads (fun i -> 100 + ((i * 7919) mod 97)) in
     Array.iteri
       (fun i _ ->
         let j = i + Stm_runtime.Det_rng.int rng (max_threads - i) in
         let t = prio.(i) in
         prio.(i) <- prio.(j);
         prio.(j) <- t)
       prio;
     (* choose depth-1 demotion points over the adaptive horizon *)
     let change_points =
       List.init (max 0 (depth - 1)) (fun i ->
           (1 + Stm_runtime.Det_rng.int rng !horizon, i + 1))
     in
     let step = ref 0 in
     let last = ref (-1) in
     let streak = ref 0 in
     let floor_prio = ref (-1000) in
     let choose current runnables =
       incr step;
       (match List.assoc_opt !step change_points with
       | Some demotion when current < max_threads ->
           (* demote the running thread below everything else *)
           prio.(current) <- -demotion
       | _ -> ());
       let pick =
         List.fold_left
           (fun best t ->
             let p tid = if tid < max_threads then prio.(tid) else 0 in
             if p t > p best then t else best)
           (List.hd runnables) runnables
       in
       (* livelock avoidance (deviation from pure PCT): a thread that
          spins through many consecutive steps while others are runnable
          is waiting on a lower-priority thread - demote it so the owner
          can make progress *)
       if pick = !last then incr streak else streak := 1;
       last := pick;
       if !streak > 64 && List.length runnables > 1 && pick < max_threads
       then begin
         decr floor_prio;
         prio.(pick) <- !floor_prio;
         streak := 0
       end;
       pick
     in
     let result, _ =
       Stm_core.Stm.run
         ~policy:(Stm_runtime.Sched.Controlled choose)
         ~max_steps ~cfg inst.main
     in
     let outcome =
       match result.Stm_runtime.Sched.status with
       | Stm_runtime.Sched.Completed -> (
           match result.Stm_runtime.Sched.exns with
           | [] -> inst.observe ()
           | (_, ex) :: _ -> "<exn:" ^ Printexc.to_string ex ^ ">")
       | Stm_runtime.Sched.Deadlock _ ->
           incr deadlocks;
           "<deadlock>"
       | Stm_runtime.Sched.Fuel_exhausted ->
           incr livelocks;
           "<livelock>"
     in
     (* fuel exhaustion is not a final state: livelocks count separately
        from outcomes (same accounting as [explore]) *)
     if result.Stm_runtime.Sched.status <> Stm_runtime.Sched.Fuel_exhausted
     then record_outcome outcome_tbl outcome;
     (* steady-state estimate of the run length in scheduling steps *)
     if result.Stm_runtime.Sched.status = Stm_runtime.Sched.Completed then
       horizon := max 32 (min !step 4096);
     outcome
   in
   try
     for _ = 1 to runs do
       let o = run_once () in
       match stop_when with
       | Some pred when pred o ->
           stopped := true;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  {
    outcomes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcome_tbl []
      |> List.sort compare;
    runs = !performed;
    (* A sampler's quota is its definition of the search, not a budget
       that cut an exhaustive walk short: completing [runs] samples
       without hitting [stop_when] is the search finishing, so it never
       reports [truncated]. (Cf. [explore], where [truncated] means
       [max_runs] stopped the DFS before the bounded tree was done.) *)
    truncated = false;
    livelocks = !livelocks;
    deadlocks = !deadlocks;
  }
