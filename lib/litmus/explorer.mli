(** Systematic concurrency testing for the litmus programs of Figures 1-5.

    Stateless model checking in the style of CHESS: each execution is
    driven by a {!Stm_runtime.Sched.Controlled} policy; the explorer
    re-executes the program with different schedule prefixes, enumerating
    the scheduling tree depth-first with a {e preemption bound} — only
    schedules with at most [preemption_bound] scheduler choices that
    deviate from the default are explored. Every anomaly in the paper
    needs at most three preemptions at specific points, so a small bound
    finds them all, while keeping the search tractable.

    The default schedule continues the current thread while it is
    runnable, rotating round-robin after a fairness window so that spin
    loops (barrier back-off, quiescence waits) cannot livelock the default
    execution. Rotations do not count against the preemption bound. *)

type exploration = {
  outcomes : (string * int) list;
      (** distinct observed outcomes with the number of schedules that
          produced each, sorted by outcome string. Fuel-exhausted
          executions have no final state and are accounted in
          [livelocks] only, so [runs = livelocks + sum of counts]. *)
  runs : int;  (** number of executions performed *)
  truncated : bool;
      (** [explore]/[explore_dpor]: [max_runs] stopped the walk before
          the (bounded, resp. race-reduced) schedule tree was
          exhausted — the search is incomplete. [explore_pct] never
          sets it: a sampler's quota {e is} its search, so completing
          [runs] samples without a [stop_when] hit is the search
          finishing, not a truncation. *)
  livelocks : int;  (** executions that ran out of scheduler fuel *)
  deadlocks : int;
}

type instance = {
  main : unit -> unit;  (** body executed as simulated thread 0 *)
  observe : unit -> string;  (** read the final state, after the run *)
}

val explore :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?fairness_window:int ->
  ?stop_when:(string -> bool) ->
  cfg:Stm_core.Config.t ->
  make:(unit -> instance) ->
  unit ->
  exploration
(** [explore ~cfg ~make ()] repeatedly calls [make] to get a fresh
    instance and runs it under systematically varied schedules.
    Defaults: [preemption_bound = 2], [max_runs = 40_000],
    [max_steps = 60_000], [fairness_window = 64]. If [stop_when] is given,
    the search stops as soon as a matching outcome is observed (used for
    "anomaly possible?" queries, where one witness suffices). *)

val observed : exploration -> (string -> bool) -> bool
(** Did any schedule produce an outcome satisfying the predicate? *)

type dpor = {
  exploration : exploration;
  complete : bool;
      (** The race-reduced schedule space was walked to the end: no
          [max_runs] truncation, no [stop_when] early exit, and no
          completed run outgrew [analysis_horizon]. With no
          [preemption_bound] this certifies that {e every} schedule is
          outcome-equivalent to an explored one — subject to the
          caveats below. *)
  races : int;
      (** conflicting, unordered (immediately racing) segment pairs
          found across all runs; each seeded a backtrack point *)
}

val explore_dpor :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?fairness_window:int ->
  ?analysis_horizon:int ->
  ?stop_when:(string -> bool) ->
  cfg:Stm_core.Config.t ->
  make:(unit -> instance) ->
  unit ->
  dpor
(** Dynamic partial-order reduction (Flanagan-Godefroid race-directed
    backtracking with sleep sets) over the same deterministic scheduler
    as {!explore}. Every access to cross-thread-visible state is traced
    through {!Stm_runtime.Footprint}; per-segment footprints give the
    happens-before relation of each run, and only racing segment pairs
    seed alternative schedules, instead of flipping every decision.
    Futile spin-wait re-reads ({!Stm_runtime.Footprint.Spin_read}) join
    happens-before but seed no reversals — the spin-assume reduction of
    await loops, without which a blocked retry loop degenerates the
    reduction to plain enumeration.

    By default the search is {e unbounded} (full reduction, exhaustive
    when [complete = true]); this terminates for lock-based and weak
    STM cells but diverges on programs whose contention-manager
    abort/retry loops make the trace space infinite (each reversal
    forces a retry that races anew). Passing [preemption_bound] prunes
    branches whose deviation count exceeds the bound; sleep sets stay
    on, and a default choice whose next step is asleep is diverted to a
    non-sleeping runnable {e without} charging the bound (the divert is
    the effective default). Combining any partial-order pruning with a
    preemption bound can in principle drop a behavior whose
    reduced-tree representative is over budget (the BPOR pitfall,
    Coons et al., OOPSLA 2013), which is why certification always
    cross-checks bounded-DPOR verdicts against the enumerative baseline
    at the same bound (see {!Matrix.certify} and the CI gate).

    Completeness caveats (see docs/TESTING.md):
    - programs must confine cross-thread communication to the simulated
      heap and runtime primitives; plain shared OCaml refs are
      invisible to the dependency analysis;
    - fuel-exhausted (livelocked) runs are analyzed only up to
      [analysis_horizon] segments ([2_000] by default) on the premise
      that an unfair spin's suffix reaches no new final state; a
      {e completed} run outgrowing the horizon clears [complete];
    - stateful contention managers fold all policy state into one
      pseudo-granule, which is exact for the stateless default
      policies and conservative (more runs, never fewer behaviors)
      otherwise; order-insensitive policies (Suicide) skip both that
      granule and the txid counter, whose orders cannot change their
      decisions.

    Defaults as {!explore} otherwise: [max_runs = 40_000],
    [max_steps = 60_000], [fairness_window = 64]. *)

val explore_pct :
  ?runs:int ->
  ?depth:int ->
  ?max_steps:int ->
  ?seed:int ->
  ?stop_when:(string -> bool) ->
  cfg:Stm_core.Config.t ->
  make:(unit -> instance) ->
  unit ->
  exploration
(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    each run assigns random priorities to threads and demotes the running
    thread's priority at [depth - 1] randomly chosen scheduling steps; the
    scheduler otherwise always runs the highest-priority runnable thread.
    For a bug of depth [d] (number of ordering constraints), each run
    finds it with probability at least [1/(n * k^(d-1))] — an independent
    method of deciding the Figure 6 cells, complementing the
    preemption-bounded DFS. Defaults: [runs = 2000], [depth = 3],
    [seed = 1]. The result's [truncated] is always [false]: the quota
    defines the search rather than cutting an exhaustive one short. *)
