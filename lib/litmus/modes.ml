open Stm_core
open Stm_runtime

type t =
  | Locks
  | Weak of Config.versioning
  | Strong of Config.versioning
  | Weak_quiesce of Config.versioning
  | Snapshot_weak
  | Snapshot_strong
  | Weak_ts of Config.versioning
  | Strong_ts of Config.versioning

let all_fig6 =
  [
    Weak Config.Eager;
    Weak Config.Lazy;
    Locks;
    Strong Config.Eager;
    Strong Config.Lazy;
  ]

(* The multi-version columns: serializable and snapshot isolation, each
   at weak and strong atomicity. Order is the column order of the
   expectation tables in Matrix. *)
let all_mvcc =
  [ Weak Config.Mvcc; Snapshot_weak; Strong Config.Mvcc; Snapshot_strong ]

(* The timestamp-validation columns: the fig6 STM modes with
   [Config.Timestamp] switched on. Expectations are the base modes' —
   the scheme must change performance, never verdicts. *)
let all_timestamp =
  [
    Weak_ts Config.Eager;
    Weak_ts Config.Lazy;
    Strong_ts Config.Eager;
    Strong_ts Config.Lazy;
  ]

let vname = function
  | Config.Eager -> "eager"
  | Config.Lazy -> "lazy"
  | Config.Mvcc -> "mvcc"

let name = function
  | Locks -> "locks"
  | Weak v -> "weak-" ^ vname v
  | Strong v -> "strong-" ^ vname v
  | Weak_quiesce v -> "quiesce-" ^ vname v
  | Snapshot_weak -> "weak-mvcc-si"
  | Snapshot_strong -> "strong-mvcc-si"
  | Weak_ts v -> "weak-" ^ vname v ^ "-ts"
  | Strong_ts v -> "strong-" ^ vname v ^ "-ts"

let config ?(granule = 1) mode =
  let tune c =
    { c with Config.validate_every = 1; cost = Cost.free; granule }
  in
  match mode with
  | Locks -> tune Config.eager_weak
  | Weak v -> tune { Config.base with versioning = v }
  | Strong v -> tune { Config.base with versioning = v; strong = true }
  | Weak_quiesce v ->
      tune { Config.base with versioning = v; quiescence = true }
  | Snapshot_weak ->
      tune
        {
          Config.base with
          versioning = Config.Mvcc;
          isolation = Config.Snapshot;
        }
  | Snapshot_strong ->
      tune
        {
          Config.base with
          versioning = Config.Mvcc;
          isolation = Config.Snapshot;
          strong = true;
        }
  | Weak_ts v ->
      tune
        { Config.base with versioning = v; validation = Config.Timestamp }
  | Strong_ts v ->
      tune
        {
          Config.base with
          versioning = v;
          validation = Config.Timestamp;
          strong = true;
        }

type harness = {
  atomic : (unit -> unit) -> unit;
  force_abort : unit -> unit;
}

let harness mode (cfg : Config.t) =
  match mode with
  | Locks ->
      let lock = Sim_mutex.create ~name:"litmus" cfg.cost in
      { atomic = (fun f -> Sim_mutex.with_lock lock f); force_abort = (fun () -> ()) }
  | Weak _ | Strong _ | Weak_quiesce _ | Snapshot_weak | Snapshot_strong
  | Weak_ts _ | Strong_ts _ ->
      let fired = ref false in
      {
        atomic = (fun f -> Stm.atomic f);
        force_abort =
          (fun () ->
            if not !fired then begin
              fired := true;
              raise Txn.Abort_txn
            end);
      }
