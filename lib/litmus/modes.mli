(** Execution modes for litmus programs — the columns of Figure 6 plus the
    Section 3.4 quiescence variants. *)

open Stm_core

type t =
  | Locks  (** critical sections via a single mutual-exclusion lock *)
  | Weak of Config.versioning
  | Strong of Config.versioning
  | Weak_quiesce of Config.versioning
      (** weak atomicity plus the quiescence commit protocol *)
  | Snapshot_weak  (** mvcc at snapshot isolation, weak barriers *)
  | Snapshot_strong  (** mvcc at snapshot isolation, strong barriers *)
  | Weak_ts of Config.versioning
      (** weak atomicity under global-commit-clock (timestamp) validation *)
  | Strong_ts of Config.versioning
      (** strong atomicity under timestamp validation *)

val all_fig6 : t list
(** The five Figure 6 columns: eager-weak, lazy-weak, locks, strong-eager,
    strong-lazy. *)

val all_mvcc : t list
(** The four multi-version columns, in expectation-table order:
    weak-mvcc, weak-mvcc-si, strong-mvcc, strong-mvcc-si. *)

val all_timestamp : t list
(** The four timestamp-validation columns: weak-eager-ts, weak-lazy-ts,
    strong-eager-ts, strong-lazy-ts. Their expectations are exactly the
    corresponding base columns' — the validation scheme must never
    change a litmus verdict. *)

val name : t -> string

val config : ?granule:int -> t -> Config.t
(** STM configuration for the mode (litmus programs validate on every
    access, use the free cost model, and back off on conflicts). Lock mode
    runs the weak configuration, with atomic blocks mapped to a mutex. *)

(** Per-instance harness handed to a litmus program body. *)
type harness = {
  atomic : (unit -> unit) -> unit;
      (** [atomic body]: transaction, or critical section in lock mode *)
  force_abort : unit -> unit;
      (** the "/*abort*/" markers of Figure 3: aborts the enclosing
          transaction the first time it executes in this instance; no-op
          in lock mode and on re-execution *)
}

val harness : t -> Config.t -> harness
(** Build a fresh harness (fresh lock, fresh abort marker). Call once per
    program instance. *)
