(** Per-granule contention heatmap.

    Charges every {!Stm_core.Trace.Conflict} episode and every
    attributed {!Stm_core.Trace.Txn_abort} ([oid >= 0]) to the contended
    granule in O(1) with no allocation on the event path — the cell
    table is the open-addressed Fibonacci-hashed oid table the core's
    read-set index uses. Ranking, site mapping, and rendering happen
    only at report time. *)

type t

val create : unit -> t

val handle : t -> Stm_core.Trace.event -> unit
(** Feed one event. Only [Conflict], and [Txn_abort] with a known
    granule, are charged; everything else is ignored. *)

(** One granule's accumulated contention, extracted at report time. *)
type cell = {
  oid : int;
  read_conflicts : int;
  write_conflicts : int;
  aborts : int;  (** aborts attributed to this granule *)
  wounds : int;  (** of which wound kills *)
  wasted : int;  (** abort latency (cycles) thrown away on this granule *)
  sites : (int * int) list;
      (** conflicting access sites with their episode counts, hottest
          first; site [-1] is an API-level access with no source site *)
}

val conflicts : cell -> int
(** Read plus write conflict episodes. *)

val heat : cell -> int
(** Ranking score: conflict episodes plus attributed aborts. *)

val cells : t -> cell list
(** All granules, hottest first (ties by oid). *)

val top : t -> k:int -> cell list

val total_conflicts : t -> int
val distinct_granules : t -> int

val site_label : (int -> string option) -> int -> string
(** Render a site id through [resolve]: ["(api)"] for [-1], the
    resolved source location when known, ["site N"] otherwise. *)

val to_json :
  ?resolve:(int -> string option) -> ?k:int -> t -> Stm_obs.Json.t

val pp :
  ?resolve:(int -> string option) -> ?k:int -> Format.formatter -> t -> unit
