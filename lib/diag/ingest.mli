(** Offline trace ingestion: JSONL (as written by
    {!Stm_obs.Export.write_jsonl}) back into {!Stm_obs.Recorder.entry}
    values, so the analyzer replays a checked-in trace through the same
    pipeline that runs live.

    Site labels that were resolved to source strings at export time are
    re-interned into synthetic ids (from a range no real site id uses)
    and surfaced through [resolve]. Malformed lines and unknown event
    kinds are counted and skipped, never fatal. *)

type result = {
  entries : Stm_obs.Recorder.entry list;  (** in file order *)
  resolve : int -> string option;
      (** maps interned synthetic site ids back to their labels *)
  parsed : int;
  skipped : int;
}

val of_file : string -> result
(** Raises [Sys_error] if the file cannot be opened. *)

val of_channel : in_channel -> result

val of_string : string -> result
(** Newline-separated JSONL in memory (tests). *)

val event_of_json :
  intern:(string -> int) -> Stm_obs.Json.t -> Stm_core.Trace.event option
(** One parsed line to an event; [None] for unknown kinds. [intern]
    assigns ids to resolved (string) site labels. Abort events missing
    the attribution fields ([by], [by_tid], [oid] — traces from before
    they existed) default them to [-1]. *)

val entry_of_json :
  intern:(string -> int) -> Stm_obs.Json.t -> Stm_obs.Recorder.entry option
