open Stm_core
open Stm_obs

(* Flight recorder: a bounded window of recent entries plus trigger
   logic. On an abort streak (or an external trigger such as a
   starvation verdict or a fuzzer anomaly) the current window is frozen
   into an incident; the incident can then be rendered as a post-mortem
   explaining the final abort end-to-end - conflict edge, barrier site,
   CM decision, and where the aggressor serialized. *)

type incident = {
  reason : string;
  at_step : int;  (* scheduler step of the triggering entry, -1 external *)
  tid : int;  (* thread the trigger fired for, -1 external *)
  streak : int;  (* consecutive aborts at trigger time, 0 external *)
  window : Recorder.entry list;  (* frozen, oldest first *)
  window_dropped : int;  (* entries lost to the ring before the freeze *)
}

type t = {
  ring : Recorder.entry Ring.t;
  streak_threshold : int;
  max_incidents : int;
  streaks : (int, int) Hashtbl.t;  (* tid -> consecutive aborts *)
  armed : (int, bool) Hashtbl.t;  (* tid -> may fire (rearms on commit) *)
  mutable incidents_rev : incident list;
  mutable nincidents : int;
}

let create ?(capacity = 512) ?(streak_threshold = 8) ?(max_incidents = 8) () =
  {
    ring = Ring.create ~capacity;
    streak_threshold;
    max_incidents;
    streaks = Hashtbl.create 8;
    armed = Hashtbl.create 8;
    incidents_rev = [];
    nincidents = 0;
  }

let streak_threshold t = t.streak_threshold

let freeze t ~reason ~at_step ~tid ~streak =
  if t.nincidents < t.max_incidents then begin
    t.incidents_rev <-
      {
        reason;
        at_step;
        tid;
        streak;
        window = Ring.to_list t.ring;
        window_dropped = Ring.dropped t.ring;
      }
      :: t.incidents_rev;
    t.nincidents <- t.nincidents + 1
  end

let force t ~reason =
  freeze t ~reason ~at_step:(-1) ~tid:(-1) ~streak:0

let armed t tid =
  match Hashtbl.find_opt t.armed tid with Some b -> b | None -> true

let record t (e : Recorder.entry) =
  Ring.push t.ring e;
  match e.Recorder.ev with
  | Trace.Txn_commit { tid; _ } ->
      Hashtbl.replace t.streaks tid 0;
      Hashtbl.replace t.armed tid true
  | Trace.Txn_abort { tid; _ } ->
      let s =
        1 + Option.value ~default:0 (Hashtbl.find_opt t.streaks tid)
      in
      Hashtbl.replace t.streaks tid s;
      if s >= t.streak_threshold && armed t tid then begin
        (* fire once per streak: re-arm only when the thread commits,
           otherwise every further abort would freeze a new incident *)
        Hashtbl.replace t.armed tid false;
        freeze t
          ~reason:
            (Printf.sprintf "thread %d aborted %d times in a row" tid s)
          ~at_step:e.Recorder.step ~tid ~streak:s
      end
  | _ -> ()

let incidents t = List.rev t.incidents_rev
let incident_count t = t.nincidents

(* ------------------------------------------------------------------ *)
(* Post-mortem rendering                                               *)
(* ------------------------------------------------------------------ *)

(* The last entry in [window] satisfying [p], scanning newest-first. *)
let find_last p window =
  List.fold_left (fun acc e -> if p e then Some e else acc) None window

let explain ?(resolve = fun _ -> None) (i : incident) =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "incident: %s\n" i.reason;
  if i.window_dropped > 0 then
    pf "  (window bounded: %d older entries dropped)\n" i.window_dropped;
  (* the abort under explanation: the last one for the triggering
     thread, or the last one at all for external triggers *)
  let abort =
    find_last
      (fun (e : Recorder.entry) ->
        match e.Recorder.ev with
        | Trace.Txn_abort { tid; _ } -> i.tid < 0 || tid = i.tid
        | _ -> false)
      i.window
  in
  (match abort with
  | None -> pf "  no abort in the recorded window\n"
  | Some ae ->
      let txid, tid, cause, by, by_tid, oid, latency =
        match ae.Recorder.ev with
        | Trace.Txn_abort { txid; tid; cause; by; by_tid; oid; latency; _ } ->
            (txid, tid, cause, by, by_tid, oid, latency)
        | _ -> assert false
      in
      pf "  final abort: txn %d on thread %d, cause %s, %d cycles wasted (step %d)\n"
        txid tid (Trace.string_of_cause cause) latency ae.Recorder.step;
      (* conflict edge *)
      if by >= 0 || oid >= 0 then
        pf "  conflict edge: txn %d (thread %s) lost to txn %s (thread %s) over granule %s\n"
          txid (string_of_int tid)
          (if by >= 0 then string_of_int by else "?")
          (if by_tid >= 0 then string_of_int by_tid else "?")
          (if oid >= 0 then Printf.sprintf "@%d" oid else "?")
      else pf "  conflict edge: none recorded (no aggressor attribution)\n";
      (* barrier site: the last conflict episode for this thread (and
         granule, when known) names the access site that kept losing *)
      let conflict =
        find_last
          (fun (e : Recorder.entry) ->
            match e.Recorder.ev with
            | Trace.Conflict { tid = ctid; oid = coid; _ } ->
                ctid = tid && (oid < 0 || coid = oid)
            | _ -> false)
          i.window
      in
      (match conflict with
      | Some ce -> (
          match ce.Recorder.ev with
          | Trace.Conflict { site; cls; writer; oid = coid; _ } ->
              pf "  barrier site: %s (%s %s on %s@%d, step %d)\n"
                (Heatmap.site_label resolve site)
                (if writer then "write" else "read")
                "conflict" cls coid ce.Recorder.step
          | _ -> ())
      | None -> pf "  barrier site: no conflict episode in window\n");
      (* CM decision in force when the victim died *)
      let decision =
        find_last
          (fun (e : Recorder.entry) ->
            match e.Recorder.ev with
            | Trace.Cm_decision { txid = dtxid; _ } -> dtxid = txid
            | _ -> false)
          i.window
      in
      (match decision with
      | Some de -> (
          match de.Recorder.ev with
          | Trace.Cm_decision { policy; decision; owner; delay; _ } ->
              pf "  cm decision: %s chose %s%s (delay %d, step %d)\n" policy
                decision
                (if owner >= 0 then Printf.sprintf " vs txn %d" owner else "")
                delay de.Recorder.step
          | _ -> ())
      | None -> pf "  cm decision: none in window (Info-level trace?)\n");
      (* serialization order: where the aggressor got its work in *)
      let serialized =
        if by < 0 then None
        else
          find_last
            (fun (e : Recorder.entry) ->
              match e.Recorder.ev with
              | Trace.Txn_serialized { txid = stxid; _ } -> stxid = by
              | Trace.Txn_commit { txid = ctxid; _ } -> ctxid = by
              | _ -> false)
            i.window
      in
      (match serialized with
      | Some se ->
          let what =
            match se.Recorder.ev with
            | Trace.Txn_serialized _ -> "serialized"
            | _ -> "committed"
          in
          pf
            "  serialization order: aggressor txn %d %s at step %d; txn %d's \
             reads no longer belong to any consistent snapshot, so it had to \
             abort\n"
            by what se.Recorder.step txid
      | None ->
          if by >= 0 then
            pf
              "  serialization order: aggressor txn %d still held the granule \
               when txn %d gave up (no serialization in window)\n"
              by txid));
  Buffer.contents b

let to_json ?resolve (i : incident) =
  let r = Option.value ~default:(fun _ -> None) resolve in
  Json.Obj
    [
      ("reason", Json.Str i.reason);
      ("at_step", Json.Int i.at_step);
      ("tid", Json.Int i.tid);
      ("streak", Json.Int i.streak);
      ("window_dropped", Json.Int i.window_dropped);
      ("explanation", Json.Str (explain ~resolve:r i));
      ("window", Json.List (List.map (Export.entry_json r) i.window));
    ]
