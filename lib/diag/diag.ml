open Stm_runtime
open Stm_core
open Stm_obs

(* The conflict-diagnosis pipeline: one object owning a contention
   heatmap, an abort-causality graph, a flight recorder, and an
   event-derived metrics block, all fed from a single event stream -
   live (as a trace-sink consumer that stamps entries itself, exactly
   like [Recorder.record]) or offline (replaying ingested entries).
   Report rendering pulls the pieces together: hottest granules mapped
   to sites, victim <- aggressor edges with kill chains, starvation
   verdicts cross-checked against [Fairness], and post-mortems for
   every frozen incident. *)

type t = {
  heatmap : Heatmap.t;
  causality : Causality.t;
  flight : Flight.t;
  metrics : Metrics.t;
  mutable resolve : int -> string option;
}

let create ?(flight_capacity = 512) ?streak_threshold ?max_incidents
    ?(resolve = fun _ -> None) () =
  {
    heatmap = Heatmap.create ();
    causality = Causality.create ();
    flight =
      Flight.create ~capacity:flight_capacity ?streak_threshold ?max_incidents
        ();
    metrics = Metrics.create ();
    resolve;
  }

let set_resolve t r = t.resolve <- r
let heatmap t = t.heatmap
let causality t = t.causality
let flight t = t.flight
let metrics t = t.metrics

let feed t (e : Recorder.entry) =
  Heatmap.handle t.heatmap e.Recorder.ev;
  Causality.handle t.causality e.Recorder.ev;
  Metrics.handle t.metrics e.Recorder.ev;
  Flight.record t.flight e

let feed_all t entries = List.iter (feed t) entries

(* Live consumer: stamp the event with the emitting thread's clocks
   (the recorder's envelope discipline) and feed the pipeline. *)
let consumer t ev =
  let running = Sched.running () in
  feed t
    {
      Recorder.ts = (if running then Sched.time () else 0);
      step = Sched.steps ();
      tid = (if running then Sched.self () else -1);
      ev;
    }

let force_incident t ~reason = Flight.force t.flight ~reason

let incidents t = Flight.incidents t.flight

let starved ?(threshold = 50) t =
  Stm_cm.Fairness.starved (Metrics.fairness t.metrics) ~threshold

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

(* Wasted-work cross-check: the causality graph sums abort latencies
   per victim thread independently of [Fairness] (which is fed the same
   latencies by [Metrics]); a mismatch means the two pipelines saw
   different event streams. *)
let wasted_consistent t =
  let f = Metrics.fairness t.metrics in
  List.for_all
    (fun (tid, (s : Causality.tstat)) ->
      s.Causality.self_wasted = Stm_cm.Fairness.wasted_cycles f ~tid)
    (Causality.thread_stats t.causality)

let pp_starvation ?(threshold = 50) ppf t =
  let f = Metrics.fairness t.metrics in
  (match starved ~threshold t with
  | [] ->
      Fmt.pf ppf "starvation: none at threshold %d (worst streak %d)@."
        threshold
        (Stm_cm.Fairness.max_consec_aborts f)
  | tids ->
      Fmt.pf ppf "starvation: threads [%s] starved at threshold %d@."
        (String.concat "; " (List.map string_of_int tids))
        threshold);
  (match Causality.most_starved t.causality with
  | Some (tid, s) when s.Causality.aborts > 0 ->
      Fmt.pf ppf
        "most-starved thread: t%d (%d aborts vs %d commits, streak %d, %d \
         cycles wasted)@."
        tid s.Causality.aborts s.Causality.commits
        (Stm_cm.Fairness.max_consec_aborts_of f ~tid)
        s.Causality.self_wasted
  | _ -> ());
  (match Causality.top_aggressor t.causality with
  | Some (tid, s) ->
      Fmt.pf ppf
        "top aggressor: t%d (caused %d aborts, costing other threads %d \
         cycles)@."
        tid s.Causality.caused s.Causality.caused_wasted
  | None -> ());
  Fmt.pf ppf "wasted-work cross-check (causality vs fairness): %s@."
    (if wasted_consistent t then "consistent" else "MISMATCH")

let report ?(k = 10) ?(threshold = 50) ppf t =
  Fmt.pf ppf "=== contention heatmap ===@.";
  Heatmap.pp ~resolve:t.resolve ~k ppf t.heatmap;
  Fmt.pf ppf "@.=== abort causality ===@.";
  Causality.pp ppf t.causality;
  Fmt.pf ppf "@.=== fairness ===@.";
  pp_starvation ~threshold ppf t;
  let inc = incidents t in
  Fmt.pf ppf "@.=== flight recorder ===@.";
  if inc = [] then Fmt.pf ppf "no incidents@."
  else
    List.iteri
      (fun i it ->
        Fmt.pf ppf "--- incident %d ---@.%s" (i + 1)
          (Flight.explain ~resolve:t.resolve it))
      inc

let to_json ?(k = 10) ?(threshold = 50) t =
  Json.Obj
    [
      ("schema", Json.Str "stm-diag/1");
      ("heatmap", Heatmap.to_json ~resolve:t.resolve ~k t.heatmap);
      ("causality", Causality.to_json t.causality);
      ("metrics", Metrics.to_json t.metrics);
      ( "starved",
        Json.List (List.map (fun tid -> Json.Int tid) (starved ~threshold t))
      );
      ( "wasted_crosscheck",
        Json.Str (if wasted_consistent t then "consistent" else "mismatch") );
      ( "incidents",
        Json.List
          (List.map (Flight.to_json ~resolve:t.resolve) (incidents t)) );
    ]

(* ------------------------------------------------------------------ *)
(* Perfetto annotations                                                *)
(* ------------------------------------------------------------------ *)

(* The plain Chrome export plus diagnosis annotations: a counter track
   per hot granule (cumulative heat over time) and an instant on the
   victim's track for every attributed abort, naming the aggressor and
   the granule. Loads in Perfetto / chrome://tracing like the plain
   export does. *)
let perfetto ?(k = 5) t entries =
  let hot = List.map (fun c -> c.Heatmap.oid) (Heatmap.top t.heatmap ~k) in
  let counters = Hashtbl.create 8 in
  let annotations =
    List.concat_map
      (fun (e : Recorder.entry) ->
        let counter oid =
          if List.mem oid hot then begin
            let n =
              1 + Option.value ~default:0 (Hashtbl.find_opt counters oid)
            in
            Hashtbl.replace counters oid n;
            [
              Json.Obj
                [
                  ("name", Json.Str (Printf.sprintf "heat @%d" oid));
                  ("cat", Json.Str "diag");
                  ("ph", Json.Str "C");
                  ("ts", Json.Int e.Recorder.ts);
                  ("pid", Json.Int 1);
                  ("args", Json.Obj [ ("heat", Json.Int n) ]);
                ];
            ]
          end
          else []
        in
        match e.Recorder.ev with
        | Trace.Conflict { oid; _ } -> counter oid
        | Trace.Txn_abort { txid; oid; by; by_tid; cause; _ }
          when by >= 0 || oid >= 0 ->
            Json.Obj
              [
                ("name", Json.Str "abort-edge");
                ("cat", Json.Str "diag");
                ("ph", Json.Str "i");
                ("ts", Json.Int e.Recorder.ts);
                ("pid", Json.Int 1);
                ("tid", Json.Int e.Recorder.tid);
                ("s", Json.Str "t");
                ( "args",
                  Json.Obj
                    [
                      ("victim_txid", Json.Int txid);
                      ("aggr_txid", Json.Int by);
                      ("aggr_tid", Json.Int by_tid);
                      ("oid", Json.Int oid);
                      ("cause", Json.Str (Trace.string_of_cause cause));
                    ] );
              ]
            :: (if oid >= 0 then counter oid else [])
        | _ -> [])
      entries
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (Export.chrome_events ~resolve:t.resolve entries @ annotations)
      );
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.Str "stm-cost-cycles");
            ("source", Json.Str "stm_diag");
          ] );
    ]
