open Stm_core
open Stm_obs

(* Per-granule contention accounting. The table is the PR-4 oid-set
   idiom - open addressing, Fibonacci hashing, linear probing, capacity
   a power of two kept at most half full - so charging one conflict or
   abort to a granule is O(1) with no allocation on the event path. All
   ranking and site mapping happens at report time. *)

(* Per-cell counters live in parallel int arrays indexed by the probe
   slot; [keys] holds the oid, [used] marks live slots. *)
type t = {
  mutable keys : int array;
  mutable used : bool array;
  mutable read_conflicts : int array;
  mutable write_conflicts : int array;
  mutable aborts : int array;
  mutable wounds : int array;
  mutable wasted : int array;  (* abort latency charged to this granule *)
  mutable live : int;
  (* (oid, site) -> conflict count, for mapping hot granules back to the
     source sites that fight over them. Only touched on Conflict events
     (Info level, per contention episode - not per access). *)
  site_counts : (int * int, int ref) Hashtbl.t;
  mutable total_conflicts : int;
}

let hash oid mask = (oid * 0x9E3779B1) land mask

let create () =
  {
    keys = Array.make 64 0;
    used = Array.make 64 false;
    read_conflicts = Array.make 64 0;
    write_conflicts = Array.make 64 0;
    aborts = Array.make 64 0;
    wounds = Array.make 64 0;
    wasted = Array.make 64 0;
    live = 0;
    site_counts = Hashtbl.create 64;
    total_conflicts = 0;
  }

(* Find the slot for [oid], inserting an empty cell if absent. Growing
   happens before the probe, so an insert never lands in a table more
   than half full. *)
let rec slot t oid =
  if 2 * (t.live + 1) > Array.length t.keys then grow t;
  let mask = Array.length t.keys - 1 in
  let i = ref (hash oid mask) in
  let found = ref (-1) in
  while !found < 0 do
    if not t.used.(!i) then begin
      t.used.(!i) <- true;
      t.keys.(!i) <- oid;
      t.live <- t.live + 1;
      found := !i
    end
    else if t.keys.(!i) = oid then found := !i
    else i := (!i + 1) land mask
  done;
  !found

and grow t =
  let old_keys = t.keys
  and old_used = t.used
  and old_rc = t.read_conflicts
  and old_wc = t.write_conflicts
  and old_ab = t.aborts
  and old_wo = t.wounds
  and old_wa = t.wasted in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap 0;
  t.used <- Array.make cap false;
  t.read_conflicts <- Array.make cap 0;
  t.write_conflicts <- Array.make cap 0;
  t.aborts <- Array.make cap 0;
  t.wounds <- Array.make cap 0;
  t.wasted <- Array.make cap 0;
  t.live <- 0;
  let mask = cap - 1 in
  Array.iteri
    (fun i live ->
      if live then begin
        let oid = old_keys.(i) in
        let j = ref (hash oid mask) in
        while t.used.(!j) do
          j := (!j + 1) land mask
        done;
        t.used.(!j) <- true;
        t.keys.(!j) <- oid;
        t.read_conflicts.(!j) <- old_rc.(i);
        t.write_conflicts.(!j) <- old_wc.(i);
        t.aborts.(!j) <- old_ab.(i);
        t.wounds.(!j) <- old_wo.(i);
        t.wasted.(!j) <- old_wa.(i);
        t.live <- t.live + 1
      end)
    old_used

let bump_site t ~oid ~site =
  match Hashtbl.find_opt t.site_counts (oid, site) with
  | Some r -> incr r
  | None -> Hashtbl.replace t.site_counts (oid, site) (ref 1)

let handle t (ev : Trace.event) =
  match ev with
  | Trace.Conflict { oid; writer; site; _ } ->
      let i = slot t oid in
      if writer then t.write_conflicts.(i) <- t.write_conflicts.(i) + 1
      else t.read_conflicts.(i) <- t.read_conflicts.(i) + 1;
      t.total_conflicts <- t.total_conflicts + 1;
      bump_site t ~oid ~site
  | Trace.Txn_abort { oid; latency; wounded; _ } when oid >= 0 ->
      let i = slot t oid in
      t.aborts.(i) <- t.aborts.(i) + 1;
      if wounded then t.wounds.(i) <- t.wounds.(i) + 1;
      t.wasted.(i) <- t.wasted.(i) + max 0 latency
  | _ -> ()

type cell = {
  oid : int;
  read_conflicts : int;
  write_conflicts : int;
  aborts : int;
  wounds : int;
  wasted : int;
  sites : (int * int) list;  (* site -> conflict count, hottest first *)
}

let conflicts c = c.read_conflicts + c.write_conflicts

(* Heat ranks granules for the report: every conflict episode and every
   abort attributed to the granule counts once. *)
let heat c = conflicts c + c.aborts

let sites_of t oid =
  Hashtbl.fold
    (fun (o, site) r acc -> if o = oid then (site, !r) :: acc else acc)
    t.site_counts []
  |> List.sort (fun (s1, n1) (s2, n2) ->
         if n1 <> n2 then compare n2 n1 else compare s1 s2)

let cells t =
  let acc = ref [] in
  Array.iteri
    (fun i live ->
      if live then
        acc :=
          {
            oid = t.keys.(i);
            read_conflicts = t.read_conflicts.(i);
            write_conflicts = t.write_conflicts.(i);
            aborts = t.aborts.(i);
            wounds = t.wounds.(i);
            wasted = t.wasted.(i);
            sites = sites_of t t.keys.(i);
          }
          :: !acc)
    t.used;
  List.sort
    (fun a b ->
      if heat a <> heat b then compare (heat b) (heat a)
      else compare a.oid b.oid)
    !acc

let top t ~k = List.filteri (fun i _ -> i < k) (cells t)
let total_conflicts t = t.total_conflicts
let distinct_granules t = t.live

let site_label resolve site =
  if site < 0 then "(api)"
  else
    match resolve site with
    | Some s -> s
    | None -> Printf.sprintf "site %d" site

let cell_json resolve c =
  Json.Obj
    [
      ("oid", Json.Int c.oid);
      ("read_conflicts", Json.Int c.read_conflicts);
      ("write_conflicts", Json.Int c.write_conflicts);
      ("aborts", Json.Int c.aborts);
      ("wounds", Json.Int c.wounds);
      ("wasted_cycles", Json.Int c.wasted);
      ("heat", Json.Int (heat c));
      ( "sites",
        Json.List
          (List.map
             (fun (site, n) ->
               Json.Obj
                 [
                   ("site", Json.Str (site_label resolve site));
                   ("conflicts", Json.Int n);
                 ])
             c.sites) );
    ]

let to_json ?(resolve = fun _ -> None) ?(k = 10) t =
  Json.Obj
    [
      ("total_conflicts", Json.Int t.total_conflicts);
      ("distinct_granules", Json.Int t.live);
      ("top", Json.List (List.map (cell_json resolve) (top t ~k)));
    ]

let pp ?(resolve = fun _ -> None) ?(k = 10) ppf t =
  if t.live = 0 then Fmt.pf ppf "no contention recorded@."
  else begin
    Fmt.pf ppf "contention heatmap: %d conflicts over %d granules@."
      t.total_conflicts t.live;
    List.iter
      (fun c ->
        Fmt.pf ppf "  @%-6d heat=%-5d conflicts=%d(r%d/w%d) aborts=%d%s wasted=%d@."
          c.oid (heat c) (conflicts c) c.read_conflicts c.write_conflicts
          c.aborts
          (if c.wounds > 0 then Printf.sprintf " (wounds %d)" c.wounds else "")
          c.wasted;
        match c.sites with
        | [] -> ()
        | sites ->
            Fmt.pf ppf "          sites: %s@."
              (String.concat ", "
                 (List.map
                    (fun (site, n) ->
                      Printf.sprintf "%s x%d" (site_label resolve site) n)
                    sites)))
      (top t ~k)
  end
