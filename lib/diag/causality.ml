open Stm_core
open Stm_obs

(* Abort-causality graph: who killed whom, over what, and under which
   policy decision. Nodes are simulated threads; an edge victim -> aggr
   aggregates every abort of a transaction on [victim] attributed to a
   transaction on [aggr]. Abort records are also kept per txid so that
   kill chains (A aborted by B, B in turn aborted by C, ...) can be
   reconstructed - the cascades that turn one hot granule into a
   run-wide livelock. *)

type edge = {
  victim_tid : int;
  aggr_tid : int;  (* -1: aggressor thread unknown *)
  mutable count : int;
  mutable wasted : int;  (* victim cycles thrown away across these aborts *)
  mutable oids : (int * int) list;  (* granule -> count *)
  mutable causes : (Trace.abort_cause * int) list;
  mutable decisions : (string * int) list;
      (* CM decision in force on the victim at abort time *)
}

(* One abort occurrence, kept per victim txid for chain-walking. *)
type abort_rec = {
  a_txid : int;
  a_tid : int;
  a_by : int;  (* aggressor txid, -1 unknown *)
  a_by_tid : int;
  a_oid : int;
  a_cause : Trace.abort_cause;
  a_wasted : int;
  a_order : int;  (* arrival index; chains run backwards in time *)
}

type tstat = {
  mutable commits : int;
  mutable aborts : int;
  mutable self_wasted : int;  (* cycles this thread lost to aborts *)
  mutable caused : int;  (* aborts this thread inflicted on others *)
  mutable caused_wasted : int;  (* cycles it cost other threads *)
}

type t = {
  edges : (int * int, edge) Hashtbl.t;
  aborts_of : (int, abort_rec) Hashtbl.t;  (* victim txid -> last abort *)
  last_decision : (int, string) Hashtbl.t;  (* txid -> last CM decision *)
  threads : (int, tstat) Hashtbl.t;
  mutable nseen : int;  (* abort arrival counter *)
}

let create () =
  {
    edges = Hashtbl.create 32;
    aborts_of = Hashtbl.create 256;
    last_decision = Hashtbl.create 64;
    threads = Hashtbl.create 16;
    nseen = 0;
  }

let tstat t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some s -> s
  | None ->
      let s =
        { commits = 0; aborts = 0; self_wasted = 0; caused = 0; caused_wasted = 0 }
      in
      Hashtbl.replace t.threads tid s;
      s

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let edge t ~victim_tid ~aggr_tid =
  let key = (victim_tid, aggr_tid) in
  match Hashtbl.find_opt t.edges key with
  | Some e -> e
  | None ->
      let e =
        {
          victim_tid;
          aggr_tid;
          count = 0;
          wasted = 0;
          oids = [];
          causes = [];
          decisions = [];
        }
      in
      Hashtbl.replace t.edges key e;
      e

let handle t (ev : Trace.event) =
  match ev with
  | Trace.Txn_commit { tid; _ } -> (tstat t tid).commits <- (tstat t tid).commits + 1
  | Trace.Cm_decision { txid; decision; _ } ->
      Hashtbl.replace t.last_decision txid decision
  | Trace.Txn_abort { txid; tid; cause; latency; by; by_tid; oid; _ } ->
      let wasted = max 0 latency in
      t.nseen <- t.nseen + 1;
      let vs = tstat t tid in
      vs.aborts <- vs.aborts + 1;
      vs.self_wasted <- vs.self_wasted + wasted;
      if by_tid >= 0 then begin
        let a = tstat t by_tid in
        a.caused <- a.caused + 1;
        a.caused_wasted <- a.caused_wasted + wasted
      end;
      (* every attributed abort contributes an edge; fully unattributed
         (retry/exn) aborts only feed the per-thread stats *)
      if by >= 0 || oid >= 0 then begin
        let e = edge t ~victim_tid:tid ~aggr_tid:by_tid in
        e.count <- e.count + 1;
        e.wasted <- e.wasted + wasted;
        if oid >= 0 then e.oids <- bump e.oids oid;
        e.causes <- bump e.causes cause;
        match Hashtbl.find_opt t.last_decision txid with
        | Some d -> e.decisions <- bump e.decisions d
        | None -> ()
      end;
      Hashtbl.replace t.aborts_of txid
        {
          a_txid = txid;
          a_tid = tid;
          a_by = by;
          a_by_tid = by_tid;
          a_oid = oid;
          a_cause = cause;
          a_wasted = wasted;
          a_order = t.nseen;
        };
      Hashtbl.remove t.last_decision txid
  | _ -> ()

let sort_desc keyf l =
  List.sort
    (fun a b ->
      let ka = keyf a and kb = keyf b in
      if ka <> kb then compare kb ka else compare a b)
    l

let edges t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
  |> List.sort (fun a b ->
         if a.count <> b.count then compare b.count a.count
         else compare (a.victim_tid, a.aggr_tid) (b.victim_tid, b.aggr_tid))

let total_attributed t =
  Hashtbl.fold (fun _ e acc -> acc + e.count) t.edges 0

(* A kill chain starting at [txid]: the victim, then the transaction that
   killed it, then that one's own killer, and so on. Each hop must have
   aborted no later than its victim's abort was recorded (the aggressor's
   death already stood when we learned of the victim's), and a txid is
   never revisited. *)
let chain_of t txid =
  let rec go seen order txid =
    if List.mem txid seen then []
    else
      match Hashtbl.find_opt t.aborts_of txid with
      | Some a when a.a_order <= order ->
          a :: go (txid :: seen) a.a_order a.a_by
      | _ -> []
  in
  go [] max_int txid

let chains ?(min_len = 2) t =
  (* txids that appear as someone's aggressor are interior nodes; chains
     are rooted at victims nobody else points to, so each maximal chain
     is reported once. *)
  let interior = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ a -> if a.a_by >= 0 then Hashtbl.replace interior a.a_by ())
    t.aborts_of;
  Hashtbl.fold
    (fun txid _ acc ->
      if Hashtbl.mem interior txid then acc
      else
        let c = chain_of t txid in
        if List.length c >= min_len then c :: acc else acc)
    t.aborts_of []
  |> sort_desc List.length

let thread_stats t =
  Hashtbl.fold (fun tid s acc -> (tid, s) :: acc) t.threads []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let wasted_of t ~tid =
  match Hashtbl.find_opt t.threads tid with
  | Some s -> s.self_wasted
  | None -> 0

let total_wasted t =
  Hashtbl.fold (fun _ s acc -> acc + s.self_wasted) t.threads 0

(* The thread with the worst abort/commit imbalance: most aborts, ties
   broken toward fewer commits then more wasted cycles. *)
let most_starved t =
  Hashtbl.fold
    (fun tid s acc ->
      match acc with
      | None -> Some (tid, s)
      | Some (_, best)
        when s.aborts > best.aborts
             || (s.aborts = best.aborts && s.commits < best.commits)
             || (s.aborts = best.aborts && s.commits = best.commits
                && s.self_wasted > best.self_wasted) ->
          Some (tid, s)
      | Some _ -> acc)
    t.threads None

let top_aggressor t =
  Hashtbl.fold
    (fun tid s acc ->
      match acc with
      | None when s.caused > 0 -> Some (tid, s)
      | Some (_, best) when s.caused > best.caused -> Some (tid, s)
      | _ -> acc)
    t.threads None

let edge_json e =
  Json.Obj
    [
      ("victim_tid", Json.Int e.victim_tid);
      ("aggr_tid", Json.Int e.aggr_tid);
      ("count", Json.Int e.count);
      ("wasted_cycles", Json.Int e.wasted);
      ( "oids",
        Json.Obj (List.map (fun (o, n) -> (string_of_int o, Json.Int n)) e.oids)
      );
      ( "causes",
        Json.Obj
          (List.map
             (fun (c, n) -> (Trace.string_of_cause c, Json.Int n))
             e.causes) );
      ( "decisions",
        Json.Obj (List.map (fun (d, n) -> (d, Json.Int n)) e.decisions) );
    ]

let chain_json c =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [
             ("txid", Json.Int a.a_txid);
             ("tid", Json.Int a.a_tid);
             ("by", Json.Int a.a_by);
             ("oid", Json.Int a.a_oid);
             ("cause", Json.Str (Trace.string_of_cause a.a_cause));
             ("wasted", Json.Int a.a_wasted);
           ])
       c)

let to_json ?(max_chains = 5) t =
  let threads =
    List.map
      (fun (tid, s) ->
        ( string_of_int tid,
          Json.Obj
            [
              ("commits", Json.Int s.commits);
              ("aborts", Json.Int s.aborts);
              ("wasted_cycles", Json.Int s.self_wasted);
              ("caused_aborts", Json.Int s.caused);
              ("caused_wasted_cycles", Json.Int s.caused_wasted);
            ] ))
      (thread_stats t)
  in
  let chains_ = List.filteri (fun i _ -> i < max_chains) (chains t) in
  Json.Obj
    [
      ("edges", Json.List (List.map edge_json (edges t)));
      ("threads", Json.Obj threads);
      ("chains", Json.List (List.map chain_json chains_));
    ]

let pp_tid ppf tid =
  if tid < 0 then Fmt.string ppf "?" else Fmt.pf ppf "t%d" tid

let pp ?(max_chains = 3) ppf t =
  let es = edges t in
  if es = [] then Fmt.pf ppf "no attributed aborts@."
  else begin
    Fmt.pf ppf "abort causality (%d attributed aborts):@." (total_attributed t);
    List.iter
      (fun e ->
        let oids =
          String.concat ","
            (List.map (fun (o, n) -> Printf.sprintf "@%d x%d" o n) e.oids)
        in
        let causes =
          String.concat ","
            (List.map
               (fun (c, n) ->
                 Printf.sprintf "%s x%d" (Trace.string_of_cause c) n)
               e.causes)
        in
        let dec =
          match e.decisions with
          | [] -> ""
          | ds ->
              Printf.sprintf " cm=[%s]"
                (String.concat ","
                   (List.map (fun (d, n) -> Printf.sprintf "%s x%d" d n) ds))
        in
        Fmt.pf ppf "  %a <- %a  x%-4d on %s (%s)%s wasted=%d@." pp_tid
          e.victim_tid pp_tid e.aggr_tid e.count
          (if oids = "" then "?" else oids)
          causes dec e.wasted)
      es;
    (match chains ~min_len:2 t with
    | [] -> ()
    | cs ->
        Fmt.pf ppf "kill chains:@.";
        List.iteri
          (fun i c ->
            if i < max_chains then
              Fmt.pf ppf "  %s@."
                (String.concat " <- "
                   (List.map
                      (fun a ->
                        Printf.sprintf "txn %d(t%d%s)" a.a_txid a.a_tid
                          (if a.a_oid >= 0 then Printf.sprintf ",@%d" a.a_oid
                           else ""))
                      c)))
          cs)
  end
