(** Flight recorder: bounded event window, trigger logic, and
    post-mortem rendering.

    Every entry fed through {!record} lands in a ring of the configured
    capacity. When one thread's consecutive-abort streak reaches the
    threshold — or an external caller fires {!force} (a starvation
    verdict, a fuzzer anomaly) — the current window is frozen into an
    {!incident}. {!explain} renders an incident as a human-readable
    "why": the final abort, its conflict edge (victim, aggressor,
    granule), the barrier site that kept losing, the CM decision in
    force, and where the aggressor serialized. *)

type t

(** A frozen window plus the trigger that froze it. *)
type incident = {
  reason : string;
  at_step : int;  (** scheduler step of the trigger, [-1] for {!force} *)
  tid : int;  (** thread the streak trigger fired for, [-1] for {!force} *)
  streak : int;  (** consecutive aborts at trigger time, [0] for {!force} *)
  window : Stm_obs.Recorder.entry list;  (** oldest first *)
  window_dropped : int;
      (** entries already evicted from the ring when the freeze happened *)
}

val create :
  ?capacity:int -> ?streak_threshold:int -> ?max_incidents:int -> unit -> t
(** [capacity] (default 512) bounds the window; [streak_threshold]
    (default 8) is the consecutive-abort count that trips the internal
    trigger; at most [max_incidents] (default 8) windows are retained —
    later triggers are dropped, not rotated, so the earliest incidents
    (usually the onset of the pathology) survive. *)

val streak_threshold : t -> int

val record : t -> Stm_obs.Recorder.entry -> unit
(** Feed one stamped entry: push into the window, update streaks, and
    freeze an incident if a streak trigger fires. A thread's trigger
    re-arms only when it commits, so one streak produces one incident. *)

val force : t -> reason:string -> unit
(** Freeze the current window unconditionally (external trigger). *)

val incidents : t -> incident list
(** In trigger order. *)

val incident_count : t -> int

val explain : ?resolve:(int -> string option) -> incident -> string
(** Multi-line post-mortem; [resolve] maps access-site ids to source
    labels for the barrier-site line. *)

val to_json : ?resolve:(int -> string option) -> incident -> Stm_obs.Json.t
(** The incident with its rendered explanation and the full frozen
    window (repro-style capture: replayable through [stm_diag]). *)
