(** The conflict-diagnosis pipeline.

    One object owning the three diagnosis pillars — {!Heatmap},
    {!Causality}, {!Flight} — plus an event-derived {!Stm_obs.Metrics}
    block, all fed from a single event stream. Feed it live by
    installing {!consumer} as (part of) the trace sink, or offline by
    replaying {!Ingest}ed entries through {!feed_all}; the contents are
    identical either way, which is what lets the [stm_diag] CLI analyze
    a checked-in trace exactly as [stm_run --diag] analyzes a live run. *)

type t

val create :
  ?flight_capacity:int ->
  ?streak_threshold:int ->
  ?max_incidents:int ->
  ?resolve:(int -> string option) ->
  unit ->
  t
(** [resolve] maps access-site ids to source labels in every rendered
    report (e.g. {!Stm_ir.Ir.site_loc} live, {!Ingest.result.resolve}
    offline); the flight parameters are {!Flight.create}'s. *)

val set_resolve : t -> (int -> string option) -> unit

val consumer : t -> Stm_core.Trace.event -> unit
(** Live feed: stamps the event with the emitting thread's cost clock
    and scheduler step (the {!Stm_obs.Recorder} envelope discipline)
    and runs it through all four pillars. *)

val feed : t -> Stm_obs.Recorder.entry -> unit
(** Offline feed of one already-stamped entry. *)

val feed_all : t -> Stm_obs.Recorder.entry list -> unit

val force_incident : t -> reason:string -> unit
(** Freeze the flight-recorder window (starvation verdict, fuzzer
    anomaly, operator request). *)

val heatmap : t -> Heatmap.t
val causality : t -> Causality.t
val flight : t -> Flight.t
val metrics : t -> Stm_obs.Metrics.t
val incidents : t -> Flight.incident list

val starved : ?threshold:int -> t -> int list
(** {!Stm_cm.Fairness.starved} over the metrics fairness block;
    [threshold] defaults to 50 consecutive aborts (the stress
    harness's verdict threshold). *)

val wasted_consistent : t -> bool
(** Cross-check: the causality graph's per-thread wasted-cycle sums
    must equal {!Stm_cm.Fairness.wasted_cycles} for every thread — the
    two pipelines are fed independently, so a mismatch means they saw
    different event streams. *)

val report : ?k:int -> ?threshold:int -> Format.formatter -> t -> unit
(** Full text report: heatmap top-[k], causality edges and kill chains,
    starvation verdicts with the fairness cross-check, and a rendered
    post-mortem per incident. *)

val to_json : ?k:int -> ?threshold:int -> t -> Stm_obs.Json.t
(** The same content as a single [stm-diag/1] document. *)

val perfetto : ?k:int -> t -> Stm_obs.Recorder.entry list -> Stm_obs.Json.t
(** The plain Chrome export of [entries] plus diagnosis annotations: a
    counter track per top-[k] hot granule (cumulative heat over time)
    and an instant on the victim's track for every attributed abort
    naming the aggressor and granule. *)
