open Stm_runtime
open Stm_core
open Stm_obs

(* Offline trace ingestion: the JSONL the recorder exports ([Export]),
   parsed back into [Recorder.entry] values so the same heatmap /
   causality / flight pipeline that runs live can replay a checked-in
   trace. Resolved site labels (strings written by [--trace-out] with a
   program loaded) are re-interned into fresh ids and handed back as a
   [resolve] function; unknown event kinds and malformed lines are
   counted, not fatal - a trace from a newer or older build should
   degrade, not crash the analyzer. *)

type result = {
  entries : Recorder.entry list;
  resolve : int -> string option;  (* interned site labels *)
  parsed : int;
  skipped : int;
}

(* Interned string sites get ids from a range no real site uses
   (site ids are small non-negative ints from the IR). *)
let intern_base = 1_000_000

let cause_of_string = function
  | "conflict" -> Some Trace.Cause_conflict
  | "validation" -> Some Trace.Cause_validation
  | "stale-lock" -> Some Trace.Cause_stale_lock
  | "wounded" -> Some Trace.Cause_wounded
  | "retry" -> Some Trace.Cause_retry
  | "exception" -> Some Trace.Cause_exn
  | _ -> None

let op_of_string = function
  | "read" -> Some Trace.Op_read
  | "read-ordering" -> Some Trace.Op_read_ordering
  | "write" -> Some Trace.Op_write
  | "txn-read" -> Some Trace.Op_txn_read
  | "txn-write" -> Some Trace.Op_txn_write
  | _ -> None

let path_of_string = function
  | "fired" -> Some Trace.Path_fired
  | "private" -> Some Trace.Path_private
  | "elided" -> Some Trace.Path_elided
  | _ -> None

(* Best-effort reverse of [Heap.show_value]; structure is not needed by
   any analysis, only a printable value. *)
let value_of_string s =
  match s with
  | "()" -> Heap.Vunit
  | "null" -> Heap.Vnull
  | "true" -> Heap.Vbool true
  | "false" -> Heap.Vbool false
  | _ -> (
      match int_of_string_opt s with
      | Some i -> Heap.Vint i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Heap.Vfloat f
          | None -> Heap.Vstr s))

let int_field ?(default = -1) j k =
  match Option.bind (Json.member k j) Json.to_int_opt with
  | Some i -> i
  | None -> default

let str_field ?(default = "") j k =
  match Option.bind (Json.member k j) Json.to_str_opt with
  | Some s -> s
  | None -> default

let bool_field ?(default = false) j k =
  match Option.bind (Json.member k j) Json.to_bool_opt with
  | Some b -> b
  | None -> default

(* Sites are written as raw ints (unresolved) or strings (resolved
   source labels); [intern] turns a label into a stable synthetic id. *)
let site_field intern j k =
  match Json.member k j with
  | Some (Json.Int i) -> i
  | Some (Json.Str s) -> intern s
  | _ -> -1

let event_of_json ~intern j =
  let i = int_field j and s = str_field and b = bool_field in
  match str_field j "ev" with
  | "txn_begin" -> Some (Trace.Txn_begin { txid = i "txid"; tid = i "tid" })
  | "txn_commit" ->
      Some
        (Trace.Txn_commit
           {
             txid = i "txid";
             tid = i "tid";
             reads = int_field ~default:0 j "reads";
             writes = int_field ~default:0 j "writes";
             latency = int_field ~default:0 j "latency";
           })
  | "txn_abort" ->
      Option.map
        (fun cause ->
          Trace.Txn_abort
            {
              txid = i "txid";
              tid = i "tid";
              wounded = b j "wounded";
              cause;
              latency = int_field ~default:0 j "latency";
              (* absent in pre-diag traces: degrade to unattributed *)
              by = i "by";
              by_tid = i "by_tid";
              oid = i "oid";
            })
        (cause_of_string (s j "cause"))
  | "txn_wound" -> Some (Trace.Txn_wound { victim = i "victim"; by = i "by" })
  | "conflict" ->
      Some
        (Trace.Conflict
           {
             tid = i "tid";
             oid = i "oid";
             cls = s j "class";
             writer = b j "writer";
             site = site_field intern j "site";
           })
  | "publish" -> Some (Trace.Publish { oid = i "oid"; cls = s j "class" })
  | "quiesce_wait" -> Some (Trace.Quiesce_wait { txid = i "txid" })
  | "barrier" ->
      Option.bind (op_of_string (s j "op")) (fun op ->
          Option.map
            (fun path ->
              Trace.Barrier
                { tid = i "tid"; site = site_field intern j "site"; op; path })
            (path_of_string (s j "path")))
  | "backoff" ->
      Some
        (Trace.Backoff
           {
             tid = i "tid";
             attempt = int_field ~default:0 j "attempt";
             delay = int_field ~default:0 j "delay";
           })
  | "validation" ->
      Some (Trace.Validation { txid = i "txid"; tid = i "tid"; ok = b j "ok" })
  | "cm_decision" ->
      Some
        (Trace.Cm_decision
           {
             tid = i "tid";
             txid = i "txid";
             policy = s j "policy";
             decision = s j "decision";
             owner = i "owner";
             delay = int_field ~default:0 j "delay";
           })
  | "access" ->
      Some
        (Trace.Access
           {
             tid = i "tid";
             txid = i "txid";
             oid = i "oid";
             fld = int_field ~default:0 j "fld";
             value = value_of_string (s j "value");
             write = b j "write";
           })
  | "txn_serialized" ->
      Some (Trace.Txn_serialized { txid = i "txid"; tid = i "tid" })
  | _ -> None

let entry_of_json ~intern j =
  Option.map
    (fun ev ->
      {
        Recorder.ts = int_field ~default:0 j "ts";
        step = int_field ~default:0 j "step";
        tid = int_field j "tid";
        ev;
      })
    (event_of_json ~intern j)

let of_lines lines =
  let labels : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let by_id : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let intern s =
    match Hashtbl.find_opt labels s with
    | Some id -> id
    | None ->
        let id = intern_base + Hashtbl.length labels in
        Hashtbl.replace labels s id;
        Hashtbl.replace by_id id s;
        id
  in
  let parsed = ref 0 and skipped = ref 0 in
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else
          match Json.of_string line with
          | Error _ ->
              incr skipped;
              None
          | Ok j -> (
              match entry_of_json ~intern j with
              | Some e ->
                  incr parsed;
                  Some e
              | None ->
                  incr skipped;
                  None))
      lines
  in
  {
    entries;
    resolve = (fun id -> Hashtbl.find_opt by_id id);
    parsed = !parsed;
    skipped = !skipped;
  }

let of_channel ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (go [])

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> of_channel ic)

let of_string s = of_lines (String.split_on_char '\n' s)
