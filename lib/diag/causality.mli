(** Abort-causality graph.

    Nodes are simulated threads; an edge [victim <- aggressor]
    aggregates every attributed {!Stm_core.Trace.Txn_abort} of a
    transaction on the victim thread, carrying the contended granules,
    the abort causes, and the CM decision that was in force on the
    victim when it died. Per-txid abort records additionally support
    kill-chain reconstruction (A aborted by B, B itself aborted by C,
    ...) — the cascades that turn one hot granule into a run-wide
    livelock — and per-thread wasted-work attribution, which the report
    layer cross-checks against {!Stm_cm.Fairness}. *)

type t

(** Aggregated victim <- aggressor edge. [aggr_tid = -1] groups aborts
    whose aggressor thread is unknown (e.g. the owner already
    committed). *)
type edge = {
  victim_tid : int;
  aggr_tid : int;
  mutable count : int;
  mutable wasted : int;  (** victim cycles thrown away across these aborts *)
  mutable oids : (int * int) list;  (** granule -> count *)
  mutable causes : (Stm_core.Trace.abort_cause * int) list;
  mutable decisions : (string * int) list;
      (** last CM decision traced for the victim before each abort
          (requires a Debug-level feed; empty on Info-only traces) *)
}

(** One abort occurrence on a kill chain. *)
type abort_rec = {
  a_txid : int;
  a_tid : int;
  a_by : int;
  a_by_tid : int;
  a_oid : int;
  a_cause : Stm_core.Trace.abort_cause;
  a_wasted : int;
  a_order : int;  (** arrival index of the abort event *)
}

(** Per-thread victim/aggressor accounting. *)
type tstat = {
  mutable commits : int;
  mutable aborts : int;
  mutable self_wasted : int;  (** cycles this thread lost to its own aborts *)
  mutable caused : int;  (** aborts this thread inflicted on others *)
  mutable caused_wasted : int;  (** cycles it cost other threads *)
}

val create : unit -> t

val handle : t -> Stm_core.Trace.event -> unit
(** Feed one event. [Txn_abort] builds the graph; [Txn_commit] feeds the
    per-thread stats; [Cm_decision] (Debug level) is remembered per txid
    so the decision in force can be attached to a subsequent abort. *)

val edges : t -> edge list
(** Most frequent first. *)

val total_attributed : t -> int

val chains : ?min_len:int -> t -> abort_rec list list
(** Maximal kill chains, longest first, each listed from the final
    victim backwards to the root aggressor. [min_len] defaults to 2
    (at least one victim <- aggressor hop where both died). *)

val thread_stats : t -> (int * tstat) list
(** Sorted by thread id. *)

val wasted_of : t -> tid:int -> int
val total_wasted : t -> int

val most_starved : t -> (int * tstat) option
(** The thread with the worst abort/commit imbalance: most aborts,
    ties broken toward fewer commits, then more wasted cycles. [None]
    when no thread has aborted or committed. *)

val top_aggressor : t -> (int * tstat) option
(** The thread that inflicted the most aborts, if any. *)

val to_json : ?max_chains:int -> t -> Stm_obs.Json.t
val pp : ?max_chains:int -> Format.formatter -> t -> unit
