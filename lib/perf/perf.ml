open Bechamel
open Toolkit

type sample = {
  name : string;
  ns_per_op : float;
  alloc_words_per_op : float;
}

type report = {
  quick : bool;
  backend : Stm_core.Config.versioning;
  validation : Stm_core.Config.validation;
  samples : sample list;
}

(* ------------------------------------------------------------------ *)
(* Benchmark bodies                                                    *)
(* ------------------------------------------------------------------ *)

(* Every body is a self-contained [Stm.run] (or explorer / fuzz-campaign
   invocation): heap, site table and STM context are reset per call, so
   repeated invocations are identical work. All virtual-time results are
   deterministic; only the host wall-clock varies. *)

let cell = "PerfCell"

(* The weak-atomicity configuration the backend-sensitive txn/diag
   benches run under. The [lazy-write-commit] bench stays pinned to the
   lazy backend as a fixed cross-backend reference point. *)
let cfg_of_backend = function
  | Stm_core.Config.Eager -> Stm_core.Config.eager_weak
  | Stm_core.Config.Lazy -> Stm_core.Config.lazy_weak
  | Stm_core.Config.Mvcc -> Stm_core.Config.mvcc_weak

(* Re-read the same granule many times inside one transaction. Before the
   dedup-on-insert read set this grew the read set by one entry per read
   and made every periodic validation walk the whole list - the quadratic
   hot path this suite exists to ratchet. *)
let revalidate cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let o = Stm_core.Stm.alloc ~cls:cell 1 in
         Stm_core.Stm.atomic (fun () ->
             for _ = 1 to 4096 do
               ignore (Stm_core.Stm.read o 0)
             done)))

(* A large read set kept hot by re-reads: 1024 distinct granules, then
   re-reads to 8192 total observations, with a tight validation cadence
   (every 16 accesses, the knob a long-transaction workload would turn
   up for opacity). Incremental validation walks all 1024 entries at
   every periodic checkpoint — 512 full walks per run; the
   global-commit-clock scheme answers each checkpoint in O(1) while the
   clock is unchanged — the headline win of timestamp validation. *)
let revalidate_heavy cfg () =
  let cfg = { cfg with Stm_core.Config.validate_every = 16 } in
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let objs =
           Array.init 1024 (fun _ -> Stm_core.Stm.alloc ~cls:cell 1)
         in
         Stm_core.Stm.atomic (fun () ->
             for round = 0 to 7 do
               ignore round;
               Array.iter (fun o -> ignore (Stm_core.Stm.read o 0)) objs
             done)))

(* Read-only transactions over a shared structure: under the timestamp
   scheme each commit skips the commit-time validation walk entirely and
   serializes at its begin snapshot. *)
let read_only_commit cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let objs =
           Array.init 512 (fun _ -> Stm_core.Stm.alloc ~cls:cell 1)
         in
         for _ = 1 to 8 do
           Stm_core.Stm.atomic (fun () ->
               Array.iter (fun o -> ignore (Stm_core.Stm.read o 0)) objs)
         done))

(* Open-for-read of many distinct objects: read-set insertion cost. *)
let read_distinct cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let objs =
           Array.init 128 (fun _ -> Stm_core.Stm.alloc ~cls:cell 1)
         in
         for _ = 1 to 8 do
           Stm_core.Stm.atomic (fun () ->
               Array.iter (fun o -> ignore (Stm_core.Stm.read o 0)) objs)
         done))

(* Open-for-write + commit-time release under the selected backend:
   undo log (eager), write buffer (lazy), or version install (mvcc). *)
let write_commit cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let objs =
           Array.init 64 (fun _ -> Stm_core.Stm.alloc ~cls:cell 1)
         in
         for i = 1 to 8 do
           Stm_core.Stm.atomic (fun () ->
               Array.iter
                 (fun o -> Stm_core.Stm.write o 0 (Stm_core.Stm.vint i))
                 objs)
         done))

(* Same shape under lazy versioning: write-buffer slots + write-back. *)
let lazy_write_commit () =
  ignore
    (Stm_core.Stm.run ~cfg:Stm_core.Config.lazy_weak (fun () ->
         let objs =
           Array.init 64 (fun _ -> Stm_core.Stm.alloc ~cls:cell 1)
         in
         for i = 1 to 8 do
           Stm_core.Stm.atomic (fun () ->
               Array.iter
                 (fun o -> Stm_core.Stm.write o 0 (Stm_core.Stm.vint i))
                 objs)
         done))

(* Deliberate abort/retry churn: descriptor, table and log turnover. *)
let abort_retry cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let o = Stm_core.Stm.alloc ~cls:cell 1 in
         for _ = 1 to 32 do
           let tries = ref 0 in
           Stm_core.Stm.atomic (fun () ->
               ignore (Stm_core.Stm.read o 0);
               Stm_core.Stm.write o 0 (Stm_core.Stm.vint !tries);
               incr tries;
               if !tries < 8 then Stm_core.Stm.abort_and_retry ())
         done))

(* One systematic-explorer cell of the Figure 6 matrix: scheduler pick
   rate under the Controlled policy. *)
let fig6_explorer () =
  ignore
    (Stm_litmus.Matrix.run_cell ~max_runs:500
       Stm_litmus.Programs.speculative_lost_update
       (Stm_litmus.Modes.Weak Stm_core.Config.Eager))

(* End-to-end Tsp at 4 simulated processors (the fig18 unit): IR
   interpreter dispatch + Min_clock scheduler + full STM protocol. *)
let fig18_tsp =
  let w = Stm_workloads.Workload.scaled Stm_workloads.Tsp.tsp 0.25 in
  let prog = Stm_workloads.Workload.program w in
  let params =
    [ ("threads", 4); ("use_locks", 0) ] @ w.Stm_workloads.Workload.params
  in
  fun () ->
    ignore
      (Stm_ir.Interp.run ~cfg:Stm_core.Config.eager_strong ~params prog)

(* One small expect-clean fuzz campaign: generation + random-schedule
   execution + serializability oracle. *)
let fuzz_campaign =
  let budget =
    {
      Stm_check.Fuzz.default_budget with
      Stm_check.Fuzz.programs = 6;
      seeds = 2;
      base_seed = 7;
    }
  in
  let campaign = List.hd Stm_check.Fuzz.clean_campaigns in
  fun () -> ignore (Stm_check.Fuzz.run_campaign budget campaign)

(* Two threads incrementing one public counter: the conflict/abort event
   shape the diagnosis layer exists for. Measured once bare and once with
   the full pipeline (heatmap + causality + flight recorder) attached as
   a Debug sink - the difference is the live cost of [--diag]. The
   *disabled* cost (diag code merged but no sink installed) is what the
   [--diag-gate] ratchet bounds on the txn/fig6 benches. *)
let diag_churn cfg () =
  ignore
    (Stm_core.Stm.run ~cfg (fun () ->
         let o = Stm_core.Stm.alloc_public ~cls:cell 1 in
         let worker () =
           for i = 1 to 64 do
             Stm_core.Stm.atomic (fun () ->
                 let v = Stm_core.Stm.to_int (Stm_core.Stm.read o 0) in
                 Stm_core.Stm.write o 0 (Stm_core.Stm.vint (v + i)))
           done
         in
         let t = Stm_runtime.Sched.spawn worker in
         worker ();
         Stm_runtime.Sched.join t))

let diag_churn_on cfg () =
  let d = Stm_diag.Diag.create () in
  Stm_core.Trace.set_sink ~level:Stm_core.Trace.Debug
    (Some (Stm_diag.Diag.consumer d));
  Fun.protect ~finally:(fun () -> Stm_core.Trace.set_sink None)
    (diag_churn cfg)

(* End-to-end store engine runs (KV shards + YCSB-style clients + full
   STM protocol + Min_clock scheduler), sized to finish in host
   microseconds: host cost per simulated store operation. *)
let store_bench mode profile =
  let p =
    {
      Stm_store.Engine.default with
      Stm_store.Engine.profile;
      mode;
      shards = 4;
      clients = 4;
      keys = 256;
      buckets = 32;
      ops_per_client = 32;
    }
  in
  fun () -> ignore (Stm_store.Engine.run p)

let bodies ?(validation = Stm_core.Config.Incremental) backend :
    (string * (unit -> unit)) list =
  let cfg = Stm_core.Config.with_validation validation (cfg_of_backend backend) in
  let store_mode =
    match backend with
    | Stm_core.Config.Mvcc -> Stm_store.Kv.Mvcc
    | Stm_core.Config.Eager | Stm_core.Config.Lazy -> Stm_store.Kv.Strong
  in
  [
    ("txn/revalidate", revalidate cfg);
    ("txn/revalidate-heavy", revalidate_heavy cfg);
    ("txn/read-only-commit", read_only_commit cfg);
    ("txn/read-distinct", read_distinct cfg);
    ("txn/write-commit", write_commit cfg);
    ("txn/lazy-write-commit", lazy_write_commit);
    ("txn/abort-retry", abort_retry cfg);
    ("fig6/explorer-cell", fig6_explorer);
    ("fig18/tsp-4t", fig18_tsp);
    ("fuzz/clean-campaign", fuzz_campaign);
    ("diag/churn-off", diag_churn cfg);
    ("diag/churn-on", diag_churn_on cfg);
    ("store/read-heavy", store_bench store_mode Stm_store.Profile.read_heavy);
    ("store/write-heavy", store_bench store_mode Stm_store.Profile.write_heavy);
    ("store/batch", store_bench store_mode Stm_store.Profile.batch_mix);
  ]

let bench_names = List.map fst (bodies Stm_core.Config.Eager)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* Words allocated by one invocation, after one warm-up call so one-time
   setup is excluded. [Gc.allocated_bytes] reads the young pointer, so
   allocations still sitting in the current minor chunk are counted
   (unlike [Gc.quick_stat]). *)
let alloc_words_of f =
  f ();
  let b0 = Gc.allocated_bytes () in
  f ();
  let b1 = Gc.allocated_bytes () in
  (b1 -. b0) /. float_of_int (Sys.word_size / 8)

let group_name = "perf"

let suite ?(quick = false) ?(backend = Stm_core.Config.Eager)
    ?(validation = Stm_core.Config.Incremental) () =
  let bodies = bodies ~validation backend in
  let tests =
    Test.make_grouped ~name:group_name
      (List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) bodies)
  in
  let cfg =
    if quick then Benchmark.cfg ~limit:10 ~quota:(Time.second 0.1) ~kde:None ()
    else Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let ns_of name =
    match Hashtbl.find_opt results (group_name ^ "/" ^ name) with
    | Some est -> (
        match Analyze.OLS.estimates est with
        | Some [ ns ] -> ns
        | Some _ | None -> nan)
    | None -> nan
  in
  let samples =
    List.map
      (fun (name, f) ->
        {
          name;
          ns_per_op = ns_of name;
          alloc_words_per_op = alloc_words_of f;
        })
      bodies
    |> List.sort (fun a b -> compare a.name b.name)
  in
  { quick; backend; validation; samples }

(* ------------------------------------------------------------------ *)
(* JSON, baseline comparison                                           *)
(* ------------------------------------------------------------------ *)

let to_json r =
  let open Stm_obs in
  Json.Obj
    [
      ("schema", Json.Str "stm-perf/1");
      ("quick", Json.Bool r.quick);
      ( "backend",
        Json.Str (Stm_core.Config.versioning_to_string r.backend) );
      ( "validation",
        Json.Str (Stm_core.Config.validation_to_string r.validation) );
      ( "benches",
        Json.Obj
          (List.map
             (fun s ->
               ( s.name,
                 Json.Obj
                   [
                     ("ns_per_op", Json.Float s.ns_per_op);
                     ("alloc_words_per_op", Json.Float s.alloc_words_per_op);
                   ] ))
             r.samples) );
    ]

let json_float = function
  | Stm_obs.Json.Float f -> Some f
  | Stm_obs.Json.Int i -> Some (float_of_int i)
  | _ -> None

let baseline_of_json json =
  match Stm_obs.Json.member "benches" json with
  | Some (Stm_obs.Json.Obj benches) ->
      List.filter_map
        (fun (name, v) ->
          match Option.bind (Stm_obs.Json.member "ns_per_op" v) json_float with
          | Some ns -> Some (name, ns)
          | None -> None)
        benches
  | Some _ | None -> []

type comparison = {
  c_name : string;
  c_ns : float;
  c_baseline_ns : float;
  c_speedup : float;
}

let compare_to_baseline ~baseline r =
  List.filter_map
    (fun s ->
      match List.assoc_opt s.name baseline with
      | Some b when b > 0. && not (Float.is_nan s.ns_per_op) ->
          Some
            {
              c_name = s.name;
              c_ns = s.ns_per_op;
              c_baseline_ns = b;
              c_speedup = b /. s.ns_per_op;
            }
      | Some _ | None -> None)
    r.samples

let regressions ~threshold_pct comps =
  List.filter
    (fun c -> c.c_ns > c.c_baseline_ns *. (1. +. (threshold_pct /. 100.)))
    comps

let pp_report ppf r =
  Fmt.pf ppf "%-24s %14s %16s@." "bench" "ns/op" "alloc words/op";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-24s %14.0f %16.0f@." s.name s.ns_per_op
        s.alloc_words_per_op)
    r.samples

let pp_comparison ppf comps =
  Fmt.pf ppf "%-24s %14s %14s %9s@." "bench" "ns/op" "baseline" "speedup";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-24s %14.0f %14.0f %8.2fx@." c.c_name c.c_ns c.c_baseline_ns
        c.c_speedup)
    comps
