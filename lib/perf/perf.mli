(** Wall-clock performance harness for the STM runtime's hot paths.

    Unlike every other harness in this repository, which measures
    {e simulated} cycles on the deterministic cost clock, this suite
    measures {e host} wall-clock time (Bechamel monotonic clock, OLS
    estimate) and host allocation (GC words per operation). It exists to
    ratchet the reproduction-overhead of the simulator itself: read-set
    maintenance, validation, descriptor churn, scheduler picks, and
    interpreter dispatch.

    The suite is run by [stm_bench --perf]; results are written as JSON
    ([BENCH_PR4.json] by default) and compared against the checked-in
    [bench/baseline.json]. See [docs/PERFORMANCE.md]. *)

type sample = {
  name : string;
  ns_per_op : float;  (** OLS wall-clock estimate per operation *)
  alloc_words_per_op : float;  (** GC-allocated words per operation *)
}

type report = {
  quick : bool;
  backend : Stm_core.Config.versioning;  (** see {!suite} *)
  validation : Stm_core.Config.validation;  (** see {!suite} *)
  samples : sample list;  (** sorted by name *)
}

val bench_names : string list
(** Every bench the suite runs, in definition order ([stm_bench --list]). *)

val suite :
  ?quick:bool ->
  ?backend:Stm_core.Config.versioning ->
  ?validation:Stm_core.Config.validation ->
  unit ->
  report
(** Run every microbench and end-to-end bench. [quick] shrinks the
    Bechamel quota for CI smoke runs (same operations, fewer samples).
    [backend] (default [Eager]) selects the versioning backend the
    backend-sensitive benches run under — the txn/* and diag/* benches
    switch their weak-atomicity configuration, the store/* benches run
    the store's matching mode ([Kv.Mvcc] under mvcc, [Kv.Strong]
    otherwise); [lazy-write-commit] and the end-to-end figure/fuzz units
    keep their own fixed configurations. [validation] (default
    [Incremental]) switches the txn/* and diag/* configuration to the
    global-commit-clock scheme; the revalidate-heavy and
    read-only-commit benches are its showcase — see docs/PERFORMANCE.md.
    Reports for different backends/validation schemes ratchet against
    different baseline files ([bench/baseline.json],
    [bench/baseline-mvcc.json], [bench/baseline-timestamp.json]). *)

val to_json : report -> Stm_obs.Json.t

val baseline_of_json : Stm_obs.Json.t -> (string * float) list
(** Extract [name -> ns_per_op] pairs from a report JSON (the baseline
    file uses the same schema as {!to_json} output). *)

type comparison = {
  c_name : string;
  c_ns : float;
  c_baseline_ns : float;
  c_speedup : float;  (** baseline / current; > 1 means faster now *)
}

val compare_to_baseline :
  baseline:(string * float) list -> report -> comparison list

val regressions :
  threshold_pct:float -> comparison list -> comparison list
(** Benches slower than baseline by more than [threshold_pct] percent. *)

val pp_report : Format.formatter -> report -> unit
val pp_comparison : Format.formatter -> comparison list -> unit
