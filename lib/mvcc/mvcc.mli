(** Multi-version concurrency control: commit clock, snapshot registry,
    version-chain GC.

    One instance per STM context. Granules (heap objects) carry their own
    bounded version chains (see {!Stm_runtime.Heap}); this module draws
    commit timestamps from the system-wide {!Stm_runtime.Gvc} clock,
    tracks which snapshots are still read by live transactions, and
    prunes chain entries nothing can reach.

    The concurrency protocol built on top (in [Stm_core.Txn]) is
    first-committer-wins: update transactions install their buffered
    writes at a fresh clock tick iff no newer version of any written
    object appeared since their snapshot; read-only transactions commit
    validation-free — their serialization point is their snapshot point,
    which is what makes them abort-free. *)

open Stm_runtime

type t

type stats = {
  mutable installs : int;  (** versions installed (commits + strong nontxn writes) *)
  mutable pruned : int;  (** past versions dropped by GC *)
  mutable snapshot_reads : int;  (** reads served from a past version *)
  mutable too_old : int;  (** reads that missed a pruned version *)
  mutable ro_commits : int;  (** read-only commits (validation-free) *)
}

val default_max_versions : int
(** [8] — current version plus up to seven retired ones per granule. *)

val create : ?gvc:Gvc.t -> ?max_versions:int -> unit -> t
(** [?gvc] shares an existing global commit clock (the txn layer passes
    the system-wide one); a private clock is created when omitted. *)

val now : t -> int

val gvc : t -> Gvc.t
(** The commit clock this instance draws timestamps from. *)

val max_versions : t -> int
val stats : t -> stats

val advance : t -> int
(** Issue the next commit timestamp. *)

val begin_snapshot : t -> int
(** Register a snapshot at the current clock; pair with
    {!end_snapshot}. *)

val end_snapshot : t -> int -> unit

val oldest_active : t -> int
(** The oldest registered snapshot, or the clock when none is live. *)

val read : t -> Heap.obj -> int -> snap:int -> Heap.value option
(** The value of the field as of snapshot [snap]; [None] when the needed
    version was pruned (snapshot too old — the caller aborts). *)

val fcw_ok : Heap.obj -> snap:int -> bool
(** First-committer-wins: true iff no version newer than [snap] has been
    installed on the object. *)

val install : ?txid:int -> ?tid:int -> t -> Heap.obj -> ts:int -> unit
(** Retire the object's current fields into its chain and stamp the new
    timestamp; the caller then overwrites the fields in place. Must run
    without a scheduler yield, before the first store touching the
    object. Prunes the chain against the oldest live snapshot and the
    [max_versions] bound. [?txid]/[?tid] name the installing commit for
    abort attribution (see {!installer_of}); they default to [-1]
    (non-transactional / unknown). *)

val installer_of : t -> ts:int -> (int * int) option
(** [(txid, tid)] of the commit that installed the version stamped [ts],
    or [None] when the attribution ring has since reused the slot. *)

val note_ro_commit : t -> unit

val stats_to_assoc : t -> (string * int) list
