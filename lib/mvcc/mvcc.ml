open Stm_runtime

(* Multi-version concurrency control for the simulated heap.

   One instance holds a handle on the global commit clock (shared with
   the single-version backends under timestamp validation) and the
   registry of live snapshots. Each granule (heap object) keeps a bounded version chain
   (see {!Heap.push_version} and friends); this module decides *when*
   versions are installed and *which* retired versions are still
   reachable.

   The protocol is first-committer-wins over whole objects:

   - a transaction takes a snapshot timestamp at begin and reads every
     object as of that timestamp, abort-free;
   - writes are buffered; commit installs them at a fresh clock tick iff
     no other committer installed a newer version of a written object
     since the snapshot was taken;
   - read-only transactions commit without any validation at all - their
     serialization point is their snapshot point.

   Installation is performed by the caller (the txn layer / the strong
   write barrier) without a scheduler yield, so on the cooperative
   scheduler a commit's write-back is atomic by construction: no reader
   ever observes a half-installed commit. *)

type stats = {
  mutable installs : int;  (* versions installed (commits + nontxn writes) *)
  mutable pruned : int;  (* past versions dropped by GC *)
  mutable snapshot_reads : int;  (* reads served from a past version *)
  mutable too_old : int;  (* reads that missed a pruned version *)
  mutable ro_commits : int;  (* read-only commits (validation-free) *)
}

(* Who installed the version stamped [ts], for abort attribution: a
   direct-mapped ring keyed by the low bits of the timestamp. Entries for
   old timestamps are evicted by newer installs that alias the slot;
   lookups then return nothing, which degrades to the unattributed abort
   the layer produced before the ring existed. *)
let installer_ring = 256

type t = {
  gvc : Gvc.t;  (* the commit clock — shared with the rest of the system *)
  max_versions : int;  (* chain bound, current version included *)
  active : (int, int) Hashtbl.t;  (* snapshot ts -> live-transaction count *)
  inst_ts : int array;  (* ring slot -> timestamp, -1 = empty *)
  inst_txid : int array;  (* installing txid, -1 = non-transactional *)
  inst_tid : int array;  (* installing thread *)
  stats : stats;
}

let default_max_versions = 8

let create ?gvc ?(max_versions = default_max_versions) () =
  if max_versions < 1 then invalid_arg "Mvcc.create: max_versions must be >= 1";
  {
    gvc = (match gvc with Some g -> g | None -> Gvc.create ());
    max_versions;
    active = Hashtbl.create 32;
    inst_ts = Array.make installer_ring (-1);
    inst_txid = Array.make installer_ring (-1);
    inst_tid = Array.make installer_ring (-1);
    stats = { installs = 0; pruned = 0; snapshot_reads = 0; too_old = 0; ro_commits = 0 };
  }

let now t = Gvc.now t.gvc
let gvc t = t.gvc
let max_versions t = t.max_versions
let stats t = t.stats
let advance t = Gvc.advance t.gvc

(* ------------------------------------------------------------------ *)
(* Snapshot registry                                                   *)
(* ------------------------------------------------------------------ *)

let begin_snapshot t =
  Footprint.write Footprint.oid_mvcc;
  let ts = Gvc.now t.gvc in
  Hashtbl.replace t.active ts
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.active ts));
  ts

let end_snapshot t ts =
  Footprint.write Footprint.oid_mvcc;
  match Hashtbl.find_opt t.active ts with
  | Some 1 -> Hashtbl.remove t.active ts
  | Some n -> Hashtbl.replace t.active ts (n - 1)
  | None -> ()

(* The oldest snapshot any live transaction still reads at; when no
   transaction is live, the clock itself - every retired version is then
   unreachable. Live-transaction counts are small (one per simulated
   thread), so the fold is cheap. *)
let oldest_active t =
  Footprint.read Footprint.oid_mvcc;
  Hashtbl.fold (fun ts _ acc -> min ts acc) t.active (Gvc.now t.gvc)

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

(* Read [obj.(fld)] as of snapshot [snap]. [None] = the version was
   pruned (snapshot too old); the caller turns that into an abort. *)
let read t (obj : Heap.obj) fld ~snap =
  if Heap.version_ts obj <= snap then Some (Heap.get obj fld)
  else begin
    match Heap.read_at obj fld ~ts:snap with
    | Some _ as v ->
        t.stats.snapshot_reads <- t.stats.snapshot_reads + 1;
        v
    | None ->
        t.stats.too_old <- t.stats.too_old + 1;
        None
  end

(* ------------------------------------------------------------------ *)
(* Installation + GC                                                   *)
(* ------------------------------------------------------------------ *)

(* First-committer-wins check for one written object: no version newer
   than the writer's snapshot may have been installed. *)
let fcw_ok (obj : Heap.obj) ~snap = Heap.version_ts obj <= snap

(* Retire the current fields of [obj] into its chain, to be overwritten
   by the caller with the version stamped [ts], then GC the chain: drop
   whatever the oldest live snapshot can no longer reach, bounded by
   [max_versions] overall. Must be called before the first store of the
   installing commit touches [obj], and the whole install must run
   without a scheduler yield. *)
let install ?(txid = -1) ?(tid = -1) t (obj : Heap.obj) ~ts =
  Footprint.write Footprint.oid_mvcc;
  Heap.push_version obj;
  Heap.set_version_ts obj ts;
  let slot = ts land (installer_ring - 1) in
  t.inst_ts.(slot) <- ts;
  t.inst_txid.(slot) <- txid;
  t.inst_tid.(slot) <- tid;
  t.stats.installs <- t.stats.installs + 1;
  let dropped =
    Heap.prune_past obj ~oldest:(oldest_active t) ~max_versions:t.max_versions
  in
  t.stats.pruned <- t.stats.pruned + dropped

(* (txid, tid) of the commit that installed the version stamped [ts];
   [None] once the ring slot has been reused by a later install. *)
let installer_of t ~ts =
  Footprint.read Footprint.oid_mvcc;
  let slot = ts land (installer_ring - 1) in
  if ts >= 0 && t.inst_ts.(slot) = ts then
    Some (t.inst_txid.(slot), t.inst_tid.(slot))
  else None

let note_ro_commit t = t.stats.ro_commits <- t.stats.ro_commits + 1

let stats_to_assoc t =
  [
    ("mvcc_installs", t.stats.installs);
    ("mvcc_pruned", t.stats.pruned);
    ("mvcc_snapshot_reads", t.stats.snapshot_reads);
    ("mvcc_too_old", t.stats.too_old);
    ("mvcc_ro_commits", t.stats.ro_commits);
  ]
