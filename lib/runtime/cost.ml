type t = {
  plain_load : int;
  plain_store : int;
  alu : int;
  atomic_rmw : int;
  barrier_entry : int;
  txn_begin : int;
  txn_commit : int;
  txn_per_read : int;
  txn_per_write : int;
  txn_validate_fast : int;
  txn_abort : int;
  publish_base : int;
  publish_per_obj : int;
  backoff_base : int;
  backoff_cap : int;
  alloc : int;
  call : int;
  lock_acquire : int;
  lock_release : int;
}

let default =
  {
    plain_load = 1;
    plain_store = 1;
    alu = 1;
    atomic_rmw = 50;
    barrier_entry = 2;
    txn_begin = 25;
    txn_commit = 30;
    txn_per_read = 2;
    txn_per_write = 2;
    txn_validate_fast = 2;
    txn_abort = 40;
    publish_base = 10;
    publish_per_obj = 5;
    backoff_base = 30;
    backoff_cap = 500;
    alloc = 10;
    call = 5;
    lock_acquire = 30;
    lock_release = 10;
  }

let free =
  {
    plain_load = 0;
    plain_store = 0;
    alu = 0;
    atomic_rmw = 0;
    barrier_entry = 0;
    txn_begin = 0;
    txn_commit = 0;
    txn_per_read = 0;
    txn_per_write = 0;
    txn_validate_fast = 0;
    txn_abort = 0;
    publish_base = 0;
    publish_per_obj = 0;
    backoff_base = 0;
    backoff_cap = 0;
    alloc = 0;
    call = 0;
    lock_acquire = 0;
    lock_release = 0;
  }
