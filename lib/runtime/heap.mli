(** Simulated shared heap.

    Objects carry a one-word transaction record ([txrec]) exactly as in the
    paper (Section 3.1): the STM library interprets its bits; the heap only
    stores it. Fields are a flat array of {!value}s; arrays are objects
    whose fields are the elements. Static fields of a class live in a
    per-class "statics" object so that they have a transaction record and
    participate in the same barrier protocols as instance fields. *)

type value =
  | Vunit
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vref of obj

and obj = private {
  oid : int;  (** unique id, deterministic per run *)
  cls : string;  (** class name, or ["<array>"] / ["<statics:C>"] *)
  kind : [ `Obj | `Arr | `Statics ];
  txrec : int Atomic.t;  (** transaction record word (see {!Stm_core.Txrec}) *)
  fields : value array;
  mutable vts : int;
      (** mvcc backend: commit timestamp of the current [fields]
          (0 = initial state). Single-version backends leave it at 0. *)
  mutable past : version list;
      (** mvcc backend: superseded versions, newest first. *)
}

and version = private { vfrom : int; vvals : value array }
(** One superseded whole-object version: the fields that were current
    from commit timestamp [vfrom] until the next-newer version's. *)

val reset : unit -> unit
(** Reset the object-id counter (call at the start of each simulated run
    for deterministic ids). *)

val alloc : ?txrec:int -> cls:string -> int -> obj
(** [alloc ~cls n] creates an object with [n] fields initialised to
    {!Vnull}-appropriate defaults ([Vnull]). [txrec] defaults to the
    shared-state encoding with version 0 (an all-public heap); the STM
    passes the private encoding when dynamic escape analysis is on. *)

val alloc_array : ?txrec:int -> int -> value -> obj
(** [alloc_array n init] creates an array of [n] elements [init]. *)

val alloc_statics : ?txrec:int -> cls:string -> int -> obj
(** Statics holder for class [cls]; always public. *)

val dummy : obj
(** Sentinel object (oid [-1], no fields) for pre-sizing growable arrays
    of objects; never a real heap object, never synchronized on. *)

val get : obj -> int -> value
(** Raw field load — no barrier, no cost. The STM builds barriers on top. *)

val set : obj -> int -> value -> unit
(** Raw field store. *)

val nfields : obj -> int

(** {2 Transaction-record accesses}

    Footprint-reporting wrappers around the [txrec] atomic. The word is
    reported against the object's own oid: it orders with the fields it
    guards, so both live in one conflict granule. All barrier-layer and
    STM-internal txrec traffic goes through these so the DPOR explorer
    sees it (see {!Footprint}). *)

val txrec_get : obj -> int
val txrec_set : obj -> int -> unit

val txrec_peek : obj -> int
(** Raw [txrec] load with no footprint report. For conflict-retry
    loops that classify the observation themselves: a blocked retry
    reports {!Stm_runtime.Footprint.spin_read}, any other iteration a
    plain read (see {!Stm_runtime.Footprint.kind}). *)

val txrec_cas : obj -> int -> int -> bool
(** [txrec_cas o old w] compare-and-sets the record from [old] to [w];
    reported as a write whether or not it succeeds (a failed acquire
    still raced with the holder). *)

(** {2 Version chains (mvcc backend)}

    The heap only stores the chain; the commit clock, snapshot registry
    and GC policy live in {!Stm_mvcc.Mvcc}. *)

val version_ts : obj -> int
(** Commit timestamp of the current fields. *)

val version_ts_peek : obj -> int
(** Raw [version_ts] with no footprint report, for retry loops that
    classify the observation themselves (see {!txrec_peek}). *)

val set_version_ts : obj -> int -> unit

val past_versions : obj -> version list
(** Superseded versions, newest first. *)

val chain_length : obj -> int
(** [1 +] the number of retained past versions. *)

val push_version : obj -> unit
(** Retire the current fields (a copy) into the chain at the current
    [version_ts]; the caller then updates [fields] in place and stamps
    the new timestamp with {!set_version_ts}. *)

val read_at : obj -> int -> ts:int -> value option
(** [read_at o fld ~ts] is the value of [o.(fld)] as of snapshot [ts]:
    the newest version installed at or before [ts]. [None] when the
    chain was pruned past [ts] (snapshot too old). *)

val prune_past : obj -> oldest:int -> max_versions:int -> int
(** Drop past versions no snapshot [>= oldest] can reach, and bound the
    whole chain to [max_versions] entries regardless (dropping reachable
    versions then surfaces as {!read_at} misses). Returns the number of
    versions dropped. *)

val shared_txrec0 : int
(** The transaction-record word for a public object with version 0:
    [0b011]. Kept here so the heap does not depend on the STM library. *)

val private_txrec : int
(** The all-ones private encoding: [-1]. *)

val value_equal : value -> value -> bool
(** Structural on scalars, physical on references. *)

val pp_value : Format.formatter -> value -> unit
val show_value : value -> string
