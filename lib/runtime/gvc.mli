(** Global commit clock (TL2/TinySTM-style global version clock).

    A single monotone counter shared by every backend of one simulated
    system. The multi-version backend draws its commit timestamps from
    it, and under [Config.Timestamp] validation the single-version
    backends bump it at every commit that publishes shared state. The
    invariant all consumers rely on: the clock is unchanged between two
    observations iff no transaction (or strong non-transactional write)
    committed shared state in between.

    On the cooperative scheduler all operations are yield-free, so a
    bump is atomic with whatever release it accompanies. *)

type t

val create : unit -> t
(** A fresh clock at 0. *)

val now : t -> int
(** Current value. *)

val advance : t -> int
(** Bump the clock and return the new value (first commit gets 1). *)

val reset : t -> unit
(** Back to 0 — only for harnesses that reuse a system across runs. *)
