type t = { mutable clock : int }

let create () = { clock = 0 }

let now t =
  Footprint.read Footprint.oid_gvc;
  t.clock

let advance t =
  Footprint.write Footprint.oid_gvc;
  t.clock <- t.clock + 1;
  t.clock

let reset t = t.clock <- 0
