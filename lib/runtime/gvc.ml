type t = { mutable clock : int }

let create () = { clock = 0 }
let now t = t.clock

let advance t =
  t.clock <- t.clock + 1;
  t.clock

let reset t = t.clock <- 0
