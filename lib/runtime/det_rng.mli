(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through this module so
    that whole runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same future stream. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val split : t -> t
(** A generator with a stream independent from the parent's. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** Weighted choice: each element is drawn with probability proportional
    to its (non-negative) weight. The total weight must be positive. *)
