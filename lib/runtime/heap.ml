type value =
  | Vunit
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vref of obj

and obj = {
  oid : int;
  cls : string;
  kind : [ `Obj | `Arr | `Statics ];
  txrec : int Atomic.t;
  fields : value array;
}

let counter = ref 0

let reset () = counter := 0

let shared_txrec0 = 0b011
let private_txrec = -1

let fresh_oid () =
  incr counter;
  !counter

let alloc ?(txrec = shared_txrec0) ~cls n =
  {
    oid = fresh_oid ();
    cls;
    kind = `Obj;
    txrec = Atomic.make txrec;
    fields = Array.make n Vnull;
  }

let alloc_array ?(txrec = shared_txrec0) n init =
  {
    oid = fresh_oid ();
    cls = "<array>";
    kind = `Arr;
    txrec = Atomic.make txrec;
    fields = Array.make n init;
  }

let alloc_statics ?(txrec = shared_txrec0) ~cls n =
  {
    oid = fresh_oid ();
    cls = "<statics:" ^ cls ^ ">";
    kind = `Statics;
    txrec = Atomic.make txrec;
    fields = Array.make n Vnull;
  }

(* Sentinel for unused slots of growable arrays of objects (the STM's
   reusable logs). Never registered, never reachable from user code; its
   negative oid cannot collide with an allocated object's. *)
let dummy =
  {
    oid = -1;
    cls = "<dummy>";
    kind = `Obj;
    txrec = Atomic.make shared_txrec0;
    fields = [||];
  }

let get o i = o.fields.(i)
let set o i v = o.fields.(i) <- v
let nfields o = Array.length o.fields

let value_equal a b =
  match (a, b) with
  | Vunit, Vunit | Vnull, Vnull -> true
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vref x, Vref y -> x == y
  | (Vunit | Vnull | Vbool _ | Vint _ | Vfloat _ | Vstr _ | Vref _), _ ->
      false

let rec pp_value ppf = function
  | Vunit -> Fmt.string ppf "()"
  | Vnull -> Fmt.string ppf "null"
  | Vbool b -> Fmt.bool ppf b
  | Vint i -> Fmt.int ppf i
  | Vfloat f -> Fmt.float ppf f
  | Vstr s -> Fmt.pf ppf "%S" s
  | Vref o -> Fmt.pf ppf "%s@%d" o.cls o.oid

and show_value v = Fmt.str "%a" pp_value v
