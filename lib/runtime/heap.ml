type value =
  | Vunit
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vref of obj

and obj = {
  oid : int;
  cls : string;
  kind : [ `Obj | `Arr | `Statics ];
  txrec : int Atomic.t;
  fields : value array;
  (* Multi-version backend (mvcc): [fields] always holds the latest
     committed version; [vts] is the commit timestamp it was installed
     at (0 = initial state), and [past] chains the superseded versions,
     newest first. Single-version backends never touch either field. *)
  mutable vts : int;
  mutable past : version list;
}

and version = { vfrom : int; vvals : value array }
(* A superseded whole-object version: [vvals] were the object's fields
   from commit timestamp [vfrom] (inclusive) until the next-newer
   version's [vfrom] (exclusive). *)

let counter = ref 0

let reset () = counter := 0

let shared_txrec0 = 0b011
let private_txrec = -1

let fresh_oid () =
  (* Allocation order is shared state: object identity flows from it. *)
  Footprint.write Footprint.oid_alloc;
  incr counter;
  !counter

let alloc ?(txrec = shared_txrec0) ~cls n =
  {
    oid = fresh_oid ();
    cls;
    kind = `Obj;
    txrec = Atomic.make txrec;
    fields = Array.make n Vnull;
    vts = 0;
    past = [];
  }

let alloc_array ?(txrec = shared_txrec0) n init =
  {
    oid = fresh_oid ();
    cls = "<array>";
    kind = `Arr;
    txrec = Atomic.make txrec;
    fields = Array.make n init;
    vts = 0;
    past = [];
  }

let alloc_statics ?(txrec = shared_txrec0) ~cls n =
  {
    oid = fresh_oid ();
    cls = "<statics:" ^ cls ^ ">";
    kind = `Statics;
    txrec = Atomic.make txrec;
    fields = Array.make n Vnull;
    vts = 0;
    past = [];
  }

(* Sentinel for unused slots of growable arrays of objects (the STM's
   reusable logs). Never registered, never reachable from user code; its
   negative oid cannot collide with an allocated object's. *)
let dummy =
  {
    oid = -1;
    cls = "<dummy>";
    kind = `Obj;
    txrec = Atomic.make shared_txrec0;
    fields = [||];
    vts = 0;
    past = [];
  }

let get o i =
  Footprint.read o.oid;
  o.fields.(i)

let set o i v =
  Footprint.write o.oid;
  o.fields.(i) <- v

let nfields o = Array.length o.fields

(* Transaction-record accesses report against the object's own oid: the
   txrec word orders with the fields it guards, so folding both into one
   granule is the accurate conflict relation, not just a safe
   over-approximation. *)

let txrec_peek o = Atomic.get o.txrec

let txrec_get o =
  Footprint.read o.oid;
  Atomic.get o.txrec

let txrec_set o w =
  Footprint.write o.oid;
  Atomic.set o.txrec w

let txrec_cas o old w =
  Footprint.write o.oid;
  Atomic.compare_and_set o.txrec old w

(* ------------------------------------------------------------------ *)
(* Version chains (mvcc backend)                                       *)
(* ------------------------------------------------------------------ *)

let version_ts o =
  Footprint.read o.oid;
  o.vts

let version_ts_peek o = o.vts

let set_version_ts o ts =
  Footprint.write o.oid;
  o.vts <- ts
let past_versions o = o.past
let chain_length o = 1 + List.length o.past

(* Retire the current fields into the chain; the caller then overwrites
   [fields] in place and stamps the new [vts]. *)
let push_version o =
  Footprint.write o.oid;
  o.past <- { vfrom = o.vts; vvals = Array.copy o.fields } :: o.past

(* The value of field [fld] as of snapshot [ts]: the newest version whose
   install timestamp is [<= ts]. [None] means the chain was pruned past
   [ts] (snapshot too old). *)
let read_at o fld ~ts =
  Footprint.read o.oid;
  if o.vts <= ts then Some o.fields.(fld)
  else
    let rec find = function
      | [] -> None
      | { vfrom; vvals } :: older ->
          if vfrom <= ts then Some vvals.(fld) else find older
    in
    find o.past

(* Drop chain entries no live snapshot can reach: walking newest-first,
   every version installed at or before [oldest] except the first is
   unreachable (the first still serves snapshot [oldest] itself). The
   [max_versions] cap bounds the chain length regardless — dropping a
   reachable version is then possible and surfaces to readers as a
   snapshot-too-old miss. Returns the number of versions dropped. *)
let prune_past o ~oldest ~max_versions =
  Footprint.write o.oid;
  let dropped = ref 0 in
  let rec go n = function
    | [] -> []
    | ({ vfrom; _ } as v) :: older ->
        (* [n] entries already kept (current fields included): admitting
           [v] makes [n + 1], which must not exceed the cap *)
        if n + 1 > max_versions then begin
          dropped := !dropped + 1 + List.length older;
          []
        end
        else if vfrom <= oldest then begin
          (* [v] is the floor: everything older is unreachable *)
          dropped := !dropped + List.length older;
          [ v ]
        end
        else v :: go (n + 1) older
  in
  o.past <- go 1 o.past;
  !dropped

let value_equal a b =
  match (a, b) with
  | Vunit, Vunit | Vnull, Vnull -> true
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vref x, Vref y -> x == y
  | (Vunit | Vnull | Vbool _ | Vint _ | Vfloat _ | Vstr _ | Vref _), _ ->
      false

let rec pp_value ppf = function
  | Vunit -> Fmt.string ppf "()"
  | Vnull -> Fmt.string ppf "null"
  | Vbool b -> Fmt.bool ppf b
  | Vint i -> Fmt.int ppf i
  | Vfloat f -> Fmt.float ppf f
  | Vstr s -> Fmt.pf ppf "%S" s
  | Vref o -> Fmt.pf ppf "%s@%d" o.cls o.oid

and show_value v = Fmt.str "%a" pp_value v
