(** Simulated mutual-exclusion lock for the lock-based ("Synch")
    baselines.

    Acquiring a held lock blocks the simulated thread; when the holder
    releases, the longest-waiting thread is woken and its virtual clock is
    advanced to the release instant — contended critical sections therefore
    serialize in virtual time, which is what makes coarse-grained locking
    fail to scale in the OO7 reproduction (Figure 19). *)

type t

val create : ?name:string -> Cost.t -> t

val reset_ids : unit -> unit
(** Reset the deterministic mutex-id counter. Controlled explorers call
    this before each run's setup so that a given mutex reports the same
    {!Footprint.mutex_oid} in every replay. *)

val lock : t -> unit
(** Blocks until the lock is available. Reentrant acquisition by the
    holding thread increments a hold count. *)

val unlock : t -> unit
(** Releases one hold. Raises [Invalid_argument] if the caller does not
    hold the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a

val held : t -> bool
(** True if any thread currently holds the lock. *)
