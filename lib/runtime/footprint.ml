(* Shared-access trace sink for the DPOR explorer.

   The runtime and STM layers call [read]/[write] at every access to
   state that is visible to more than one simulated thread. When no sink
   is installed (the common case: benchmarks, the enumerative explorer,
   production runs) the calls are a single ref dereference and a branch.
   The explorer installs a sink per run and aggregates the accesses of
   each scheduler segment into a footprint, from which it derives the
   happens-before relation and its race-directed backtrack points.

   Real heap objects report their non-negative [oid]. Runtime-internal
   shared state (counters, clocks, registries) is mapped onto reserved
   negative pseudo-oids so that it participates in the same conflict
   relation without colliding with the heap (or with [Heap.dummy]'s
   oid [-1]). *)

type kind = Spin_read | Read | Write

let sink : (int -> kind -> unit) option ref = ref None

let set_sink s = sink := s

let[@inline] read oid =
  match !sink with None -> () | Some f -> f oid Read

let[@inline] write oid =
  match !sink with None -> () | Some f -> f oid Write

let[@inline] spin_read oid =
  match !sink with None -> () | Some f -> f oid Spin_read

let[@inline] active () = !sink <> None

(* Pseudo-oids for runtime-internal shared state. *)

let oid_alloc = -2 (* heap object-id counter: allocation order *)
let oid_txid = -3 (* transaction-id counter *)
let oid_gvc = -4 (* global version clock *)
let oid_quiesce = -5 (* quiescence epochs, tickets, consistency points *)
let oid_mvcc = -6 (* snapshot registry and installer ring *)
let oid_cm = -7 (* stateful contention-manager policy state *)

(* Per-transaction wound flag (and its registry slot). Distinct per
   txid so that unrelated transactions' begin/check traffic does not
   conflict. *)
let flag_oid txid = -(1 lsl 24) - txid

(* Per-mutex lock word. Mutex ids are assigned deterministically per
   run ({!Sim_mutex.reset_ids}). *)
let mutex_oid id = -(1 lsl 20) - id
