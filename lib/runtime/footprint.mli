(** Shared-access trace sink for the DPOR explorer.

    Every layer of the runtime that touches cross-thread-visible state
    reports the access here: heap field and transaction-record accesses
    report the object's [oid]; runtime-internal shared state (allocation
    counter, clocks, registries, locks) reports a reserved negative
    pseudo-oid. With no sink installed the report is a no-op costing one
    dereference and a branch, so uninstrumented runs are unaffected.

    The DPOR explorer ({!Stm_litmus.Explorer.explore_dpor}) installs a
    sink around each controlled run and derives segment footprints —
    and from them the happens-before relation — from these reports.
    Anything two threads use to communicate that does {e not} flow
    through this sink (e.g. plain OCaml refs mutated by more than one
    simulated thread) is invisible to the reduction and can make it
    unsound; programs meant for DPOR certification must confine shared
    state to the simulated heap and runtime primitives. *)

type kind = Spin_read | Read | Write
(** [Spin_read] is a {e futile} spin-wait observation: a blocked retry
    loop re-reading the state it waits on and finding it still blocked.
    Such a read orders the waiter after the write it observed (it joins
    happens-before) but reversing it against a future conflicting write
    only changes how many futile iterations the loop performs before the
    same exit — so the explorer does not seed backtrack points from it
    (the spin-assume reduction of await loops, cf. GenMC). The
    iteration that {e exits} the loop must report a plain [Read]. *)

val set_sink : (int -> kind -> unit) option -> unit
(** [set_sink (Some f)] routes every access to [f oid kind];
    [set_sink None] uninstalls. Not nested: the explorer owns it. *)

val read : int -> unit
(** Report a read of [oid] by the running thread. *)

val write : int -> unit
(** Report a write of [oid] by the running thread. *)

val spin_read : int -> unit
(** Report a futile spin-wait re-read of [oid] (see {!kind}). *)

val active : unit -> bool
(** Whether a sink is currently installed. *)

(** {2 Pseudo-oids}

    Reserved negative ids for runtime-internal shared state; all are
    [<= -2] so they collide neither with heap oids (positive) nor with
    [Heap.dummy] ([-1]). *)

val oid_alloc : int
(** The heap object-id counter: allocation order is shared state. *)

val oid_txid : int
(** The transaction-id counter. *)

val oid_gvc : int
(** The global version clock. *)

val oid_quiesce : int
(** Quiescence epochs, tickets and per-thread consistency points. *)

val oid_mvcc : int
(** The mvcc snapshot registry and installer ring. *)

val oid_cm : int
(** Stateful contention-manager policy state (unused under the
    stateless default policies). *)

val flag_oid : int -> int
(** [flag_oid txid]: transaction [txid]'s wound flag and registry
    slot. *)

val mutex_oid : int -> int
(** [mutex_oid id]: the lock word of simulated mutex [id]. *)
