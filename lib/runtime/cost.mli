(** Cycle-cost model for the simulated multiprocessor.

    The discrete-event scheduler measures execution time in abstract cycles.
    Each runtime and STM operation charges cycles according to this model,
    which is calibrated so that the relative costs match the paper's setting:
    an atomic read-modify-write (CAS / BTR with lock prefix) is an order of
    magnitude more expensive than a plain load or store, transaction begin
    and commit have fixed overheads plus per-log-entry costs, and conflict
    handling backs off exponentially. *)

type t = {
  plain_load : int;      (** ordinary memory load *)
  plain_store : int;     (** ordinary memory store *)
  alu : int;             (** arithmetic / branch *)
  atomic_rmw : int;      (** CAS or locked bit-test-and-reset *)
  barrier_entry : int;   (** fixed cost of entering an isolation barrier *)
  txn_begin : int;       (** starting a transaction *)
  txn_commit : int;      (** commit fixed cost *)
  txn_per_read : int;    (** validating one read-set entry *)
  txn_per_write : int;   (** releasing one write-set entry *)
  txn_validate_fast : int;
      (** O(1) revalidation under [Config.Timestamp]: one global-clock
          compare instead of a read-set walk *)
  txn_abort : int;       (** abort fixed cost (plus undo work) *)
  publish_base : int;    (** publishObject fixed cost *)
  publish_per_obj : int; (** per object marked public *)
  backoff_base : int;    (** first conflict back-off delay *)
  backoff_cap : int;     (** maximum back-off delay *)
  alloc : int;           (** object allocation *)
  call : int;            (** method call overhead *)
  lock_acquire : int;    (** uncontended mutex acquire (atomic) *)
  lock_release : int;
}

val default : t
(** Calibrated default model used by the benchmark harness. *)

val free : t
(** All-zero model: useful in unit tests that only check functional
    behaviour. *)
