open Effect
open Effect.Deep

type tid = int

type policy =
  | Round_robin
  | Random of int
  | Min_clock
  | Controlled of (tid -> tid list -> tid)

type status = Completed | Deadlock of tid list | Fuel_exhausted

type result = {
  status : status;
  makespan : int;
  exns : (tid * exn) list;
  switches : int;
}

exception Not_in_simulation

type tstate = Runnable | Running | Suspended | Done

type thread = {
  tid : tid;
  name : string;
  mutable clock : int;
  mutable state : tstate;
  mutable starter : (unit -> unit) option;
      (* body not yet started; scheduler starts it under its own handler *)
  mutable cont : (unit, unit) continuation option;
  mutable joiners : tid list;
}

(* The engine keeps every thread in [by_tid] (tid-indexed, grow-only) and
   the runnable set in two forms: an O(1) [nrunnable] count, and - under
   [Min_clock] - a binary min-heap on the key (clock, tid).

   The heap needs no lazy deletion because a runnable thread's key is
   immutable: [tick] charges only the Running thread (never enqueued),
   and [wake]/[finish] bump only Suspended threads, before re-enqueueing
   them. The single exception is [rebase], which rewrites every clock and
   therefore rebuilds the heap. Since tids are unique the pop order is a
   total order on (clock, tid) - bit-for-bit the pick sequence of the
   linear min-scan it replaces, independent of heap internals. *)
type engine = {
  mutable by_tid : thread array;  (* grows; index = tid *)
  mutable nthreads : int;
  mutable nrunnable : int;
  mutable heap : thread array;  (* Min_clock only; live prefix [heap_len] *)
  mutable heap_len : int;
  mutable current : thread;
  policy : policy;
  rng : Det_rng.t option;
  mutable rr_cursor : int;
  mutable steps : int;
  max_steps : int;
  mutable exns : (tid * exn) list;
  mutable fuel_out : bool;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : unit Effect.t

let engine : engine option ref = ref None

let get_engine () =
  match !engine with Some e -> e | None -> raise Not_in_simulation

let thread_of e tid =
  if tid < 0 || tid >= e.nthreads then invalid_arg "Sched: bad tid";
  e.by_tid.(tid)

(* ------------------------------------------------------------------ *)
(* Runnable-set maintenance                                            *)
(* ------------------------------------------------------------------ *)

let heap_less a b = a.clock < b.clock || (a.clock = b.clock && a.tid < b.tid)

let heap_push e t =
  let n = Array.length e.heap in
  if e.heap_len >= n then begin
    let a = Array.make (max 8 (2 * n)) t in
    Array.blit e.heap 0 a 0 n;
    e.heap <- a
  end;
  let h = e.heap in
  let i = ref e.heap_len in
  e.heap_len <- e.heap_len + 1;
  h.(!i) <- t;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    if heap_less h.(!i) h.(p) then begin
      let tmp = h.(p) in
      h.(p) <- h.(!i);
      h.(!i) <- tmp;
      i := p
    end
    else continue_ := false
  done

let heap_pop e =
  let h = e.heap in
  let root = h.(0) in
  e.heap_len <- e.heap_len - 1;
  if e.heap_len > 0 then begin
    h.(0) <- h.(e.heap_len);
    (* sift down *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < e.heap_len && heap_less h.(l) h.(!s) then s := l;
      if r < e.heap_len && heap_less h.(r) h.(!s) then s := r;
      if !s <> !i then begin
        let tmp = h.(!s) in
        h.(!s) <- h.(!i);
        h.(!i) <- tmp;
        i := !s
      end
      else continue_ := false
    done
  end;
  root

(* Transition [t] to Runnable. The caller must have finished updating
   [t.clock]: under Min_clock the (clock, tid) key is frozen on entry. *)
let make_runnable e t =
  t.state <- Runnable;
  e.nrunnable <- e.nrunnable + 1;
  match e.policy with Min_clock -> heap_push e t | _ -> ()

(* Rebuild the heap from scratch (after [rebase] rewrites the keys). *)
let heap_rebuild e =
  match e.policy with
  | Min_clock ->
      e.heap_len <- 0;
      for tid = 0 to e.nthreads - 1 do
        let t = e.by_tid.(tid) in
        if t.state = Runnable then heap_push e t
      done
  | _ -> ()

let grow_by_tid e t =
  let n = Array.length e.by_tid in
  if e.nthreads >= n then begin
    let a = Array.make (max 8 (2 * n)) t in
    Array.blit e.by_tid 0 a 0 n;
    e.by_tid <- a
  end;
  e.by_tid.(e.nthreads) <- t;
  e.nthreads <- e.nthreads + 1

let new_thread e name body =
  let t =
    {
      tid = e.nthreads;
      name;
      clock = e.current.clock;
      state = Suspended;  (* transitioned by make_runnable below *)
      starter = Some body;
      cont = None;
      joiners = [];
    }
  in
  grow_by_tid e t;
  make_runnable e t;
  t

(* Mark a thread finished and release its joiners (they block with
   [Suspend] right after registering, so they are [Suspended] here). *)
let finish e t =
  t.state <- Done;
  List.iter
    (fun jid ->
      let j = thread_of e jid in
      match j.state with
      | Suspended ->
          if j.clock < t.clock then j.clock <- t.clock;
          make_runnable e j
      | Runnable | Running | Done -> ())
    t.joiners;
  t.joiners <- []

(* Run a fresh thread body under the scheduler's effect handler. Returns
   when the thread yields, suspends, or finishes. *)
let start_body e t body =
  match_with body ()
    {
      retc = (fun () -> finish e t);
      exnc =
        (fun ex ->
          e.exns <- (t.tid, ex) :: e.exns;
          finish e t);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cont <- Some k;
                  make_runnable e t)
          | Suspend ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.state <- Suspended;
                  t.cont <- Some k)
          | _ -> None);
    }

(* Ascending list of runnable tids (the [Controlled] callback contract). *)
let runnables e =
  let acc = ref [] in
  for tid = e.nthreads - 1 downto 0 do
    if e.by_tid.(tid).state = Runnable then acc := tid :: !acc
  done;
  !acc

(* The k-th runnable thread in tid order: [Random]'s pick, replacing the
   old [List.nth ready k] without building the list. *)
let kth_runnable e k =
  let i = ref 0 and seen = ref (-1) and found = ref None in
  while !found = None do
    let t = e.by_tid.(!i) in
    if t.state = Runnable then begin
      incr seen;
      if !seen = k then found := Some t
    end;
    incr i
  done;
  Option.get !found

let pick e =
  if e.nrunnable = 0 then None
  else
    match e.policy with
    | Round_robin ->
        (* first runnable tid strictly greater than the cursor, else the
           smallest *)
        let chosen = ref None in
        let tid = ref (e.rr_cursor + 1) in
        while !chosen = None && !tid < e.nthreads do
          if e.by_tid.(!tid).state = Runnable then chosen := Some !tid;
          incr tid
        done;
        let tid = ref 0 in
        while !chosen = None do
          if e.by_tid.(!tid).state = Runnable then chosen := Some !tid;
          incr tid
        done;
        let chosen = Option.get !chosen in
        e.rr_cursor <- chosen;
        Some (thread_of e chosen)
    | Random _ ->
        let rng = Option.get e.rng in
        Some (kth_runnable e (Det_rng.int rng e.nrunnable))
    | Min_clock -> Some (heap_pop e)
    | Controlled choose ->
        let ready = runnables e in
        let tid = choose e.current.tid ready in
        if not (List.mem tid ready) then
          invalid_arg "Sched.Controlled: chose a non-runnable thread";
        Some (thread_of e tid)

let rec loop e =
  if e.steps >= e.max_steps then e.fuel_out <- true
  else
    match pick e with
    | None -> ()
    | Some t ->
        e.steps <- e.steps + 1;
        e.current <- t;
        t.state <- Running;
        e.nrunnable <- e.nrunnable - 1;
        (match t.starter with
        | Some body ->
            t.starter <- None;
            start_body e t body
        | None -> (
            match t.cont with
            | Some k ->
                t.cont <- None;
                continue k ()
            | None -> assert false));
        loop e

let run ?(max_steps = 10_000_000) ?(policy = Min_clock) main =
  if !engine <> None then invalid_arg "Sched.run: simulations cannot nest";
  let rng = match policy with Random seed -> Some (Det_rng.create seed) | _ -> None in
  let t0 =
    {
      tid = 0;
      name = "main";
      clock = 0;
      state = Runnable;
      starter = Some main;
      cont = None;
      joiners = [];
    }
  in
  let e =
    {
      by_tid = Array.make 8 t0;
      nthreads = 1;
      nrunnable = 1;
      heap = Array.make 8 t0;
      heap_len = (match policy with Min_clock -> 1 | _ -> 0);
      current = t0;
      policy;
      rng;
      rr_cursor = -1;
      steps = 0;
      max_steps;
      exns = [];
      fuel_out = false;
    }
  in
  engine := Some e;
  let finalize () = engine := None in
  (try loop e
   with ex ->
     finalize ();
     raise ex);
  finalize ();
  let makespan = ref 0 in
  for tid = 0 to e.nthreads - 1 do
    makespan := max !makespan e.by_tid.(tid).clock
  done;
  let status =
    if e.fuel_out then Fuel_exhausted
    else
      let stuck = ref [] in
      for tid = e.nthreads - 1 downto 0 do
        match e.by_tid.(tid).state with
        | Done -> ()
        | Runnable | Running | Suspended -> stuck := tid :: !stuck
      done;
      match !stuck with [] -> Completed | l -> Deadlock l
  in
  { status; makespan = !makespan; exns = List.rev e.exns; switches = e.steps }

let spawn ?(name = "thread") body =
  let e = get_engine () in
  (new_thread e name body).tid

let yield () =
  match !engine with None -> raise Not_in_simulation | Some _ -> perform Yield

let self () = (get_engine ()).current.tid

let tick n =
  let e = get_engine () in
  e.current.clock <- e.current.clock + n

let time () = (get_engine ()).current.clock

(* A delay that actually cedes the processor. Under the clock-driven
   policies one tick-then-yield suffices: Min_clock will not re-pick the
   thread until every peer's clock has caught up, so the delay is honored
   by construction. Under [Random] the picker ignores clocks entirely -
   a single yield would make a 500-cycle backoff indistinguishable from
   a 1-cycle one - so the delay is spread over proportionally many
   yields, each a scheduling opportunity granted to the other threads. *)
let pause n =
  let e = get_engine () in
  match e.policy with
  | Random _ ->
      let quantum = 16 in
      let rec go remaining =
        if remaining <= 0 then ()
        else (
          e.current.clock <- e.current.clock + min quantum remaining;
          perform Yield;
          go (remaining - quantum))
      in
      if n <= 0 then perform Yield else go n
  | Round_robin | Min_clock | Controlled _ ->
      e.current.clock <- e.current.clock + max n 0;
      perform Yield

let rebase () =
  let e = get_engine () in
  for tid = 0 to e.nthreads - 1 do
    e.by_tid.(tid).clock <- 0
  done;
  heap_rebuild e

let suspend () =
  match !engine with None -> raise Not_in_simulation | Some _ -> perform Suspend

let wake tid =
  let e = get_engine () in
  let t = thread_of e tid in
  match t.state with
  | Suspended ->
      if t.clock < e.current.clock then t.clock <- e.current.clock;
      make_runnable e t
  | _ -> ()

let join tid =
  let e = get_engine () in
  let t = thread_of e tid in
  match t.state with
  | Done -> if e.current.clock < t.clock then e.current.clock <- t.clock
  | Runnable | Running | Suspended ->
      t.joiners <- e.current.tid :: t.joiners;
      perform Suspend

let thread_count () = (get_engine ()).nthreads

let runnable_count () = (get_engine ()).nrunnable

let steps () = match !engine with Some e -> e.steps | None -> 0

let running () = !engine <> None
