open Effect
open Effect.Deep

type tid = int

type policy =
  | Round_robin
  | Random of int
  | Min_clock
  | Controlled of (tid -> tid list -> tid)

type status = Completed | Deadlock of tid list | Fuel_exhausted

type result = {
  status : status;
  makespan : int;
  exns : (tid * exn) list;
  switches : int;
}

exception Not_in_simulation

type tstate = Runnable | Running | Suspended | Done

type thread = {
  tid : tid;
  name : string;
  mutable clock : int;
  mutable state : tstate;
  mutable starter : (unit -> unit) option;
      (* body not yet started; scheduler starts it under its own handler *)
  mutable cont : (unit, unit) continuation option;
  mutable joiners : tid list;
}

type engine = {
  mutable threads : thread list;  (* newest first *)
  mutable by_tid : thread array;  (* grows *)
  mutable nthreads : int;
  mutable current : thread;
  policy : policy;
  rng : Det_rng.t option;
  mutable rr_cursor : int;
  mutable steps : int;
  max_steps : int;
  mutable exns : (tid * exn) list;
  mutable fuel_out : bool;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : unit Effect.t

let engine : engine option ref = ref None

let get_engine () =
  match !engine with Some e -> e | None -> raise Not_in_simulation

let thread_of e tid =
  if tid < 0 || tid >= e.nthreads then invalid_arg "Sched: bad tid";
  e.by_tid.(tid)

let grow_by_tid e t =
  let n = Array.length e.by_tid in
  if e.nthreads >= n then begin
    let a = Array.make (max 8 (2 * n)) t in
    Array.blit e.by_tid 0 a 0 n;
    e.by_tid <- a
  end;
  e.by_tid.(e.nthreads) <- t;
  e.nthreads <- e.nthreads + 1

let new_thread e name body =
  let t =
    {
      tid = e.nthreads;
      name;
      clock = e.current.clock;
      state = Runnable;
      starter = Some body;
      cont = None;
      joiners = [];
    }
  in
  grow_by_tid e t;
  e.threads <- t :: e.threads;
  t

(* Mark a thread finished and release its joiners (they block with
   [Suspend] right after registering, so they are [Suspended] here). *)
let finish e t =
  t.state <- Done;
  List.iter
    (fun jid ->
      let j = thread_of e jid in
      match j.state with
      | Suspended ->
          j.state <- Runnable;
          if j.clock < t.clock then j.clock <- t.clock
      | Runnable | Running | Done -> ())
    t.joiners;
  t.joiners <- []

(* Run a fresh thread body under the scheduler's effect handler. Returns
   when the thread yields, suspends, or finishes. *)
let start_body e t body =
  match_with body ()
    {
      retc = (fun () -> finish e t);
      exnc =
        (fun ex ->
          e.exns <- (t.tid, ex) :: e.exns;
          finish e t);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.state <- Runnable;
                  t.cont <- Some k)
          | Suspend ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.state <- Suspended;
                  t.cont <- Some k)
          | _ -> None);
    }

let runnables e =
  List.fold_left
    (fun acc t -> match t.state with Runnable -> t.tid :: acc | _ -> acc)
    [] e.threads
(* threads is newest-first, so the fold yields ascending tids *)

let pick e =
  match runnables e with
  | [] -> None
  | ready -> (
      match e.policy with
      | Round_robin ->
          (* first runnable tid strictly greater than the cursor, else the
             smallest *)
          let above = List.filter (fun tid -> tid > e.rr_cursor) ready in
          let chosen =
            match above with tid :: _ -> tid | [] -> List.hd ready
          in
          e.rr_cursor <- chosen;
          Some (thread_of e chosen)
      | Random _ ->
          let rng = Option.get e.rng in
          let n = List.length ready in
          Some (thread_of e (List.nth ready (Det_rng.int rng n)))
      | Min_clock ->
          let best =
            List.fold_left
              (fun acc tid ->
                let t = thread_of e tid in
                match acc with
                | None -> Some t
                | Some b ->
                    if t.clock < b.clock || (t.clock = b.clock && t.tid < b.tid)
                    then Some t
                    else acc)
              None ready
          in
          best
      | Controlled choose ->
          let tid = choose e.current.tid ready in
          if not (List.mem tid ready) then
            invalid_arg "Sched.Controlled: chose a non-runnable thread";
          Some (thread_of e tid))

let rec loop e =
  if e.steps >= e.max_steps then e.fuel_out <- true
  else
    match pick e with
    | None -> ()
    | Some t ->
        e.steps <- e.steps + 1;
        e.current <- t;
        t.state <- Running;
        (match t.starter with
        | Some body ->
            t.starter <- None;
            start_body e t body
        | None -> (
            match t.cont with
            | Some k ->
                t.cont <- None;
                continue k ()
            | None -> assert false));
        loop e

let run ?(max_steps = 10_000_000) ?(policy = Min_clock) main =
  if !engine <> None then invalid_arg "Sched.run: simulations cannot nest";
  let rng = match policy with Random seed -> Some (Det_rng.create seed) | _ -> None in
  let t0 =
    {
      tid = 0;
      name = "main";
      clock = 0;
      state = Runnable;
      starter = Some main;
      cont = None;
      joiners = [];
    }
  in
  let e =
    {
      threads = [ t0 ];
      by_tid = Array.make 8 t0;
      nthreads = 1;
      current = t0;
      policy;
      rng;
      rr_cursor = -1;
      steps = 0;
      max_steps;
      exns = [];
      fuel_out = false;
    }
  in
  engine := Some e;
  let finalize () = engine := None in
  (try loop e
   with ex ->
     finalize ();
     raise ex);
  finalize ();
  let makespan =
    List.fold_left (fun acc t -> max acc t.clock) 0 e.threads
  in
  let status =
    if e.fuel_out then Fuel_exhausted
    else
      let stuck =
        List.filter_map
          (fun t -> match t.state with Done -> None | _ -> Some t.tid)
          e.threads
      in
      match stuck with [] -> Completed | l -> Deadlock (List.sort compare l)
  in
  { status; makespan; exns = List.rev e.exns; switches = e.steps }

let spawn ?(name = "thread") body =
  let e = get_engine () in
  (new_thread e name body).tid

let yield () =
  match !engine with None -> raise Not_in_simulation | Some _ -> perform Yield

let self () = (get_engine ()).current.tid

let tick n =
  let e = get_engine () in
  e.current.clock <- e.current.clock + n

let time () = (get_engine ()).current.clock

(* A delay that actually cedes the processor. Under the clock-driven
   policies one tick-then-yield suffices: Min_clock will not re-pick the
   thread until every peer's clock has caught up, so the delay is honored
   by construction. Under [Random] the picker ignores clocks entirely -
   a single yield would make a 500-cycle backoff indistinguishable from
   a 1-cycle one - so the delay is spread over proportionally many
   yields, each a scheduling opportunity granted to the other threads. *)
let pause n =
  let e = get_engine () in
  match e.policy with
  | Random _ ->
      let quantum = 16 in
      let rec go remaining =
        if remaining <= 0 then ()
        else (
          e.current.clock <- e.current.clock + min quantum remaining;
          perform Yield;
          go (remaining - quantum))
      in
      if n <= 0 then perform Yield else go n
  | Round_robin | Min_clock | Controlled _ ->
      e.current.clock <- e.current.clock + max n 0;
      perform Yield

let rebase () =
  let e = get_engine () in
  List.iter (fun t -> t.clock <- 0) e.threads

let suspend () =
  match !engine with None -> raise Not_in_simulation | Some _ -> perform Suspend

let wake tid =
  let e = get_engine () in
  let t = thread_of e tid in
  match t.state with
  | Suspended ->
      t.state <- Runnable;
      if t.clock < e.current.clock then t.clock <- e.current.clock
  | _ -> ()

let join tid =
  let e = get_engine () in
  let t = thread_of e tid in
  match t.state with
  | Done -> if e.current.clock < t.clock then e.current.clock <- t.clock
  | Runnable | Running | Suspended ->
      t.joiners <- e.current.tid :: t.joiners;
      perform Suspend

let thread_count () = (get_engine ()).nthreads

let steps () = match !engine with Some e -> e.steps | None -> 0

let running () = !engine <> None
