type t = {
  id : int;
  name : string;
  cost : Cost.t;
  mutable owner : Sched.tid option;
  mutable holds : int;
  waiters : Sched.tid Queue.t;
}

(* Deterministic per-run ids: the DPOR explorer compares lock footprints
   across runs, so the same mutex must report the same pseudo-oid in
   every replay. Explorers call [reset_ids] before each run's [make]. *)
let next_id = ref 0

let reset_ids () = next_id := 0

let create ?(name = "lock") cost =
  incr next_id;
  {
    id = !next_id;
    name;
    cost;
    owner = None;
    holds = 0;
    waiters = Queue.create ();
  }

let rec lock t =
  Footprint.write (Footprint.mutex_oid t.id);
  Sched.tick t.cost.Cost.lock_acquire;
  match t.owner with
  | None ->
      t.owner <- Some (Sched.self ());
      t.holds <- 1
  | Some o when o = Sched.self () -> t.holds <- t.holds + 1
  | Some _ ->
      Queue.add (Sched.self ()) t.waiters;
      Sched.suspend ();
      (* woken by the releaser; the lock may have been stolen by a thread
         that never blocked, so retry *)
      lock t

let unlock t =
  Footprint.write (Footprint.mutex_oid t.id);
  (match t.owner with
  | Some o when o = Sched.self () -> ()
  | _ -> invalid_arg ("Sim_mutex.unlock: not the holder of " ^ t.name));
  Sched.tick t.cost.Cost.lock_release;
  t.holds <- t.holds - 1;
  if t.holds = 0 then begin
    t.owner <- None;
    match Queue.take_opt t.waiters with
    | Some w -> Sched.wake w
    | None -> ()
  end

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception ex ->
      unlock t;
      raise ex

let held t =
  Footprint.read (Footprint.mutex_oid t.id);
  t.owner <> None
