type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let split t = { state = next64 t }

let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  assert (total > 0);
  let n = int t total in
  let rec go n = function
    | [] -> assert false
    | (w, x) :: rest -> if n < max 0 w then x else go (n - max 0 w) rest
  in
  go n choices
