(** Deterministic cooperative scheduler simulating a shared-memory
    multiprocessor.

    Simulated threads are green threads implemented with OCaml effect
    handlers. Each thread owns a virtual cycle clock; runtime and STM
    operations charge cycles with {!tick}. Preemption can happen only at
    explicit {!yield} points, which the STM and the IR interpreter insert
    between the individual memory operations of their barrier sequences —
    exactly the granularity at which the paper's races occur.

    Scheduling policies:
    - {!Min_clock} runs, at every step, the runnable thread with the
      smallest virtual clock. This is a discrete-event simulation of [n]
      threads running on [n] processors: the makespan ({!result} field
      [makespan]) is the parallel execution time.
    - {!Round_robin} and {!Random} provide interleaving diversity for
      stress tests.
    - {!Controlled} hands every scheduling decision to a callback; the
      systematic litmus explorer uses it to enumerate interleavings. *)

type tid = int
(** Simulated thread id. The main thread is [0]. *)

type policy =
  | Round_robin
  | Random of int  (** seed *)
  | Min_clock
  | Controlled of (tid -> tid list -> tid)
      (** [choose current runnables] picks the next thread to run;
          [runnables] is sorted and non-empty, [current] is the thread that
          just yielded (it may or may not be in [runnables]). *)

type status = Completed | Deadlock of tid list | Fuel_exhausted

type result = {
  status : status;
  makespan : int;  (** max virtual clock over all threads at the end *)
  exns : (tid * exn) list;  (** exceptions that escaped thread bodies *)
  switches : int;  (** number of scheduling decisions taken *)
}

exception Not_in_simulation
(** Raised by thread-context operations when no simulation is running. *)

val run : ?max_steps:int -> ?policy:policy -> (unit -> unit) -> result
(** [run main] executes [main] as thread 0 and schedules until every
    spawned thread has finished, deadlock, or [max_steps] scheduling
    decisions have been taken (default [10_000_000]). Runs cannot nest. *)

(** {1 Operations available inside a running simulation} *)

val spawn : ?name:string -> (unit -> unit) -> tid
(** Create a new runnable thread. Does not yield. *)

val join : tid -> unit
(** Block until the given thread finishes. The joiner's clock is advanced
    to at least the finisher's clock. *)

val yield : unit -> unit
(** Preemption point. Under {!Min_clock} the scheduler switches only if
    another runnable thread has a strictly smaller clock. *)

val self : unit -> tid

val tick : int -> unit
(** Charge cycles to the current thread's virtual clock. *)

val pause : int -> unit
(** Charge [n] cycles and cede the processor for their duration — the
    primitive backoff delays are built on. Equivalent to
    [tick n; yield ()] under the clock-driven policies, where {!Min_clock}
    honors the delay by construction; under {!Random} (whose picker
    ignores clocks) the delay is spread over proportionally many yields so
    that a longer backoff really does grant the other threads more
    scheduling opportunities. *)

val rebase : unit -> unit
(** Reset every live thread's virtual clock to zero. Benchmarks call this
    after their serial setup phase so that the makespan measures steady
    state, mirroring the paper's methodology (JVM98 third-run timing, JBB
    post-ramp-up measurement). *)

val time : unit -> int
(** Current thread's virtual clock. *)

val suspend : unit -> unit
(** Block the current thread until some other thread calls {!wake}. *)

val wake : tid -> unit
(** Make a suspended thread runnable; its clock is advanced to at least
    the waker's clock (the wake-up is causally ordered after the waker's
    current instant). No-op if the thread is not suspended. *)

val thread_count : unit -> int
(** Number of threads created so far in this run (including finished). *)

val runnable_count : unit -> int
(** Number of currently runnable threads (excluding the running one);
    O(1) — maintained incrementally, not by scanning the thread table. *)

val steps : unit -> int
(** Scheduling decisions taken so far in this run; [0] outside a
    simulation. Tracing sinks record it as a global logical timestamp
    alongside the per-thread cost clocks. *)

val running : unit -> bool
(** [true] iff called from inside a simulation. *)
