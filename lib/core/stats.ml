type t = {
  mutable commits : int;
  mutable aborts : int;
  mutable txn_reads : int;
  mutable txn_writes : int;
  mutable barrier_reads : int;
  mutable barrier_writes : int;
  mutable barrier_private_hits : int;
  mutable atomic_ops : int;
  mutable conflicts : int;
  mutable publishes : int;
  mutable validations : int;
  mutable fast_validations : int;
  mutable ts_extensions : int;
  mutable ro_fast_commits : int;
  mutable retries : int;
  mutable wounds : int;
  mutable backoff_cycles : int;
  mutable quiesce_waits : int;
}

let create () =
  {
    commits = 0;
    aborts = 0;
    txn_reads = 0;
    txn_writes = 0;
    barrier_reads = 0;
    barrier_writes = 0;
    barrier_private_hits = 0;
    atomic_ops = 0;
    conflicts = 0;
    publishes = 0;
    validations = 0;
    fast_validations = 0;
    ts_extensions = 0;
    ro_fast_commits = 0;
    retries = 0;
    wounds = 0;
    backoff_cycles = 0;
    quiesce_waits = 0;
  }

let reset t =
  t.commits <- 0;
  t.aborts <- 0;
  t.txn_reads <- 0;
  t.txn_writes <- 0;
  t.barrier_reads <- 0;
  t.barrier_writes <- 0;
  t.barrier_private_hits <- 0;
  t.atomic_ops <- 0;
  t.conflicts <- 0;
  t.publishes <- 0;
  t.validations <- 0;
  t.fast_validations <- 0;
  t.ts_extensions <- 0;
  t.ro_fast_commits <- 0;
  t.retries <- 0;
  t.wounds <- 0;
  t.backoff_cycles <- 0;
  t.quiesce_waits <- 0

let add acc t =
  acc.commits <- acc.commits + t.commits;
  acc.aborts <- acc.aborts + t.aborts;
  acc.txn_reads <- acc.txn_reads + t.txn_reads;
  acc.txn_writes <- acc.txn_writes + t.txn_writes;
  acc.barrier_reads <- acc.barrier_reads + t.barrier_reads;
  acc.barrier_writes <- acc.barrier_writes + t.barrier_writes;
  acc.barrier_private_hits <- acc.barrier_private_hits + t.barrier_private_hits;
  acc.atomic_ops <- acc.atomic_ops + t.atomic_ops;
  acc.conflicts <- acc.conflicts + t.conflicts;
  acc.publishes <- acc.publishes + t.publishes;
  acc.validations <- acc.validations + t.validations;
  acc.fast_validations <- acc.fast_validations + t.fast_validations;
  acc.ts_extensions <- acc.ts_extensions + t.ts_extensions;
  acc.ro_fast_commits <- acc.ro_fast_commits + t.ro_fast_commits;
  acc.retries <- acc.retries + t.retries;
  acc.wounds <- acc.wounds + t.wounds;
  acc.backoff_cycles <- acc.backoff_cycles + t.backoff_cycles;
  acc.quiesce_waits <- acc.quiesce_waits + t.quiesce_waits

let to_assoc t =
  [
    ("commits", t.commits);
    ("aborts", t.aborts);
    ("txn_reads", t.txn_reads);
    ("txn_writes", t.txn_writes);
    ("barrier_reads", t.barrier_reads);
    ("barrier_writes", t.barrier_writes);
    ("barrier_private_hits", t.barrier_private_hits);
    ("atomic_ops", t.atomic_ops);
    ("conflicts", t.conflicts);
    ("publishes", t.publishes);
    ("validations", t.validations);
    ("fast_validations", t.fast_validations);
    ("ts_extensions", t.ts_extensions);
    ("ro_fast_commits", t.ro_fast_commits);
    ("retries", t.retries);
    ("wounds", t.wounds);
    ("backoff_cycles", t.backoff_cycles);
    ("quiesce_waits", t.quiesce_waits);
  ]

let pp_json ppf t =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) -> Fmt.pf ppf "%S:%d" k v))
    (to_assoc t)

let pp ppf t =
  Fmt.pf ppf
    "commits=%d aborts=%d txn_r=%d txn_w=%d bar_r=%d bar_w=%d priv=%d \
     atomics=%d conflicts=%d publishes=%d validations=%d retries=%d \
     wounds=%d backoff=%d quiesce=%d"
    t.commits t.aborts t.txn_reads t.txn_writes t.barrier_reads
    t.barrier_writes t.barrier_private_hits t.atomic_ops t.conflicts
    t.publishes t.validations t.retries t.wounds t.backoff_cycles
    t.quiesce_waits
