(** Event tracing hooks for the STM.

    A single optional sink receives structured STM events: transaction
    lifecycle, conflicts, publications, quiescence waits, and — at
    [Debug] level — per-access barrier, backoff, and validation events.
    With no sink installed the emit path is a branch on [None], cheap
    enough to leave compiled into the hot paths; with a sink installed at
    [Info] the per-access [Debug] payloads are never forced either, so a
    coarse trace costs nothing on the access fast paths.

    The [stm_run --trace] CLI installs a printing sink; [--trace-out] and
    [--profile-barriers] install the {!Stm_obs} recorder and per-site
    profiler; tests install collecting sinks. *)

(** Event verbosity. [Debug] events fire on every memory access (barrier
    executions, backoffs, validations); [Info] events fire per
    transaction or per structural STM action. *)
type level = Debug | Info

val level_ge : level -> level -> bool
(** [level_ge a b] is true when an event of level [a] passes a sink
    filtering at minimum level [b] ([Info] passes everything, [Debug]
    passes only a [Debug] sink). *)

(** Which access path a {!Barrier} event describes. [Op_read] /
    [Op_read_ordering] / [Op_write] are the non-transactional isolation
    barriers; [Op_txn_read] / [Op_txn_write] are transactional accesses. *)
type barrier_op = Op_read | Op_read_ordering | Op_write | Op_txn_read | Op_txn_write

(** [Path_fired]: the barrier sequence executed. [Path_private]: the DEA
    private-object fast path hit. [Path_elided]: the access ran with no
    barrier (compiler-removed site). *)
type barrier_path = Path_fired | Path_private | Path_elided

(** Why a transaction aborted. *)
type abort_cause =
  | Cause_conflict  (** conflict retry budget exhausted *)
  | Cause_validation  (** read-set validation failed *)
  | Cause_stale_lock
      (** lazy commit-time acquisition found the buffered granule's
          version moved since it was read (the read that seeded the
          write buffer is stale) *)
  | Cause_wounded  (** killed by an older transaction (wound-wait) *)
  | Cause_retry  (** user-initiated [retry] *)
  | Cause_snapshot
      (** an mvcc read needed a version older than the granule's retained
          chain (snapshot too old — the [mvcc_max_versions] bound evicted
          it) *)
  | Cause_exn  (** an exception escaped the atomic block *)

type event =
  | Txn_begin of { txid : int; tid : int }
  | Txn_commit of { txid : int; tid : int; reads : int; writes : int; latency : int }
      (** [latency] is cost-clock cycles from begin to commit. *)
  | Txn_abort of {
      txid : int;
      tid : int;
      wounded : bool;
      cause : abort_cause;
      latency : int;
      by : int;
          (** aggressor txid: the wounding transaction, or the owner of
              the record whose conflict/validation killed this
              transaction; [-1] when unknown (e.g. user retry) *)
      by_tid : int;  (** aggressor's simulated thread, [-1] unknown *)
      oid : int;
          (** the contended granule the abort is attributed to: the
              object of the last losing conflict, the failing read-set
              entry, or the stale lazily-buffered record; [-1] unknown *)
    }
      (** The [by]/[by_tid]/[oid] attribution fields feed the
          {!Stm_diag} abort-causality graph and contention heatmap. *)
  | Txn_wound of { victim : int; by : int }
  | Conflict of { tid : int; oid : int; cls : string; writer : bool; site : int }
      (** [site] is the source access site ({!Site.current}), [-1] when
          unknown. *)
  | Publish of { oid : int; cls : string }
  | Quiesce_wait of { txid : int }
  | Barrier of { tid : int; site : int; op : barrier_op; path : barrier_path }
  | Backoff of { tid : int; attempt : int; delay : int }
  | Validation of { txid : int; tid : int; ok : bool }
  | Cm_decision of {
      tid : int;
      txid : int;
      policy : string;
      decision : string;  (** ["wait"], ["wound"], or ["abort-self"] *)
      owner : int;  (** owning txid at decision time, [-1] when unknown *)
      delay : int;  (** backoff cycles chosen (0 for abort-self) *)
    }  (** one contention-manager decision (Debug level) *)
  | Access of {
      tid : int;
      txid : int;  (** enclosing transaction id, [-1] for non-transactional *)
      oid : int;
      fld : int;
      value : Stm_runtime.Heap.value;
          (** the value loaded / stored, at the point the access completed *)
      write : bool;
    }
      (** One completed memory access with its location and value (Debug
          level). Transactional accesses carry the transaction id so that
          per-transaction read/write sets can be reconstructed from the
          event stream; non-transactional accesses ([txid = -1]) are
          emitted at their linearization point — after the heap update and
          before any preemption point — so the global event order is the
          memory-visibility order. The serializability oracle
          ({!Stm_check.History}) is built entirely on these events. *)
  | Txn_serialized of { txid : int; tid : int }
      (** The transaction passed its commit-time validation and can no
          longer abort: this is the serialization point (Debug level).
          Under lazy versioning it precedes the write-back window, so the
          order of these events — not of {!Txn_commit}, which fires after
          write-back — is the order in which transactions logically
          committed. *)

val event_level : event -> level
(** Intrinsic level of an event kind (per-access events are [Debug]). *)

val set_sink : ?level:level -> (event -> unit) option -> unit
(** Install (or remove) the global sink. [level] (default [Debug]) is the
    minimum level delivered: a sink installed at [Info] suppresses the
    per-access events without being uninstalled — and without their lazy
    payloads ever being forced. *)

val emit : ?level:level -> event Lazy.t -> unit
(** Deliver the event to the sink if one is installed and accepts
    [level] (default [Info]); the payload is lazy so that argument
    construction costs nothing when the event is filtered out. Emitters
    must pass the same level {!event_level} assigns to the payload. *)

val enabled : unit -> bool

val enabled_at : level -> bool
(** Whether a sink is installed that accepts events of this level. *)

val string_of_cause : abort_cause -> string
val string_of_op : barrier_op -> string
val string_of_path : barrier_path -> string

val pp_event : Format.formatter -> event -> unit
(** Render one event (used by the CLI's printing sink). *)
