open Stm_runtime
module Mvcc = Stm_mvcc.Mvcc

(* Every emission sits next to the [Stats] increment it mirrors, so the
   per-site profiler's column sums reproduce the global counters exactly
   (checked by the test suite). *)
let emit_barrier op path =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Barrier
         { tid = Sched.self (); site = Site.current (); op; path }))

(* Same convention as [Txn.observe_blocked]: the first blocked record
   observation in a retry loop is a plain read, later ones are futile
   spin-wait re-reads; iterations that leave the loop report a plain
   read. *)
let observe_blocked ~attempt oid =
  if attempt > 0 then Footprint.spin_read oid else Footprint.read oid

(* Figure 9a / 10a. *)
let read (cfg : Config.t) (stats : Stats.t) (obj : Heap.obj) fld =
  let cost = cfg.cost in
  stats.Stats.barrier_reads <- stats.Stats.barrier_reads + 1;
  emit_barrier Trace.Op_read Trace.Path_fired;
  Sched.tick cost.Cost.barrier_entry;
  let rec loop attempt =
    (* mov ecx, [TxRec] — whether this iteration will block is a
       function of [w1] alone, so the observation is classified here,
       in its own segment (the branch point is two yields away) *)
    let w1 = Heap.txrec_peek obj in
    let blocked =
      (not (cfg.dea && cfg.read_privacy_check && Txrec.is_private w1))
      && (not (Txrec.readable_bit w1)
         || (cfg.detect_nontxn_races && not (Txrec.btr_acquirable w1)))
    in
    if blocked then observe_blocked ~attempt obj.Heap.oid
    else Footprint.read obj.Heap.oid;
    Sched.tick cost.Cost.plain_load;
    Sched.yield ();
    (* mov eax, [addr] *)
    let v = Heap.get obj fld in
    Sched.tick cost.Cost.plain_load;
    Sched.yield ();
    (* cmp ecx, -1 ; jeq readDone   (optional DEA fast path) *)
    if cfg.dea && cfg.read_privacy_check && Txrec.is_private w1 then begin
      stats.Stats.barrier_private_hits <- stats.Stats.barrier_private_hits + 1;
      emit_barrier Trace.Op_read Trace.Path_private;
      v
    end
    else if not (Txrec.readable_bit w1) then begin
      (* test ecx, 2 ; jz readConflict *)
      Conflict.handle cfg stats ~attempt ~writer:false obj;
      loop (attempt + 1)
    end
    else if cfg.detect_nontxn_races && not (Txrec.btr_acquirable w1) then begin
      (* footnote 2: bit 0 clear means some writer - transactional or
         not - holds the record; report the race between two
         non-transactional threads too *)
      Conflict.handle cfg stats ~attempt ~writer:false obj;
      loop (attempt + 1)
    end
    else begin
      (* cmp ecx, [TxRec] ; jne readConflict *)
      let w2 = Heap.txrec_get obj in
      Sched.tick cost.Cost.plain_load;
      if w2 <> w1 then begin
        Conflict.handle cfg stats ~attempt ~writer:false obj;
        loop (attempt + 1)
      end
      else v
    end
  in
  loop 0

(* Section 3.3: test [TxRec], 2 ; jz readConflict ; mov eax, [addr]. *)
let read_ordering (cfg : Config.t) (stats : Stats.t) (obj : Heap.obj) fld =
  let cost = cfg.cost in
  stats.Stats.barrier_reads <- stats.Stats.barrier_reads + 1;
  emit_barrier Trace.Op_read_ordering Trace.Path_fired;
  Sched.tick cost.Cost.barrier_entry;
  let rec loop attempt =
    let w = Heap.txrec_peek obj in
    Sched.tick cost.Cost.plain_load;
    if not (Txrec.readable_bit w) then begin
      observe_blocked ~attempt obj.Heap.oid;
      Conflict.handle cfg stats ~attempt ~writer:false obj;
      loop (attempt + 1)
    end
    else begin
      Footprint.read obj.Heap.oid;
      Sched.yield ();
      let v = Heap.get obj fld in
      Sched.tick cost.Cost.plain_load;
      v
    end
  in
  loop 0

(* The BTR acquire loop shared by the write barrier and by aggregated
   barriers. Returns the word that was current when ownership was taken
   (the private word if the DEA fast path hit). *)
let acquire_anon ?(op = Trace.Op_write) (cfg : Config.t) (stats : Stats.t)
    (obj : Heap.obj) =
  let cost = cfg.cost in
  let rec loop attempt =
    let w = Heap.txrec_peek obj in
    Sched.tick cost.Cost.plain_load;
    (* cmp [TxRec], -1 ; jeq privateWrite *)
    if cfg.dea && Txrec.is_private w then begin
      Footprint.read obj.Heap.oid;
      stats.Stats.barrier_private_hits <- stats.Stats.barrier_private_hits + 1;
      emit_barrier op Trace.Path_private;
      w
    end
    else if Txrec.btr_acquirable w then begin
      Footprint.read obj.Heap.oid;
      (* lock btr [TxRec], 0 *)
      stats.Stats.atomic_ops <- stats.Stats.atomic_ops + 1;
      Sched.tick cost.Cost.atomic_rmw;
      Sched.yield ();
      if Heap.txrec_cas obj w (w - 1) then w - 1
      else loop attempt
    end
    else begin
      (* jnc writeConflict *)
      observe_blocked ~attempt obj.Heap.oid;
      Conflict.handle cfg stats ~attempt ~writer:true obj;
      loop (attempt + 1)
    end
  in
  loop 0

let release_anon (cfg : Config.t) (obj : Heap.obj) w =
  if not (Txrec.is_private w) then begin
    (* add [TxRec], 9 *)
    Heap.txrec_set obj (w + Txrec.release_delta);
    Sched.tick cfg.cost.Cost.plain_store
  end

(* Figure 9b / 10b. *)
let write ?gvc (cfg : Config.t) (stats : Stats.t) (obj : Heap.obj) fld v =
  let cost = cfg.cost in
  stats.Stats.barrier_writes <- stats.Stats.barrier_writes + 1;
  emit_barrier Trace.Op_write Trace.Path_fired;
  Sched.tick cost.Cost.barrier_entry;
  let w = acquire_anon cfg stats obj in
  if Txrec.is_private w then begin
    (* privateWrite: mov [addr], val *)
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store
  end
  else begin
    (* publish the stored reference if it leads to private objects
       (asterisked instructions of Figure 10b, reference stores only) *)
    if cfg.dea then Dea.publish_value stats cost v;
    Sched.yield ();
    (* mov [addr], val *)
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store;
    Sched.yield ();
    (* under timestamp validation a strong non-transactional store is a
       one-word commit: bump the global clock and stamp the granule —
       atomically with the release, which is what makes the new value
       visible to validation — so timestamp-mode readers walk (or
       extend) instead of fast-passing over it *)
    (match gvc with
    | Some g when cfg.validation = Config.Timestamp ->
        Heap.set_version_ts obj (Gvc.advance g)
    | Some _ | None -> ());
    release_anon cfg obj w
  end

(* mvcc strong-atomicity read barrier: the latest committed version of a
   granule is its current fields — mvcc commits write back without a
   yield, so there is no pending-write-back window to order against and
   no ownership to test. A plain load after a preemption point is the
   whole barrier. *)
let read_latest (cfg : Config.t) (stats : Stats.t) (obj : Heap.obj) fld =
  let cost = cfg.cost in
  stats.Stats.barrier_reads <- stats.Stats.barrier_reads + 1;
  if cfg.dea && cfg.read_privacy_check && Dea.is_private obj then begin
    stats.Stats.barrier_private_hits <- stats.Stats.barrier_private_hits + 1;
    emit_barrier Trace.Op_read Trace.Path_private
  end
  else emit_barrier Trace.Op_read Trace.Path_fired;
  Sched.tick cost.Cost.barrier_entry;
  Sched.yield ();
  let v = Heap.get obj fld in
  Sched.tick cost.Cost.plain_load;
  v

(* mvcc strong-atomicity write barrier: a non-transactional store is a
   one-field committed transaction — retire the current fields into the
   version chain and stamp a fresh clock tick, then store. Concurrent
   snapshots keep reading their own versions; the install + store runs
   yield-free so no reader can observe the stamp without the store. *)
let write_versioned (cfg : Config.t) (stats : Stats.t) mv (obj : Heap.obj) fld
    v =
  let cost = cfg.cost in
  stats.Stats.barrier_writes <- stats.Stats.barrier_writes + 1;
  emit_barrier Trace.Op_write Trace.Path_fired;
  Sched.tick cost.Cost.barrier_entry;
  if cfg.dea && Dea.is_private obj then begin
    stats.Stats.barrier_private_hits <- stats.Stats.barrier_private_hits + 1;
    emit_barrier Trace.Op_write Trace.Path_private;
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store
  end
  else begin
    if cfg.dea then Dea.publish_value stats cost v;
    Sched.yield ();
    Mvcc.install ~tid:(Sched.self ()) mv obj ~ts:(Mvcc.advance mv);
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store
  end
