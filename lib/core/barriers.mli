(** Non-transactional read and write isolation barriers (paper Section 3,
    Figures 9 and 10).

    These are the paper's contribution made executable: every
    non-transactional access in a strongly-atomic execution goes through
    one of these sequences. The implementations mirror the IA32 barriers
    step by step, with a scheduler yield between the individual memory
    operations so that the simulated machine can interleave a transaction
    at every point the hardware could.

    Read barrier (Figure 9a / 10a): load the record, load the data,
    optionally take the private fast path, test bit 1 for a transactional
    owner, and re-validate that the record did not change.

    Ordering-only read barrier (Section 3.3, used for lazy versioning
    under strong atomicity): a single bit test — it need not re-check the
    record because it only has to order against the most recent committed
    transaction's pending write-backs.

    Write barrier (Figure 9b / 10b): private fast path, atomic
    bit-test-and-reset to acquire Exclusive-anonymous ownership,
    publication of any referenced private object, the store, and the
    [add 9] release that bumps the version and restores Shared. *)

open Stm_runtime

val read : Config.t -> Stats.t -> Heap.obj -> int -> Heap.value
(** Full isolation read barrier. *)

val read_ordering : Config.t -> Stats.t -> Heap.obj -> int -> Heap.value
(** Ordering-only read barrier (Section 3.3). *)

val write :
  ?gvc:Gvc.t -> Config.t -> Stats.t -> Heap.obj -> int -> Heap.value -> unit
(** Isolation write barrier. Under [Config.Timestamp] validation, pass
    the system's global commit clock: the barrier bumps it and stamps
    the granule at release, so transactional readers cannot fast-pass a
    validation over the non-transactional store. *)

val read_latest : Config.t -> Stats.t -> Heap.obj -> int -> Heap.value
(** Strong-atomicity read barrier for the mvcc backend: the latest
    committed version is the current fields (mvcc write-back is
    yield-free), so this is a plain load behind the barrier accounting. *)

val write_versioned :
  Config.t -> Stats.t -> Stm_mvcc.Mvcc.t -> Heap.obj -> int -> Heap.value -> unit
(** Strong-atomicity write barrier for the mvcc backend: installs a fresh
    version at a new commit-clock tick (a one-store committed
    transaction), preserving every live snapshot's view. *)

val acquire_anon :
  ?op:Trace.barrier_op -> Config.t -> Stats.t -> Heap.obj -> int
(** Acquire Exclusive-anonymous ownership of an object's record (the
    prefix of the write barrier, exposed for the JIT's barrier
    aggregation). Returns the word that was replaced. The caller must
    call {!release_anon} with it. Takes the private fast path: if the
    object is private (DEA), returns the private word and acquires
    nothing. *)

val release_anon : Config.t -> Heap.obj -> int -> unit
(** Release ownership acquired by {!acquire_anon} ([add 9]); no-op if the
    word was the private encoding. *)
