(** Conflict manager invoked by the isolation barriers and by
    transactional open-for-read/write when multiple threads contend for a
    transaction record (paper Section 3.2).

    Under {!Config.Backoff} the manager charges an exponentially growing
    virtual-cycle delay and yields so that the record's owner can make
    progress; the caller then retries its barrier. Under
    {!Config.Raise_error} it signals the data race instead — the paper
    notes that barriers can thereby "aid in debugging concurrent
    programs". *)

exception
  Isolation_violation of {
    cls : string;
    oid : int;
    writer : bool;  (** true if the conflicting access was a write *)
  }

val handle :
  ?delay:int ->
  Config.t ->
  Stats.t ->
  attempt:int ->
  writer:bool ->
  Stm_runtime.Heap.obj ->
  unit
(** Back off (or raise). [attempt] is the number of failures so far for
    this access; the delay is [min (base * 2^attempt) cap] unless the
    contention manager supplied an explicit [delay]. The cycles charged
    are accumulated into [Stats.backoff_cycles]. *)

val backoff_delay : Stm_runtime.Cost.t -> attempt:int -> int
(** The base delay schedule, exposed for tests. *)

val jittered_delay : Stm_runtime.Cost.t -> attempt:int -> int
(** The delay actually charged: base delay salted deterministically with
    the current simulated thread id, so symmetric contenders never back
    off in lockstep (which would livelock). *)
