open Stm_runtime

exception
  Isolation_violation of { cls : string; oid : int; writer : bool }

(* The delay schedules live in Stm_cm.Cm so contention-manager policies
   can reuse them; these wrappers keep the historical signatures (tid is
   read off the running scheduler here, not passed in). *)
let backoff_delay cost ~attempt = Stm_cm.Cm.backoff_delay cost ~attempt

let jittered_delay cost ~attempt =
  let tid = if Sched.running () then Sched.self () else 0 in
  Stm_cm.Cm.jittered_delay cost ~tid ~attempt

let handle ?delay (cfg : Config.t) (stats : Stats.t) ~attempt ~writer
    (obj : Heap.obj) =
  stats.Stats.conflicts <- stats.Stats.conflicts + 1;
  Trace.emit
    (lazy
      (Trace.Conflict
         {
           tid = (if Sched.running () then Sched.self () else -1);
           oid = obj.Heap.oid;
           cls = obj.Heap.cls;
           writer;
           site = Site.current ();
         }));
  match cfg.conflict with
  | Config.Raise_error ->
      raise (Isolation_violation { cls = obj.Heap.cls; oid = obj.Heap.oid; writer })
  | Config.Backoff ->
      let delay =
        match delay with
        | Some d -> d
        | None -> jittered_delay cfg.cost ~attempt
      in
      stats.Stats.backoff_cycles <- stats.Stats.backoff_cycles + delay;
      Trace.emit ~level:Trace.Debug
        (lazy
          (Trace.Backoff
             {
               tid = (if Sched.running () then Sched.self () else -1);
               attempt;
               delay;
             }));
      Sched.pause delay
