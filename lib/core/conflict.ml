open Stm_runtime

exception
  Isolation_violation of { cls : string; oid : int; writer : bool }

let backoff_delay (cost : Cost.t) ~attempt =
  let shift = min attempt 16 in
  min (cost.backoff_base * (1 lsl shift)) (max cost.backoff_base cost.backoff_cap)

(* Deterministic per-thread jitter: symmetric contenders that back off by
   identical delays re-collide in lockstep forever (the classic livelock
   randomized backoff prevents); salting the delay with the thread id
   breaks the symmetry while keeping runs reproducible. *)
let jittered_delay cost ~attempt =
  let d = backoff_delay cost ~attempt in
  let tid = if Sched.running () then Sched.self () else 0 in
  d + (d * (tid land 7) / 8) + tid

let handle (cfg : Config.t) (stats : Stats.t) ~attempt ~writer (obj : Heap.obj) =
  stats.Stats.conflicts <- stats.Stats.conflicts + 1;
  Trace.emit
    (lazy
      (Trace.Conflict
         {
           tid = (if Sched.running () then Sched.self () else -1);
           oid = obj.Heap.oid;
           cls = obj.Heap.cls;
           writer;
           site = Site.current ();
         }));
  match cfg.conflict with
  | Config.Raise_error ->
      raise (Isolation_violation { cls = obj.Heap.cls; oid = obj.Heap.oid; writer })
  | Config.Backoff ->
      let delay = jittered_delay cfg.cost ~attempt in
      Trace.emit ~level:Trace.Debug
        (lazy
          (Trace.Backoff
             {
               tid = (if Sched.running () then Sched.self () else -1);
               attempt;
               delay;
             }));
      Sched.tick delay;
      Sched.yield ()
