(** Transaction descriptors and the transactional access protocol.

    The engine implements both version-management policies the paper
    analyses:

    - {b Eager} (McRT-STM, the paper's base system): optimistic read
      versioning, strict two-phase locking for writes, in-place updates
      with an undo log. Aborts roll the undo log back in place — these
      rollback stores are exactly the "manufactured writes" behind the
      speculative lost update / dirty read anomalies of Section 2.2.
    - {b Lazy}: writes go to a private buffer at granule granularity;
      commit acquires the records, validates, then writes back after the
      serialization point — the write-back window behind the ordering
      anomalies of Section 2.3.
    - {b Mvcc}: multi-version — reads are served from per-granule version
      chains as of a begin-time snapshot and take no ownership; writes are
      buffered and installed first-committer-wins at commit under a global
      commit clock (see {!Stm_mvcc.Mvcc}). Read-only transactions
      serialize at their snapshot point and commit validation-free — they
      are abort-free (up to the {!Config.t.mvcc_max_versions} chain
      bound). Under {!Config.Serializable} an update transaction's commit
      additionally re-checks that every read granule is still current;
      under {!Config.Snapshot} it does not, admitting write skew.

    Undo-log entries and write-buffer slots cover
    {!Config.t.granule}-field granules, so setting [granule > 1]
    reproduces the coarse-grained-versioning anomalies of Section 2.4
    (granular lost updates / inconsistent reads).

    Closed nesting is implemented by flattening (subsumption); open
    nesting runs an independent transaction while the parent is paused
    (see {!Stm.atomic_open}). *)

open Stm_runtime

type ctx
(** Per-run STM context: configuration, counters, quiescence registry,
    transaction-id allocator. *)

val make_ctx : Config.t -> ctx
val cfg : ctx -> Config.t
val stats : ctx -> Stats.t
val quiescer : ctx -> Quiesce.t

val cm : ctx -> Stm_cm.Cm.t
(** The run's contention manager (built from {!Config.t.cm}); the
    {!Stm.atomic} runner consults it for inter-attempt backoff. *)

val mvcc : ctx -> Stm_mvcc.Mvcc.t
(** The run's snapshot registry (only used under {!Config.Mvcc}; the
    non-transactional strong-atomicity write barrier also installs
    versions through it). *)

val gvc : ctx -> Gvc.t
(** The run's global commit clock, shared between the mvcc machinery and
    {!Config.Timestamp} validation. Advanced by mvcc update commits, by
    eager/lazy update commits under [Timestamp], and by strong
    non-transactional writes (versioned installs under mvcc, the
    {!Barriers.write} release under [Timestamp]). *)

type t
(** A transaction descriptor. *)

exception Abort_txn
(** Internal control flow: the current transaction must abort (conflict,
    failed validation, or retry budget exhausted). The [atomic] runner in
    {!Stm} catches it, calls {!abort}, backs off and re-executes. *)

exception Retry_request
(** Raised by the user-visible [retry] operation. *)

exception Open_nest_conflict
(** An open-nested transaction tried to acquire a record owned by one of
    its ancestors (unsupported, as in most open-nesting designs). *)

val begin_txn : ?parent:t -> ctx -> t
val id : t -> int

(** [set_abort_cause t c] records why the upcoming {!abort} happens (the
    abort sites inside this module set it themselves; {!Stm} sets it for
    user-level [retry] and for exceptions escaping the atomic block).
    Reported in the {!Trace.Txn_abort} event. *)
val set_abort_cause : t -> Trace.abort_cause -> unit
val depth : t -> int
val set_depth : t -> int -> unit

val txn_read : ctx -> t -> Heap.obj -> int -> Heap.value
(** Transactional load (open-for-read + read). May raise {!Abort_txn}. *)

val txn_write : ctx -> t -> Heap.obj -> int -> Heap.value -> unit
(** Transactional store (open-for-write + write). May raise {!Abort_txn}. *)

val validate : ctx -> t -> bool
(** Re-check every read-set entry against the current records. Under
    {!Config.Timestamp} (eager/lazy) this is O(1) when the global commit
    clock has not moved since the last successful full walk; otherwise
    one walk runs and, on success, advances the transaction's read
    timestamp to the observed clock. *)

val commit : ctx -> t -> unit
(** Validate, run the quiescence protocol if configured, write back (lazy)
    and release ownership. Raises {!Abort_txn} on validation failure
    {e without} cleaning up — the caller must then call {!abort}. *)

val abort : ?restart:bool -> ctx -> t -> unit
(** Roll back (eager) or discard the buffer (lazy), release ownership with
    a version bump, update counters. [restart] (default [true]) tells the
    contention manager whether the atomic block will be re-attempted —
    pass [false] when the block is being torn down for good (an escaping
    exception or a starved runner), so the block's priority state does not
    leak into the thread's next transaction. *)

val reads_snapshot : t -> (Heap.obj * int) list
(** Read set as (object, observed version) pairs; used by the [retry]
    wait loop. *)

val has_writes : t -> bool
