(** Ambient per-thread source-site attribution.

    The IR interpreter tags each memory access with the access site's id
    (assigned at lowering, resolvable to [file:line]) before dispatching
    into {!Stm}. Barriers and the conflict manager read it back when
    emitting {!Trace} events, so the per-site profiler can attribute
    barrier executions and conflicts to source locations without
    threading site ids through every STM signature.

    The slot is per simulated thread: barriers yield internally, and a
    global would be clobbered by the accesses other threads perform in
    between. Sites are meaningful only while a {!Trace} sink is
    installed; callers skip the store otherwise. *)

val set : int -> unit
(** Set the current thread's site (call before dispatching an access). *)

val clear : unit -> unit
(** Reset the current thread's site to [-1] (unknown). *)

val current : unit -> int
(** The current thread's site, [-1] if never set. *)

val reset : unit -> unit
(** Drop all threads' slots (start of a fresh run). *)
