open Stm_runtime

(* One slot per simulated thread. Green threads switch only at yields, so
   a per-tid slot written at access dispatch and read inside the barrier
   attributes correctly even if the barrier's internal yields interleave
   other threads' accesses. *)
let slots : (int, int) Hashtbl.t = Hashtbl.create 64

let tid () = if Sched.running () then Sched.self () else 0

let set site = Hashtbl.replace slots (tid ()) site

let clear () = Hashtbl.replace slots (tid ()) (-1)

let current () =
  match Hashtbl.find_opt slots (tid ()) with Some s -> s | None -> -1

let reset () = Hashtbl.reset slots
