open Stm_runtime
module Mvcc = Stm_mvcc.Mvcc

exception Abort_txn
exception Retry_request
exception Open_nest_conflict

(* Footprint report for a blocked record observation in a conflict-retry
   loop. The first one is a plain read — its reversal against the
   owner's acquire is how the explorer discovers the no-contention
   branch — but finding the record {e still} blocked on a later attempt
   is a futile spin-wait re-read: reversing it against the eventual
   release only changes how many times the waiter re-checks before the
   same exit, so it is reported as {!Stm_runtime.Footprint.Spin_read}.
   Iterations that leave the loop always report a plain read. *)
let observe_blocked ~attempt oid =
  if attempt > 0 then Footprint.spin_read oid else Footprint.read oid

type killed_flag = {
  mutable killed : bool;
  (* who wounded us, recorded by the aggressor at wound time so the
     victim's abort event can name it (diag causality graph) *)
  mutable killed_by : int;  (* wounding txid, -1 unknown *)
  mutable killed_by_tid : int;  (* wounding thread, -1 unknown *)
}

(* A transaction descriptor. Descriptors and their tables/logs are pooled
   per context and recycled across attempts (clear-don't-reallocate): an
   abort/retry storm reuses the same hash tables and grow-only arenas
   instead of re-running [Hashtbl.create] per incarnation.

   The read set is dedup-on-insert: [read_index] keys distinct objects by
   oid, [read_objs]/[read_vers] keep the distinct entries in insertion
   order (first-observed version wins), and [reads_obs] counts every
   open-for-read observation - including re-reads - exactly as the old
   cons-list length did, so the validation cost charge on the virtual
   clock is unchanged while [validate] walks only distinct entries. *)
type t = {
  mutable txid : int;
  mutable parent : t option;
  (* read set; membership is an open-addressed int set keyed by oid
     (linear probing, power-of-two capacity). A slot is live iff its
     stamp equals [ridx_gen], so clearing the set on recycle is a
     generation bump, not an array sweep. *)
  mutable ridx_keys : int array;
  mutable ridx_stamp : int array;
  mutable ridx_gen : int;
  mutable read_objs : Heap.obj array;  (* insertion order *)
  mutable read_vers : int array;  (* first-observed versions *)
  mutable nreads : int;  (* distinct entries *)
  mutable reads_obs : int;  (* monotone observation count, incl. re-reads *)
  (* ownership (eager open-for-write / lazy commit-time acquire) *)
  owned : (int, int) Hashtbl.t;  (* oid -> arena slot *)
  mutable owned_obj : Heap.obj array;
  mutable owned_prior : int array;  (* prior record versions *)
  mutable nowned : int;
  (* undo log (eager versioning); grow-only arena, buffers reused *)
  undo_saved : (int, unit) Hashtbl.t;  (* packed (oid, granule) saved? *)
  mutable undo_obj : Heap.obj array;
  mutable undo_base : int array;
  mutable undo_buf : Heap.value array array;  (* slot buffers, len >= live *)
  mutable undo_len : int array;  (* live prefix of each buffer *)
  mutable nundo : int;
  (* write buffer (lazy versioning); same arena discipline *)
  wbuf : (int, int) Hashtbl.t;  (* packed (oid, granule) -> arena slot *)
  mutable wbuf_obj : Heap.obj array;
  mutable wbuf_base : int array;
  mutable wbuf_prior : int array;  (* version at copy; -1 = private obj *)
  mutable wbuf_buf : Heap.value array array;
  mutable wbuf_len : int array;
  mutable nwbuf : int;
  mutable naccesses : int;
  mutable nest_depth : int;
  mutable part : Quiesce.participant option;
  flag : killed_flag;  (* set by a wounding (older) transaction *)
  mutable snap : int;  (* mvcc snapshot timestamp; -1 outside mvcc *)
  (* timestamp validation (Config.Timestamp, eager/lazy only): the read
     timestamp this transaction's reads are proven consistent at, and the
     global-clock value observed by the last successful full walk. The
     fast path in [validate] compares the clock against [lva]; a read of
     a granule stamped newer than [rv] attempts extension. *)
  mutable rv : int;
  mutable lva : int;
  mutable cts : int;  (* commit ts being installed by release_all; -1 = none *)
  mutable begin_ts : int;  (* cost clock at begin, for latency attribution *)
  mutable abort_cause : Trace.abort_cause;
  (* last losing contention point, for abort attribution: the granule and
     (when a live transaction holds it) the owning txid/tid. Plain field
     writes on conflict paths only - the access fast paths never touch
     them, so the cost model and hot-path timings are unchanged. *)
  mutable last_oid : int;
  mutable last_aggr : int;
  mutable last_aggr_tid : int;
}

type ctx = {
  cfg : Config.t;
  stats : Stats.t;
  q : Quiesce.t;
  cm : Stm_cm.Cm.t;
  gvc : Gvc.t;  (* the global commit clock, shared with [mv] *)
  mv : Mvcc.t;  (* snapshot registry (mvcc versioning) *)
  mutable next_id : int;
  registry : (int, killed_flag) Hashtbl.t;
      (* live transaction ids -> wound flag, for contention management *)
  mutable pool : t list;  (* recycled descriptors *)
}

let make_ctx (cfg : Config.t) =
  let gvc = Gvc.create () in
  {
    cfg;
    stats = Stats.create ();
    q = Quiesce.create ();
    cm =
      Stm_cm.Cm.create ~seed:cfg.Config.cm_seed
        ~max_retries:cfg.Config.max_txn_retries ~cost:cfg.Config.cost
        cfg.Config.cm;
    gvc;
    mv = Mvcc.create ~gvc ~max_versions:cfg.Config.mvcc_max_versions ();
    next_id = 0;
    registry = Hashtbl.create 32;
    pool = [];
  }

let cfg ctx = ctx.cfg
let stats ctx = ctx.stats
let quiescer ctx = ctx.q
let cm ctx = ctx.cm
let mvcc ctx = ctx.mv
let gvc ctx = ctx.gvc

(* Timestamp validation is an eager/lazy scheme; the mvcc backend's
   snapshot protocol already draws from the same clock and ignores it. *)
let timestamped ctx =
  match ctx.cfg.Config.versioning with
  | Config.Mvcc -> false
  | Config.Eager | Config.Lazy -> ctx.cfg.Config.validation = Config.Timestamp

(* ------------------------------------------------------------------ *)
(* Descriptor pool and arenas                                          *)
(* ------------------------------------------------------------------ *)

let fresh_descriptor () =
  {
    txid = 0;
    parent = None;
    ridx_keys = Array.make 32 0;
    ridx_stamp = Array.make 32 0;
    ridx_gen = 1;
    read_objs = Array.make 16 Heap.dummy;
    read_vers = Array.make 16 0;
    nreads = 0;
    reads_obs = 0;
    owned = Hashtbl.create 16;
    owned_obj = Array.make 8 Heap.dummy;
    owned_prior = Array.make 8 0;
    nowned = 0;
    undo_saved = Hashtbl.create 16;
    undo_obj = Array.make 8 Heap.dummy;
    undo_base = Array.make 8 0;
    undo_buf = Array.make 8 [||];
    undo_len = Array.make 8 0;
    nundo = 0;
    wbuf = Hashtbl.create 16;
    wbuf_obj = Array.make 8 Heap.dummy;
    wbuf_base = Array.make 8 0;
    wbuf_prior = Array.make 8 0;
    wbuf_buf = Array.make 8 [||];
    wbuf_len = Array.make 8 0;
    nwbuf = 0;
    naccesses = 0;
    nest_depth = 0;
    part = None;
    flag = { killed = false; killed_by = -1; killed_by_tid = -1 };
    snap = -1;
    rv = 0;
    lva = 0;
    cts = -1;
    begin_ts = 0;
    abort_cause = Trace.Cause_exn;
    last_oid = -1;
    last_aggr = -1;
    last_aggr_tid = -1;
  }

let grow_obj_array a n =
  let a' = Array.make (2 * Array.length a) Heap.dummy in
  Array.blit a 0 a' 0 n;
  a'

let grow_int_array a n =
  let a' = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 a' 0 n;
  a'

let grow_buf_array a n =
  let a' = Array.make (2 * Array.length a) [||] in
  Array.blit a 0 a' 0 n;
  a'

(* Fibonacci-hash an oid into the probe table. The multiply may wrap
   negative; masking with a positive power-of-two-minus-one keeps the
   low bits, which is all we want. *)
let ridx_hash oid mask = (oid * 0x9E3779B1) land mask

(* Add [oid] to the membership set; true iff it was not yet present. *)
let ridx_add t oid =
  let keys = t.ridx_keys and stamps = t.ridx_stamp and gen = t.ridx_gen in
  let mask = Array.length keys - 1 in
  let i = ref (ridx_hash oid mask) in
  let result = ref None in
  while !result = None do
    if stamps.(!i) <> gen then begin
      keys.(!i) <- oid;
      stamps.(!i) <- gen;
      result := Some true
    end
    else if keys.(!i) = oid then result := Some false
    else i := (!i + 1) land mask
  done;
  Option.get !result

(* Keep the probe table at most half full; the distinct oids to re-insert
   are exactly the live prefix of [read_objs]. *)
let ridx_grow_if_needed t =
  if 2 * (t.nreads + 1) > Array.length t.ridx_keys then begin
    let cap = 2 * Array.length t.ridx_keys in
    t.ridx_keys <- Array.make cap 0;
    t.ridx_stamp <- Array.make cap 0;
    t.ridx_gen <- 1;
    for j = 0 to t.nreads - 1 do
      ignore (ridx_add t t.read_objs.(j).Heap.oid)
    done
  end

let ensure_read_capacity t =
  if t.nreads >= Array.length t.read_objs then begin
    t.read_objs <- grow_obj_array t.read_objs t.nreads;
    t.read_vers <- grow_int_array t.read_vers t.nreads
  end

let ensure_owned_capacity t =
  if t.nowned >= Array.length t.owned_obj then begin
    t.owned_obj <- grow_obj_array t.owned_obj t.nowned;
    t.owned_prior <- grow_int_array t.owned_prior t.nowned
  end

let ensure_undo_capacity t =
  if t.nundo >= Array.length t.undo_obj then begin
    t.undo_obj <- grow_obj_array t.undo_obj t.nundo;
    t.undo_base <- grow_int_array t.undo_base t.nundo;
    t.undo_buf <- grow_buf_array t.undo_buf t.nundo;
    t.undo_len <- grow_int_array t.undo_len t.nundo
  end

let ensure_wbuf_capacity t =
  if t.nwbuf >= Array.length t.wbuf_obj then begin
    t.wbuf_obj <- grow_obj_array t.wbuf_obj t.nwbuf;
    t.wbuf_base <- grow_int_array t.wbuf_base t.nwbuf;
    t.wbuf_prior <- grow_int_array t.wbuf_prior t.nwbuf;
    t.wbuf_buf <- grow_buf_array t.wbuf_buf t.nwbuf;
    t.wbuf_len <- grow_int_array t.wbuf_len t.nwbuf
  end

(* Take a slot buffer of at least [len] values, reusing the arena's
   previous allocation for that slot when it is big enough. *)
let slot_buffer bufs i len =
  if Array.length bufs.(i) >= len then bufs.(i)
  else begin
    let b = Array.make len Heap.Vnull in
    bufs.(i) <- b;
    b
  end

(* Return a finished descriptor to the context pool. Tables are cleared,
   not re-created; arenas keep their capacity. Stale object references
   beyond the live prefixes are harmless - heap objects live for the
   whole simulated run - and are overwritten by the next user. *)
let recycle ctx t =
  t.ridx_gen <- t.ridx_gen + 1;
  t.nreads <- 0;
  t.reads_obs <- 0;
  Hashtbl.clear t.owned;
  t.nowned <- 0;
  Hashtbl.clear t.undo_saved;
  t.nundo <- 0;
  Hashtbl.clear t.wbuf;
  t.nwbuf <- 0;
  t.naccesses <- 0;
  t.nest_depth <- 0;
  t.parent <- None;
  t.part <- None;
  t.cts <- -1;
  ctx.pool <- t :: ctx.pool

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let begin_txn ?parent ctx =
  (* The txid counter orders transaction births. Under an
     order-insensitive policy txids are pure identifiers — swapping two
     begins renames them without changing any decision — so the counter
     is only a dependency when the policy compares txids or ages. *)
  if Stm_cm.Policy.order_sensitive ctx.cfg.cm then
    Footprint.write Footprint.oid_txid;
  ctx.next_id <- ctx.next_id + 1;
  Sched.tick ctx.cfg.cost.Cost.txn_begin;
  let part = if ctx.cfg.quiescence then Some (Quiesce.register ctx.q) else None in
  let t =
    match ctx.pool with
    | d :: rest ->
        ctx.pool <- rest;
        d
    | [] -> fresh_descriptor ()
  in
  t.txid <- ctx.next_id;
  t.parent <- parent;
  t.part <- part;
  t.flag.killed <- false;
  t.flag.killed_by <- -1;
  t.flag.killed_by_tid <- -1;
  t.snap <-
    (match ctx.cfg.versioning with
    | Config.Mvcc -> Mvcc.begin_snapshot ctx.mv
    | Config.Eager | Config.Lazy -> -1);
  (* No commit has landed since this very instant, so the empty read set
     is vacuously consistent here: an uncontended timestamp-mode
     transaction never walks at all. *)
  t.rv <- Gvc.now ctx.gvc;
  t.lva <- t.rv;
  t.cts <- -1;
  t.begin_ts <- Sched.time ();
  t.abort_cause <- Trace.Cause_exn;
  t.last_oid <- -1;
  t.last_aggr <- -1;
  t.last_aggr_tid <- -1;
  Footprint.write (Footprint.flag_oid ctx.next_id);
  Hashtbl.replace ctx.registry ctx.next_id t.flag;
  Stm_cm.Cm.on_begin ctx.cm ~tid:(Sched.self ()) ~txid:ctx.next_id
    ~now:(Sched.time ());
  Trace.emit (lazy (Trace.Txn_begin { txid = ctx.next_id; tid = Sched.self () }));
  t

let id t = t.txid
let set_abort_cause t c = t.abort_cause <- c
let latency t = Sched.time () - t.begin_ts
let depth t = t.nest_depth
let set_depth t d = t.nest_depth <- d

let reads_snapshot t =
  let rec go i acc =
    if i >= t.nreads then acc
    else go (i + 1) ((t.read_objs.(i), t.read_vers.(i)) :: acc)
  in
  go 0 []

let has_writes t = t.nowned > 0 || t.nwbuf > 0 || t.nundo > 0

(* Record an open-for-read observation of [obj] at version [ver]. Every
   observation bumps the monotone counter (the virtual-time validation
   charge is proportional to observations, as it always was); only the
   first observation of an object enters the validated set, so re-reading
   a granule no longer grows it. First-observed version wins: if the
   version moved since, the retained entry is the stale one and validation
   fails exactly as it did when both entries were kept. *)
let note_read t (obj : Heap.obj) ver =
  t.reads_obs <- t.reads_obs + 1;
  ridx_grow_if_needed t;
  if ridx_add t obj.Heap.oid then begin
    ensure_read_capacity t;
    t.read_objs.(t.nreads) <- obj;
    t.read_vers.(t.nreads) <- ver;
    t.nreads <- t.nreads + 1
  end

let granule_base (cfg : Config.t) fld = fld - (fld mod cfg.granule)

let granule_len (cfg : Config.t) obj base =
  min cfg.granule (Heap.nfields obj - base)

(* Undo-log / write-buffer key: (oid, granule base) packed into one int -
   no tuple allocation per lookup. Base fits 26 bits; the largest
   simulated objects are a few thousand fields. *)
let gkey (obj : Heap.obj) base = (obj.Heap.oid lsl 26) lor base

(* Does [t] or any of its open-nesting ancestors own this record word? *)
let rec ancestor_owns t w =
  Txrec.is_exclusive w
  &&
  let o = Txrec.owner w in
  o = t.txid || (match t.parent with Some p -> ancestor_owns p w | None -> false)

(* Does the write buffer touch any public (shared) granule? Private-only
   writers commit like read-only transactions: nothing to certify. *)
let mvcc_has_public t =
  let rec go i = i < t.nwbuf && (t.wbuf_prior.(i) >= 0 || go (i + 1)) in
  go 0

(* mvcc read currency: every granule in the read set is still at the
   version the snapshot saw, i.e. no commit has installed a newer version
   since. Only serializable update transactions need this; snapshot reads
   are internally consistent by construction. A failing entry is
   attributed to the commit that installed the newer version (the same
   aggressor edge [sv_entries_ok] reports for a live owner), as far as
   the installer ring still remembers it. *)
let mvcc_entries_ok ctx t =
  let rec go i =
    i >= t.nreads
    ||
    let obj = t.read_objs.(i) in
    let ok = Heap.version_ts obj <= t.snap in
    if not ok then begin
      t.last_oid <- obj.Heap.oid;
      match Mvcc.installer_of ctx.mv ~ts:(Heap.version_ts obj) with
      | Some (txid, tid) ->
          t.last_aggr <- txid;
          t.last_aggr_tid <- tid
      | None ->
          t.last_aggr <- -1;
          t.last_aggr_tid <- -1
    end;
    ok && go (i + 1)
  in
  go 0

(* The single-version read-currency walk: every granule in the read set
   is still at its first-observed version (or is owned by this very
   transaction at that prior version). Shared by commit/periodic
   validation and by timestamp extension. *)
let sv_entries_ok ctx t =
  let rec entries_ok i =
    i >= t.nreads
    ||
    let obj = t.read_objs.(i) in
    let ver = t.read_vers.(i) in
    let w = Heap.txrec_get obj in
    let dec = Txrec.decode w in
    let entry_ok =
      match dec with
      | Txrec.Shared v -> v = ver
      | Txrec.Exclusive o when o = t.txid -> (
          match Hashtbl.find_opt t.owned obj.Heap.oid with
          | Some slot -> t.owned_prior.(slot) = ver
          | None -> false)
      | Txrec.Exclusive _ | Txrec.Exclusive_anon _ | Txrec.Private -> false
    in
    if not entry_ok then begin
      (* attribute the failure: the granule whose version moved, and its
         current owner when a live transaction still holds it *)
      t.last_oid <- obj.Heap.oid;
      match dec with
      | Txrec.Exclusive o when o <> t.txid ->
          t.last_aggr <- o;
          t.last_aggr_tid <-
            Option.value ~default:(-1) (Stm_cm.Cm.tid_of ctx.cm ~txid:o)
      | _ ->
          t.last_aggr <- -1;
          t.last_aggr_tid <- -1
    end;
    entry_ok && entries_ok (i + 1)
  in
  entries_ok 0

(* The walk's cycle charge, billed next to the walk it models — paths
   that skip the walk (mvcc snapshot commits, the timestamp fast path)
   no longer pay it. Observations, not distinct entries: the virtual
   charge stays proportional to what the paper's cons-list walk cost. *)
let charge_walk ctx t =
  Sched.tick (ctx.cfg.cost.Cost.txn_per_read * max 1 t.reads_obs)

let validate ctx t =
  ctx.stats.Stats.validations <- ctx.stats.Stats.validations + 1;
  let ok =
    match ctx.cfg.versioning with
    | Config.Mvcc ->
        ctx.cfg.isolation = Config.Snapshot
        || (not (mvcc_has_public t))
        || begin
             charge_walk ctx t;
             mvcc_entries_ok ctx t
           end
    | Config.Eager | Config.Lazy ->
        if timestamped ctx then begin
          let clock = Gvc.now ctx.gvc in
          if clock = t.lva && not ctx.cfg.quiescence then begin
            (* nothing committed since the last full walk proved the read
               set consistent: O(1) revalidation. Not sound under
               quiescence: a committer in [Quiesce.commit_epoch_wait]
               holds its records Exclusive but bumps the clock only at
               release, so an unchanged clock cannot witness the
               in-flight acquisition - and a doomed transaction that
               fast-passes here gets marked consistent while its stale
               eager speculative state is still live across the
               privatizer's handoff. Quiescing configurations always
               walk; the walk fails conservatively on Exclusive owners. *)
            ctx.stats.Stats.fast_validations <-
              ctx.stats.Stats.fast_validations + 1;
            Sched.tick ctx.cfg.cost.Cost.txn_validate_fast;
            true
          end
          else begin
            charge_walk ctx t;
            let ok = sv_entries_ok ctx t in
            (* the walk is yield-free, so on success the read set is
               consistent at [clock] as observed above *)
            if ok then begin
              t.lva <- clock;
              t.rv <- clock
            end;
            ok
          end
        end
        else begin
          charge_walk ctx t;
          sv_entries_ok ctx t
        end
  in
  Trace.emit ~level:Trace.Debug
    (lazy (Trace.Validation { txid = t.txid; tid = Sched.self (); ok }));
  ok

(* Timestamp extension: a read observed a granule stamped newer than
   [rv]. One full walk proves every first-observed version is still
   current; the read set is then consistent at the clock as of the walk,
   so [rv] advances instead of the transaction aborting. *)
let extend_rv ctx t =
  let clock = Gvc.now ctx.gvc in
  charge_walk ctx t;
  if sv_entries_ok ctx t then begin
    ctx.stats.Stats.ts_extensions <- ctx.stats.Stats.ts_extensions + 1;
    t.rv <- clock;
    t.lva <- clock
  end
  else begin
    t.abort_cause <- Trace.Cause_validation;
    raise Abort_txn
  end

let check_wounded t =
  Footprint.read (Footprint.flag_oid t.txid);
  if t.flag.killed then begin
    t.abort_cause <- Trace.Cause_wounded;
    raise Abort_txn
  end

(* Apply a Wound decision: mark the victim's flag; the victim notices it
   at its next pause or validation point and aborts. Idempotent. *)
let wound ctx ~victim ~by =
  Footprint.write (Footprint.flag_oid victim);
  match Hashtbl.find_opt ctx.registry victim with
  | Some flag when not flag.killed ->
      flag.killed <- true;
      flag.killed_by <- by;
      flag.killed_by_tid <- Sched.self ();
      ctx.stats.Stats.wounds <- ctx.stats.Stats.wounds + 1;
      Trace.emit (lazy (Trace.Txn_wound { victim; by }))
  | Some _ | None -> ()

(* A transaction pausing on a conflict revalidates (when quiescence is on)
   so that committers waiting in [Quiesce.commit_epoch_wait] observe it as
   consistent - and so that doomed transactions abort promptly instead of
   blocking a privatizer. *)
let conflict_pause ctx t ~attempt ~writer ~delay obj =
  Conflict.handle ~delay ctx.cfg ctx.stats ~attempt ~writer obj;
  if ctx.cfg.quiescence then
    if validate ctx t then Option.iter (Quiesce.mark_consistent ctx.q) t.part
    else begin
      t.abort_cause <- Trace.Cause_validation;
      raise Abort_txn
    end

(* Resolve a conflict on [obj] through the contention manager: ask the
   configured policy what to do, trace its decision, and either abort
   self, wound the owner and pause, or just pause. Raises [Abort_txn]
   (never returns normally) on a self-abort. *)
let cm_resolve ctx t ~attempt ~writer obj =
  check_wounded t;
  (* Stateful contention-manager policies consult and mutate shared
     policy state when resolving; fold all of it into one pseudo-granule
     (conservative: more runs, never fewer behaviors). Order-insensitive
     policies (Suicide) decide from the asker's own budget alone, so for
     them the granule is skipped — reporting it would make every
     conflict resolution race with every other. *)
  if Stm_cm.Policy.order_sensitive ctx.cfg.cm then
    Footprint.write Footprint.oid_cm;
  observe_blocked ~attempt obj.Heap.oid;
  let w = Heap.txrec_peek obj in
  let owner = if Txrec.is_exclusive w then Some (Txrec.owner w) else None in
  t.last_oid <- obj.Heap.oid;
  (match owner with
  | Some o ->
      t.last_aggr <- o;
      t.last_aggr_tid <-
        Option.value ~default:(-1) (Stm_cm.Cm.tid_of ctx.cm ~txid:o)
  | None ->
      t.last_aggr <- -1;
      t.last_aggr_tid <- -1);
  let decision =
    Stm_cm.Cm.on_conflict ctx.cm
      {
        Stm_cm.Cm.txid = t.txid;
        tid = Sched.self ();
        attempt;
        writer;
        work = t.naccesses;
        owner;
        now = Sched.time ();
      }
  in
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Cm_decision
         {
           tid = Sched.self ();
           txid = t.txid;
           policy = Stm_cm.Cm.name ctx.cm;
           decision = Stm_cm.Cm.string_of_decision decision;
           owner = Option.value ~default:(-1) owner;
           delay =
             (match decision with
             | Stm_cm.Cm.Wait d | Stm_cm.Cm.Wound { delay = d; _ } -> d
             | Stm_cm.Cm.Abort_self -> 0);
         }));
  match decision with
  | Stm_cm.Cm.Abort_self ->
      t.abort_cause <- Trace.Cause_conflict;
      raise Abort_txn
  | Stm_cm.Cm.Wound { victim; delay } ->
      wound ctx ~victim ~by:t.txid;
      conflict_pause ctx t ~attempt ~writer ~delay obj
  | Stm_cm.Cm.Wait delay -> conflict_pause ctx t ~attempt ~writer ~delay obj

let periodic_validate ctx t =
  check_wounded t;
  t.naccesses <- t.naccesses + 1;
  if t.naccesses mod ctx.cfg.validate_every = 0 then
    if validate ctx t then
      Option.iter (Quiesce.mark_consistent ctx.q) t.part
    else begin
      t.abort_cause <- Trace.Cause_validation;
      raise Abort_txn
    end

(* Save the granule containing [fld] in the undo log (eager). *)
let save_undo ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  let key = gkey obj base in
  if not (Hashtbl.mem t.undo_saved key) then begin
    Hashtbl.replace t.undo_saved key ();
    let len = granule_len ctx.cfg obj base in
    ensure_undo_capacity t;
    let i = t.nundo in
    let buf = slot_buffer t.undo_buf i len in
    for j = 0 to len - 1 do
      buf.(j) <- Heap.get obj (base + j)
    done;
    t.undo_obj.(i) <- obj;
    t.undo_base.(i) <- base;
    t.undo_len.(i) <- len;
    t.nundo <- i + 1;
    Sched.tick (ctx.cfg.cost.Cost.plain_load * len)
  end

(* Acquire exclusive ownership of [obj]'s record for this transaction
   (eager open-for-write, or lazy commit-time acquire with an expected
   version). Returns the prior version. *)
let acquire ctx t ?expect (obj : Heap.obj) =
  let cost = ctx.cfg.cost in
  let rec go attempt =
    let w = Heap.txrec_peek obj in
    Sched.tick cost.Cost.plain_load;
    match Txrec.decode w with
    | Txrec.Exclusive o when o = t.txid ->
        Footprint.read obj.Heap.oid;
        t.owned_prior.(Hashtbl.find t.owned obj.Heap.oid)
    | Txrec.Shared ver -> (
        Footprint.read obj.Heap.oid;
        (match expect with
        | Some e when e <> ver ->
            (* a lazily buffered record changed version before commit-time
               acquisition: the read that seeded the buffer is stale *)
            t.last_oid <- obj.Heap.oid;
            t.last_aggr <- -1;
            t.last_aggr_tid <- -1;
            t.abort_cause <- Trace.Cause_stale_lock;
            raise Abort_txn
        | Some _ | None -> ());
        ctx.stats.Stats.atomic_ops <- ctx.stats.Stats.atomic_ops + 1;
        Sched.tick cost.Cost.atomic_rmw;
        Sched.yield ();
        if Heap.txrec_cas obj w (Txrec.exclusive t.txid)
        then begin
          ensure_owned_capacity t;
          Hashtbl.replace t.owned obj.Heap.oid t.nowned;
          t.owned_obj.(t.nowned) <- obj;
          t.owned_prior.(t.nowned) <- ver;
          t.nowned <- t.nowned + 1;
          Sched.yield ();
          ver
        end
        else go attempt)
    | Txrec.Exclusive _ when ancestor_owns t w ->
        Footprint.read obj.Heap.oid;
        raise Open_nest_conflict
    | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
        observe_blocked ~attempt obj.Heap.oid;
        cm_resolve ctx t ~attempt ~writer:true obj;
        go (attempt + 1)
    | Txrec.Private ->
        (* The object was private when the caller checked and is being
           published concurrently - retry the whole access. *)
        Footprint.read obj.Heap.oid;
        go attempt
  in
  go 0

(* Publication duty inside transactions (Section 4, last paragraph): in an
   eager system a write of a reference into a public object immediately
   publishes the referenced private graph, even before commit. *)
let publish_on_store ctx (v : Heap.value) =
  if ctx.cfg.dea then Dea.publish_value ctx.stats ctx.cfg.cost v

(* ------------------------------------------------------------------ *)
(* Eager versioning                                                    *)
(* ------------------------------------------------------------------ *)

let eager_write ctx t (obj : Heap.obj) fld v =
  let cost = ctx.cfg.cost in
  if ctx.cfg.dea && Dea.is_private obj then begin
    (* private object: no synchronization, but the undo log still records
       old values so that an abort rolls them back *)
    save_undo ctx t obj fld;
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store
  end
  else begin
    ignore (acquire ctx t obj);
    save_undo ctx t obj fld;
    publish_on_store ctx v;
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store;
    Sched.yield ()
  end

let eager_read ctx t (obj : Heap.obj) fld =
  let cost = ctx.cfg.cost in
  let rec go attempt =
    let w = Heap.txrec_peek obj in
    Sched.tick cost.Cost.plain_load;
    match Txrec.decode w with
    | Txrec.Private ->
        Footprint.read obj.Heap.oid;
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
    | Txrec.Exclusive o when o = t.txid ->
        Footprint.read obj.Heap.oid;
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
    | Txrec.Shared ver ->
        Footprint.read obj.Heap.oid;
        note_read t obj ver;
        if timestamped ctx && Heap.version_ts obj > t.rv then
          (* stamped by a commit newer than our read timestamp: extend
             [rv] (or abort) before using the value *)
          extend_rv ctx t;
        Sched.yield ();
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        if timestamped ctx && Heap.txrec_get obj <> Txrec.shared ver
        then
          (* the record moved across the preemption point inside the read:
             the value may be newer than [rv] without rv-consistency —
             retake the whole read (TL2's post-read recheck). Read-only
             transactions skip commit validation, so each read must be
             individually proven consistent at [rv]. *)
          go attempt
        else v
    | Txrec.Exclusive _ when ancestor_owns t w ->
        Footprint.read obj.Heap.oid;
        raise Open_nest_conflict
    | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
        observe_blocked ~attempt obj.Heap.oid;
        cm_resolve ctx t ~attempt ~writer:false obj;
        go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Lazy versioning                                                     *)
(* ------------------------------------------------------------------ *)

(* Create (or find) the write-buffer slot covering [fld]; returns its
   arena index. The private copy spans the whole granule - the source of
   the Section 2.4 anomalies when granule > 1. *)
let lazy_slot ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  let key = gkey obj base in
  match Hashtbl.find_opt t.wbuf key with
  | Some i -> i
  | None ->
      let cost = ctx.cfg.cost in
      let len = granule_len ctx.cfg obj base in
      let prior =
        if ctx.cfg.dea && Dea.is_private obj then -1
        else begin
          let rec observe attempt =
            let w = Heap.txrec_peek obj in
            Sched.tick cost.Cost.plain_load;
            match Txrec.decode w with
            | Txrec.Shared ver ->
                Footprint.read obj.Heap.oid;
                note_read t obj ver;
                if timestamped ctx && Heap.version_ts obj > t.rv then
                  extend_rv ctx t;
                ver
            | Txrec.Private ->
                Footprint.read obj.Heap.oid;
                -1
            | Txrec.Exclusive _ when ancestor_owns t w ->
                Footprint.read obj.Heap.oid;
                raise Open_nest_conflict
            | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
                observe_blocked ~attempt obj.Heap.oid;
                cm_resolve ctx t ~attempt ~writer:true obj;
                observe (attempt + 1)
          in
          observe 0
        end
      in
      ensure_wbuf_capacity t;
      let i = t.nwbuf in
      let buf = slot_buffer t.wbuf_buf i len in
      for j = 0 to len - 1 do
        buf.(j) <- Heap.get obj (base + j)
      done;
      Sched.tick (cost.Cost.plain_load * len);
      t.wbuf_obj.(i) <- obj;
      t.wbuf_base.(i) <- base;
      t.wbuf_prior.(i) <- prior;
      t.wbuf_len.(i) <- len;
      Hashtbl.replace t.wbuf key i;
      t.nwbuf <- i + 1;
      i

let lazy_write ctx t obj fld v =
  let i = lazy_slot ctx t obj fld in
  t.wbuf_buf.(i).(fld - t.wbuf_base.(i)) <- v;
  Sched.tick ctx.cfg.cost.Cost.plain_store

let lazy_read ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  match Hashtbl.find_opt t.wbuf (gkey obj base) with
  | Some i ->
      Sched.tick ctx.cfg.cost.Cost.plain_load;
      t.wbuf_buf.(i).(fld - base)
  | None -> eager_read ctx t obj fld
(* lazy open-for-read is the same protocol as eager: version + log *)

(* ------------------------------------------------------------------ *)
(* Multi-version (mvcc)                                                *)
(* ------------------------------------------------------------------ *)

(* Read [fld] as of this transaction's snapshot. [None] from the version
   chain means the bounded chain no longer retains a version old enough:
   abort snapshot-too-old (the only way an mvcc reader aborts). *)
let mvcc_read_field ctx t (obj : Heap.obj) fld =
  match Mvcc.read ctx.mv obj fld ~snap:t.snap with
  | Some v -> v
  | None ->
      t.last_oid <- obj.Heap.oid;
      t.last_aggr <- -1;
      t.last_aggr_tid <- -1;
      t.abort_cause <- Trace.Cause_snapshot;
      raise Abort_txn

(* mvcc open-for-read takes no ownership and never waits on a writer:
   the read set records the current version stamp only so a serializable
   update transaction can check read currency at commit. *)
let mvcc_read ctx t (obj : Heap.obj) fld =
  let cost = ctx.cfg.cost in
  let base = granule_base ctx.cfg fld in
  match Hashtbl.find_opt t.wbuf (gkey obj base) with
  | Some i ->
      Sched.tick cost.Cost.plain_load;
      t.wbuf_buf.(i).(fld - base)
  | None ->
      if ctx.cfg.dea && Dea.is_private obj then begin
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
      end
      else begin
        note_read t obj (Heap.version_ts obj);
        Sched.yield ();
        let v = mvcc_read_field ctx t obj fld in
        Sched.tick cost.Cost.plain_load;
        v
      end

(* Write-buffer slot seeded from the snapshot image, not the current
   fields: commit write-back must not resurrect a concurrent committer's
   updates to granule fields this transaction never stored to (under
   snapshot isolation the concurrent commit is allowed to stand when the
   granules are disjoint; when they overlap first-committer-wins aborts
   us anyway). *)
let mvcc_slot ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  let key = gkey obj base in
  match Hashtbl.find_opt t.wbuf key with
  | Some i -> i
  | None ->
      let cost = ctx.cfg.cost in
      let len = granule_len ctx.cfg obj base in
      let priv = ctx.cfg.dea && Dea.is_private obj in
      ensure_wbuf_capacity t;
      let i = t.nwbuf in
      let buf = slot_buffer t.wbuf_buf i len in
      for j = 0 to len - 1 do
        buf.(j) <-
          (if priv then Heap.get obj (base + j)
           else mvcc_read_field ctx t obj (base + j))
      done;
      Sched.tick (cost.Cost.plain_load * len);
      t.wbuf_obj.(i) <- obj;
      t.wbuf_base.(i) <- base;
      t.wbuf_prior.(i) <- (if priv then -1 else 0);
      t.wbuf_len.(i) <- len;
      Hashtbl.replace t.wbuf key i;
      t.nwbuf <- i + 1;
      i

let mvcc_write ctx t obj fld v =
  let i = mvcc_slot ctx t obj fld in
  t.wbuf_buf.(i).(fld - t.wbuf_base.(i)) <- v;
  Sched.tick ctx.cfg.cost.Cost.plain_store

let mvcc_end_snapshot ctx t =
  if t.snap >= 0 then begin
    Mvcc.end_snapshot ctx.mv t.snap;
    t.snap <- -1
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let emit_txn_access op =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Barrier
         {
           tid = Sched.self ();
           site = Site.current ();
           op;
           path = Trace.Path_fired;
         }))

let emit_access ~txid (obj : Heap.obj) fld value ~write =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Access
         { tid = Sched.self (); txid; oid = obj.Heap.oid; fld; value; write }))

let txn_read ctx t obj fld =
  ctx.stats.Stats.txn_reads <- ctx.stats.Stats.txn_reads + 1;
  emit_txn_access Trace.Op_txn_read;
  periodic_validate ctx t;
  let v =
    match ctx.cfg.versioning with
    | Config.Eager -> eager_read ctx t obj fld
    | Config.Lazy -> lazy_read ctx t obj fld
    | Config.Mvcc -> mvcc_read ctx t obj fld
  in
  emit_access ~txid:t.txid obj fld v ~write:false;
  v

let txn_write ctx t obj fld v =
  ctx.stats.Stats.txn_writes <- ctx.stats.Stats.txn_writes + 1;
  emit_txn_access Trace.Op_txn_write;
  periodic_validate ctx t;
  (match ctx.cfg.versioning with
  | Config.Eager -> eager_write ctx t obj fld v
  | Config.Lazy -> lazy_write ctx t obj fld v
  | Config.Mvcc -> mvcc_write ctx t obj fld v);
  emit_access ~txid:t.txid obj fld v ~write:true

(* Release every owned record at the bumped version. Commit and abort
   share this; under timestamp validation a committing transaction has
   set [cts] and the released granules are additionally stamped with the
   commit timestamp (an aborting one never is: rollback restored the
   committed values, so the old stamp still describes them). *)
let release_all ctx t =
  let cost = ctx.cfg.cost in
  for i = t.nowned - 1 downto 0 do
    if t.cts >= 0 then Heap.set_version_ts t.owned_obj.(i) t.cts;
    Heap.txrec_set t.owned_obj.(i) (Txrec.shared (t.owned_prior.(i) + 1));
    Sched.tick cost.Cost.txn_per_write
  done;
  t.nowned <- 0;
  Hashtbl.clear t.owned

let emit_serialized t =
  Trace.emit ~level:Trace.Debug
    (lazy (Trace.Txn_serialized { txid = t.txid; tid = Sched.self () }))

let commit ctx t =
  check_wounded t;
  let cost = ctx.cfg.cost in
  Sched.tick cost.Cost.txn_commit;
  (match ctx.cfg.versioning with
  | Config.Eager ->
      if timestamped ctx && not (has_writes t) then
        (* read-only fast path: every read was individually proven
           consistent at [rv] (read-time extension + post-read recheck),
           so the transaction serializes at [rv] with no commit-time
           walk — mirroring the mvcc abort-free read path *)
        ctx.stats.Stats.ro_fast_commits <- ctx.stats.Stats.ro_fast_commits + 1
      else if not (validate ctx t) then begin
        t.abort_cause <- Trace.Cause_validation;
        raise Abort_txn
      end;
      emit_serialized t;
      if ctx.cfg.quiescence then begin
        match t.part with
        | Some p ->
            ctx.stats.Stats.quiesce_waits <- ctx.stats.Stats.quiesce_waits + 1;
            Trace.emit (lazy (Trace.Quiesce_wait { txid = t.txid }));
            Quiesce.mark_consistent ctx.q p;
            Quiesce.commit_epoch_wait ctx.q p
        | None -> ()
      end;
      (* the clock bump and the releases below run without a yield, so a
         concurrent validator observes either the old clock with the old
         records or the new clock with the new ones *)
      if timestamped ctx && t.nowned > 0 then t.cts <- Gvc.advance ctx.gvc;
      release_all ctx t;
      t.cts <- -1
  | Config.Lazy ->
      (* Acquire every written record at its buffered version. The arena
         is flushed newest-slot-first: lazy STMs copy buffered values back
         "one at a time in no particular order" (Section 2.3), and the
         newest-first traversal of the log is our arbitrary order -
         deliberately not program order, so the overlapped-writes anomaly
         of Figure 4a is expressible. *)
      for i = t.nwbuf - 1 downto 0 do
        if t.wbuf_prior.(i) >= 0 then
          ignore (acquire ctx t ~expect:t.wbuf_prior.(i) t.wbuf_obj.(i))
      done;
      if timestamped ctx && not (has_writes t) then
        (* read-only fast path: serialize at [rv], no commit-time walk *)
        ctx.stats.Stats.ro_fast_commits <- ctx.stats.Stats.ro_fast_commits + 1
      else if not (validate ctx t) then begin
        t.abort_cause <- Trace.Cause_validation;
        raise Abort_txn
      end;
      (* serialization point: the transaction is now committed, but its
         updates are still pending - the Section 2.3 window opens here *)
      emit_serialized t;
      (* the clock bumps at the serialization point itself: the written
         records stay exclusively owned across the write-back window, so
         a validator that observes the new clock walks and sees either
         our ownership (entry fails — we might rewrite its granule) or
         untouched granules (entry passes) *)
      if timestamped ctx && t.nowned > 0 then t.cts <- Gvc.advance ctx.gvc;
      (* The ticket must be drawn at the serialization point itself,
         before any yield: otherwise write-back order can invert
         serialization order, and a later-serialized privatizer
         completes (and hands the object to non-transactional code)
         while an earlier transaction's flush is still pending - exactly
         the figure-1 clobber this mechanism exists to prevent. *)
      let ticket =
        if ctx.cfg.quiescence then Some (Quiesce.take_ticket ctx.q) else None
      in
      Sched.yield ();
      (match ticket with
      | Some n ->
          ctx.stats.Stats.quiesce_waits <- ctx.stats.Stats.quiesce_waits + 1;
          Quiesce.await_turn ctx.q n
      | None -> ());
      (* write back, one location at a time, yielding in between: this is
         the ordering-anomaly window of Section 2.3 *)
      for i = t.nwbuf - 1 downto 0 do
        let obj = t.wbuf_obj.(i) in
        let base = t.wbuf_base.(i) in
        let buf = t.wbuf_buf.(i) in
        for j = 0 to t.wbuf_len.(i) - 1 do
          Sched.yield ();
          publish_on_store ctx buf.(j);
          Heap.set obj (base + j) buf.(j);
          Sched.tick cost.Cost.plain_store
        done
      done;
      release_all ctx t;
      t.cts <- -1;
      Option.iter (Quiesce.retire_ticket ctx.q) ticket
  | Config.Mvcc ->
      let update = mvcc_has_public t in
      (* Commit does not happen in zero time after the last access: a
         preemption point here models the gap in which concurrent plain
         stores (weak atomicity) or other commits can land. Everything
         after it - first-committer-wins, validation, write-back - runs
         without another yield. *)
      Sched.yield ();
      if update then begin
        (* first-committer-wins: abort if any written granule gained a
           newer version since our snapshot *)
        for i = t.nwbuf - 1 downto 0 do
          if t.wbuf_prior.(i) >= 0 then begin
            let obj = t.wbuf_obj.(i) in
            if not (Mvcc.fcw_ok obj ~snap:t.snap) then begin
              t.last_oid <- obj.Heap.oid;
              t.last_aggr <- -1;
              t.last_aggr_tid <- -1;
              t.abort_cause <- Trace.Cause_conflict;
              raise Abort_txn
            end
          end
        done;
        (* serializable: reads must additionally still be current;
           snapshot isolation stops at first-committer-wins, which is
           exactly what admits write skew *)
        if not (validate ctx t) then begin
          t.abort_cause <- Trace.Cause_validation;
          raise Abort_txn
        end
      end;
      emit_serialized t;
      if not update then Mvcc.note_ro_commit ctx.mv;
      (* Install versions and write back without a single yield: on the
         cooperative scheduler the mvcc commit is atomic by construction.
         There is no write-back window (contrast the lazy branch above),
         so read-only transactions — and non-transactional readers under
         strong atomicity — only ever observe complete committed states.
         [version_ts <> ts] dedupes installs when several granule slots
         share an object: the fresh timestamp can't equal a pre-commit
         stamp, and the first install sets it. *)
      let ts = if update then Mvcc.advance ctx.mv else 0 in
      for i = t.nwbuf - 1 downto 0 do
        let obj = t.wbuf_obj.(i) in
        let base = t.wbuf_base.(i) in
        let buf = t.wbuf_buf.(i) in
        if t.wbuf_prior.(i) >= 0 && Heap.version_ts obj <> ts then
          Mvcc.install ~txid:t.txid ~tid:(Sched.self ()) ctx.mv obj ~ts;
        for j = 0 to t.wbuf_len.(i) - 1 do
          publish_on_store ctx buf.(j);
          Heap.set obj (base + j) buf.(j);
          Sched.tick cost.Cost.plain_store
        done
      done;
      mvcc_end_snapshot ctx t);
  Option.iter (Quiesce.deregister ctx.q) t.part;
  Footprint.write (Footprint.flag_oid t.txid);
  Hashtbl.remove ctx.registry t.txid;
  Stm_cm.Cm.on_commit ctx.cm ~txid:t.txid;
  Trace.emit
    (lazy
      (Trace.Txn_commit
         {
           txid = t.txid;
           tid = Sched.self ();
           reads = t.nreads;
           writes = t.naccesses;
           latency = latency t;
         }));
  ctx.stats.Stats.commits <- ctx.stats.Stats.commits + 1;
  recycle ctx t

let abort ?(restart = true) ctx t =
  let cost = ctx.cfg.cost in
  Sched.tick cost.Cost.txn_abort;
  mvcc_end_snapshot ctx t;
  (* roll back the undo log, newest entry first; each store is visible to
     unsynchronized readers - the paper's "manufactured writes" *)
  for i = t.nundo - 1 downto 0 do
    let obj = t.undo_obj.(i) in
    let base = t.undo_base.(i) in
    let buf = t.undo_buf.(i) in
    for j = 0 to t.undo_len.(i) - 1 do
      Heap.set obj (base + j) buf.(j);
      Sched.tick cost.Cost.plain_store;
      Sched.yield ()
    done
  done;
  t.nundo <- 0;
  Hashtbl.clear t.undo_saved;
  Hashtbl.clear t.wbuf;
  t.nwbuf <- 0;
  release_all ctx t;
  Option.iter (Quiesce.deregister ctx.q) t.part;
  Footprint.write (Footprint.flag_oid t.txid);
  Hashtbl.remove ctx.registry t.txid;
  Stm_cm.Cm.on_abort ctx.cm ~txid:t.txid ~restart ~wounded:t.flag.killed
    ~work:t.naccesses;
  let cause = if t.flag.killed then Trace.Cause_wounded else t.abort_cause in
  (* [by]/[oid] attribution is only meaningful for contention-driven
     aborts; a user retry or an escaping exception has no aggressor, and
     any leftover conflict fields from earlier in the attempt would
     mislead the causality graph. *)
  let by, by_tid, oid =
    match cause with
    | Trace.Cause_wounded -> (t.flag.killed_by, t.flag.killed_by_tid, t.last_oid)
    | Trace.Cause_conflict | Trace.Cause_validation | Trace.Cause_stale_lock
    | Trace.Cause_snapshot ->
        (t.last_aggr, t.last_aggr_tid, t.last_oid)
    | Trace.Cause_retry | Trace.Cause_exn -> (-1, -1, -1)
  in
  Trace.emit
    (lazy
      (Trace.Txn_abort
         {
           txid = t.txid;
           tid = Sched.self ();
           wounded = t.flag.killed;
           cause;
           latency = latency t;
           by;
           by_tid;
           oid;
         }));
  ctx.stats.Stats.aborts <- ctx.stats.Stats.aborts + 1;
  recycle ctx t
