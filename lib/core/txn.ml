open Stm_runtime

exception Abort_txn
exception Retry_request
exception Open_nest_conflict

type ctx = {
  cfg : Config.t;
  stats : Stats.t;
  q : Quiesce.t;
  cm : Stm_cm.Cm.t;
  mutable next_id : int;
  registry : (int, killed_flag) Hashtbl.t;
      (* live transaction ids -> wound flag, for contention management *)
}

and killed_flag = { mutable killed : bool }

type owned = { o_obj : Heap.obj; prior_version : int }

(* An undo-log entry: a saved copy of one granule (eager versioning). *)
type undo_entry = { u_obj : Heap.obj; u_base : int; u_saved : Heap.value array }

(* A write-buffer slot: a private copy of one granule (lazy versioning). *)
type wslot = {
  w_obj : Heap.obj;
  w_base : int;
  w_data : Heap.value array;
  w_prior : int;  (* record version when the copy was made; -1 = private obj *)
}

type t = {
  txid : int;
  parent : t option;
  mutable reads : (Heap.obj * int) list;
  owned : (int, owned) Hashtbl.t;  (* oid -> ownership *)
  mutable owned_order : owned list;  (* newest first *)
  mutable undo : undo_entry list;  (* newest first *)
  undo_saved : (int * int, unit) Hashtbl.t;  (* (oid, granule) saved? *)
  wbuf : (int * int, wslot) Hashtbl.t;  (* (oid, granule) -> slot *)
  mutable wbuf_order : wslot list;  (* newest first *)
  mutable naccesses : int;
  mutable nest_depth : int;
  part : Quiesce.participant option;
  flag : killed_flag;  (* set by a wounding (older) transaction *)
  begin_ts : int;  (* cost clock at begin, for latency attribution *)
  mutable abort_cause : Trace.abort_cause;
}

let make_ctx (cfg : Config.t) =
  {
    cfg;
    stats = Stats.create ();
    q = Quiesce.create ();
    cm =
      Stm_cm.Cm.create ~seed:cfg.Config.cm_seed
        ~max_retries:cfg.Config.max_txn_retries ~cost:cfg.Config.cost
        cfg.Config.cm;
    next_id = 0;
    registry = Hashtbl.create 32;
  }

let cfg ctx = ctx.cfg
let stats ctx = ctx.stats
let quiescer ctx = ctx.q
let cm ctx = ctx.cm

let begin_txn ?parent ctx =
  ctx.next_id <- ctx.next_id + 1;
  Sched.tick ctx.cfg.cost.Cost.txn_begin;
  let part = if ctx.cfg.quiescence then Some (Quiesce.register ctx.q) else None in
  let flag = { killed = false } in
  Hashtbl.replace ctx.registry ctx.next_id flag;
  Stm_cm.Cm.on_begin ctx.cm ~tid:(Sched.self ()) ~txid:ctx.next_id
    ~now:(Sched.time ());
  Trace.emit (lazy (Trace.Txn_begin { txid = ctx.next_id; tid = Sched.self () }));
  {
    txid = ctx.next_id;
    parent;
    reads = [];
    owned = Hashtbl.create 16;
    owned_order = [];
    undo = [];
    undo_saved = Hashtbl.create 16;
    wbuf = Hashtbl.create 16;
    wbuf_order = [];
    naccesses = 0;
    nest_depth = 0;
    part;
    flag;
    begin_ts = Sched.time ();
    abort_cause = Trace.Cause_exn;
  }

let id t = t.txid
let set_abort_cause t c = t.abort_cause <- c
let latency t = Sched.time () - t.begin_ts
let depth t = t.nest_depth
let set_depth t d = t.nest_depth <- d
let reads_snapshot t = t.reads
let has_writes t = t.owned_order <> [] || t.wbuf_order <> [] || t.undo <> []

let granule_base (cfg : Config.t) fld = fld - (fld mod cfg.granule)

let granule_len (cfg : Config.t) obj base =
  min cfg.granule (Heap.nfields obj - base)

(* Does [t] or any of its open-nesting ancestors own this record word? *)
let rec ancestor_owns t w =
  Txrec.is_exclusive w
  &&
  let o = Txrec.owner w in
  o = t.txid || (match t.parent with Some p -> ancestor_owns p w | None -> false)

let validate ctx t =
  ctx.stats.Stats.validations <- ctx.stats.Stats.validations + 1;
  Sched.tick (ctx.cfg.cost.Cost.txn_per_read * max 1 (List.length t.reads));
  let ok =
    List.for_all
    (fun ((obj : Heap.obj), ver) ->
      let w = Atomic.get obj.Heap.txrec in
      match Txrec.decode w with
      | Txrec.Shared v -> v = ver
      | Txrec.Exclusive o when o = t.txid -> (
          match Hashtbl.find_opt t.owned obj.Heap.oid with
          | Some ow -> ow.prior_version = ver
          | None -> false)
      | Txrec.Exclusive _ | Txrec.Exclusive_anon _ | Txrec.Private -> false)
      t.reads
  in
  Trace.emit ~level:Trace.Debug
    (lazy (Trace.Validation { txid = t.txid; tid = Sched.self (); ok }));
  ok

let check_wounded t =
  if t.flag.killed then begin
    t.abort_cause <- Trace.Cause_wounded;
    raise Abort_txn
  end

(* Apply a Wound decision: mark the victim's flag; the victim notices it
   at its next pause or validation point and aborts. Idempotent. *)
let wound ctx ~victim ~by =
  match Hashtbl.find_opt ctx.registry victim with
  | Some flag when not flag.killed ->
      flag.killed <- true;
      ctx.stats.Stats.wounds <- ctx.stats.Stats.wounds + 1;
      Trace.emit (lazy (Trace.Txn_wound { victim; by }))
  | Some _ | None -> ()

(* A transaction pausing on a conflict revalidates (when quiescence is on)
   so that committers waiting in [Quiesce.commit_epoch_wait] observe it as
   consistent - and so that doomed transactions abort promptly instead of
   blocking a privatizer. *)
let conflict_pause ctx t ~attempt ~writer ~delay obj =
  Conflict.handle ~delay ctx.cfg ctx.stats ~attempt ~writer obj;
  if ctx.cfg.quiescence then
    if validate ctx t then Option.iter (Quiesce.mark_consistent ctx.q) t.part
    else begin
      t.abort_cause <- Trace.Cause_validation;
      raise Abort_txn
    end

(* Resolve a conflict on [obj] through the contention manager: ask the
   configured policy what to do, trace its decision, and either abort
   self, wound the owner and pause, or just pause. Raises [Abort_txn]
   (never returns normally) on a self-abort. *)
let cm_resolve ctx t ~attempt ~writer obj =
  check_wounded t;
  let w = Atomic.get obj.Heap.txrec in
  let owner = if Txrec.is_exclusive w then Some (Txrec.owner w) else None in
  let decision =
    Stm_cm.Cm.on_conflict ctx.cm
      {
        Stm_cm.Cm.txid = t.txid;
        tid = Sched.self ();
        attempt;
        writer;
        work = t.naccesses;
        owner;
        now = Sched.time ();
      }
  in
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Cm_decision
         {
           tid = Sched.self ();
           txid = t.txid;
           policy = Stm_cm.Cm.name ctx.cm;
           decision = Stm_cm.Cm.string_of_decision decision;
           owner = Option.value ~default:(-1) owner;
           delay =
             (match decision with
             | Stm_cm.Cm.Wait d | Stm_cm.Cm.Wound { delay = d; _ } -> d
             | Stm_cm.Cm.Abort_self -> 0);
         }));
  match decision with
  | Stm_cm.Cm.Abort_self ->
      t.abort_cause <- Trace.Cause_conflict;
      raise Abort_txn
  | Stm_cm.Cm.Wound { victim; delay } ->
      wound ctx ~victim ~by:t.txid;
      conflict_pause ctx t ~attempt ~writer ~delay obj
  | Stm_cm.Cm.Wait delay -> conflict_pause ctx t ~attempt ~writer ~delay obj

let periodic_validate ctx t =
  check_wounded t;
  t.naccesses <- t.naccesses + 1;
  if t.naccesses mod ctx.cfg.validate_every = 0 then
    if validate ctx t then
      Option.iter (Quiesce.mark_consistent ctx.q) t.part
    else begin
      t.abort_cause <- Trace.Cause_validation;
      raise Abort_txn
    end

(* Save the granule containing [fld] in the undo log (eager). *)
let save_undo ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  let key = (obj.Heap.oid, base) in
  if not (Hashtbl.mem t.undo_saved key) then begin
    Hashtbl.replace t.undo_saved key ();
    let len = granule_len ctx.cfg obj base in
    let saved = Array.init len (fun i -> Heap.get obj (base + i)) in
    t.undo <- { u_obj = obj; u_base = base; u_saved = saved } :: t.undo;
    Sched.tick (ctx.cfg.cost.Cost.plain_load * len)
  end

(* Acquire exclusive ownership of [obj]'s record for this transaction
   (eager open-for-write, or lazy commit-time acquire with an expected
   version). Returns the prior version. *)
let acquire ctx t ?expect (obj : Heap.obj) =
  let cost = ctx.cfg.cost in
  let rec go attempt =
    let w = Atomic.get obj.Heap.txrec in
    Sched.tick cost.Cost.plain_load;
    match Txrec.decode w with
    | Txrec.Exclusive o when o = t.txid ->
        (Hashtbl.find t.owned obj.Heap.oid).prior_version
    | Txrec.Shared ver -> (
        (match expect with
        | Some e when e <> ver ->
            (* a lazily buffered record changed version before commit-time
               acquisition: the read that seeded the buffer is stale *)
            t.abort_cause <- Trace.Cause_validation;
            raise Abort_txn
        | Some _ | None -> ());
        ctx.stats.Stats.atomic_ops <- ctx.stats.Stats.atomic_ops + 1;
        Sched.tick cost.Cost.atomic_rmw;
        Sched.yield ();
        if Atomic.compare_and_set obj.Heap.txrec w (Txrec.exclusive t.txid)
        then begin
          let ow = { o_obj = obj; prior_version = ver } in
          Hashtbl.replace t.owned obj.Heap.oid ow;
          t.owned_order <- ow :: t.owned_order;
          Sched.yield ();
          ver
        end
        else go attempt)
    | Txrec.Exclusive _ when ancestor_owns t w -> raise Open_nest_conflict
    | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
        cm_resolve ctx t ~attempt ~writer:true obj;
        go (attempt + 1)
    | Txrec.Private ->
        (* The object was private when the caller checked and is being
           published concurrently - retry the whole access. *)
        go attempt
  in
  go 0

(* Publication duty inside transactions (Section 4, last paragraph): in an
   eager system a write of a reference into a public object immediately
   publishes the referenced private graph, even before commit. *)
let publish_on_store ctx (v : Heap.value) =
  if ctx.cfg.dea then Dea.publish_value ctx.stats ctx.cfg.cost v

(* ------------------------------------------------------------------ *)
(* Eager versioning                                                    *)
(* ------------------------------------------------------------------ *)

let eager_write ctx t (obj : Heap.obj) fld v =
  let cost = ctx.cfg.cost in
  if ctx.cfg.dea && Dea.is_private obj then begin
    (* private object: no synchronization, but the undo log still records
       old values so that an abort rolls them back *)
    save_undo ctx t obj fld;
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store
  end
  else begin
    ignore (acquire ctx t obj);
    save_undo ctx t obj fld;
    publish_on_store ctx v;
    Heap.set obj fld v;
    Sched.tick cost.Cost.plain_store;
    Sched.yield ()
  end

let eager_read ctx t (obj : Heap.obj) fld =
  let cost = ctx.cfg.cost in
  let rec go attempt =
    let w = Atomic.get obj.Heap.txrec in
    Sched.tick cost.Cost.plain_load;
    match Txrec.decode w with
    | Txrec.Private ->
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
    | Txrec.Exclusive o when o = t.txid ->
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
    | Txrec.Shared ver ->
        t.reads <- (obj, ver) :: t.reads;
        Sched.yield ();
        let v = Heap.get obj fld in
        Sched.tick cost.Cost.plain_load;
        v
    | Txrec.Exclusive _ when ancestor_owns t w -> raise Open_nest_conflict
    | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
        cm_resolve ctx t ~attempt ~writer:false obj;
        go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Lazy versioning                                                     *)
(* ------------------------------------------------------------------ *)

(* Create (or find) the write-buffer slot covering [fld]. The private copy
   spans the whole granule - the source of the Section 2.4 anomalies when
   granule > 1. *)
let lazy_slot ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  let key = (obj.Heap.oid, base) in
  match Hashtbl.find_opt t.wbuf key with
  | Some s -> s
  | None ->
      let cost = ctx.cfg.cost in
      let len = granule_len ctx.cfg obj base in
      let prior =
        if ctx.cfg.dea && Dea.is_private obj then -1
        else begin
          let rec observe attempt =
            let w = Atomic.get obj.Heap.txrec in
            Sched.tick cost.Cost.plain_load;
            match Txrec.decode w with
            | Txrec.Shared ver ->
                t.reads <- (obj, ver) :: t.reads;
                ver
            | Txrec.Private -> -1
            | Txrec.Exclusive _ when ancestor_owns t w ->
                raise Open_nest_conflict
            | Txrec.Exclusive _ | Txrec.Exclusive_anon _ ->
                cm_resolve ctx t ~attempt ~writer:true obj;
                observe (attempt + 1)
          in
          observe 0
        end
      in
      let data = Array.init len (fun i -> Heap.get obj (base + i)) in
      Sched.tick (cost.Cost.plain_load * len);
      let s = { w_obj = obj; w_base = base; w_data = data; w_prior = prior } in
      Hashtbl.replace t.wbuf key s;
      t.wbuf_order <- s :: t.wbuf_order;
      s

let lazy_write ctx t obj fld v =
  let s = lazy_slot ctx t obj fld in
  s.w_data.(fld - s.w_base) <- v;
  Sched.tick ctx.cfg.cost.Cost.plain_store

let lazy_read ctx t (obj : Heap.obj) fld =
  let base = granule_base ctx.cfg fld in
  match Hashtbl.find_opt t.wbuf (obj.Heap.oid, base) with
  | Some s ->
      Sched.tick ctx.cfg.cost.Cost.plain_load;
      s.w_data.(fld - base)
  | None -> eager_read ctx t obj fld
(* lazy open-for-read is the same protocol as eager: version + log *)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let emit_txn_access op =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Barrier
         {
           tid = Sched.self ();
           site = Site.current ();
           op;
           path = Trace.Path_fired;
         }))

let emit_access ~txid (obj : Heap.obj) fld value ~write =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Access
         { tid = Sched.self (); txid; oid = obj.Heap.oid; fld; value; write }))

let txn_read ctx t obj fld =
  ctx.stats.Stats.txn_reads <- ctx.stats.Stats.txn_reads + 1;
  emit_txn_access Trace.Op_txn_read;
  periodic_validate ctx t;
  let v =
    match ctx.cfg.versioning with
    | Config.Eager -> eager_read ctx t obj fld
    | Config.Lazy -> lazy_read ctx t obj fld
  in
  emit_access ~txid:t.txid obj fld v ~write:false;
  v

let txn_write ctx t obj fld v =
  ctx.stats.Stats.txn_writes <- ctx.stats.Stats.txn_writes + 1;
  emit_txn_access Trace.Op_txn_write;
  periodic_validate ctx t;
  (match ctx.cfg.versioning with
  | Config.Eager -> eager_write ctx t obj fld v
  | Config.Lazy -> lazy_write ctx t obj fld v);
  emit_access ~txid:t.txid obj fld v ~write:true

let release_all ctx t =
  let cost = ctx.cfg.cost in
  List.iter
    (fun ow ->
      Atomic.set ow.o_obj.Heap.txrec (Txrec.shared (ow.prior_version + 1));
      Sched.tick cost.Cost.txn_per_write)
    t.owned_order;
  t.owned_order <- [];
  Hashtbl.reset t.owned

let emit_serialized t =
  Trace.emit ~level:Trace.Debug
    (lazy (Trace.Txn_serialized { txid = t.txid; tid = Sched.self () }))

let commit ctx t =
  check_wounded t;
  let cost = ctx.cfg.cost in
  Sched.tick cost.Cost.txn_commit;
  (match ctx.cfg.versioning with
  | Config.Eager ->
      if not (validate ctx t) then begin
        t.abort_cause <- Trace.Cause_validation;
        raise Abort_txn
      end;
      emit_serialized t;
      if ctx.cfg.quiescence then begin
        match t.part with
        | Some p ->
            ctx.stats.Stats.quiesce_waits <- ctx.stats.Stats.quiesce_waits + 1;
            Trace.emit (lazy (Trace.Quiesce_wait { txid = t.txid }));
            Quiesce.mark_consistent ctx.q p;
            Quiesce.commit_epoch_wait ctx.q p
        | None -> ()
      end;
      release_all ctx t
  | Config.Lazy ->
      (* Acquire every written record at its buffered version. The slot
         list is kept newest-first and flushed in that order: lazy STMs
         copy buffered values back "one at a time in no particular order"
         (Section 2.3), and the head-first traversal of the log is our
         arbitrary order - deliberately not program order, so the
         overlapped-writes anomaly of Figure 4a is expressible. *)
      let slots = t.wbuf_order in
      List.iter
        (fun s ->
          if s.w_prior >= 0 then ignore (acquire ctx t ~expect:s.w_prior s.w_obj))
        slots;
      if not (validate ctx t) then begin
        t.abort_cause <- Trace.Cause_validation;
        raise Abort_txn
      end;
      (* serialization point: the transaction is now committed, but its
         updates are still pending - the Section 2.3 window opens here *)
      emit_serialized t;
      (* The ticket must be drawn at the serialization point itself,
         before any yield: otherwise write-back order can invert
         serialization order, and a later-serialized privatizer
         completes (and hands the object to non-transactional code)
         while an earlier transaction's flush is still pending - exactly
         the figure-1 clobber this mechanism exists to prevent. *)
      let ticket =
        if ctx.cfg.quiescence then Some (Quiesce.take_ticket ctx.q) else None
      in
      Sched.yield ();
      (match ticket with
      | Some n ->
          ctx.stats.Stats.quiesce_waits <- ctx.stats.Stats.quiesce_waits + 1;
          Quiesce.await_turn ctx.q n
      | None -> ());
      (* write back, one location at a time, yielding in between: this is
         the ordering-anomaly window of Section 2.3 *)
      List.iter
        (fun s ->
          Array.iteri
            (fun i v ->
              Sched.yield ();
              publish_on_store ctx v;
              Heap.set s.w_obj (s.w_base + i) v;
              Sched.tick cost.Cost.plain_store)
            s.w_data)
        slots;
      release_all ctx t;
      Option.iter (Quiesce.retire_ticket ctx.q) ticket);
  Option.iter (Quiesce.deregister ctx.q) t.part;
  Hashtbl.remove ctx.registry t.txid;
  Stm_cm.Cm.on_commit ctx.cm ~txid:t.txid;
  Trace.emit
    (lazy
      (Trace.Txn_commit
         {
           txid = t.txid;
           tid = Sched.self ();
           reads = List.length t.reads;
           writes = t.naccesses;
           latency = latency t;
         }));
  ctx.stats.Stats.commits <- ctx.stats.Stats.commits + 1

let abort ?(restart = true) ctx t =
  let cost = ctx.cfg.cost in
  Sched.tick cost.Cost.txn_abort;
  (* roll back the undo log, newest entry first; each store is visible to
     unsynchronized readers - the paper's "manufactured writes" *)
  List.iter
    (fun u ->
      Array.iteri
        (fun i v ->
          Heap.set u.u_obj (u.u_base + i) v;
          Sched.tick cost.Cost.plain_store;
          Sched.yield ())
        u.u_saved)
    t.undo;
  t.undo <- [];
  Hashtbl.reset t.undo_saved;
  Hashtbl.reset t.wbuf;
  t.wbuf_order <- [];
  release_all ctx t;
  Option.iter (Quiesce.deregister ctx.q) t.part;
  Hashtbl.remove ctx.registry t.txid;
  Stm_cm.Cm.on_abort ctx.cm ~txid:t.txid ~restart ~wounded:t.flag.killed
    ~work:t.naccesses;
  Trace.emit
    (lazy
      (Trace.Txn_abort
         {
           txid = t.txid;
           tid = Sched.self ();
           wounded = t.flag.killed;
           cause = (if t.flag.killed then Trace.Cause_wounded else t.abort_cause);
           latency = latency t;
         }));
  ctx.stats.Stats.aborts <- ctx.stats.Stats.aborts + 1
