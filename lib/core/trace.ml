type level = Debug | Info

let level_ge a b =
  match (a, b) with
  | Info, _ -> true
  | Debug, Debug -> true
  | Debug, Info -> false

type barrier_op = Op_read | Op_read_ordering | Op_write | Op_txn_read | Op_txn_write
type barrier_path = Path_fired | Path_private | Path_elided

type abort_cause =
  | Cause_conflict
  | Cause_validation
  | Cause_stale_lock
  | Cause_wounded
  | Cause_retry
  | Cause_snapshot
  | Cause_exn

type event =
  | Txn_begin of { txid : int; tid : int }
  | Txn_commit of { txid : int; tid : int; reads : int; writes : int; latency : int }
  | Txn_abort of {
      txid : int;
      tid : int;
      wounded : bool;
      cause : abort_cause;
      latency : int;
      by : int;
      by_tid : int;
      oid : int;
    }
  | Txn_wound of { victim : int; by : int }
  | Conflict of { tid : int; oid : int; cls : string; writer : bool; site : int }
  | Publish of { oid : int; cls : string }
  | Quiesce_wait of { txid : int }
  | Barrier of { tid : int; site : int; op : barrier_op; path : barrier_path }
  | Backoff of { tid : int; attempt : int; delay : int }
  | Validation of { txid : int; tid : int; ok : bool }
  | Cm_decision of {
      tid : int;
      txid : int;
      policy : string;
      decision : string;
      owner : int;
      delay : int;
    }
  | Access of {
      tid : int;
      txid : int;
      oid : int;
      fld : int;
      value : Stm_runtime.Heap.value;
      write : bool;
    }
  | Txn_serialized of { txid : int; tid : int }

(* Intrinsic verbosity of each event kind: per-access events are [Debug],
   transaction-lifecycle and structural events are [Info]. *)
let event_level = function
  | Barrier _ | Backoff _ | Validation _ | Cm_decision _ | Access _
  | Txn_serialized _ ->
      Debug
  | Txn_begin _ | Txn_commit _ | Txn_abort _ | Txn_wound _ | Conflict _
  | Publish _ | Quiesce_wait _ ->
      Info

type sink = { min_level : level; deliver : event -> unit }

let sink : sink option ref = ref None

let set_sink ?(level = Debug) s =
  sink := Option.map (fun deliver -> { min_level = level; deliver }) s

(* The level is passed alongside the lazy payload so that filtering never
   forces it: a sink installed at [Info] pays nothing for the per-access
   [Debug] events the hot paths emit. *)
let emit ?(level = Info) ev =
  match !sink with
  | Some { min_level; deliver } when level_ge level min_level ->
      deliver (Lazy.force ev)
  | Some _ | None -> ()

let enabled () = !sink <> None

let enabled_at level =
  match !sink with
  | Some { min_level; _ } -> level_ge level min_level
  | None -> false

let string_of_cause = function
  | Cause_conflict -> "conflict"
  | Cause_validation -> "validation"
  | Cause_stale_lock -> "stale-lock"
  | Cause_wounded -> "wounded"
  | Cause_retry -> "retry"
  | Cause_snapshot -> "snapshot-too-old"
  | Cause_exn -> "exception"

let string_of_op = function
  | Op_read -> "read"
  | Op_read_ordering -> "read-ordering"
  | Op_write -> "write"
  | Op_txn_read -> "txn-read"
  | Op_txn_write -> "txn-write"

let string_of_path = function
  | Path_fired -> "fired"
  | Path_private -> "private"
  | Path_elided -> "elided"

let pp_event ppf = function
  | Txn_begin { txid; tid } -> Fmt.pf ppf "txn %d begin (thread %d)" txid tid
  | Txn_commit { txid; tid; reads; writes; latency } ->
      Fmt.pf ppf "txn %d commit (thread %d, %d reads, %d writes, %d cycles)"
        txid tid reads writes latency
  | Txn_abort { txid; tid; wounded; cause; latency; by; oid; _ } ->
      Fmt.pf ppf "txn %d abort (thread %d, %s%s%a%a, %d cycles)" txid tid
        (string_of_cause cause)
        (if wounded then ", wounded" else "")
        (fun ppf b -> if b >= 0 then Fmt.pf ppf ", by txn %d" b)
        by
        (fun ppf o -> if o >= 0 then Fmt.pf ppf ", on @%d" o)
        oid latency
  | Txn_wound { victim; by } -> Fmt.pf ppf "txn %d wounded by txn %d" victim by
  | Conflict { tid; oid; cls; writer; site } ->
      Fmt.pf ppf "thread %d %s-conflict on %s@%d%a" tid
        (if writer then "write" else "read")
        cls oid
        (fun ppf s -> if s >= 0 then Fmt.pf ppf " (site %d)" s)
        site
  | Publish { oid; cls } -> Fmt.pf ppf "published %s@%d" cls oid
  | Quiesce_wait { txid } -> Fmt.pf ppf "txn %d quiescing" txid
  | Barrier { tid; site; op; path } ->
      Fmt.pf ppf "thread %d %s barrier %s%a" tid (string_of_op op)
        (string_of_path path)
        (fun ppf s -> if s >= 0 then Fmt.pf ppf " (site %d)" s)
        site
  | Backoff { tid; attempt; delay } ->
      Fmt.pf ppf "thread %d backoff (attempt %d, %d cycles)" tid attempt delay
  | Validation { txid; tid; ok } ->
      Fmt.pf ppf "txn %d validation %s (thread %d)" txid
        (if ok then "ok" else "failed")
        tid
  | Cm_decision { tid; txid; policy; decision; owner; delay } ->
      Fmt.pf ppf "txn %d cm %s: %s%a (thread %d, %d cycles)" txid policy
        decision
        (fun ppf o -> if o >= 0 then Fmt.pf ppf " vs txn %d" o)
        owner tid delay
  | Access { tid; txid; oid; fld; value; write } ->
      Fmt.pf ppf "thread %d%a %s @%d.%d = %a" tid
        (fun ppf t -> if t >= 0 then Fmt.pf ppf " txn %d" t)
        txid
        (if write then "store" else "load")
        oid fld Stm_runtime.Heap.pp_value value
  | Txn_serialized { txid; tid } ->
      Fmt.pf ppf "txn %d serialized (thread %d)" txid tid
