(** Public API of the strong-atomicity STM.

    Typical use:

    {[
      let cfg = Stm_core.Config.(with_dea eager_strong) in
      let result, stats =
        Stm_core.Stm.run ~cfg (fun () ->
            let acct = Stm_core.Stm.alloc ~cls:"Account" 2 in
            Stm_core.Stm.atomic (fun () ->
                Stm_core.Stm.write acct 0 (Vint 100)))
      in
      ...
    ]}

    {!read} and {!write} are context-sensitive, exactly like compiled
    memory accesses in the paper's system: inside a transaction they run
    the transactional open-for-read / open-for-write protocol; outside
    they run the configured non-transactional path — direct access under
    weak atomicity, isolation barriers under strong atomicity. *)

open Stm_runtime

exception Not_installed
exception Retry_outside_transaction

exception Starved of { attempts : int }
(** Raised by {!atomic} when {!Config.t.max_txn_restarts} is positive and
    that many consecutive attempts of one atomic block all aborted: the
    block is starving and the caller gets a clean error instead of an
    unbounded retry loop. [attempts] is the number of failed attempts. *)

(** {1 System lifecycle} *)

val install : Config.t -> unit
(** Install a fresh STM system (configuration + statistics + quiescence
    registry). Raises [Invalid_argument] for inconsistent configurations
    (e.g. DEA without strong atomicity). *)

val uninstall : unit -> unit
val installed : unit -> bool
val config : unit -> Config.t
val stats : unit -> Stats.t
(** Live statistics of the installed system. *)

val run :
  ?policy:Sched.policy ->
  ?max_steps:int ->
  cfg:Config.t ->
  (unit -> unit) ->
  Sched.result * Stats.t
(** [run ~cfg main] resets the heap, installs the system, executes [main]
    as simulated thread 0 and returns the scheduler result together with a
    snapshot of the statistics. *)

(** {1 Allocation} *)

val alloc : cls:string -> int -> Heap.obj
(** Allocate an object with [n] fields. Private when DEA is enabled,
    public otherwise. *)

val alloc_array : int -> Heap.value -> Heap.obj

val alloc_public : cls:string -> int -> Heap.obj
(** Always public — used for objects handed to other threads out of band
    (e.g. thread objects, which the paper publishes before spawn). *)

(** {1 Memory accesses} *)

val read : Heap.obj -> int -> Heap.value
val write : Heap.obj -> int -> Heap.value -> unit

val read_nobarrier : Heap.obj -> int -> Heap.value
(** Non-transactional access with the barrier statically removed (what the
    compiler emits for sites proven safe by the NAIT analysis). Inside a
    transaction it still performs the transactional protocol. *)

val write_nobarrier : Heap.obj -> int -> Heap.value -> unit

(** {1 Transactions} *)

val atomic : (unit -> 'a) -> 'a
(** Run the function as a transaction; retries on conflict, with the
    configured contention manager ({!Config.t.cm}) choosing the
    inter-attempt backoff. Nested calls flatten (closed nesting by
    subsumption). An exception escaping the function aborts the
    transaction and is re-raised. Raises {!Starved} when a positive
    {!Config.t.max_txn_restarts} budget is exhausted. *)

val atomic_open : (unit -> 'a) -> 'a
(** Open-nested transaction: runs and commits independently while the
    parent is paused. Accessing data owned by an ancestor raises
    {!Txn.Open_nest_conflict}. *)

val retry : unit -> 'a
(** User-initiated retry: abort the current transaction and re-execute it
    once some location in its read set has changed. *)

val in_txn : unit -> bool

val valid : unit -> bool
(** Re-validate the current transaction's read set; [true] outside a
    transaction. A doomed transaction — one that has read inconsistent
    state and will abort — can fault (out-of-bounds index, division by
    zero, null dereference) before its next validation point; runtimes
    catch the fault, call this, and abort-and-retry when it returns
    [false], as the interpreter does. *)

val abort_and_retry : unit -> 'a
(** Raise the internal abort signal: the enclosing [atomic] rolls back and
    re-executes. Must be called inside a transaction. *)

val publish : Heap.obj -> unit
(** Explicitly publish a private object (used for thread objects before
    spawn). No-op when DEA is off or the object is already public. *)

(** {1 Value helpers} *)

val vint : int -> Heap.value
val vbool : bool -> Heap.value
val vref : Heap.obj -> Heap.value
val to_int : Heap.value -> int
(** Raises [Invalid_argument] on non-integers. *)

val to_bool : Heap.value -> bool
val to_obj : Heap.value -> Heap.obj
(** Raises [Invalid_argument] on [Vnull] or non-references. *)

val is_null : Heap.value -> bool
