(** Execution counters collected by the STM.

    Every counter is cumulative over one simulated run; the benchmark
    harness and the tests use them to check behaviour (e.g. that DEA
    removes synchronized operations, or that a workload actually
    conflicts). *)

type t = {
  mutable commits : int;
  mutable aborts : int;
  mutable txn_reads : int;
  mutable txn_writes : int;
  mutable barrier_reads : int;  (** non-txn read barriers executed *)
  mutable barrier_writes : int;
  mutable barrier_private_hits : int;
      (** barriers that took the DEA private fast path *)
  mutable atomic_ops : int;  (** CAS / BTR operations issued *)
  mutable conflicts : int;  (** conflict-manager invocations *)
  mutable publishes : int;  (** objects marked public by publishObject *)
  mutable validations : int;
  mutable fast_validations : int;
      (** validations answered by the O(1) global-clock fast path
          ([Config.Timestamp] only) *)
  mutable ts_extensions : int;
      (** successful read-timestamp extensions ([Config.Timestamp] only) *)
  mutable ro_fast_commits : int;
      (** read-only commits that skipped the commit-time validation walk
          ([Config.Timestamp] only) *)
  mutable retries : int;  (** user-initiated retry operations *)
  mutable wounds : int;  (** contention-manager kills issued *)
  mutable backoff_cycles : int;
      (** virtual cycles spent in contention-manager waits *)
  mutable quiesce_waits : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc t] accumulates [t] into [acc]. *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order. The
    metrics exporter serializes from this — never scrape {!pp}'s
    human-readable output. *)

val pp_json : Format.formatter -> t -> unit
(** Render the counters as one JSON object. *)

val pp : Format.formatter -> t -> unit
