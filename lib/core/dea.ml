open Stm_runtime

let is_private (o : Heap.obj) = Txrec.is_private (Heap.txrec_get o)

(* publishObject, Figure 11. Objects are marked public *when first
   encountered* (before their slots are scanned) so cycles of private
   objects cannot loop. *)
let publish (stats : Stats.t) (cost : Cost.t) (root : Heap.obj) =
  if is_private root then begin
    Sched.tick cost.Cost.publish_base;
    let mark_stack = ref [] in
    let mark (o : Heap.obj) =
      Heap.txrec_set o (Txrec.shared 0);
      stats.Stats.publishes <- stats.Stats.publishes + 1;
      Trace.emit (lazy (Trace.Publish { oid = o.Heap.oid; cls = o.Heap.cls }));
      Sched.tick cost.Cost.publish_per_obj;
      mark_stack := o :: !mark_stack
    in
    mark root;
    let rec drain () =
      match !mark_stack with
      | [] -> ()
      | o :: rest ->
          mark_stack := rest;
          Array.iter
            (function
              | Heap.Vref slot when is_private slot -> mark slot
              | Heap.Vunit | Heap.Vnull | Heap.Vbool _ | Heap.Vint _
              | Heap.Vfloat _ | Heap.Vstr _ | Heap.Vref _ ->
                  ())
            o.Heap.fields;
          drain ()
    in
    drain ()
  end

let publish_value stats cost = function
  | Heap.Vref o -> publish stats cost o
  | Heap.Vunit | Heap.Vnull | Heap.Vbool _ | Heap.Vint _ | Heap.Vfloat _
  | Heap.Vstr _ ->
      ()
