open Stm_runtime

type participant = { pid : int; mutable consistent_at : int }

type t = {
  mutable epoch : int;
  mutable next_pid : int;
  mutable active : participant list;
  mutable next_ticket : int;
  mutable retired_upto : int;  (* all tickets < retired_upto are done *)
}

let create () =
  { epoch = 0; next_pid = 0; active = []; next_ticket = 0; retired_upto = 0 }

let register t =
  Footprint.write Footprint.oid_quiesce;
  let p = { pid = t.next_pid; consistent_at = t.epoch } in
  t.next_pid <- t.next_pid + 1;
  t.active <- p :: t.active;
  p

let deregister t p =
  Footprint.write Footprint.oid_quiesce;
  t.active <- List.filter (fun q -> q.pid <> p.pid) t.active

let mark_consistent t p =
  Footprint.write Footprint.oid_quiesce;
  p.consistent_at <- t.epoch

let commit_epoch_wait t me =
  Footprint.write Footprint.oid_quiesce;
  t.epoch <- t.epoch + 1;
  let target = t.epoch in
  let checks = ref 0 in
  let others_ready () =
    (* report inside the closure: the successful final evaluation runs
       in the segment after the last yield and must still be traced.
       The first failed evaluation and the successful one are plain
       reads; re-checks in between are futile spin-wait re-reads
       (reversing one against the write that ends the wait changes
       nothing but the number of re-checks). *)
    let ready =
      List.for_all
        (fun p -> p.pid = me.pid || p.consistent_at >= target)
        t.active
    in
    if ready || !checks = 0 then Footprint.read Footprint.oid_quiesce
    else Footprint.spin_read Footprint.oid_quiesce;
    incr checks;
    ready
  in
  while not (others_ready ()) do
    (* a fully validated committer is itself consistent at any epoch:
       keep refreshing so concurrent committers never wait on each other *)
    Footprint.write Footprint.oid_quiesce;
    me.consistent_at <- t.epoch;
    Sched.tick 5;
    Sched.yield ()
  done

let take_ticket t =
  Footprint.write Footprint.oid_quiesce;
  let n = t.next_ticket in
  t.next_ticket <- n + 1;
  n

let await_turn t ticket =
  let checks = ref 0 in
  let my_turn () =
    (* first failed check and the successful one are plain reads,
       re-checks in between futile spin-wait re-reads (same rationale
       as [commit_epoch_wait]) *)
    let turn = t.retired_upto >= ticket in
    if turn || !checks = 0 then Footprint.read Footprint.oid_quiesce
    else Footprint.spin_read Footprint.oid_quiesce;
    incr checks;
    turn
  in
  while not (my_turn ()) do
    Sched.tick 5;
    Sched.yield ()
  done

let retire_ticket t ticket =
  Footprint.write Footprint.oid_quiesce;
  assert (ticket = t.retired_upto);
  t.retired_upto <- ticket + 1

let epoch t =
  Footprint.read Footprint.oid_quiesce;
  t.epoch
