(** STM system configuration.

    A configuration picks one point in the design space the paper
    explores: version management (eager McRT-style vs lazy), atomicity
    (weak vs strong), the dynamic-escape-analysis barrier variants, the
    version-management granularity (Section 2.4), and the quiescence
    alternative (Section 3.4). *)

type versioning =
  | Eager  (** in-place updates + undo log (McRT-STM, the paper's base) *)
  | Lazy  (** private write buffer, write-back after commit *)
  | Mvcc
      (** multi-version: per-granule bounded version chains stamped with
          commit clocks; snapshot reads, buffered writes installed
          first-committer-wins at commit (see {!Stm_mvcc.Mvcc}) *)

type isolation =
  | Serializable
      (** mvcc commits additionally validate that every read granule is
          still current — except for read-only transactions, which
          serialize at their snapshot point and commit validation-free *)
  | Snapshot
      (** first-committer-wins only: write skew and long fork are
          admitted, dirty reads and lost updates are not. Meaningful only
          under {!Mvcc}; the single-version backends ignore it. *)

type validation =
  | Incremental
      (** every validation walks the whole read set (the paper's
          scheme); the seed-identical default *)
  | Timestamp
      (** TL2/TinySTM-style global-commit-clock validation for the
          eager/lazy backends: transactions carry a read timestamp [rv]
          and a [last_validated_at] watermark; a validation whose clock
          observation matches the watermark is O(1), a read of a granule
          stamped newer than [rv] attempts timestamp extension (one walk,
          then advance [rv]) instead of aborting, and read-only
          transactions commit without a validation walk, serializing at
          [rv]. A no-op under {!Mvcc}, whose snapshot protocol already
          draws from the same global clock. *)

type conflict_policy =
  | Backoff  (** exponential back-off and retry (the paper's default) *)
  | Raise_error
      (** signal the race by raising {!Conflict.Isolation_violation}
          — the paper's "barriers can aid in debugging" mode *)

type t = {
  versioning : versioning;
  isolation : isolation;  (** mvcc isolation level (default [Serializable]) *)
  validation : validation;
      (** read-set validation scheme (default [Incremental]) *)
  mvcc_max_versions : int;
      (** mvcc version-chain bound per granule, current version included;
          reads older than the retained chain abort snapshot-too-old *)
  strong : bool;  (** insert non-transactional isolation barriers *)
  strong_reads : bool;
      (** insert read barriers (Figure 16 measures reads only) *)
  strong_writes : bool;
      (** insert write barriers (Figure 17 measures writes only) *)
  dea : bool;  (** dynamic escape analysis: allocate objects private *)
  read_privacy_check : bool;
      (** the optional private-object fast path in the read barrier
          (Figure 10a, italicized instructions) *)
  granule : int;
      (** fields per undo-log / write-buffer granule; 1 = exact field
          granularity, >1 models the coarse-grained versioning of
          Section 2.4 (GLU / GIR anomalies) *)
  detect_nontxn_races : bool;
      (** footnote 2 of Section 3.1: the read barrier can also detect
          conflicts between two non-transactional threads by checking the
          lowest-order bit (a concurrent writer of either kind holds it
          clear); off by default since such races violate no
          transaction's isolation *)
  quiescence : bool;  (** commit-time quiescence (Section 3.4) *)
  conflict : conflict_policy;
  cm : Stm_cm.Policy.t;
      (** contention management between transactions: how an
          open-for-read/-write resolves a record owned by another
          transaction (see {!Stm_cm.Policy}) *)
  cm_seed : int;
      (** seed for the contention manager's randomized-backoff streams *)
  max_txn_retries : int;
      (** per-access back-offs before the contention manager gives up and
          aborts the transaction (the {!Stm_cm.Cm.create} retry budget) *)
  max_txn_restarts : int;
      (** consecutive failed attempts of one atomic block before
          {!Stm.atomic} raises {!Stm.Starved} instead of retrying;
          [0] = retry forever *)
  validate_every : int;
      (** re-validate the read set every N transactional accesses so that
          doomed transactions cannot run unboundedly on inconsistent
          data *)
  cost : Stm_runtime.Cost.t;
}

val base : t
(** Weakly-atomic eager-versioning McRT-style STM: the paper's starting
    point. Strong atomicity and all optimizations off; field-granular
    versioning; back-off conflict policy; suicide contention management. *)

val eager_weak : t
val lazy_weak : t

val eager_strong : t
(** Strong atomicity with no optimizations (the "Strong Atom NoOpts"
    series). *)

val lazy_strong : t

val mvcc_weak : t
(** Multi-version backend, weak atomicity, [Serializable] isolation. *)

val mvcc_strong : t
(** Multi-version backend with strong-atomicity barriers:
    non-transactional reads see the latest committed version,
    non-transactional writes install a fresh version. *)

val with_dea : t -> t
(** Enable dynamic escape analysis (+ read privacy check). *)

val with_granule : int -> t -> t
val with_quiescence : t -> t

val with_cm : Stm_cm.Policy.t -> t -> t
(** Select a contention-management policy. *)

val with_wound_wait : t -> t
(** [with_cm Stm_cm.Policy.Wound_wait]. *)

val with_isolation : isolation -> t -> t

val with_snapshot_isolation : t -> t
(** [with_isolation Snapshot]. *)

val with_validation : validation -> t -> t

val with_timestamp_validation : t -> t
(** [with_validation Timestamp]. *)

val versioning_to_string : versioning -> string
val versioning_of_string : string -> versioning option
val isolation_to_string : isolation -> string
val isolation_of_string : string -> isolation option
val validation_to_string : validation -> string
val validation_of_string : string -> validation option

val pp : Format.formatter -> t -> unit
val describe : t -> string
