type versioning = Eager | Lazy | Mvcc
type isolation = Serializable | Snapshot
type validation = Incremental | Timestamp
type conflict_policy = Backoff | Raise_error

type t = {
  versioning : versioning;
  isolation : isolation;
  validation : validation;
  mvcc_max_versions : int;
  strong : bool;
  strong_reads : bool;
  strong_writes : bool;
  dea : bool;
  read_privacy_check : bool;
  granule : int;
  detect_nontxn_races : bool;
  quiescence : bool;
  conflict : conflict_policy;
  cm : Stm_cm.Policy.t;
  cm_seed : int;
  max_txn_retries : int;
  max_txn_restarts : int;
  validate_every : int;
  cost : Stm_runtime.Cost.t;
}

let base =
  {
    versioning = Eager;
    isolation = Serializable;
    validation = Incremental;
    mvcc_max_versions = 8;
    strong = false;
    strong_reads = true;
    strong_writes = true;
    dea = false;
    read_privacy_check = true;
    granule = 1;
    detect_nontxn_races = false;
    quiescence = false;
    conflict = Backoff;
    cm = Stm_cm.Policy.Suicide;
    cm_seed = 0;
    max_txn_retries = 8;
    max_txn_restarts = 0;
    validate_every = 128;
    cost = Stm_runtime.Cost.default;
  }

let eager_weak = base
let lazy_weak = { base with versioning = Lazy }
let eager_strong = { base with strong = true }
let lazy_strong = { base with versioning = Lazy; strong = true }
let mvcc_weak = { base with versioning = Mvcc }
let mvcc_strong = { base with versioning = Mvcc; strong = true }
let with_dea t = { t with dea = true; read_privacy_check = true }
let with_granule granule t = { t with granule }
let with_quiescence t = { t with quiescence = true }
let with_cm cm t = { t with cm }
let with_wound_wait t = { t with cm = Stm_cm.Policy.Wound_wait }
let with_isolation isolation t = { t with isolation }
let with_snapshot_isolation t = { t with isolation = Snapshot }
let with_validation validation t = { t with validation }
let with_timestamp_validation t = { t with validation = Timestamp }

let versioning_to_string = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Mvcc -> "mvcc"

let versioning_of_string = function
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | "mvcc" -> Some Mvcc
  | _ -> None

let isolation_to_string = function
  | Serializable -> "serializable"
  | Snapshot -> "snapshot"

let isolation_of_string = function
  | "serializable" | "ser" -> Some Serializable
  | "snapshot" | "si" -> Some Snapshot
  | _ -> None

let validation_to_string = function
  | Incremental -> "incremental"
  | Timestamp -> "timestamp"

let validation_of_string = function
  | "incremental" | "inc" -> Some Incremental
  | "timestamp" | "ts" -> Some Timestamp
  | _ -> None

let describe t =
  let b = Buffer.create 32 in
  Buffer.add_string b (versioning_to_string t.versioning);
  Buffer.add_string b (if t.strong then "+strong" else "+weak");
  if t.versioning = Mvcc && t.isolation = Snapshot then
    Buffer.add_string b "+si";
  if t.validation = Timestamp then Buffer.add_string b "+ts";
  if t.strong && not t.strong_reads then Buffer.add_string b "(writes-only)";
  if t.strong && not t.strong_writes then Buffer.add_string b "(reads-only)";
  if t.dea then Buffer.add_string b "+dea";
  if t.quiescence then Buffer.add_string b "+quiesce";
  if t.granule > 1 then Buffer.add_string b (Printf.sprintf "+granule%d" t.granule);
  (match t.cm with
  | Stm_cm.Policy.Suicide -> ()
  | Stm_cm.Policy.Wound_wait -> Buffer.add_string b "+woundwait"
  | p -> Buffer.add_string b ("+cm-" ^ Stm_cm.Policy.to_string p));
  Buffer.contents b

let pp ppf t = Fmt.string ppf (describe t)
