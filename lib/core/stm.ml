open Stm_runtime

exception Not_installed
exception Retry_outside_transaction
exception Starved of { attempts : int }

type system = {
  ctx : Txn.ctx;
  current : (int, Txn.t) Hashtbl.t;  (* simulated tid -> active txn *)
}

let system : system option ref = ref None

let get () = match !system with Some s -> s | None -> raise Not_installed

let install (cfg : Config.t) =
  if cfg.dea && not cfg.strong then
    invalid_arg "Stm.install: DEA requires strong atomicity";
  if cfg.granule < 1 then invalid_arg "Stm.install: granule must be >= 1";
  system := Some { ctx = Txn.make_ctx cfg; current = Hashtbl.create 32 }

let uninstall () = system := None
let installed () = !system <> None
let config () = Txn.cfg (get ()).ctx
let stats () = Txn.stats (get ()).ctx

let current_txn sys =
  if Sched.running () then Hashtbl.find_opt sys.current (Sched.self ())
  else None

let in_txn () = current_txn (get ()) <> None

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let alloc ~cls n =
  let sys = get () in
  let cfg = Txn.cfg sys.ctx in
  Sched.tick cfg.cost.Cost.alloc;
  let txrec = if cfg.dea then Heap.private_txrec else Heap.shared_txrec0 in
  Heap.alloc ~txrec ~cls n

let alloc_array n init =
  let sys = get () in
  let cfg = Txn.cfg sys.ctx in
  Sched.tick cfg.cost.Cost.alloc;
  let txrec = if cfg.dea then Heap.private_txrec else Heap.shared_txrec0 in
  Heap.alloc_array ~txrec n init

let alloc_public ~cls n =
  let sys = get () in
  Sched.tick (Txn.cfg sys.ctx).cost.Cost.alloc;
  Heap.alloc ~txrec:Heap.shared_txrec0 ~cls n

let publish obj =
  let sys = get () in
  let cfg = Txn.cfg sys.ctx in
  if cfg.dea then Dea.publish (Txn.stats sys.ctx) cfg.cost obj

(* ------------------------------------------------------------------ *)
(* Context-sensitive accesses                                          *)
(* ------------------------------------------------------------------ *)

(* Emitted at the access's linearization point: after the heap update /
   load and before any preemption point, so that the global order of
   [Access] events is the memory-visibility order the serializability
   oracle reconstructs. *)
let emit_nontxn_access (obj : Heap.obj) fld value ~write =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Access
         {
           tid = Sched.self ();
           txid = -1;
           oid = obj.Heap.oid;
           fld;
           value;
           write;
         }))

let nontxn_read sys (obj : Heap.obj) fld =
  let cfg = Txn.cfg sys.ctx in
  let v =
    if cfg.strong && cfg.strong_reads then
      match cfg.versioning with
      | Config.Eager -> Barriers.read cfg (Txn.stats sys.ctx) obj fld
      | Config.Lazy -> Barriers.read_ordering cfg (Txn.stats sys.ctx) obj fld
      | Config.Mvcc -> Barriers.read_latest cfg (Txn.stats sys.ctx) obj fld
    else begin
      (* direct access: any memory operation is a preemption point on a
         real multiprocessor *)
      Sched.yield ();
      Sched.tick cfg.cost.Cost.plain_load;
      Heap.get obj fld
    end
  in
  emit_nontxn_access obj fld v ~write:false;
  v

let nontxn_write sys (obj : Heap.obj) fld v =
  let cfg = Txn.cfg sys.ctx in
  if cfg.strong && cfg.strong_writes then
    match cfg.versioning with
    | Config.Eager | Config.Lazy ->
        Barriers.write ~gvc:(Txn.gvc sys.ctx) cfg (Txn.stats sys.ctx) obj fld
          v
    | Config.Mvcc ->
        Barriers.write_versioned cfg (Txn.stats sys.ctx) (Txn.mvcc sys.ctx)
          obj fld v
  else begin
    (* Even under weak atomicity with DEA off, reference stores into the
       heap never publish: objects are born public in that mode. *)
    Sched.yield ();
    Sched.tick cfg.cost.Cost.plain_store;
    Heap.set obj fld v
  end;
  emit_nontxn_access obj fld v ~write:true

let read obj fld =
  let sys = get () in
  match current_txn sys with
  | Some t -> Txn.txn_read sys.ctx t obj fld
  | None -> nontxn_read sys obj fld

let write obj fld v =
  let sys = get () in
  match current_txn sys with
  | Some t -> Txn.txn_write sys.ctx t obj fld v
  | None -> nontxn_write sys obj fld v

let emit_elided op =
  Trace.emit ~level:Trace.Debug
    (lazy
      (Trace.Barrier
         {
           tid = Sched.self ();
           site = Site.current ();
           op;
           path = Trace.Path_elided;
         }))

let read_nobarrier obj fld =
  let sys = get () in
  match current_txn sys with
  | Some t -> Txn.txn_read sys.ctx t obj fld
  | None ->
      emit_elided Trace.Op_read;
      Sched.yield ();
      Sched.tick (Txn.cfg sys.ctx).cost.Cost.plain_load;
      let v = Heap.get obj fld in
      emit_nontxn_access obj fld v ~write:false;
      v

let write_nobarrier obj fld v =
  let sys = get () in
  match current_txn sys with
  | Some t -> Txn.txn_write sys.ctx t obj fld v
  | None ->
      let cfg = Txn.cfg sys.ctx in
      emit_elided Trace.Op_write;
      (* Publication is a correctness duty, not part of the isolation
         barrier: even at sites whose barrier the compiler removed, a
         reference store into a public object must publish the referenced
         private graph. *)
      if cfg.dea && not (Dea.is_private obj) then
        Dea.publish_value (Txn.stats sys.ctx) cfg.cost v;
      Sched.yield ();
      Sched.tick cfg.cost.Cost.plain_store;
      Heap.set obj fld v;
      emit_nontxn_access obj fld v ~write:true

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

(* Inter-attempt backoff between an abort and the block's next
   incarnation; the delay schedule is the contention manager's. *)
let backoff_wait sys attempt =
  let tid = Sched.self () in
  let delay = Stm_cm.Cm.restart_delay (Txn.cm sys.ctx) ~tid ~attempt in
  (Txn.stats sys.ctx).Stats.backoff_cycles <-
    (Txn.stats sys.ctx).Stats.backoff_cycles + delay;
  Trace.emit ~level:Trace.Debug
    (lazy (Trace.Backoff { tid; attempt; delay }));
  Sched.pause delay

(* Has this block burned through its whole restart budget? [n] is the
   index of the attempt that just aborted, so [n + 1] attempts failed. *)
let starved_out (cfg : Config.t) n =
  cfg.max_txn_restarts > 0 && n + 1 >= cfg.max_txn_restarts

(* Wait until some member of the read-set snapshot changes version
   (approximates the blocking retry of Harris et al.). *)
let wait_for_change cfg snap =
  match snap with
  | [] -> Sched.yield ()
  | _ ->
      let checks = ref 0 in
      let changed () =
        (* the first failed sweep and the one that observes a change
           report plain reads; sweeps in between are futile spin-wait
           re-reads (see {!Stm_runtime.Footprint.kind}) *)
        let hit =
          List.exists
            (fun ((obj : Heap.obj), ver) ->
              match cfg.Config.versioning with
              | Config.Mvcc ->
                  (* mvcc read sets record version stamps, not record
                     words: a change is a newer installed version *)
                  Heap.version_ts_peek obj <> ver
              | Config.Eager | Config.Lazy ->
                  Heap.txrec_peek obj <> Txrec.shared ver)
            snap
        in
        List.iter
          (fun ((obj : Heap.obj), _) ->
            if hit || !checks = 0 then Footprint.read obj.Heap.oid
            else Footprint.spin_read obj.Heap.oid)
          snap;
        incr checks;
        hit
      in
      while not (changed ()) do
        Sched.tick cfg.Config.cost.Cost.alu;
        Sched.yield ()
      done

let atomic f =
  let sys = get () in
  let cfg = Txn.cfg sys.ctx in
  match current_txn sys with
  | Some t ->
      (* closed nesting by flattening *)
      Txn.set_depth t (Txn.depth t + 1);
      Fun.protect ~finally:(fun () -> Txn.set_depth t (Txn.depth t - 1)) f
  | None ->
      let tid = Sched.self () in
      let rec attempt n =
        let txn = Txn.begin_txn sys.ctx in
        Hashtbl.replace sys.current tid txn;
        let cleanup () = Hashtbl.remove sys.current tid in
        let aborted () =
          let give_up = starved_out cfg n in
          Txn.abort ~restart:(not give_up) sys.ctx txn;
          cleanup ();
          if give_up then raise (Starved { attempts = n + 1 });
          backoff_wait sys n;
          attempt (n + 1)
        in
        match f () with
        | v -> (
            match Txn.commit sys.ctx txn with
            | () ->
                cleanup ();
                v
            | exception Txn.Abort_txn -> aborted ())
        | exception Txn.Abort_txn -> aborted ()
        | exception Txn.Retry_request ->
            let snap = Txn.reads_snapshot txn in
            (Txn.stats sys.ctx).Stats.retries <-
              (Txn.stats sys.ctx).Stats.retries + 1;
            Txn.set_abort_cause txn Trace.Cause_retry;
            Txn.abort sys.ctx txn;
            cleanup ();
            wait_for_change cfg snap;
            attempt n
        | exception ex ->
            Txn.abort ~restart:false sys.ctx txn;
            cleanup ();
            raise ex
      in
      attempt 0

let atomic_open f =
  let sys = get () in
  let cfg = Txn.cfg sys.ctx in
  let tid = Sched.self () in
  match current_txn sys with
  | None -> atomic f
  | Some parent ->
      let rec attempt n =
        let txn = Txn.begin_txn ~parent sys.ctx in
        Hashtbl.replace sys.current tid txn;
        let restore () = Hashtbl.replace sys.current tid parent in
        let aborted () =
          let give_up = starved_out cfg n in
          Txn.abort ~restart:(not give_up) sys.ctx txn;
          restore ();
          if give_up then raise (Starved { attempts = n + 1 });
          backoff_wait sys n;
          attempt (n + 1)
        in
        match f () with
        | v -> (
            match Txn.commit sys.ctx txn with
            | () ->
                restore ();
                v
            | exception Txn.Abort_txn -> aborted ())
        | exception Txn.Abort_txn -> aborted ()
        | exception ex ->
            Txn.abort ~restart:false sys.ctx txn;
            restore ();
            raise ex
      in
      attempt 0

let retry () =
  if in_txn () then raise Txn.Retry_request
  else raise Retry_outside_transaction

let valid () =
  let sys = get () in
  match current_txn sys with
  | Some t -> Txn.validate sys.ctx t
  | None -> true

let abort_and_retry () =
  if in_txn () then raise Txn.Abort_txn
  else invalid_arg "Stm.abort_and_retry: no enclosing transaction"

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let run ?policy ?max_steps ~cfg main =
  Heap.reset ();
  Site.reset ();
  install cfg;
  Fun.protect ~finally:uninstall (fun () ->
      let result = Sched.run ?max_steps ?policy main in
      let snapshot = Stats.create () in
      Stats.add snapshot (stats ());
      (result, snapshot))

(* ------------------------------------------------------------------ *)
(* Value helpers                                                       *)
(* ------------------------------------------------------------------ *)

let vint i = Heap.Vint i
let vbool b = Heap.Vbool b
let vref o = Heap.Vref o

let to_int = function
  | Heap.Vint i -> i
  | v -> invalid_arg ("Stm.to_int: " ^ Heap.show_value v)

let to_bool = function
  | Heap.Vbool b -> b
  | v -> invalid_arg ("Stm.to_bool: " ^ Heap.show_value v)

let to_obj = function
  | Heap.Vref o -> o
  | v -> invalid_arg ("Stm.to_obj: " ^ Heap.show_value v)

let is_null = function Heap.Vnull -> true | _ -> false
