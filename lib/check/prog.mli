(** Fuzz-program representation.

    A program runs over a tiny abstract heap: [ncells] integer cells,
    [nslots] root slots each initially pointing at a one-field "box"
    object. Each thread is a straight-line list of steps; the only
    control flow is the implicit guard on box operations (skip when the
    root slot no longer holds a reference).

    Every write stores a value tagged with a token unique to its static
    occurrence, making the reads-from relation of any execution directly
    observable (see {!token_of_value}). *)

type expr =
  | Tok  (** write the occurrence token alone *)
  | Tok_acc  (** token plus a 12-bit hash of the thread's accumulator *)

type op =
  | Read of int  (** fold cells[i] into the thread accumulator *)
  | Write of int * expr  (** cells[i] <- tagged value *)
  | Box_read of int  (** deref roots[s]; fold the box field into acc *)
  | Box_write of int  (** deref roots[s]; store a tagged value in the box *)

type step =
  | Atomic of op list  (** one transaction *)
  | Plain of op  (** one non-transactional access *)
  | Publish of int
      (** allocate a box, initialize it non-transactionally, install it
          in roots[s] inside a transaction (paper section 5.1) *)
  | Privatize of int
      (** transactionally detach the box behind roots[s]; then access it
          non-transactionally (paper figure 1 / section 5.2) *)

type t = { ncells : int; nslots : int; threads : step list list }

val nthreads : t -> int

(** {1 Token scheme} *)

val max_steps : int
(** Upper bound on steps per thread the token encoding supports. *)

val max_ops : int
(** Upper bound on ops per atomic block the token encoding supports. *)

val token_scale : int
(** Written values are [token * token_scale + payload], [payload <
    token_scale]. *)

val op_token : thread:int -> step:int -> op:int -> int
val pub_token : thread:int -> step:int -> int
(** Token of the non-transactional initializing store of a publish. *)

val priv_token : thread:int -> step:int -> int
(** Token of the post-privatization non-transactional box store. *)

val tomb_token : thread:int -> step:int -> int
(** Token of the tombstone a privatize step leaves in the root slot. *)

val init_box_token : slot:int -> int
(** Token of a slot box's initial field value. *)

val combine : int -> int -> int
(** Accumulator fold: [combine acc v] mixes a loaded value into the
    12-bit accumulator. *)

val value_of : expr -> token:int -> acc:int -> int
val token_of_value : int -> int

(** {1 Printing and (de)serialization} *)

val pp_op : Format.formatter -> op -> unit
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Stm_obs.Json.t
val of_json : Stm_obs.Json.t -> t option
