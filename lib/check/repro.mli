(** Replayable counterexamples.

    A repro document pins the configuration combo, the schedule driver,
    the step budget and the exact program, plus the verdict observed
    when it was recorded. Because the whole simulator is deterministic,
    {!replay} must reproduce the recorded verdict bit for bit. *)

type driver =
  | Random_sched of int
      (** seed used for both the random scheduling policy and the
          contention manager's backoff streams *)
  | Explore of { preemption_bound : int; max_runs : int }
      (** the litmus explorer's preemption-bounded DFS; the verdict is
          the first anomalous outcome, or [Serializable] if none *)
  | Dpor of { preemption_bound : int; max_runs : int }
      (** the race-reduced {!Stm_litmus.Explorer.explore_dpor} walk at
          the same bound: the same verdict contract as [Explore] from
          far fewer runs *)

type t = {
  combo : Combo.t;
  profile : string;  (** informational: generator profile name *)
  prog_seed : int option;  (** informational: generator seed *)
  driver : driver;
  max_steps : int;
  prog : Prog.t;
  verdict : Stm_obs.Json.t;  (** verdict as recorded, in JSON form *)
}

val to_json : t -> Stm_obs.Json.t
val of_json : Stm_obs.Json.t -> t option
val to_string : t -> string
val of_string : string -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result

val run_driver :
  combo:Combo.t -> driver:driver -> max_steps:int -> Prog.t -> History.verdict
(** Execute a program under a driver (the primitive {!replay} uses). *)

val replay : t -> History.verdict
(** Re-run the recorded execution deterministically. *)

val matches : t -> History.verdict -> bool
(** Does a replayed verdict equal the recorded one (JSON comparison)? *)
