(** Execute fuzz programs on the real STM and collect their histories.

    A Debug-level trace sink turns the runtime's {!Stm_core.Trace.Access}
    and {!Stm_core.Trace.Txn_serialized} events into a {!History.history}:
    one node per committed transaction (stamped at its serialization
    point) and per non-transactional unit access (stamped at its
    linearization point). Aborted attempts are dropped; values observed
    from them have no committed writer and surface as dirty reads.

    Both entry points install the global trace sink for the duration of
    the run and restore it to [None] afterwards. *)

val default_fuel : int
(** Default scheduler step budget per execution. *)

val run :
  ?policy:Stm_runtime.Sched.policy ->
  ?max_steps:int ->
  ?tee:(Stm_core.Trace.event -> unit) ->
  cfg:Stm_core.Config.t ->
  Prog.t ->
  History.verdict * History.history option
(** Run the program once under the given scheduling policy and check the
    resulting history. The verdict is [Inconclusive] when the run hit the
    step budget or deadlocked (no history to judge), [Anomalous
    (Exec_failure _)] when a thread body raised. [tee] additionally
    receives every trace event (for chaining an observability recorder). *)

val explore :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  cfg:Stm_core.Config.t ->
  Prog.t ->
  History.verdict option * Stm_litmus.Explorer.exploration
(** Drive the program through the litmus explorer's preemption-bounded
    DFS instead of a single random schedule. Each explored schedule's
    outcome is the verdict's JSON rendering; the search stops at the
    first anomalous outcome, which is also returned directly. *)

val explore_dpor :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  cfg:Stm_core.Config.t ->
  Prog.t ->
  History.verdict option * Stm_litmus.Explorer.dpor
(** As {!explore}, but through the race-reduced
    {!Stm_litmus.Explorer.explore_dpor} walk: typically an order of
    magnitude fewer runs at the same preemption bound, and the result
    carries [complete] (the reduced schedule space was exhausted) and
    [races] alongside the exploration counters. Omitting
    [preemption_bound] makes the walk unbounded — exhaustive when it
    terminates, but divergent for programs whose contention-manager
    retry loops keep generating fresh races. *)
