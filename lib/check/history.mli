(** Serializability oracle over committed-access histories.

    A history is built from the runtime's trace stream (see
    {!Exec}): one node per committed transaction and per
    non-transactional unit access, stamped at its linearization point.
    Occurrence-unique write tokens (see {!Prog}) make the reads-from
    relation exact, so conflict serializability is decidable from the
    history alone.

    The oracle certifies at two isolation levels: {!check} demands
    conflict serializability; {!check_si} certifies the weaker
    snapshot-isolation contract, rejecting dirty reads, fractured reads,
    lost updates and final-state mismatches while admitting write skew
    and long fork. {!certify} classifies a history into
    serializable / SI-only / anomalous. *)

type box_id = Slot_box of int | New_box of { thread : int; step : int }

type loc = Cell of int | Root of int | Box_field of box_id

type value = Vi of int | Vr of box_id

type part = Body | Pub_init | Priv_write | Priv_read

type tag = { thread : int; step : int; part : part }
(** Which static program step (and which phase of a publish/privatize
    step) a node corresponds to. *)

type node = {
  id : int;  (** dense index, ascending with [stamp] *)
  tid : int;  (** logical thread index *)
  txn : bool;
  stamp : int;  (** serialization stamp (trace-arrival order) *)
  tag : tag option;
  reads : (loc * value) list;  (** program order, duplicates kept *)
  writes : (loc * value) list;  (** last write per location *)
}

type history = {
  init : (loc * value) list;
  nodes : node list;  (** ascending stamp *)
  final : (loc * value) list;
}

type edge_kind = Wr | Ww | Rw | Po

type edge = { src : int; dst : int; kind : edge_kind; eloc : loc option }

type anomaly =
  | Cycle of edge list  (** conflict-graph cycle (the path of edges) *)
  | Dirty_read of { node : int; rloc : loc; seen : value }
      (** a committed node observed a value no committed write produced *)
  | Final_mismatch of { floc : loc; expected : value option; actual : value option }
      (** final heap state disagrees with the last committed version *)
  | Divergence of { dloc : loc; replayed : value option; actual : value option }
      (** sequential replay of the committed schedule disagrees with the
          observed final state *)
  | Control_divergence of { thread : int; step : int; detail : string }
  | Private_clobbered of { thread : int; step : int; expected : int; seen : value }
      (** a non-transactional store to a privatized object was overwritten
          (the paper's figure-1 privatization race) *)
  | Exec_failure of string
  | Lost_update of { node : int; uloc : loc; read_idx : int; write_idx : int }
      (** the node read version [read_idx] of the location but installed
          version [write_idx] <> [read_idx + 1]: a concurrent committed
          write was silently overwritten (forbidden even under snapshot
          isolation - first-committer-wins) *)
  | Fractured_read of { node : int; floc : loc; first : value; second : value }
      (** one transaction observed two different committed versions of
          the same location: no single snapshot contains both *)

type verdict = Serializable | Inconclusive of string | Anomalous of anomaly

val check_graph : history -> anomaly option
(** Conflict-graph acyclicity plus final-state agreement. [None] means
    the history is conflict serializable. *)

val differential : Prog.t -> history -> anomaly option
(** Replay the committed nodes in stamp order on a sequential reference
    interpreter of [prog] and diff the final heaps. *)

val check : Prog.t -> history -> verdict
(** Graph check first, then differential replay. *)

val check_si_graph : history -> anomaly option
(** Snapshot-isolation consistency: no dirty reads, no fractured reads,
    no lost updates (every read-modify-write installs the version
    directly after the one it read), final state = last committed
    version per location. Deliberately no cycle check and no sequential
    replay: write skew and long fork pass. *)

val check_si : history -> verdict
(** [check_si_graph] as a verdict. *)

val check_at : Stm_core.Config.isolation -> Prog.t -> history -> verdict
(** Certify at the given isolation level: [Serializable] is {!check},
    [Snapshot] is {!check_si}. *)

(** Two-level classification of one history. *)
type certification =
  | Cert_serializable
  | Cert_snapshot_only of anomaly
      (** SI-consistent but not serializable; carries the
          serializability violation (e.g. the write-skew rw-cycle) *)
  | Cert_anomalous of anomaly  (** violates snapshot isolation too *)

val certify : Prog.t -> history -> certification
val certification_to_string : certification -> string

val anomaly_kind : anomaly -> string
(** Stable kind string of an anomaly (matches the ["anomaly"] field of
    {!anomaly_to_json}). The implementation is an exhaustive match, so
    extending [anomaly] without classifying the new constructor is a
    compile error. *)

val all_anomaly_kinds : string list
(** Every string {!anomaly_kind} can produce. *)

val si_forbids : anomaly -> bool
(** Whether the snapshot-isolation contract forbids this anomaly kind
    (dirty reads, lost updates, fractured reads, final mismatches,
    clobbered privatized objects, execution failures) or admits it
    (cycles and replay divergences - write skew and long fork shapes). *)

val is_anomalous : verdict -> bool
val verdict_equal : verdict -> verdict -> bool

(** {1 Printing and serialization} *)

val loc_to_string : loc -> string
val value_to_string : value -> string
val pp_loc : Format.formatter -> loc -> unit
val pp_value : Format.formatter -> value -> unit
val pp_node : Format.formatter -> node -> unit
val pp_history : Format.formatter -> history -> unit
val pp_edge : Format.formatter -> edge -> unit
val pp_anomaly : Format.formatter -> anomaly -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val anomaly_to_json : anomaly -> Stm_obs.Json.t
val verdict_to_json : verdict -> Stm_obs.Json.t
