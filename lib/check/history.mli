(** Serializability oracle over committed-access histories.

    A history is built from the runtime's trace stream (see
    {!Exec}): one node per committed transaction and per
    non-transactional unit access, stamped at its linearization point.
    Occurrence-unique write tokens (see {!Prog}) make the reads-from
    relation exact, so conflict serializability is decidable from the
    history alone. *)

type box_id = Slot_box of int | New_box of { thread : int; step : int }

type loc = Cell of int | Root of int | Box_field of box_id

type value = Vi of int | Vr of box_id

type part = Body | Pub_init | Priv_write | Priv_read

type tag = { thread : int; step : int; part : part }
(** Which static program step (and which phase of a publish/privatize
    step) a node corresponds to. *)

type node = {
  id : int;  (** dense index, ascending with [stamp] *)
  tid : int;  (** logical thread index *)
  txn : bool;
  stamp : int;  (** serialization stamp (trace-arrival order) *)
  tag : tag option;
  reads : (loc * value) list;  (** program order, duplicates kept *)
  writes : (loc * value) list;  (** last write per location *)
}

type history = {
  init : (loc * value) list;
  nodes : node list;  (** ascending stamp *)
  final : (loc * value) list;
}

type edge_kind = Wr | Ww | Rw | Po

type edge = { src : int; dst : int; kind : edge_kind; eloc : loc option }

type anomaly =
  | Cycle of edge list  (** conflict-graph cycle (the path of edges) *)
  | Dirty_read of { node : int; rloc : loc; seen : value }
      (** a committed node observed a value no committed write produced *)
  | Final_mismatch of { floc : loc; expected : value option; actual : value option }
      (** final heap state disagrees with the last committed version *)
  | Divergence of { dloc : loc; replayed : value option; actual : value option }
      (** sequential replay of the committed schedule disagrees with the
          observed final state *)
  | Control_divergence of { thread : int; step : int; detail : string }
  | Private_clobbered of { thread : int; step : int; expected : int; seen : value }
      (** a non-transactional store to a privatized object was overwritten
          (the paper's figure-1 privatization race) *)
  | Exec_failure of string

type verdict = Serializable | Inconclusive of string | Anomalous of anomaly

val check_graph : history -> anomaly option
(** Conflict-graph acyclicity plus final-state agreement. [None] means
    the history is conflict serializable. *)

val differential : Prog.t -> history -> anomaly option
(** Replay the committed nodes in stamp order on a sequential reference
    interpreter of [prog] and diff the final heaps. *)

val check : Prog.t -> history -> verdict
(** Graph check first, then differential replay. *)

val is_anomalous : verdict -> bool
val verdict_equal : verdict -> verdict -> bool

(** {1 Printing and serialization} *)

val loc_to_string : loc -> string
val value_to_string : value -> string
val pp_loc : Format.formatter -> loc -> unit
val pp_value : Format.formatter -> value -> unit
val pp_node : Format.formatter -> node -> unit
val pp_history : Format.formatter -> history -> unit
val pp_edge : Format.formatter -> edge -> unit
val pp_anomaly : Format.formatter -> anomaly -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val anomaly_to_json : anomaly -> Stm_obs.Json.t
val verdict_to_json : verdict -> Stm_obs.Json.t
