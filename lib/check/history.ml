(* Serializability oracle.

   An execution history is a list of committed nodes - transactions and
   single non-transactional accesses - each carrying its read set, write
   set and a serialization stamp taken at the node's linearization point
   (see Trace.Txn_serialized). Because every write in a fuzz program
   stores an occurrence-unique token, the reads-from relation is exact:
   the token of an observed value names the (committed) write that
   produced it, or convicts the execution of reading doomed data.

   Two independent checks:

   - [check_graph]: build the conflict graph (wr, ww, rw edges from the
     per-location version order, plus program-order edges) and demand
     acyclicity; also demand that every location's final value is its
     last committed version.

   - [differential]: replay the committed nodes, in stamp order, against
     a sequential reference interpreter of the original program, and
     diff the resulting heap against the observed final state.

   [check] demands serializability (both checks). [check_si] certifies
   the weaker snapshot-isolation contract instead: reads must name
   committed versions (no dirty reads), each transaction's reads of a
   location must agree (no fractured reads - every transaction saw
   *some* atomic snapshot per location), a read-modify-write must write
   the version directly after the one it read (no lost updates - the
   first-committer-wins certificate), and the final state must be the
   last committed version per location. It deliberately runs no
   dependency-graph or sequential-replay check: write skew and long
   fork produce rw-cycles and have no sequential replay, yet are
   admitted under snapshot isolation. *)

type box_id = Slot_box of int | New_box of { thread : int; step : int }

type loc = Cell of int | Root of int | Box_field of box_id

type value = Vi of int | Vr of box_id

type part = Body | Pub_init | Priv_write | Priv_read

type tag = { thread : int; step : int; part : part }

type node = {
  id : int;  (* dense, ascending with stamp *)
  tid : int;  (* logical thread index *)
  txn : bool;
  stamp : int;
  tag : tag option;
  reads : (loc * value) list;  (* in program order, duplicates kept *)
  writes : (loc * value) list;  (* last write per location *)
}

type history = {
  init : (loc * value) list;
  nodes : node list;  (* ascending stamp *)
  final : (loc * value) list;
}

type edge_kind = Wr | Ww | Rw | Po

type edge = { src : int; dst : int; kind : edge_kind; eloc : loc option }

type anomaly =
  | Cycle of edge list
  | Dirty_read of { node : int; rloc : loc; seen : value }
  | Final_mismatch of { floc : loc; expected : value option; actual : value option }
  | Divergence of { dloc : loc; replayed : value option; actual : value option }
  | Control_divergence of { thread : int; step : int; detail : string }
  | Private_clobbered of { thread : int; step : int; expected : int; seen : value }
  | Exec_failure of string
  | Lost_update of { node : int; uloc : loc; read_idx : int; write_idx : int }
      (* the node read version [read_idx] of the location but installed
         version [write_idx] <> read_idx + 1: a concurrent committed
         write was overwritten (first-committer-wins forbids this) *)
  | Fractured_read of { node : int; floc : loc; first : value; second : value }
      (* one transaction observed two different committed versions of
         the same location: no single snapshot contains both *)

type verdict = Serializable | Inconclusive of string | Anomalous of anomaly

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let box_to_string = function
  | Slot_box s -> Printf.sprintf "b%d" s
  | New_box { thread; step } -> Printf.sprintf "n%d.%d" thread step

let loc_to_string = function
  | Cell i -> Printf.sprintf "c%d" i
  | Root s -> Printf.sprintf "s%d" s
  | Box_field b -> box_to_string b ^ ".f"

let value_to_string = function
  | Vr b -> "&" ^ box_to_string b
  | Vi n ->
      if n >= Prog.token_scale then
        Printf.sprintf "%d:%d" (n / Prog.token_scale) (n mod Prog.token_scale)
      else string_of_int n

let pp_loc ppf l = Fmt.string ppf (loc_to_string l)
let pp_value ppf v = Fmt.string ppf (value_to_string v)

let part_to_string = function
  | Body -> "body"
  | Pub_init -> "pub-init"
  | Priv_write -> "priv-write"
  | Priv_read -> "priv-read"

let pp_tag ppf t = Fmt.pf ppf "T%d.%d/%s" t.thread t.step (part_to_string t.part)

let pp_node ppf n =
  Fmt.pf ppf "#%d %s tid=%d stamp=%d%a R[%a] W[%a]" n.id
    (if n.txn then "txn" else "acc")
    n.tid n.stamp
    (Fmt.option (fun ppf t -> Fmt.pf ppf " %a" pp_tag t))
    n.tag
    Fmt.(list ~sep:comma (pair ~sep:(any "=") pp_loc pp_value))
    n.reads
    Fmt.(list ~sep:comma (pair ~sep:(any "=") pp_loc pp_value))
    n.writes

let pp_history ppf h =
  Fmt.pf ppf "init: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") pp_loc pp_value))
    h.init;
  List.iter (fun n -> Fmt.pf ppf "  %a@." pp_node n) h.nodes;
  Fmt.pf ppf "final: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") pp_loc pp_value))
    h.final

let kind_to_string = function Wr -> "wr" | Ww -> "ww" | Rw -> "rw" | Po -> "po"

let pp_edge ppf e =
  Fmt.pf ppf "#%d -%s%a-> #%d" e.src (kind_to_string e.kind)
    (Fmt.option (fun ppf l -> Fmt.pf ppf "(%a)" pp_loc l))
    e.eloc e.dst

let pp_anomaly ppf = function
  | Cycle edges ->
      Fmt.pf ppf "dependency cycle: %a" Fmt.(list ~sep:(any " ") pp_edge) edges
  | Dirty_read { node; rloc; seen } ->
      Fmt.pf ppf "dirty read: node #%d read %a = %a (no committed writer)" node
        pp_loc rloc pp_value seen
  | Final_mismatch { floc; expected; actual } ->
      Fmt.pf ppf "final state mismatch at %a: last committed version %a, heap has %a"
        pp_loc floc
        Fmt.(option ~none:(any "<none>") pp_value)
        expected
        Fmt.(option ~none:(any "<none>") pp_value)
        actual
  | Divergence { dloc; replayed; actual } ->
      Fmt.pf ppf "differential divergence at %a: sequential replay %a, heap has %a"
        pp_loc dloc
        Fmt.(option ~none:(any "<none>") pp_value)
        replayed
        Fmt.(option ~none:(any "<none>") pp_value)
        actual
  | Control_divergence { thread; step; detail } ->
      Fmt.pf ppf "control divergence at T%d.%d: %s" thread step detail
  | Private_clobbered { thread; step; expected; seen } ->
      Fmt.pf ppf
        "privatized object clobbered at T%d.%d: wrote %s non-transactionally, read back %a"
        thread step
        (value_to_string (Vi expected))
        pp_value seen
  | Exec_failure msg -> Fmt.pf ppf "execution failure: %s" msg
  | Lost_update { node; uloc; read_idx; write_idx } ->
      Fmt.pf ppf
        "lost update: node #%d read version %d of %a but installed version %d \
         (a concurrent commit was overwritten)"
        node read_idx pp_loc uloc write_idx
  | Fractured_read { node; floc; first; second } ->
      Fmt.pf ppf "fractured read: node #%d read %a = %a and later %a" node
        pp_loc floc pp_value first pp_value second

let pp_verdict ppf = function
  | Serializable -> Fmt.string ppf "serializable"
  | Inconclusive msg -> Fmt.pf ppf "inconclusive (%s)" msg
  | Anomalous a -> Fmt.pf ppf "ANOMALY: %a" pp_anomaly a

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

open Stm_obs

(* The full match doubles as a compile-time exhaustiveness guard: a new
   anomaly constructor must be given a kind string here (and the
   [test_check] classifier test forces the strings to stay distinct). *)
let anomaly_kind = function
  | Cycle _ -> "cycle"
  | Dirty_read _ -> "dirty-read"
  | Final_mismatch _ -> "final-mismatch"
  | Divergence _ -> "divergence"
  | Control_divergence _ -> "control-divergence"
  | Private_clobbered _ -> "private-clobbered"
  | Exec_failure _ -> "exec-failure"
  | Lost_update _ -> "lost-update"
  | Fractured_read _ -> "fractured-read"

let all_anomaly_kinds =
  [
    "cycle";
    "dirty-read";
    "final-mismatch";
    "divergence";
    "control-divergence";
    "private-clobbered";
    "exec-failure";
    "lost-update";
    "fractured-read";
  ]

(* Which anomalies the snapshot-isolation contract still forbids: a
   history whose only defects are admitted kinds is SI-consistent. *)
let si_forbids = function
  | Dirty_read _ | Final_mismatch _ | Lost_update _ | Fractured_read _
  | Private_clobbered _ | Exec_failure _ ->
      true
  | Cycle _ | Divergence _ | Control_divergence _ -> false

let value_to_json = function
  | Vi n -> Json.Int n
  | Vr b -> Json.Str ("&" ^ box_to_string b)

let opt_value_to_json = function None -> Json.Null | Some v -> value_to_json v

let edge_to_json e =
  Json.Obj
    [
      ("src", Json.Int e.src);
      ("dst", Json.Int e.dst);
      ("kind", Json.Str (kind_to_string e.kind));
      ( "loc",
        match e.eloc with None -> Json.Null | Some l -> Json.Str (loc_to_string l)
      );
    ]

let anomaly_to_json = function
  | Cycle edges ->
      Json.Obj
        [ ("anomaly", Json.Str "cycle"); ("edges", Json.List (List.map edge_to_json edges)) ]
  | Dirty_read { node; rloc; seen } ->
      Json.Obj
        [
          ("anomaly", Json.Str "dirty-read");
          ("node", Json.Int node);
          ("loc", Json.Str (loc_to_string rloc));
          ("seen", value_to_json seen);
        ]
  | Final_mismatch { floc; expected; actual } ->
      Json.Obj
        [
          ("anomaly", Json.Str "final-mismatch");
          ("loc", Json.Str (loc_to_string floc));
          ("expected", opt_value_to_json expected);
          ("actual", opt_value_to_json actual);
        ]
  | Divergence { dloc; replayed; actual } ->
      Json.Obj
        [
          ("anomaly", Json.Str "divergence");
          ("loc", Json.Str (loc_to_string dloc));
          ("replayed", opt_value_to_json replayed);
          ("actual", opt_value_to_json actual);
        ]
  | Control_divergence { thread; step; detail } ->
      Json.Obj
        [
          ("anomaly", Json.Str "control-divergence");
          ("thread", Json.Int thread);
          ("step", Json.Int step);
          ("detail", Json.Str detail);
        ]
  | Private_clobbered { thread; step; expected; seen } ->
      Json.Obj
        [
          ("anomaly", Json.Str "private-clobbered");
          ("thread", Json.Int thread);
          ("step", Json.Int step);
          ("expected", Json.Int expected);
          ("seen", value_to_json seen);
        ]
  | Exec_failure msg ->
      Json.Obj [ ("anomaly", Json.Str "exec-failure"); ("detail", Json.Str msg) ]
  | Lost_update { node; uloc; read_idx; write_idx } ->
      Json.Obj
        [
          ("anomaly", Json.Str "lost-update");
          ("node", Json.Int node);
          ("loc", Json.Str (loc_to_string uloc));
          ("read_idx", Json.Int read_idx);
          ("write_idx", Json.Int write_idx);
        ]
  | Fractured_read { node; floc; first; second } ->
      Json.Obj
        [
          ("anomaly", Json.Str "fractured-read");
          ("node", Json.Int node);
          ("loc", Json.Str (loc_to_string floc));
          ("first", value_to_json first);
          ("second", value_to_json second);
        ]

let verdict_to_json = function
  | Serializable -> Json.Obj [ ("verdict", Json.Str "serializable") ]
  | Inconclusive msg ->
      Json.Obj [ ("verdict", Json.Str "inconclusive"); ("detail", Json.Str msg) ]
  | Anomalous a ->
      Json.Obj [ ("verdict", Json.Str "anomalous"); ("detail", anomaly_to_json a) ]

let verdict_equal a b =
  Json.to_string (verdict_to_json a) = Json.to_string (verdict_to_json b)

let is_anomalous = function Anomalous _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Conflict-graph check                                                *)
(* ------------------------------------------------------------------ *)

exception Found of anomaly

(* Version order per location: committed writes sorted by stamp, preceded
   by the initial value when the location has one. Writer id -1 stands
   for "initial state". Also returns the (loc, value) -> version-index
   map; values are unique per location because tokens are unique per
   static occurrence and each occurrence commits at most once. *)
let build_versions (h : history) nodes =
  let writes_by_loc : (loc, (int * int * value) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun nd ->
      List.iter
        (fun (l, v) ->
          let r =
            match Hashtbl.find_opt writes_by_loc l with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add writes_by_loc l r;
                r
          in
          r := (nd.stamp, nd.id, v) :: !r)
        nd.writes)
    nodes;
  let versions : (loc, (int * value) array) Hashtbl.t = Hashtbl.create 64 in
  let add_versions l ws =
    let ws = List.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) ws in
    let ws = List.map (fun (_, id, v) -> (id, v)) ws in
    let ws =
      match List.assoc_opt l h.init with
      | Some iv -> (-1, iv) :: ws
      | None -> ws
    in
    Hashtbl.replace versions l (Array.of_list ws)
  in
  Hashtbl.iter (fun l r -> add_versions l !r) writes_by_loc;
  List.iter
    (fun (l, _) ->
      if not (Hashtbl.mem versions l) then add_versions l [])
    h.init;
  let vindex : (loc * value, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun l vs -> Array.iteri (fun i (_, v) -> Hashtbl.replace vindex (l, v) i) vs)
    versions;
  (versions, vindex)

(* Final state: every snapshotted location must hold its last committed
   version (shared by the serializable and snapshot-isolation checks).
   Raises [Found]. *)
let check_final (h : history) versions =
  Hashtbl.iter
    (fun l vs ->
      match List.assoc_opt l h.final with
      | None -> ()  (* location not snapshotted; nothing to check *)
      | Some actual ->
          let expected = snd vs.(Array.length vs - 1) in
          if actual <> expected then
            raise
              (Found
                 (Final_mismatch
                    { floc = l; expected = Some expected; actual = Some actual })))
    versions

let check_graph (h : history) : anomaly option =
  let nodes = Array.of_list h.nodes in
  let n = Array.length nodes in
  Array.iteri (fun i nd -> assert (nd.id = i)) nodes;
  let versions, vindex = build_versions h nodes in
  let edges = ref [] in
  let adj = Array.make n [] in
  let add_edge src dst kind eloc =
    if src <> dst && src >= 0 && dst >= 0 then begin
      let e = { src; dst; kind; eloc } in
      edges := e :: !edges;
      adj.(src) <- e :: adj.(src)
    end
  in
  try
    (* ww: consecutive committed versions. *)
    Hashtbl.iter
      (fun l vs ->
        for i = 0 to Array.length vs - 2 do
          add_edge (fst vs.(i)) (fst vs.(i + 1)) Ww (Some l)
        done)
      versions;
    (* wr and rw from each observed read. *)
    Array.iter
      (fun nd ->
        List.iter
          (fun (l, v) ->
            match Hashtbl.find_opt vindex (l, v) with
            | None -> raise (Found (Dirty_read { node = nd.id; rloc = l; seen = v }))
            | Some i ->
                let vs = Hashtbl.find versions l in
                let writer = fst vs.(i) in
                add_edge writer nd.id Wr (Some l);
                if i + 1 < Array.length vs then
                  add_edge nd.id (fst vs.(i + 1)) Rw (Some l))
          nd.reads)
      nodes;
    (* Program order within each logical thread. *)
    let last_of_tid : (int, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun nd ->
        (match Hashtbl.find_opt last_of_tid nd.tid with
        | Some prev -> add_edge prev nd.id Po None
        | None -> ());
        Hashtbl.replace last_of_tid nd.tid nd.id)
      nodes;
    check_final h versions;
    (* Acyclicity. Colors: 0 white, 1 gray, 2 black. *)
    let color = Array.make n 0 in
    let rec dfs path v =
      color.(v) <- 1;
      List.iter
        (fun e ->
          if color.(e.dst) = 1 then begin
            (* Back edge: the cycle is [e] plus the path suffix from
               e.dst back to v. *)
            let rec suffix acc = function
              | [] -> acc
              | e' :: rest ->
                  if e'.src = e.dst then e' :: acc else suffix (e' :: acc) rest
            in
            raise (Found (Cycle (suffix [ e ] path)))
          end
          else if color.(e.dst) = 0 then dfs (e :: path) e.dst)
        adj.(v);
      color.(v) <- 2
    in
    for v = 0 to n - 1 do
      if color.(v) = 0 then dfs [] v
    done;
    None
  with Found a -> Some a

(* ------------------------------------------------------------------ *)
(* Differential replay                                                 *)
(* ------------------------------------------------------------------ *)

(* Replays the committed nodes in serialization order against a
   sequential reference interpreter of the program, then diffs the
   reference heap against the observed final state. Catches divergences
   the per-location graph check cannot see (e.g. wrong data payloads
   flowing through accumulators). *)

let differential (prog : Prog.t) (h : history) : anomaly option =
  let heap : (loc, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (l, v) -> Hashtbl.replace heap l v) h.init;
  let nthreads = Prog.nthreads prog in
  let accs = Array.make (max 1 nthreads) 0 in
  let priv = Array.make (max 1 nthreads) None in
  let as_int = function Vi n -> n | Vr _ -> 0 in
  let load l = Option.value (Hashtbl.find_opt heap l) ~default:(Vi 0) in
  let exception Diverged of anomaly in
  let apply_op thread step idx op =
    match (op : Prog.op) with
    | Prog.Read c -> accs.(thread) <- Prog.combine accs.(thread) (as_int (load (Cell c)))
    | Prog.Write (c, e) ->
        let token = Prog.op_token ~thread ~step ~op:idx in
        Hashtbl.replace heap (Cell c)
          (Vi (Prog.value_of e ~token ~acc:accs.(thread)))
    | Prog.Box_read s -> (
        match load (Root s) with
        | Vr b -> accs.(thread) <- Prog.combine accs.(thread) (as_int (load (Box_field b)))
        | _ -> ())
    | Prog.Box_write s -> (
        match load (Root s) with
        | Vr b ->
            let token = Prog.op_token ~thread ~step ~op:idx in
            Hashtbl.replace heap (Box_field b)
              (Vi (Prog.value_of Prog.Tok_acc ~token ~acc:accs.(thread)))
        | _ -> ())
  in
  let step_of thread step =
    match List.nth_opt prog.Prog.threads thread with
    | None -> None
    | Some steps -> List.nth_opt steps step
  in
  let replay_node (nd : node) =
    match nd.tag with
    | None -> ()
    | Some { thread; step; part } -> (
        match (part, step_of thread step) with
        | Body, Some (Prog.Atomic ops) -> List.iteri (apply_op thread step) ops
        | Body, Some (Prog.Plain op) -> apply_op thread step 0 op
        | Body, Some (Prog.Publish s) ->
            Hashtbl.replace heap (Root s) (Vr (New_box { thread; step }))
        | Pub_init, Some (Prog.Publish _) ->
            Hashtbl.replace heap
              (Box_field (New_box { thread; step }))
              (Vi (Prog.pub_token ~thread ~step * Prog.token_scale))
        | Body, Some (Prog.Privatize s) -> (
            match load (Root s) with
            | Vr b ->
                Hashtbl.replace heap (Root s)
                  (Vi (Prog.tomb_token ~thread ~step * Prog.token_scale));
                priv.(thread) <- Some b
            | _ -> priv.(thread) <- None)
        | Priv_write, Some (Prog.Privatize _) -> (
            match priv.(thread) with
            | Some b ->
                Hashtbl.replace heap (Box_field b)
                  (Vi (Prog.priv_token ~thread ~step * Prog.token_scale))
            | None ->
                raise
                  (Diverged
                     (Control_divergence
                        {
                          thread;
                          step;
                          detail =
                            "execution privatized a box but the sequential replay \
                             found the slot already detached";
                        })))
        | Priv_read, Some (Prog.Privatize _) -> (
            match priv.(thread) with
            | Some b ->
                accs.(thread) <- Prog.combine accs.(thread) (as_int (load (Box_field b)))
            | None -> ())
        | _, None ->
            raise
              (Diverged
                 (Control_divergence
                    { thread; step; detail = "node refers to a step outside the program" }))
        | _, Some _ ->
            raise
              (Diverged
                 (Control_divergence
                    { thread; step; detail = "node part does not match the step kind" })))
  in
  try
    List.iter replay_node h.nodes;
    List.iter
      (fun (l, actual) ->
        let replayed = Hashtbl.find_opt heap l in
        let same =
          match replayed with Some r -> r = actual | None -> actual = Vi 0
        in
        if not same then
          raise (Diverged (Divergence { dloc = l; replayed; actual = Some actual })))
      h.final;
    None
  with Diverged a -> Some a

(* ------------------------------------------------------------------ *)
(* Combined verdict                                                    *)
(* ------------------------------------------------------------------ *)

let check prog h =
  match check_graph h with
  | Some a -> Anomalous a
  | None -> (
      match differential prog h with Some a -> Anomalous a | None -> Serializable)

(* ------------------------------------------------------------------ *)
(* Snapshot-isolation certification                                    *)
(* ------------------------------------------------------------------ *)

(* Certify the weaker contract: dirty reads, fractured reads, lost
   updates, and final-state mismatches are rejected; dependency cycles
   are not checked (write skew and long fork are admitted), and there is
   no sequential differential replay (an SI execution need not have
   one). Reads already exclude a node's own-write observations (see
   Exec.split_accs), so every recorded read names a foreign version. *)
let check_si_graph (h : history) : anomaly option =
  let nodes = Array.of_list h.nodes in
  Array.iteri (fun i nd -> assert (nd.id = i)) nodes;
  let versions, vindex = build_versions h nodes in
  try
    Array.iter
      (fun nd ->
        let seen : (loc, value) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun (l, v) ->
            if not (Hashtbl.mem vindex (l, v)) then
              raise (Found (Dirty_read { node = nd.id; rloc = l; seen = v }));
            match Hashtbl.find_opt seen l with
            | Some v0 when v0 <> v ->
                raise
                  (Found
                     (Fractured_read
                        { node = nd.id; floc = l; first = v0; second = v }))
            | Some _ -> ()
            | None -> Hashtbl.add seen l v)
          nd.reads;
        (* first-committer-wins certificate: a read-modify-write must
           install the version directly after the one it read *)
        List.iter
          (fun (l, wv) ->
            match (Hashtbl.find_opt seen l, Hashtbl.find_opt vindex (l, wv)) with
            | Some rv, Some j -> (
                match Hashtbl.find_opt vindex (l, rv) with
                | Some i when j <> i + 1 ->
                    raise
                      (Found
                         (Lost_update
                            { node = nd.id; uloc = l; read_idx = i; write_idx = j }))
                | Some _ | None -> ())
            | _ -> ())
          nd.writes)
      nodes;
    check_final h versions;
    None
  with Found a -> Some a

let check_si h =
  match check_si_graph h with Some a -> Anomalous a | None -> Serializable

let check_at (isolation : Stm_core.Config.isolation) prog h =
  match isolation with
  | Stm_core.Config.Serializable -> check prog h
  | Stm_core.Config.Snapshot -> check_si h

(* Certify a history at both levels: serializable; failing that,
   SI-consistent-but-not-serializable (the serializable anomaly is the
   witness - for write skew, the rw-cycle); failing both, anomalous with
   the SI-level defect. *)
type certification =
  | Cert_serializable
  | Cert_snapshot_only of anomaly  (* the serializability violation *)
  | Cert_anomalous of anomaly  (* violates snapshot isolation too *)

let certify prog h =
  match check prog h with
  | Serializable | Inconclusive _ -> Cert_serializable
  | Anomalous a -> (
      match check_si_graph h with
      | None -> Cert_snapshot_only a
      | Some si_a -> Cert_anomalous si_a)

let certification_to_string = function
  | Cert_serializable -> "serializable"
  | Cert_snapshot_only _ -> "snapshot-only"
  | Cert_anomalous _ -> "anomalous"
