(* Seeded random program generator. All randomness flows through
   Det_rng, so (profile, knobs, seed) determines the program exactly. *)

open Stm_runtime

type profile = Txn_only | Mixed | Handoff

let profile_to_string = function
  | Txn_only -> "txn-only"
  | Mixed -> "mixed"
  | Handoff -> "handoff"

let profile_of_string = function
  | "txn-only" -> Some Txn_only
  | "mixed" -> Some Mixed
  | "handoff" -> Some Handoff
  | _ -> None

type gcfg = {
  profile : profile;
  min_threads : int;
  max_threads : int;
  max_steps : int;
  max_ops : int;
  ncells : int;
  nslots : int;
}

let default profile =
  match profile with
  | Txn_only ->
      {
        profile;
        min_threads = 2;
        max_threads = 3;
        max_steps = 4;
        max_ops = 4;
        ncells = 3;
        nslots = 0;
      }
  | Mixed ->
      {
        profile;
        min_threads = 2;
        max_threads = 3;
        max_steps = 5;
        max_ops = 3;
        ncells = 3;
        nslots = 0;
      }
  | Handoff ->
      {
        profile;
        min_threads = 2;
        max_threads = 3;
        max_steps = 4;
        max_ops = 3;
        ncells = 2;
        nslots = 2;
      }

let gen_expr rng = if Det_rng.bool rng then Prog.Tok else Prog.Tok_acc

let gen_cell_op rng g =
  match Det_rng.weighted rng [ (2, `R); (3, `W) ] with
  | `R -> Prog.Read (Det_rng.int rng g.ncells)
  | `W -> Prog.Write (Det_rng.int rng g.ncells, gen_expr rng)

let gen_boxed_op rng g =
  if g.nslots = 0 then gen_cell_op rng g
  else
    match Det_rng.weighted rng [ (2, `R); (3, `W); (2, `BR); (2, `BW) ] with
    | `R -> Prog.Read (Det_rng.int rng g.ncells)
    | `W -> Prog.Write (Det_rng.int rng g.ncells, gen_expr rng)
    | `BR -> Prog.Box_read (Det_rng.int rng g.nslots)
    | `BW -> Prog.Box_write (Det_rng.int rng g.nslots)

let gen_atomic rng g gen_op =
  let nops = Det_rng.range rng 1 g.max_ops in
  Prog.Atomic (List.init nops (fun _ -> gen_op rng g))

let gen_step rng g =
  match g.profile with
  | Txn_only -> gen_atomic rng g gen_cell_op
  | Mixed -> (
      match Det_rng.weighted rng [ (3, `A); (2, `P) ] with
      | `A -> gen_atomic rng g gen_cell_op
      | `P -> Prog.Plain (gen_cell_op rng g))
  | Handoff -> (
      (* No plain cell accesses: all non-transactional traffic goes
         through a publish/privatize handoff, the discipline quiescence
         is supposed to make safe without strong barriers. *)
      match Det_rng.weighted rng [ (4, `A); (2, `Pub); (2, `Priv) ] with
      | `A -> gen_atomic rng g gen_boxed_op
      | `Pub -> Prog.Publish (Det_rng.int rng g.nslots)
      | `Priv -> Prog.Privatize (Det_rng.int rng g.nslots))

let generate (g : gcfg) ~seed =
  assert (g.max_steps <= Prog.max_steps && g.max_ops <= Prog.max_ops);
  assert (g.profile = Txn_only || g.profile = Mixed || g.nslots > 0);
  let rng = Det_rng.create seed in
  let nthreads = Det_rng.range rng g.min_threads g.max_threads in
  let threads =
    List.init nthreads (fun _ ->
        let nsteps = Det_rng.range rng 1 g.max_steps in
        List.init nsteps (fun _ -> gen_step rng g))
  in
  { Prog.ncells = g.ncells; nslots = g.nslots; threads }
