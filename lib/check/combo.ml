(* One point in the configuration space the sweep covers: versioning x
   isolation level x atomicity flavor x contention-management policy. *)

module Config = Stm_core.Config

type atomicity = Weak | Strong | Strong_dea | Quiesce

type t = {
  versioning : Config.versioning;
  isolation : Config.isolation;
  validation : Config.validation;
  atomicity : atomicity;
  cm : Stm_cm.Policy.t;
}

let atomicity_to_string = function
  | Weak -> "weak"
  | Strong -> "strong"
  | Strong_dea -> "dea"
  | Quiesce -> "quiesce"

let atomicity_of_string = function
  | "weak" -> Some Weak
  | "strong" -> Some Strong
  | "dea" -> Some Strong_dea
  | "quiesce" -> Some Quiesce
  | _ -> None

let versioning_to_string = Config.versioning_to_string
let versioning_of_string = Config.versioning_of_string

(* The isolation knob only distinguishes mvcc combos; it is silent in
   names and JSON for the single-version backends (and for mvcc at the
   default serializable level), so existing repro artifacts keep their
   identity. The validation knob is likewise silent at the default
   [Incremental]; timestamp-mode combos carry a "-ts" suffix. *)
let backend_string t =
  let base =
    match (t.versioning, t.isolation) with
    | Config.Mvcc, Config.Snapshot -> "mvcc-si"
    | v, _ -> versioning_to_string v
  in
  match t.validation with
  | Config.Incremental -> base
  | Config.Timestamp -> base ^ "-ts"

let name t =
  Printf.sprintf "%s-%s/%s" (backend_string t)
    (atomicity_to_string t.atomicity)
    (Stm_cm.Policy.to_string t.cm)

let to_config ?(cm_seed = 0) t =
  let base =
    match (t.versioning, t.atomicity) with
    | Config.Eager, Weak -> Config.eager_weak
    | Config.Lazy, Weak -> Config.lazy_weak
    | Config.Mvcc, Weak -> Config.mvcc_weak
    | Config.Eager, Strong -> Config.eager_strong
    | Config.Lazy, Strong -> Config.lazy_strong
    | Config.Mvcc, Strong -> Config.mvcc_strong
    | Config.Eager, Strong_dea -> Config.with_dea Config.eager_strong
    | Config.Lazy, Strong_dea -> Config.with_dea Config.lazy_strong
    | Config.Mvcc, Strong_dea -> Config.with_dea Config.mvcc_strong
    | Config.Eager, Quiesce -> Config.with_quiescence Config.eager_weak
    | Config.Lazy, Quiesce -> Config.with_quiescence Config.lazy_weak
    | Config.Mvcc, Quiesce ->
        (* quiescence is an eager-commit epoch protocol; mvcc commits have
           no write-back window to order, so the flag would be inert -
           map the combo to plain weak mvcc rather than pretend *)
        Config.mvcc_weak
  in
  let base = Config.with_isolation t.isolation base in
  let base = Config.with_validation t.validation base in
  { (Config.with_cm t.cm base) with Config.cm_seed }

let all_atomicities = [ Weak; Strong; Strong_dea; Quiesce ]
let all_versionings = [ Config.Eager; Config.Lazy; Config.Mvcc ]

(* The classic grid: {eager,lazy} x all atomicities x all CM policies.
   mvcc extends it on two axes of its own - {serializable,snapshot} x
   {weak,strong,dea} - but with the suicide policy only: mvcc takes no
   ownership, so transactions never meet in the contention manager and
   the CM axis is degenerate there. *)
let all =
  List.concat_map
    (fun v ->
      List.concat_map
        (fun a ->
          List.map
            (fun cm ->
              {
                versioning = v;
                isolation = Config.Serializable;
                validation = Config.Incremental;
                atomicity = a;
                cm;
              })
            Stm_cm.Policy.all)
        all_atomicities)
    [ Config.Eager; Config.Lazy ]
  @ List.concat_map
      (fun isolation ->
        List.map
          (fun a ->
            {
              versioning = Config.Mvcc;
              isolation;
              validation = Config.Incremental;
              atomicity = a;
              cm = Stm_cm.Policy.Suicide;
            })
          [ Weak; Strong; Strong_dea ])
      [ Config.Serializable; Config.Snapshot ]

(* The timestamp-mode certification grid: every single-version atomicity
   flavor under a spread of contention managers — 24 points. Kept apart
   from {!all} so default sweeps (and their artifacts) are unchanged. *)
let timestamp_grid =
  List.concat_map
    (fun v ->
      List.concat_map
        (fun a ->
          List.map
            (fun cm ->
              {
                versioning = v;
                isolation = Config.Serializable;
                validation = Config.Timestamp;
                atomicity = a;
                cm;
              })
            [ Stm_cm.Policy.Suicide; Stm_cm.Policy.Wound_wait;
              Stm_cm.Policy.Timestamp ])
        all_atomicities)
    [ Config.Eager; Config.Lazy ]

open Stm_obs

let to_json t =
  Json.Obj
    ([
       ("versioning", Json.Str (versioning_to_string t.versioning));
       ("atomicity", Json.Str (atomicity_to_string t.atomicity));
       ("cm", Json.Str (Stm_cm.Policy.to_string t.cm));
     ]
    @ (match t.isolation with
      | Config.Serializable -> []
      | Config.Snapshot ->
          [ ("isolation", Json.Str (Config.isolation_to_string t.isolation)) ])
    @
    match t.validation with
    | Config.Incremental -> []
    | Config.Timestamp ->
        [ ("validation", Json.Str (Config.validation_to_string t.validation)) ])

let ( let* ) = Option.bind

let of_json j =
  let* v = Option.bind (Json.member "versioning" j) Json.to_str_opt in
  let* v = versioning_of_string v in
  let* a = Option.bind (Json.member "atomicity" j) Json.to_str_opt in
  let* a = atomicity_of_string a in
  let* cm = Option.bind (Json.member "cm" j) Json.to_str_opt in
  let* cm = Stm_cm.Policy.of_string cm in
  (* absent isolation member = serializable: pre-mvcc repro files *)
  let* isolation =
    match Option.bind (Json.member "isolation" j) Json.to_str_opt with
    | None -> Some Config.Serializable
    | Some s -> Config.isolation_of_string s
  in
  (* absent validation member = incremental: pre-timestamp repro files *)
  let* validation =
    match Option.bind (Json.member "validation" j) Json.to_str_opt with
    | None -> Some Config.Incremental
    | Some s -> Config.validation_of_string s
  in
  Some { versioning = v; isolation; validation; atomicity = a; cm }
