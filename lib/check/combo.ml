(* One point in the configuration space the sweep covers: versioning x
   atomicity flavor x contention-management policy. *)

module Config = Stm_core.Config

type atomicity = Weak | Strong | Strong_dea | Quiesce

type t = {
  versioning : Config.versioning;
  atomicity : atomicity;
  cm : Stm_cm.Policy.t;
}

let atomicity_to_string = function
  | Weak -> "weak"
  | Strong -> "strong"
  | Strong_dea -> "dea"
  | Quiesce -> "quiesce"

let atomicity_of_string = function
  | "weak" -> Some Weak
  | "strong" -> Some Strong
  | "dea" -> Some Strong_dea
  | "quiesce" -> Some Quiesce
  | _ -> None

let versioning_to_string = function Config.Eager -> "eager" | Config.Lazy -> "lazy"

let versioning_of_string = function
  | "eager" -> Some Config.Eager
  | "lazy" -> Some Config.Lazy
  | _ -> None

let name t =
  Printf.sprintf "%s-%s/%s"
    (versioning_to_string t.versioning)
    (atomicity_to_string t.atomicity)
    (Stm_cm.Policy.to_string t.cm)

let to_config ?(cm_seed = 0) t =
  let base =
    match (t.versioning, t.atomicity) with
    | Config.Eager, Weak -> Config.eager_weak
    | Config.Lazy, Weak -> Config.lazy_weak
    | Config.Eager, Strong -> Config.eager_strong
    | Config.Lazy, Strong -> Config.lazy_strong
    | Config.Eager, Strong_dea -> Config.with_dea Config.eager_strong
    | Config.Lazy, Strong_dea -> Config.with_dea Config.lazy_strong
    | Config.Eager, Quiesce -> Config.with_quiescence Config.eager_weak
    | Config.Lazy, Quiesce -> Config.with_quiescence Config.lazy_weak
  in
  { (Config.with_cm t.cm base) with Config.cm_seed }

let all_atomicities = [ Weak; Strong; Strong_dea; Quiesce ]
let all_versionings = [ Config.Eager; Config.Lazy ]

let all =
  List.concat_map
    (fun v ->
      List.concat_map
        (fun a -> List.map (fun cm -> { versioning = v; atomicity = a; cm }) Stm_cm.Policy.all)
        all_atomicities)
    all_versionings

open Stm_obs

let to_json t =
  Json.Obj
    [
      ("versioning", Json.Str (versioning_to_string t.versioning));
      ("atomicity", Json.Str (atomicity_to_string t.atomicity));
      ("cm", Json.Str (Stm_cm.Policy.to_string t.cm));
    ]

let ( let* ) = Option.bind

let of_json j =
  let* v = Option.bind (Json.member "versioning" j) Json.to_str_opt in
  let* v = versioning_of_string v in
  let* a = Option.bind (Json.member "atomicity" j) Json.to_str_opt in
  let* a = atomicity_of_string a in
  let* cm = Option.bind (Json.member "cm" j) Json.to_str_opt in
  let* cm = Stm_cm.Policy.of_string cm in
  Some { versioning = v; atomicity = a; cm }
