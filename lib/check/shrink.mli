(** Greedy counterexample minimization.

    Repeatedly tries one-step simplifications — drop a thread, drop a
    step, drop an op from an atomic block, demote an atomic singleton to
    a plain access, simplify a write expression, lower an index — and
    restarts from the first candidate [keep] accepts. Terminates at a
    fixpoint: a program where no single simplification still satisfies
    [keep]. *)

val candidates : ?demote_atomic:bool -> Prog.t -> Prog.t Seq.t
(** All one-step simplifications of the program, most aggressive first
    (thread removal down to index lowering). [demote_atomic] (default
    [true]) enables the atomic-singleton → plain-access pass; disable it
    when shrinking programs from a grammar with no plain accesses so the
    minimized counterexample stays in the same program class. *)

val minimize :
  ?max_attempts:int -> ?demote_atomic:bool -> keep:(Prog.t -> bool) -> Prog.t -> Prog.t
(** [minimize ~keep p] greedily shrinks [p] while [keep] holds. [keep p]
    itself is assumed true and is not re-checked. [max_attempts]
    (default 10000) bounds the total number of [keep] evaluations. *)
