(* Fuzz-program representation.

   A program is a fixed small heap - [ncells] integer cells, [nslots]
   root slots each initially holding a one-field "box" object - plus one
   straight-line op sequence per thread. Steps are transactional blocks,
   single non-transactional accesses, or the paper's two sharing-status
   transitions (publish a freshly allocated object / privatize the
   object reachable from a root slot).

   Every write stores a value tagged with a token unique to its static
   occurrence, so an execution's reads-from relation is directly
   observable: [value / token_scale] names the writing occurrence and
   the low bits carry the data payload (a hash of the writer's
   accumulator, which earlier reads feed - real data dependencies). *)

type expr =
  | Tok  (* write the occurrence token alone *)
  | Tok_acc  (* token + hash of the thread's accumulator *)

type op =
  | Read of int  (* acc <- combine acc cells[i] *)
  | Write of int * expr  (* cells[i] <- tagged value *)
  | Box_read of int  (* deref roots[s]; fold the box field into acc *)
  | Box_write of int  (* deref roots[s]; store a tagged value in the box *)

type step =
  | Atomic of op list  (* one transaction *)
  | Plain of op  (* one non-transactional access *)
  | Publish of int
      (* allocate a box (private under DEA), initialize it with a
         non-transactional store, install it in roots[s] transactionally *)
  | Privatize of int
      (* transactionally swap roots[s] for a unique tombstone; if a box
         was obtained, write and read it back non-transactionally *)

type t = { ncells : int; nslots : int; threads : step list list }

let nthreads t = List.length t.threads

(* ------------------------------------------------------------------ *)
(* Token scheme                                                        *)
(* ------------------------------------------------------------------ *)

(* Tokens are unique per static occurrence and disjoint across
   namespaces; [0] is reserved for initial cell values. *)

let max_steps = 64
let max_ops = 16
let token_scale = 65536  (* value = token * scale + payload *)

let op_token ~thread ~step ~op = (((thread * max_steps) + step) * max_ops) + op + 1
let pub_token ~thread ~step = 1_000_000 + (thread * max_steps) + step
let priv_token ~thread ~step = 2_000_000 + (thread * max_steps) + step
let tomb_token ~thread ~step = 3_000_000 + (thread * max_steps) + step
let init_box_token ~slot = 4_000_000 + slot

(* The accumulator folds every loaded value into 12 bits, so payloads
   never collide with the token field. *)
let combine acc v = ((acc * 31) + v) land 0xFFF

let value_of expr ~token ~acc =
  match expr with
  | Tok -> token * token_scale
  | Tok_acc -> (token * token_scale) + acc

let token_of_value v = v / token_scale

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_op ppf = function
  | Read i -> Fmt.pf ppf "r c%d" i
  | Write (i, Tok) -> Fmt.pf ppf "w c%d" i
  | Write (i, Tok_acc) -> Fmt.pf ppf "w c%d,acc" i
  | Box_read s -> Fmt.pf ppf "br s%d" s
  | Box_write s -> Fmt.pf ppf "bw s%d" s

let pp_step ppf = function
  | Atomic ops -> Fmt.pf ppf "atomic{%a}" Fmt.(list ~sep:(any "; ") pp_op) ops
  | Plain op -> Fmt.pf ppf "plain(%a)" pp_op op
  | Publish s -> Fmt.pf ppf "publish s%d" s
  | Privatize s -> Fmt.pf ppf "privatize s%d" s

let pp ppf t =
  Fmt.pf ppf "%d cells, %d slots@." t.ncells t.nslots;
  List.iteri
    (fun i steps ->
      Fmt.pf ppf "  T%d: %a@." i Fmt.(list ~sep:(any " . ") pp_step) steps)
    t.threads

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

open Stm_obs

let op_to_json = function
  | Read i -> Json.Obj [ ("op", Json.Str "read"); ("cell", Json.Int i) ]
  | Write (i, e) ->
      Json.Obj
        [
          ("op", Json.Str "write");
          ("cell", Json.Int i);
          ("expr", Json.Str (match e with Tok -> "tok" | Tok_acc -> "tok-acc"));
        ]
  | Box_read s -> Json.Obj [ ("op", Json.Str "box-read"); ("slot", Json.Int s) ]
  | Box_write s -> Json.Obj [ ("op", Json.Str "box-write"); ("slot", Json.Int s) ]

let step_to_json = function
  | Atomic ops -> Json.Obj [ ("atomic", Json.List (List.map op_to_json ops)) ]
  | Plain op -> Json.Obj [ ("plain", op_to_json op) ]
  | Publish s -> Json.Obj [ ("publish", Json.Int s) ]
  | Privatize s -> Json.Obj [ ("privatize", Json.Int s) ]

let to_json t =
  Json.Obj
    [
      ("ncells", Json.Int t.ncells);
      ("nslots", Json.Int t.nslots);
      ( "threads",
        Json.List
          (List.map (fun steps -> Json.List (List.map step_to_json steps)) t.threads)
      );
    ]

let ( let* ) = Option.bind

let op_of_json j =
  let* name = Option.bind (Json.member "op" j) Json.to_str_opt in
  match name with
  | "read" ->
      let* i = Option.bind (Json.member "cell" j) Json.to_int_opt in
      Some (Read i)
  | "write" ->
      let* i = Option.bind (Json.member "cell" j) Json.to_int_opt in
      let* e = Option.bind (Json.member "expr" j) Json.to_str_opt in
      let* e =
        match e with "tok" -> Some Tok | "tok-acc" -> Some Tok_acc | _ -> None
      in
      Some (Write (i, e))
  | "box-read" ->
      let* s = Option.bind (Json.member "slot" j) Json.to_int_opt in
      Some (Box_read s)
  | "box-write" ->
      let* s = Option.bind (Json.member "slot" j) Json.to_int_opt in
      Some (Box_write s)
  | _ -> None

let rec map_opt f = function
  | [] -> Some []
  | x :: rest ->
      let* y = f x in
      let* ys = map_opt f rest in
      Some (y :: ys)

let step_of_json j =
  match j with
  | Json.Obj [ ("atomic", Json.List ops) ] ->
      let* ops = map_opt op_of_json ops in
      Some (Atomic ops)
  | Json.Obj [ ("plain", op) ] ->
      let* op = op_of_json op in
      Some (Plain op)
  | Json.Obj [ ("publish", Json.Int s) ] -> Some (Publish s)
  | Json.Obj [ ("privatize", Json.Int s) ] -> Some (Privatize s)
  | _ -> None

let of_json j =
  let* ncells = Option.bind (Json.member "ncells" j) Json.to_int_opt in
  let* nslots = Option.bind (Json.member "nslots" j) Json.to_int_opt in
  let* threads = Option.bind (Json.member "threads" j) Json.to_list_opt in
  let* threads =
    map_opt
      (fun tj ->
        let* steps = Json.to_list_opt tj in
        map_opt step_of_json steps)
      threads
  in
  Some { ncells; nslots; threads }
