(* Execute a fuzz program on the real STM and collect its history.

   The program runs under the cooperative scheduler through the public
   Stm API, with a Debug-level trace sink recording every completed
   memory access (Trace.Access) and every serialization point
   (Trace.Txn_serialized). Because the scheduler is cooperative and the
   runtime emits these events with no preemption point between the heap
   operation and the emission, trace-arrival order is memory-visibility
   order: the arrival index is a sound serialization stamp.

   Committed transactions become one node each, stamped at their
   Txn_serialized event (under lazy versioning the commit event fires
   only after the write-back window, which can legitimately reorder
   against other threads). Aborted attempts are dropped - their writes
   are rolled back, and any value another node observed from them has no
   committed writer, which the oracle reports as a dirty read. *)

open Stm_runtime
module Config = Stm_core.Config
module Stm = Stm_core.Stm
module Trace = Stm_core.Trace

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

type frame = {
  f_txid : int;
  f_tag : History.tag option;
  f_begin : int;  (* arrival stamp of Txn_begin = snapshot point under mvcc *)
  mutable f_accs : (History.loc * History.value * bool) list;  (* reversed *)
  mutable f_serial : int option;
}

type collector = {
  mutable enabled : bool;
  mutable mv : bool;  (* multi-version run: ro txns serialize at snapshot *)
  mutable stamp : int;
  mutable cells_oid : int;
  mutable roots_oid : int;
  box_ids : (int, History.box_id) Hashtbl.t;  (* oid -> box *)
  mutable box_objs : (History.box_id * Heap.obj) list;  (* reversed *)
  tags : (int, History.tag) Hashtbl.t;  (* sched tid -> current tag *)
  tids : (int, int) Hashtbl.t;  (* sched tid -> logical thread index *)
  frames : (int, frame list) Hashtbl.t;  (* sched tid -> open txn stack *)
  mutable raw_nodes : History.node list;  (* reversed, commit order *)
  mutable init : (History.loc * History.value) list;
  mutable final : (History.loc * History.value) list option;
}

let create_collector () =
  {
    enabled = false;
    mv = false;
    stamp = 0;
    cells_oid = -1;
    roots_oid = -1;
    box_ids = Hashtbl.create 16;
    box_objs = [];
    tags = Hashtbl.create 8;
    tids = Hashtbl.create 8;
    frames = Hashtbl.create 8;
    raw_nodes = [];
    init = [];
    final = None;
  }

let loc_of col ~oid ~fld =
  if oid = col.cells_oid then Some (History.Cell fld)
  else if oid = col.roots_oid then Some (History.Root fld)
  else
    match Hashtbl.find_opt col.box_ids oid with
    | Some b -> Some (History.Box_field b)
    | None -> None

let value_of col (v : Heap.value) : History.value option =
  match v with
  | Heap.Vint n -> Some (History.Vi n)
  | Heap.Vref o -> (
      match Hashtbl.find_opt col.box_ids o.Heap.oid with
      | Some b -> Some (History.Vr b)
      | None -> None)
  | _ -> None

let logical_tid col tid = Option.value (Hashtbl.find_opt col.tids tid) ~default:(-1)

let push_frame col tid f =
  let stack = Option.value (Hashtbl.find_opt col.frames tid) ~default:[] in
  Hashtbl.replace col.frames tid (f :: stack)

let find_frame col tid txid =
  match Hashtbl.find_opt col.frames tid with
  | None -> None
  | Some stack -> List.find_opt (fun f -> f.f_txid = txid) stack

let pop_frame col tid txid =
  match Hashtbl.find_opt col.frames tid with
  | None -> None
  | Some stack ->
      let popped = List.find_opt (fun f -> f.f_txid = txid) stack in
      Hashtbl.replace col.frames tid (List.filter (fun f -> f.f_txid <> txid) stack);
      popped

let add_raw col node = col.raw_nodes <- node :: col.raw_nodes

(* Split a reversed access list into reads (program order, duplicates
   kept) and last-write-per-location. Reads of a location the node has
   already written observe the node's own pending write (undo-log or
   write-buffer semantics), not another node's version - they impose no
   inter-node dependency and are dropped. *)
let split_accs accs_rev =
  let own = Hashtbl.create 8 in
  let reads =
    List.rev accs_rev
    |> List.filter_map (fun (l, v, w) ->
           if w then begin
             Hashtbl.replace own l ();
             None
           end
           else if Hashtbl.mem own l then None
           else Some (l, v))
  in
  let seen = Hashtbl.create 8 in
  let writes =
    List.fold_left
      (fun acc (l, v, w) ->
        if w && not (Hashtbl.mem seen l) then begin
          Hashtbl.add seen l ();
          (l, v) :: acc
        end
        else acc)
      [] accs_rev
  in
  (reads, writes)

let on_event col (ev : Trace.event) =
  col.stamp <- col.stamp + 1;
  let now = col.stamp in
  if col.enabled then
    match ev with
    | Trace.Access { tid; txid; oid; fld; value; write } -> (
        match (loc_of col ~oid ~fld, value_of col value) with
        | Some l, Some v ->
            if txid >= 0 then (
              match find_frame col tid txid with
              | Some f -> f.f_accs <- (l, v, write) :: f.f_accs
              | None -> ())
            else
              add_raw col
                {
                  History.id = 0;
                  tid = logical_tid col tid;
                  txn = false;
                  stamp = now;
                  tag = Hashtbl.find_opt col.tags tid;
                  reads = (if write then [] else [ (l, v) ]);
                  writes = (if write then [ (l, v) ] else []);
                }
        | _ -> ())
    | Trace.Txn_begin { txid; tid } ->
        (* begin_txn takes the mvcc snapshot and emits this event in one
           yield-free stretch, so [now] doubles as the snapshot stamp *)
        push_frame col tid
          {
            f_txid = txid;
            f_tag = Hashtbl.find_opt col.tags tid;
            f_begin = now;
            f_accs = [];
            f_serial = None;
          }
    | Trace.Txn_serialized { txid; tid } -> (
        match find_frame col tid txid with
        | Some f -> f.f_serial <- Some now
        | None -> ())
    | Trace.Txn_commit { txid; tid; _ } -> (
        match pop_frame col tid txid with
        | None -> ()
        | Some f ->
            let reads, writes = split_accs f.f_accs in
            (* A multi-version read-only transaction serializes at its
               snapshot, not at commit: it reads the versions current at
               begin and skips validation, so a commit that lands between
               its snapshot and its (arbitrarily later) commit event must
               order AFTER it. Update transactions keep the commit-time
               stamp - their writes install at the commit clock. *)
            let stamp =
              if col.mv && writes = [] then f.f_begin
              else Option.value f.f_serial ~default:now
            in
            add_raw col
              {
                History.id = 0;
                tid = logical_tid col tid;
                txn = true;
                stamp;
                tag = f.f_tag;
                reads;
                writes;
              })
    | Trace.Txn_abort { txid; tid; _ } -> ignore (pop_frame col tid txid)
    | _ -> ()

let finalize_history col =
  let nodes =
    List.sort
      (fun (a : History.node) b -> compare a.stamp b.stamp)
      (List.rev col.raw_nodes)
  in
  let nodes = List.mapi (fun i (n : History.node) -> { n with History.id = i }) nodes in
  {
    History.init = col.init;
    nodes;
    final = Option.value col.final ~default:[];
  }

(* ------------------------------------------------------------------ *)
(* Program body                                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  col : collector;
  prog : Prog.t;
  level : Config.isolation;  (* which contract the oracle certifies *)
  mutable cells : Heap.obj option;
  mutable roots : Heap.obj option;
  mutable clobbered : History.anomaly option;
}

(* The certification level follows the configuration: an mvcc run at the
   snapshot isolation level is judged against the SI contract (write
   skew is legal there); everything else must be serializable. *)
let check_level (cfg : Config.t) =
  match cfg.Config.versioning with
  | Config.Mvcc -> cfg.Config.isolation
  | Config.Eager | Config.Lazy -> Config.Serializable

let set_tag ctx ~thread ~step part =
  Hashtbl.replace ctx.col.tags (Sched.self ()) { History.thread; step; part }

let as_int (v : Heap.value) = match v with Heap.Vint n -> n | _ -> 0

let cells_of ctx = Option.get ctx.cells
let roots_of ctx = Option.get ctx.roots

let exec_op ctx ~thread ~step acc k (op : Prog.op) =
  match op with
  | Prog.Read c -> acc := Prog.combine !acc (as_int (Stm.read (cells_of ctx) c))
  | Prog.Write (c, e) ->
      let token = Prog.op_token ~thread ~step ~op:k in
      Stm.write (cells_of ctx) c (Stm.vint (Prog.value_of e ~token ~acc:!acc))
  | Prog.Box_read s -> (
      match Stm.read (roots_of ctx) s with
      | Heap.Vref b -> acc := Prog.combine !acc (as_int (Stm.read b 0))
      | _ -> ())
  | Prog.Box_write s -> (
      match Stm.read (roots_of ctx) s with
      | Heap.Vref b ->
          let token = Prog.op_token ~thread ~step ~op:k in
          Stm.write b 0 (Stm.vint (Prog.value_of Prog.Tok_acc ~token ~acc:!acc))
      | _ -> ())

let exec_step ctx ~thread acc step_idx (step : Prog.step) =
  match step with
  | Prog.Atomic ops ->
      set_tag ctx ~thread ~step:step_idx History.Body;
      let before = !acc in
      Stm.atomic (fun () ->
          acc := before;
          List.iteri (exec_op ctx ~thread ~step:step_idx acc) ops)
  | Prog.Plain op ->
      set_tag ctx ~thread ~step:step_idx History.Body;
      exec_op ctx ~thread ~step:step_idx acc 0 op
  | Prog.Publish s ->
      let b = Stm.alloc ~cls:"fuzz-box" 1 in
      let bid = History.New_box { thread; step = step_idx } in
      Hashtbl.replace ctx.col.box_ids b.Heap.oid bid;
      ctx.col.box_objs <- (bid, b) :: ctx.col.box_objs;
      set_tag ctx ~thread ~step:step_idx History.Pub_init;
      Stm.write b 0
        (Stm.vint (Prog.pub_token ~thread ~step:step_idx * Prog.token_scale));
      set_tag ctx ~thread ~step:step_idx History.Body;
      Stm.atomic (fun () -> Stm.write (roots_of ctx) s (Stm.vref b))
  | Prog.Privatize s -> (
      set_tag ctx ~thread ~step:step_idx History.Body;
      let before = !acc in
      let got =
        Stm.atomic (fun () ->
            acc := before;
            match Stm.read (roots_of ctx) s with
            | Heap.Vref b ->
                Stm.write (roots_of ctx) s
                  (Stm.vint
                     (Prog.tomb_token ~thread ~step:step_idx * Prog.token_scale));
                Some b
            | _ -> None)
      in
      match got with
      | None -> ()
      | Some b ->
          set_tag ctx ~thread ~step:step_idx History.Priv_write;
          let expected =
            Prog.priv_token ~thread ~step:step_idx * Prog.token_scale
          in
          Stm.write b 0 (Stm.vint expected);
          set_tag ctx ~thread ~step:step_idx History.Priv_read;
          let v = Stm.read b 0 in
          acc := Prog.combine !acc (as_int v);
          let ok = match v with Heap.Vint n -> n = expected | _ -> false in
          if (not ok) && ctx.clobbered = None then
            ctx.clobbered <-
              Some
                (History.Private_clobbered
                   {
                     thread;
                     step = step_idx;
                     expected;
                     seen =
                       Option.value (value_of ctx.col v)
                         ~default:(History.Vi (as_int v));
                   }))

let thread_body ctx thread steps () =
  let acc = ref 0 in
  List.iteri (exec_step ctx ~thread acc) steps

let snapshot_final ctx =
  let col = ctx.col in
  let conv v = Option.value (value_of col v) ~default:(History.Vi (as_int v)) in
  let cells = cells_of ctx and roots = roots_of ctx in
  let fin = ref [] in
  for i = ctx.prog.Prog.ncells - 1 downto 0 do
    fin := (History.Cell i, conv (Heap.get cells i)) :: !fin
  done;
  for s = ctx.prog.Prog.nslots - 1 downto 0 do
    fin := (History.Root s, conv (Heap.get roots s)) :: !fin
  done;
  List.iter
    (fun (bid, obj) ->
      fin := (History.Box_field bid, conv (Heap.get obj 0)) :: !fin)
    (List.rev col.box_objs);
  col.final <- Some !fin

let main ctx () =
  let prog = ctx.prog in
  let col = ctx.col in
  let ncells = max 1 prog.Prog.ncells in
  let cells = Stm.alloc_public ~cls:"fuzz-cells" ncells in
  for i = 0 to ncells - 1 do
    Stm.write cells i (Stm.vint 0)
  done;
  let roots = Stm.alloc_public ~cls:"fuzz-roots" (max 1 prog.Prog.nslots) in
  for s = 0 to prog.Prog.nslots - 1 do
    let b = Stm.alloc_public ~cls:"fuzz-box" 1 in
    let bid = History.Slot_box s in
    Hashtbl.replace col.box_ids b.Heap.oid bid;
    col.box_objs <- (bid, b) :: col.box_objs;
    Stm.write b 0
      (Stm.vint (Prog.init_box_token ~slot:s * Prog.token_scale));
    Stm.write roots s (Stm.vref b)
  done;
  ctx.cells <- Some cells;
  ctx.roots <- Some roots;
  col.cells_oid <- cells.Heap.oid;
  col.roots_oid <- roots.Heap.oid;
  col.init <-
    List.init prog.Prog.ncells (fun i -> (History.Cell i, History.Vi 0))
    @ List.init prog.Prog.nslots (fun s ->
          (History.Root s, History.Vr (History.Slot_box s)))
    @ List.init prog.Prog.nslots (fun s ->
          ( History.Box_field (History.Slot_box s),
            History.Vi (Prog.init_box_token ~slot:s * Prog.token_scale) ));
  col.enabled <- true;
  let tids =
    List.mapi
      (fun i steps ->
        let t = Sched.spawn ~name:(Printf.sprintf "T%d" i) (thread_body ctx i steps) in
        Hashtbl.replace col.tids t i;
        t)
      prog.Prog.threads
  in
  List.iter Sched.join tids;
  col.enabled <- false;
  snapshot_final ctx

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let default_fuel = 400_000

let verdict_of_run ctx (result : Sched.result) =
  match result.Sched.status with
  | Sched.Fuel_exhausted -> (History.Inconclusive "scheduler fuel exhausted", None)
  | Sched.Deadlock tids ->
      ( History.Inconclusive
          (Printf.sprintf "deadlock (%d threads blocked)" (List.length tids)),
        None )
  | Sched.Completed -> (
      match result.Sched.exns with
      | (tid, e) :: _ ->
          ( History.Anomalous
              (History.Exec_failure
                 (Printf.sprintf "thread %d raised %s" tid (Printexc.to_string e))),
            None )
      | [] -> (
          let h = finalize_history ctx.col in
          match ctx.clobbered with
          | Some a -> (History.Anomalous a, Some h)
          | None -> (History.check_at ctx.level ctx.prog h, Some h)))

let run ?policy ?(max_steps = default_fuel) ?tee ~cfg prog =
  let ctx =
    {
      col = create_collector ();
      prog;
      level = check_level cfg;
      cells = None;
      roots = None;
      clobbered = None;
    }
  in
  ctx.col.mv <- cfg.Config.versioning = Config.Mvcc;
  let sink =
    match tee with
    | None -> on_event ctx.col
    | Some f -> fun ev -> on_event ctx.col ev; f ev
  in
  Trace.set_sink ~level:Trace.Debug (Some sink);
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let result, _stats = Stm.run ?policy ~max_steps ~cfg (main ctx) in
      verdict_of_run ctx result)

(* ------------------------------------------------------------------ *)
(* Systematic exploration driver                                       *)
(* ------------------------------------------------------------------ *)

(* Reuses the litmus explorer's preemption-bounded DFS as the schedule
   source: each explored schedule re-executes the program, the observed
   outcome is the verdict's JSON rendering, and the search stops at the
   first anomalous outcome. *)

let anomalous_outcome s = String.length s > 0 && s.[0] = 'A'

let explore_make ~cfg ~first prog () =
    let ctx =
      {
        col = create_collector ();
        prog;
        level = check_level cfg;
        cells = None;
        roots = None;
        clobbered = None;
      }
    in
    ctx.col.mv <- cfg.Config.versioning = Config.Mvcc;
    Trace.set_sink ~level:Trace.Debug (Some (on_event ctx.col));
    {
      Stm_litmus.Explorer.main = main ctx;
      observe =
        (fun () ->
          match ctx.col.final with
          | None -> "inconclusive"
          | Some _ ->
              let h = finalize_history ctx.col in
              let v =
                match ctx.clobbered with
                | Some a -> History.Anomalous a
                | None -> History.check_at ctx.level prog h
              in
              (match v with
              | History.Anomalous _ when !first = None -> first := Some v
              | _ -> ());
              (* Prefix encodes the class so [stop_when] needs no parse. *)
              (match v with
              | History.Anomalous _ -> "A:"
              | History.Serializable -> "S:"
              | History.Inconclusive _ -> "I:")
              ^ Stm_obs.Json.to_string (History.verdict_to_json v));
  }

let explore ?preemption_bound ?max_runs ?(max_steps = 60_000) ~cfg prog =
  let first = ref None in
  let make = explore_make ~cfg ~first prog in
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let exploration =
        Stm_litmus.Explorer.explore ?preemption_bound ?max_runs ~max_steps
          ~stop_when:anomalous_outcome ~cfg ~make ()
      in
      (!first, exploration))

let explore_dpor ?preemption_bound ?max_runs ?(max_steps = 60_000) ~cfg prog =
  let first = ref None in
  let make = explore_make ~cfg ~first prog in
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let d =
        Stm_litmus.Explorer.explore_dpor ?preemption_bound ?max_runs ~max_steps
          ~stop_when:anomalous_outcome ~cfg ~make ()
      in
      (!first, d))
