(* Replayable counterexamples.

   A repro file pins everything an execution depends on - configuration
   combo, schedule driver (random-scheduler seed or explorer bounds),
   step budget, and the exact program - plus the verdict observed when
   it was recorded. Replaying re-runs the deterministic simulator and
   must reproduce the verdict bit for bit; [matches] compares the JSON
   renderings. *)

open Stm_obs

let format_tag = "stm-fuzz-repro"
let format_version = 1

type driver =
  | Random_sched of int  (* seed: Sched.Random schedule + cm_seed *)
  | Explore of { preemption_bound : int; max_runs : int }
  | Dpor of { preemption_bound : int; max_runs : int }

type t = {
  combo : Combo.t;
  profile : string;  (* informational: generator profile *)
  prog_seed : int option;  (* informational: generator seed, if any *)
  driver : driver;
  max_steps : int;
  prog : Prog.t;
  verdict : Json.t;  (* verdict as recorded, JSON form *)
}

let driver_to_json = function
  | Random_sched seed ->
      Json.Obj [ ("kind", Json.Str "random"); ("sched_seed", Json.Int seed) ]
  | Explore { preemption_bound; max_runs } ->
      Json.Obj
        [
          ("kind", Json.Str "explore");
          ("preemption_bound", Json.Int preemption_bound);
          ("max_runs", Json.Int max_runs);
        ]
  | Dpor { preemption_bound; max_runs } ->
      Json.Obj
        [
          ("kind", Json.Str "dpor");
          ("preemption_bound", Json.Int preemption_bound);
          ("max_runs", Json.Int max_runs);
        ]

let ( let* ) = Option.bind

let driver_of_json j =
  let* kind = Option.bind (Json.member "kind" j) Json.to_str_opt in
  match kind with
  | "random" ->
      let* seed = Option.bind (Json.member "sched_seed" j) Json.to_int_opt in
      Some (Random_sched seed)
  | "explore" ->
      let* pb = Option.bind (Json.member "preemption_bound" j) Json.to_int_opt in
      let* mr = Option.bind (Json.member "max_runs" j) Json.to_int_opt in
      Some (Explore { preemption_bound = pb; max_runs = mr })
  | "dpor" ->
      let* pb = Option.bind (Json.member "preemption_bound" j) Json.to_int_opt in
      let* mr = Option.bind (Json.member "max_runs" j) Json.to_int_opt in
      Some (Dpor { preemption_bound = pb; max_runs = mr })
  | _ -> None

let to_json t =
  Json.Obj
    [
      ("format", Json.Str format_tag);
      ("version", Json.Int format_version);
      ("combo", Combo.to_json t.combo);
      ("profile", Json.Str t.profile);
      ( "prog_seed",
        match t.prog_seed with None -> Json.Null | Some s -> Json.Int s );
      ("driver", driver_to_json t.driver);
      ("max_steps", Json.Int t.max_steps);
      ("prog", Prog.to_json t.prog);
      ("verdict", t.verdict);
    ]

let of_json j =
  let* tag = Option.bind (Json.member "format" j) Json.to_str_opt in
  if tag <> format_tag then None
  else
    let* version = Option.bind (Json.member "version" j) Json.to_int_opt in
    if version <> format_version then None
    else
      let* combo = Option.bind (Json.member "combo" j) Combo.of_json in
      let* profile = Option.bind (Json.member "profile" j) Json.to_str_opt in
      let prog_seed = Option.bind (Json.member "prog_seed" j) Json.to_int_opt in
      let* driver = Option.bind (Json.member "driver" j) driver_of_json in
      let* max_steps = Option.bind (Json.member "max_steps" j) Json.to_int_opt in
      let* prog = Option.bind (Json.member "prog" j) Prog.of_json in
      let* verdict = Json.member "verdict" j in
      Some { combo; profile; prog_seed; driver; max_steps; prog; verdict }

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> (
      match of_json j with
      | Some t -> Ok t
      | None -> Error "not a valid stm-fuzz-repro document")

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let run_driver ~combo ~driver ~max_steps prog =
  match driver with
  | Random_sched seed ->
      let cfg = Combo.to_config ~cm_seed:seed combo in
      fst (Exec.run ~policy:(Stm_runtime.Sched.Random seed) ~max_steps ~cfg prog)
  | Explore { preemption_bound; max_runs } -> (
      let cfg = Combo.to_config combo in
      match Exec.explore ~preemption_bound ~max_runs ~max_steps ~cfg prog with
      | Some v, _ -> v
      | None, _ -> History.Serializable)
  | Dpor { preemption_bound; max_runs } -> (
      let cfg = Combo.to_config combo in
      match Exec.explore_dpor ~preemption_bound ~max_runs ~max_steps ~cfg prog with
      | Some v, _ -> v
      | None, _ -> History.Serializable)

let replay t = run_driver ~combo:t.combo ~driver:t.driver ~max_steps:t.max_steps t.prog

let matches t verdict =
  Json.to_string t.verdict = Json.to_string (History.verdict_to_json verdict)
