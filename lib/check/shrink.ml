(* Greedy counterexample minimization.

   Candidates are tried in a fixed order - drop a whole thread, drop a
   step, drop an op inside an atomic block, demote an atomic singleton
   to a plain access (Mixed-style programs only produce those anyway),
   simplify a write expression, lower a cell/slot index - and the first
   candidate the [keep] predicate accepts restarts the scan. Every
   accepted candidate strictly decreases a well-founded measure
   (op count, then expression complexity, then index sum), so the loop
   terminates at a fixpoint: a program where no single simplification
   still fails. *)

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

let map_nth xs n f = List.mapi (fun i x -> if i = n then f x else x) xs

let with_threads p threads = { p with Prog.threads }

(* All one-step simplifications, lazily, cheapest-win first.
   [demote_atomic] enables the atomic-singleton -> plain-access pass;
   callers shrinking programs from a grammar without plain accesses
   (txn-only, handoff) turn it off so the minimized counterexample
   stays in the same program class - a plain access racing a
   transaction is anomalous under weak atomicity by design, and letting
   the shrinker introduce one could turn a genuine isolation bug into a
   benign expected-weakness witness. *)
let candidates ?(demote_atomic = true) (p : Prog.t) : Prog.t Seq.t =
  let nthreads = List.length p.Prog.threads in
  let seqs = ref [] in
  let add s = seqs := s :: !seqs in
  (* 6. index lowering: replace cell/slot index i by i-1 *)
  add
    (Seq.concat_map
       (fun (t, steps) ->
         Seq.concat_map
           (fun (si, step) ->
             let lower_op (op : Prog.op) =
               match op with
               | Prog.Read c when c > 0 -> Some (Prog.Read (c - 1))
               | Prog.Write (c, e) when c > 0 -> Some (Prog.Write (c - 1, e))
               | Prog.Box_read s when s > 0 -> Some (Prog.Box_read (s - 1))
               | Prog.Box_write s when s > 0 -> Some (Prog.Box_write (s - 1))
               | _ -> None
             in
             let with_step step' =
               with_threads p
                 (map_nth p.Prog.threads t (fun ss -> map_nth ss si (fun _ -> step')))
             in
             match step with
             | Prog.Atomic ops ->
                 Seq.filter_map
                   (fun (k, op) ->
                     Option.map
                       (fun op' -> with_step (Prog.Atomic (map_nth ops k (fun _ -> op'))))
                       (lower_op op))
                   (List.to_seq (List.mapi (fun k op -> (k, op)) ops))
             | Prog.Plain op ->
                 Seq.filter_map
                   (fun op' -> Some (with_step (Prog.Plain op')))
                   (Option.to_seq (lower_op op))
             | Prog.Publish s when s > 0 ->
                 Seq.return (with_step (Prog.Publish (s - 1)))
             | Prog.Privatize s when s > 0 ->
                 Seq.return (with_step (Prog.Privatize (s - 1)))
             | _ -> Seq.empty)
           (List.to_seq (List.mapi (fun si s -> (si, s)) steps)))
       (List.to_seq (List.mapi (fun t s -> (t, s)) p.Prog.threads)));
  (* 5. expression simplification: Tok_acc -> Tok *)
  add
    (Seq.concat_map
       (fun (t, steps) ->
         Seq.concat_map
           (fun (si, step) ->
             let simplify_ops ops rebuild =
               Seq.filter_map
                 (fun (k, op) ->
                   match (op : Prog.op) with
                   | Prog.Write (c, Prog.Tok_acc) ->
                       Some
                         (with_threads p
                            (map_nth p.Prog.threads t (fun ss ->
                                 map_nth ss si (fun _ ->
                                     rebuild
                                       (map_nth ops k (fun _ ->
                                            Prog.Write (c, Prog.Tok)))))))
                   | _ -> None)
                 (List.to_seq (List.mapi (fun k op -> (k, op)) ops))
             in
             match step with
             | Prog.Atomic ops -> simplify_ops ops (fun ops -> Prog.Atomic ops)
             | Prog.Plain op ->
                 simplify_ops [ op ] (function
                   | [ op ] -> Prog.Plain op
                   | _ -> assert false)
             | _ -> Seq.empty)
           (List.to_seq (List.mapi (fun si s -> (si, s)) steps)))
       (List.to_seq (List.mapi (fun t s -> (t, s)) p.Prog.threads)));
  (* 4. atomic singleton -> plain access *)
  add
    (if not demote_atomic then Seq.empty
     else
       Seq.concat_map
       (fun (t, steps) ->
         Seq.filter_map
           (fun (si, step) ->
             match (step : Prog.step) with
             | Prog.Atomic [ op ] ->
                 Some
                   (with_threads p
                      (map_nth p.Prog.threads t (fun ss ->
                           map_nth ss si (fun _ -> Prog.Plain op))))
             | _ -> None)
           (List.to_seq (List.mapi (fun si s -> (si, s)) steps)))
       (List.to_seq (List.mapi (fun t s -> (t, s)) p.Prog.threads)));
  (* 3. drop one op from an atomic block (keeping it non-empty) *)
  add
    (Seq.concat_map
       (fun (t, steps) ->
         Seq.concat_map
           (fun (si, step) ->
             match (step : Prog.step) with
             | Prog.Atomic ops when List.length ops > 1 ->
                 Seq.map
                   (fun k ->
                     with_threads p
                       (map_nth p.Prog.threads t (fun ss ->
                            map_nth ss si (fun _ -> Prog.Atomic (drop_nth ops k)))))
                   (Seq.init (List.length ops) Fun.id)
             | _ -> Seq.empty)
           (List.to_seq (List.mapi (fun si s -> (si, s)) steps)))
       (List.to_seq (List.mapi (fun t s -> (t, s)) p.Prog.threads)));
  (* 2. drop one step *)
  add
    (Seq.concat_map
       (fun (t, steps) ->
         if List.length steps <= 1 then Seq.empty
         else
           Seq.map
             (fun si -> with_threads p (map_nth p.Prog.threads t (fun ss -> drop_nth ss si)))
             (Seq.init (List.length steps) Fun.id))
       (List.to_seq (List.mapi (fun t s -> (t, s)) p.Prog.threads)));
  (* 1. drop a whole thread *)
  add
    (if nthreads <= 1 then Seq.empty
     else Seq.map (fun t -> with_threads p (drop_nth p.Prog.threads t)) (Seq.init nthreads Fun.id));
  (* [!seqs] holds the passes most-aggressive first (the last [add]
     pushed the thread-dropping pass). *)
  List.fold_right Seq.append !seqs Seq.empty

let minimize ?(max_attempts = 10_000) ?(demote_atomic = true) ~keep (p : Prog.t) =
  let attempts = ref 0 in
  let rec go p =
    let next =
      Seq.find_map
        (fun cand ->
          if !attempts >= max_attempts then None
          else begin
            incr attempts;
            if keep cand then Some cand else None
          end)
        (candidates ~demote_atomic p)
    in
    match next with Some p' -> go p' | None -> p
  in
  go p
