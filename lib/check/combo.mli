(** One point in the configuration space the fuzz sweep covers:
    versioning x isolation level x atomicity flavor x
    contention-management policy. *)

type atomicity =
  | Weak
  | Strong
  | Strong_dea  (** strong atomicity + dynamic escape analysis *)
  | Quiesce  (** weak barriers + commit-time quiescence *)

type t = {
  versioning : Stm_core.Config.versioning;
  isolation : Stm_core.Config.isolation;
      (** [Snapshot] is only meaningful with [Mvcc]; the single-version
          backends are always serializable *)
  validation : Stm_core.Config.validation;
      (** [Timestamp] is only meaningful with the single-version
          backends; mvcc ignores it *)
  atomicity : atomicity;
  cm : Stm_cm.Policy.t;
}

val name : t -> string
(** E.g. ["eager-weak/suicide"], ["mvcc-si-weak/suicide"],
    ["eager-ts-weak/suicide"] (timestamp validation). *)

val to_config : ?cm_seed:int -> t -> Stm_core.Config.t

val all : t list
(** The full sweep grid: {eager,lazy} x {weak,strong,dea,quiesce} x all
    contention-management policies (40 combos), plus the mvcc block:
    {serializable,snapshot} x {weak,strong,dea} x suicide (6 combos —
    mvcc transactions never contend for ownership, so the CM axis is
    degenerate there). *)

val timestamp_grid : t list
(** The timestamp-validation certification grid: {eager,lazy} x
    {weak,strong,dea,quiesce} x {suicide,wound-wait,timestamp} (24
    combos), every one expected serializable. Disjoint from {!all} so
    the default sweep artifacts are byte-identical to the seed. *)

val all_atomicities : atomicity list
val all_versionings : Stm_core.Config.versioning list
val atomicity_to_string : atomicity -> string
val atomicity_of_string : string -> atomicity option
val versioning_to_string : Stm_core.Config.versioning -> string
val versioning_of_string : string -> Stm_core.Config.versioning option
val to_json : t -> Stm_obs.Json.t
val of_json : Stm_obs.Json.t -> t option
