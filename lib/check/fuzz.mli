(** Differential fuzz sweep over the configuration grid.

    Pairs every configuration combo with the program profiles it is
    expected to keep serializable (see {!Gen.profile}), plus "hunt"
    campaigns on weak configurations where the paper's anomalies must be
    found and minimized — the oracle's positive control. *)

type expectation =
  | Expect_clean  (** any anomaly fails the campaign *)
  | Expect_anomaly  (** finding no anomaly fails the campaign *)

type driver_kind =
  | Drv_random  (** one random schedule per (program, seed) pair *)
  | Drv_explore  (** preemption-bounded DFS per program *)
  | Drv_dpor
      (** race-reduced DPOR walk per program, same bound as
          [Drv_explore] (see {!Stm_litmus.Explorer.explore_dpor}) *)

type budget = {
  programs : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  driver : driver_kind;
  preemption_bound : int;
  max_runs : int;
}

val default_budget : budget

type campaign = {
  combo : Combo.t;
  profile : Gen.profile;
  expectation : expectation;
  driver : driver_kind option;
      (** per-campaign override of the budget's schedule driver (the
          handoff hunts use the DPOR explorer: the privatization window
          is too narrow for random sampling) *)
}

type campaign_result = {
  campaign : campaign;
  runs : int;
  anomalies : int;
  inconclusive : int;
  repro : Repro.t option;  (** first counterexample, minimized *)
  shrink_steps : int;  (** ops removed by shrinking *)
  ok : bool;
}

val profiles_for : Combo.atomicity -> Gen.profile list
(** The profiles a configuration flavor is expected to keep clean. *)

val clean_campaigns : campaign list
val hunt_campaigns : campaign list
val default_plan : campaign list

val timestamp_campaigns : campaign list
(** Expect-clean campaigns over {!Combo.timestamp_grid} (every profile
    the flavor admits — the timestamp-validation certification sweep). *)

val timestamp_plan : campaign list
(** The plan behind [stm_bench --fuzz --validation timestamp]. *)

val campaign_name : campaign -> string

val set_anomaly_hook : (string -> unit) option -> unit
(** Install (or clear) a callback fired the moment an [Expect_clean]
    campaign observes an anomalous history — before shrinking re-runs
    the program and scrolls recent state away. The argument names the
    campaign, the program seed, and the schedule seed. The diagnosis
    layer uses it to freeze a flight-recorder incident
    ({!Stm_diag.Diag.force_incident}); hunt campaigns, which find
    anomalies by design, never fire it. *)

val run_campaign : ?log:(string -> unit) -> budget -> campaign -> campaign_result
(** Fuzz one campaign. On the first anomaly the failing program is
    shrunk to a fixpoint (re-running the same deterministic driver as
    the [keep] predicate) and packaged as a {!Repro.t}. Hunt campaigns
    stop at the first witness. *)

val sweep : ?log:(string -> unit) -> ?plan:campaign list -> budget -> campaign_result list
val passed : campaign_result list -> bool
val result_to_json : campaign_result -> Stm_obs.Json.t
val summary_json : budget -> campaign_result list -> Stm_obs.Json.t

(** {1 Cross-backend differential sweep} *)

val backend_grid : Combo.t list
(** One weak/suicide combo per backend — eager, lazy, mvcc — certified
    serializable, plus mvcc at snapshot isolation. *)

val timestamp_backend_grid : Combo.t list
(** {!backend_grid} plus eager/lazy under timestamp validation: the
    same programs and schedules across both validation schemes; any
    divergence fails timestamp certification. *)

type divergence = {
  div_prog_seed : int;
  div_sched_seed : int;
  div_verdicts : (string * History.verdict) list;
      (** combo name -> certified verdict, one entry per grid member *)
  div_repros : Repro.t list;  (** one replayable repro per anomalous member *)
}

type differential_result = {
  diff_combos : Combo.t list;
  diff_programs : int;
  diff_executions : int;
  divergences : divergence list;
}

val run_differential :
  ?log:(string -> unit) -> ?combos:Combo.t list -> budget -> differential_result
(** Run the same seeded txn-only programs, under the same schedule
    seeds, on every combo in the grid, certifying each at its own
    isolation level. Every member must come back clean; an anomalous
    member is recorded as a divergence with a replayable repro. *)

val differential_passed : differential_result -> bool
val differential_to_json : differential_result -> Stm_obs.Json.t
