(* Differential fuzz sweep.

   A campaign fuzzes one (combo, profile) pair with a seed budget; the
   sweep plan pairs every combo in the grid with the profiles it is
   expected to keep serializable, plus a few "hunt" campaigns on weak
   configurations that are expected to exhibit the paper's anomalies
   (the fuzzer must find and minimize at least one counterexample
   there - that is the oracle's positive control).

   Expectation table (see docs/TESTING.md):
   - txn-only programs: serializable under every configuration;
   - mixed programs: serializable only under strong atomicity;
   - handoff programs: serializable under strong atomicity and under
     weak atomicity + commit-time quiescence. *)

open Stm_obs

type expectation = Expect_clean | Expect_anomaly

type driver_kind = Drv_random | Drv_explore | Drv_dpor

type budget = {
  programs : int;  (* generated programs per campaign *)
  seeds : int;  (* schedules per program (random driver) *)
  base_seed : int;
  max_steps : int;  (* scheduler fuel per execution *)
  driver : driver_kind;
  preemption_bound : int;  (* explorer driver only *)
  max_runs : int;  (* explorer driver only *)
}

let default_budget =
  {
    programs = 30;
    seeds = 3;
    base_seed = 1;
    max_steps = Exec.default_fuel;
    driver = Drv_random;
    preemption_bound = 2;
    max_runs = 2_000;
  }

type campaign = {
  combo : Combo.t;
  profile : Gen.profile;
  expectation : expectation;
  driver : driver_kind option;  (* None = the budget's driver *)
}

type campaign_result = {
  campaign : campaign;
  runs : int;
  anomalies : int;
  inconclusive : int;
  repro : Repro.t option;  (* first counterexample, minimized *)
  shrink_steps : int;  (* original op count - minimized op count *)
  ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)
(* ------------------------------------------------------------------ *)

let profiles_for (a : Combo.atomicity) =
  match a with
  | Combo.Weak -> [ Gen.Txn_only ]
  | Combo.Strong | Combo.Strong_dea -> [ Gen.Txn_only; Gen.Mixed; Gen.Handoff ]
  | Combo.Quiesce -> [ Gen.Txn_only; Gen.Handoff ]

let clean_campaigns =
  List.concat_map
    (fun combo ->
      List.map
        (fun profile -> { combo; profile; expectation = Expect_clean; driver = None })
        (profiles_for combo.Combo.atomicity))
    Combo.all

(* Positive controls: weak configurations where the paper's anomalies
   must be found (dirty/non-repeatable reads and lost updates for mixed
   programs; the figure-1 privatization race for handoff programs).
   The privatization window is a few scheduler steps wide, so the
   handoff hunts drive schedules systematically instead of random
   sampling — through the race-reduced DPOR walk, which reaches the
   witness in a fraction of the enumerative DFS's runs at the same
   preemption bound. *)
let hunt_campaigns =
  let mk versioning profile driver =
    {
      combo =
        {
          Combo.versioning;
          isolation = Stm_core.Config.Serializable;
          validation = Stm_core.Config.Incremental;
          atomicity = Combo.Weak;
          cm = Stm_cm.Policy.Suicide;
        };
      profile;
      expectation = Expect_anomaly;
      driver;
    }
  in
  [
    mk Stm_core.Config.Eager Gen.Mixed None;
    mk Stm_core.Config.Eager Gen.Handoff (Some Drv_dpor);
    mk Stm_core.Config.Lazy Gen.Mixed None;
    mk Stm_core.Config.Lazy Gen.Handoff (Some Drv_dpor);
    (* weak mvcc: non-transactional writes bypass the version chains, so
       mixed programs must exhibit anomalies just like the other weak
       backends. The window is a single plain store landing between a
       snapshot read and the scheduler-atomic commit, too narrow for
       random sampling - use the explorer, as the handoff hunts do. *)
    mk Stm_core.Config.Mvcc Gen.Mixed (Some Drv_dpor);
  ]

let default_plan = clean_campaigns @ hunt_campaigns

(* Expect-clean campaigns over the timestamp-validation grid: every
   combo point under every program profile its atomicity flavor admits.
   A separate plan (selected by `stm_bench --fuzz --validation
   timestamp`) so the default plan's artifacts stay byte-identical. *)
let timestamp_campaigns =
  List.concat_map
    (fun combo ->
      List.map
        (fun profile ->
          { combo; profile; expectation = Expect_clean; driver = None })
        (profiles_for combo.Combo.atomicity))
    Combo.timestamp_grid

let timestamp_plan = timestamp_campaigns

let campaign_name c =
  Printf.sprintf "%s:%s%s" (Combo.name c.combo)
    (Gen.profile_to_string c.profile)
    (match c.expectation with Expect_clean -> "" | Expect_anomaly -> ":hunt")

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

let prog_size (p : Prog.t) =
  List.fold_left
    (fun acc steps ->
      List.fold_left
        (fun acc step ->
          acc
          + match (step : Prog.step) with Prog.Atomic ops -> List.length ops | _ -> 1)
        acc steps)
    0 p.Prog.threads

let driver_of budget kind sched_seed =
  match kind with
  | Drv_random -> Repro.Random_sched sched_seed
  | Drv_explore ->
      Repro.Explore
        { preemption_bound = budget.preemption_bound; max_runs = budget.max_runs }
  | Drv_dpor ->
      Repro.Dpor
        { preemption_bound = budget.preemption_bound; max_runs = budget.max_runs }

let make_repro campaign budget ~kind ~prog_seed ~sched_seed prog verdict =
  {
    Repro.combo = campaign.combo;
    profile = Gen.profile_to_string campaign.profile;
    prog_seed = Some prog_seed;
    driver = driver_of budget kind sched_seed;
    max_steps = budget.max_steps;
    prog;
    verdict = History.verdict_to_json verdict;
  }

(* External anomaly notification: lets an observer (the diagnosis
   flight recorder) freeze its state at the moment the oracle flags an
   unexpected history - before shrinking re-runs the program dozens of
   times and scrolls the interesting window away. Only unexpected
   anomalies (an [Expect_clean] campaign turning up Anomalous) fire the
   hook; hunt campaigns find anomalies by design. *)
let anomaly_hook : (string -> unit) option ref = ref None
let set_anomaly_hook f = anomaly_hook := f

let notify_anomaly msg =
  match !anomaly_hook with Some f -> f msg | None -> ()

let run_campaign ?(log = fun (_ : string) -> ()) budget campaign =
  let combo = campaign.combo in
  let kind =
    Option.value campaign.driver ~default:(budget : budget).driver
  in
  let gcfg = Gen.default campaign.profile in
  let runs = ref 0 and anomalies = ref 0 and inconclusive = ref 0 in
  let repro = ref None and shrink_steps = ref 0 in
  let nseeds =
    match kind with Drv_random -> budget.seeds | Drv_explore | Drv_dpor -> 1
  in
  (try
     for p = 0 to budget.programs - 1 do
       let prog_seed = budget.base_seed + p in
       let prog = Gen.generate gcfg ~seed:prog_seed in
       for s = 0 to nseeds - 1 do
         let sched_seed = ((budget.base_seed + p) * 8191) + s in
         let driver = driver_of budget kind sched_seed in
         let verdict =
           Repro.run_driver ~combo ~driver ~max_steps:budget.max_steps prog
         in
         incr runs;
         (match verdict with
         | History.Inconclusive _ -> incr inconclusive
         | History.Serializable -> ()
         | History.Anomalous _ ->
             incr anomalies;
             if campaign.expectation = Expect_clean then
               notify_anomaly
                 (Printf.sprintf "%s: unexpected anomaly on program %d schedule %d"
                    (campaign_name campaign) prog_seed sched_seed);
             if !repro = None then begin
               log
                 (Printf.sprintf "%s: anomaly on program %d schedule %d, shrinking"
                    (campaign_name campaign) prog_seed sched_seed);
               let keep q =
                 History.is_anomalous
                   (Repro.run_driver ~combo ~driver ~max_steps:budget.max_steps q)
               in
               let demote_atomic = campaign.profile = Gen.Mixed in
               let small = Shrink.minimize ~demote_atomic ~keep prog in
               shrink_steps := prog_size prog - prog_size small;
               let verdict' =
                 Repro.run_driver ~combo ~driver ~max_steps:budget.max_steps small
               in
               repro :=
                 Some
                   (make_repro campaign budget ~kind ~prog_seed ~sched_seed small
                      verdict')
             end);
         (* A hunt campaign only needs one witness. *)
         if campaign.expectation = Expect_anomaly && !repro <> None then raise Exit
       done
     done
   with Exit -> ());
  let ok =
    match campaign.expectation with
    | Expect_clean -> !anomalies = 0
    | Expect_anomaly -> !anomalies > 0
  in
  {
    campaign;
    runs = !runs;
    anomalies = !anomalies;
    inconclusive = !inconclusive;
    repro = !repro;
    shrink_steps = !shrink_steps;
    ok;
  }

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep ?log ?(plan = default_plan) budget =
  List.map (fun c -> run_campaign ?log budget c) plan

let passed results = List.for_all (fun r -> r.ok) results

(* ------------------------------------------------------------------ *)
(* Cross-backend differential sweep                                    *)
(* ------------------------------------------------------------------ *)

(* Run the same seeded programs, under the same schedule seeds, on every
   backend, each certified at its own isolation level. Txn-only programs
   must come back clean everywhere - eager and lazy are serializable by
   protocol, mvcc+serializable by commit-time read validation, and
   mvcc+snapshot may only diverge from serializability in ways the SI
   contract admits. Any anomalous member is a reportable divergence and
   carries a replayable repro. *)

let backend_grid =
  List.map
    (fun versioning ->
      {
        Combo.versioning;
        isolation = Stm_core.Config.Serializable;
        validation = Stm_core.Config.Incremental;
        atomicity = Combo.Weak;
        cm = Stm_cm.Policy.Suicide;
      })
    Combo.all_versionings
  @ [
      {
        Combo.versioning = Stm_core.Config.Mvcc;
        isolation = Stm_core.Config.Snapshot;
        validation = Stm_core.Config.Incremental;
        atomicity = Combo.Weak;
        cm = Stm_cm.Policy.Suicide;
      };
    ]

(* The differential grid for timestamp certification: both validation
   schemes of both single-version backends side by side with the mvcc
   members, on the same seeded programs and schedules. Zero divergence
   here is the cross-scheme acceptance bar for timestamp mode. *)
let timestamp_backend_grid =
  backend_grid
  @ List.map
      (fun versioning ->
        {
          Combo.versioning;
          isolation = Stm_core.Config.Serializable;
          validation = Stm_core.Config.Timestamp;
          atomicity = Combo.Weak;
          cm = Stm_cm.Policy.Suicide;
        })
      [ Stm_core.Config.Eager; Stm_core.Config.Lazy ]

type divergence = {
  div_prog_seed : int;
  div_sched_seed : int;
  div_verdicts : (string * History.verdict) list;  (* combo name -> verdict *)
  div_repros : Repro.t list;  (* one per anomalous member *)
}

type differential_result = {
  diff_combos : Combo.t list;
  diff_programs : int;
  diff_executions : int;
  divergences : divergence list;
}

let run_differential ?(log = fun (_ : string) -> ()) ?(combos = backend_grid)
    budget =
  let divergences = ref [] in
  let executions = ref 0 in
  let gcfg = Gen.default Gen.Txn_only in
  for p = 0 to budget.programs - 1 do
    let prog_seed = budget.base_seed + p in
    let prog = Gen.generate gcfg ~seed:prog_seed in
    for s = 0 to budget.seeds - 1 do
      let sched_seed = (prog_seed * 8191) + s in
      let driver = Repro.Random_sched sched_seed in
      let verdicts =
        List.map
          (fun combo ->
            incr executions;
            (combo, Repro.run_driver ~combo ~driver ~max_steps:budget.max_steps prog))
          combos
      in
      let anomalous = List.filter (fun (_, v) -> History.is_anomalous v) verdicts in
      if anomalous <> [] then begin
        log
          (Printf.sprintf
             "differential: backends diverge on program %d schedule %d (%s)"
             prog_seed sched_seed
             (String.concat ", "
                (List.map (fun (c, _) -> Combo.name c) anomalous)));
        let repros =
          List.map
            (fun (combo, v) ->
              {
                Repro.combo;
                profile = Gen.profile_to_string Gen.Txn_only;
                prog_seed = Some prog_seed;
                driver;
                max_steps = budget.max_steps;
                prog;
                verdict = History.verdict_to_json v;
              })
            anomalous
        in
        divergences :=
          {
            div_prog_seed = prog_seed;
            div_sched_seed = sched_seed;
            div_verdicts = List.map (fun (c, v) -> (Combo.name c, v)) verdicts;
            div_repros = repros;
          }
          :: !divergences
      end
    done
  done;
  {
    diff_combos = combos;
    diff_programs = budget.programs;
    diff_executions = !executions;
    divergences = List.rev !divergences;
  }

let differential_passed r = r.divergences = []

let divergence_to_json d =
  Json.Obj
    [
      ("prog_seed", Json.Int d.div_prog_seed);
      ("sched_seed", Json.Int d.div_sched_seed);
      ( "verdicts",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, History.verdict_to_json v))
             d.div_verdicts) );
      ("repros", Json.List (List.map Repro.to_json d.div_repros));
    ]

let differential_to_json r =
  Json.Obj
    [
      ("combos", Json.List (List.map Combo.to_json r.diff_combos));
      ("programs", Json.Int r.diff_programs);
      ("executions", Json.Int r.diff_executions);
      ("divergences", Json.List (List.map divergence_to_json r.divergences));
      ("passed", Json.Bool (differential_passed r));
    ]

let result_to_json r =
  Json.Obj
    [
      ("campaign", Json.Str (campaign_name r.campaign));
      ("combo", Combo.to_json r.campaign.combo);
      ("profile", Json.Str (Gen.profile_to_string r.campaign.profile));
      ( "expectation",
        Json.Str
          (match r.campaign.expectation with
          | Expect_clean -> "clean"
          | Expect_anomaly -> "anomaly") );
      ("runs", Json.Int r.runs);
      ("anomalies", Json.Int r.anomalies);
      ("inconclusive", Json.Int r.inconclusive);
      ("shrink_steps", Json.Int r.shrink_steps);
      ("ok", Json.Bool r.ok);
      ("repro", match r.repro with None -> Json.Null | Some rp -> Repro.to_json rp);
    ]

let summary_json budget results =
  Json.Obj
    [
      ( "budget",
        Json.Obj
          [
            ("programs", Json.Int budget.programs);
            ("seeds", Json.Int budget.seeds);
            ("base_seed", Json.Int budget.base_seed);
            ("max_steps", Json.Int budget.max_steps);
            ( "driver",
              Json.Str
                (match budget.driver with
                | Drv_random -> "random"
                | Drv_explore -> "explore"
                | Drv_dpor -> "dpor") );
          ] );
      ("campaigns", Json.Int (List.length results));
      ("runs", Json.Int (List.fold_left (fun a r -> a + r.runs) 0 results));
      ( "anomalies",
        Json.Int (List.fold_left (fun a r -> a + r.anomalies) 0 results) );
      ( "failed",
        Json.List
          (List.filter_map
             (fun r -> if r.ok then None else Some (result_to_json r))
             results) );
      ("passed", Json.Bool (passed results));
    ]
