(** Seeded random generator of fuzz programs.

    [(gcfg, seed)] determines the program exactly (all randomness flows
    through {!Stm_runtime.Det_rng}), which is what makes counterexamples
    replayable from their seeds alone. *)

type profile =
  | Txn_only  (** transactions only — serializable under every config *)
  | Mixed
      (** transactions racing plain non-transactional accesses to the
          same cells — clean only under strong atomicity *)
  | Handoff
      (** transactions plus publish/privatize handoffs; the only
          non-transactional traffic is to objects the thread just
          privatized (or has not yet published) — clean under strong
          atomicity and under commit-time quiescence *)

val profile_to_string : profile -> string
val profile_of_string : string -> profile option

type gcfg = {
  profile : profile;
  min_threads : int;
  max_threads : int;
  max_steps : int;  (** per-thread step count upper bound *)
  max_ops : int;  (** per-transaction op count upper bound *)
  ncells : int;
  nslots : int;
}

val default : profile -> gcfg

val generate : gcfg -> seed:int -> Prog.t
(** Deterministic in [(gcfg, seed)]. *)
