(** Per-thread progress accounting for fairness and starvation analysis.

    Fed from transaction commit/abort events; queried by the stress
    harness (starvation verdicts) and the metrics exporter (Jain index,
    per-thread counters). *)

type t

val create : unit -> t
val on_commit : t -> tid:int -> unit

val on_abort : t -> tid:int -> wasted:int -> unit
(** [wasted] is the cycle latency of the aborted attempt — work thrown
    away. Negative values are clamped to 0. *)

val threads : t -> int list
(** Thread ids seen so far, sorted. *)

val commits : t -> tid:int -> int
val aborts : t -> tid:int -> int
val max_consec_aborts_of : t -> tid:int -> int
val wasted_cycles : t -> tid:int -> int

val max_consec_aborts : t -> int
(** Worst consecutive-abort streak across all threads. *)

val total_commits : t -> int
val total_aborts : t -> int

val jain : t -> float
(** Jain's fairness index over per-thread commit counts:
    [(sum x)^2 / (n * sum x^2)]. [1.0] is perfectly fair, [1/n] means a
    single thread got everything; [1.0] by convention when no thread has
    committed. *)

val starved : t -> threshold:int -> int list
(** Threads whose worst streak reached [threshold] consecutive aborts,
    or that aborted at least once without ever committing. Sorted. *)

val copy : t -> t

val sub : t -> t -> t
(** [sub later earlier]: per-thread activity between two snapshots.
    Commit/abort/wasted counts subtract; consecutive-abort maxima cannot
    be recomputed for a window, so the later snapshot's values are kept
    (an upper bound). *)

val to_assoc : t -> (int * (string * int) list) list
(** Per-thread counters in a JSON-friendly shape, sorted by thread id. *)

val pp : Format.formatter -> t -> unit
