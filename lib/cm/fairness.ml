(* Per-thread progress accounting. Fed from commit/abort events (by the
   core's stats hook or by the obs layer replaying a trace), queried by
   the stress harness and the metrics exporter. *)

type entry = {
  mutable commits : int;
  mutable aborts : int;
  mutable consec_aborts : int;
  mutable max_consec_aborts : int;
  mutable wasted_cycles : int;
}

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 8 }

let entry t tid =
  match Hashtbl.find_opt t.entries tid with
  | Some e -> e
  | None ->
      let e =
        {
          commits = 0;
          aborts = 0;
          consec_aborts = 0;
          max_consec_aborts = 0;
          wasted_cycles = 0;
        }
      in
      Hashtbl.replace t.entries tid e;
      e

let on_commit t ~tid =
  let e = entry t tid in
  e.commits <- e.commits + 1;
  e.consec_aborts <- 0

let on_abort t ~tid ~wasted =
  let e = entry t tid in
  e.aborts <- e.aborts + 1;
  e.consec_aborts <- e.consec_aborts + 1;
  if e.consec_aborts > e.max_consec_aborts then
    e.max_consec_aborts <- e.consec_aborts;
  e.wasted_cycles <- e.wasted_cycles + max 0 wasted

let threads t =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) t.entries [] |> List.sort compare

let commits t ~tid = match Hashtbl.find_opt t.entries tid with Some e -> e.commits | None -> 0
let aborts t ~tid = match Hashtbl.find_opt t.entries tid with Some e -> e.aborts | None -> 0

let max_consec_aborts_of t ~tid =
  match Hashtbl.find_opt t.entries tid with
  | Some e -> e.max_consec_aborts
  | None -> 0

let wasted_cycles t ~tid =
  match Hashtbl.find_opt t.entries tid with Some e -> e.wasted_cycles | None -> 0

let max_consec_aborts t =
  Hashtbl.fold (fun _ e acc -> max acc e.max_consec_aborts) t.entries 0

let total_commits t = Hashtbl.fold (fun _ e acc -> acc + e.commits) t.entries 0
let total_aborts t = Hashtbl.fold (fun _ e acc -> acc + e.aborts) t.entries 0

(* Jain's fairness index over per-thread commit counts:
   (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair, 1/n = one thread got
   everything. 1.0 by convention when nothing committed anywhere. *)
let jain t =
  let n = Hashtbl.length t.entries in
  if n = 0 then 1.0
  else
    let sum, sumsq =
      Hashtbl.fold
        (fun _ e (s, s2) ->
          let x = float_of_int e.commits in
          (s +. x, s2 +. (x *. x)))
        t.entries (0.0, 0.0)
    in
    if sumsq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sumsq)

(* A thread is starved when it keeps losing: it exceeded the
   consecutive-abort threshold, or it aborted at least once and never
   managed a single commit. *)
let starved t ~threshold =
  Hashtbl.fold
    (fun tid e acc ->
      if e.max_consec_aborts >= threshold || (e.aborts > 0 && e.commits = 0)
      then tid :: acc
      else acc)
    t.entries []
  |> List.sort compare

let copy t =
  let c = create () in
  Hashtbl.iter
    (fun tid e -> Hashtbl.replace c.entries tid { e with commits = e.commits })
    t.entries;
  c

(* Counts subtract cleanly; streak maxima cannot be windowed after the
   fact, so [sub] keeps the later snapshot's values (an upper bound for
   the window). *)
let sub later earlier =
  let r = copy later in
  Hashtbl.iter
    (fun tid e ->
      let re = entry r tid in
      re.commits <- re.commits - e.commits;
      re.aborts <- re.aborts - e.aborts;
      re.wasted_cycles <- re.wasted_cycles - e.wasted_cycles)
    earlier.entries;
  r

let to_assoc t =
  threads t
  |> List.map (fun tid ->
         let e = entry t tid in
         ( tid,
           [
             ("commits", e.commits);
             ("aborts", e.aborts);
             ("max_consec_aborts", e.max_consec_aborts);
             ("wasted_cycles", e.wasted_cycles);
           ] ))

let pp ppf t =
  Fmt.pf ppf "@[<v>jain=%.4f max_consec_aborts=%d@," (jain t)
    (max_consec_aborts t);
  List.iter
    (fun (tid, fields) ->
      Fmt.pf ppf "  t%d: %a@," tid
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
        fields)
    (to_assoc t);
  Fmt.pf ppf "@]"
