(** Contention manager: per-transaction priority state and the decision
    procedure applied at every ownership conflict.

    The manager is independent of the STM core. It models a transaction as
    an {e atomic block} that may run through several incarnations (txids):
    the block's contention state — its birth timestamp, banked karma, and
    its backoff generator — survives aborts and is only discarded when the
    block commits or its thread gives up for good. This persistence is what
    makes {!Policy.Timestamp} starvation-free and {!Policy.Karma}
    work-conserving.

    The core drives the manager through four hooks ([on_begin],
    [on_conflict], [on_abort], [on_commit]) and acts on the returned
    {!decision}; the manager never touches the heap, the scheduler, or the
    trace stream itself. *)

type t

type decision =
  | Wait of int
      (** Back off for this many cycles, then retry the access. *)
  | Wound of { victim : int; delay : int }
      (** Mark the owning transaction [victim] (a txid) as killed, then
          back off [delay] cycles and retry. *)
  | Abort_self  (** Abort the asking transaction immediately. *)

type conflict = {
  txid : int;  (** asking transaction *)
  tid : int;  (** its scheduler thread *)
  attempt : int;  (** consecutive failures for this access so far *)
  writer : bool;  (** open-for-write vs. open-for-read *)
  work : int;  (** current read+write-set footprint of the asker *)
  owner : int option;
      (** owning txid, or [None] when the record is held anonymously
          (a non-transactional barrier or a quiescing txn) *)
  now : int;  (** asking thread's cost clock *)
}

val create : ?seed:int -> max_retries:int -> cost:Stm_runtime.Cost.t -> Policy.t -> t
(** [max_retries] is the per-access attempt budget after which
    self-abort is chosen (except for the oldest transaction under
    {!Policy.Timestamp}, which never gives up). [seed] fixes the
    randomized-backoff streams. *)

val policy : t -> Policy.t
val name : t -> string

val on_begin : t -> tid:int -> txid:int -> now:int -> unit
(** Called at transaction begin. If the thread's most recent block
    aborted with [restart:true], the new incarnation inherits that
    block's slot (birth, karma, rng); otherwise a fresh slot is
    created with birth [now]. *)

val on_conflict : t -> conflict -> decision

val on_abort : t -> txid:int -> restart:bool -> wounded:bool -> work:int -> unit
(** [restart] is true when the enclosing atomic block will be retried
    (the slot survives); false when it is torn down for good (an escaping
    exception or a starved runner) and the slot is discarded. [wounded]
    records that this incarnation was killed by another transaction —
    its next restart is deferred so the wounder wins the race for the
    contested record. Lost [work] is banked as karma either way. *)

val on_commit : t -> txid:int -> unit

val tid_of : t -> txid:int -> int option
(** The scheduler thread running [txid]'s atomic block, while the block
    is live (between its [on_begin] and its [on_commit] / final
    [on_abort]). The core uses it to stamp abort events with the
    aggressor's thread for the {!Stm_diag} causality graph. *)

val restart_delay : t -> tid:int -> attempt:int -> int
(** Backoff charged between a conflict-driven abort and the block's next
    incarnation, on the same schedule the policy uses in-transaction.
    After a wound-caused abort the delay includes a step-aside deferral
    sized past the wounder's longest poll interval, so the victim cannot
    re-acquire the contested record first and thrash. *)

val backoff_delay : Stm_runtime.Cost.t -> attempt:int -> int
(** Deterministic truncated-exponential schedule:
    [min (base * 2^attempt) cap] (exponent clamped at 16). *)

val jittered_delay : Stm_runtime.Cost.t -> tid:int -> attempt:int -> int
(** {!backoff_delay} salted with a per-thread jitter so symmetric
    contenders do not re-collide in lockstep. *)

val string_of_decision : decision -> string
(** ["wait"], ["wound"], or ["abort-self"] — used in trace events. *)
