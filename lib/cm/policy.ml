type t = Suicide | Wound_wait | Exp_backoff | Karma | Timestamp

let all = [ Suicide; Wound_wait; Exp_backoff; Karma; Timestamp ]

let to_string = function
  | Suicide -> "suicide"
  | Wound_wait -> "wound-wait"
  | Exp_backoff -> "exp-backoff"
  | Karma -> "karma"
  | Timestamp -> "timestamp"

let of_string = function
  | "suicide" -> Some Suicide
  | "wound-wait" | "wound_wait" | "woundwait" -> Some Wound_wait
  | "exp-backoff" | "exp_backoff" | "expbackoff" -> Some Exp_backoff
  | "karma" -> Some Karma
  | "timestamp" | "greedy" -> Some Timestamp
  | _ -> None

(* Suicide's conflict decision reads only the asker's own retry budget
   and a (tid, attempt)-jittered delay — never the txid, the owner's
   identity, or any cross-transaction policy state — so neither the
   order in which txids are handed out nor the order in which conflicts
   reach the manager can change any decision. Every other policy
   compares ages, priorities, or banked work across transactions. *)
let order_sensitive = function
  | Suicide -> false
  | Wound_wait | Exp_backoff | Karma | Timestamp -> true

let describe = function
  | Suicide ->
      "back off with deterministic jitter, abort self after the retry budget \
       (the McRT default)"
  | Wound_wait ->
      "older transaction kills a younger owner; younger backs off behind an \
       older owner (deadlock-free by construction)"
  | Exp_backoff ->
      "randomized exponential backoff on the cost clock; abort self after \
       the retry budget"
  | Karma ->
      "work-based priority: aborted work is banked, richer transaction \
       wounds poorer owner"
  | Timestamp ->
      "greedy age-based: birth timestamp survives restarts, the oldest \
       transaction never loses (starvation-free)"

let pp ppf p = Fmt.string ppf (to_string p)
