open Stm_runtime

(* The contention manager proper: per-transaction priority state plus the
   decision procedure each policy applies at a conflict. The manager is
   deliberately independent of the STM core - it sees transactions only
   as (tid, txid, clock) triples plus the work counters the core feeds
   it - so the core can depend on it without a cycle, and policies can be
   unit-tested without a heap or a scheduler. *)

type decision =
  | Wait of int  (* back off this many cycles, then retry the access *)
  | Wound of { victim : int; delay : int }
      (* kill the owning transaction, then back off and retry *)
  | Abort_self

type conflict = {
  txid : int;
  tid : int;
  attempt : int;  (* failures so far for this access *)
  writer : bool;
  work : int;  (* read/write-set footprint of the asking transaction *)
  owner : int option;  (* owning txid; None for anonymous (non-txn) owners *)
  now : int;  (* asking thread's cost clock *)
}

(* One atomic block's contention state. A slot is created at the first
   [on_begin] of a block and survives aborts until the block commits (or
   its thread gives up), so age and banked work persist across restarts -
   the property that makes Timestamp starvation-free and Karma
   work-conserving. *)
type slot = {
  s_tid : int;
  mutable s_txid : int;  (* current incarnation *)
  s_first_txid : int;  (* stable across restarts; age tie-break *)
  s_birth : int;  (* cost clock at the first incarnation *)
  mutable s_karma : int;  (* work banked from aborted incarnations *)
  mutable s_work : int;  (* footprint of the current incarnation *)
  mutable s_active : bool;
  mutable s_wounded : bool;  (* last incarnation died of a wound *)
  s_rng : Det_rng.t;
}

type t = {
  policy : Policy.t;
  max_retries : int;
  cost : Cost.t;
  by_txid : (int, slot) Hashtbl.t;
  stacks : (int, slot list) Hashtbl.t;  (* tid -> active blocks, innermost first *)
  rng : Det_rng.t;  (* seeds per-slot generators deterministically *)
}

let create ?(seed = 0) ~max_retries ~cost policy =
  {
    policy;
    max_retries;
    cost;
    by_txid = Hashtbl.create 32;
    stacks = Hashtbl.create 8;
    rng = Det_rng.create seed;
  }

let policy t = t.policy
let name t = Policy.to_string t.policy

(* ------------------------------------------------------------------ *)
(* Backoff schedules                                                   *)
(* ------------------------------------------------------------------ *)

let backoff_delay (cost : Cost.t) ~attempt =
  let shift = min attempt 16 in
  min (cost.backoff_base * (1 lsl shift)) (max cost.backoff_base cost.backoff_cap)

(* Deterministic per-thread jitter: symmetric contenders that back off by
   identical delays re-collide in lockstep forever (the classic livelock
   randomized backoff prevents); salting the delay with the thread id
   breaks the symmetry while keeping runs reproducible. *)
let jittered_delay cost ~tid ~attempt =
  let d = backoff_delay cost ~attempt in
  d + (d * (tid land 7) / 8) + tid

(* Randomized exponential backoff: uniform in [1, 2^attempt * base],
   capped. Reproducible because the slot's generator is seeded from the
   manager seed and the thread id. *)
let randomized_delay t (slot : slot) ~attempt =
  let bound = max 1 (backoff_delay t.cost ~attempt) in
  1 + Det_rng.int slot.s_rng bound

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let stack t tid = Option.value ~default:[] (Hashtbl.find_opt t.stacks tid)

let fresh_slot t ~tid ~txid ~now =
  {
    s_tid = tid;
    s_txid = txid;
    s_first_txid = txid;
    s_birth = now;
    s_karma = 0;
    s_work = 0;
    s_active = true;
    s_wounded = false;
    s_rng = Det_rng.create (((tid + 1) * 0x9E3779B9) lxor Det_rng.next t.rng);
  }

let on_begin t ~tid ~txid ~now =
  let push slot rest =
    Hashtbl.replace t.stacks tid (slot :: rest);
    Hashtbl.replace t.by_txid txid slot
  in
  match stack t tid with
  | top :: _ when not top.s_active ->
      (* restart of the same atomic block: keep age, karma, rng *)
      top.s_txid <- txid;
      top.s_work <- 0;
      top.s_active <- true;
      Hashtbl.replace t.by_txid txid top
  | rest -> push (fresh_slot t ~tid ~txid ~now) rest

let drop_slot t slot =
  Hashtbl.remove t.by_txid slot.s_txid;
  let rest = List.filter (fun s -> s != slot) (stack t slot.s_tid) in
  if rest = [] then Hashtbl.remove t.stacks slot.s_tid
  else Hashtbl.replace t.stacks slot.s_tid rest

let on_commit t ~txid =
  match Hashtbl.find_opt t.by_txid txid with
  | None -> ()
  | Some slot -> drop_slot t slot

let tid_of t ~txid =
  Option.map (fun s -> s.s_tid) (Hashtbl.find_opt t.by_txid txid)

(* [restart] is false when the enclosing atomic block is being torn down
   for good (an exception is propagating, or the runner gave up): the
   slot must not leak its age into the thread's next, unrelated block. *)
let on_abort t ~txid ~restart ~wounded ~work =
  match Hashtbl.find_opt t.by_txid txid with
  | None -> ()
  | Some slot ->
      slot.s_karma <- slot.s_karma + max work slot.s_work;
      slot.s_active <- false;
      slot.s_wounded <- wounded;
      if restart then Hashtbl.remove t.by_txid txid else drop_slot t slot

(* ------------------------------------------------------------------ *)
(* The decision procedure                                              *)
(* ------------------------------------------------------------------ *)

let priority slot = slot.s_karma + slot.s_work

(* Lexicographic age: earlier birth wins, first-incarnation txid breaks
   ties (all clocks are 0 under Cost.free, so the tie-break matters). *)
let older a b =
  a.s_birth < b.s_birth || (a.s_birth = b.s_birth && a.s_first_txid < b.s_first_txid)

let on_conflict t (c : conflict) =
  let self = Hashtbl.find_opt t.by_txid c.txid in
  Option.iter (fun s -> s.s_work <- max s.s_work c.work) self;
  let owner_slot = Option.bind c.owner (Hashtbl.find_opt t.by_txid) in
  let budget_exhausted = c.attempt >= t.max_retries in
  let jitter () = jittered_delay t.cost ~tid:c.tid ~attempt:c.attempt in
  match t.policy with
  | Policy.Suicide ->
      if budget_exhausted then Abort_self else Wait (jitter ())
  | Policy.Wound_wait ->
      if budget_exhausted then Abort_self
      else (
        match c.owner with
        | Some o when c.txid < o -> Wound { victim = o; delay = jitter () }
        | Some _ | None -> Wait (jitter ()))
  | Policy.Exp_backoff ->
      if budget_exhausted then Abort_self
      else
        let delay =
          match self with
          | Some slot -> randomized_delay t slot ~attempt:c.attempt
          | None -> jitter ()
        in
        Wait delay
  | Policy.Karma -> (
      if budget_exhausted then Abort_self
      else
        match (self, owner_slot) with
        | Some s, Some o
          when priority s > priority o
               || (priority s = priority o && s.s_first_txid < o.s_first_txid)
          ->
            Wound { victim = o.s_txid; delay = jitter () }
        | _ -> Wait (jitter ()))
  | Policy.Timestamp -> (
      match (self, owner_slot) with
      | Some s, Some o when older s o ->
          (* the oldest transaction never loses - and never gives up,
             even past the retry budget, because its victim may need a
             few more pauses to notice the wound *)
          Wound { victim = o.s_txid; delay = jitter () }
      | Some _, Some _ ->
          (* younger waits for older without burning retry budget: waits
             only ever point from younger to older (a younger owner would
             be wounded instead), so the wait graph follows a total age
             order and cannot cycle. Aborting here would restart-churn
             the young side into exactly the starvation streaks the
             policy exists to prevent. *)
          Wait (jitter ())
      | _ ->
          (* anonymous or unknown owner: no age to order against, so fall
             back to bounded retries like everyone else *)
          if budget_exhausted then Abort_self else Wait (jitter ()))

(* Delay charged between a conflict-driven abort and the block's next
   incarnation. Same schedule the policy uses inside the transaction,
   so Exp_backoff randomizes here too.

   A wound victim gets an extra step-aside deferral: its wounder is
   polling the contested record at jittered-backoff intervals, and if the
   victim restarts inside one of those intervals it re-acquires the
   record first and just gets wounded again - a wound/retry thrash in
   which the winner of every conflict makes no progress. The deferral is
   sized past the largest poll interval so the wounder wins the race. *)
let step_aside t ~tid ~attempt =
  (4 * max t.cost.Cost.backoff_base t.cost.backoff_cap)
  + jittered_delay t.cost ~tid ~attempt

let restart_delay t ~tid ~attempt =
  let top = match stack t tid with slot :: _ -> Some slot | [] -> None in
  let wounded =
    match top with
    | Some slot when slot.s_wounded ->
        slot.s_wounded <- false;
        true
    | _ -> false
  in
  if wounded then step_aside t ~tid ~attempt
  else
    match t.policy with
    | Policy.Exp_backoff -> (
        match top with
        | Some slot -> randomized_delay t slot ~attempt
        | None -> jittered_delay t.cost ~tid ~attempt)
    | Policy.Suicide | Policy.Wound_wait | Policy.Karma | Policy.Timestamp ->
        jittered_delay t.cost ~tid ~attempt

let string_of_decision = function
  | Wait _ -> "wait"
  | Wound _ -> "wound"
  | Abort_self -> "abort-self"
