(** Contention-management policy catalog.

    A policy decides what a transaction does when open-for-read or
    open-for-write finds the record owned by another transaction: wait
    (and for how long), abort itself, or wound the owner. The decision
    procedure itself lives in {!Cm}; this module is the closed
    enumeration the configuration layer and the CLIs select from. *)

type t =
  | Suicide
      (** Back off with deterministic per-thread jitter and, after the
          retry budget, abort self — the McRT default the paper uses. *)
  | Wound_wait
      (** An older transaction (smaller txid) wounds a younger owner;
          a younger transaction backs off behind an older owner.
          Deadlock-free: waits only ever go from younger to older. *)
  | Exp_backoff
      (** Randomized exponential backoff ({!Stm_runtime.Det_rng} on the
          cost clock), abort self after the retry budget. *)
  | Karma
      (** Work-based priority: a transaction's priority is the size of
          its read/write footprint, and work lost to an abort is banked
          into the next attempt. The richer transaction wounds a poorer
          owner; ties fall back to age. *)
  | Timestamp
      (** Greedy age-based policy: the birth timestamp is assigned at
          the first attempt of an atomic block and survives restarts,
          so every transaction eventually becomes the oldest — and the
          oldest never loses a conflict. Starvation-free. *)

val all : t list
val to_string : t -> string

val of_string : string -> t option
(** Accepts the {!to_string} names plus common aliases
    ([wound_wait], [backoff]... and [greedy] for {!Timestamp}). *)

val order_sensitive : t -> bool
(** Does the policy's behavior depend on the relative order in which
    transactions begin or reach the contention manager? [false] only
    for {!Suicide}, whose decisions read nothing but the asker's own
    retry budget. The DPOR explorer uses this to skip the txid-counter
    and policy-state pseudo-granules ({!Stm_runtime.Footprint.oid_txid},
    [oid_cm]) when they cannot influence behavior — without the gate,
    every transaction begin conflicts with every other and the
    reduction collapses to plain enumeration. *)

val describe : t -> string
(** One-line summary for [--help] output and docs. *)

val pp : Format.formatter -> t -> unit
