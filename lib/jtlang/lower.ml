(* Lowering from the Jt AST to the register IR.

   Resolution rules:
   - a bare identifier is a local variable, else an instance field of the
     enclosing class (implicit [this]), else a static field of the
     enclosing class;
   - [Recv.f] where [Recv] is a known class name is a static access;
   - receiverless calls prefer methods of the enclosing class over
     builtins;
   - [&&] and [||] are short-circuiting. *)

open Ast
open Stm_ir

exception Error of string * int

let fail line msg = raise (Error (msg, line))

let builtin_sigs =
  (* name -> (param types, return type); Tvoid params mean "any" *)
  [
    ("spawn", ([ Ir.Tvoid ], Ir.Tint));
    ("join", ([ Ir.Tint ], Ir.Tvoid));
    ("rand", ([ Ir.Tint ], Ir.Tint));
    ("param", ([ Ir.Tstr ], Ir.Tint));
    ("tick", ([ Ir.Tint ], Ir.Tvoid));
    ("rebase_clock", ([], Ir.Tvoid));
    ("assert", ([ Ir.Tbool ], Ir.Tvoid));
    ("abs", ([ Ir.Tint ], Ir.Tint));
    ("min", ([ Ir.Tint; Ir.Tint ], Ir.Tint));
    ("max", ([ Ir.Tint; Ir.Tint ], Ir.Tint));
    ("hash", ([ Ir.Tint ], Ir.Tint));
  ]

let rec conv_ty line = function
  | Tint -> Ir.Tint
  | Tbool -> Ir.Tbool
  | Tstr -> Ir.Tstr
  | Tvoid -> Ir.Tvoid
  | Tname c -> Ir.Tref c
  | Tarr t -> Ir.Tarr (conv_ty line t)
  [@@warning "-27"]

type env = {
  prog : Ir.program;
  src : string;  (* source name, for site locations *)
  cls : Ir.cls;
  meth_static : bool;
  mutable code : Ir.instr list;  (* reversed *)
  mutable len : int;
  mutable nreg : int;
  mutable names : string list;  (* reversed reg names *)
  mutable scopes : (string * (int * Ir.ty)) list list;
  mutable protect_depth : int;  (* inside atomic/synchronized *)
}

let emit env i =
  env.code <- i :: env.code;
  env.len <- env.len + 1

let here env = env.len

(* Emit a placeholder branch; returns a patcher. *)
let emit_patchable env mk =
  let at = env.len in
  emit env (mk (-1));
  fun target ->
    env.code <-
      List.mapi
        (fun i ins -> if i = env.len - 1 - at then mk target else ins)
        env.code

let fresh_reg env name ty =
  let r = env.nreg in
  env.nreg <- r + 1;
  env.names <- name :: env.names;
  ignore ty;
  r

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare_var env line name ty =
  (match env.scopes with
  | scope :: _ when List.mem_assoc name scope ->
      fail line ("duplicate variable " ^ name)
  | _ -> ());
  let r = fresh_reg env name ty in
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, (r, ty)) :: scope) :: rest
  | [] -> assert false);
  r

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some v -> Some v
        | None -> go rest)
  in
  go env.scopes

let is_class env name = Hashtbl.mem env.prog.Ir.classes name

let fresh_site_at env line =
  let site = Ir.fresh_site env.prog in
  Ir.set_site_loc env.prog site ~file:env.src ~line;
  site

let note env line =
  { Ir.site = fresh_site_at env line; barrier = Ir.Bar_auto; txn_unlogged = false }

let default_value = function
  | Ir.Tint -> Ir.Cint 0
  | Ir.Tbool -> Ir.Cbool false
  | Ir.Tstr -> Ir.Cstr ""
  | Ir.Tvoid -> Ir.Cint 0
  | Ir.Tref _ | Ir.Tarr _ -> Ir.Cnull

let ref_compatible env expect actual =
  match (expect, actual) with
  | Ir.Tref _, Ir.Tref "<null>" | Ir.Tarr _, Ir.Tref "<null>" -> true
  | Ir.Tref a, Ir.Tref b ->
      Ir.is_subclass env.prog b a || Ir.is_subclass env.prog a b
  | a, b -> Ir.ty_equal a b

let check_ty env line expect actual what =
  if not (ref_compatible env expect actual) then
    fail line
      (Fmt.str "%s: expected %a, found %a" what Ir.pp_ty expect Ir.pp_ty actual)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr env (e : expr) : Ir.operand * Ir.ty =
  let line = e.eline in
  match e.e with
  | Eint n -> (Ir.Cint n, Ir.Tint)
  | Ebool b -> (Ir.Cbool b, Ir.Tbool)
  | Estr s -> (Ir.Cstr s, Ir.Tstr)
  | Enull -> (Ir.Cnull, Ir.Tref "<null>")
  | Ethis ->
      if env.meth_static then fail line "'this' in a static method"
      else (Ir.Reg 0, Ir.Tref env.cls.Ir.cname)
  | Evar name -> (
      match lookup_var env name with
      | Some (r, ty) -> (Ir.Reg r, ty)
      | None -> lower_implicit_field env line name)
  | Ebin (And, a, b) -> lower_shortcircuit env line true a b
  | Ebin (Or, a, b) -> lower_shortcircuit env line false a b
  | Ebin (op, a, b) ->
      let va, ta = lower_expr env a in
      let vb, tb = lower_expr env b in
      let irop, rty = lower_binop env line op ta tb in
      let d = fresh_reg env "t" rty in
      emit env (Ir.Binop (d, irop, va, vb));
      (Ir.Reg d, rty)
  | Eun (Neg, a) ->
      let va, ta = lower_expr env a in
      check_ty env line Ir.Tint ta "unary -";
      let d = fresh_reg env "t" Ir.Tint in
      emit env (Ir.Unop (d, Ir.Neg, va));
      (Ir.Reg d, Ir.Tint)
  | Eun (Not, a) ->
      let va, ta = lower_expr env a in
      check_ty env line Ir.Tbool ta "unary !";
      let d = fresh_reg env "t" Ir.Tbool in
      emit env (Ir.Unop (d, Ir.Not, va));
      (Ir.Reg d, Ir.Tbool)
  | Efield ({ e = Evar recv; _ }, fld)
    when lookup_var env recv = None && is_class env recv ->
      lower_static_load env line recv fld
  | Efield (r, fld) ->
      let vr, tr = lower_expr env r in
      let cls =
        match tr with
        | Ir.Tref c -> c
        | t -> fail line (Fmt.str "field access on non-object type %a" Ir.pp_ty t)
      in
      let fidx, f =
        try Ir.instance_field_index env.prog cls fld
        with Not_found -> fail line ("unknown field " ^ cls ^ "." ^ fld)
      in
      let d = fresh_reg env "t" f.Ir.fty in
      emit env (Ir.Load { dst = d; obj = vr; cls; fld; fidx; note = note env line });
      (Ir.Reg d, f.Ir.fty)
  | Eindex (a, i) ->
      let va, ta = lower_expr env a in
      let vi, ti = lower_expr env i in
      check_ty env line Ir.Tint ti "array index";
      let elt =
        match ta with
        | Ir.Tarr t -> t
        | t -> fail line (Fmt.str "indexing non-array type %a" Ir.pp_ty t)
      in
      let d = fresh_reg env "t" elt in
      emit env (Ir.ALoad { dst = d; arr = va; idx = vi; note = note env line });
      (Ir.Reg d, elt)
  | Elen a ->
      let va, ta = lower_expr env a in
      (match ta with
      | Ir.Tarr _ -> ()
      | t -> fail line (Fmt.str ".length of non-array type %a" Ir.pp_ty t));
      let d = fresh_reg env "t" Ir.Tint in
      emit env (Ir.ALen (d, va));
      (Ir.Reg d, Ir.Tint)
  | Enew cls ->
      if not (is_class env cls) then fail line ("unknown class " ^ cls);
      let d = fresh_reg env "t" (Ir.Tref cls) in
      emit env (Ir.New { dst = d; cls; site = fresh_site_at env line });
      (Ir.Reg d, Ir.Tref cls)
  | Enewarr (elt, len) ->
      let ve, te = lower_expr env len in
      check_ty env line Ir.Tint te "array length";
      let ety = conv_ty line elt in
      let d = fresh_reg env "t" (Ir.Tarr ety) in
      emit env (Ir.NewArr { dst = d; elt = ety; len = ve; site = fresh_site_at env line });
      (Ir.Reg d, Ir.Tarr ety)
  | Ecall (recv, name, args) -> (
      match lower_call env line recv name args with
      | Some (op, ty) -> (op, ty)
      | None -> fail line ("void method " ^ name ^ " used as a value"))

and lower_implicit_field env line name =
  (* bare identifier that is not a local: instance field (via this) or
     static field of the enclosing class *)
  let cname = env.cls.Ir.cname in
  match Ir.instance_field_index env.prog cname name with
  | fidx, f when not env.meth_static ->
      let d = fresh_reg env "t" f.Ir.fty in
      emit env
        (Ir.Load { dst = d; obj = Ir.Reg 0; cls = cname; fld = name; fidx; note = note env line });
      (Ir.Reg d, f.Ir.fty)
  | _ -> fail line ("instance field " ^ name ^ " in a static method")
  | exception Not_found -> (
      match Ir.static_field_index env.prog cname name with
      | dcls, fidx, f ->
          let d = fresh_reg env "t" f.Ir.fty in
          emit env (Ir.LoadS { dst = d; cls = dcls; fld = name; fidx; note = note env line });
          (Ir.Reg d, f.Ir.fty)
      | exception Not_found -> fail line ("unbound identifier " ^ name))

and lower_static_load env line cname fld =
  match Ir.static_field_index env.prog cname fld with
  | dcls, fidx, f ->
      let d = fresh_reg env "t" f.Ir.fty in
      emit env (Ir.LoadS { dst = d; cls = dcls; fld; fidx; note = note env line });
      (Ir.Reg d, f.Ir.fty)
  | exception Not_found -> fail line ("unknown static field " ^ cname ^ "." ^ fld)

and lower_shortcircuit env line is_and a b =
  let d = fresh_reg env "t" Ir.Tbool in
  let va, ta = lower_expr env a in
  check_ty env line Ir.Tbool ta "logical operand";
  emit env (Ir.Move (d, va));
  (* and: if !d skip b ; or: if d skip b *)
  let cond_reg = fresh_reg env "t" Ir.Tbool in
  if is_and then emit env (Ir.Unop (cond_reg, Ir.Not, Ir.Reg d))
  else emit env (Ir.Move (cond_reg, Ir.Reg d));
  let patch = emit_patchable env (fun t -> Ir.If (Ir.Reg cond_reg, t)) in
  let vb, tb = lower_expr env b in
  check_ty env line Ir.Tbool tb "logical operand";
  emit env (Ir.Move (d, vb));
  patch (here env);
  (Ir.Reg d, Ir.Tbool)

and lower_binop env line op ta tb =
  let arith irop =
    check_ty env line Ir.Tint ta "arithmetic operand";
    check_ty env line Ir.Tint tb "arithmetic operand";
    (irop, Ir.Tint)
  in
  let rel irop =
    check_ty env line Ir.Tint ta "comparison operand";
    check_ty env line Ir.Tint tb "comparison operand";
    (irop, Ir.Tbool)
  in
  match op with
  | Add -> arith Ir.Add
  | Sub -> arith Ir.Sub
  | Mul -> arith Ir.Mul
  | Div -> arith Ir.Div
  | Mod -> arith Ir.Mod
  | Lt -> rel Ir.Lt
  | Le -> rel Ir.Le
  | Gt -> rel Ir.Gt
  | Ge -> rel Ir.Ge
  | Eq ->
      if not (ref_compatible env ta tb) then
        fail line "incomparable types in ==";
      (Ir.Eq, Ir.Tbool)
  | Ne ->
      if not (ref_compatible env ta tb) then
        fail line "incomparable types in !=";
      (Ir.Ne, Ir.Tbool)
  | And | Or -> assert false (* handled by short-circuit lowering *)

and lower_args env args = List.map (fun a -> lower_expr env a) args

and lower_call env line recv name args : (Ir.operand * Ir.ty) option =
  let call ~target ~this ~sig_params ~ret vargs =
    if List.length sig_params <> List.length vargs then
      fail line (Printf.sprintf "wrong arity calling %s" name);
    List.iter2
      (fun (_, pty) (_, aty) -> check_ty env line pty aty ("argument of " ^ name))
      sig_params vargs;
    let dst =
      match ret with Ir.Tvoid -> None | t -> Some (fresh_reg env "t" t)
    in
    emit env
      (Ir.Call { dst; target; this; args = List.map fst vargs });
    match (dst, ret) with
    | Some d, t -> Some (Ir.Reg d, t)
    | None, _ -> None
  in
  match recv with
  | Some { e = Evar cname; _ }
    when lookup_var env cname = None && is_class env cname -> (
      (* static call C.m(...) *)
      match Ir.find_method env.prog cname name with
      | Some m when m.Ir.m_static ->
          let vargs = lower_args env args in
          call ~target:(Ir.Static (cname, name)) ~this:None
            ~sig_params:m.Ir.params ~ret:m.Ir.ret vargs
      | Some _ -> fail line ("method " ^ name ^ " of " ^ cname ^ " is not static")
      | None -> fail line ("unknown static method " ^ cname ^ "." ^ name))
  | Some r -> (
      let vr, tr = lower_expr env r in
      let cls =
        match tr with
        | Ir.Tref c -> c
        | t -> fail line (Fmt.str "method call on non-object type %a" Ir.pp_ty t)
      in
      match Ir.find_method env.prog cls name with
      | Some m when not m.Ir.m_static ->
          let vargs = lower_args env args in
          call ~target:(Ir.Virtual (cls, name)) ~this:(Some vr)
            ~sig_params:m.Ir.params ~ret:m.Ir.ret vargs
      | Some _ -> fail line ("static method " ^ name ^ " called on an instance")
      | None -> fail line ("unknown method " ^ cls ^ "." ^ name))
  | None -> (
      (* same-class method, else builtin *)
      match Ir.find_method env.prog env.cls.Ir.cname name with
      | Some m ->
          let vargs = lower_args env args in
          if m.Ir.m_static then
            call ~target:(Ir.Static (env.cls.Ir.cname, name)) ~this:None
              ~sig_params:m.Ir.params ~ret:m.Ir.ret vargs
          else if env.meth_static then
            fail line ("instance method " ^ name ^ " called from static context")
          else
            call ~target:(Ir.Virtual (env.cls.Ir.cname, name))
              ~this:(Some (Ir.Reg 0)) ~sig_params:m.Ir.params ~ret:m.Ir.ret
              vargs
      | None -> lower_builtin env line name args)

and lower_builtin env line name args =
  match name with
  | "print" ->
      let vargs = lower_args env args in
      (match vargs with
      | [ (v, _) ] -> emit env (Ir.Print v)
      | _ -> fail line "print takes one argument");
      None
  | "retry" ->
      if args <> [] then fail line "retry takes no arguments";
      emit env Ir.Retry;
      None
  | "param" when List.length args = 2 ->
      (* param("name", default): use the default when the runner supplies
         no -P value, so examples stay self-contained *)
      let vargs = lower_args env args in
      (match vargs with
      | [ (k, Ir.Tstr); (d, Ir.Tint) ] ->
          let dst = fresh_reg env "t" Ir.Tint in
          emit env (Ir.Builtin { dst = Some dst; name; args = [ k; d ] });
          Some (Ir.Reg dst, Ir.Tint)
      | _ -> fail line "param takes (string name [, int default])")
  | _ -> (
      match List.assoc_opt name builtin_sigs with
      | None -> fail line ("unknown function " ^ name)
      | Some (ptys, ret) ->
          let vargs = lower_args env args in
          if List.length ptys <> List.length vargs then
            fail line (Printf.sprintf "wrong arity calling %s" name);
          List.iter2
            (fun pty (_, aty) ->
              match pty with
              | Ir.Tvoid -> ()  (* any *)
              | t -> check_ty env line t aty ("argument of " ^ name))
            ptys vargs;
          let dst =
            match ret with Ir.Tvoid -> None | t -> Some (fresh_reg env "t" t)
          in
          emit env (Ir.Builtin { dst; name; args = List.map fst vargs });
          (match (dst, ret) with
          | Some d, t -> Some (Ir.Reg d, t)
          | None, _ -> None))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env ret_ty (s : stmt) =
  let line = s.sline in
  match s.s with
  | Sdecl (ty, name, init) ->
      let ity = conv_ty line ty in
      let v, vt =
        match init with
        | Some e -> lower_expr env e
        | None -> (default_value ity, ity)
      in
      check_ty env line ity vt ("initializer of " ^ name);
      let r = declare_var env line name ity in
      emit env (Ir.Move (r, v))
  | Sassign (lv, e) -> lower_assign env line lv e
  | Sif (c, thn, els) ->
      let vc, tc = lower_expr env c in
      check_ty env line Ir.Tbool tc "if condition";
      let nc = fresh_reg env "t" Ir.Tbool in
      emit env (Ir.Unop (nc, Ir.Not, vc));
      let patch_else = emit_patchable env (fun t -> Ir.If (Ir.Reg nc, t)) in
      lower_block env ret_ty thn;
      (match els with
      | None -> patch_else (here env)
      | Some eb ->
          let patch_end = emit_patchable env (fun t -> Ir.Goto t) in
          patch_else (here env);
          lower_block env ret_ty eb;
          patch_end (here env))
  | Swhile (c, body) ->
      let head = here env in
      let vc, tc = lower_expr env c in
      check_ty env line Ir.Tbool tc "while condition";
      let nc = fresh_reg env "t" Ir.Tbool in
      emit env (Ir.Unop (nc, Ir.Not, vc));
      let patch_end = emit_patchable env (fun t -> Ir.If (Ir.Reg nc, t)) in
      lower_block env ret_ty body;
      emit env (Ir.Goto head);
      patch_end (here env)
  | Sfor (init, cond, step, body) ->
      push_scope env;
      Option.iter (lower_stmt env ret_ty) init;
      let head = here env in
      let patch_end =
        match cond with
        | None -> fun _ -> ()
        | Some c ->
            let vc, tc = lower_expr env c in
            check_ty env line Ir.Tbool tc "for condition";
            let nc = fresh_reg env "t" Ir.Tbool in
            emit env (Ir.Unop (nc, Ir.Not, vc));
            emit_patchable env (fun t -> Ir.If (Ir.Reg nc, t))
      in
      lower_block env ret_ty body;
      Option.iter (lower_stmt env ret_ty) step;
      emit env (Ir.Goto head);
      patch_end (here env);
      pop_scope env
  | Sreturn e ->
      if env.protect_depth > 0 then
        fail line "return inside atomic/synchronized is not supported";
      (match (e, ret_ty) with
      | None, Ir.Tvoid -> emit env (Ir.Ret None)
      | None, _ -> fail line "missing return value"
      | Some e, rt ->
          let v, vt = lower_expr env e in
          check_ty env line rt vt "return value";
          emit env (Ir.Ret (Some v)))
  | Sexpr e -> (
      match e.e with
      | Ecall (recv, name, args) ->
          ignore (lower_call env line recv name args : (Ir.operand * Ir.ty) option)
      | _ -> ignore (lower_expr env e : Ir.operand * Ir.ty))
  | Satomic body ->
      let patch_begin = emit_patchable env (fun t -> Ir.AtomicBegin t) in
      env.protect_depth <- env.protect_depth + 1;
      lower_block env ret_ty body;
      env.protect_depth <- env.protect_depth - 1;
      emit env Ir.AtomicEnd;
      patch_begin (here env - 1)
  | Ssync (e, body) ->
      let v, vt = lower_expr env e in
      (match vt with
      | Ir.Tref _ | Ir.Tarr _ -> ()
      | t -> fail line (Fmt.str "synchronized on non-object type %a" Ir.pp_ty t));
      emit env (Ir.MonitorEnter v);
      env.protect_depth <- env.protect_depth + 1;
      lower_block env ret_ty body;
      env.protect_depth <- env.protect_depth - 1;
      emit env (Ir.MonitorExit v)
  | Sblock b ->
      push_scope env;
      lower_block env ret_ty b;
      pop_scope env

and lower_block env ret_ty b =
  push_scope env;
  List.iter (lower_stmt env ret_ty) b;
  pop_scope env

and lower_assign env line lv e =
  match lv with
  | Lvar name -> (
      match lookup_var env name with
      | Some (r, ty) ->
          let v, vt = lower_expr env e in
          check_ty env line ty vt ("assignment to " ^ name);
          emit env (Ir.Move (r, v))
      | None -> lower_implicit_store env line name e)
  | Lfield ({ e = Evar recv; _ }, fld)
    when lookup_var env recv = None && is_class env recv -> (
      match Ir.static_field_index env.prog recv fld with
      | dcls, fidx, f ->
          let v, vt = lower_expr env e in
          check_ty env line f.Ir.fty vt ("assignment to " ^ recv ^ "." ^ fld);
          emit env (Ir.StoreS { cls = dcls; fld; fidx; src = v; note = note env line })
      | exception Not_found ->
          fail line ("unknown static field " ^ recv ^ "." ^ fld))
  | Lfield (r, fld) ->
      let vr, tr = lower_expr env r in
      let cls =
        match tr with
        | Ir.Tref c -> c
        | t -> fail line (Fmt.str "field store on non-object type %a" Ir.pp_ty t)
      in
      let fidx, f =
        try Ir.instance_field_index env.prog cls fld
        with Not_found -> fail line ("unknown field " ^ cls ^ "." ^ fld)
      in
      let v, vt = lower_expr env e in
      check_ty env line f.Ir.fty vt ("assignment to " ^ cls ^ "." ^ fld);
      emit env (Ir.Store { obj = vr; cls; fld; fidx; src = v; note = note env line })
  | Lindex (a, i) ->
      let va, ta = lower_expr env a in
      let vi, ti = lower_expr env i in
      check_ty env line Ir.Tint ti "array index";
      let elt =
        match ta with
        | Ir.Tarr t -> t
        | t -> fail line (Fmt.str "indexed store on non-array type %a" Ir.pp_ty t)
      in
      let v, vt = lower_expr env e in
      check_ty env line elt vt "array store";
      emit env (Ir.AStore { arr = va; idx = vi; src = v; note = note env line })

and lower_implicit_store env line name e =
  let cname = env.cls.Ir.cname in
  match Ir.instance_field_index env.prog cname name with
  | fidx, f ->
      if env.meth_static then
        fail line ("instance field " ^ name ^ " in a static method");
      let v, vt = lower_expr env e in
      check_ty env line f.Ir.fty vt ("assignment to " ^ name);
      emit env
        (Ir.Store { obj = Ir.Reg 0; cls = cname; fld = name; fidx; src = v; note = note env line })
  | exception Not_found -> (
      match Ir.static_field_index env.prog cname name with
      | dcls, fidx, f ->
          let v, vt = lower_expr env e in
          check_ty env line f.Ir.fty vt ("assignment to " ^ name);
          emit env (Ir.StoreS { cls = dcls; fld = name; fidx; src = v; note = note env line })
      | exception Not_found -> fail line ("unbound identifier " ^ name))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let const_init line = function
  | None -> None
  | Some { e = Eint n; _ } -> Some (Ir.Cint n)
  | Some { e = Ebool b; _ } -> Some (Ir.Cbool b)
  | Some { e = Estr s; _ } -> Some (Ir.Cstr s)
  | Some { e = Enull; _ } -> Some Ir.Cnull
  | Some _ ->
      fail line "field initializers must be constants (use main for setup)"

let declare_class (c : Ast.cls) =
  let fields =
    List.filter_map
      (function
        | Mfield { fty; fname; f_static; f_final; f_volatile; finit; line } ->
            if finit <> None && not f_static then
              fail line "instance fields cannot have initializers";
            Some
              {
                Ir.fname;
                fty = conv_ty line fty;
                f_final;
                f_volatile;
                f_static;
                f_init = const_init line finit;
              }
        | Mmethod _ -> None)
      c.members
  in
  {
    Ir.cname = c.cname;
    super = c.super;
    fields;
    meths = [];
  }

let declare_method prog cname (m : Ast.member) =
  match m with
  | Mmethod { ret; mname; m_static; params; body = _; line } ->
      Some
        {
          Ir.mcls = cname;
          mname;
          m_static;
          params = List.map (fun (t, n) -> (n, conv_ty line t)) params;
          ret = conv_ty line ret;
          nregs = 0;
          body = [||];
          reg_names = [||];
        }
  | Mfield _ -> None
  [@@warning "-27"]

let lower_method prog src cls (am : Ast.member) (im : Ir.meth) =
  match am with
  | Mfield _ -> assert false
  | Mmethod { body; line = _; _ } ->
      let env =
        {
          prog;
          src;
          cls;
          meth_static = im.Ir.m_static;
          code = [];
          len = 0;
          nreg = 0;
          names = [];
          scopes = [ [] ];
          protect_depth = 0;
        }
      in
      (* calling convention: this (if any), then parameters *)
      if not im.Ir.m_static then begin
        let r = fresh_reg env "this" (Ir.Tref cls.Ir.cname) in
        env.scopes <-
          [ ("this", (r, Ir.Tref cls.Ir.cname)) :: List.hd env.scopes ]
      end;
      List.iter
        (fun (n, t) ->
          let r = fresh_reg env n t in
          env.scopes <- [ (n, (r, t)) :: List.hd env.scopes ])
        im.Ir.params;
      lower_block env im.Ir.ret body;
      emit env (Ir.Ret None);
      let code = Array.of_list (List.rev env.code) in
      {
        im with
        Ir.nregs = env.nreg;
        body = code;
        reg_names = Array.of_list (List.rev env.names);
      }

let builtin_thread_class =
  { Ir.cname = "Thread"; super = None; fields = []; meths = [] }

let lower ?(name = "<jt>") (ast : Ast.program) : Ir.program =
  let prog = Ir.create_program () in
  (* implicit base classes *)
  Ir.add_class prog builtin_thread_class;
  List.iter
    (fun (c : Ast.cls) ->
      if Hashtbl.mem prog.Ir.classes c.cname then
        fail c.cline ("duplicate class " ^ c.cname);
      Ir.add_class prog (declare_class c))
    ast;
  (* declare method signatures before lowering any body *)
  List.iter
    (fun (c : Ast.cls) ->
      let ic = Ir.find_class prog c.cname in
      ic.Ir.meths <-
        List.filter_map (declare_method prog c.cname) c.members)
    ast;
  (* lower bodies *)
  List.iter
    (fun (c : Ast.cls) ->
      let ic = Ir.find_class prog c.cname in
      let ast_methods =
        List.filter (function Mmethod _ -> true | Mfield _ -> false) c.members
      in
      ic.Ir.meths <-
        List.map2 (fun am im -> lower_method prog name ic am im) ast_methods
          ic.Ir.meths)
    ast;
  (* find main *)
  let main_cls =
    List.find_opt
      (fun (c : Ast.cls) ->
        List.exists
          (function
            | Mmethod { mname = "main"; m_static = true; _ } -> true
            | Mmethod _ | Mfield _ -> false)
          c.members)
      ast
  in
  (match main_cls with
  | Some c -> prog.Ir.main_class <- c.cname
  | None -> fail 0 "no class with a static main() method");
  prog
