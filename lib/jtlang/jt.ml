exception Error of string * int

let parse ?name src =
  try Parser.parse ?name src with
  | Lexer.Error (msg, line) -> raise (Error ("lexical error: " ^ msg, line))
  | Parser.Error (msg, line) -> raise (Error ("syntax error: " ^ msg, line))

let compile ?name src =
  let ast = parse ?name src in
  try Lower.lower ?name ast with
  | Lower.Error (msg, line) -> raise (Error (msg, line))
