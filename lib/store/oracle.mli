(** Serializability audit of recorded store traffic.

    A Debug-level trace collector (the {!Stm_check.Exec} idiom) rebuilds
    a {!Stm_check.History.history} from the store's value-word accesses:
    one node per committed transaction, stamped at its
    [Txn_serialized] point, and one node per non-transactional value
    access, stamped at its linearization point. Locations are store keys
    ([History.Cell key]); structural traffic (chain links, shard
    headers) is projected out — the audit judges the {e data} the store
    serves. Because the engine's record mode writes a globally-unique
    token per put/rmw attempt, the reads-from relation is exact and
    {!Stm_check.History.check_graph} is decisive: a weak-atomicity run
    whose mixed traffic raced shows up as a dirty read, a conflict-graph
    cycle or a final-state mismatch; a strong-atomicity run comes back
    serializable. *)

open Stm_core

type t

val create : lookup:(int -> int option) -> unit -> t
(** [lookup oid] maps a heap object id to the store key whose entry it
    is ([None] for non-entry objects). Install {!on_event} as (part of)
    a [Debug]-level trace sink for the duration of the measured
    window. *)

val on_event : t -> Trace.event -> unit

val set_enabled : t -> bool -> unit
(** Collection is off until enabled — setup traffic stays out of the
    history. *)

val set_init : t -> (int * int) list -> unit
(** Initial [key, token] population (the preload). *)

val set_final : t -> (int * int) list -> unit
(** Final [key, token] store contents (a raw post-run fold). *)

val history : t -> Stm_check.History.history
(** Nodes sorted by serialization stamp, with the recorded init/final
    state. *)

val check : t -> Stm_check.History.verdict
(** {!Stm_check.History.check_graph} over {!history}: conflict-graph
    acyclicity, dirty reads, final-state agreement. *)
