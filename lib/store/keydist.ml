open Stm_runtime

type dist = Uniform | Zipfian of float

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipfian _ -> "zipfian"

let dist_of_string ?(theta = 0.99) = function
  | "uniform" -> Some Uniform
  | "zipfian" -> Some (Zipfian theta)
  | _ -> None

(* Zeta partial sum: sum_{i=1..n} 1/i^theta. Computed once per sampler;
   key spaces here are at most a few hundred thousand, so a direct sum
   is fine and keeps the constant bit-for-bit reproducible. *)
let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

type kind =
  | K_uniform
  | K_zipf of {
      theta : float;
      alpha : float;  (** 1/(1-theta) *)
      zetan : float;
      eta : float;
      half_pow : float;  (** 1 + 0.5^theta *)
    }

type t = { keys : int; kind : kind; rng : Det_rng.t }

(* splitmix-style avalanche, constants truncated to OCaml's 63-bit
   [int]; only used for load spreading, not as a bijection *)
let mix k =
  let k = (k + 0x27d4eb2f165667c5) land max_int in
  let k = k lxor (k lsr 29) in
  let k = k * 0x165667b19e3779f9 land max_int in
  let k = k lxor (k lsr 32) in
  let k = k * 0x27d4eb2f165667c5 land max_int in
  k lxor (k lsr 31)

let scramble ~keys r = mix r mod keys

let create ~keys ~dist rng =
  if keys <= 0 then invalid_arg "Keydist.create: keys must be positive";
  let kind =
    match dist with
    | Uniform -> K_uniform
    | Zipfian theta ->
        if theta <= 0.0 || theta >= 1.0 then
          invalid_arg "Keydist.create: zipfian theta must be in (0, 1)";
        let zetan = zeta keys theta in
        let zeta2 = zeta 2 theta in
        let sub = 1.0 -. theta in
        K_zipf
          {
            theta;
            alpha = 1.0 /. sub;
            zetan;
            eta =
              (1.0 -. ((2.0 /. float_of_int keys) ** sub))
              /. (1.0 -. (zeta2 /. zetan));
            half_pow = 1.0 +. (0.5 ** theta);
          }
  in
  { keys; kind; rng }

(* Gray et al. "Quickly generating billion-record synthetic databases",
   as popularized by YCSB's ZipfianGenerator. *)
let next_rank t =
  match t.kind with
  | K_uniform -> Det_rng.int t.rng t.keys
  | K_zipf z ->
      let u = Det_rng.float t.rng 1.0 in
      let uz = u *. z.zetan in
      if uz < 1.0 then 0
      else if uz < z.half_pow then 1
      else
        let r =
          int_of_float
            (float_of_int t.keys *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha))
        in
        if r >= t.keys then t.keys - 1 else if r < 0 then 0 else r

let next t =
  match t.kind with
  | K_uniform -> next_rank t
  | K_zipf _ -> scramble ~keys:t.keys (next_rank t)
