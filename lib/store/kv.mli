(** Hash-partitioned in-memory key-value store on the simulated heap.

    The store is the repository's first open-workload data service: a
    fixed number of {e shards}, each a chained hash table of entry
    objects plus a one-object shard header carrying a commit sequence
    number and an entry count. Every bucket head, entry and header is an
    ordinary {!Stm_runtime.Heap} object, so the paper's whole barrier
    machinery applies unchanged: conflict detection is per-object (one
    transaction record per entry / per shard table / per header),
    exactly the granularity Section 3.1 compiles to.

    {2 Concurrency disciplines}

    The [mode] fixes how operations synchronize:
    - [Strong] / [Weak]: structural and multi-key operations
      ({!insert}, {!delete}, {!rmw}, {!multi_get}, {!scan}) run inside
      {!Stm_core.Stm.atomic}; single-key {!get}, {!put} and {!add} run
      as {e non-transactional} heap accesses. Under [Strong] the
      configured isolation barriers make that mixed traffic safe; under
      [Weak] it exhibits the paper's Figure 6 anomalies on real store
      operations (the workload engine measures them).
    - [Lock]: the "Synch" baseline — every operation takes the shard
      mutex(es) (in ascending shard order for multi-shard operations)
      and accesses memory through the barrier-elided
      [read_nobarrier]/[write_nobarrier] path.
    - [Mvcc]: the multi-version backend with strong-atomicity barriers
      ([mvcc_strong]): transactions read consistent snapshots and
      install versions first-committer-wins, non-transactional accesses
      see (and produce) the latest committed version. Held to the same
      exactness bar as [Strong] and [Lock] — the engine's update
      deviation must be zero and recorded runs must certify
      serializable.

    Mutating transactions first bump their shard's sequence number, so
    writers within one shard serialize on the header granule while
    writers in different shards proceed independently — the scaling
    axis the shard-count knob exposes. {!multi_get} and {!scan} read
    the headers of every shard they touch (a snapshot-validation read),
    so read transactions detect concurrent shard mutation through
    ordinary read-set validation.

    All operations must be called from inside a running simulation with
    an installed STM system (i.e. within [Stm.run]'s main function). *)

open Stm_runtime

type mode = Strong | Weak | Lock | Mvcc

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val config : mode -> Stm_core.Config.t
(** The STM configuration a mode runs under: [eager_strong] for
    [Strong], [eager_weak] for [Weak] and [Lock] (lock mode uses the
    barrier-elided access path, so the atomicity flag is moot),
    [mvcc_strong] for [Mvcc]. *)

type t

val create :
  ?buckets:int ->
  ?value_size:int ->
  mode:mode ->
  shards:int ->
  cost:Cost.t ->
  unit ->
  t
(** Allocate the shard tables and headers (and, in [Lock] mode, the
    shard mutexes). [buckets] is per shard (default 64); [value_size]
    (default 4) is the number of heap words a value occupies — writes
    touch all of them, models payload size. [cost] prices the lock
    operations of [Lock] mode (pass the run configuration's cost
    model). *)

val mode : t -> mode
val shards : t -> int
val value_size : t -> int

val preload : t -> keys:int -> value:(int -> int) -> unit
(** Populate keys [0 .. keys-1] with [value k] via raw heap stores —
    no barriers, no cost, no trace events — so setup is free and the
    measured window sees a fully-loaded store. Call once, before any
    concurrent traffic. *)

(** {1 Operations}

    Value arguments and results are the first value word; the remaining
    [value_size - 1] words are written with the same value. *)

val get : t -> int -> int option
(** Non-transactional single-key read ([Lock]: under the shard lock). *)

val put : t -> int -> int -> bool
(** Non-transactional blind update of an existing key's value words.
    Falls back to a transactional {!insert} when the key is absent;
    returns [true] if it inserted. *)

val add : t -> int -> int -> int option
(** Unsynchronized non-transactional read-modify-write: read the value,
    write value[+d] back. Atomic under [Lock] (takes the shard lock).
    Under [Strong] each of the two accesses is isolated from
    transactions but the {e pair} is not atomic — value-preserving
    concurrent writers (the engine's anomaly-profile discipline) keep
    it exact, value-changing ones do not. Under [Weak] it additionally
    sees the TM's speculative state and rollbacks — the workload
    engine's lost-update witness. [None] when the key is absent. *)

val rmw : t -> int -> f:(int -> int) -> int option
(** Transactional read-modify-write: atomically bump the shard seqno,
    read the value, write [f value]. [None] when the key is absent
    (the seqno bump still commits). *)

val insert : t -> int -> int -> bool
(** Transactional find-or-insert; updates in place when the key exists.
    Returns [true] when a new entry was linked. *)

val delete : t -> int -> bool
(** Transactional unlink. [false] when the key was absent. *)

val multi_get : t -> int array -> int option array
(** One atomic block reading every key (plus the header seqno of every
    shard involved). *)

val scan : t -> int -> len:int -> int
(** One atomic block reading keys [k .. k+len-1]; returns how many were
    present. *)

(** {1 Post-run inspection (raw heap reads, no barriers)} *)

val fold : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Fold over live entries as [(key, first value word)] in a
    deterministic order (shard-ascending, bucket-ascending, chain
    order). *)

val entry_count : t -> int
val seqno_sum : t -> int

val check_invariants : t -> string list
(** Structural integrity sweep: every entry hashes to the shard and
    bucket its chain belongs to, no shard holds a key twice, chains are
    acyclic, and each shard header's entry count equals the entries
    actually reachable. Returns human-readable violations ([] = ok).
    Holds in every mode — structure is only ever mutated inside
    transactions (or under the shard lock) — so a violation means the
    STM itself miscompiled an update. *)

val key_of_oid : t -> int -> int option
(** Map an entry object id back to its key (the diag heatmap's hot
    granules become hot keys through this). Entries allocated by
    aborted insert attempts stay mapped; dead oids simply never show
    up again. *)

val shard_of_oid : t -> int -> int option
(** Map any store-owned object id (entry, shard table or header) to its
    shard — per-shard abort attribution. *)

val shard_of_key : t -> int -> int
