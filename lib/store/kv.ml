open Stm_runtime
module Stm = Stm_core.Stm

type mode = Strong | Weak | Lock | Mvcc

let mode_to_string = function
  | Strong -> "strong"
  | Weak -> "weak"
  | Lock -> "lock"
  | Mvcc -> "mvcc"

let mode_of_string = function
  | "strong" -> Some Strong
  | "weak" -> Some Weak
  | "lock" -> Some Lock
  | "mvcc" -> Some Mvcc
  | _ -> None

let config = function
  | Strong -> Stm_core.Config.eager_strong
  | Weak | Lock -> Stm_core.Config.eager_weak
  | Mvcc -> Stm_core.Config.mvcc_strong

(* Entry object layout: field 0 = key, field 1 = next link,
   fields 2 .. 2+value_size-1 = value words. *)
let fld_key = 0
let fld_next = 1
let fld_val = 2

(* Shard header layout: field 0 = commit seqno, field 1 = entry count. *)
let fld_seqno = 0
let fld_count = 1

type t = {
  mode : mode;
  shards : int;
  buckets : int;
  value_size : int;
  tables : Heap.obj array;  (** per shard: fields are the chain heads *)
  headers : Heap.obj array;
  locks : Sim_mutex.t array;  (** empty unless [Lock] *)
  oid_shard : (int, int) Hashtbl.t;
  oid_key : (int, int) Hashtbl.t;
}

let mode t = t.mode
let shards t = t.shards
let value_size t = t.value_size

let mix k =
  let k = (k + 0x27d4eb2f165667c5) land max_int in
  let k = k lxor (k lsr 29) in
  let k = k * 0x165667b19e3779f9 land max_int in
  let k = k lxor (k lsr 32) in
  k

let shard_of_key t k = mix k mod t.shards
let bucket_of_key t k = mix k / t.shards mod t.buckets

let create ?(buckets = 64) ?(value_size = 4) ~mode ~shards ~cost () =
  if shards <= 0 then invalid_arg "Kv.create: shards must be positive";
  if buckets <= 0 then invalid_arg "Kv.create: buckets must be positive";
  if value_size <= 0 then invalid_arg "Kv.create: value_size must be positive";
  let oid_shard = Hashtbl.create 1024 in
  let tables =
    Array.init shards (fun s ->
        let o = Stm.alloc_public ~cls:"StoreTable" buckets in
        Hashtbl.replace oid_shard o.Heap.oid s;
        o)
  in
  let headers =
    Array.init shards (fun s ->
        let o = Stm.alloc_public ~cls:"StoreHeader" 2 in
        Heap.set o fld_seqno (Heap.Vint 0);
        Heap.set o fld_count (Heap.Vint 0);
        Hashtbl.replace oid_shard o.Heap.oid s;
        o)
  in
  let locks =
    match mode with
    | Lock ->
        Array.init shards (fun s ->
            Sim_mutex.create ~name:(Printf.sprintf "shard-%d" s) cost)
    | Strong | Weak | Mvcc -> [||]
  in
  {
    mode;
    shards;
    buckets;
    value_size;
    tables;
    headers;
    locks;
    oid_shard;
    oid_key = Hashtbl.create 4096;
  }

(* Mode-sensitive access path: the lock baseline runs on the
   barrier-elided accesses (the paper's "Synch" series has no STM
   barriers at all); the STM modes go through the context-sensitive
   read/write, which is transactional inside [Stm.atomic] and the
   configured non-transactional path outside. *)
let rd t o f =
  match t.mode with
  | Lock -> Stm.read_nobarrier o f
  | Strong | Weak | Mvcc -> Stm.read o f

let wr t o f v =
  match t.mode with
  | Lock -> Stm.write_nobarrier o f v
  | Strong | Weak | Mvcc -> Stm.write o f v

(* Run [f] atomically with respect to the given shards: an atomic block
   under the STM modes, the shard mutexes in ascending order under the
   lock baseline (total order on locks = no simulated deadlock). *)
let atomically t shs f =
  match t.mode with
  | Strong | Weak | Mvcc -> Stm.atomic f
  | Lock ->
      let shs = List.sort_uniq compare shs in
      let rec go = function
        | [] -> f ()
        | s :: rest -> Sim_mutex.with_lock t.locks.(s) (fun () -> go rest)
      in
      go shs

(* Single-key non-transactional ops take the shard lock in [Lock] mode
   and run bare otherwise (that is the point of the mixed traffic). *)
let nontxn t sh f =
  match t.mode with
  | Strong | Weak | Mvcc -> f ()
  | Lock -> Sim_mutex.with_lock t.locks.(sh) f

let register_entry t e k sh =
  Hashtbl.replace t.oid_shard e.Heap.oid sh;
  Hashtbl.replace t.oid_key e.Heap.oid k

let find t k =
  let sh = shard_of_key t k and b = bucket_of_key t k in
  let rec walk v =
    match v with
    | Heap.Vref e ->
        if Stm.to_int (rd t e fld_key) = k then Some e else walk (rd t e fld_next)
    | _ -> None
  in
  walk (rd t t.tables.(sh) b)

let write_value t e v =
  for i = 0 to t.value_size - 1 do
    wr t e (fld_val + i) (Stm.vint v)
  done

let read_value t e = Stm.to_int (rd t e fld_val)

let bump_seqno t sh =
  let h = t.headers.(sh) in
  wr t h fld_seqno (Stm.vint (Stm.to_int (rd t h fld_seqno) + 1))

let adjust_count t sh d =
  let h = t.headers.(sh) in
  wr t h fld_count (Stm.vint (Stm.to_int (rd t h fld_count) + d))

(* ------------------------------------------------------------------ *)
(* Preload                                                             *)
(* ------------------------------------------------------------------ *)

let preload t ~keys ~value =
  let counts = Array.make t.shards 0 in
  for k = 0 to keys - 1 do
    let sh = shard_of_key t k and b = bucket_of_key t k in
    let e = Heap.alloc ~cls:"StoreEntry" (fld_val + t.value_size) in
    register_entry t e k sh;
    Heap.set e fld_key (Heap.Vint k);
    Heap.set e fld_next (Heap.get t.tables.(sh) b);
    for i = 0 to t.value_size - 1 do
      Heap.set e (fld_val + i) (Heap.Vint (value k))
    done;
    Heap.set t.tables.(sh) b (Heap.Vref e);
    counts.(sh) <- counts.(sh) + 1
  done;
  Array.iteri
    (fun sh n ->
      let h = t.headers.(sh) in
      match Heap.get h fld_count with
      | Heap.Vint c -> Heap.set h fld_count (Heap.Vint (c + n))
      | _ -> Heap.set h fld_count (Heap.Vint n))
    counts

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let get t k =
  nontxn t (shard_of_key t k) (fun () ->
      match find t k with Some e -> Some (read_value t e) | None -> None)

let insert_body t k v =
  let sh = shard_of_key t k and b = bucket_of_key t k in
  bump_seqno t sh;
  match find t k with
  | Some e ->
      write_value t e v;
      false
  | None ->
      let e = Stm.alloc_public ~cls:"StoreEntry" (fld_val + t.value_size) in
      register_entry t e k sh;
      wr t e fld_key (Stm.vint k);
      wr t e fld_next (rd t t.tables.(sh) b);
      write_value t e v;
      wr t t.tables.(sh) b (Stm.vref e);
      adjust_count t sh 1;
      true

let insert t k v = atomically t [ shard_of_key t k ] (fun () -> insert_body t k v)

let put t k v =
  let sh = shard_of_key t k in
  let updated =
    nontxn t sh (fun () ->
        match find t k with
        | Some e ->
            write_value t e v;
            true
        | None -> false)
  in
  if updated then false else insert t k v

let add t k d =
  nontxn t (shard_of_key t k) (fun () ->
      match find t k with
      | Some e ->
          let v = read_value t e + d in
          write_value t e v;
          Some v
      | None -> None)

(* rmw bumps the seqno *after* the entry write: writers still serialize
   per shard on the header granule, but a conflict between two writers
   of the same hot key is detected at the entry first, so the diag
   heatmap attributes it to the key rather than to the shard header. *)
let rmw t k ~f =
  atomically t
    [ shard_of_key t k ]
    (fun () ->
      let r =
        match find t k with
        | Some e ->
            let v = f (read_value t e) in
            write_value t e v;
            Some v
        | None -> None
      in
      bump_seqno t (shard_of_key t k);
      r)

let delete t k =
  let sh = shard_of_key t k and b = bucket_of_key t k in
  atomically t [ sh ] (fun () ->
      bump_seqno t sh;
      let table = t.tables.(sh) in
      let rec walk prev v =
        match v with
        | Heap.Vref e ->
            if Stm.to_int (rd t e fld_key) = k then begin
              let nxt = rd t e fld_next in
              (match prev with
              | None -> wr t table b nxt
              | Some p -> wr t p fld_next nxt);
              adjust_count t sh (-1);
              true
            end
            else walk (Some e) (rd t e fld_next)
        | _ -> false
      in
      walk None (rd t table b))

let shards_of_keys t ks =
  Array.fold_left
    (fun acc k ->
      let s = shard_of_key t k in
      if List.mem s acc then acc else s :: acc)
    [] ks

let read_headers t shs =
  match t.mode with
  | Lock -> ()  (* the locks are held; no snapshot validation needed *)
  | Strong | Weak | Mvcc ->
      List.iter (fun s -> ignore (rd t t.headers.(s) fld_seqno)) shs

let multi_get t ks =
  let shs = List.sort_uniq compare (shards_of_keys t ks) in
  atomically t shs (fun () ->
      read_headers t shs;
      Array.map
        (fun k -> match find t k with Some e -> Some (read_value t e) | None -> None)
        ks)

let scan t k0 ~len =
  let ks = Array.init (max 1 len) (fun i -> k0 + i) in
  let shs = List.sort_uniq compare (shards_of_keys t ks) in
  atomically t shs (fun () ->
      read_headers t shs;
      Array.fold_left
        (fun n k -> match find t k with Some _ -> n + 1 | None -> n)
        0 ks)

(* ------------------------------------------------------------------ *)
(* Post-run inspection                                                 *)
(* ------------------------------------------------------------------ *)

let raw_int o f = match Heap.get o f with Heap.Vint n -> n | _ -> 0

let fold t ~init ~f =
  let acc = ref init in
  for s = 0 to t.shards - 1 do
    for b = 0 to t.buckets - 1 do
      let rec walk v =
        match v with
        | Heap.Vref e ->
            acc := f !acc (raw_int e fld_key) (raw_int e fld_val);
            walk (Heap.get e fld_next)
        | _ -> ()
      in
      walk (Heap.get t.tables.(s) b)
    done
  done;
  !acc

let entry_count t = fold t ~init:0 ~f:(fun n _ _ -> n + 1)

let seqno_sum t =
  Array.fold_left (fun acc h -> acc + raw_int h fld_seqno) 0 t.headers

let check_invariants t =
  let viols = ref [] in
  let viol fmt = Printf.ksprintf (fun s -> viols := s :: !viols) fmt in
  (* a chain longer than every entry ever linked must be a cycle *)
  let chain_bound = 1 + Hashtbl.length t.oid_key in
  for s = 0 to t.shards - 1 do
    let seen = Hashtbl.create 64 in
    let count = ref 0 in
    for b = 0 to t.buckets - 1 do
      let steps = ref 0 in
      let rec walk v =
        match v with
        | Heap.Vref e ->
            incr steps;
            if !steps > chain_bound then
              viol "shard %d bucket %d: chain cycle" s b
            else begin
              let k = raw_int e fld_key in
              if shard_of_key t k <> s || bucket_of_key t k <> b then
                viol "key %d misplaced in shard %d bucket %d" k s b;
              if Hashtbl.mem seen k then viol "key %d duplicated in shard %d" k s
              else Hashtbl.replace seen k ();
              incr count;
              walk (Heap.get e fld_next)
            end
        | _ -> ()
      in
      walk (Heap.get t.tables.(s) b)
    done;
    let declared = raw_int t.headers.(s) fld_count in
    if declared <> !count then
      viol "shard %d header count %d but %d entries reachable" s declared !count
  done;
  List.rev !viols

let key_of_oid t oid = Hashtbl.find_opt t.oid_key oid
let shard_of_oid t oid = Hashtbl.find_opt t.oid_shard oid
