type op = Get | Put | Add | Rmw | Touch | Multi_get | Scan | Insert | Delete

let all_ops = [ Get; Put; Add; Rmw; Touch; Multi_get; Scan; Insert; Delete ]

let nontransactional = function
  | Get | Put | Add -> true
  | Rmw | Touch | Multi_get | Scan | Insert | Delete -> false

let op_name = function
  | Get -> "get"
  | Put -> "put"
  | Add -> "add"
  | Rmw -> "rmw"
  | Touch -> "touch"
  | Multi_get -> "multi_get"
  | Scan -> "scan"
  | Insert -> "insert"
  | Delete -> "delete"

type t = {
  pname : string;
  aliases : string list;
  pdescr : string;
  mix : (int * op) list;
}

let read_heavy =
  {
    pname = "read-heavy";
    aliases = [ "b" ];
    pdescr = "90% get / 5% multi-get / 5% rmw (YCSB B)";
    mix = [ (90, Get); (5, Multi_get); (5, Rmw) ];
  }

let update_heavy =
  {
    pname = "update-heavy";
    aliases = [ "a" ];
    pdescr = "50% get / 50% non-transactional put (YCSB A)";
    mix = [ (50, Get); (50, Put) ];
  }

let read_only =
  {
    pname = "read-only";
    aliases = [ "c" ];
    pdescr = "95% get / 5% multi-get (YCSB C)";
    mix = [ (95, Get); (5, Multi_get) ];
  }

let churn =
  {
    pname = "churn";
    aliases = [ "d" ];
    pdescr = "85% get / 10% insert / 5% delete (YCSB D-like)";
    mix = [ (85, Get); (10, Insert); (5, Delete) ];
  }

let scan_heavy =
  {
    pname = "scan-heavy";
    aliases = [ "e"; "scan" ];
    pdescr = "90% scan / 5% insert / 5% rmw (YCSB E-like)";
    mix = [ (90, Scan); (5, Insert); (5, Rmw) ];
  }

let rmw_mix =
  {
    pname = "rmw";
    aliases = [ "f" ];
    pdescr = "50% get / 50% transactional read-modify-write (YCSB F)";
    mix = [ (50, Get); (50, Rmw) ];
  }

let write_heavy =
  {
    pname = "write-heavy";
    aliases = [];
    pdescr = "10% get / 40% put / 40% rmw / 10% insert";
    mix = [ (10, Get); (40, Put); (40, Rmw); (10, Insert) ];
  }

let batch_mix =
  {
    pname = "batch";
    aliases = [];
    pdescr = "50% multi-get / 30% get / 20% rmw";
    mix = [ (50, Multi_get); (30, Get); (20, Rmw) ];
  }

let anomaly =
  {
    pname = "anomaly";
    aliases = [ "mixed-rmw" ];
    pdescr =
      "50% transactional value-preserving touch / 50% non-transactional \
       add: any drift in the key-sum is implementation-caused — the \
       Figure 6 lost-update/dirty-read anomalies under weak atomicity";
    mix = [ (50, Touch); (50, Add) ];
  }

let all =
  [
    read_heavy;
    update_heavy;
    read_only;
    churn;
    scan_heavy;
    rmw_mix;
    write_heavy;
    batch_mix;
    anomaly;
  ]

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun p -> String.lowercase_ascii p.pname = s || List.mem s p.aliases)
    all

let ops_of t = List.map snd t.mix

let counts_increments t =
  List.for_all
    (fun o ->
      match o with
      | Get | Multi_get | Scan | Rmw | Touch | Add -> true
      | Put | Insert | Delete -> false)
    (ops_of t)

let structural t =
  List.exists (fun o -> o = Insert || o = Delete) (ops_of t)
