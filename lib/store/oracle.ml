open Stm_core
module History = Stm_check.History

(* First value word of an entry object (Kv's layout). Only accesses to
   this field enter the history: the key and link words, the shard
   headers, and the payload mirror words are structural and projected
   out. *)
let fld_val = 2

type frame = {
  f_txid : int;
  mutable f_accs : (History.loc * History.value * bool) list;  (* reversed *)
  mutable f_serial : int option;
}

type t = {
  lookup : int -> int option;
  mutable enabled : bool;
  mutable stamp : int;
  frames : (int, frame list) Hashtbl.t;  (* sched tid -> open txn stack *)
  mutable raw_nodes : History.node list;  (* reversed *)
  mutable init : (History.loc * History.value) list;
  mutable final : (History.loc * History.value) list;
}

let create ~lookup () =
  {
    lookup;
    enabled = false;
    stamp = 0;
    frames = Hashtbl.create 16;
    raw_nodes = [];
    init = [];
    final = [];
  }

let set_enabled t on = t.enabled <- on

let set_init t kvs =
  t.init <- List.map (fun (k, v) -> (History.Cell k, History.Vi v)) kvs

let set_final t kvs =
  t.final <- List.map (fun (k, v) -> (History.Cell k, History.Vi v)) kvs

let push_frame t tid f =
  let stack = Option.value (Hashtbl.find_opt t.frames tid) ~default:[] in
  Hashtbl.replace t.frames tid (f :: stack)

let find_frame t tid txid =
  match Hashtbl.find_opt t.frames tid with
  | None -> None
  | Some stack -> List.find_opt (fun f -> f.f_txid = txid) stack

let pop_frame t tid txid =
  match Hashtbl.find_opt t.frames tid with
  | None -> None
  | Some stack ->
      let popped = List.find_opt (fun f -> f.f_txid = txid) stack in
      Hashtbl.replace t.frames tid
        (List.filter (fun f -> f.f_txid <> txid) stack);
      popped

(* Same read/write-set discipline as Stm_check.Exec: reads in program
   order with duplicates kept, but reads of a location the transaction
   has already written observe its own pending store and impose no
   inter-node dependency; writes keep the last value per location. *)
let split_accs accs_rev =
  let own = Hashtbl.create 8 in
  let reads =
    List.rev accs_rev
    |> List.filter_map (fun (l, v, w) ->
           if w then begin
             Hashtbl.replace own l ();
             None
           end
           else if Hashtbl.mem own l then None
           else Some (l, v))
  in
  let seen = Hashtbl.create 8 in
  let writes =
    List.fold_left
      (fun acc (l, v, w) ->
        if w && not (Hashtbl.mem seen l) then begin
          Hashtbl.add seen l ();
          (l, v) :: acc
        end
        else acc)
      [] accs_rev
  in
  (reads, writes)

let add_raw t node = t.raw_nodes <- node :: t.raw_nodes

let on_event t (ev : Trace.event) =
  t.stamp <- t.stamp + 1;
  let now = t.stamp in
  if t.enabled then
    match ev with
    | Trace.Access { tid; txid; oid; fld; value; write } when fld = fld_val -> (
        match (t.lookup oid, value) with
        | Some key, Stm_runtime.Heap.Vint n ->
            let l = History.Cell key and v = History.Vi n in
            if txid >= 0 then (
              match find_frame t tid txid with
              | Some f -> f.f_accs <- (l, v, write) :: f.f_accs
              | None -> ())
            else
              add_raw t
                {
                  History.id = 0;
                  tid;
                  txn = false;
                  stamp = now;
                  tag = None;
                  reads = (if write then [] else [ (l, v) ]);
                  writes = (if write then [ (l, v) ] else []);
                }
        | _ -> ())
    | Trace.Txn_begin { txid; tid } ->
        push_frame t tid { f_txid = txid; f_accs = []; f_serial = None }
    | Trace.Txn_serialized { txid; tid } -> (
        match find_frame t tid txid with
        | Some f -> f.f_serial <- Some now
        | None -> ())
    | Trace.Txn_commit { txid; tid; _ } -> (
        match pop_frame t tid txid with
        | None -> ()
        | Some f ->
            let reads, writes = split_accs f.f_accs in
            add_raw t
              {
                History.id = 0;
                tid;
                txn = true;
                stamp = Option.value f.f_serial ~default:now;
                reads;
                writes;
                tag = None;
              })
    | Trace.Txn_abort { txid; tid; _ } -> ignore (pop_frame t tid txid)
    | _ -> ()

let history t =
  let nodes =
    (* transactions that touched only structural state (scan presence
       checks, bare seqno bumps) project to empty nodes — drop them *)
    List.filter
      (fun (n : History.node) -> n.History.reads <> [] || n.History.writes <> [])
      (List.rev t.raw_nodes)
    |> List.sort (fun (a : History.node) b ->
           compare a.History.stamp b.History.stamp)
  in
  let nodes =
    List.mapi (fun i (n : History.node) -> { n with History.id = i }) nodes
  in
  { History.init = t.init; nodes; final = t.final }

let check t =
  match History.check_graph (history t) with
  | None -> History.Serializable
  | Some a -> History.Anomalous a
