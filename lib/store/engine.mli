(** YCSB-style closed-loop workload engine over {!Kv}.

    One simulated thread per client; each client draws operations from
    its profile's weighted mix and keys from its own deterministic
    {!Keydist} sampler, and issues them back-to-back (closed loop)
    against the shared store. Everything is seeded: a [(params, seed)]
    pair reproduces the run bit-for-bit, makespan included.

    Reported metrics ride the existing observability pipeline:
    throughput is operations per {e megacycle} of makespan on the
    simulated cost clock (the parallel execution time under the
    [Min_clock] discrete-event policy), per-op-class latencies are
    {!Stm_obs.Hist} histograms of cost-clock cycles, per-shard abort
    counts come from the [Txn_abort] attribution events, and the full
    {!Stm_obs.Metrics} block (abort causes, fairness, latency
    histograms) is embedded in the JSON report ([stm-store/1]).

    [record] mode additionally rewrites every stored value to a
    globally-unique token and runs the {!Oracle} collector, so the
    run's verdict under {!Stm_check.History.check_graph} is part of the
    report — the store's differential check against the
    serializability oracle. *)

open Stm_runtime

type params = {
  mode : Kv.mode;
  shards : int;
  clients : int;
  keys : int;  (** preloaded key-space size *)
  buckets : int;  (** hash buckets per shard *)
  value_size : int;  (** heap words per value *)
  batch : int;  (** keys per [multi_get] *)
  scan_len : int;  (** keys per [scan] *)
  ops_per_client : int;
  dist : Keydist.dist;
  profile : Profile.t;
  seed : int;
  cm : Stm_cm.Policy.t;
  record : bool;  (** unique-token values + serializability audit *)
  fuel : int;  (** scheduler step bound *)
}

val default : params
(** strong / 4 shards / 8 clients / 1024 keys / zipfian(0.99) /
    read-heavy / 128 ops per client / timestamp CM. *)

val config : params -> Stm_core.Config.t
(** The STM configuration the run installs: {!Kv.config} of the mode
    with the contention-management policy and seed applied. *)

type class_stat = {
  cs_ops : int;  (** operations issued *)
  cs_misses : int;  (** operations that found no key (get/rmw on absent) *)
  cs_hist : Stm_obs.Hist.t;  (** per-op latency, cost-clock cycles *)
}

type report = {
  r_params : params;
  r_status : Sched.status;
  r_completed : bool;
  r_makespan : int;
  r_total_ops : int;
  r_throughput : float;  (** ops per megacycle of makespan *)
  r_classes : (Profile.op * class_stat) list;  (** mix order *)
  r_shard_aborts : int array;
  r_shard_commits : int array;
  r_stats : Stm_core.Stats.t;
  r_metrics : Stm_obs.Metrics.t;
  r_invariants : string list;  (** {!Kv.check_invariants} violations *)
  r_increments : int;  (** committed +1s (rmw/add) when the profile counts them *)
  r_deviation : int option;
      (** final key-sum minus expected key-sum, for increment-counting
          profiles: [Some 0] iff no update was lost or invented — the
          store-level Figure 6 verdict. [None] when the mix has
          non-increment writes. *)
  r_verdict : Stm_check.History.verdict option;  (** [record] runs only *)
  r_resolve_oid : int -> (int * int) option;
      (** post-run oid -> (key, shard) for entry granules: joins the
          diag heatmap's hot granules back to hot keys *)
}

val run : ?consumer:(Stm_core.Trace.event -> unit) -> params -> report
(** Execute one run. [consumer] additionally receives the full
    Debug-level event stream (the diag pipeline / trace recorder hook);
    the report's own metrics are fed Info events either way, so a run
    reports identical counters with or without it. *)

val nontxn_mean_latency : report -> float
(** Mean simulated cycles per non-transactional operation
    ({!Profile.nontransactional} classes). Those ops pay only the
    isolation barriers, so comparing this between a strong- and a
    weak-mode run of identical traffic isolates the barrier overhead
    from contention-manager timing noise. [0.] if the mix has no such
    class. *)

val to_json : report -> Stm_obs.Json.t
(** The [stm-store/1] run document. *)

val pp_report : Format.formatter -> report -> unit
