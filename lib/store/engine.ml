open Stm_runtime
module Stm = Stm_core.Stm
module Trace = Stm_core.Trace
module Config = Stm_core.Config

type params = {
  mode : Kv.mode;
  shards : int;
  clients : int;
  keys : int;
  buckets : int;
  value_size : int;
  batch : int;
  scan_len : int;
  ops_per_client : int;
  dist : Keydist.dist;
  profile : Profile.t;
  seed : int;
  cm : Stm_cm.Policy.t;
  record : bool;
  fuel : int;
}

let default =
  {
    mode = Kv.Strong;
    shards = 4;
    clients = 8;
    keys = 1024;
    buckets = 64;
    value_size = 4;
    batch = 8;
    scan_len = 8;
    ops_per_client = 128;
    dist = Keydist.Zipfian 0.99;
    profile = Profile.read_heavy;
    seed = 0;
    cm = Stm_cm.Policy.Timestamp;
    record = false;
    fuel = 20_000_000;
  }

let config p =
  { (Kv.config p.mode) with Config.cm = p.cm; cm_seed = p.seed }

let validate p =
  if p.shards <= 0 then invalid_arg "store: shards must be positive";
  if p.clients <= 0 then invalid_arg "store: clients must be positive";
  if p.keys < p.clients then invalid_arg "store: need at least one key per client";
  if p.ops_per_client <= 0 then invalid_arg "store: ops_per_client must be positive";
  if p.batch <= 0 || p.scan_len <= 0 then
    invalid_arg "store: batch and scan_len must be positive";
  if p.record && Profile.structural p.profile then
    invalid_arg
      (Printf.sprintf
         "store: profile %s inserts/deletes keys and cannot be oracle-recorded"
         p.profile.Profile.pname)

type class_stat = {
  cs_ops : int;
  cs_misses : int;
  cs_hist : Stm_obs.Hist.t;
}

type report = {
  r_params : params;
  r_status : Sched.status;
  r_completed : bool;
  r_makespan : int;
  r_total_ops : int;
  r_throughput : float;
  r_classes : (Profile.op * class_stat) list;
  r_shard_aborts : int array;
  r_shard_commits : int array;
  r_stats : Stm_core.Stats.t;
  r_metrics : Stm_obs.Metrics.t;
  r_invariants : string list;
  r_increments : int;
  r_deviation : int option;
  r_verdict : Stm_check.History.verdict option;
  r_resolve_oid : int -> (int * int) option;
}

(* Mutable per-class accounting, shared by every client: the simulation
   is cooperative, so there is no host-level data race. *)
type class_acc = {
  mutable a_ops : int;
  mutable a_misses : int;
  a_hist : Stm_obs.Hist.t;
}

type ctx = {
  p : params;
  mutable store : Kv.t option;
  accs : (Profile.op * class_acc) list;
  shard_commits : int array;
  token_next : int ref;  (** record mode: globally-unique value tokens *)
  mutable increments : int;
  mutable invariants : string list;
  mutable final_sum : int;
  mutable final_kvs : (int * int) list;
}

let store_of ctx = Option.get ctx.store

let acc_of ctx op = List.assq op ctx.accs

let fresh_token ctx =
  let t = !(ctx.token_next) in
  ctx.token_next := t + 1;
  t

(* ------------------------------------------------------------------ *)
(* Client bodies                                                       *)
(* ------------------------------------------------------------------ *)

(* The [Add] class models non-transactional read-modify-writes issued by
   code that "knows" it is the only writer that changes a key's value —
   each client increments only its own residue class, and the
   transactional [Touch] traffic it races is value-preserving. Any lost
   or phantom update is therefore attributable to transactional /
   non-transactional interplay inside the TM (the paper's subject),
   never to an application-level race: strong atomicity isolates add's
   two accesses individually, and since no concurrent writer changes
   the value, that is enough for the sum to stay exact. *)
let own_slice p c k =
  let k' = k - (k mod p.clients) + c in
  if k' >= p.keys then c else k'

let run_op ctx c ~sampler ~rng ~next_insert ~inserted op =
  let p = ctx.p in
  let store = store_of ctx in
  let miss = ref false in
  (match (op : Profile.op) with
  | Profile.Get ->
      let k = Keydist.next sampler in
      if Kv.get store k = None then miss := true
  | Profile.Put ->
      let k = Keydist.next sampler in
      let v = if p.record then fresh_token ctx else Det_rng.int rng 1_000 in
      ignore (Kv.put store k v)
  | Profile.Add ->
      let k = own_slice p c (Keydist.next sampler) in
      if p.record then begin
        (* record mode wants globally-unique values, and add writes back
           the value it read — a duplicate. Keep the traffic shape
           (non-txn read then non-txn write racing the rmw transactions)
           but make the write blind with a fresh token. *)
        let v = fresh_token ctx in
        (match Kv.get store k with None -> miss := true | Some _ -> ());
        ignore (Kv.put store k v)
      end
      else begin
        match Kv.add store k 1 with
        | Some _ -> ctx.increments <- ctx.increments + 1
        | None -> miss := true
      end
  | Profile.Rmw ->
      let k = Keydist.next sampler in
      let f v = if p.record then fresh_token ctx else v + 1 in
      (match Kv.rmw store k ~f with
      | Some _ ->
          if not p.record then ctx.increments <- ctx.increments + 1;
          ctx.shard_commits.(Kv.shard_of_key store k) <-
            ctx.shard_commits.(Kv.shard_of_key store k) + 1
      | None -> miss := true)
  | Profile.Touch ->
      (* value-preserving transactional re-write on the shared hot keys:
         commits are invisible to the key-sum, so only implementation
         anomalies (weak-mode rollback clobber, dirty reads) move it *)
      let k = Keydist.next sampler in
      let f v = if p.record then fresh_token ctx else v in
      (match Kv.rmw store k ~f with
      | Some _ ->
          ctx.shard_commits.(Kv.shard_of_key store k) <-
            ctx.shard_commits.(Kv.shard_of_key store k) + 1
      | None -> miss := true)
  | Profile.Multi_get ->
      let ks = Array.init p.batch (fun _ -> Keydist.next sampler) in
      let vs = Kv.multi_get store ks in
      if Array.exists (fun v -> v = None) vs then miss := true
  | Profile.Scan ->
      let k0 = Keydist.next sampler in
      let k0 = if k0 + p.scan_len > p.keys then max 0 (p.keys - p.scan_len) else k0 in
      if Kv.scan store k0 ~len:p.scan_len = 0 then miss := true
  | Profile.Insert ->
      let k = !next_insert in
      next_insert := k + 1;
      let v = if p.record then fresh_token ctx else Det_rng.int rng 1_000 in
      if Kv.insert store k v then begin
        inserted := k :: !inserted;
        ctx.shard_commits.(Kv.shard_of_key store k) <-
          ctx.shard_commits.(Kv.shard_of_key store k) + 1
      end
  | Profile.Delete ->
      let k =
        match !inserted with
        | k :: rest ->
            inserted := rest;
            k
        | [] -> Keydist.next sampler
      in
      if Kv.delete store k then
        ctx.shard_commits.(Kv.shard_of_key store k) <-
          ctx.shard_commits.(Kv.shard_of_key store k) + 1
      else miss := true);
  !miss

let client_body ctx c ~op_rng ~key_rng () =
  let p = ctx.p in
  let sampler = Keydist.create ~keys:p.keys ~dist:p.dist key_rng in
  let next_insert = ref (p.keys + (c * p.ops_per_client)) in
  let inserted = ref [] in
  for _ = 1 to p.ops_per_client do
    let op = Det_rng.weighted op_rng p.profile.Profile.mix in
    let acc = acc_of ctx op in
    let t0 = Sched.time () in
    let miss = run_op ctx c ~sampler ~rng:op_rng ~next_insert ~inserted op in
    Stm_obs.Hist.add acc.a_hist (Sched.time () - t0);
    acc.a_ops <- acc.a_ops + 1;
    if miss then acc.a_misses <- acc.a_misses + 1
  done

(* ------------------------------------------------------------------ *)
(* Main body                                                           *)
(* ------------------------------------------------------------------ *)

let main ctx oracle () =
  let p = ctx.p in
  let cost = (config p).Config.cost in
  let store =
    Kv.create ~buckets:p.buckets ~value_size:p.value_size ~mode:p.mode
      ~shards:p.shards ~cost ()
  in
  ctx.store <- Some store;
  let preload_value k = if p.record then k + 1 else 0 in
  Kv.preload store ~keys:p.keys ~value:preload_value;
  Option.iter
    (fun o ->
      Oracle.set_init o (List.init p.keys (fun k -> (k, preload_value k)));
      Oracle.set_enabled o true)
    oracle;
  let master = Det_rng.create p.seed in
  let clients =
    List.init p.clients (fun c ->
        let op_rng = Det_rng.split master in
        let key_rng = Det_rng.split master in
        (c, op_rng, key_rng))
  in
  let tids =
    List.map
      (fun (c, op_rng, key_rng) ->
        Sched.spawn
          ~name:(Printf.sprintf "client-%d" c)
          (client_body ctx c ~op_rng ~key_rng))
      clients
  in
  List.iter Sched.join tids;
  Option.iter (fun o -> Oracle.set_enabled o false) oracle;
  ctx.invariants <- Kv.check_invariants store;
  ctx.final_sum <- Kv.fold store ~init:0 ~f:(fun acc _ v -> acc + v);
  ctx.final_kvs <-
    List.rev (Kv.fold store ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let run ?consumer p =
  validate p;
  let metrics = Stm_obs.Metrics.create () in
  let shard_aborts = Array.make p.shards 0 in
  let ctx =
    {
      p;
      store = None;
      accs =
        List.map
          (fun (_, op) ->
            (op, { a_ops = 0; a_misses = 0; a_hist = Stm_obs.Hist.create () }))
          p.profile.Profile.mix;
      shard_commits = Array.make p.shards 0;
      token_next = ref (max 1_000_000 (p.keys + (p.clients * p.ops_per_client) + 1));
      increments = 0;
      invariants = [];
      final_sum = 0;
      final_kvs = [];
    }
  in
  let oracle =
    if p.record then
      Some
        (Oracle.create
           ~lookup:(fun oid -> Option.bind ctx.store (fun s -> Kv.key_of_oid s oid))
           ())
    else None
  in
  let info_handle ev =
    Stm_obs.Metrics.handle metrics ev;
    match ev with
    | Trace.Txn_abort { oid; _ } when oid >= 0 -> (
        match Option.bind ctx.store (fun s -> Kv.shard_of_oid s oid) with
        | Some sh -> shard_aborts.(sh) <- shard_aborts.(sh) + 1
        | None -> ())
    | _ -> ()
  in
  let need_debug = p.record || consumer <> None in
  let sink ev =
    if Trace.event_level ev = Trace.Info then info_handle ev;
    Option.iter (fun o -> Oracle.on_event o ev) oracle;
    Option.iter (fun c -> c ev) consumer
  in
  let level = if need_debug then Trace.Debug else Trace.Info in
  (* At Info level the sink only ever receives Info events, so the two
     installation levels feed [metrics] identically. *)
  Trace.set_sink ~level (Some sink);
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let result, stats =
        Stm.run ~policy:Sched.Min_clock ~max_steps:p.fuel ~cfg:(config p)
          (main ctx oracle)
      in
      let completed =
        result.Sched.status = Sched.Completed && result.Sched.exns = []
      in
      let verdict =
        match oracle with
        | None -> None
        | Some o ->
            if not completed then
              Some (Stm_check.History.Inconclusive "run did not complete")
            else begin
              Oracle.set_final o ctx.final_kvs;
              Some (Oracle.check o)
            end
      in
      let total_ops =
        List.fold_left (fun n (_, a) -> n + a.a_ops) 0 ctx.accs
      in
      let deviation =
        if
          (not p.record) && completed
          && Profile.counts_increments p.profile
        then Some (ctx.final_sum - ctx.increments)
        else None
      in
      let resolve_oid oid =
        match ctx.store with
        | None -> None
        | Some s -> (
            match (Kv.key_of_oid s oid, Kv.shard_of_oid s oid) with
            | Some k, Some sh -> Some (k, sh)
            | _ -> None)
      in
      {
        r_params = p;
        r_status = result.Sched.status;
        r_completed = completed;
        r_makespan = result.Sched.makespan;
        r_total_ops = total_ops;
        r_throughput =
          (if result.Sched.makespan > 0 then
             float_of_int total_ops /. float_of_int result.Sched.makespan
             *. 1_000_000.
           else 0.);
        r_classes =
          List.map
            (fun (op, a) ->
              ( op,
                { cs_ops = a.a_ops; cs_misses = a.a_misses; cs_hist = a.a_hist }
              ))
            ctx.accs;
        r_shard_aborts = shard_aborts;
        r_shard_commits = ctx.shard_commits;
        r_stats = stats;
        r_metrics = metrics;
        r_invariants = ctx.invariants;
        r_increments = ctx.increments;
        r_deviation = deviation;
        r_verdict = verdict;
        r_resolve_oid = resolve_oid;
      })

(* Mean simulated latency of the non-transactional op classes: those pay
   only the isolation barriers (no txn protocol, no retries), so the
   strong-vs-weak delta on identical traffic is the barrier overhead,
   immune to contention-manager timing noise. *)
let nontxn_mean_latency r =
  let tot, n =
    List.fold_left
      (fun (tot, n) (op, c) ->
        if Profile.nontransactional op then
          (tot + Stm_obs.Hist.sum c.cs_hist, n + Stm_obs.Hist.count c.cs_hist)
        else (tot, n))
      (0, 0) r.r_classes
  in
  if n = 0 then 0. else float_of_int tot /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let status_string = function
  | Sched.Completed -> "completed"
  | Sched.Fuel_exhausted -> "fuel-exhausted"
  | Sched.Deadlock _ -> "deadlock"

let to_json r =
  let open Stm_obs in
  let p = r.r_params in
  Json.Obj
    [
      ("schema", Json.Str "stm-store/1");
      ("kind", Json.Str "run");
      ( "params",
        Json.Obj
          [
            ("mode", Json.Str (Kv.mode_to_string p.mode));
            ("profile", Json.Str p.profile.Profile.pname);
            ("shards", Json.Int p.shards);
            ("clients", Json.Int p.clients);
            ("keys", Json.Int p.keys);
            ("buckets", Json.Int p.buckets);
            ("value_size", Json.Int p.value_size);
            ("batch", Json.Int p.batch);
            ("scan_len", Json.Int p.scan_len);
            ("ops_per_client", Json.Int p.ops_per_client);
            ("dist", Json.Str (Keydist.dist_to_string p.dist));
            ( "theta",
              match p.dist with
              | Keydist.Zipfian t -> Json.Float t
              | Keydist.Uniform -> Json.Null );
            ("seed", Json.Int p.seed);
            ("cm", Json.Str (Stm_cm.Policy.to_string p.cm));
            ("record", Json.Bool p.record);
          ] );
      ("status", Json.Str (status_string r.r_status));
      ("completed", Json.Bool r.r_completed);
      ("makespan", Json.Int r.r_makespan);
      ("total_ops", Json.Int r.r_total_ops);
      ("throughput_ops_per_mcycle", Json.Float r.r_throughput);
      ( "classes",
        Json.Obj
          (List.map
             (fun (op, c) ->
               ( Profile.op_name op,
                 Json.Obj
                   [
                     ("ops", Json.Int c.cs_ops);
                     ("misses", Json.Int c.cs_misses);
                     ("latency", Hist.to_json c.cs_hist);
                   ] ))
             r.r_classes) );
      ( "shards",
        Json.List
          (List.init (Array.length r.r_shard_aborts) (fun s ->
               Json.Obj
                 [
                   ("shard", Json.Int s);
                   ("aborts", Json.Int r.r_shard_aborts.(s));
                   ("commits", Json.Int r.r_shard_commits.(s));
                 ])) );
      ("increments", Json.Int r.r_increments);
      ( "update_deviation",
        match r.r_deviation with Some d -> Json.Int d | None -> Json.Null );
      ( "invariant_violations",
        Json.List (List.map (fun s -> Json.Str s) r.r_invariants) );
      ( "oracle",
        match r.r_verdict with
        | Some v -> Stm_check.History.verdict_to_json v
        | None -> Json.Null );
      ("metrics", Metrics.to_json ~stats:r.r_stats r.r_metrics);
    ]

let pp_report ppf r =
  let p = r.r_params in
  Fmt.pf ppf "@[<v>store %s/%s: %d shards, %d clients, %d keys, %s, seed %d: %s@,"
    (Kv.mode_to_string p.mode) p.profile.Profile.pname p.shards p.clients p.keys
    (Keydist.dist_to_string p.dist)
    p.seed (status_string r.r_status);
  Fmt.pf ppf "  makespan=%d ops=%d throughput=%.1f ops/Mcycle@." r.r_makespan
    r.r_total_ops r.r_throughput;
  Fmt.pf ppf "  commits=%d aborts=%d conflicts=%d backoff=%d@."
    r.r_stats.Stm_core.Stats.commits r.r_stats.Stm_core.Stats.aborts
    r.r_stats.Stm_core.Stats.conflicts r.r_stats.Stm_core.Stats.backoff_cycles;
  List.iter
    (fun (op, c) ->
      Fmt.pf ppf "  %-10s %6d ops %4d misses  p50=%d p99=%d cycles@."
        (Profile.op_name op) c.cs_ops c.cs_misses
        (Stm_obs.Hist.quantile c.cs_hist 0.5)
        (Stm_obs.Hist.quantile c.cs_hist 0.99))
    r.r_classes;
  Fmt.pf ppf "  shard aborts: [%a]@."
    Fmt.(array ~sep:(any ", ") int)
    r.r_shard_aborts;
  (match r.r_deviation with
  | Some d ->
      Fmt.pf ppf "  update deviation: %d (%d committed increments)@." d
        r.r_increments
  | None -> ());
  (match r.r_verdict with
  | Some v -> Fmt.pf ppf "  oracle: %a@." Stm_check.History.pp_verdict v
  | None -> ());
  (match r.r_invariants with
  | [] -> Fmt.pf ppf "  invariants: ok@,@]"
  | vs ->
      Fmt.pf ppf "  INVARIANT VIOLATIONS:@.";
      List.iter (fun v -> Fmt.pf ppf "    %s@." v) vs;
      Fmt.pf ppf "@]")
