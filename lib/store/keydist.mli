(** Deterministic key-distribution samplers for the store workload
    engine.

    Both distributions draw exclusively from a {!Stm_runtime.Det_rng}
    stream, so a sampler's draw sequence is a pure function of its seed:
    equal seeds give equal key sequences across runs and across hosts.

    [Zipfian theta] is the YCSB-style bounded Zipfian over [keys] ranks
    (Gray et al.'s rejection-free inversion method): rank 0 is the
    hottest key, rank frequencies fall off as [1/(r+1)^theta]. Because
    consecutive ranks would otherwise hash to consecutive hash-table
    positions, {!next} returns the rank pushed through a stateless
    integer scrambler, spreading the hot set across the whole key space
    (and therefore across store shards); {!next_rank} returns the raw
    rank for statistical tests. *)

type dist = Uniform | Zipfian of float  (** skew exponent, in (0, 1) *)

val dist_to_string : dist -> string

val dist_of_string : ?theta:float -> string -> dist option
(** ["uniform"] or ["zipfian"]; [theta] (default [0.99]) parameterizes
    the latter. *)

type t

val create : keys:int -> dist:dist -> Stm_runtime.Det_rng.t -> t
(** [create ~keys ~dist rng] prepares a sampler over [keys] keys
    (positive). The Zipfian normalization constants are computed once
    here. The sampler owns [rng] from this point on. *)

val next_rank : t -> int
(** Next draw as a popularity rank in [[0, keys)]: rank 0 most popular
    under [Zipfian], all ranks equally likely under [Uniform]. *)

val next : t -> int
(** Next draw as a key in [[0, keys)]: {!next_rank} composed with
    {!scramble} (under [Uniform] the scramble is skipped — the draw is
    already uniform). *)

val scramble : keys:int -> int -> int
(** The stateless rank-to-key scrambler (a splitmix-style finalizer
    reduced mod [keys]). Deterministic; not a bijection on [[0, keys)],
    which is fine for load spreading. *)
