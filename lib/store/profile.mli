(** YCSB-style operation mixes for the store workload engine.

    An operation class names both a store API call and its concurrency
    discipline under the STM modes: [Get], [Put] and [Add] run as
    {e non-transactional} accesses (the mixed transactional /
    non-transactional traffic the paper's strong atomicity exists for),
    while [Rmw], [Multi_get], [Scan], [Insert] and [Delete] run inside
    atomic blocks. Under [Lock] mode every class takes its shard
    lock(s) instead. *)

type op =
  | Get  (** single-key read; non-transactional under the STM modes *)
  | Put  (** single-key blind update; non-transactional *)
  | Add
      (** unsynchronized non-transactional read-modify-write (+1) on a
          client-private key slice — the Figure-2b shape that loses
          updates under weak atomicity *)
  | Rmw  (** transactional read-modify-write (+1) *)
  | Touch
      (** transactional value-preserving re-write: reads the value and
          writes it back unchanged. Against a concurrent {!Add} its
          commits are invisible — so any drift it causes (a rollback
          clobbering an interleaved add, an add reading its speculative
          state) is an {e implementation} anomaly, never an application
          race. The anomaly profile is built on this. *)
  | Multi_get  (** transactional batch of point reads *)
  | Scan  (** transactional read of a run of consecutive keys *)
  | Insert  (** transactional insert of a fresh key *)
  | Delete  (** transactional delete *)

val all_ops : op list
val op_name : op -> string

val nontransactional : op -> bool
(** [Get], [Put], [Add]: the classes that run outside atomic blocks
    under the STM modes and therefore pay (only) the isolation
    barriers — the classes the strong-vs-weak overhead comparison
    measures. *)

type t = {
  pname : string;
  aliases : string list;  (** YCSB letter names, etc. *)
  pdescr : string;
  mix : (int * op) list;  (** weights, drawn via {!Stm_runtime.Det_rng.weighted} *)
}

val all : t list

val of_string : string -> t option
(** Accepts the canonical name or any alias, case-insensitively. *)

val read_heavy : t  (** 90% get / 5% multi-get / 5% rmw (YCSB B) *)

val update_heavy : t  (** 50% get / 50% non-txn put (YCSB A) *)

val read_only : t  (** 95% get / 5% multi-get (YCSB C) *)

val churn : t  (** 85% get / 10% insert / 5% delete (YCSB D-like) *)

val scan_heavy : t  (** 90% scan / 5% insert / 5% rmw (YCSB E-like) *)

val rmw_mix : t  (** 50% get / 50% transactional rmw (YCSB F) *)

val write_heavy : t  (** 10% get / 40% put / 40% rmw / 10% insert *)

val batch_mix : t  (** 50% multi-get / 30% get / 20% rmw *)

val anomaly : t
(** 50% transactional value-preserving {!Touch} / 50% non-transactional
    {!Add} on the same hot keys: the store-traffic rendition of the
    paper's Figure 6 lost-update and dirty-read anomalies. The touches
    never change a value and each key's adds all come from one client,
    so the application itself is race-free: under strong atomicity (or
    locks) the final key-sum equals the number of committed increments
    {e exactly}, while under weak atomicity eager rollback clobbers
    interleaved adds and adds read speculative state — the key-sum
    drifts, and every unit of drift is the TM implementation's doing. *)

val counts_increments : t -> bool
(** Whether every write in the mix is a +1 increment ([Rmw]/[Add] only),
    making the final key-sum checkable against the increment count. *)

val structural : t -> bool
(** Whether the mix contains [Insert] or [Delete] (excluded from
    oracle-recorded runs, whose final-state check wants a stable key
    population). *)
