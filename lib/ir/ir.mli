(** Register-based intermediate representation for Jt programs.

    This IR plays the role of Java bytecode plus the JIT's internal
    representation in the paper: the static analyses (Section 5) annotate
    its memory-access sites, the JIT optimizations (Section 6) rewrite the
    barrier notes, and the interpreter executes it on the simulated
    multiprocessor with the configured STM.

    Methods are arrays of instructions with integer-register operands and
    absolute branch targets. Every allocation site and every memory-access
    site carries a globally unique id, assigned at lowering time, which
    the points-to analysis uses for heap abstraction and the barrier
    analyses use for reporting. *)

type ty = Tint | Tbool | Tstr | Tvoid | Tref of string | Tarr of ty

val pp_ty : Format.formatter -> ty -> unit
val ty_equal : ty -> ty -> bool

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type operand =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cnull
  | Reg of int  (** register index within the enclosing frame *)

(** Why a barrier was removed (or how it was transformed). *)
type barrier_kind =
  | Bar_auto  (** emit the barrier the configuration calls for *)
  | Bar_removed of string
      (** statically removed; the string names the analysis
          ("immutable", "escape", "nait", "tl", "clinit") *)
  | Bar_agg_start of int
      (** aggregated barrier: this access acquires the record once for a
          group of [n] accesses to the same object in this basic block *)
  | Bar_agg_member  (** covered by an open aggregated barrier *)

type note = {
  site : int;
  mutable barrier : barrier_kind;
  mutable txn_unlogged : bool;
      (** Section 5.2 extension: this transactional read needs no
          open-for-read barrier (no object it can reach is written in any
          transaction). Sound under weak atomicity only; the interpreter
          ignores the flag under strong atomicity, where the removal
          would miss conflicts with non-transactional writers. *)
}

type call_target =
  | Static of string * string  (** class, method *)
  | Virtual of string * string  (** static receiver class, method *)

type instr =
  | Nop
  | Move of int * operand
  | Unop of int * unop * operand
  | Binop of int * binop * operand * operand
  | New of { dst : int; cls : string; site : int }
  | NewArr of { dst : int; elt : ty; len : operand; site : int }
  | Load of { dst : int; obj : operand; cls : string; fld : string; fidx : int; note : note }
  | Store of { obj : operand; cls : string; fld : string; fidx : int; src : operand; note : note }
  | LoadS of { dst : int; cls : string; fld : string; fidx : int; note : note }
  | StoreS of { cls : string; fld : string; fidx : int; src : operand; note : note }
  | ALoad of { dst : int; arr : operand; idx : operand; note : note }
  | AStore of { arr : operand; idx : operand; src : operand; note : note }
  | ALen of int * operand
  | Call of { dst : int option; target : call_target; this : operand option; args : operand list }
  | Builtin of { dst : int option; name : string; args : operand list }
  | If of operand * int  (** branch if true *)
  | Goto of int
  | Ret of operand option
  | AtomicBegin of int  (** pc of the matching AtomicEnd *)
  | AtomicEnd
  | MonitorEnter of operand
  | MonitorExit of operand
  | Print of operand
  | Retry

type field = {
  fname : string;
  fty : ty;
  f_final : bool;
  f_volatile : bool;
  f_static : bool;
  f_init : operand option;  (** constant initializer for static fields *)
}

type meth = {
  mcls : string;
  mname : string;
  m_static : bool;
  params : (string * ty) list;  (** register 0.. (after [this] if any) *)
  ret : ty;
  nregs : int;
  mutable body : instr array;
  reg_names : string array;  (** for diagnostics *)
}

type cls = {
  cname : string;
  super : string option;
  fields : field list;  (** declared in this class only *)
  mutable meths : meth list;
}

type program = {
  classes : (string, cls) Hashtbl.t;
  mutable main_class : string;
  mutable next_site : int;
  site_locs : (int, string * int) Hashtbl.t;
      (** site id -> (source name, 1-based line); filled by the Jt
          front end so profiles and traces print [file:line] sites *)
}

val create_program : unit -> program
val add_class : program -> cls -> unit
val find_class : program -> string -> cls
val fresh_site : program -> int

val set_site_loc : program -> int -> file:string -> line:int -> unit
(** Record the source location of an access or allocation site. *)

val site_loc : program -> int -> (string * int) option

val pp_site : program -> Format.formatter -> int -> unit
(** Render a site id as ["file:line"], falling back to ["site N"] for
    sites with no recorded location (programs built directly in IR). *)

val is_subclass : program -> string -> string -> bool
(** [is_subclass p c d]: is [c] equal to or a subclass of [d]? *)

val is_thread_class : program -> string -> bool
(** Does the class extend the built-in [Thread]? *)

(** {1 Layout} *)

val instance_fields : program -> string -> field list
(** All instance fields of a class, superclass fields first — the index in
    this list is the heap field index. *)

val instance_field_index : program -> string -> string -> int * field
(** [(index, declaration)] of a named instance field, searching the
    hierarchy. Raises [Not_found]. *)

val static_fields : program -> string -> field list
(** Static fields declared by the class itself (statics are not
    inherited into the holder object). *)

val static_field_index : program -> string -> string -> string * int * field
(** Resolve a static field reference [C.f] to [(declaring class, index,
    declaration)], searching the hierarchy upwards. *)

val find_method : program -> string -> string -> meth option
(** Static lookup through the hierarchy. *)

val resolve_virtual : program -> string -> string -> meth
(** Dynamic dispatch: most-derived implementation for a runtime class. *)

(** {1 Iteration helpers} *)

val iter_methods : program -> (meth -> unit) -> unit

val iter_access_notes : meth -> (instr -> note -> unit) -> unit
(** Visit every memory-access instruction of a method with its note. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_meth : Format.formatter -> meth -> unit
