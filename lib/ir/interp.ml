open Stm_runtime
open Stm_core

exception Interp_error of string

type outcome = {
  result : Sched.result;
  stats : Stats.t;
  prints : string list;
  instrs : int;
  site_profile : (int * int) list;
      (* (site id, barrier-path executions), hottest first; empty unless
         profiling was requested *)
}

(* Precomputed barrier decision for one access site under the current
   configuration: what the non-transactional path does ([p_nontxn]) and
   whether the transactional path may elide logging ([p_unlogged]).
   Folding the config tests in ahead of time turns the per-access
   decision into one array read. *)
type nontxn_plan =
  | P_auto  (* full barrier (Stm.read / Stm.write) *)
  | P_removed  (* compiler-removed: raw access *)
  | P_agg of int  (* aggregated anonymous acquire covering n accesses *)

type site_plan = { p_unlogged : bool; p_nontxn : nontxn_plan }

type exec = {
  prog : Ir.program;
  mutable cfg : Config.t;
  params : (string * int) list;
  rng : Det_rng.t;
  statics : (string, Heap.obj) Hashtbl.t;
  monitors : (int, Sim_mutex.t) Hashtbl.t;
  mutable prints : string list;  (* reversed *)
  mutable instrs : int;
  initialized : (string, unit) Hashtbl.t;  (* classes whose clinit ran *)
  profile : (int, int) Hashtbl.t option;  (* site id -> barrier executions *)
  mutable plans : site_plan array;  (* site id -> plan, per current cfg *)
  mutable plans_key : (bool * bool * Config.versioning) option;
      (* (strong, strong_writes, versioning) the plans were computed for *)
}

(* Aggregated-barrier state: ownership of one object's record held across
   a group of accesses in a basic block. *)
type agg = { a_obj : Heap.obj; a_word : int; mutable a_left : int }

type frame = { regs : Heap.value array; mutable agg : agg option }

let err fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

(* (Re)compute the per-site barrier plans. The plan depends only on the
   note annotations (fixed once the compiler passes have run) and on the
   [strong]/[strong_writes] configuration bits, so runs that share a
   configuration - every run of an explorer instance, in particular -
   reuse the same table. *)
let build_plans ex =
  let strong = ex.cfg.Config.strong and sw = ex.cfg.Config.strong_writes in
  let versioning = ex.cfg.Config.versioning in
  (* Aggregated acquires hold the object's ownership record across the
     group, but mvcc transactions never consult ownership - they commit
     against version stamps - so the hold would exclude nothing. Fall
     back to full per-access barriers there. *)
  let agg_ok = strong && sw && versioning <> Config.Mvcc in
  if ex.plans_key <> Some (strong, sw, versioning) then begin
    let default = { p_unlogged = false; p_nontxn = P_auto } in
    let plans = Array.make (max 1 ex.prog.Ir.next_site) default in
    Ir.iter_methods ex.prog (fun m ->
        Ir.iter_access_notes m (fun _ note ->
            let p_nontxn =
              match note.Ir.barrier with
              | Ir.Bar_removed _ -> P_removed
              | Ir.Bar_agg_start n when agg_ok -> P_agg n
              | Ir.Bar_agg_start _ | Ir.Bar_agg_member | Ir.Bar_auto -> P_auto
            in
            plans.(note.Ir.site) <-
              { p_unlogged = note.Ir.txn_unlogged && not strong; p_nontxn }));
    ex.plans <- plans;
    ex.plans_key <- Some (strong, sw, versioning)
  end

let statics_obj ex cls =
  match Hashtbl.find_opt ex.statics cls with
  | Some o -> o
  | None -> err "no statics for class %s" cls

let profile_hit ex (note : Ir.note) =
  match ex.profile with
  | Some tbl ->
      Hashtbl.replace tbl note.Ir.site
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl note.Ir.site))
  | None -> ()

let monitor_of ex (o : Heap.obj) =
  match Hashtbl.find_opt ex.monitors o.Heap.oid with
  | Some m -> m
  | None ->
      let m = Sim_mutex.create ~name:(o.Heap.cls ^ "-monitor") ex.cfg.cost in
      Hashtbl.replace ex.monitors o.Heap.oid m;
      m

let value_of_const = function
  | Ir.Cint n -> Heap.Vint n
  | Ir.Cbool b -> Heap.Vbool b
  | Ir.Cstr s -> Heap.Vstr s
  | Ir.Cnull -> Heap.Vnull
  | Ir.Reg _ -> assert false

let eval frame = function
  | Ir.Reg r -> frame.regs.(r)
  | c -> value_of_const c

let as_int what = function
  | Heap.Vint n -> n
  | v -> err "%s: expected int, got %s" what (Heap.show_value v)

let as_bool what = function
  | Heap.Vbool b -> b
  | v -> err "%s: expected bool, got %s" what (Heap.show_value v)

let as_obj what = function
  | Heap.Vref o -> o
  | Heap.Vnull -> err "%s: null dereference" what
  | v -> err "%s: expected object, got %s" what (Heap.show_value v)

(* ------------------------------------------------------------------ *)
(* Barrier-annotated memory access                                     *)
(* ------------------------------------------------------------------ *)

(* Release the aggregation hold if the group is exhausted. *)
let agg_step frame (a : agg) =
  a.a_left <- a.a_left - 1;
  if a.a_left <= 0 then begin
    Barriers.release_anon (Stm.config ()) a.a_obj a.a_word;
    frame.agg <- None
  end

let agg_active frame (o : Heap.obj) =
  match frame.agg with
  | Some a when a.a_obj == o -> Some a
  | Some _ | None -> None

(* A load from [o.(fld)] at a site annotated [note]. The barrier
   decision was precomputed into [ex.plans] at run start (see
   {!build_plans}); per access only the dynamic facts remain: are we in
   a transaction, and is an aggregated acquire covering this object. *)
let load ex frame (note : Ir.note) o fld =
  profile_hit ex note;
  if Trace.enabled () then Site.set note.Ir.site;
  let cfg = ex.cfg in
  let plan = ex.plans.(note.Ir.site) in
  if Stm.in_txn () then
    if plan.p_unlogged then begin
      (* Section 5.2 extension: no transaction ever writes this object,
         so the open-for-read barrier (version log + validation entry)
         can be elided - but only under weak atomicity *)
      Sched.tick cfg.cost.Cost.plain_load;
      Heap.get o fld
    end
    else Stm.read o fld
  else
    match agg_active frame o with
    | Some a ->
        (* covered by an aggregated acquire: plain load *)
        Sched.tick cfg.cost.Cost.plain_load;
        let v = Heap.get o fld in
        agg_step frame a;
        v
    | None -> (
        match plan.p_nontxn with
        | P_removed -> Stm.read_nobarrier o fld
        | P_agg n ->
            let w = Barriers.acquire_anon ~op:Trace.Op_read cfg (Stm.stats ()) o in
            Sched.tick cfg.cost.Cost.plain_load;
            let v = Heap.get o fld in
            if n > 1 then frame.agg <- Some { a_obj = o; a_word = w; a_left = n - 1 }
            else Barriers.release_anon cfg o w;
            v
        | P_auto -> Stm.read o fld)

let store ex frame (note : Ir.note) o fld v =
  profile_hit ex note;
  if Trace.enabled () then Site.set note.Ir.site;
  let cfg = ex.cfg in
  if Stm.in_txn () then Stm.write o fld v
  else
    match agg_active frame o with
    | Some a ->
        if cfg.dea && not (Txrec.is_private a.a_word) then
          Dea.publish_value (Stm.stats ()) cfg.cost v;
        Sched.tick cfg.cost.Cost.plain_store;
        Heap.set o fld v;
        agg_step frame a
    | None -> (
        match ex.plans.(note.Ir.site).p_nontxn with
        | P_removed -> Stm.write_nobarrier o fld v
        | P_agg n ->
            let w = Barriers.acquire_anon ~op:Trace.Op_write cfg (Stm.stats ()) o in
            if cfg.dea && not (Txrec.is_private w) then
              Dea.publish_value (Stm.stats ()) cfg.cost v;
            Sched.tick cfg.cost.Cost.plain_store;
            Heap.set o fld v;
            if n > 1 then frame.agg <- Some { a_obj = o; a_word = w; a_left = n - 1 }
            else Barriers.release_anon cfg o w
        | P_auto -> Stm.write o fld v)

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

(* Lazy class initialization (Java semantics, paper Section 5.3): the
   first static access or instantiation of a class runs its [clinit]
   method, under whatever context the trigger ran in - including inside a
   transaction, which is exactly why NAIT needs the class-init
   exemption. The mark is set before the call so that accesses to the
   class's own statics inside clinit do not recurse. *)
let rec ensure_initialized ex cls =
  if not (Hashtbl.mem ex.initialized cls) then begin
    Hashtbl.replace ex.initialized cls ();
    match Ir.find_method ex.prog cls "clinit" with
    | Some m when m.Ir.m_static && m.Ir.params = [] ->
        ignore (call ex m None [] : Heap.value option)
    | Some _ | None -> ()
  end

and builtin ex name (args : Heap.value list) : Heap.value =
  match (name, args) with
  | "spawn", [ v ] ->
      let o = as_obj "spawn" v in
      Stm.publish o;
      let m = Ir.resolve_virtual ex.prog o.Heap.cls "run" in
      let tid =
        Sched.spawn ~name:(o.Heap.cls ^ ".run") (fun () ->
            ignore (call ex m (Some (Heap.Vref o)) [] : Heap.value option))
      in
      Heap.Vint tid
  | "join", [ v ] ->
      Sched.join (as_int "join" v);
      Heap.Vnull
  | "rand", [ v ] ->
      let n = as_int "rand" v in
      if n <= 0 then err "rand: bound must be positive";
      Heap.Vint (Det_rng.int ex.rng n)
  | "param", [ Heap.Vstr key ] -> (
      match List.assoc_opt key ex.params with
      | Some v -> Heap.Vint v
      | None -> err "param: no value supplied for %S" key)
  | "param", [ Heap.Vstr key; Heap.Vint default ] ->
      Heap.Vint
        (match List.assoc_opt key ex.params with
        | Some v -> v
        | None -> default)
  | "tick", [ v ] ->
      Sched.tick (as_int "tick" v);
      Heap.Vnull
  | "rebase_clock", [] ->
      Sched.rebase ();
      Heap.Vnull
  | "assert", [ v ] ->
      if not (as_bool "assert" v) then err "assertion failed";
      Heap.Vnull
  | "abs", [ v ] -> Heap.Vint (abs (as_int "abs" v))
  | "min", [ a; b ] -> Heap.Vint (min (as_int "min" a) (as_int "min" b))
  | "max", [ a; b ] -> Heap.Vint (max (as_int "max" a) (as_int "max" b))
  | "hash", [ v ] ->
      let x = as_int "hash" v in
      let h = (x * 0x9E3779B1) land max_int in
      Heap.Vint (h lxor (h lsr 16))
  | _ -> err "builtin %s: bad arguments" name

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

and exec_binop op a b =
  let ib f = Heap.Vint (f (as_int "binop" a) (as_int "binop" b)) in
  let cmp f = Heap.Vbool (f (as_int "binop" a) (as_int "binop" b)) in
  match op with
  | Ir.Add -> ib ( + )
  | Ir.Sub -> ib ( - )
  | Ir.Mul -> ib ( * )
  | Ir.Div ->
      let d = as_int "div" b in
      if d = 0 then err "division by zero" else Heap.Vint (as_int "div" a / d)
  | Ir.Mod ->
      let d = as_int "mod" b in
      if d = 0 then err "modulo by zero" else Heap.Vint (as_int "mod" a mod d)
  | Ir.Lt -> cmp ( < )
  | Ir.Le -> cmp ( <= )
  | Ir.Gt -> cmp ( > )
  | Ir.Ge -> cmp ( >= )
  | Ir.Eq -> Heap.Vbool (Heap.value_equal a b)
  | Ir.Ne -> Heap.Vbool (not (Heap.value_equal a b))
  | Ir.And -> Heap.Vbool (as_bool "&&" a && as_bool "&&" b)
  | Ir.Or -> Heap.Vbool (as_bool "||" a || as_bool "||" b)

(* Execute instructions from [pc] until [Ret] (returns its value) or until
   [stop_at] (exclusive; returns None). *)
and exec_range ex (m : Ir.meth) frame ~pc ~stop_at : Heap.value option option =
  let cost = ex.cfg.cost in
  let pc = ref pc in
  let result = ref None in
  let finished = ref false in
  while not !finished do
    if !pc = stop_at then finished := true
    else begin
      let ins = m.Ir.body.(!pc) in
      Sched.tick cost.Cost.alu;
      ex.instrs <- ex.instrs + 1;
      incr pc;
      match ins with
      | Ir.Nop -> ()
      | Ir.Move (d, s) -> frame.regs.(d) <- eval frame s
      | Ir.Unop (d, Ir.Neg, s) ->
          frame.regs.(d) <- Heap.Vint (-as_int "neg" (eval frame s))
      | Ir.Unop (d, Ir.Not, s) ->
          frame.regs.(d) <- Heap.Vbool (not (as_bool "not" (eval frame s)))
      | Ir.Binop (d, op, a, b) ->
          frame.regs.(d) <- exec_binop op (eval frame a) (eval frame b)
      | Ir.New { dst; cls; site = _ } ->
          ensure_initialized ex cls;
          let fields = Ir.instance_fields ex.prog cls in
          let o = Stm.alloc ~cls (List.length fields) in
          (* typed default values; the object is thread-local at birth so
             raw stores are race-free *)
          List.iteri
            (fun i (f : Ir.field) ->
              Heap.set o i
                (match f.Ir.fty with
                | Ir.Tint -> Heap.Vint 0
                | Ir.Tbool -> Heap.Vbool false
                | Ir.Tstr -> Heap.Vstr ""
                | Ir.Tvoid | Ir.Tref _ | Ir.Tarr _ -> Heap.Vnull))
            fields;
          frame.regs.(dst) <- Heap.Vref o
      | Ir.NewArr { dst; elt; len; site = _ } ->
          let n = as_int "new[]" (eval frame len) in
          if n < 0 then err "negative array length";
          let init =
            match elt with
            | Ir.Tint -> Heap.Vint 0
            | Ir.Tbool -> Heap.Vbool false
            | Ir.Tstr -> Heap.Vstr ""
            | Ir.Tvoid | Ir.Tref _ | Ir.Tarr _ -> Heap.Vnull
          in
          frame.regs.(dst) <- Heap.Vref (Stm.alloc_array n init)
      | Ir.Load { dst; obj; fld; fidx; note; _ } ->
          let o = as_obj ("load ." ^ fld) (eval frame obj) in
          frame.regs.(dst) <- load ex frame note o fidx
      | Ir.Store { obj; fld; fidx; src; note; _ } ->
          let o = as_obj ("store ." ^ fld) (eval frame obj) in
          store ex frame note o fidx (eval frame src)
      | Ir.LoadS { dst; cls; fidx; note; _ } ->
          ensure_initialized ex cls;
          frame.regs.(dst) <- load ex frame note (statics_obj ex cls) fidx
      | Ir.StoreS { cls; fidx; src; note; _ } ->
          ensure_initialized ex cls;
          store ex frame note (statics_obj ex cls) fidx (eval frame src)
      | Ir.ALoad { dst; arr; idx; note } ->
          let a = as_obj "aload" (eval frame arr) in
          let i = as_int "aload idx" (eval frame idx) in
          if i < 0 || i >= Heap.nfields a then
            err "array index %d out of bounds (len %d)" i (Heap.nfields a);
          frame.regs.(dst) <- load ex frame note a i
      | Ir.AStore { arr; idx; src; note } ->
          let a = as_obj "astore" (eval frame arr) in
          let i = as_int "astore idx" (eval frame idx) in
          if i < 0 || i >= Heap.nfields a then
            err "array index %d out of bounds (len %d)" i (Heap.nfields a);
          store ex frame note a i (eval frame src)
      | Ir.ALen (d, a) ->
          (* the length field is immutable: no barrier, ever *)
          let o = as_obj "length" (eval frame a) in
          Sched.tick cost.Cost.plain_load;
          frame.regs.(d) <- Heap.Vint (Heap.nfields o)
      | Ir.Call { dst; target; this; args } ->
          Sched.tick cost.Cost.call;
          let thisv = Option.map (eval frame) this in
          let argv = List.map (eval frame) args in
          let meth =
            match target with
            | Ir.Static (c, mname) -> (
                match Ir.find_method ex.prog c mname with
                | Some mm -> mm
                | None -> err "unknown method %s::%s" c mname)
            | Ir.Virtual (_, mname) ->
                let o = as_obj ("call " ^ mname) (Option.get thisv) in
                Ir.resolve_virtual ex.prog o.Heap.cls mname
          in
          let rv = call ex meth thisv argv in
          (match (dst, rv) with
          | Some d, Some v -> frame.regs.(d) <- v
          | Some d, None -> frame.regs.(d) <- Heap.Vnull
          | None, _ -> ())
      | Ir.Builtin { dst; name; args } ->
          let argv = List.map (eval frame) args in
          let v = builtin ex name argv in
          Option.iter (fun d -> frame.regs.(d) <- v) dst
      | Ir.If (c, target) ->
          if as_bool "if" (eval frame c) then pc := target
      | Ir.Goto target -> pc := target
      | Ir.Ret v ->
          result := Some (Option.map (eval frame) v);
          finished := true
      | Ir.AtomicBegin end_pc ->
          let body_start = !pc in
          let saved = Array.copy frame.regs in
          Stm.atomic (fun () ->
              Array.blit saved 0 frame.regs 0 (Array.length saved);
              match exec_range ex m frame ~pc:body_start ~stop_at:end_pc with
              | None -> ()
              | Some _ -> err "return out of atomic block"
              | exception Interp_error _ when not (Stm.valid ()) ->
                  (* a doomed transaction read inconsistent state and
                     faulted; the managed runtime validates on faults and
                     aborts instead of failing (Section 3.4 discussion) *)
                  Stm.abort_and_retry ());
          pc := end_pc + 1
      | Ir.AtomicEnd -> err "stray atomic-end"
      | Ir.MonitorEnter o ->
          Sim_mutex.lock (monitor_of ex (as_obj "monitor" (eval frame o)))
      | Ir.MonitorExit o ->
          Sim_mutex.unlock (monitor_of ex (as_obj "monitor" (eval frame o)))
      | Ir.Print v ->
          ex.prints <- Heap.show_value (eval frame v) :: ex.prints
      | Ir.Retry -> Stm.retry ()
    end
  done;
  !result

and call ex (m : Ir.meth) this args : Heap.value option =
  let frame = { regs = Array.make (max m.Ir.nregs 1) Heap.Vnull; agg = None } in
  let base = match this with Some v -> frame.regs.(0) <- v; 1 | None -> 0 in
  List.iteri (fun i v -> frame.regs.(base + i) <- v) args;
  match exec_range ex m frame ~pc:0 ~stop_at:(-1) with
  | Some rv -> rv
  | None -> err "method %s::%s fell off the end" m.Ir.mcls m.Ir.mname

(* ------------------------------------------------------------------ *)
(* Program startup                                                     *)
(* ------------------------------------------------------------------ *)

let init_statics ex =
  Hashtbl.iter
    (fun cname _ ->
      let sfields = Ir.static_fields ex.prog cname in
      if sfields <> [] then begin
        let o = Heap.alloc_statics ~cls:cname (List.length sfields) in
        List.iteri
          (fun i (f : Ir.field) ->
            match f.Ir.f_init with
            | Some c -> Heap.set o i (value_of_const c)
            | None ->
                Heap.set o i
                  (match f.Ir.fty with
                  | Ir.Tint -> Heap.Vint 0
                  | Ir.Tbool -> Heap.Vbool false
                  | Ir.Tstr -> Heap.Vstr ""
                  | Ir.Tvoid | Ir.Tref _ | Ir.Tarr _ -> Heap.Vnull))
          sfields;
        Hashtbl.replace ex.statics cname o
      end)
    ex.prog.Ir.classes

let make_exec ?(params = []) ?(profile = false) ~cfg prog =
  {
    prog;
    cfg;
    params;
    rng = Det_rng.create 0x5eed;
    statics = Hashtbl.create 16;
    monitors = Hashtbl.create 64;
    prints = [];
    instrs = 0;
    initialized = Hashtbl.create 16;
    profile = (if profile then Some (Hashtbl.create 64) else None);
    plans = [||];
    plans_key = None;
  }

let exec_main ex =
  build_plans ex;
  init_statics ex;
  let m =
    match Ir.find_method ex.prog ex.prog.Ir.main_class "main" with
    | Some m when m.Ir.m_static -> m
    | Some _ | None -> err "no static main() in %s" ex.prog.Ir.main_class
  in
  (* the main class initializes first, as if the VM loaded it *)
  ensure_initialized ex ex.prog.Ir.main_class;
  ignore (call ex m None [] : Heap.value option)

let explorer_instance ?params prog =
  let ex = make_exec ?params ~cfg:Config.base prog in
  let main () =
    (* the explorer installs the STM configuration; pick it up here so the
       interpreter's barrier decisions match it *)
    ex.cfg <- Stm.config ();
    exec_main ex
  in
  let observe () = String.concat "|" (List.rev ex.prints) in
  (main, observe)

let run ?policy ?max_steps ?(params = []) ?(profile = false) ~cfg prog =
  let ex = make_exec ~params ~profile ~cfg prog in
  let main () = exec_main ex in
  let result, stats = Stm.run ?policy ?max_steps ~cfg main in
  let site_profile =
    match ex.profile with
    | None -> []
    | Some tbl ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { result; stats; prints = List.rev ex.prints; instrs = ex.instrs; site_profile }
