type ty = Tint | Tbool | Tstr | Tvoid | Tref of string | Tarr of ty

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"
  | Tstr -> Fmt.string ppf "str"
  | Tvoid -> Fmt.string ppf "void"
  | Tref c -> Fmt.string ppf c
  | Tarr t -> Fmt.pf ppf "%a[]" pp_ty t

let rec ty_equal a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tstr, Tstr | Tvoid, Tvoid -> true
  | Tref c, Tref d -> String.equal c d
  | Tarr x, Tarr y -> ty_equal x y
  | (Tint | Tbool | Tstr | Tvoid | Tref _ | Tarr _), _ -> false

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type operand = Cint of int | Cbool of bool | Cstr of string | Cnull | Reg of int

type barrier_kind =
  | Bar_auto
  | Bar_removed of string
  | Bar_agg_start of int
  | Bar_agg_member

type note = { site : int; mutable barrier : barrier_kind; mutable txn_unlogged : bool }

type call_target = Static of string * string | Virtual of string * string

type instr =
  | Nop
  | Move of int * operand
  | Unop of int * unop * operand
  | Binop of int * binop * operand * operand
  | New of { dst : int; cls : string; site : int }
  | NewArr of { dst : int; elt : ty; len : operand; site : int }
  | Load of { dst : int; obj : operand; cls : string; fld : string; fidx : int; note : note }
  | Store of { obj : operand; cls : string; fld : string; fidx : int; src : operand; note : note }
  | LoadS of { dst : int; cls : string; fld : string; fidx : int; note : note }
  | StoreS of { cls : string; fld : string; fidx : int; src : operand; note : note }
  | ALoad of { dst : int; arr : operand; idx : operand; note : note }
  | AStore of { arr : operand; idx : operand; src : operand; note : note }
  | ALen of int * operand
  | Call of { dst : int option; target : call_target; this : operand option; args : operand list }
  | Builtin of { dst : int option; name : string; args : operand list }
  | If of operand * int
  | Goto of int
  | Ret of operand option
  | AtomicBegin of int
  | AtomicEnd
  | MonitorEnter of operand
  | MonitorExit of operand
  | Print of operand
  | Retry

type field = {
  fname : string;
  fty : ty;
  f_final : bool;
  f_volatile : bool;
  f_static : bool;
  f_init : operand option;
}

type meth = {
  mcls : string;
  mname : string;
  m_static : bool;
  params : (string * ty) list;
  ret : ty;
  nregs : int;
  mutable body : instr array;
  reg_names : string array;
}

type cls = {
  cname : string;
  super : string option;
  fields : field list;
  mutable meths : meth list;
}

type program = {
  classes : (string, cls) Hashtbl.t;
  mutable main_class : string;
  mutable next_site : int;
  site_locs : (int, string * int) Hashtbl.t;
      (* site id -> (source name, 1-based line), filled at lowering *)
}

let create_program () =
  {
    classes = Hashtbl.create 32;
    main_class = "Main";
    next_site = 0;
    site_locs = Hashtbl.create 64;
  }

let set_site_loc p site ~file ~line = Hashtbl.replace p.site_locs site (file, line)

let site_loc p site = Hashtbl.find_opt p.site_locs site

let pp_site p ppf site =
  match site_loc p site with
  | Some (file, line) -> Fmt.pf ppf "%s:%d" file line
  | None -> Fmt.pf ppf "site %d" site

let add_class p c =
  if Hashtbl.mem p.classes c.cname then
    invalid_arg ("Ir.add_class: duplicate class " ^ c.cname);
  Hashtbl.replace p.classes c.cname c

let find_class p name =
  match Hashtbl.find_opt p.classes name with
  | Some c -> c
  | None -> invalid_arg ("Ir.find_class: unknown class " ^ name)

let fresh_site p =
  let s = p.next_site in
  p.next_site <- s + 1;
  s

let rec is_subclass p c d =
  String.equal c d
  ||
  match Hashtbl.find_opt p.classes c with
  | Some { super = Some s; _ } -> is_subclass p s d
  | Some { super = None; _ } | None -> false

let is_thread_class p c = (not (String.equal c "Thread")) && is_subclass p c "Thread"

(* Instance layout: superclass fields first. *)
let rec instance_fields p cname =
  match Hashtbl.find_opt p.classes cname with
  | None -> []  (* built-in root (e.g. Thread) with no declared fields *)
  | Some c ->
      let inherited =
        match c.super with Some s -> instance_fields p s | None -> []
      in
      inherited @ List.filter (fun f -> not f.f_static) c.fields

let instance_field_index p cname fld =
  let fields = instance_fields p cname in
  let rec go i = function
    | [] -> raise Not_found
    | f :: _ when String.equal f.fname fld -> (i, f)
    | _ :: tl -> go (i + 1) tl
  in
  go 0 fields

let static_fields p cname =
  match Hashtbl.find_opt p.classes cname with
  | None -> []
  | Some c -> List.filter (fun f -> f.f_static) c.fields

let rec static_field_index p cname fld =
  let own = static_fields p cname in
  let rec go i = function
    | [] -> None
    | f :: _ when String.equal f.fname fld -> Some (i, f)
    | _ :: tl -> go (i + 1) tl
  in
  match go 0 own with
  | Some (i, f) -> (cname, i, f)
  | None -> (
      match Hashtbl.find_opt p.classes cname with
      | Some { super = Some s; _ } -> static_field_index p s fld
      | Some { super = None; _ } | None -> raise Not_found)

let rec find_method p cname mname =
  match Hashtbl.find_opt p.classes cname with
  | None -> None
  | Some c -> (
      match List.find_opt (fun m -> String.equal m.mname mname) c.meths with
      | Some m -> Some m
      | None -> (
          match c.super with Some s -> find_method p s mname | None -> None))

let resolve_virtual p cname mname =
  match find_method p cname mname with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Ir.resolve_virtual: no method %s in %s" mname cname)

let iter_methods p f =
  Hashtbl.iter (fun _ c -> List.iter f c.meths) p.classes

let iter_access_notes m f =
  Array.iter
    (fun i ->
      match i with
      | Load { note; _ }
      | Store { note; _ }
      | LoadS { note; _ }
      | StoreS { note; _ }
      | ALoad { note; _ }
      | AStore { note; _ } ->
          f i note
      | Nop | Move _ | Unop _ | Binop _ | New _ | NewArr _ | ALen _ | Call _
      | Builtin _ | If _ | Goto _ | Ret _ | AtomicBegin _ | AtomicEnd
      | MonitorEnter _ | MonitorExit _ | Print _ | Retry ->
          ())
    m.body

let pp_operand ppf = function
  | Cint n -> Fmt.int ppf n
  | Cbool b -> Fmt.bool ppf b
  | Cstr s -> Fmt.pf ppf "%S" s
  | Cnull -> Fmt.string ppf "null"
  | Reg r -> Fmt.pf ppf "r%d" r

let pp_barrier ppf = function
  | Bar_auto -> ()
  | Bar_removed why -> Fmt.pf ppf " [no-barrier:%s]" why
  | Bar_agg_start n -> Fmt.pf ppf " [agg-start:%d]" n
  | Bar_agg_member -> Fmt.pf ppf " [agg]"

let pp_instr ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Move (d, s) -> Fmt.pf ppf "r%d := %a" d pp_operand s
  | Unop (d, Neg, s) -> Fmt.pf ppf "r%d := -%a" d pp_operand s
  | Unop (d, Not, s) -> Fmt.pf ppf "r%d := !%a" d pp_operand s
  | Binop (d, op, a, b) ->
      let s =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
        | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=="
        | Ne -> "!=" | And -> "&&" | Or -> "||"
      in
      Fmt.pf ppf "r%d := %a %s %a" d pp_operand a s pp_operand b
  | New { dst; cls; site } -> Fmt.pf ppf "r%d := new %s @%d" dst cls site
  | NewArr { dst; elt; len; site } ->
      Fmt.pf ppf "r%d := new %a[%a] @%d" dst pp_ty elt pp_operand len site
  | Load { dst; obj; fld; note; _ } ->
      Fmt.pf ppf "r%d := %a.%s%a" dst pp_operand obj fld pp_barrier note.barrier
  | Store { obj; fld; src; note; _ } ->
      Fmt.pf ppf "%a.%s := %a%a" pp_operand obj fld pp_operand src pp_barrier
        note.barrier
  | LoadS { dst; cls; fld; note; _ } ->
      Fmt.pf ppf "r%d := %s.%s%a" dst cls fld pp_barrier note.barrier
  | StoreS { cls; fld; src; note; _ } ->
      Fmt.pf ppf "%s.%s := %a%a" cls fld pp_operand src pp_barrier note.barrier
  | ALoad { dst; arr; idx; note } ->
      Fmt.pf ppf "r%d := %a[%a]%a" dst pp_operand arr pp_operand idx pp_barrier
        note.barrier
  | AStore { arr; idx; src; note } ->
      Fmt.pf ppf "%a[%a] := %a%a" pp_operand arr pp_operand idx pp_operand src
        pp_barrier note.barrier
  | ALen (d, a) -> Fmt.pf ppf "r%d := %a.length" d pp_operand a
  | Call { dst; target; this; args } ->
      let t =
        match target with
        | Static (c, m) -> c ^ "::" ^ m
        | Virtual (c, m) -> c ^ "." ^ m
      in
      Fmt.pf ppf "%acall %s(%a%a)"
        (fun ppf -> function
          | Some d -> Fmt.pf ppf "r%d := " d
          | None -> ())
        dst t
        (fun ppf -> function
          | Some o -> Fmt.pf ppf "this=%a;" pp_operand o
          | None -> ())
        this
        Fmt.(list ~sep:comma pp_operand)
        args
  | Builtin { dst; name; args } ->
      Fmt.pf ppf "%a%s(%a)"
        (fun ppf -> function
          | Some d -> Fmt.pf ppf "r%d := " d
          | None -> ())
        dst name
        Fmt.(list ~sep:comma pp_operand)
        args
  | If (c, pc) -> Fmt.pf ppf "if %a goto %d" pp_operand c pc
  | Goto pc -> Fmt.pf ppf "goto %d" pc
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v
  | AtomicBegin e -> Fmt.pf ppf "atomic-begin (end=%d)" e
  | AtomicEnd -> Fmt.string ppf "atomic-end"
  | MonitorEnter o -> Fmt.pf ppf "monitor-enter %a" pp_operand o
  | MonitorExit o -> Fmt.pf ppf "monitor-exit %a" pp_operand o
  | Print o -> Fmt.pf ppf "print %a" pp_operand o
  | Retry -> Fmt.string ppf "retry"

let pp_meth ppf m =
  Fmt.pf ppf "%s::%s (%d regs)@." m.mcls m.mname m.nregs;
  Array.iteri (fun i ins -> Fmt.pf ppf "  %3d: %a@." i pp_instr ins) m.body
