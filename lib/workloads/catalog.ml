type family = {
  fam_name : string;
  fam_descr : string;
  members : Workload.t list;
}

let families =
  [
    {
      fam_name = "tsp";
      fam_descr = "branch-and-bound travelling salesman (Figure 18)";
      members = [ Tsp.tsp ];
    };
    {
      fam_name = "oo7";
      fam_descr = "OO7-like object-graph traversal (Figure 19)";
      members = [ Oo7.oo7 ];
    };
    {
      fam_name = "jbb";
      fam_descr = "JBB-like warehouse order processing (Figure 20)";
      members = [ Jbb.jbb ];
    };
    {
      fam_name = "jvm98";
      fam_descr =
        "single-threaded JVM98-like kernels for barrier overhead (Figures \
         15-17)";
      members = Jvm98.all;
    };
  ]

let all = List.concat_map (fun f -> f.members) families

let find name =
  List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all
