(** One place that knows every benchmark workload.

    The per-family modules ({!Tsp}, {!Oo7}, {!Jbb}, {!Jvm98}) each export
    their own descriptors; this catalog groups them by family so the CLI
    ([stm_bench --list]) and the docs can enumerate them without
    hard-coding the list in several places. The [store] family — the
    hash-partitioned KV store driven by the YCSB-style engine — lives in
    [lib/store] and is listed by profile name there; this catalog covers
    the Jt-program workloads. *)

type family = {
  fam_name : string;  (** e.g. ["tsp"], ["jvm98"] *)
  fam_descr : string;
  members : Workload.t list;
}

val families : family list
(** tsp, oo7, jbb, jvm98 — in figure order. *)

val all : Workload.t list
(** Every workload of every family, in {!families} order. *)

val find : string -> Workload.t option
(** Look up a workload by its [Workload.t.name]. *)
