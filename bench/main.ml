(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and micro-benchmarks the harness units with Bechamel.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- figures   # figure tables only
     dune exec bench/main.exe -- micro     # bechamel micro-benchmarks only

   Absolute numbers are simulated cycles (and, for the micro section,
   host-wall-clock of one harness unit); the comparison against the paper
   is by shape, recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

let line () =
  print_endline (String.make 78 '-')

let section title =
  line ();
  Printf.printf "== %s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Figure tables                                                       *)
(* ------------------------------------------------------------------ *)

let figures () =
  section "Figure 6 - anomaly matrix (weak-atomicity behaviours, Figures 1-5 litmus)";
  let cells = Stm_harness.Figures.fig6 () in
  Fmt.pr "%a" Stm_harness.Figures.pp_fig6 cells;
  Fmt.pr "matches the paper's table: %b@."
    (Stm_litmus.Matrix.all_match cells);

  section "Figure 6 ablation - privatization (Figure 1) incl. quiescence (Section 3.4)";
  let priv = Stm_litmus.Matrix.privatization_row () in
  Fmt.pr "%a" Stm_litmus.Matrix.pp_table priv;
  Fmt.pr "matches expectations: %b@." (Stm_litmus.Matrix.all_match priv);

  section "Extra litmus rows - Section 2.1 write/read variant + txn-vs-txn dirty reads";
  let extras = Stm_litmus.Matrix.extras_rows () in
  Fmt.pr "%a" Stm_litmus.Matrix.pp_table extras;
  Fmt.pr "matches expectations: %b@." (Stm_litmus.Matrix.all_match extras);

  section "Figure 13 - static barrier removal: NAIT vs thread-local analysis";
  Fmt.pr "%a" Stm_analysis.Barrier_stats.pp_table (Stm_harness.Figures.fig13 ());

  section "Figure 15 - strong-atomicity overhead, read + write barriers (JVM98 kernels)";
  Fmt.pr "%a" Stm_harness.Figures.pp_overhead (Stm_harness.Figures.fig15 ());

  section "Figure 16 - overhead with read barriers only";
  Fmt.pr "%a" Stm_harness.Figures.pp_overhead (Stm_harness.Figures.fig16 ());

  section "Figure 17 - overhead with write barriers only";
  Fmt.pr "%a" Stm_harness.Figures.pp_overhead (Stm_harness.Figures.fig17 ());

  section "Figure 18 - Tsp execution time, 1..16 simulated processors";
  Fmt.pr "%a" Stm_harness.Figures.pp_scaling (Stm_harness.Figures.fig18 ());

  section "Figure 19 - OO7 execution time, 1..16 simulated processors";
  Fmt.pr "%a" Stm_harness.Figures.pp_scaling (Stm_harness.Figures.fig19 ());

  section "Figure 20 - JBB execution time, 1..16 simulated processors";
  Fmt.pr "%a" Stm_harness.Figures.pp_scaling (Stm_harness.Figures.fig20 ());

  section "Ablation - DEA read-barrier privacy check (Figure 10a, optional instructions)";
  Fmt.pr "%a" Stm_harness.Ablations.pp (Stm_harness.Ablations.dea_read_privacy ());

  section "Ablation - quiescence commit protocol cost (Section 3.4), OO7 @ 8 threads";
  Fmt.pr "%a" Stm_harness.Ablations.pp (Stm_harness.Ablations.quiescence_cost ());

  section "Ablation - Section 5.2 transactional open-for-read removal, Tsp @ 4 threads (weak)";
  Fmt.pr "%a" Stm_harness.Ablations.pp (Stm_harness.Ablations.txn_read_removal ());

  section "Ablation - versioning granularity (Section 2.4), JBB, 4 threads";
  Fmt.pr "%a" Stm_harness.Ablations.pp (Stm_harness.Ablations.versioning_granularity ());

  section "Ablation - contention management: suicide vs wound-wait";
  Fmt.pr "%a" Stm_harness.Ablations.pp (Stm_harness.Ablations.contention_management ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure unit      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let fig6_cell () =
    (* one "yes" cell: SLU under eager-weak *)
    ignore
      (Stm_litmus.Matrix.run_cell ~max_runs:500
         Stm_litmus.Programs.speculative_lost_update
         (Stm_litmus.Modes.Weak Stm_core.Config.Eager))
  in
  let kernel name cfg opt =
    let w =
      Stm_workloads.Workload.scaled
        (List.find
           (fun (w : Stm_workloads.Workload.t) -> w.name = name)
           Stm_workloads.Jvm98.all)
        0.25
    in
    let prog = Stm_workloads.Workload.program w in
    ignore (Stm_jit.Opt.optimize opt prog);
    fun () ->
      ignore (Stm_ir.Interp.run ~cfg ~params:w.Stm_workloads.Workload.params prog)
  in
  let scaling w nt =
    let w = Stm_workloads.Workload.scaled w 0.25 in
    let prog = Stm_workloads.Workload.program w in
    fun () ->
      ignore
        (Stm_ir.Interp.run ~cfg:Stm_core.Config.eager_strong
           ~params:([ ("threads", nt); ("use_locks", 0) ] @ w.Stm_workloads.Workload.params)
           prog)
  in
  let analysis () =
    let prog = Stm_workloads.Workload.program Stm_workloads.Tsp.tsp in
    let pta = Stm_analysis.Pta.analyze prog in
    ignore (Stm_analysis.Nait.apply prog pta)
  in
  Test.make_grouped ~name:"figures"
    [
      Test.make ~name:"fig6/litmus-cell" (Staged.stage fig6_cell);
      Test.make ~name:"fig13/pta+nait(tsp)" (Staged.stage analysis);
      Test.make ~name:"fig15/compress-weak"
        (Staged.stage (kernel "compress" Stm_core.Config.eager_weak Stm_jit.Opt.O0));
      Test.make ~name:"fig15/compress-strong"
        (Staged.stage (kernel "compress" Stm_core.Config.eager_strong Stm_jit.Opt.O0));
      Test.make ~name:"fig15/compress-strong-O2"
        (Staged.stage (kernel "compress" Stm_core.Config.eager_strong Stm_jit.Opt.O2));
      Test.make ~name:"fig16/mtrt-reads-only"
        (Staged.stage
           (kernel "mtrt"
              { Stm_core.Config.eager_strong with strong_writes = false }
              Stm_jit.Opt.O0));
      Test.make ~name:"fig17/db-writes-only"
        (Staged.stage
           (kernel "db"
              { Stm_core.Config.eager_strong with strong_reads = false }
              Stm_jit.Opt.O0));
      Test.make ~name:"fig18/tsp-4t" (Staged.stage (scaling Stm_workloads.Tsp.tsp 4));
      Test.make ~name:"fig19/oo7-4t" (Staged.stage (scaling Stm_workloads.Oo7.oo7 4));
      Test.make ~name:"fig20/jbb-4t" (Staged.stage (scaling Stm_workloads.Jbb.jbb 4));
    ]

let micro () =
  section "Bechamel micro-benchmarks (host wall-clock per harness unit)";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (bechamel_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Printf.printf "%-28s %12.0f ns/run\n" name ns
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  (* `--metrics-out FILE` collects STM run metrics across every figure
     regenerated by this invocation and writes them as JSON. *)
  let metrics_out = ref None in
  let words = ref [] in
  let argv = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        parse rest
    | "--metrics-out" :: [] ->
        prerr_endline "--metrics-out needs a FILE argument";
        exit 2
    | w :: rest ->
        words := w :: !words;
        parse rest
  in
  parse (List.tl argv);
  let metrics =
    Option.map
      (fun _ ->
        let m = Stm_obs.Metrics.create () in
        Stm_obs.Metrics.install m;
        m)
      !metrics_out
  in
  let what = match List.rev !words with [] -> "all" | w :: _ -> w in
  (match what with
  | "figures" -> figures ()
  | "micro" -> micro ()
  | "all" ->
      figures ();
      micro ()
  | other ->
      Printf.eprintf "unknown argument %S (use: figures | micro | all)\n" other;
      exit 2);
  Stm_core.Trace.set_sink None;
  Option.iter
    (fun m ->
      let path = Option.get !metrics_out in
      (try
         Out_channel.with_open_text path (fun oc ->
             output_string oc
               (Stm_obs.Json.to_string (Stm_obs.Metrics.to_json m));
             output_char oc '\n')
       with Sys_error msg ->
         Printf.eprintf "cannot write %s: %s\n" path msg;
         exit 2);
      Printf.printf "metrics written to %s\n" path)
    metrics;
  line ();
  print_endline "done."
