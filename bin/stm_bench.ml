(* CLI: regenerate individual evaluation figures and run contention
   stress scenarios.

   Examples:
     stm_bench fig6
     stm_bench fig15 --scale 0.5
     stm_bench fig18 --threads 1,2,4,8,16
     stm_bench all
     stm_bench --stress all --cm timestamp --seed 7 --metrics-out m.json *)

open Cmdliner

let parse_threads s =
  String.split_on_char ',' s |> List.map int_of_string

let run_figure name scale threads cm =
  let threads = Option.map parse_threads threads in
  match name with
  | "fig6" ->
      let cells = Stm_harness.Figures.fig6 ?cm () in
      Fmt.pr "%a" Stm_harness.Figures.pp_fig6 cells;
      Fmt.pr "matches the paper: %b@." (Stm_litmus.Matrix.all_match cells)
  | "privatization" ->
      let cells = Stm_litmus.Matrix.privatization_row () in
      Fmt.pr "%a" Stm_litmus.Matrix.pp_table cells
  | "fig13" ->
      Fmt.pr "%a" Stm_analysis.Barrier_stats.pp_table
        (Stm_harness.Figures.fig13 ())
  | "fig15" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig15 ?scale ())
  | "fig16" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig16 ?scale ())
  | "fig17" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig17 ?scale ())
  | "fig18" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig18 ?threads ?scale ())
  | "fig19" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig19 ?threads ?scale ())
  | "fig20" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig20 ?threads ?scale ())
  | other -> Fmt.failwith "unknown figure %s" other

let all_figures =
  [ "fig6"; "privatization"; "fig13"; "fig15"; "fig16"; "fig17"; "fig18";
    "fig19"; "fig20" ]

let write_json path json =
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Stm_obs.Json.to_string json);
        output_char oc '\n')
  with Sys_error msg ->
    Fmt.epr "cannot write %s: %s@." path msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* Stress mode                                                         *)
(* ------------------------------------------------------------------ *)

let stress_report_json (r : Stm_harness.Stress.report) =
  let open Stm_obs in
  Json.Obj
    [
      ( "status",
        Json.Str
          (match r.Stm_harness.Stress.status with
          | Stm_runtime.Sched.Completed -> "completed"
          | Stm_runtime.Sched.Fuel_exhausted -> "fuel-exhausted"
          | Stm_runtime.Sched.Deadlock _ -> "deadlock") );
      ("completed", Json.Bool r.Stm_harness.Stress.completed);
      ("passed", Json.Bool (Stm_harness.Stress.passed r));
      ("makespan", Json.Int r.Stm_harness.Stress.makespan);
      ( "starved",
        Json.List
          (List.map (fun t -> Json.Int t) r.Stm_harness.Stress.starved) );
      ( "metrics",
        Metrics.to_json ~stats:r.Stm_harness.Stress.stats
          r.Stm_harness.Stress.metrics );
    ]

let run_stress which cm seed fuel metrics_out =
  let scenarios =
    if which = "all" then Stm_harness.Stress.all_scenarios
    else
      match Stm_harness.Stress.scenario_of_string which with
      | Some s -> [ s ]
      | None -> Fmt.failwith "unknown stress scenario %s" which
  in
  let reports =
    List.map
      (fun s ->
        let r = Stm_harness.Stress.run ?seed ?fuel ~cm s in
        Fmt.pr "%a@." Stm_harness.Stress.pp_report r;
        r)
      scenarios
  in
  Option.iter
    (fun path ->
      write_json path
        (Stm_obs.Json.Obj
           [
             ("policy", Stm_obs.Json.Str (Stm_cm.Policy.to_string cm));
             ("seed", Stm_obs.Json.Int (Option.value ~default:0 seed));
             ( "threshold",
               Stm_obs.Json.Int Stm_harness.Stress.starvation_threshold );
             ( "scenarios",
               Stm_obs.Json.Obj
                 (List.map
                    (fun r ->
                      ( Stm_harness.Stress.scenario_name
                          r.Stm_harness.Stress.scenario,
                        stress_report_json r ))
                    reports) );
           ]))
    metrics_out;
  if List.for_all (fun r -> r.Stm_harness.Stress.completed) reports then 0
  else 1

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let main name scale threads cm stress seed fuel metrics_out =
  match stress with
  | Some which -> (
      try run_stress which cm seed fuel metrics_out
      with Failure m ->
        Fmt.epr "%s@." m;
        exit 2)
  | None ->
      let name =
        match name with
        | Some n -> n
        | None ->
            Fmt.epr "a FIGURE argument or --stress is required@.";
            exit 2
      in
      (* Collect run metrics across every figure executed by this
         invocation; an Info-level sink keeps the per-access Debug events
         unforced, so figure timings are unaffected on the fast paths. *)
      let metrics =
        Option.map
          (fun _ ->
            let m = Stm_obs.Metrics.create () in
            Stm_obs.Metrics.install m;
            m)
          metrics_out
      in
      (try
         if name = "all" then
           List.iter
             (fun f ->
               Fmt.pr "== %s ==@." f;
               run_figure f scale threads (Some cm))
             all_figures
         else run_figure name scale threads (Some cm)
       with Failure m ->
         Fmt.epr "%s@." m;
         exit 2);
      Stm_core.Trace.set_sink None;
      Option.iter
        (fun m ->
          write_json (Option.get metrics_out) (Stm_obs.Metrics.to_json m))
        metrics;
      0

let cm_conv =
  let parse s =
    match Stm_cm.Policy.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown contention-management policy %s (expected %s)" s
               (String.concat ", "
                  (List.map Stm_cm.Policy.to_string Stm_cm.Policy.all))))
  in
  Arg.conv (parse, Stm_cm.Policy.pp)

let name_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FIGURE"
        ~doc:"One of fig6, privatization, fig13, fig15, fig16, fig17, fig18, fig19, fig20, all. Optional when $(b,--stress) is given.")

let scale_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (default 1.0).")

let threads_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "threads" ] ~docv:"LIST"
        ~doc:"Comma-separated simulated processor counts for fig18-20.")

let cm_arg =
  Arg.(
    value
    & opt cm_conv Stm_cm.Policy.Suicide
    & info [ "cm" ] ~docv:"POLICY"
        ~doc:
          "Contention-management policy: suicide, wound-wait, exp-backoff, karma, or timestamp. Applies to --stress runs and to fig6.")

let stress_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stress" ] ~docv:"SCENARIO"
        ~doc:
          "Run a contention stress scenario instead of a figure: long-vs-short, livelock-pair, inversion-chain, or all.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Random-scheduler seed for --stress runs (also seeds randomized backoff); runs are reproducible per seed. Default 0.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:
          "Scheduler step bound for --stress runs (default 2000000); exceeding it reports fuel-exhausted.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write aggregate STM metrics (transaction counters, abort causes, latency histograms, per-thread fairness incl. the Jain index) as JSON to $(docv).")

let cmd =
  let doc =
    "regenerate the PLDI 2007 evaluation figures and run contention stress \
     scenarios"
  in
  Cmd.v
    (Cmd.info "stm_bench" ~doc)
    Term.(
      const main $ name_arg $ scale_arg $ threads_arg $ cm_arg $ stress_arg
      $ seed_arg $ fuel_arg $ metrics_arg)

let () = exit (Cmd.eval' cmd)
