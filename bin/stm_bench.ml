(* CLI: regenerate individual evaluation figures and run contention
   stress scenarios.

   Examples:
     stm_bench fig6
     stm_bench fig15 --scale 0.5
     stm_bench fig18 --threads 1,2,4,8,16
     stm_bench all
     stm_bench --stress all --cm timestamp --seed 7 --metrics-out m.json *)

open Cmdliner

let parse_threads s =
  String.split_on_char ',' s |> List.map int_of_string

(* Returns false when a figure's built-in check fails (only fig6 has
   one); the caller turns any failure into a non-zero exit. *)
let run_figure name scale threads cm =
  let threads = Option.map parse_threads threads in
  match name with
  | "fig6" ->
      let cells = Stm_harness.Figures.fig6 ?cm () in
      Fmt.pr "%a" Stm_harness.Figures.pp_fig6 cells;
      let ok = Stm_litmus.Matrix.all_match cells in
      Fmt.pr "matches the paper: %b@." ok;
      ok
  | "privatization" ->
      let cells = Stm_litmus.Matrix.privatization_row () in
      Fmt.pr "%a" Stm_litmus.Matrix.pp_table cells;
      true
  | "fig13" ->
      Fmt.pr "%a" Stm_analysis.Barrier_stats.pp_table
        (Stm_harness.Figures.fig13 ());
      true
  | "fig15" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig15 ?scale ());
      true
  | "fig16" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig16 ?scale ());
      true
  | "fig17" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig17 ?scale ());
      true
  | "fig18" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig18 ?threads ?scale ());
      true
  | "fig19" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig19 ?threads ?scale ());
      true
  | "fig20" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig20 ?threads ?scale ());
      true
  | other -> Fmt.failwith "unknown figure %s" other

let all_figures =
  [ "fig6"; "privatization"; "fig13"; "fig15"; "fig16"; "fig17"; "fig18";
    "fig19"; "fig20" ]

let write_json path json =
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Stm_obs.Json.to_string json);
        output_char oc '\n')
  with Sys_error msg ->
    Fmt.epr "cannot write %s: %s@." path msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* Stress mode                                                         *)
(* ------------------------------------------------------------------ *)

let stress_report_json (r : Stm_harness.Stress.report) =
  let open Stm_obs in
  Json.Obj
    [
      ( "status",
        Json.Str
          (match r.Stm_harness.Stress.status with
          | Stm_runtime.Sched.Completed -> "completed"
          | Stm_runtime.Sched.Fuel_exhausted -> "fuel-exhausted"
          | Stm_runtime.Sched.Deadlock _ -> "deadlock") );
      ("completed", Json.Bool r.Stm_harness.Stress.completed);
      ("passed", Json.Bool (Stm_harness.Stress.passed r));
      ("makespan", Json.Int r.Stm_harness.Stress.makespan);
      ( "starved",
        Json.List
          (List.map (fun t -> Json.Int t) r.Stm_harness.Stress.starved) );
      ( "metrics",
        Metrics.to_json ~stats:r.Stm_harness.Stress.stats
          r.Stm_harness.Stress.metrics );
    ]

let run_stress which versioning isolation validation cm seed fuel metrics_out
    diag_out =
  let scenarios =
    if which = "all" then Stm_harness.Stress.all_scenarios
    else
      match Stm_harness.Stress.scenario_of_string which with
      | Some s -> [ s ]
      | None -> Fmt.failwith "unknown stress scenario %s" which
  in
  (* --diag-out: run the conflict-diagnosis pipeline live alongside the
     scenarios and keep the raw entries, so the file is a JSONL trace
     that `stm_diag` replays to the same conclusions *)
  let diag =
    Option.map
      (fun _ -> (Stm_diag.Diag.create (), Stm_obs.Recorder.create ()))
      diag_out
  in
  let consumer =
    Option.map
      (fun (d, rec_) ev ->
        Stm_obs.Recorder.record rec_ ev;
        Stm_diag.Diag.consumer d ev)
      diag
  in
  let reports =
    List.map
      (fun s ->
        let r =
          Stm_harness.Stress.run ?seed ?fuel ?consumer ~versioning ~isolation
            ~validation ~cm s
        in
        Fmt.pr "%a@." Stm_harness.Stress.pp_report r;
        (match (diag, r.Stm_harness.Stress.starved) with
        | Some (d, _), (_ :: _ as tids) ->
            Stm_diag.Diag.force_incident d
              ~reason:
                (Fmt.str "starvation verdict: %s under %s starved threads [%s]"
                   (Stm_harness.Stress.scenario_name s)
                   (Stm_cm.Policy.to_string cm)
                   (String.concat "; " (List.map string_of_int tids)))
        | _ -> ());
        r)
      scenarios
  in
  Option.iter
    (fun (d, rec_) ->
      let path = Option.get diag_out in
      (try
         Out_channel.with_open_text path (fun oc ->
             Stm_obs.Export.write_jsonl oc (Stm_obs.Recorder.entries rec_))
       with Sys_error msg ->
         Fmt.epr "cannot write %s: %s@." path msg;
         exit 2);
      if Stm_obs.Recorder.dropped rec_ > 0 then
        Fmt.epr "diag trace: ring full, dropped %d oldest events@."
          (Stm_obs.Recorder.dropped rec_);
      Fmt.pr "@.=== conflict diagnosis ===@.%a"
        (fun ppf -> Stm_diag.Diag.report ppf)
        d;
      Fmt.pr "diag trace written to %s (replay with stm_diag)@." path)
    diag;
  Option.iter
    (fun path ->
      write_json path
        (Stm_obs.Json.Obj
           [
             ("policy", Stm_obs.Json.Str (Stm_cm.Policy.to_string cm));
             ( "backend",
               Stm_obs.Json.Str
                 (Stm_core.Config.versioning_to_string versioning) );
             ( "isolation",
               Stm_obs.Json.Str
                 (Stm_core.Config.isolation_to_string isolation) );
             ( "validation",
               Stm_obs.Json.Str
                 (Stm_core.Config.validation_to_string validation) );
             ("seed", Stm_obs.Json.Int (Option.value ~default:0 seed));
             ( "threshold",
               Stm_obs.Json.Int Stm_harness.Stress.starvation_threshold );
             ( "scenarios",
               Stm_obs.Json.Obj
                 (List.map
                    (fun r ->
                      ( Stm_harness.Stress.scenario_name
                          r.Stm_harness.Stress.scenario,
                        stress_report_json r ))
                    reports) );
           ]))
    metrics_out;
  if List.for_all (fun r -> r.Stm_harness.Stress.completed) reports then 0
  else 1

(* ------------------------------------------------------------------ *)
(* Fuzz mode                                                           *)
(* ------------------------------------------------------------------ *)

let sanitize_name s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.') as c -> c | _ -> '_')
    s

let run_fuzz ~programs ~seeds ~driver ~dir ~seed ~fuel ~validation ~metrics_out
    ~diag_out =
  let open Stm_check in
  let budget =
    {
      Fuzz.default_budget with
      Fuzz.programs;
      seeds;
      base_seed = Option.value seed ~default:Fuzz.default_budget.Fuzz.base_seed;
      max_steps = Option.value fuel ~default:Fuzz.default_budget.Fuzz.max_steps;
      driver;
    }
  in
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    dir;
  (* The fuzzer's executor owns the trace sink (it rebuilds the access
     history per run), so fuzz mode feeds the flight recorder through the
     anomaly hook alone: each unexpected anomaly freezes an incident
     naming the campaign, program seed and schedule seed. *)
  let diag = Option.map (fun _ -> Stm_diag.Diag.create ()) diag_out in
  Option.iter
    (fun d ->
      Fuzz.set_anomaly_hook
        (Some (fun reason -> Stm_diag.Diag.force_incident d ~reason)))
    diag;
  let log msg = Fmt.pr "    %s@." msg in
  let results =
    List.map
      (fun c ->
        let r = Fuzz.run_campaign ~log budget c in
        Fmt.pr "%-40s %4d runs %3d anomalies %3d inconclusive  %s@."
          (Fuzz.campaign_name c) r.Fuzz.runs r.Fuzz.anomalies
          r.Fuzz.inconclusive
          (if r.Fuzz.ok then "ok" else "FAIL");
        (match (r.Fuzz.repro, dir) with
        | Some repro, Some d ->
            let path =
              Filename.concat d (sanitize_name (Fuzz.campaign_name c) ^ ".json")
            in
            Repro.save path repro;
            Fmt.pr "    repro written to %s@." path
        | Some repro, None ->
            if not r.Fuzz.ok then
              Fmt.pr "    repro: %s@." (Repro.to_string repro)
        | None, _ -> ());
        r)
      (* --validation timestamp swaps in the timestamp certification
         plan: expect-clean campaigns over the 24-combo timestamp grid *)
      (match validation with
      | Stm_core.Config.Incremental -> Fuzz.default_plan
      | Stm_core.Config.Timestamp -> Fuzz.timestamp_plan)
  in
  let summary = Fuzz.summary_json budget results in
  Option.iter (fun path -> write_json path summary) metrics_out;
  Option.iter
    (fun d ->
      Fuzz.set_anomaly_hook None;
      let path = Option.get diag_out in
      write_json path (Stm_diag.Diag.to_json d);
      Fmt.pr "fuzz diag report written to %s@." path)
    diag;
  let ok = Fuzz.passed results in
  Fmt.pr "fuzz sweep: %d campaigns, %d runs, %s@." (List.length results)
    (List.fold_left (fun a r -> a + r.Stm_check.Fuzz.runs) 0 results)
    (if ok then "all expectations met" else "EXPECTATIONS VIOLATED");
  if ok then 0 else 1

(* --fuzz-differential: the same seeded programs and schedules run on
   every backend in the grid (eager, lazy, mvcc-serializable, all
   certified serializable, plus mvcc-snapshot certified at snapshot
   isolation); any member certifying anomalous at its own level is a
   cross-backend divergence, saved as a replayable repro. *)
let run_fuzz_differential ~programs ~seeds ~dir ~seed ~fuel ~validation
    ~metrics_out =
  let open Stm_check in
  let budget =
    {
      Fuzz.default_budget with
      Fuzz.programs;
      seeds;
      base_seed = Option.value seed ~default:Fuzz.default_budget.Fuzz.base_seed;
      max_steps = Option.value fuel ~default:Fuzz.default_budget.Fuzz.max_steps;
    }
  in
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    dir;
  let log msg = Fmt.pr "    %s@." msg in
  (* --validation timestamp widens the grid with eager-ts and lazy-ts:
     the same programs and schedules under both validation schemes *)
  let combos =
    match validation with
    | Stm_core.Config.Incremental -> Fuzz.backend_grid
    | Stm_core.Config.Timestamp -> Fuzz.timestamp_backend_grid
  in
  let r = Fuzz.run_differential ~log ~combos budget in
  Fmt.pr "backend grid:@.";
  List.iter
    (fun c -> Fmt.pr "  %s@." (Combo.name c))
    r.Fuzz.diff_combos;
  List.iter
    (fun (d : Fuzz.divergence) ->
      Fmt.pr "DIVERGENCE program seed %d, schedule seed %d:@."
        d.Fuzz.div_prog_seed d.Fuzz.div_sched_seed;
      List.iter
        (fun (combo, v) ->
          Fmt.pr "  %-32s %a@." combo Stm_check.History.pp_verdict v)
        d.Fuzz.div_verdicts;
      List.iteri
        (fun i repro ->
          match dir with
          | Some dd ->
              let path =
                Filename.concat dd
                  (Fmt.str "divergence-p%d-s%d-%d.json" d.Fuzz.div_prog_seed
                     d.Fuzz.div_sched_seed i)
              in
              Repro.save path repro;
              Fmt.pr "  repro written to %s@." path
          | None -> Fmt.pr "  repro: %s@." (Repro.to_string repro))
        d.Fuzz.div_repros)
    r.Fuzz.divergences;
  Option.iter
    (fun path -> write_json path (Fuzz.differential_to_json r))
    metrics_out;
  let ok = Fuzz.differential_passed r in
  Fmt.pr
    "differential sweep: %d backends x %d programs, %d executions, %d \
     divergences — %s@."
    (List.length r.Fuzz.diff_combos)
    r.Fuzz.diff_programs r.Fuzz.diff_executions
    (List.length r.Fuzz.divergences)
    (if ok then "backends agree" else "BACKENDS DIVERGED");
  if ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* Perf mode: host wall-clock microbenchmarks                          *)
(* ------------------------------------------------------------------ *)

(* --diag-gate: the diagnosis layer must be free when disabled. The STM
   hot paths (the txn/ benches) and the explorer cell (fig6/) run with no
   trace sink installed, so merging the diag code must not move them:
   hold those benches to a tighter budget than the general ratchet. *)
let diag_gate_pct = 5.0

let diag_gated c =
  let pre p =
    String.length c.Stm_perf.Perf.c_name >= String.length p
    && String.sub c.Stm_perf.Perf.c_name 0 (String.length p) = p
  in
  pre "txn/" || pre "fig6/"

(* Each backend (and validation scheme) ratchets against its own
   checked-in baseline; an explicit --perf-baseline overrides the
   choice. *)
let default_baseline backend validation =
  match (backend, validation) with
  | Stm_core.Config.Mvcc, _ -> "bench/baseline-mvcc.json"
  | ( (Stm_core.Config.Eager | Stm_core.Config.Lazy),
      Stm_core.Config.Timestamp ) ->
      "bench/baseline-timestamp.json"
  | ( (Stm_core.Config.Eager | Stm_core.Config.Lazy),
      Stm_core.Config.Incremental ) ->
      "bench/baseline.json"

let run_perf ~quick ~backend ~validation ~out ~baseline ~threshold ~diag_gate =
  let baseline =
    Option.value baseline ~default:(default_baseline backend validation)
  in
  let report = Stm_perf.Perf.suite ~quick ~backend ~validation () in
  Fmt.pr "backend: %s (%s validation)@."
    (Stm_core.Config.versioning_to_string backend)
    (Stm_core.Config.validation_to_string validation);
  Fmt.pr "%a" Stm_perf.Perf.pp_report report;
  write_json out (Stm_perf.Perf.to_json report);
  Fmt.pr "perf results written to %s@." out;
  if not (Sys.file_exists baseline) then begin
    Fmt.pr "no baseline at %s; skipping regression check@." baseline;
    0
  end
  else
    let doc = In_channel.with_open_text baseline In_channel.input_all in
    match Stm_obs.Json.of_string doc with
    | Error msg ->
        Fmt.epr "cannot parse baseline %s: %s@." baseline msg;
        2
    | Ok json ->
        let base = Stm_perf.Perf.baseline_of_json json in
        let comps = Stm_perf.Perf.compare_to_baseline ~baseline:base report in
        Fmt.pr "vs %s:@.%a" baseline Stm_perf.Perf.pp_comparison comps;
        let regressed =
          Stm_perf.Perf.regressions ~threshold_pct:threshold comps
        in
        let diag_regressed =
          if not diag_gate then []
          else
            Stm_perf.Perf.regressions ~threshold_pct:diag_gate_pct
              (List.filter diag_gated comps)
        in
        if diag_gate then
          Fmt.pr "diag overhead gate: %d txn/fig6 benches held to %.0f%%@."
            (List.length (List.filter diag_gated comps))
            diag_gate_pct;
        if regressed = [] && diag_regressed = [] then begin
          Fmt.pr "no microbench regressed more than %.0f%%@." threshold;
          0
        end
        else begin
          List.iter
            (fun c ->
              Fmt.epr "REGRESSION %s: %.0f ns/op vs baseline %.0f (>%g%%)@."
                c.Stm_perf.Perf.c_name c.Stm_perf.Perf.c_ns
                c.Stm_perf.Perf.c_baseline_ns threshold)
            regressed;
          List.iter
            (fun c ->
              Fmt.epr
                "DIAG OVERHEAD %s: %.0f ns/op vs baseline %.0f (>%g%% with \
                 diagnosis disabled)@."
                c.Stm_perf.Perf.c_name c.Stm_perf.Perf.c_ns
                c.Stm_perf.Perf.c_baseline_ns diag_gate_pct)
            diag_regressed;
          1
        end

(* ------------------------------------------------------------------ *)
(* Store mode: KV workload engine                                      *)
(* ------------------------------------------------------------------ *)

type store_opts = {
  so_mode : Stm_store.Kv.mode;
  so_shards : int;
  so_clients : int;
  so_keys : int;
  so_ops : int;
  so_batch : int;
  so_value_size : int;
  so_dist : string;
  so_theta : float;
  so_check : bool;
}

let store_dist so =
  match Stm_store.Keydist.dist_of_string ~theta:so.so_theta so.so_dist with
  | Some d -> d
  | None ->
      Fmt.failwith "unknown key distribution %s (expected zipfian or uniform)"
        so.so_dist

let store_params so profile ~record ~mode ~shards cm seed fuel =
  {
    Stm_store.Engine.default with
    Stm_store.Engine.mode;
    shards;
    clients = so.so_clients;
    keys = so.so_keys;
    value_size = so.so_value_size;
    batch = so.so_batch;
    ops_per_client = so.so_ops;
    dist = store_dist so;
    profile;
    seed = Option.value seed ~default:0;
    cm;
    record;
    fuel =
      Option.value fuel
        ~default:Stm_store.Engine.default.Stm_store.Engine.fuel;
  }

(* One profile run, with the optional diagnosis pipeline attached the
   same way --stress attaches it; the heatmap's hot granules are joined
   back to store keys through the report's oid resolver. *)
let run_store_profile so profile cm seed fuel metrics_out diag_out =
  let p =
    store_params so profile ~record:so.so_check ~mode:so.so_mode
      ~shards:so.so_shards cm seed fuel
  in
  let diag =
    Option.map
      (fun _ -> (Stm_diag.Diag.create (), Stm_obs.Recorder.create ()))
      diag_out
  in
  let consumer =
    Option.map
      (fun (d, rec_) ev ->
        Stm_obs.Recorder.record rec_ ev;
        Stm_diag.Diag.consumer d ev)
      diag
  in
  let r = Stm_store.Engine.run ?consumer p in
  Fmt.pr "%a@." Stm_store.Engine.pp_report r;
  Option.iter
    (fun (d, rec_) ->
      let path = Option.get diag_out in
      (try
         Out_channel.with_open_text path (fun oc ->
             Stm_obs.Export.write_jsonl oc (Stm_obs.Recorder.entries rec_))
       with Sys_error msg ->
         Fmt.epr "cannot write %s: %s@." path msg;
         exit 2);
      Fmt.pr "@.=== conflict diagnosis ===@.%a"
        (fun ppf -> Stm_diag.Diag.report ppf)
        d;
      Fmt.pr "hot keys (heatmap granules resolved to store keys):@.";
      List.iter
        (fun (c : Stm_diag.Heatmap.cell) ->
          match r.Stm_store.Engine.r_resolve_oid c.Stm_diag.Heatmap.oid with
          | Some (k, sh) ->
              Fmt.pr "  key %-6d shard %-3d heat %d@." k sh
                (Stm_diag.Heatmap.heat c)
          | None ->
              Fmt.pr "  oid %-6d (store structure)  heat %d@."
                c.Stm_diag.Heatmap.oid
                (Stm_diag.Heatmap.heat c))
        (Stm_diag.Heatmap.top (Stm_diag.Diag.heatmap d) ~k:10);
      Fmt.pr "diag trace written to %s (replay with stm_diag)@." path)
    diag;
  Option.iter
    (fun path -> write_json path (Stm_store.Engine.to_json r))
    metrics_out;
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  if not r.Stm_store.Engine.r_completed then fail "run did not complete";
  List.iter (fun v -> fail "invariant violated: %s" v)
    r.Stm_store.Engine.r_invariants;
  (* Weak mode is *expected* to misbehave on mixed traffic — its verdict
     and deviation are findings, not failures. *)
  (match (so.so_mode, r.Stm_store.Engine.r_verdict) with
  | (Stm_store.Kv.Strong | Stm_store.Kv.Lock | Stm_store.Kv.Mvcc), Some verdict
    -> (
      match verdict with
      | Stm_check.History.Serializable -> ()
      | v ->
          fail "oracle rejected a %s-mode run: %a"
            (Stm_store.Kv.mode_to_string so.so_mode)
            Stm_check.History.pp_verdict v)
  | _ -> ());
  (match (so.so_mode, r.Stm_store.Engine.r_deviation) with
  | (Stm_store.Kv.Strong | Stm_store.Kv.Lock | Stm_store.Kv.Mvcc), Some d
    when d <> 0 ->
      fail "update deviation %d in %s mode" d
        (Stm_store.Kv.mode_to_string so.so_mode)
  | _ -> ());
  match !failures with
  | [] -> 0
  | fs ->
      List.iter (fun f -> Fmt.epr "STORE FAILURE: %s@." f) (List.rev fs);
      1

(* The acceptance sweep: shard scaling on read-heavy Zipfian traffic,
   then strong-vs-weak barrier overhead on the same traffic. *)
let sweep_shards = [ 1; 2; 4; 8 ]

let run_store_sweep so cm seed fuel metrics_out =
  let profile = Stm_store.Profile.read_heavy in
  let mk mode shards =
    store_params so profile ~record:false ~mode ~shards cm seed fuel
  in
  Fmt.pr "== shard scaling: %s, %s, %d clients ==@."
    profile.Stm_store.Profile.pname
    (Stm_store.Keydist.dist_to_string (store_dist so))
    so.so_clients;
  let points =
    List.map
      (fun s ->
        let r = Stm_store.Engine.run (mk Stm_store.Kv.Strong s) in
        Fmt.pr "%a@." Stm_store.Engine.pp_report r;
        (s, r))
      sweep_shards
  in
  let thr (_, r) = r.Stm_store.Engine.r_throughput in
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  let scaling_ok = thr last > thr first in
  Fmt.pr "shard scaling %d -> %d: %.1f -> %.1f ops/Mcycle (%s)@.@." (fst first)
    (fst last) (thr first) (thr last)
    (if scaling_ok then "ok" else "NOT SCALING");
  Fmt.pr "== barrier overhead: strong vs weak, %d shards ==@." so.so_shards;
  let rs = Stm_store.Engine.run (mk Stm_store.Kv.Strong so.so_shards) in
  Fmt.pr "%a@." Stm_store.Engine.pp_report rs;
  let rw = Stm_store.Engine.run (mk Stm_store.Kv.Weak so.so_shards) in
  Fmt.pr "%a@." Stm_store.Engine.pp_report rw;
  (* Overhead is measured where barriers live: the per-op latency of the
     non-transactional classes. Makespan would fold in contention-manager
     timing noise (abort/backoff divergence between the two runs). *)
  let lat_strong = Stm_store.Engine.nontxn_mean_latency rs in
  let lat_weak = Stm_store.Engine.nontxn_mean_latency rw in
  let overhead_pct =
    if lat_weak > 0. then (lat_strong -. lat_weak) /. lat_weak *. 100. else 0.
  in
  Fmt.pr
    "strong-atomicity barrier overhead at %d shards: %+.1f%% per \
     non-transactional op (%.1f vs %.1f cycles)@."
    so.so_shards overhead_pct lat_strong lat_weak;
  let runs = List.map snd points @ [ rs; rw ] in
  let completed =
    List.for_all (fun r -> r.Stm_store.Engine.r_completed) runs
  in
  let invariants_ok =
    List.for_all (fun r -> r.Stm_store.Engine.r_invariants = []) runs
  in
  Option.iter
    (fun path ->
      let open Stm_obs in
      write_json path
        (Json.Obj
           [
             ("schema", Json.Str "stm-store/1");
             ("kind", Json.Str "sweep");
             ( "scaling",
               Json.Obj
                 [
                   ("profile", Json.Str profile.Stm_store.Profile.pname);
                   ( "dist",
                     Json.Str (Stm_store.Keydist.dist_to_string (store_dist so))
                   );
                   ("clients", Json.Int so.so_clients);
                   ( "points",
                     Json.List
                       (List.map
                          (fun (s, r) ->
                            Json.Obj
                              [
                                ("shards", Json.Int s);
                                ( "throughput_ops_per_mcycle",
                                  Json.Float r.Stm_store.Engine.r_throughput );
                                ( "makespan",
                                  Json.Int r.Stm_store.Engine.r_makespan );
                              ])
                          points) );
                   ("scaling_ok", Json.Bool scaling_ok);
                 ] );
             ( "barrier_overhead",
               Json.Obj
                 [
                   ("shards", Json.Int so.so_shards);
                   ("strong_makespan", Json.Int rs.Stm_store.Engine.r_makespan);
                   ("weak_makespan", Json.Int rw.Stm_store.Engine.r_makespan);
                   ( "strong_throughput",
                     Json.Float rs.Stm_store.Engine.r_throughput );
                   ( "weak_throughput",
                     Json.Float rw.Stm_store.Engine.r_throughput );
                   ("strong_nontxn_latency", Json.Float lat_strong);
                   ("weak_nontxn_latency", Json.Float lat_weak);
                   ("overhead_pct", Json.Float overhead_pct);
                   ("overhead_positive", Json.Bool (overhead_pct > 0.));
                 ] );
             ( "runs",
               Json.List (List.map Stm_store.Engine.to_json runs) );
           ]))
    metrics_out;
  if completed && invariants_ok && scaling_ok && overhead_pct > 0. then 0
  else begin
    if not completed then Fmt.epr "STORE FAILURE: a sweep run did not complete@.";
    if not invariants_ok then Fmt.epr "STORE FAILURE: invariant violations@.";
    if not scaling_ok then
      Fmt.epr "STORE FAILURE: throughput did not increase with shard count@.";
    if overhead_pct <= 0. then
      Fmt.epr "STORE FAILURE: strong-atomicity barrier overhead not measurable@.";
    1
  end

let run_store which so cm seed fuel metrics_out diag_out =
  match which with
  | "sweep" -> run_store_sweep so cm seed fuel metrics_out
  | name -> (
      match Stm_store.Profile.of_string name with
      | Some profile ->
          run_store_profile so profile cm seed fuel metrics_out diag_out
      | None ->
          Fmt.failwith
            "unknown store profile %s (try --list; or --store sweep)" name)

(* ------------------------------------------------------------------ *)
(* List mode                                                           *)
(* ------------------------------------------------------------------ *)

let run_list () =
  Fmt.pr "figures (positional FIGURE argument):@.";
  List.iter (fun f -> Fmt.pr "  %s@." f) all_figures;
  Fmt.pr "@.workloads (Jt programs behind the figures):@.";
  List.iter
    (fun fam ->
      Fmt.pr "  %-8s %s@." fam.Stm_workloads.Catalog.fam_name
        fam.Stm_workloads.Catalog.fam_descr;
      List.iter
        (fun (w : Stm_workloads.Workload.t) ->
          Fmt.pr "    %-12s %s@." w.Stm_workloads.Workload.name
            w.Stm_workloads.Workload.descr)
        fam.Stm_workloads.Catalog.members)
    Stm_workloads.Catalog.families;
  Fmt.pr "@.store profiles (--store PROFILE, or --store sweep):@.";
  List.iter
    (fun (p : Stm_store.Profile.t) ->
      Fmt.pr "  %-12s %-10s %s@." p.Stm_store.Profile.pname
        (match p.Stm_store.Profile.aliases with
        | [] -> ""
        | a -> "(" ^ String.concat ", " a ^ ")")
        p.Stm_store.Profile.pdescr)
    Stm_store.Profile.all;
  Fmt.pr "@.stress scenarios (--stress SCENARIO):@.";
  List.iter
    (fun s -> Fmt.pr "  %s@." (Stm_harness.Stress.scenario_name s))
    Stm_harness.Stress.all_scenarios;
  Fmt.pr "@.fuzz campaigns (--fuzz):@.";
  List.iter
    (fun c -> Fmt.pr "  %s@." (Stm_check.Fuzz.campaign_name c))
    Stm_check.Fuzz.default_plan;
  Fmt.pr
    "@.validation modes (--validation; selects the fuzz plan, the \
     differential grid, stress/perf configs and the perf baseline):@.";
  List.iter
    (fun (v, descr) ->
      Fmt.pr "  %-12s %s@." (Stm_core.Config.validation_to_string v) descr)
    [
      ( Stm_core.Config.Incremental,
        "per-checkpoint read-set walk (the default)" );
      ( Stm_core.Config.Timestamp,
        "global commit clock: O(1) revalidation, timestamp extension, \
         read-only fast-path commits" );
    ];
  Fmt.pr "@.timestamp fuzz campaigns (--fuzz --validation timestamp):@.";
  List.iter
    (fun c -> Fmt.pr "  %s@." (Stm_check.Fuzz.campaign_name c))
    Stm_check.Fuzz.timestamp_plan;
  Fmt.pr "@.exploration engines (--explore; re-derive the litmus matrix):@.";
  List.iter
    (fun (e, descr) -> Fmt.pr "  %-6s %s@." e descr)
    [
      ( "dpor",
        "certification: race-reduced DPOR walk cross-checked against the \
         enumerative DFS at the same preemption bound; verdict flips and \
         incomplete \"no\" cells are fatal" );
      ("enum", "enumerative preemption-bounded DFS, held to the paper");
      ( "pct",
        "probabilistic sampling; conclusive only for unexpected anomalies" );
    ];
  Fmt.pr "@.perf benches (--perf):@.";
  List.iter (fun n -> Fmt.pr "  %s@." n) Stm_perf.Perf.bench_names;
  0

(* ------------------------------------------------------------------ *)
(* Exploration-engine certification mode                               *)
(* ------------------------------------------------------------------ *)

(* --explore ENGINE: re-derive the litmus matrix with a chosen schedule
   engine. "dpor" is the certification mode: every cell is decided by
   both the enumerative DFS and the race-reduced DPOR walk at the same
   preemption bound, and a verdict flip — or a DPOR walk that fails to
   complete where the enumerative baseline finished — is fatal. "enum"
   re-derives the cells with the DFS alone; "pct" samples them with
   probabilistic concurrency testing, where only an anomaly on an
   expected-"no" cell is conclusive (a sampler's silence certifies
   nothing, so missed "yes" cells are reported, not fatal). *)

let explore_cells ~bound rows =
  match rows with
  | "fig6" ->
      List.concat_map
        (fun p -> List.map (fun m -> (p, m, bound)) Stm_litmus.Modes.all_fig6)
        Stm_litmus.Programs.fig6_rows
  | "all" -> Stm_litmus.Matrix.full_matrix ~bound ()
  | other ->
      Fmt.failwith "unknown --explore-rows %s (expected fig6 or all)" other

let cell_json (c : Stm_litmus.Matrix.cell) =
  let open Stm_obs in
  [
    ("program", Json.Str c.Stm_litmus.Matrix.program.Stm_litmus.Programs.name);
    ("mode", Json.Str (Stm_litmus.Modes.name c.Stm_litmus.Matrix.mode));
    ("expected", Json.Bool c.Stm_litmus.Matrix.expected);
    ("observed", Json.Bool c.Stm_litmus.Matrix.observed);
    ("runs", Json.Int c.Stm_litmus.Matrix.runs);
    ("truncated", Json.Bool c.Stm_litmus.Matrix.truncated);
  ]

let run_explore_dpor ~bound ~max_runs ~rows ~cells_out =
  let open Stm_obs in
  let cells = explore_cells ~bound rows in
  Fmt.pr "certifying %d cells at preemption bound %d (dpor vs enum)@."
    (List.length cells) bound;
  let results =
    List.map
      (fun (p, m, b) ->
        let c =
          Stm_litmus.Matrix.certify_cell ~preemption_bound:b ?max_runs p m
        in
        Fmt.pr "%a@." Stm_litmus.Matrix.pp_certified c;
        c)
      cells
  in
  let total f = List.fold_left (fun a c -> a + f c) 0 results in
  let enum_total =
    total (fun c -> c.Stm_litmus.Matrix.enum.Stm_litmus.Matrix.runs)
  in
  let dpor_total =
    total (fun c -> c.Stm_litmus.Matrix.dpor.Stm_litmus.Matrix.runs)
  in
  let flips =
    List.filter
      (fun c ->
        c.Stm_litmus.Matrix.dpor.Stm_litmus.Matrix.observed
        <> c.Stm_litmus.Matrix.enum.Stm_litmus.Matrix.observed)
      results
  in
  let incomplete =
    List.filter (fun c -> not (Stm_litmus.Matrix.cell_certified c)) results
  in
  let mismatches =
    List.filter
      (fun c ->
        c.Stm_litmus.Matrix.enum.Stm_litmus.Matrix.observed
        <> c.Stm_litmus.Matrix.enum.Stm_litmus.Matrix.expected)
      results
  in
  let ratio =
    if dpor_total = 0 then 0.
    else float_of_int enum_total /. float_of_int dpor_total
  in
  Fmt.pr
    "total runs: enum %d, dpor %d (%.2fx reduction); %d verdict flips, %d \
     uncertified, %d paper mismatches@."
    enum_total dpor_total ratio (List.length flips) (List.length incomplete)
    (List.length mismatches);
  let ok = incomplete = [] && mismatches = [] in
  Option.iter
    (fun path ->
      write_json path
        (Json.Obj
           [
             ("engine", Json.Str "dpor");
             ("preemption_bound", Json.Int bound);
             ( "cells",
               Json.List
                 (List.map
                    (fun c ->
                      Json.Obj
                        (cell_json c.Stm_litmus.Matrix.dpor
                        @ [
                            ( "enum_observed",
                              Json.Bool
                                c.Stm_litmus.Matrix.enum
                                  .Stm_litmus.Matrix.observed );
                            ( "enum_runs",
                              Json.Int
                                c.Stm_litmus.Matrix.enum.Stm_litmus.Matrix.runs
                            );
                            ("complete", Json.Bool c.Stm_litmus.Matrix.complete);
                            ("races", Json.Int c.Stm_litmus.Matrix.races);
                            ( "certified",
                              Json.Bool (Stm_litmus.Matrix.cell_certified c) );
                          ]))
                    results) );
             ("enum_runs_total", Json.Int enum_total);
             ("dpor_runs_total", Json.Int dpor_total);
             ("run_ratio", Json.Float ratio);
             ("flips", Json.Int (List.length flips));
             ("passed", Json.Bool ok);
           ]))
    cells_out;
  if ok then 0 else 1

let run_explore_cells ~engine ~bound ~runner ~rows ~cells_out =
  let open Stm_obs in
  let cells = explore_cells ~bound rows in
  Fmt.pr "re-deriving %d cells with the %s engine@." (List.length cells) engine;
  let results =
    List.map
      (fun (p, m, b) ->
        let (c : Stm_litmus.Matrix.cell) = runner ~bound:b p m in
        Fmt.pr "%-14s %-14s %s expected=%b runs=%d@."
          c.Stm_litmus.Matrix.program.Stm_litmus.Programs.name
          (Stm_litmus.Modes.name c.Stm_litmus.Matrix.mode)
          (if c.Stm_litmus.Matrix.observed then "yes" else "no ")
          c.Stm_litmus.Matrix.expected c.Stm_litmus.Matrix.runs;
        c)
      cells
  in
  let false_yes =
    List.filter
      (fun (c : Stm_litmus.Matrix.cell) ->
        c.Stm_litmus.Matrix.observed && not c.Stm_litmus.Matrix.expected)
      results
  in
  let missed =
    List.filter
      (fun (c : Stm_litmus.Matrix.cell) ->
        c.Stm_litmus.Matrix.expected && not c.Stm_litmus.Matrix.observed)
      results
  in
  (* The enumerative DFS at the standard bound must reproduce the paper
     exactly; a sampler is only held to the one-sided check. *)
  let ok =
    match engine with
    | "pct" ->
        if missed <> [] then
          Fmt.pr "note: %d expected-yes cells not reached by sampling@."
            (List.length missed);
        false_yes = []
    | _ -> false_yes = [] && missed = []
  in
  Fmt.pr "%d cells, %d unexpected anomalies, %d missed witnesses: %s@."
    (List.length results) (List.length false_yes) (List.length missed)
    (if ok then "ok" else "FAIL");
  Option.iter
    (fun path ->
      write_json path
        (Json.Obj
           [
             ("engine", Json.Str engine);
             ( "cells",
               Json.List (List.map (fun c -> Json.Obj (cell_json c)) results)
             );
             ("passed", Json.Bool ok);
           ]))
    cells_out;
  if ok then 0 else 1

let run_explore ~engine ~bound ~max_runs ~rows ~cells_out =
  match engine with
  | "dpor" -> run_explore_dpor ~bound ~max_runs ~rows ~cells_out
  | "enum" ->
      run_explore_cells ~engine ~bound ~rows ~cells_out
        ~runner:(fun ~bound p m ->
          Stm_litmus.Matrix.run_cell ~preemption_bound:bound ?max_runs p m)
  | "pct" ->
      run_explore_cells ~engine ~bound ~rows ~cells_out
        ~runner:(fun ~bound:_ p m ->
          Stm_litmus.Matrix.run_cell_pct ?runs:max_runs p m)
  | other ->
      Fmt.failwith "unknown --explore engine %s (expected dpor, enum, or pct)"
        other

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let main list store store_opts name scale threads backend isolation validation
    cm stress seed fuel metrics_out diag_out fuzz fuzz_differential
    fuzz_programs fuzz_seeds fuzz_driver fuzz_dir explore explore_bound
    explore_runs explore_rows cells_out perf quick perf_out perf_baseline
    perf_threshold diag_gate =
  if list then run_list ()
  else
  match store with
  | Some which -> (
      try run_store which store_opts cm seed fuel metrics_out diag_out
      with Failure m | Invalid_argument m ->
        Fmt.epr "%s@." m;
        exit 2)
  | None ->
  match explore with
  | Some engine -> (
      try
        run_explore ~engine ~bound:explore_bound ~max_runs:explore_runs
          ~rows:explore_rows ~cells_out
      with Failure m ->
        Fmt.epr "%s@." m;
        exit 2)
  | None ->
  if perf then
    run_perf ~quick ~backend ~validation ~out:perf_out
      ~baseline:perf_baseline ~threshold:perf_threshold ~diag_gate
  else if fuzz_differential then
    run_fuzz_differential ~programs:fuzz_programs ~seeds:fuzz_seeds
      ~dir:fuzz_dir ~seed ~fuel ~validation ~metrics_out
  else if fuzz then
    let driver =
      match fuzz_driver with
      | "random" -> Stm_check.Fuzz.Drv_random
      | "explore" -> Stm_check.Fuzz.Drv_explore
      | "dpor" -> Stm_check.Fuzz.Drv_dpor
      | other ->
          Fmt.epr "unknown fuzz driver %s (expected random, explore, or dpor)@."
            other;
          exit 2
    in
    run_fuzz ~programs:fuzz_programs ~seeds:fuzz_seeds ~driver ~dir:fuzz_dir
      ~seed ~fuel ~validation ~metrics_out ~diag_out
  else
  match stress with
  | Some which -> (
      try
        run_stress which backend isolation validation cm seed fuel metrics_out
          diag_out
      with Failure m ->
        Fmt.epr "%s@." m;
        exit 2)
  | None ->
      let name =
        match name with
        | Some n -> n
        | None ->
            Fmt.epr "a FIGURE argument or --stress is required@.";
            exit 2
      in
      (* Collect run metrics across every figure executed by this
         invocation; an Info-level sink keeps the per-access Debug events
         unforced, so figure timings are unaffected on the fast paths. *)
      let metrics =
        Option.map
          (fun _ ->
            let m = Stm_obs.Metrics.create () in
            Stm_obs.Metrics.install m;
            m)
          metrics_out
      in
      let ok =
        try
          if name = "all" then
            List.fold_left
              (fun acc f ->
                Fmt.pr "== %s ==@." f;
                run_figure f scale threads (Some cm) && acc)
              true all_figures
          else run_figure name scale threads (Some cm)
        with Failure m ->
          Fmt.epr "%s@." m;
          exit 2
      in
      Stm_core.Trace.set_sink None;
      Option.iter
        (fun m ->
          write_json (Option.get metrics_out) (Stm_obs.Metrics.to_json m))
        metrics;
      if ok then 0 else 1

let cm_conv =
  let parse s =
    match Stm_cm.Policy.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown contention-management policy %s (expected %s)" s
               (String.concat ", "
                  (List.map Stm_cm.Policy.to_string Stm_cm.Policy.all))))
  in
  Arg.conv (parse, Stm_cm.Policy.pp)

let name_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FIGURE"
        ~doc:"One of fig6, privatization, fig13, fig15, fig16, fig17, fig18, fig19, fig20, all. Optional when $(b,--stress) or $(b,--fuzz) is given.")

let scale_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (default 1.0).")

let threads_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "threads" ] ~docv:"LIST"
        ~doc:"Comma-separated simulated processor counts for fig18-20.")

let backend_conv =
  let parse s =
    match Stm_core.Config.versioning_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg (Fmt.str "unknown backend %s (expected eager, lazy, or mvcc)" s))
  in
  Arg.conv
    ( parse,
      fun ppf v -> Fmt.string ppf (Stm_core.Config.versioning_to_string v) )

let backend_arg =
  Arg.(
    value
    & opt backend_conv Stm_core.Config.Eager
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Versioning backend: $(b,eager) (in-place + undo log, the \
           default), $(b,lazy) (write buffer), or $(b,mvcc) (bounded \
           per-granule version chains; read-only transactions run \
           abort-free against consistent snapshots). Applies to \
           $(b,--stress) runs and selects which benches/baseline \
           $(b,--perf) uses; $(b,--store) has its own $(b,--store-mode \
           mvcc).")

let isolation_conv =
  let parse s =
    match Stm_core.Config.isolation_of_string s with
    | Some i -> Ok i
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown isolation level %s (expected serializable or \
                      snapshot)" s))
  in
  Arg.conv
    (parse, fun ppf i -> Fmt.string ppf (Stm_core.Config.isolation_to_string i))

let isolation_arg =
  Arg.(
    value
    & opt isolation_conv Stm_core.Config.Serializable
    & info [ "isolation" ] ~docv:"LEVEL"
        ~doc:
          "Isolation level for $(b,--backend mvcc): $(b,serializable) \
           (commit-time read revalidation, the default) or $(b,snapshot) \
           (first-committer-wins only — write skew and long fork are \
           admitted). The single-version backends ignore it.")

let validation_conv =
  let parse s =
    match Stm_core.Config.validation_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown validation scheme %s (expected incremental or \
                      timestamp)" s))
  in
  Arg.conv
    ( parse,
      fun ppf v -> Fmt.string ppf (Stm_core.Config.validation_to_string v) )

let validation_arg =
  Arg.(
    value
    & opt validation_conv Stm_core.Config.Incremental
    & info [ "validation" ] ~docv:"SCHEME"
        ~doc:
          "Read-set validation scheme for the single-version backends: \
           $(b,incremental) (walk the read set at every checkpoint, the \
           default) or $(b,timestamp) (global commit clock: O(1) \
           revalidation while the clock is unchanged, timestamp extension \
           on reads past the snapshot, read-only fast-path commits). \
           Applies to $(b,--stress) and $(b,--perf) configurations, swaps \
           the $(b,--fuzz) plan for the timestamp certification grid, and \
           widens $(b,--fuzz-differential) with the eager-ts/lazy-ts \
           members. mvcc has its own commit clock and ignores it.")

let cm_arg =
  Arg.(
    value
    & opt cm_conv Stm_cm.Policy.Suicide
    & info [ "cm" ] ~docv:"POLICY"
        ~doc:
          "Contention-management policy: suicide, wound-wait, exp-backoff, karma, or timestamp. Applies to --stress runs and to fig6.")

let stress_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stress" ] ~docv:"SCENARIO"
        ~doc:
          "Run a contention stress scenario instead of a figure: long-vs-short, livelock-pair, inversion-chain, or all.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Random-scheduler seed for --stress runs (also seeds randomized backoff); runs are reproducible per seed. Default 0.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:
          "Scheduler step bound for --stress runs (default 2000000); exceeding it reports fuel-exhausted.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write aggregate STM metrics (transaction counters, abort causes, latency histograms, per-thread fairness incl. the Jain index) as JSON to $(docv).")

let diag_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "diag-out" ] ~docv:"FILE"
        ~doc:
          "For --stress runs: attach the conflict-diagnosis pipeline (contention heatmap, abort-causality graph, flight recorder) live, print its report after the scenario reports, and write the full Debug-level event stream as a JSONL trace to $(docv) for offline replay with $(b,stm_diag). A starvation verdict forces a flight-recorder incident.")

let fuzz_arg =
  Arg.(
    value & flag
    & info [ "fuzz" ]
        ~doc:
          "Run the property-based differential fuzz sweep: random programs per (configuration combo, profile) campaign, checked against the serializability oracle; counterexamples are shrunk and printed (or saved with $(b,--fuzz-dir)) as replayable JSON. Non-zero exit when any campaign misses its expectation. $(b,--seed) sets the base seed, $(b,--fuel) the per-run scheduler budget, $(b,--metrics-out) the JSON summary path.")

let fuzz_differential_arg =
  Arg.(
    value & flag
    & info [ "fuzz-differential" ]
        ~doc:
          "Run the cross-backend differential fuzz sweep: the same seeded \
           transaction-only programs under the same schedule seeds on every \
           backend in the grid (eager, lazy, mvcc at serializable — all \
           certified serializable — plus mvcc at snapshot isolation, \
           certified at snapshot level). Any member certifying anomalous at \
           its own level is a divergence: its verdicts are printed, a \
           replayable repro per anomalous member is saved with \
           $(b,--fuzz-dir), and the exit status is non-zero. \
           $(b,--fuzz-programs), $(b,--fuzz-seeds), $(b,--seed), $(b,--fuel) \
           and $(b,--metrics-out) apply as for $(b,--fuzz).")

let fuzz_programs_arg =
  Arg.(
    value & opt int Stm_check.Fuzz.default_budget.Stm_check.Fuzz.programs
    & info [ "fuzz-programs" ] ~docv:"N"
        ~doc:"Generated programs per fuzz campaign.")

let fuzz_seeds_arg =
  Arg.(
    value & opt int Stm_check.Fuzz.default_budget.Stm_check.Fuzz.seeds
    & info [ "fuzz-seeds" ] ~docv:"N"
        ~doc:"Random schedules per generated program.")

let fuzz_driver_arg =
  Arg.(
    value & opt string "random"
    & info [ "fuzz-driver" ] ~docv:"DRIVER"
        ~doc:
          "Schedule source: $(b,random) (seeded random scheduler), \
           $(b,explore) (the litmus explorer's preemption-bounded DFS, one \
           search per program), or $(b,dpor) (the race-reduced DPOR walk, \
           same bound, far fewer runs).")

let explore_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explore" ] ~docv:"ENGINE"
        ~doc:
          "Re-derive the litmus behaviour matrix with a schedule engine: \
           $(b,dpor) (certification mode — every cell decided by both the \
           race-reduced DPOR walk and the enumerative DFS at the same \
           preemption bound; any verdict flip, or a DPOR walk less complete \
           than a finished enumerative baseline, is a non-zero exit), \
           $(b,enum) (enumerative DFS alone, held to the paper's \
           expectations), or $(b,pct) (probabilistic sampling; only an \
           anomaly on an expected-\"no\" cell is fatal). See also \
           $(b,--explore-bound), $(b,--explore-runs), $(b,--explore-rows), \
           $(b,--cells-out).")

let explore_bound_arg =
  Arg.(
    value & opt int 2
    & info [ "explore-bound" ] ~docv:"N"
        ~doc:"Preemption bound for --explore dpor and enum (default 2).")

let explore_runs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "explore-runs" ] ~docv:"N"
        ~doc:
          "Run budget per cell: max explored schedules for $(b,dpor)/\
           $(b,enum) (default 40000 resp. 6000), sampling quota for \
           $(b,pct) (default 2000).")

let explore_rows_arg =
  Arg.(
    value & opt string "all"
    & info [ "explore-rows" ] ~docv:"ROWS"
        ~doc:
          "Cell set for --explore: $(b,all) (every matrix cell — Figure 6, \
           extras, privatization, SI, mvcc and timestamp columns) or \
           $(b,fig6) (the 45 Figure 6 cells, the CI smoke set).")

let cells_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cells-out" ] ~docv:"FILE"
        ~doc:
          "Write the per-cell --explore results (verdicts, run counts, \
           completeness, races) as JSON to $(docv) — the nightly CI \
           artifact.")

let perf_arg =
  Arg.(
    value & flag
    & info [ "perf" ]
        ~doc:
          "Run the host wall-clock performance suite (Bechamel): txn \
           read/write/commit/abort microbenches, the fig6 explorer cell, \
           the fig18 Tsp end-to-end unit and a fuzz-campaign throughput \
           unit. Writes JSON to $(b,--perf-out) and, when \
           $(b,--perf-baseline) exists, fails with non-zero exit if any \
           bench regresses more than $(b,--perf-threshold) percent.")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Shrink the Bechamel sampling quota for CI smoke runs of \
           $(b,--perf) (same operations, fewer samples).")

let perf_out_arg =
  Arg.(
    value & opt string "BENCH_PR4.json"
    & info [ "perf-out" ] ~docv:"FILE"
        ~doc:"Where $(b,--perf) writes its JSON report.")

let perf_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perf-baseline" ] ~docv:"FILE"
        ~doc:
          "Baseline report to ratchet against (same schema as \
           $(b,--perf-out); refresh it by pointing $(b,--perf-out) here). \
           Defaults to $(b,bench/baseline.json), \
           $(b,bench/baseline-mvcc.json) under $(b,--backend mvcc), or \
           $(b,bench/baseline-timestamp.json) under $(b,--validation \
           timestamp). Missing file skips the check.")

let perf_threshold_arg =
  Arg.(
    value & opt float 25.0
    & info [ "perf-threshold" ] ~docv:"PCT"
        ~doc:"Allowed per-bench slowdown vs the baseline, in percent.")

let diag_gate_arg =
  Arg.(
    value & flag
    & info [ "diag-gate" ]
        ~doc:
          "With $(b,--perf): additionally hold the txn/* and fig6/* benches \
           (which run with no trace sink, i.e. diagnosis disabled) to a 5% \
           budget vs the baseline — the conflict-diagnosis layer must be \
           free when off.")

let list_arg =
  Arg.(
    value & flag
    & info [ "list" ]
        ~doc:
          "List everything this binary can run — figures, workloads, store \
           profiles, stress scenarios, fuzz campaigns, and perf benches — \
           then exit.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"PROFILE"
        ~doc:
          "Run the KV-store workload engine with the given operation-mix \
           profile (see $(b,--list); YCSB letter aliases accepted), or \
           $(b,sweep) for the acceptance sweep: shard scaling on read-heavy \
           Zipfian traffic plus strong-vs-weak barrier overhead on the same \
           traffic. Knobs: $(b,--store-mode), $(b,--shards), $(b,--clients), \
           $(b,--keys), $(b,--store-ops), $(b,--batch), $(b,--value-size), \
           $(b,--dist), $(b,--theta); $(b,--seed), $(b,--cm), $(b,--fuel), \
           $(b,--metrics-out) and $(b,--diag-out) apply as for --stress. \
           $(b,--store-check) records the run and audits it against the \
           serializability oracle.")

let store_mode_conv =
  let parse s =
    match Stm_store.Kv.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Fmt.str
               "unknown store mode %s (expected strong, weak, lock, or mvcc)"
               s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Stm_store.Kv.mode_to_string m))

let store_mode_arg =
  Arg.(
    value
    & opt store_mode_conv Stm_store.Kv.Strong
    & info [ "store-mode" ] ~docv:"MODE"
        ~doc:
          "Concurrency discipline for --store: $(b,strong) (STM, strong \
           atomicity barriers), $(b,weak) (STM, weak atomicity — mixed \
           traffic may exhibit Figure-6 anomalies), $(b,lock) (shard \
           mutexes, no barriers), or $(b,mvcc) (multi-version STM with \
           strong barriers; held to the same zero-deviation bar as strong \
           and lock).")

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"Store shard count for --store.")

let clients_arg =
  Arg.(
    value & opt int 8
    & info [ "clients" ] ~docv:"N"
        ~doc:"Closed-loop client threads for --store.")

let keys_arg =
  Arg.(
    value & opt int 1024
    & info [ "keys" ] ~docv:"N" ~doc:"Preloaded key-space size for --store.")

let store_ops_arg =
  Arg.(
    value & opt int 128
    & info [ "store-ops" ] ~docv:"N"
        ~doc:"Operations per client for --store.")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N"
        ~doc:"Keys per multi-get (and per scan) for --store.")

let value_size_arg =
  Arg.(
    value & opt int 4
    & info [ "value-size" ] ~docv:"WORDS"
        ~doc:"Heap words per store value; writes touch all of them.")

let dist_arg =
  Arg.(
    value & opt string "zipfian"
    & info [ "dist" ] ~docv:"DIST"
        ~doc:"Key distribution for --store: $(b,zipfian) or $(b,uniform).")

let theta_arg =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~docv:"F"
        ~doc:"Zipfian skew exponent in (0, 1) for --dist zipfian.")

let store_check_arg =
  Arg.(
    value & flag
    & info [ "store-check" ]
        ~doc:
          "With --store: rewrite stored values to globally-unique tokens, \
           record the value-access history, and check it against the \
           serializability oracle. Non-zero exit if a strong- or lock-mode \
           run is rejected (a weak-mode anomaly is reported, not fatal). \
           Only non-structural profiles (no insert/delete) can be checked.")

let store_opts_term =
  let mk so_mode so_shards so_clients so_keys so_ops so_batch so_value_size
      so_dist so_theta so_check =
    {
      so_mode;
      so_shards;
      so_clients;
      so_keys;
      so_ops;
      so_batch;
      so_value_size;
      so_dist;
      so_theta;
      so_check;
    }
  in
  Term.(
    const mk $ store_mode_arg $ shards_arg $ clients_arg $ keys_arg
    $ store_ops_arg $ batch_arg $ value_size_arg $ dist_arg $ theta_arg
    $ store_check_arg)

let fuzz_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fuzz-dir" ] ~docv:"DIR"
        ~doc:
          "Write every minimized counterexample as a replayable repro JSON file into $(docv) (created if missing); replay with $(b,stm_run --repro FILE).")

let cmd =
  let doc =
    "regenerate the PLDI 2007 evaluation figures, run contention stress \
     scenarios, and fuzz the STM against a serializability oracle"
  in
  Cmd.v
    (Cmd.info "stm_bench" ~doc)
    Term.(
      const main $ list_arg $ store_arg $ store_opts_term $ name_arg
      $ scale_arg $ threads_arg $ backend_arg $ isolation_arg $ validation_arg
      $ cm_arg $ stress_arg $ seed_arg $ fuel_arg $ metrics_arg $ diag_out_arg
      $ fuzz_arg $ fuzz_differential_arg $ fuzz_programs_arg $ fuzz_seeds_arg
      $ fuzz_driver_arg $ fuzz_dir_arg $ explore_arg $ explore_bound_arg
      $ explore_runs_arg $ explore_rows_arg $ cells_out_arg $ perf_arg
      $ quick_arg $ perf_out_arg $ perf_baseline_arg $ perf_threshold_arg
      $ diag_gate_arg)

let () = exit (Cmd.eval' cmd)
