(* CLI: regenerate individual evaluation figures.

   Examples:
     stm_bench fig6
     stm_bench fig15 --scale 0.5
     stm_bench fig18 --threads 1,2,4,8,16
     stm_bench all *)

open Cmdliner

let parse_threads s =
  String.split_on_char ',' s |> List.map int_of_string

let run_figure name scale threads =
  let threads = Option.map parse_threads threads in
  match name with
  | "fig6" ->
      let cells = Stm_harness.Figures.fig6 () in
      Fmt.pr "%a" Stm_harness.Figures.pp_fig6 cells;
      Fmt.pr "matches the paper: %b@." (Stm_litmus.Matrix.all_match cells)
  | "privatization" ->
      let cells = Stm_litmus.Matrix.privatization_row () in
      Fmt.pr "%a" Stm_litmus.Matrix.pp_table cells
  | "fig13" ->
      Fmt.pr "%a" Stm_analysis.Barrier_stats.pp_table
        (Stm_harness.Figures.fig13 ())
  | "fig15" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig15 ?scale ())
  | "fig16" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig16 ?scale ())
  | "fig17" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_overhead
        (Stm_harness.Figures.fig17 ?scale ())
  | "fig18" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig18 ?threads ?scale ())
  | "fig19" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig19 ?threads ?scale ())
  | "fig20" ->
      Fmt.pr "%a" Stm_harness.Figures.pp_scaling
        (Stm_harness.Figures.fig20 ?threads ?scale ())
  | other -> Fmt.failwith "unknown figure %s" other

let all_figures =
  [ "fig6"; "privatization"; "fig13"; "fig15"; "fig16"; "fig17"; "fig18";
    "fig19"; "fig20" ]

let main name scale threads metrics_out =
  (* Collect run metrics across every figure executed by this
     invocation; an Info-level sink keeps the per-access Debug events
     unforced, so figure timings are unaffected on the fast paths. *)
  let metrics =
    Option.map
      (fun _ ->
        let m = Stm_obs.Metrics.create () in
        Stm_obs.Metrics.install m;
        m)
      metrics_out
  in
  (try
     if name = "all" then
       List.iter
         (fun f ->
           Fmt.pr "== %s ==@." f;
           run_figure f scale threads)
         all_figures
     else run_figure name scale threads
   with Failure m ->
     Fmt.epr "%s@." m;
     exit 2);
  Stm_core.Trace.set_sink None;
  Option.iter
    (fun m ->
      let path = Option.get metrics_out in
      try
        Out_channel.with_open_text path (fun oc ->
            output_string oc
              (Stm_obs.Json.to_string (Stm_obs.Metrics.to_json m));
            output_char oc '\n')
      with Sys_error msg ->
        Fmt.epr "cannot write %s: %s@." path msg;
        exit 2)
    metrics;
  0

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIGURE"
        ~doc:"One of fig6, privatization, fig13, fig15, fig16, fig17, fig18, fig19, fig20, all.")

let scale_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (default 1.0).")

let threads_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "threads" ] ~docv:"LIST"
        ~doc:"Comma-separated simulated processor counts for fig18-20.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write aggregate STM metrics for the figure run (transaction counters, abort causes, commit/abort latency histograms) as JSON to $(docv).")

let cmd =
  let doc = "regenerate the PLDI 2007 evaluation figures" in
  Cmd.v
    (Cmd.info "stm_bench" ~doc)
    Term.(const main $ name_arg $ scale_arg $ threads_arg $ metrics_arg)

let () = exit (Cmd.eval' cmd)
