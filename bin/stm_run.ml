(* CLI: compile and execute a Jt source file under a chosen STM
   configuration and optimization level.

   Examples:
     stm_run examples/jt/counter.jt
     stm_run examples/jt/counter.jt --config strong-eager --opt O2 --nait
     stm_run examples/jt/philosophers.jt -P threads=5 -P rounds=30
     stm_run prog.jt --detect-races        # barriers raise on data races *)

open Cmdliner

let config_of_string detect_races s =
  let base =
    match s with
    | "weak-eager" -> Ok Stm_core.Config.eager_weak
    | "weak-lazy" -> Ok Stm_core.Config.lazy_weak
    | "strong-eager" -> Ok Stm_core.Config.eager_strong
    | "strong-lazy" -> Ok Stm_core.Config.lazy_strong
    | "strong-eager-dea" -> Ok Stm_core.Config.(with_dea eager_strong)
    | "strong-lazy-dea" -> Ok Stm_core.Config.(with_dea lazy_strong)
    | "quiesce-eager" -> Ok Stm_core.Config.(with_quiescence eager_weak)
    | "quiesce-lazy" -> Ok Stm_core.Config.(with_quiescence lazy_weak)
    | "weak-mvcc" -> Ok Stm_core.Config.mvcc_weak
    | "strong-mvcc" -> Ok Stm_core.Config.mvcc_strong
    | "mvcc-snapshot" ->
        Ok Stm_core.Config.(with_snapshot_isolation mvcc_weak)
    | other -> Error ("unknown config " ^ other)
  in
  Result.map
    (fun c ->
      if detect_races then
        { c with Stm_core.Config.conflict = Stm_core.Config.Raise_error }
      else c)
    base

let parse_param s =
  match String.index_opt s '=' with
  | Some i ->
      let k = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      (k, int_of_string v)
  | None -> failwith ("bad -P " ^ s ^ " (expected name=value)")

let explore_program prog params cfg bound pct_runs =
  let make () =
    let main, observe = Stm_ir.Interp.explorer_instance ~params prog in
    { Stm_litmus.Explorer.main; observe }
  in
  let e =
    if pct_runs > 0 then
      Stm_litmus.Explorer.explore_pct ~runs:pct_runs ~cfg ~make ()
    else
      Stm_litmus.Explorer.explore ~preemption_bound:bound ~max_runs:20_000
        ~cfg ~make ()
  in
  Fmt.pr "schedules explored : %d%s@." e.Stm_litmus.Explorer.runs
    (if e.Stm_litmus.Explorer.truncated then " (budget exhausted)" else "");
  if e.Stm_litmus.Explorer.livelocks > 0 || e.Stm_litmus.Explorer.deadlocks > 0
  then
    Fmt.pr "livelocks/deadlocks: %d/%d@." e.Stm_litmus.Explorer.livelocks
      e.Stm_litmus.Explorer.deadlocks;
  Fmt.pr "distinct outcomes  : %d@." (List.length e.Stm_litmus.Explorer.outcomes);
  List.iter
    (fun (o, n) -> Fmt.pr "  %-50s x%d@." (if o = "" then "(no output)" else o) n)
    e.Stm_litmus.Explorer.outcomes;
  if List.length e.Stm_litmus.Explorer.outcomes > 1 then begin
    Fmt.pr "@.the printed outcome is SCHEDULE-DEPENDENT@.";
    1
  end
  else 0

(* --repro: replay a fuzzer counterexample deterministically and check
   the verdict still matches the recorded one. *)
let run_repro path =
  match Stm_check.Repro.load path with
  | Error e ->
      Fmt.epr "%s: %s@." path e;
      2
  | Ok r ->
      Fmt.pr "combo    : %s@." (Stm_check.Combo.name r.Stm_check.Repro.combo);
      Fmt.pr "profile  : %s@." r.Stm_check.Repro.profile;
      (match r.Stm_check.Repro.driver with
      | Stm_check.Repro.Random_sched seed ->
          Fmt.pr "driver   : random scheduler, seed %d@." seed
      | Stm_check.Repro.Explore { preemption_bound; max_runs } ->
          Fmt.pr "driver   : explorer DFS, preemption bound %d, max %d runs@."
            preemption_bound max_runs
      | Stm_check.Repro.Dpor { preemption_bound; max_runs } ->
          Fmt.pr "driver   : DPOR explorer, preemption bound %d, max %d runs@."
            preemption_bound max_runs);
      Fmt.pr "program  : %s" (Stm_check.Prog.to_string r.Stm_check.Repro.prog);
      let v = Stm_check.Repro.replay r in
      Fmt.pr "verdict  : %a@." Stm_check.History.pp_verdict v;
      if Stm_check.Repro.matches r v then begin
        Fmt.pr "replay matches the recorded verdict@.";
        0
      end
      else begin
        Fmt.pr "replay DIVERGED from the recorded verdict@.recorded : %s@."
          (Stm_obs.Json.to_string r.Stm_check.Repro.verdict);
        1
      end

let try_write path f =
  try f ()
  with Sys_error m ->
    Fmt.epr "cannot write %s: %s@." path m;
    exit 2

(* .jsonl extension selects the flat line-per-event format; anything
   else gets the Chrome trace_event document for Perfetto. *)
let write_trace_file path ~resolve recorder =
  let entries = Stm_obs.Recorder.entries recorder in
  try_write path (fun () ->
      Out_channel.with_open_text path (fun oc ->
          if Filename.check_suffix path ".jsonl" then
            Stm_obs.Export.write_jsonl ~resolve oc entries
          else Stm_obs.Export.write_chrome ~resolve oc entries));
  if Stm_obs.Recorder.dropped recorder > 0 then
    Fmt.epr "trace: ring full, dropped %d oldest events@."
      (Stm_obs.Recorder.dropped recorder)

let main repro file config opt nait params verbose detect_races granule cm seed
    validation trace profile trace_out profile_barriers metrics_out diag explore
    pct =
  match repro with
  | Some path -> run_repro path
  | None ->
  let file =
    match file with
    | Some f -> f
    | None ->
        Fmt.epr "a FILE.jt argument or --repro is required@.";
        exit 2
  in
  match config_of_string detect_races config with
  | Error m ->
      Fmt.epr "%s@." m;
      2
  | Ok cfg -> (
      let cfg = { cfg with Stm_core.Config.granule } in
      let cfg =
        match cm with
        | Some p -> Stm_core.Config.with_cm p cfg
        | None -> cfg
      in
      let cfg =
        match seed with
        | Some s -> { cfg with Stm_core.Config.cm_seed = s }
        | None -> cfg
      in
      let cfg =
        match validation with
        | Some v -> Stm_core.Config.with_validation v cfg
        | None -> cfg
      in
      let policy = Option.map (fun s -> Stm_runtime.Sched.Random s) seed in
      let src = In_channel.with_open_text file In_channel.input_all in
      match Stm_jtlang.Jt.compile ~name:file src with
      | exception Stm_jtlang.Jt.Error (msg, line) ->
          Fmt.epr "%s:%d: %s@." file line msg;
          2
      | prog ->
          let level =
            match opt with
            | "O0" -> Stm_jit.Opt.O0
            | "O1" -> Stm_jit.Opt.O1
            | _ -> Stm_jit.Opt.O2
          in
          let report = Stm_jit.Opt.optimize level prog in
          let removed =
            if nait then begin
              let pta = Stm_analysis.Pta.analyze prog in
              let n = Stm_analysis.Nait.apply prog pta in
              ignore (Stm_analysis.Thread_local.apply prog pta : int);
              n
            end
            else 0
          in
          let params = List.map parse_param params in
          if explore || pct > 0 then
            explore_program prog params cfg 2 pct
          else begin
          let resolve site =
            Option.map
              (fun (f, l) -> Printf.sprintf "%s:%d" f l)
              (Stm_ir.Ir.site_loc prog site)
          in
          let recorder =
            if trace_out <> None then Some (Stm_obs.Recorder.create ())
            else None
          in
          let profiler =
            if profile_barriers then Some (Stm_obs.Profiler.create ())
            else None
          in
          let metrics =
            if metrics_out <> None then Some (Stm_obs.Metrics.create ())
            else None
          in
          let diagnoser =
            if diag then Some (Stm_diag.Diag.create ~resolve ()) else None
          in
          let consumers =
            List.concat
              [
                (if trace then
                   [
                     (fun ev ->
                       (* print only the lifecycle events; per-access
                          Debug events would flood stderr *)
                       if Stm_core.Trace.event_level ev = Stm_core.Trace.Info
                       then
                         Fmt.epr "[%8d] %a@."
                           (if Stm_runtime.Sched.running () then
                              Stm_runtime.Sched.time ()
                            else 0)
                           Stm_core.Trace.pp_event ev);
                   ]
                 else []);
                (match recorder with
                | Some r -> [ Stm_obs.Recorder.record r ]
                | None -> []);
                (match profiler with
                | Some p -> [ Stm_obs.Profiler.handle p ]
                | None -> []);
                (match metrics with
                | Some m -> [ Stm_obs.Metrics.handle m ]
                | None -> []);
                (match diagnoser with
                | Some d -> [ Stm_diag.Diag.consumer d ]
                | None -> []);
              ]
          in
          if consumers <> [] then begin
            let level =
              (* the diagnoser wants the Debug stream too: CM decisions
                 and serialization points feed the causality graph and
                 the post-mortems *)
              if recorder <> None || profiler <> None || diagnoser <> None
              then Stm_core.Trace.Debug
              else Stm_core.Trace.Info
            in
            Stm_core.Trace.set_sink ~level
              (Some (fun ev -> List.iter (fun f -> f ev) consumers))
          end;
          let out = Stm_ir.Interp.run ?policy ~cfg ~params ~profile prog in
          Stm_core.Trace.set_sink None;
          Option.iter
            (fun r ->
              write_trace_file (Option.get trace_out) ~resolve r)
            recorder;
          Option.iter
            (fun p ->
              Fmt.epr "per-site barrier profile:@.%a"
                (fun ppf -> Stm_obs.Profiler.pp ~resolve ppf)
                p)
            profiler;
          Option.iter
            (fun d ->
              Fmt.epr "%a"
                (fun ppf -> Stm_diag.Diag.report ppf)
                d)
            diagnoser;
          Option.iter
            (fun m ->
              let path = Option.get metrics_out in
              try_write path (fun () ->
                  Out_channel.with_open_text path (fun oc ->
                      output_string oc
                        (Stm_obs.Json.to_string
                           (Stm_obs.Metrics.to_json
                              ~stats:out.Stm_ir.Interp.stats m));
                      output_char oc '\n')))
            metrics;
          List.iter print_endline out.Stm_ir.Interp.prints;
          let r = out.Stm_ir.Interp.result in
          (match r.Stm_runtime.Sched.exns with
          | [] -> ()
          | (tid, e) :: _ ->
              Fmt.epr "thread %d died: %s@." tid (Printexc.to_string e));
          if verbose then begin
            Fmt.epr "status    : %s@."
              (match r.Stm_runtime.Sched.status with
              | Stm_runtime.Sched.Completed -> "completed"
              | Stm_runtime.Sched.Deadlock _ -> "deadlock"
              | Stm_runtime.Sched.Fuel_exhausted -> "out of fuel");
            Fmt.epr "config    : %s, %s%s@." (Stm_core.Config.describe cfg)
              (Stm_jit.Opt.level_name level)
              (if nait then Fmt.str " + NAIT (%d barriers removed)" removed
               else "");
            Fmt.epr "jit       : %d immutable, %d escape, %d aggregated@."
              report.Stm_jit.Opt.immutable report.Stm_jit.Opt.escape
              report.Stm_jit.Opt.aggregated;
            Fmt.epr "cycles    : %d@." r.Stm_runtime.Sched.makespan;
            Fmt.epr "instrs    : %d@." out.Stm_ir.Interp.instrs;
            Fmt.epr "stats     : %a@." Stm_core.Stats.pp out.Stm_ir.Interp.stats
          end;
          if profile then begin
            (* map site ids back to methods for the report *)
            let site_meth = Hashtbl.create 64 in
            Stm_ir.Ir.iter_methods prog (fun m ->
                Stm_ir.Ir.iter_access_notes m (fun ins note ->
                    Hashtbl.replace site_meth note.Stm_ir.Ir.site (m, ins)));
            Fmt.epr "hottest barrier sites:@.";
            List.iteri
              (fun i (site, hits) ->
                if i < 15 then
                  match Hashtbl.find_opt site_meth site with
                  | Some (m, ins) ->
                      Fmt.epr "  %8d  %a  %s::%s  %a@." hits
                        (Stm_ir.Ir.pp_site prog) site m.Stm_ir.Ir.mcls
                        m.Stm_ir.Ir.mname Stm_ir.Ir.pp_instr ins
                  | None ->
                      Fmt.epr "  %8d  %a@." hits (Stm_ir.Ir.pp_site prog) site)
              out.Stm_ir.Interp.site_profile
          end;
          (match
             ( r.Stm_runtime.Sched.status,
               r.Stm_runtime.Sched.exns )
           with
          | Stm_runtime.Sched.Completed, [] -> 0
          | _ -> 1)
          end)

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE.jt" ~doc:"Jt source file. Optional when $(b,--repro) is given.")

let repro_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "repro" ] ~docv:"FILE"
        ~doc:
          "Replay a fuzzer counterexample (JSON written by $(b,stm_bench --fuzz)) instead of running a Jt program: re-executes the recorded program under the recorded configuration and schedule driver, prints the verdict, and exits 0 iff it matches the recorded one.")

let config_arg =
  Arg.(
    value & opt string "strong-eager-dea"
    & info [ "c"; "config" ] ~docv:"CFG"
        ~doc:
          "STM configuration: weak-eager, weak-lazy, strong-eager, strong-lazy, strong-eager-dea, strong-lazy-dea, quiesce-eager, quiesce-lazy, weak-mvcc, strong-mvcc, mvcc-snapshot (multi-version at snapshot isolation).")

let opt_arg =
  Arg.(
    value & opt string "O2"
    & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc:"JIT level: O0, O1, O2.")

let nait_arg =
  Arg.(value & flag & info [ "nait" ] ~doc:"Run the whole-program NAIT + TL barrier removal.")

let params_arg =
  Arg.(
    value & opt_all string []
    & info [ "P"; "param" ] ~docv:"NAME=INT"
        ~doc:"Value for the program's param(\"name\") builtin; repeatable.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print execution statistics.")

let races_arg =
  Arg.(
    value & flag
    & info [ "detect-races" ]
        ~doc:
          "Isolation barriers raise on transactional/non-transactional conflicts instead of backing off (the paper's debugging mode).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Count executions of each access site's non-transactional path and report the hottest sites.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print STM events (txn lifecycle, conflicts, publications) to stderr.")

let cm_conv =
  let parse s =
    match Stm_cm.Policy.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown contention-management policy %s (expected %s)" s
               (String.concat ", "
                  (List.map Stm_cm.Policy.to_string Stm_cm.Policy.all))))
  in
  Arg.conv (parse, Stm_cm.Policy.pp)

let cm_arg =
  Arg.(
    value
    & opt (some cm_conv) None
    & info [ "cm" ] ~docv:"POLICY"
        ~doc:
          "Contention-management policy: suicide (default), wound-wait, exp-backoff, karma, or timestamp.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Run under the seeded random scheduler instead of the deterministic min-clock one (also seeds the contention manager's randomized backoff). Runs are reproducible per seed.")

let granule_arg =
  Arg.(
    value & opt int 1
    & info [ "granule" ] ~docv:"N" ~doc:"Versioning granularity (fields per granule).")

let validation_conv =
  let parse s =
    match Stm_core.Config.validation_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown validation scheme %s (expected incremental or \
                      timestamp)" s))
  in
  Arg.conv
    ( parse,
      fun ppf v -> Fmt.string ppf (Stm_core.Config.validation_to_string v) )

let validation_arg =
  Arg.(
    value
    & opt (some validation_conv) None
    & info [ "validation" ] ~docv:"SCHEME"
        ~doc:
          "Read-set validation scheme for the single-version configurations: \
           $(b,incremental) (default) or $(b,timestamp) (global commit \
           clock: O(1) revalidation, timestamp extension, read-only \
           fast-path commits). The mvcc configurations ignore it.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record all STM events and write them to $(docv): Chrome trace_event JSON (open in Perfetto / chrome://tracing), or one JSON object per line if $(docv) ends in .jsonl.")

let profile_barriers_arg =
  Arg.(
    value & flag
    & info [ "profile-barriers" ]
        ~doc:
          "Accumulate per-site barrier counters (fired / private / elided / conflicts, with file:line site names) and print the table to stderr.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write run metrics (transaction counters, abort causes, commit/abort latency histograms, global stats) as JSON to $(docv).")

let diag_arg =
  Arg.(
    value & flag
    & info [ "diag" ]
        ~doc:
          "Run the conflict-diagnosis pipeline live and print its report (contention heatmap with source sites, abort-causality graph with kill chains, starvation verdicts, flight-recorder post-mortems) to stderr after the run.")

let explore_arg =
  Arg.(
    value & flag
    & info [ "explore" ]
        ~doc:
          "Systematically explore schedules (preemption-bounded DFS) instead of one run; reports every distinct printed outcome. Non-zero exit if the outcome is schedule-dependent.")

let pct_arg =
  Arg.(
    value & opt int 0
    & info [ "pct" ] ~docv:"RUNS"
        ~doc:"Explore with probabilistic concurrency testing for RUNS randomized runs.")

let cmd =
  let doc = "run a Jt program on the strong-atomicity STM" in
  Cmd.v (Cmd.info "stm_run" ~doc)
    Term.(
      const main $ repro_arg $ file_arg $ config_arg $ opt_arg $ nait_arg $ params_arg
      $ verbose_arg $ races_arg $ granule_arg $ cm_arg $ seed_arg
      $ validation_arg $ trace_arg
      $ profile_arg $ trace_out_arg $ profile_barriers_arg $ metrics_out_arg
      $ diag_arg $ explore_arg $ pct_arg)

let () = exit (Cmd.eval' cmd)
